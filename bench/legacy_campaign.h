// legacy_campaign.h — the PRE-REFACTOR campaign inner loop, preserved
// verbatim as the perf baseline for the indexed campaign engine.
//
// This is the PR-1 implementation: std::string event labels, per-node
// linear scans (compromised_count, effective_spoof, alarm polling, the
// per-attempt PLC candidate rebuild), per-call topology/firewall walks in
// can_reach, per-event VariantCatalog lookups, and the generic
// sim::Simulator core (std::function handlers + unordered_map + shared
// priority queue). The refactored attack::CampaignSimulator samples the
// SAME indicator distributions through different RNG draws (its
// superposed-Poisson scheduling is exact but consumes the stream in a
// different order), so per-replication results are NOT comparable seed
// by seed. bench_e5 --fleet-smoke asserts (a) statistical equivalence of
// the indicator means (5-sigma gate) and (b) a >= 5x per-replication
// speedup on a generated enterprise fleet.
//
// Bench-only code: nothing in src/ may include this header.
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "attack/campaign.h"
#include "net/reachability.h"
#include "sim/simulator.h"

namespace divsec::bench::legacy {

using attack::CampaignOptions;
using attack::DetectionModel;
using attack::NodeState;
using attack::Scenario;
using attack::ThreatProfile;
using divers::ComponentKind;
using net::NodeId;

struct LegacyEvent {
  double time = 0.0;
  net::NodeId node = 0;
  std::string what;  // the string labels the refactor replaced
};

struct LegacyResult {
  std::optional<double> time_of_entry;
  std::optional<double> first_root;
  std::optional<double> first_plc_compromise;
  std::optional<double> time_to_attack;
  std::optional<double> time_to_detection;
  std::vector<std::pair<double, double>> compromised_ratio;
  std::vector<LegacyEvent> events;
  std::size_t hosts_compromised = 0;
  std::size_t plcs_compromised = 0;
  std::size_t events_executed = 0;

  [[nodiscard]] bool attack_succeeded() const noexcept {
    return time_to_attack.has_value() &&
           (!time_to_detection.has_value() ||
            *time_to_attack <= *time_to_detection);
  }
};

class CampaignSimulator {
 public:
  CampaignSimulator(Scenario scenario, ThreatProfile profile,
                    const divers::VariantCatalog& catalog,
                    DetectionModel detection = {}, CampaignOptions options = {})
      : scenario_(std::move(scenario)),
        profile_(std::move(profile)),
        catalog_(catalog),
        detection_(detection),
        options_(options) {
    profile_.validate();
    detection_.validate();
    scenario_.validate(catalog_);
  }

  [[nodiscard]] LegacyResult run(stats::Rng& rng) const {
    RunState st(scenario_, profile_, catalog_, detection_, options_, rng);
    st.schedule_entry();
    st.result.events_executed = st.sim.run_until(options_.t_max_hours);
    st.result.hosts_compromised = 0;
    st.result.plcs_compromised = 0;
    for (NodeId n = 0; n < st.state.size(); ++n) {
      if (st.sc.topology.node(n).role == net::Role::kPlc) {
        if (st.plc_owned[n]) ++st.result.plcs_compromised;
      } else if (st.state[n] >= NodeState::kActivated) {
        ++st.result.hosts_compromised;
      }
    }
    return std::move(st.result);
  }

 private:
  struct RunState {
    const Scenario& sc;
    const ThreatProfile& pr;
    const divers::VariantCatalog& cat;
    const DetectionModel& det;
    const CampaignOptions& opt;
    sim::Simulator sim;
    stats::Rng& rng;
    LegacyResult result;

    std::vector<NodeState> state;
    std::vector<bool> plc_owned;
    bool halted = false;

    RunState(const Scenario& s, const ThreatProfile& p,
             const divers::VariantCatalog& c, const DetectionModel& d,
             const CampaignOptions& o, stats::Rng& r)
        : sc(s), pr(p), cat(c), det(d), opt(o), rng(r) {
      state.assign(sc.topology.node_count(), NodeState::kClean);
      plc_owned.assign(sc.topology.node_count(), false);
      result.compromised_ratio.emplace_back(0.0, 0.0);
    }

    void note(NodeId n, const char* what) {
      if (opt.record_events) result.events.push_back({sim.now(), n, what});
    }

    [[nodiscard]] double exp_delay(double rate) {
      return -std::log(1.0 - rng.uniform()) / rate;
    }

    [[nodiscard]] std::size_t compromised_count() const {
      std::size_t c = 0;
      for (NodeId n = 0; n < state.size(); ++n) {
        if (sc.topology.node(n).role == net::Role::kPlc) {
          if (plc_owned[n]) ++c;
        } else if (state[n] >= NodeState::kActivated) {
          ++c;
        }
      }
      return c;
    }

    void record_ratio() {
      const double r = static_cast<double>(compromised_count()) /
                       static_cast<double>(sc.topology.node_count());
      result.compromised_ratio.emplace_back(sim.now(), r);
    }

    void record_detection(const char* what) {
      if (result.time_to_detection) return;
      result.time_to_detection = sim.now();
      note(0, what);
      if (opt.detection_halts_attack) halted = true;
      maybe_finish();
    }

    void failed_attempt() {
      const double p = det.failed_attempt_detection;
      if (p > 0.0 && rng.bernoulli(p)) record_detection("failed-exploit-detected");
    }

    void maybe_finish() {
      const bool tta_settled = result.time_to_attack.has_value() || halted;
      if (tta_settled && result.time_to_detection.has_value()) sim.stop();
    }

    [[nodiscard]] bool effective_reach(NodeId from, NodeId to, net::Channel ch) {
      if (net::can_reach(sc.topology, sc.firewall, from, to, ch)) return true;
      if (ch == net::Channel::kUsb) return false;
      if (!sc.topology.linked(from, to)) return false;
      const double bypass =
          cat.exploit_success(pr.firewall_exploit, sc.firewall_variant);
      return rng.bernoulli(bypass);
    }

    void schedule_entry() {
      sim.schedule_in(exp_delay(pr.entry_rate), [this] {
        if (!halted) {
          const NodeId n = sc.entry_nodes[rng.below(sc.entry_nodes.size())];
          if (state[n] == NodeState::kClean) {
            state[n] = NodeState::kDelivered;
            if (!result.time_of_entry) result.time_of_entry = sim.now();
            note(n, "delivered");
            schedule_activation(n);
          }
        }
        schedule_entry();
      });
    }

    void schedule_activation(NodeId n) {
      const double wf =
          cat.exploit_work_factor(pr.activation_exploit, sc.software[n].os);
      sim.schedule_in(exp_delay(pr.activation_rate / wf), [this, n] {
        if (halted || state[n] != NodeState::kDelivered) return;
        const double p = cat.exploit_success(pr.activation_exploit, sc.software[n].os);
        if (rng.bernoulli(p)) {
          state[n] = NodeState::kActivated;
          note(n, "activated");
          record_ratio();
          schedule_privesc(n);
          schedule_host_detection(n);
        } else {
          failed_attempt();
          schedule_activation(n);
        }
      });
    }

    void schedule_privesc(NodeId n) {
      const double wf =
          cat.exploit_work_factor(pr.privesc_exploit, sc.software[n].os);
      sim.schedule_in(exp_delay(pr.privesc_rate / wf), [this, n] {
        if (halted || state[n] != NodeState::kActivated) return;
        const double p = cat.exploit_success(pr.privesc_exploit, sc.software[n].os);
        if (rng.bernoulli(p)) {
          state[n] = NodeState::kRoot;
          if (!result.first_root) result.first_root = sim.now();
          note(n, "root");
          schedule_propagation(n);
          if (can_deliver_payload(n)) schedule_payload(n);
        } else {
          failed_attempt();
          schedule_privesc(n);
        }
      });
    }

    void schedule_propagation(NodeId n) {
      sim.schedule_in(exp_delay(pr.propagation_rate), [this, n] {
        if (halted || state[n] != NodeState::kRoot) return;
        const NodeId v = static_cast<NodeId>(rng.below(sc.topology.node_count()));
        const net::Channel ch = pr.channels[rng.below(pr.channels.size())];
        const bool host_target = sc.topology.node(v).role != net::Role::kPlc &&
                                 sc.topology.node(v).role != net::Role::kSensorGateway;
        if (v != n && host_target && state[v] == NodeState::kClean &&
            effective_reach(n, v, ch)) {
          const double p = cat.exploit_success(pr.lateral_exploit, sc.software[v].os);
          if (rng.bernoulli(p)) {
            state[v] = NodeState::kDelivered;
            note(v, "delivered-lateral");
            schedule_activation(v);
          } else {
            failed_attempt();
          }
        }
        schedule_propagation(n);
      });
    }

    [[nodiscard]] bool can_deliver_payload(NodeId n) const {
      const net::Role r = sc.topology.node(n).role;
      return pr.has_sabotage_payload &&
             (r == net::Role::kEngineering || r == net::Role::kScadaServer);
    }

    void schedule_payload(NodeId n) {
      sim.schedule_in(exp_delay(pr.payload_rate), [this, n] {
        if (halted || state[n] != NodeState::kRoot) return;
        std::vector<NodeId> candidates;
        for (NodeId plc : sc.target_plcs)
          if (!plc_owned[plc]) candidates.push_back(plc);
        if (!candidates.empty()) {
          const NodeId plc = candidates[rng.below(candidates.size())];
          const bool via_project = effective_reach(n, plc, net::Channel::kProjectFile);
          const bool via_modbus =
              !via_project && effective_reach(n, plc, net::Channel::kModbus);
          if (via_project || via_modbus) {
            double p =
                cat.exploit_success(pr.plc_exploit, *sc.software[plc].plc_firmware);
            if (via_modbus)
              p *= cat.exploit_success(pr.protocol_exploit, sc.software[plc].protocol);
            if (rng.bernoulli(p)) {
              plc_owned[plc] = true;
              if (!result.first_plc_compromise)
                result.first_plc_compromise = sim.now();
              note(plc, "plc-compromised");
              record_ratio();
              schedule_sabotage(plc);
              schedule_alarm_detection();
            } else {
              failed_attempt();
            }
          }
        }
        schedule_payload(n);
      });
    }

    void schedule_sabotage(NodeId plc) {
      sim.schedule_in(exp_delay(1.0 / pr.sabotage_mean_hours), [this, plc] {
        if (halted || !plc_owned[plc]) return;
        if (!result.time_to_attack) {
          result.time_to_attack = sim.now();
          note(plc, "device-impaired");
          maybe_finish();
        }
      });
    }

    void schedule_host_detection(NodeId n) {
      const double rate = det.host_detection_rate * (1.0 - pr.stealth);
      if (rate <= 0.0) return;
      sim.schedule_in(exp_delay(rate), [this, n] {
        if (result.time_to_detection) return;
        if (state[n] >= NodeState::kActivated) {
          record_detection("host-ids-detection");
          return;
        }
        schedule_host_detection(n);
      });
    }

    [[nodiscard]] double effective_spoof() const {
      bool view_owned = false;
      for (NodeId n = 0; n < state.size(); ++n) {
        const net::Role r = sc.topology.node(n).role;
        if ((r == net::Role::kHmi || r == net::Role::kScadaServer ||
             r == net::Role::kEngineering) &&
            state[n] == NodeState::kRoot) {
          view_owned = true;
          break;
        }
      }
      return pr.spoof_effectiveness * (view_owned ? 1.0 : 0.5);
    }

    void schedule_alarm_detection() {
      if (det.alarm_detection_rate <= 0.0) return;
      sim.schedule_in(exp_delay(det.alarm_detection_rate), [this] {
        if (result.time_to_detection) return;
        bool any_owned = false;
        for (NodeId n = 0; n < plc_owned.size(); ++n)
          if (plc_owned[n]) any_owned = true;
        if (!any_owned) return;
        if (rng.bernoulli(1.0 - effective_spoof())) {
          record_detection("plant-alarm-detection");
          return;
        }
        schedule_alarm_detection();
      });
    }
  };

  Scenario scenario_;
  ThreatProfile profile_;
  const divers::VariantCatalog& catalog_;
  DetectionModel detection_;
  CampaignOptions options_;
};

}  // namespace divsec::bench::legacy
