// bench_util.h — shared table-printing helpers for the experiment benches.
//
// Every bench binary reproduces one experiment from DESIGN.md §4: it
// first prints the paper-style table/series to stdout, then runs
// google-benchmark timings of the underlying computation. Keeping the
// two phases separate makes `./bench_eX` output directly comparable to
// the paper's reported shape while still profiling the library.
#pragma once

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "util/json.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace divsec::bench {

// JSON emission lives in util/json.h (shared with the distributed-sweep
// state/summary writers); the aliases keep existing bench code spelled
// the same.
using util::BenchRecord;
using util::json_escape;
using util::json_number;
using util::write_bench_json;

/// Process peak RSS (high-water mark) in MiB; NaN where unavailable.
/// Because it is a high-water mark, phase-attributable memory is the
/// *delta* across a phase, and a low-footprint phase must run before a
/// high-footprint one to get a meaningful reading.
inline double peak_rss_mb() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);  // bytes
#else
    return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB
#endif
  }
#endif
  return std::numeric_limits<double>::quiet_NaN();
}

/// Print a separator + header for one experiment section.
inline void section(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// Fixed-width row helpers (printf-style formatting keeps the benches
/// dependency-free and grep-friendly).
inline void row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int precision = 4) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string fmt_int(long long v) { return std::to_string(v); }

}  // namespace divsec::bench
