// bench_util.h — shared table-printing helpers for the experiment benches.
//
// Every bench binary reproduces one experiment from DESIGN.md §4: it
// first prints the paper-style table/series to stdout, then runs
// google-benchmark timings of the underlying computation. Keeping the
// two phases separate makes `./bench_eX` output directly comparable to
// the paper's reported shape while still profiling the library.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace divsec::bench {

/// Print a separator + header for one experiment section.
inline void section(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// Fixed-width row helpers (printf-style formatting keeps the benches
/// dependency-free and grep-friendly).
inline void row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int precision = 4) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string fmt_int(long long v) { return std::to_string(v); }

}  // namespace divsec::bench
