// bench_util.h — shared table-printing helpers for the experiment benches.
//
// Every bench binary reproduces one experiment from DESIGN.md §4: it
// first prints the paper-style table/series to stdout, then runs
// google-benchmark timings of the underlying computation. Keeping the
// two phases separate makes `./bench_eX` output directly comparable to
// the paper's reported shape while still profiling the library.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace divsec::bench {

/// Print a separator + header for one experiment section.
inline void section(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// Fixed-width row helpers (printf-style formatting keeps the benches
/// dependency-free and grep-friendly).
inline void row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int precision = 4) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string fmt_int(long long v) { return std::to_string(v); }

/// One machine-readable timing record for the perf trajectory. `speedup`
/// is relative to whatever the bench defines as its serial baseline
/// (1.0 for standalone timings).
struct BenchRecord {
  std::string name;
  double wall_ms = 0.0;
  int threads = 1;
  double speedup = 1.0;
};

/// Write records as a JSON array to `path` (BENCH_*.json convention), so
/// CI can track wall time and parallel speedup across commits. Emits
/// nothing on I/O failure: benches must not fail on read-only filesystems.
inline void write_bench_json(const std::string& path,
                             const std::vector<BenchRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return;
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"wall_ms\": %.3f, \"threads\": %d, "
                 "\"speedup\": %.3f}%s\n",
                 r.name.c_str(), r.wall_ms, r.threads, r.speedup,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

}  // namespace divsec::bench
