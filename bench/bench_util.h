// bench_util.h — shared table-printing helpers for the experiment benches.
//
// Every bench binary reproduces one experiment from DESIGN.md §4: it
// first prints the paper-style table/series to stdout, then runs
// google-benchmark timings of the underlying computation. Keeping the
// two phases separate makes `./bench_eX` output directly comparable to
// the paper's reported shape while still profiling the library.
#pragma once

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace divsec::bench {

/// Process peak RSS (high-water mark) in MiB; NaN where unavailable.
/// Because it is a high-water mark, phase-attributable memory is the
/// *delta* across a phase, and a low-footprint phase must run before a
/// high-footprint one to get a meaningful reading.
inline double peak_rss_mb() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);  // bytes
#else
    return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB
#endif
  }
#endif
  return std::numeric_limits<double>::quiet_NaN();
}

/// Print a separator + header for one experiment section.
inline void section(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// Fixed-width row helpers (printf-style formatting keeps the benches
/// dependency-free and grep-friendly).
inline void row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int precision = 4) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string fmt_int(long long v) { return std::to_string(v); }

/// One machine-readable timing record for the perf trajectory. `speedup`
/// is relative to whatever the bench defines as its serial baseline
/// (1.0 for standalone timings). `peak_mb` is an optional memory datum
/// (peak RSS or aggregation footprint, in MiB); NaN serializes as null.
struct BenchRecord {
  std::string name;
  double wall_ms = 0.0;
  int threads = 1;
  double speedup = 1.0;
  double peak_mb = std::numeric_limits<double>::quiet_NaN();
};

/// JSON string escaping: quotes, backslashes, and control characters.
/// Record names come from free-form bench code — an unescaped quote or
/// newline would silently corrupt the whole BENCH_*.json artifact.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

/// JSON number or null: printf's "%f" renders non-finite doubles as
/// nan/inf, which no JSON parser accepts — a single timer glitch or 0/0
/// speedup used to invalidate the whole artifact.
inline std::string json_number(double v, int precision = 3) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// Write records as a JSON array to `path` (BENCH_*.json convention), so
/// CI can track wall time and parallel speedup across commits. Emits
/// nothing on I/O failure: benches must not fail on read-only filesystems.
inline void write_bench_json(const std::string& path,
                             const std::vector<BenchRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return;
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"wall_ms\": %s, \"threads\": %d, "
                 "\"speedup\": %s, \"peak_mb\": %s}%s\n",
                 json_escape(r.name).c_str(), json_number(r.wall_ms).c_str(),
                 r.threads, json_number(r.speedup).c_str(),
                 json_number(r.peak_mb).c_str(),
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

}  // namespace divsec::bench
