// E6 — the DoE step: "DoE allows narrowing the number of configurations
// to assess." Compares the full factorial over all 7 SCoPE components
// against a Plackett-Burman screening design: run counts, wall time, and
// whether the 8-run screen agrees with the exhaustive sweep on which
// components matter.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>

#include "bench/bench_util.h"
#include "core/pipeline.h"

namespace {

using namespace divsec;

struct Setup {
  divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  core::SystemDescription desc = core::make_scope_description(cat);
  core::PipelineOptions po;
  Setup() {
    po.measurement.engine = core::Engine::kStagedSan;
    po.measurement.replications = 400;
    po.measurement.seed = 61;
  }
};

void print_comparison() {
  Setup s;
  const core::Pipeline pipeline(s.desc, attack::ThreatProfile::stuxnet(), s.po);

  // Exhaustive 2-level full factorial over all 7 components: 128 configs.
  std::vector<std::string> all_names;
  for (const auto& c : s.desc.components()) all_names.push_back(c.name);

  const auto t0 = std::chrono::steady_clock::now();
  const auto full = pipeline.measure_full_factorial(all_names, 2);
  const auto t1 = std::chrono::steady_clock::now();
  const auto screen = pipeline.screen();
  const auto t2 = std::chrono::steady_clock::now();

  const double ms_full =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double ms_screen =
      std::chrono::duration<double, std::milli>(t2 - t1).count();

  const auto t2b = std::chrono::steady_clock::now();
  const auto frac = pipeline.measure_fractional(
      {"os.corporate", "os.control", "firewall"}, {{"plc.firmware", "ABC"}});
  const auto t3 = std::chrono::steady_clock::now();
  const double ms_frac =
      std::chrono::duration<double, std::milli>(t3 - t2b).count();

  bench::section("E6: configuration budget, full factorial vs screening");
  bench::row({"design", "runs", "wall ms", "resolution"}, 18);
  bench::row({"full 2^7", bench::fmt_int(static_cast<long long>(
                              full.configuration_count())),
              bench::fmt(ms_full, 1), "-"},
             18);
  bench::row({"2^(4-1) frac.",
              bench::fmt_int(static_cast<long long>(frac.design.run_count())),
              bench::fmt(ms_frac, 1), bench::fmt_int(frac.aliases.resolution)},
             18);
  bench::row({"Plackett-Burman",
              bench::fmt_int(static_cast<long long>(screen.design.run_count())),
              bench::fmt(ms_screen, 1), "III"},
             18);

  // Reference main effects from the full factorial (success probability),
  // via the same contrast estimator over the 128 corner means.
  std::vector<double> responses;
  responses.reserve(full.configuration_count());
  for (const auto& summary : full.summaries)
    responses.push_back(summary.attack_success_probability());
  stats::TwoLevelDesign coded;
  coded.factor_names = all_names;
  for (std::size_t r = 0; r < full.configuration_count(); ++r) {
    const auto levels = full.space.decode(r);
    std::vector<int> run;
    for (int l : levels) run.push_back(l == 0 ? -1 : +1);
    coded.runs.push_back(std::move(run));
  }
  const auto full_effects = stats::main_effects(coded, responses);

  bench::section("E6: main effect on attack success, full vs 8-run screen");
  bench::row({"component", "full 2^7", "PB screen", "sign agrees"}, 20);
  int sign_agreements = 0;
  for (std::size_t f = 0; f < all_names.size(); ++f) {
    const bool agree =
        (full_effects[f] < 0) == (screen.success_effects[f] < 0) ||
        std::abs(full_effects[f]) < 1e-3;
    sign_agreements += agree;
    bench::row({all_names[f], bench::fmt(full_effects[f]),
                bench::fmt(screen.success_effects[f]),
                agree ? "yes" : "NO"},
               20);
  }
  std::printf(
      "\nShape check: the 8-run screen recovers the sign/rank structure of\n"
      "the 128-run sweep (%d/7 signs agree) at ~1/16 of the cost.\n",
      sign_agreements);
}

void BM_FullFactorial3(benchmark::State& state) {
  Setup s;
  s.po.measurement.replications = 100;
  const core::Pipeline pipeline(s.desc, attack::ThreatProfile::stuxnet(), s.po);
  for (auto _ : state) {
    auto t = pipeline.measure_full_factorial({"os.control", "plc.firmware"}, 2);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_FullFactorial3)->Unit(benchmark::kMillisecond);

void BM_Screening(benchmark::State& state) {
  Setup s;
  s.po.measurement.replications = 100;
  const core::Pipeline pipeline(s.desc, attack::ThreatProfile::stuxnet(), s.po);
  for (auto _ : state) {
    auto sc = pipeline.screen();
    benchmark::DoNotOptimize(sc);
  }
}
BENCHMARK(BM_Screening)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
