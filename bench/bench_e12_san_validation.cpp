// E12 — SAN engine validation: the Monte-Carlo solver against closed-form
// results (M/M/1 mean queue length, two-state availability, Erlang first
// passage). The paper's case study rests on "a system model ... developed
// by means of the stochastic activity networks (SAN) formalism"; this
// bench shows our SAN engine is quantitatively trustworthy.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/bench_util.h"
#include "san/analysis.h"
#include "san/simulator.h"

namespace {

using namespace divsec;
using san::Marking;
using san::SanModel;

void print_mm1() {
  bench::section("E12a: M/M/1 mean number in system, MC vs rho/(1-rho)");
  bench::row({"rho", "analytic", "SAN Monte-Carlo", "rel err"}, 18);
  for (double rho : {0.2, 0.5, 0.8}) {
    SanModel m;
    const auto queue = m.add_place("queue", 0);
    const auto arrive = m.add_timed_activity("arrive", stats::Exponential{rho});
    m.add_output_arc(arrive, queue);
    const auto serve = m.add_timed_activity("serve", stats::Exponential{1.0});
    m.add_input_arc(serve, queue);
    const auto r = san::interval_of_time_average(
        m, [queue](const Marking& mk) { return static_cast<double>(mk[queue]); },
        20000.0, 30, 7);
    const double analytic = rho / (1.0 - rho);
    bench::row({bench::fmt(rho, 2), bench::fmt(analytic),
                bench::fmt(r.stats.mean()),
                bench::fmt(std::fabs(r.stats.mean() - analytic) / analytic, 4)},
               18);
  }
}

void print_availability() {
  bench::section("E12b: two-state availability, MC vs mu/(lambda+mu)");
  bench::row({"lambda", "mu", "analytic", "SAN Monte-Carlo"}, 16);
  for (const auto& [lambda, mu] :
       std::vector<std::pair<double, double>>{{0.1, 0.9}, {0.02, 0.5}}) {
    SanModel m;
    const auto up = m.add_place("up", 1);
    const auto down = m.add_place("down", 0);
    const auto fail = m.add_timed_activity("fail", stats::Exponential{lambda});
    m.add_input_arc(fail, up);
    m.add_output_arc(fail, down);
    const auto repair = m.add_timed_activity("repair", stats::Exponential{mu});
    m.add_input_arc(repair, down);
    m.add_output_arc(repair, up);
    const auto r = san::interval_of_time_average(
        m, [up](const Marking& mk) { return static_cast<double>(mk[up]); },
        20000.0, 30, 11);
    bench::row({bench::fmt(lambda, 2), bench::fmt(mu, 2),
                bench::fmt(mu / (lambda + mu)), bench::fmt(r.stats.mean())},
               16);
  }
}

void print_erlang_chain() {
  bench::section("E12c: k-stage exponential chain first passage, MC vs k/rate");
  bench::row({"stages k", "rate", "analytic mean", "SAN mean"}, 16);
  for (int k : {2, 5, 10}) {
    SanModel m;
    std::vector<san::PlaceId> places;
    for (int i = 0; i <= k; ++i)
      places.push_back(m.add_place("s" + std::to_string(i), i == 0 ? 1 : 0));
    for (int i = 0; i < k; ++i) {
      const auto a = m.add_timed_activity("t" + std::to_string(i),
                                          stats::Exponential{2.0});
      m.add_input_arc(a, places[static_cast<std::size_t>(i)]);
      m.add_output_arc(a, places[static_cast<std::size_t>(i) + 1]);
    }
    const auto last = places.back();
    const auto fp = san::first_passage(
        m, [last](const Marking& mk) { return mk[last] >= 1; }, 1000.0, 20000, 13);
    bench::row({bench::fmt_int(k), bench::fmt(2.0, 1), bench::fmt(k / 2.0),
                bench::fmt(fp.conditional_mean())},
               16);
  }
}

void BM_San_MM1_Events(benchmark::State& state) {
  SanModel m;
  const auto queue = m.add_place("queue", 0);
  const auto arrive = m.add_timed_activity("arrive", stats::Exponential{0.5});
  m.add_output_arc(arrive, queue);
  const auto serve = m.add_timed_activity("serve", stats::Exponential{1.0});
  m.add_input_arc(serve, queue);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    stats::Rng rng(1, seed++);
    san::SanSimulator sim(m, rng);
    sim.run_until(1000.0);
    benchmark::DoNotOptimize(sim.total_firings());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_San_MM1_Events)->Unit(benchmark::kMicrosecond);

void BM_San_FirstPassage(benchmark::State& state) {
  SanModel m;
  const auto src = m.add_place("src", 1);
  const auto dst = m.add_place("dst", 0);
  const auto a = m.add_timed_activity("a", stats::Exponential{1.0});
  m.add_input_arc(a, src);
  m.add_output_arc(a, dst);
  for (auto _ : state) {
    auto fp = san::first_passage(
        m, [dst](const Marking& mk) { return mk[dst] >= 1; }, 100.0, 1000, 3);
    benchmark::DoNotOptimize(fp);
  }
}
BENCHMARK(BM_San_FirstPassage)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_mm1();
  print_availability();
  print_erlang_chain();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
