// E11 — substrate ablation (DESIGN.md §7): which diversifying transform
// contributes what. Gadget survival per transform in isolation and
// combined, ASLR entropy sweep, and patch-level vs multicompiler vs
// cross-family diversity as exploit-success attenuation.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "divers/aslr.h"
#include "divers/gadgets.h"
#include "divers/transforms.h"
#include "divers/variants.h"

namespace {

using namespace divsec;
using divers::Program;
using divers::TransformConfig;

Program make_program(std::uint64_t seed) {
  stats::Rng rng(seed);
  divers::GeneratorOptions opts;
  opts.blocks = 24;
  opts.instructions_per_block = 12;
  return divers::generate_program(rng, opts);
}

double mean_survival(const TransformConfig& cfg, int programs = 20) {
  double acc = 0.0;
  for (int i = 0; i < programs; ++i) {
    const Program base = make_program(1000 + i);
    stats::Rng rng(2000 + i);
    acc += divers::gadget_survival(base, divers::diversify(base, cfg, rng));
  }
  return acc / programs;
}

void print_transform_ablation() {
  bench::section("E11a: gadget survival per transform (mean over 20 binaries)");
  bench::row({"transform", "gadget survival"}, 34);

  TransformConfig none = TransformConfig::none();
  bench::row({"identity", bench::fmt(mean_survival(none))}, 34);

  TransformConfig nop = TransformConfig::none();
  nop.nop_insertion = true;
  nop.nop_density = 0.3;
  bench::row({"nop insertion (0.3)", bench::fmt(mean_survival(nop))}, 34);

  TransformConfig subst = TransformConfig::none();
  subst.instruction_substitution = true;
  subst.substitution_probability = 1.0;
  bench::row({"instruction substitution", bench::fmt(mean_survival(subst))}, 34);

  TransformConfig rename = TransformConfig::none();
  rename.register_renaming = true;
  bench::row({"register renaming", bench::fmt(mean_survival(rename))}, 34);

  TransformConfig reorder = TransformConfig::none();
  reorder.block_reordering = true;
  bench::row({"block reordering", bench::fmt(mean_survival(reorder))}, 34);

  bench::row({"all combined", bench::fmt(mean_survival(TransformConfig::all()))},
             34);

  std::printf(
      "\nShape check: every transform alone leaves survivors; the combined\n"
      "pipeline drives survival to ~0 (defense in depth).\n");
}

void print_patch_vs_multicompile() {
  const divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  const divers::Exploit zero_day{"zd", divers::ComponentKind::kPlcFirmware, 250,
                                 true, 0, 0.85};
  bench::section("E11b: exploit success vs deployment diversity (PLC firmware)");
  bench::row({"deployed variant", "gadget survival", "exploit success"}, 26);
  for (std::size_t v = 0; v < cat.count(divers::ComponentKind::kPlcFirmware); ++v) {
    bench::row({cat.variant(divers::ComponentKind::kPlcFirmware, v).name,
                bench::fmt(cat.survival(divers::ComponentKind::kPlcFirmware, 0, v)),
                bench::fmt(cat.exploit_success(zero_day, v))},
               26);
  }
}

void print_aslr_sweep() {
  bench::section("E11c: ASLR entropy vs brute-force success (1000 attempts)");
  bench::row({"entropy bits", "P[land in 1000 tries]", "E[attempts]"}, 24);
  for (int bits : {0, 4, 8, 12, 16, 24}) {
    const divers::AslrModel m(bits);
    bench::row({bench::fmt_int(bits), bench::fmt(m.success_within(1000), 6),
                bench::fmt(m.expected_attempts(), 0)},
               24);
  }
}

void BM_Diversify(benchmark::State& state) {
  const Program base = make_program(42);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    stats::Rng rng(seed++);
    auto v = divers::diversify(base, TransformConfig::all(), rng);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(base.instruction_count()));
}
BENCHMARK(BM_Diversify);

void BM_GadgetSurvival(benchmark::State& state) {
  const Program base = make_program(43);
  stats::Rng rng(44);
  const Program variant = divers::diversify(base, TransformConfig::all(), rng);
  for (auto _ : state) {
    const double s = divers::gadget_survival(base, variant);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_GadgetSurvival);

void BM_InterpreterThroughput(benchmark::State& state) {
  const Program base = make_program(45);
  std::vector<std::int64_t> input{1, 2, 3, 4};
  for (auto _ : state) {
    auto r = divers::execute(base, input);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_InterpreterThroughput);

}  // namespace

int main(int argc, char** argv) {
  print_transform_ablation();
  print_patch_vs_multicompile();
  print_aslr_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
