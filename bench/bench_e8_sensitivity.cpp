// E8 — the paper's case-study claim: "a small, strategically distributed,
// number of highly attack-resilient components can significantly lower
// the chance of bringing a successful attack to the system."
// Sweeps k (number of components upgraded to their most resilient
// variant) under strategic vs random placement, and prints the OAT
// tornado that a "preliminary sensitivity analysis" would report.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/optimizer.h"
#include "stats/sensitivity.h"

namespace {

using namespace divsec;

struct Setup {
  divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  core::SystemDescription desc = core::make_scope_description(cat);
  attack::ThreatProfile stuxnet = attack::ThreatProfile::stuxnet();
  core::MeasurementOptions mo;
  Setup() {
    mo.engine = core::Engine::kStagedSan;
    mo.replications = 1500;
    mo.seed = 81;
  }
};

void print_placement_sweep() {
  Setup s;
  bench::section(
      "E8a: attack success probability vs #resilient components and placement");
  bench::row({"k", "strategic", "random (mean of 10)", "strategic/base"}, 22);
  double base = 0.0;
  for (std::size_t k = 0; k <= 7; ++k) {
    stats::Rng rng(500 + k);
    const core::Configuration strat = core::place_resilient_components(
        s.desc, k, core::PlacementStrategy::kStrategic, s.stuxnet, s.mo, rng);
    const double p_strat =
        core::attack_success_probability(s.desc, strat, s.stuxnet, s.mo);
    double p_rand = 0.0;
    constexpr int kTrials = 10;
    for (int t = 0; t < kTrials; ++t) {
      stats::Rng trng(900 + 17 * k + t);
      const core::Configuration rnd = core::place_resilient_components(
          s.desc, k, core::PlacementStrategy::kRandom, s.stuxnet, s.mo, trng);
      p_rand += core::attack_success_probability(s.desc, rnd, s.stuxnet, s.mo);
    }
    p_rand /= kTrials;
    if (k == 0) base = p_strat;
    bench::row({bench::fmt_int(static_cast<long long>(k)), bench::fmt(p_strat),
                bench::fmt(p_rand),
                base > 0 ? bench::fmt(p_strat / base, 3) : "-"},
               22);
  }
  std::printf(
      "\nShape check: the first 1-3 *strategic* placements produce most of\n"
      "the drop; random placement needs far more components for the same\n"
      "effect — exactly the paper's sensitivity-analysis conclusion.\n");
}

void print_tornado() {
  Setup s;
  bench::section("E8b: one-at-a-time tornado (success probability swing)");
  const auto space = s.desc.factor_space();
  std::vector<int> baseline(space.factor_count(), 0);
  const auto results = stats::tornado(stats::one_at_a_time(
      space, baseline, [&s](std::span<const int> cfg) {
        core::Configuration c;
        for (int v : cfg) c.variant.push_back(static_cast<std::size_t>(v));
        return core::attack_success_probability(s.desc, c, s.stuxnet, s.mo);
      }));
  bench::row({"component", "min P", "max P", "swing"}, 18);
  for (const auto& r : results)
    bench::row({r.factor, bench::fmt(r.min_response), bench::fmt(r.max_response),
                bench::fmt(r.swing())},
               18);
}

void BM_SuccessProbabilityEstimate(benchmark::State& state) {
  Setup s;
  s.mo.replications = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const double p = core::attack_success_probability(
        s.desc, s.desc.baseline_configuration(), s.stuxnet, s.mo);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_SuccessProbabilityEstimate)
    ->Arg(200)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_GreedyPlan(benchmark::State& state) {
  Setup s;
  s.mo.replications = 200;
  for (auto _ : state) {
    auto plan = core::greedy_diversification(s.desc, s.stuxnet, s.mo, 5.0);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_GreedyPlan)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  print_placement_sweep();
  print_tornado();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
