// E13 — procedural scenario families as a sweep axis: "different
// architectures may benefit differently from diversity" is the paper's
// generalization question, and the family generator
// (scenario/family_spec.h) is how this reproduction asks it. This bench
// times the generator itself per family (expansion is on every shard's
// critical path: N processes re-expand the same plan instead of
// shipping topology bytes) and runs the three-arm policy sweep on one
// fleet per family, so the indicator table shows how the SAME diversity
// budget lands on a deep Purdue hierarchy vs a flat mesh vs hub-and-
// spoke vs a partially segmented brownfield.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/measurement.h"
#include "dist/sweep.h"
#include "scenario/family_spec.h"
#include "scenario/topology_generator.h"

namespace {

using namespace divsec;

const std::vector<std::string> kFamilySpecs = {
    "purdue-deep:nodes=512,depth=4",
    "mesh-flat:nodes=512,density=0.3",
    "hub-spoke:nodes=512,sites=12",
    "brownfield:nodes=512,segmentation=0.35",
};

void print_family_comparison() {
  for (const std::string& spec_str : kFamilySpecs) {
    dist::SweepSpec spec;
    spec.preset = spec_str;
    spec.threat = "stuxnet";
    spec.replications = 512;
    const auto cells = dist::run_in_process(spec);
    const auto names = dist::cell_names(spec);

    bench::section("E13: policy sweep on " + spec_str);
    bench::row({"policy", "P[sabotage]", "E[TTA] h", "E[c(end)]"}, 16);
    for (std::size_t c = 0; c < cells.size(); ++c)
      bench::row({names[c], bench::fmt(cells[c].attack_success_probability()),
                  bench::fmt(cells[c].tta.mean(), 1),
                  bench::fmt(cells[c].final_ratio.mean())},
                 16);
  }
  std::printf(
      "\nShape check: diversity pays most where segmentation is weakest —\n"
      "the flat mesh's monoculture arm saturates highest and drops\n"
      "furthest under per-node diversity, while the deep Purdue\n"
      "hierarchy's gateway tiers already bound the spread.\n");
}

void BM_FamilyExpansion(benchmark::State& state) {
  const scenario::FamilySpec spec = scenario::FamilySpec::parse(
      kFamilySpecs[static_cast<std::size_t>(state.range(0))]);
  const scenario::TopologyGenerator gen(spec);
  std::uint64_t seed = 2013;
  for (auto _ : state) {
    auto t = gen.generate(seed++);
    benchmark::DoNotOptimize(t);
  }
  state.SetLabel(spec.canonical());
}
BENCHMARK(BM_FamilyExpansion)->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMicrosecond);

void BM_FamilyCampaignSweep(benchmark::State& state) {
  dist::SweepSpec spec;
  spec.preset = kFamilySpecs[static_cast<std::size_t>(state.range(0))];
  spec.replications = 128;
  for (auto _ : state) {
    auto cells = dist::run_in_process(spec);
    benchmark::DoNotOptimize(cells);
  }
  state.SetLabel(spec.preset);
}
BENCHMARK(BM_FamilyCampaignSweep)->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_family_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
