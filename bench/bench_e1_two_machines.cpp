// E1 — Section I analytic example: two identical machines vs two diverse
// machines. Reproduces the paper's claim that PSA ~ PM for identical
// machines while PSA ~ PM1 x PM2 under diversity, by Monte-Carlo on the
// two-machine SAN and by the closed form.
#include <benchmark/benchmark.h>

#include <cmath>

#include "attack/san_model.h"
#include "bench/bench_util.h"
#include "san/analysis.h"

namespace {

using namespace divsec;

constexpr double kRate = 1.0;     // attempts per time unit, per machine
constexpr double kHorizon = 4.0;  // mission time
constexpr std::size_t kReps = 20000;

double monte_carlo_psa(double p1, double p2, double reuse, std::uint64_t seed) {
  const attack::TwoMachineSan san =
      attack::build_two_machine_san(kRate, p1, p2, reuse);
  return san::first_passage(san.model, san.both_owned_predicate(), kHorizon,
                            kReps, seed)
      .absorption_probability();
}

void print_table() {
  bench::section(
      "E1: two-machine system compromise probability (horizon = 4 attempts)");
  bench::row({"PM", "PM (1 machine)", "identical MC", "identical CF",
              "diverse MC", "diverse CF", "ident/diverse"});
  for (double p : {0.05, 0.1, 0.2, 0.4}) {
    const double pm_t = 1.0 - std::exp(-kRate * p * kHorizon);
    const double ident_mc = monte_carlo_psa(p, p, 1.0, 101);
    const double ident_cf =
        attack::two_machine_success_probability(kRate, p, p, 1.0, kHorizon);
    const double div_mc = monte_carlo_psa(p, p, 0.0, 102);
    const double div_cf =
        attack::two_machine_success_probability(kRate, p, p, 0.0, kHorizon);
    bench::row({bench::fmt(p, 2), bench::fmt(pm_t), bench::fmt(ident_mc),
                bench::fmt(ident_cf), bench::fmt(div_mc), bench::fmt(div_cf),
                bench::fmt(ident_mc / div_mc, 2)});
  }
  std::printf(
      "\nShape check (paper, Sec. I): identical ~ PM (compromise once, replay);\n"
      "diverse ~ product form, so the ratio grows as PM shrinks.\n");
}

void BM_TwoMachineFirstPassage(benchmark::State& state) {
  const double p = 0.2;
  const attack::TwoMachineSan san = attack::build_two_machine_san(kRate, p, p, 0.0);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    stats::Rng rng(7, seed++);
    san::SanSimulator sim(san.model, rng);
    auto t = sim.run_until_predicate(san.both_owned_predicate(), kHorizon);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_TwoMachineFirstPassage);

void BM_ClosedForm(benchmark::State& state) {
  for (auto _ : state) {
    const double v =
        attack::two_machine_success_probability(kRate, 0.2, 0.3, 0.5, kHorizon);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ClosedForm);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
