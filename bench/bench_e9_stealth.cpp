// E9 — the Stuxnet stealth narrative: "it is able to fool the SCADA
// system by emulating regular monitoring signals" and "can remain
// undetected for many months". Measures, on the physical cooling-system
// simulator, the detection latency of a PLC compromise under each
// reporting mode (honest / frozen constant / Stuxnet-style replay), with
// and without a diverse redundant sensing path.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "scada/cooling_system.h"

namespace {

using namespace divsec;
using scada::CoolingSystem;
using scada::SpoofMode;

CoolingSystem::Options sys_options(bool redundant) {
  CoolingSystem::Options o;
  o.plc_scan_s = 1.0;
  o.poll_interval_s = 5.0;
  o.anomaly_check_interval_s = 60.0;
  o.redundant_sensor_path = redundant;
  return o;
}

struct Outcome {
  double impairment_s = -1.0;
  double detection_s = -1.0;
};

Outcome run_attack(SpoofMode mode, bool redundant, std::uint64_t seed) {
  CoolingSystem sys(sys_options(redundant), seed);
  constexpr double kCompromiseAt = 1800.0;
  constexpr double kHorizon = 8.0 * 3600.0;
  sys.advance(kCompromiseAt);
  sys.compromise_crac_plc(mode);
  sys.advance(kHorizon - kCompromiseAt);
  Outcome o;
  if (sys.impairment_time_s()) o.impairment_s = *sys.impairment_time_s() - kCompromiseAt;
  if (sys.first_detection_time_s())
    o.detection_s = *sys.first_detection_time_s() - kCompromiseAt;
  return o;
}

const char* mode_name(SpoofMode m) {
  switch (m) {
    case SpoofMode::kNone: return "honest";
    case SpoofMode::kConstant: return "frozen-constant";
    case SpoofMode::kReplay: return "replay (Stuxnet)";
  }
  return "?";
}

void print_table() {
  bench::section(
      "E9: detection latency after PLC compromise (physical plant, s after "
      "compromise; -1 = never within 8 h)");
  bench::row({"reporting mode", "redundant path", "impaired after s",
              "detected after s", "detected before impaired"},
             24);
  for (bool redundant : {false, true}) {
    for (SpoofMode mode :
         {SpoofMode::kNone, SpoofMode::kConstant, SpoofMode::kReplay}) {
      const Outcome o = run_attack(mode, redundant, 2013);
      const bool saved = o.detection_s >= 0 &&
                         (o.impairment_s < 0 || o.detection_s < o.impairment_s);
      bench::row({mode_name(mode), redundant ? "yes" : "no",
                  bench::fmt(o.impairment_s, 0), bench::fmt(o.detection_s, 0),
                  saved ? "yes" : "NO"},
                 24);
    }
  }
  std::printf(
      "\nShape check: honest reporting is caught in minutes; a frozen value\n"
      "is caught by the stuck-signal test only after its window; replayed\n"
      "recordings are NEVER caught on the spoofed channel alone — only the\n"
      "diverse (redundant) sensing path catches them. Detection latency\n"
      "ordering: honest < frozen < replay, reproducing the months-undetected\n"
      "narrative and the diversity remedy.\n");
}

void BM_PlantHour(benchmark::State& state) {
  for (auto _ : state) {
    CoolingSystem sys(sys_options(false), 7);
    sys.advance(3600.0);
    benchmark::DoNotOptimize(sys.room_temp_c());
  }
}
BENCHMARK(BM_PlantHour)->Unit(benchmark::kMillisecond);

void BM_AttackScenarioEightHours(benchmark::State& state) {
  for (auto _ : state) {
    auto o = run_attack(SpoofMode::kReplay, true, 7);
    benchmark::DoNotOptimize(o);
  }
}
BENCHMARK(BM_AttackScenarioEightHours)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
