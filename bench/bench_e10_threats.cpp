// E10 — the paper's future-work threat set: "introducing a wider set of
// threat models, such as Duqu and Flame". Compares the three canonical
// profiles on the monoculture and on a diversified deployment: indicator
// values and footprint.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/optimizer.h"

namespace {

using namespace divsec;

struct Setup {
  divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  core::SystemDescription desc = core::make_scope_description(cat);
  core::MeasurementOptions mo;
  Setup() {
    mo.engine = core::Engine::kCampaign;  // footprint needs the node level
    mo.replications = 200;
    mo.seed = 91;
  }
};

void print_threat_comparison() {
  Setup s;
  stats::Rng rng(3);
  const core::Configuration mono = s.desc.baseline_configuration();
  const core::Configuration diverse = core::place_resilient_components(
      s.desc, 3, core::PlacementStrategy::kStrategic,
      attack::ThreatProfile::stuxnet(), s.mo, rng);

  for (const auto& [label, config] :
       std::vector<std::pair<std::string, core::Configuration>>{
           {"monoculture", mono}, {"3 strategic upgrades", diverse}}) {
    bench::section("E10: threat comparison on " + label);
    bench::row({"profile", "P[sabotage]", "E[TTA] h", "E[TTSF] h",
                "undetected", "E[c(end)]"},
               15);
    for (const auto& profile :
         {attack::ThreatProfile::stuxnet(), attack::ThreatProfile::duqu(),
          attack::ThreatProfile::flame()}) {
      const auto r = core::measure_indicators(s.desc, config, profile, s.mo);
      bench::row({profile.name, bench::fmt(r.attack_success_probability()),
                  bench::fmt(r.tta.mean(), 1), bench::fmt(r.ttsf.mean(), 1),
                  bench::fmt_int(static_cast<long long>(r.ttsf_censored)),
                  bench::fmt(r.final_ratio.mean())},
                 15);
    }
  }
  std::printf(
      "\nShape check: only Stuxnet carries a sabotage payload (P[sabotage]\n"
      "> 0 on the monoculture). Duqu stays hidden longest (largest TTSF);\n"
      "Flame spreads fastest but its noise gets it detected — and halted —\n"
      "earliest. Three strategic upgrades collapse every profile's\n"
      "footprint to a few percent.\n");
}

void BM_MeasureProfile(benchmark::State& state) {
  Setup s;
  s.mo.replications = 50;
  const auto profiles = std::vector<attack::ThreatProfile>{
      attack::ThreatProfile::stuxnet(), attack::ThreatProfile::duqu(),
      attack::ThreatProfile::flame()};
  const auto& profile = profiles[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    auto r = core::measure_indicators(s.desc, s.desc.baseline_configuration(),
                                      profile, s.mo);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(profile.name);
}
BENCHMARK(BM_MeasureProfile)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_threat_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
