// E5 — indicator (iii), compromised ratio c(t): "the number of
// compromised components at time t with respect to the total number of
// components". Mean step curves from the node-level campaign simulator
// for monoculture / partial / full diversity. Expected shape: the
// monoculture curve rises fast and saturates high; diversity flattens and
// caps it.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/indicators.h"
#include "core/optimizer.h"
#include "net/epidemic.h"

namespace {

using namespace divsec;

struct Setup {
  divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  core::SystemDescription desc = core::make_scope_description(cat);
  attack::ThreatProfile stuxnet = attack::ThreatProfile::stuxnet();
  core::MeasurementOptions mo;
  Setup() {
    mo.engine = core::Engine::kCampaign;
    mo.replications = 200;
    mo.seed = 51;
  }
};

void print_curves() {
  Setup s;
  std::vector<double> grid;
  for (double t = 0.0; t <= 2160.0; t += 120.0) grid.push_back(t);

  const core::Configuration mono = s.desc.baseline_configuration();
  stats::Rng rng(1);
  const core::Configuration partial = core::place_resilient_components(
      s.desc, 2, core::PlacementStrategy::kStrategic, s.stuxnet, s.mo, rng);
  const core::Configuration full = core::place_resilient_components(
      s.desc, 7, core::PlacementStrategy::kStrategic, s.stuxnet, s.mo, rng);

  const auto c_mono =
      core::mean_compromised_ratio_curve(s.desc, mono, s.stuxnet, s.mo, grid);
  const auto c_part =
      core::mean_compromised_ratio_curve(s.desc, partial, s.stuxnet, s.mo, grid);
  const auto c_full =
      core::mean_compromised_ratio_curve(s.desc, full, s.stuxnet, s.mo, grid);

  // Mean-field SI baseline over the same reachability graph (no exploit
  // failure, no detection): the upper envelope a pure worm model gives.
  const attack::Scenario base = s.desc.instantiate(mono);
  net::MeanFieldEpidemic epidemic(
      base.topology, base.firewall,
      {net::Channel::kUsb, net::Channel::kSmbShare, net::Channel::kPrintSpooler},
      base.entry_nodes, {0.02, 0.5});
  const auto c_mf = epidemic.ratio_curve(grid);

  bench::section("E5: mean compromised ratio c(t), 200 campaigns each");
  bench::row({"t (h)", "monoculture", "2 diversified", "7 diversified",
              "mean-field SI"},
             16);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    bench::row({bench::fmt(grid[i], 0), bench::fmt(c_mono[i]),
                bench::fmt(c_part[i]), bench::fmt(c_full[i]),
                bench::fmt(c_mf[i])},
               16);
  }
  std::printf(
      "\nShape check: monoculture saturates high and early, tracking the\n"
      "mean-field SI envelope; each diversity step lowers both the growth\n"
      "rate and the plateau of c(t) far below what a topology-only worm\n"
      "model can explain — the reduction is the diversity effect.\n");
}

void BM_OneCampaign(benchmark::State& state) {
  Setup s;
  const attack::CampaignSimulator sim(
      s.desc.instantiate(s.desc.baseline_configuration()), s.stuxnet, s.cat);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    stats::Rng rng(9, seed++);
    auto r = sim.run(rng);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_OneCampaign)->Unit(benchmark::kMicrosecond);

void BM_MeanRatioCurve(benchmark::State& state) {
  Setup s;
  s.mo.replications = 50;
  std::vector<double> grid{0, 500, 1000, 1500, 2000};
  for (auto _ : state) {
    auto c = core::mean_compromised_ratio_curve(
        s.desc, s.desc.baseline_configuration(), s.stuxnet, s.mo, grid);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_MeanRatioCurve)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_curves();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
