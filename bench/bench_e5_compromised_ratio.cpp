// E5 — indicator (iii), compromised ratio c(t): "the number of
// compromised components at time t with respect to the total number of
// components". Mean step curves from the node-level campaign simulator
// for monoculture / partial / full diversity. Expected shape: the
// monoculture curve rises fast and saturates high; diversity flattens and
// caps it.
//
// Fleet phase: on a generated enterprise1024 preset, the indexed
// campaign engine is validated statistically (same indicator
// distributions, 5-sigma gate) against the preserved pre-refactor
// implementation (legacy_campaign.h) and timed against it — the phase
// fails unless the indexed engine is >= 5x faster per replication. A
// MeasurementEngine scenario sweep is timed on top. Records land in
// BENCH_e5_fleet.json. `--fleet-smoke` runs only this phase (CI's
// Release smoke pass).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "bench/bench_util.h"
#include "bench/indexed_campaign.h"
#include "bench/legacy_campaign.h"
#include "core/indicator_accumulator.h"
#include "core/indicators.h"
#include "core/measurement.h"
#include "core/optimizer.h"
#include "dist/adaptive.h"
#include "dist/cost_model.h"
#include "dist/sweep.h"
#include "net/epidemic.h"
#include "obs/metrics.h"
#include "scenario/presets.h"
#include "sim/executor.h"
#include "sim/shard_plan.h"
#include "sim/streaming.h"
#include "stats/survival.h"
#include "stats/tdigest.h"

namespace {

using namespace divsec;

double wall_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

/// Legacy-vs-indexed campaign on a generated fleet: verify statistical
/// equivalence, time both, emit the perf-trajectory JSON. Returns false
/// on indicator drift or a speedup below the 5x acceptance bar.
bool fleet_speedup_phase() {
  constexpr std::size_t kNodes = 1024;
  constexpr std::size_t kReps = 96;
  constexpr std::uint64_t kSeed = 2013;
  const std::string preset = "enterprise" + std::to_string(kNodes);

  const divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  const attack::ThreatProfile stuxnet = attack::ThreatProfile::stuxnet();
  // The monoculture arm is the heavy one: the worm actually spreads, so
  // compromise-volume-proportional work (ratio snapshots, spoof checks,
  // per-root scanning) dominates — exactly what the paper's baseline
  // configuration looks like at fleet scale.
  const scenario::GeneratedScenario fleet = scenario::make_preset(
      preset, cat, kSeed, scenario::VariantPolicy::kMonoculture);

  bench::section("E5 fleet: " + preset + " campaign, legacy vs indexed engine");
  std::printf("nodes=%zu links=%zu entries=%zu target PLCs=%zu\n",
              fleet.scenario.topology.node_count(),
              fleet.scenario.topology.link_count(),
              fleet.scenario.entry_nodes.size(),
              fleet.scenario.target_plcs.size());

  // Sustained-throughput configuration: incident response does not
  // freeze the attacker, so the worm keeps scanning until the horizon —
  // the event-volume regime a fleet-scale engine must survive. Both
  // engines run the identical configuration.
  attack::CampaignOptions opts;
  opts.detection_halts_attack = false;

  const bench::legacy::CampaignSimulator legacy_sim(fleet.scenario, stuxnet, cat,
                                                    {}, opts);
  const attack::CampaignSimulator indexed_sim(fleet.scenario, stuxnet, cat, {},
                                              opts);

  // The indexed engine schedules the model's Poisson processes as exact
  // superpositions, so it samples the SAME distribution as the
  // pre-refactor per-node implementation through different draws.
  // Equivalence gate: replication means of the three indicators must
  // agree within 5 standard errors (a drifted model fails loudly).
  stats::OnlineStats legacy_ratio, legacy_ttsf, legacy_success;
  std::size_t legacy_events = 0;
  const auto legacy_start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < kReps; ++r) {
    stats::Rng rng(kSeed, r);
    const auto res = legacy_sim.run(rng);
    legacy_ratio.add(res.compromised_ratio.back().second);
    legacy_ttsf.add(res.time_to_detection.value_or(opts.t_max_hours));
    legacy_success.add(res.attack_succeeded() ? 1.0 : 0.0);
    legacy_events += res.events_executed;
  }
  const double legacy_ms = wall_ms_since(legacy_start) / kReps;

  stats::OnlineStats indexed_ratio, indexed_ttsf, indexed_success;
  std::size_t indexed_events = 0;
  const auto indexed_start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < kReps; ++r) {
    stats::Rng rng(kSeed, r);
    const auto res = indexed_sim.run(rng);
    indexed_ratio.add(res.compromised_ratio.back().second);
    indexed_ttsf.add(res.time_to_detection.value_or(opts.t_max_hours));
    indexed_success.add(res.attack_succeeded() ? 1.0 : 0.0);
    indexed_events += res.events_executed;
  }
  const double indexed_ms = wall_ms_since(indexed_start) / kReps;

  const auto close = [&](const stats::OnlineStats& a, const stats::OnlineStats& b,
                         double floor) {
    const double se = std::sqrt(a.variance() / static_cast<double>(kReps) +
                                b.variance() / static_cast<double>(kReps));
    return std::abs(a.mean() - b.mean()) <= 5.0 * se + floor;
  };
  const bool equivalent = close(legacy_ratio, indexed_ratio, 1e-3) &&
                          close(legacy_ttsf, indexed_ttsf, 1e-6) &&
                          close(legacy_success, indexed_success, 1e-3);

  const double speedup = indexed_ms > 0.0 ? legacy_ms / indexed_ms : 0.0;
  bench::row({"engine", "ms/replication", "events/rep", "speedup"}, 18);
  bench::row({"legacy", bench::fmt(legacy_ms, 3),
              bench::fmt_int(static_cast<long long>(legacy_events / kReps)),
              bench::fmt(1.0, 2)},
             18);
  bench::row({"indexed", bench::fmt(indexed_ms, 3),
              bench::fmt_int(static_cast<long long>(indexed_events / kReps)),
              bench::fmt(speedup, 2)},
             18);
  std::printf(
      "equivalence (%zu reps): %s  ratio %.4f vs %.4f | mean TTSF %.1f vs "
      "%.1f | success %.3f vs %.3f\n",
      kReps, equivalent ? "OK" : "FAILED", legacy_ratio.mean(),
      indexed_ratio.mean(), legacy_ttsf.mean(), indexed_ttsf.mean(),
      legacy_success.mean(), indexed_success.mean());

  // The new measurement flavour: the same fleet swept through
  // MeasurementEngine (monoculture + stratified cells) on the shared
  // executor — the wall clock CI tracks for fleet-scale throughput.
  core::MeasurementOptions mo;
  mo.engine = core::Engine::kCampaign;
  mo.replications = 32;
  mo.seed = kSeed;
  mo.keep_samples = false;
  core::ScenarioSweepPlan plan;
  plan.cells.push_back({fleet.scenario, kSeed});  // the monoculture arm
  plan.cells.push_back(
      {scenario::make_preset(preset, cat, kSeed,
                             scenario::VariantPolicy::kZoneStratified)
           .scenario,
       kSeed + 1});
  const core::MeasurementEngine engine(cat, stuxnet, mo);
  const auto sweep_start = std::chrono::steady_clock::now();
  const auto summaries = engine.measure_scenarios(plan);
  const double sweep_ms = wall_ms_since(sweep_start);
  const int threads = static_cast<int>(engine.executor().thread_count());
  std::printf(
      "sweep: %zu cells x %zu reps in %.1f ms on %d threads "
      "(monoculture success=%.2f, stratified success=%.2f)\n",
      plan.cell_count(), mo.replications, sweep_ms,
      threads, summaries[0].attack_success_probability(),
      summaries[1].attack_success_probability());

  bench::write_bench_json(
      "BENCH_e5_fleet.json",
      {{"fleet_campaign_legacy_" + std::to_string(kNodes), legacy_ms, 1, 1.0},
       {"fleet_campaign_indexed_" + std::to_string(kNodes), indexed_ms, 1, speedup},
       {"fleet_sweep_2x32_" + std::to_string(kNodes), sweep_ms, threads,
        speedup}});
  return equivalent && speedup >= 5.0;
}

/// Streaming vs buffered aggregation at fleet scale: the identical
/// enterprise256 sweep once through the streaming backend
/// (keep_samples=false → O(cells + threads × block) aggregation state)
/// and once through the retain-everything path (the full cells × reps
/// sample matrix). Both fold through the same blocked reduction, so the
/// summaries must be bit-identical; the phase gates on that, on the
/// aggregation-footprint reduction (>= 10x), and on streaming wall time
/// no worse than buffered (15% noise allowance). The streaming pass runs
/// first so the peak-RSS high-water deltas attribute the sample matrix
/// to the buffered pass.
bool streaming_aggregation_phase(std::size_t reps) {
  constexpr std::uint64_t kSeed = 2013;
  const std::string preset = "enterprise256";
  const divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  const attack::ThreatProfile stuxnet = attack::ThreatProfile::stuxnet();

  core::ScenarioSweepPlan plan;
  plan.cells.push_back(
      {scenario::make_preset(preset, cat, kSeed,
                             scenario::VariantPolicy::kMonoculture)
           .scenario,
       kSeed});
  plan.cells.push_back(
      {scenario::make_preset(preset, cat, kSeed,
                             scenario::VariantPolicy::kZoneStratified)
           .scenario,
       kSeed + 1});

  core::MeasurementOptions mo;
  mo.engine = core::Engine::kCampaign;
  mo.replications = reps;
  mo.seed = kSeed;
  mo.keep_samples = false;

  bench::section("E5 streaming: " + preset + " sweep, streaming vs buffered");
  std::printf("cells=%zu replications=%zu block=%zu\n", plan.cell_count(), reps,
              sim::kDefaultReductionBlock);

  const core::MeasurementEngine streaming_engine(cat, stuxnet, mo);
  {
    // Warm-up pass (allocator, page cache, code paths): the streaming
    // pass runs first for RSS attribution and must not also pay the
    // process cold-start.
    core::MeasurementOptions warm = mo;
    warm.replications = 512;
    const core::MeasurementEngine warm_engine(cat, stuxnet, warm);
    (void)warm_engine.measure_scenarios(plan);
  }

  const double rss_base = bench::peak_rss_mb();
  const auto stream_start = std::chrono::steady_clock::now();
  const auto streamed = streaming_engine.measure_scenarios(plan);
  double stream_ms = wall_ms_since(stream_start);
  const double rss_stream = bench::peak_rss_mb();

  mo.keep_samples = true;
  const core::MeasurementEngine buffered_engine(cat, stuxnet, mo);
  const auto buffered_start = std::chrono::steady_clock::now();
  const auto buffered = buffered_engine.measure_scenarios(plan);
  double buffered_ms = wall_ms_since(buffered_start);
  const double rss_buffered = bench::peak_rss_mb();

  // Second timed pass of each path (ABAB), keeping the minimum: the
  // wall-clock comparison must not hinge on which path ran first on a
  // cold cache — the RSS deltas above already needed streaming first.
  {
    const auto t0 = std::chrono::steady_clock::now();
    (void)streaming_engine.measure_scenarios(plan);
    stream_ms = std::min(stream_ms, wall_ms_since(t0));
    const auto t1 = std::chrono::steady_clock::now();
    (void)buffered_engine.measure_scenarios(plan);
    buffered_ms = std::min(buffered_ms, wall_ms_since(t1));
  }

  // Both paths fold through the same blocked reduction: exact agreement.
  bool identical = streamed.size() == buffered.size();
  for (std::size_t c = 0; identical && c < streamed.size(); ++c)
    identical = streamed[c].tta.mean() == buffered[c].tta.mean() &&
                streamed[c].ttsf.variance() == buffered[c].ttsf.variance() &&
                streamed[c].successes == buffered[c].successes &&
                streamed[c].tta_censored == buffered[c].tta_censored &&
                streamed[c].tta_event.restricted_mean ==
                    buffered[c].tta_event.restricted_mean &&
                streamed[c].samples.empty() &&
                buffered[c].samples.size() == reps;

  // Aggregation state the two backends allocate (deterministic, unlike
  // the RSS high-water deltas also recorded below): the buffered sample
  // matrix vs the per-cell + in-flight block accumulators. Per
  // accumulator, the heap beyond the struct is two survival count arrays,
  // two t-digests at their 2x-compression compaction ceiling, and the
  // ratio-curve bin sums; per buffered sample, the ratio_counts vector.
  const double accumulator_bytes =
      static_cast<double>(sizeof(core::IndicatorAccumulator)) +
      2.0 * static_cast<double>((mo.survival_bins + (mo.survival_bins + 1)) *
                                sizeof(std::uint64_t)) +
      2.0 * 2.0 * stats::CensoredTimeAccumulator::kSketchCompression *
          static_cast<double>(sizeof(stats::TDigest::Centroid)) +
      static_cast<double>(mo.survival_bins * sizeof(std::uint64_t));
  const std::size_t round =
      sim::blocked_round_size(streaming_engine.executor());
  const double streaming_mb =
      static_cast<double>(plan.cell_count() + round) * accumulator_bytes /
      (1024.0 * 1024.0);
  const double buffered_mb =
      static_cast<double>(plan.cell_count()) * static_cast<double>(reps) *
      (static_cast<double>(sizeof(core::IndicatorSample)) +
       static_cast<double>(mo.survival_bins * sizeof(std::uint32_t))) /
      (1024.0 * 1024.0);
  const double footprint_ratio =
      streaming_mb > 0.0 ? buffered_mb / streaming_mb : 0.0;
  const double rss_stream_delta = rss_stream - rss_base;
  const double rss_buffered_delta = rss_buffered - rss_stream;
  const double wall_ratio = stream_ms > 0.0 ? buffered_ms / stream_ms : 0.0;

  bench::row({"path", "wall ms", "agg MiB", "peak-RSS delta MiB"}, 20);
  bench::row({"streaming", bench::fmt(stream_ms, 1), bench::fmt(streaming_mb, 3),
              bench::fmt(rss_stream_delta, 1)},
             20);
  bench::row({"buffered", bench::fmt(buffered_ms, 1), bench::fmt(buffered_mb, 3),
              bench::fmt(rss_buffered_delta, 1)},
             20);
  std::printf(
      "aggregation footprint reduction: %.0fx   wall buffered/streaming: "
      "%.2f   summaries identical: %s\n",
      footprint_ratio, wall_ratio, identical ? "yes" : "NO (BUG)");
  std::printf(
      "censor-aware TTA (monoculture): rmean=%.1f h  biased mean=%.1f h  "
      "censored=%zu/%zu\n",
      streamed[0].tta_event.restricted_mean, streamed[0].tta.mean(),
      streamed[0].tta_censored, reps);

  const int threads = static_cast<int>(streaming_engine.executor().thread_count());
  bench::write_bench_json(
      "BENCH_e5_streaming.json",
      {{"e5.streaming_sweep_2x" + std::to_string(reps), stream_ms, threads, 1.0,
        streaming_mb},
       {"e5.buffered_sweep_2x" + std::to_string(reps), buffered_ms, threads,
        stream_ms > 0.0 ? buffered_ms / stream_ms : 0.0, buffered_mb},
       {"e5.streaming_peak_rss_delta", stream_ms, threads, 1.0, rss_stream_delta},
       {"e5.buffered_peak_rss_delta", buffered_ms, threads, 1.0,
        rss_buffered_delta}});

  // Measured backstop for the analytic footprint ratio: had the
  // streaming path materialized the sample matrix after all, its
  // peak-RSS delta would grow by ~buffered_mb — require it to stay well
  // under half that (1 MiB floor for allocator noise; skipped where
  // getrusage is unavailable).
  const bool rss_ok = !std::isfinite(rss_stream_delta) ||
                      rss_stream_delta <= std::max(1.0, 0.5 * buffered_mb);
  // Wall-clock gate with tolerance: the paths do the same simulation
  // work; anything past 15% is a real streaming-backend regression.
  return identical && footprint_ratio >= 10.0 && rss_ok &&
         stream_ms <= buffered_ms * 1.15;
}

/// Elastic scheduling at fleet scale: the same skewed-policy
/// enterprise256 sweep sharded two ways — contiguous balanced task
/// ranges (the pre-elastic assignment) vs a cost-weighted LPT plan built
/// from the costs the static run itself measured. The monoculture arm
/// simulates ~5x slower than the diversified arms, so the static split
/// parks the whole expensive cell on the front shards while the tail
/// idles; LPT deals its superblocks across the fleet. Gates: the merged
/// measurement CSVs must agree byte for byte (the elastic deal must not
/// move a single bit), and the worst shard's measured task work must
/// improve by >= 1.3x. Shards run sequentially in one process, so
/// per-shard work times are comparable even on a single-core runner;
/// wall times (which add per-process plan expansion) are reported and
/// recorded alongside.
bool elastic_scheduling_phase() {
  dist::SweepSpec spec;
  spec.preset = "enterprise256";
  spec.seed = 2013;
  spec.replications = 24576;
  spec.replication_block = 256;
  spec.superblock = 3072;  // 8 superblocks per cell -> 24 tasks over 3 cells
  constexpr std::size_t kShards = 4;

  bench::section("E5 elastic: cost-weighted LPT vs static contiguous shards (" +
                 spec.preset + ")");
  std::printf("cells=%zu replications=%zu superblock=%zu tasks=%zu shards=%zu\n",
              spec.policies.size(), spec.replications, spec.superblock,
              spec.policies.size() * (spec.replications / spec.superblock),
              kShards);

  const auto shard_work_s = [](const dist::ShardState& s) {
    double total = 0.0;
    for (const auto& c : s.cost.cells) total += c.seconds;
    return total;
  };

  // Static contiguous shards — also the calibration run: every shard
  // state carries the per-cell costs it measured.
  std::vector<dist::ShardState> static_states;
  for (std::size_t i = 0; i < kShards; ++i)
    static_states.push_back(dist::run_shard(spec, i, kShards));
  const dist::MergeResult static_merged = dist::merge_shards(static_states);

  // Cost-weighted plan from the merged measurements, then the same sweep
  // through the explicit task lists.
  const sim::ShardPlan task_space = dist::sweep_shard_plan(static_merged.meta);
  const auto assignment = dist::cost_weighted_assignment(
      task_space, static_merged.cost, kShards);
  std::vector<dist::ShardState> elastic_states;
  for (std::size_t i = 0; i < kShards; ++i)
    elastic_states.push_back(
        dist::run_shard_tasks(spec, assignment[i], i, kShards));
  const dist::MergeResult elastic_merged = dist::merge_shards(elastic_states);

  const bool identical =
      dist::sweep_csv(static_merged.meta, static_merged.summaries) ==
      dist::sweep_csv(elastic_merged.meta, elastic_merged.summaries);

  double static_worst_work = 0.0, static_worst_wall = 0.0;
  double elastic_worst_work = 0.0, elastic_worst_wall = 0.0;
  bench::row({"shard", "static work s", "static wall ms", "elastic work s",
              "elastic wall ms"},
             17);
  for (std::size_t i = 0; i < kShards; ++i) {
    const double sw = shard_work_s(static_states[i]);
    const double ew = shard_work_s(elastic_states[i]);
    static_worst_work = std::max(static_worst_work, sw);
    elastic_worst_work = std::max(elastic_worst_work, ew);
    static_worst_wall =
        std::max(static_worst_wall, static_states[i].meta.wall_ms);
    elastic_worst_wall =
        std::max(elastic_worst_wall, elastic_states[i].meta.wall_ms);
    bench::row({bench::fmt_int(static_cast<long long>(i)), bench::fmt(sw, 3),
                bench::fmt(static_states[i].meta.wall_ms, 1),
                bench::fmt(ew, 3),
                bench::fmt(elastic_states[i].meta.wall_ms, 1)},
               17);
  }
  const double work_gain =
      elastic_worst_work > 0.0 ? static_worst_work / elastic_worst_work : 0.0;
  const double wall_gain =
      elastic_worst_wall > 0.0 ? static_worst_wall / elastic_worst_wall : 0.0;
  std::printf(
      "worst shard: work %.3f s -> %.3f s (%.2fx), wall %.1f ms -> %.1f ms "
      "(%.2fx)   merged CSV identical: %s\n",
      static_worst_work, elastic_worst_work, work_gain, static_worst_wall,
      elastic_worst_wall, wall_gain, identical ? "yes" : "NO (BUG)");

  std::vector<util::BenchRecord> records;
  for (std::size_t i = 0; i < kShards; ++i) {
    records.push_back({"e5.static_shard" + std::to_string(i),
                       static_states[i].meta.wall_ms,
                       static_cast<int>(static_states[i].meta.threads), 1.0});
    records.push_back({"e5.elastic_shard" + std::to_string(i),
                       elastic_states[i].meta.wall_ms,
                       static_cast<int>(elastic_states[i].meta.threads), 1.0});
  }
  // The trajectory records CI gates on: `speedup` is the worst-shard
  // improvement of the cost-weighted deal over the static one.
  records.push_back({"e5.elastic_worst_shard_work", elastic_worst_work * 1e3,
                     1, work_gain});
  records.push_back({"e5.elastic_worst_shard_wall", elastic_worst_wall, 1,
                     wall_gain});
  bench::write_bench_json("BENCH_e5_elastic.json", records);

  return identical && work_gain >= 1.3;
}

/// Adaptive controller vs the fixed budget: the PR-7 acceptance gate.
/// The same skewed enterprise256 sweep the elastic phase runs, but
/// driven by the variance-based stopping rule — every cell must reach
/// the CI half-width target (1% relative with a 0.002 absolute floor —
/// tight enough that the cells stop at genuinely different counts) or
/// its budget cap, the controller must spend >= 3x fewer replications
/// than the fixed budget, and a 2-shard replay of the recorded per-cell
/// achieved counts must reproduce the adaptive CSV byte for byte.
/// Records land in BENCH_e5_adaptive.json; the per-round merge record
/// carries its own sub-millisecond noise floor (wall_floor_ms) so the
/// gate actually sees it instead of skipping it under the global 5 ms
/// CLI floor.
bool adaptive_sweep_phase() {
  dist::SweepSpec spec;
  spec.preset = "enterprise256";
  spec.seed = 2013;
  spec.replications = 24576;  // the per-cell budget cap
  spec.replication_block = 256;
  spec.superblock = 512;  // 48 superblocks per cell
  constexpr std::size_t kShards = 4;

  dist::AdaptiveSweepOptions options;
  options.shards = kShards;
  options.relative_precision = 0.01;
  options.absolute_precision = 0.002;

  bench::section("E5 adaptive: variance-driven replication allocation (" +
                 spec.preset + ")");
  std::printf("cells=%zu budget=%zu/cell superblock=%zu shards=%zu "
              "precision=1%% abs-floor=0.002\n",
              spec.policies.size(), spec.replications, spec.superblock,
              kShards);

  const dist::AdaptiveResult result = dist::run_adaptive(spec, options);

  // Per-cell verdict against the same resolved rule the controller used.
  core::AdaptiveOptions adaptive;
  adaptive.enabled = true;
  adaptive.relative_precision = options.relative_precision;
  adaptive.absolute_precision = options.absolute_precision;
  adaptive.confidence_level = options.confidence_level;
  const core::AdaptiveSchedule sched = core::resolve_adaptive_schedule(
      adaptive, spec.replications, spec.superblock);
  bool precision_ok = true;
  bench::row({"cell", "achieved", "rounds", "verdict"}, 14);
  for (std::size_t c = 0; c < result.meta.cells; ++c) {
    const bool capped = result.meta.achieved[c] >= sched.rule.max_replications;
    const bool converged = result.accumulators[c].precision_reached(sched.rule);
    if (!capped && !converged) precision_ok = false;
    bench::row({bench::fmt_int(static_cast<long long>(c)),
                bench::fmt_int(static_cast<long long>(result.meta.achieved[c])),
                bench::fmt_int(static_cast<long long>(result.cell_rounds[c])),
                converged ? "converged" : (capped ? "capped" : "NEITHER (BUG)")},
               14);
  }

  const double savings =
      result.total_replications > 0
          ? static_cast<double>(result.budget_replications) /
                static_cast<double>(result.total_replications)
          : 0.0;

  // Replay the recorded achieved counts across a DIFFERENT shard cut (2
  // instead of 4) and demand the byte-identical CSV — the reproducibility
  // contract is the counts, never the round schedule or the deal.
  const dist::ShardState adaptive_st = dist::adaptive_state(result);
  const dist::SweepSpec replay_spec = dist::spec_from_meta(adaptive_st.meta);
  const std::vector<std::uint64_t> tasks =
      dist::achieved_tasks(adaptive_st.meta);
  const std::size_t half = tasks.size() / 2;
  std::vector<dist::ShardState> replay_states;
  replay_states.push_back(dist::run_shard_tasks(
      replay_spec, {tasks.begin(), tasks.begin() + half}, 0, 2));
  replay_states.push_back(dist::run_shard_tasks(
      replay_spec, {tasks.begin() + half, tasks.end()}, 1, 2));
  const dist::MergeResult replayed = dist::merge_shards(replay_states);
  const bool identical =
      dist::sweep_csv(result.meta, result.summaries) ==
      dist::sweep_csv(replayed.meta, replayed.summaries);

  double merge_total_ms = 0.0, replay_worst_wall = 0.0;
  for (const dist::RoundLog& r : result.rounds) merge_total_ms += r.merge_ms;
  for (const auto& s : replay_states)
    replay_worst_wall = std::max(replay_worst_wall, s.meta.wall_ms);

  std::printf("replications %llu of %llu budget (%.2fx saved) in %zu "
              "round(s), %.1f ms   2-shard replay CSV identical: %s\n",
              static_cast<unsigned long long>(result.total_replications),
              static_cast<unsigned long long>(result.budget_replications),
              savings, result.rounds.size(), result.meta.wall_ms,
              identical ? "yes" : "NO (BUG)");

  std::vector<util::BenchRecord> records;
  // `speedup` on the sweep record is the replications-saved ratio — the
  // metric CI gates against the >= 3x acceptance bar (speedup may not
  // drop more than 20% below baseline).
  records.push_back({"e5.adaptive_sweep", result.meta.wall_ms,
                     static_cast<int>(result.meta.threads), savings});
  records.push_back({"e5.adaptive_replay_worst_shard", replay_worst_wall,
                     static_cast<int>(replay_states[0].meta.threads), 1.0});
  // Sub-millisecond metric: opts into gating with its own noise floor
  // instead of hiding under the global 5 ms skip.
  util::BenchRecord merge_record{"e5.adaptive_round_merge_total",
                                 merge_total_ms, 1, 1.0};
  merge_record.wall_floor_ms = 0.05;
  records.push_back(merge_record);
  bench::write_bench_json("BENCH_e5_adaptive.json", records);

  return precision_ok && identical && savings >= 3.0;
}

/// SoA kernel vs the preserved PR-5 indexed engine
/// (bench/indexed_campaign.h): the acceptance gate of the SoA refactor.
/// Same enterprise1024 fleet and sustained-throughput configuration as
/// the fleet phase. The SoA kernel draws from per-event-class streams
/// (different sequence, same event law), so equivalence is statistical
/// (5 sigma); the batched and scalar-reference kernels of the NEW engine
/// share the draw contract, so those two must agree bit for bit. Gates:
/// equivalence, bit-identity, and >= 2x per-replication speedup over the
/// indexed engine. Appends its records to BENCH_e5_soa.json together
/// with the 10^4-cell residency phase below.
bool soa_kernel_phase(std::vector<util::BenchRecord>& records) {
  constexpr std::size_t kNodes = 1024;
  constexpr std::size_t kReps = 96;
  constexpr std::uint64_t kSeed = 2013;
  const std::string preset = "enterprise" + std::to_string(kNodes);

  const divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  const attack::ThreatProfile stuxnet = attack::ThreatProfile::stuxnet();
  const scenario::GeneratedScenario fleet = scenario::make_preset(
      preset, cat, kSeed, scenario::VariantPolicy::kMonoculture);

  bench::section("E5 SoA: " + preset +
                 " campaign, PR-5 indexed engine vs SoA kernel");

  attack::CampaignOptions opts;
  opts.detection_halts_attack = false;
  attack::CampaignOptions scalar_opts = opts;
  scalar_opts.kernel = attack::CampaignKernel::kScalarReference;

  const bench::indexed::CampaignSimulator indexed_sim(fleet.scenario, stuxnet,
                                                      cat, {}, opts);
  const attack::CampaignSimulator batched_sim(fleet.scenario, stuxnet, cat, {},
                                              opts);
  const attack::CampaignSimulator scalar_sim(fleet.scenario, stuxnet, cat, {},
                                             scalar_opts);

  const auto run_set = [&](const auto& sim, stats::OnlineStats& ratio,
                           stats::OnlineStats& ttsf, stats::OnlineStats& success,
                           std::size_t& events) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < kReps; ++r) {
      stats::Rng rng(kSeed, r);
      const auto res = sim.run(rng);
      ratio.add(res.compromised_ratio.back().second);
      ttsf.add(res.time_to_detection.value_or(opts.t_max_hours));
      success.add(res.attack_succeeded() ? 1.0 : 0.0);
      events += res.events_executed;
    }
    return wall_ms_since(start) / kReps;
  };

  stats::OnlineStats idx_ratio, idx_ttsf, idx_success;
  stats::OnlineStats soa_ratio, soa_ttsf, soa_success;
  stats::OnlineStats ref_ratio, ref_ttsf, ref_success;
  std::size_t idx_events = 0, soa_events = 0, ref_events = 0;
  const double indexed_ms =
      run_set(indexed_sim, idx_ratio, idx_ttsf, idx_success, idx_events);
  const double batched_ms =
      run_set(batched_sim, soa_ratio, soa_ttsf, soa_success, soa_events);
  const double scalar_ms =
      run_set(scalar_sim, ref_ratio, ref_ttsf, ref_success, ref_events);

  // Batched vs scalar reference: same draw contract, so exact equality
  // of the folded replication statistics (the per-run bit-identity is
  // pinned exhaustively in tests/test_soa_campaign.cpp).
  const bool bit_identical = soa_ratio.mean() == ref_ratio.mean() &&
                             soa_ttsf.mean() == ref_ttsf.mean() &&
                             soa_success.mean() == ref_success.mean() &&
                             soa_events == ref_events;

  const auto close = [&](const stats::OnlineStats& a, const stats::OnlineStats& b,
                         double floor) {
    const double se = std::sqrt(a.variance() / static_cast<double>(kReps) +
                                b.variance() / static_cast<double>(kReps));
    return std::abs(a.mean() - b.mean()) <= 5.0 * se + floor;
  };
  const bool equivalent = close(idx_ratio, soa_ratio, 1e-3) &&
                          close(idx_ttsf, soa_ttsf, 1e-6) &&
                          close(idx_success, soa_success, 1e-3);

  const double speedup = batched_ms > 0.0 ? indexed_ms / batched_ms : 0.0;
  bench::row({"kernel", "ms/replication", "events/rep", "speedup"}, 18);
  bench::row({"indexed (PR-5)", bench::fmt(indexed_ms, 3),
              bench::fmt_int(static_cast<long long>(idx_events / kReps)),
              bench::fmt(1.0, 2)},
             18);
  bench::row({"soa scalar-ref", bench::fmt(scalar_ms, 3),
              bench::fmt_int(static_cast<long long>(ref_events / kReps)),
              bench::fmt(scalar_ms > 0.0 ? indexed_ms / scalar_ms : 0.0, 2)},
             18);
  bench::row({"soa batched", bench::fmt(batched_ms, 3),
              bench::fmt_int(static_cast<long long>(soa_events / kReps)),
              bench::fmt(speedup, 2)},
             18);
  std::printf(
      "equivalence (%zu reps): %s  ratio %.4f vs %.4f | mean TTSF %.1f vs "
      "%.1f | success %.3f vs %.3f   batched == scalar-ref: %s\n",
      kReps, equivalent ? "OK" : "FAILED", idx_ratio.mean(), soa_ratio.mean(),
      idx_ttsf.mean(), soa_ttsf.mean(), idx_success.mean(), soa_success.mean(),
      bit_identical ? "yes" : "NO (BUG)");

  records.push_back(
      {"e5.soa_campaign_indexed_" + std::to_string(kNodes), indexed_ms, 1, 1.0});
  records.push_back({"e5.soa_campaign_batched_" + std::to_string(kNodes),
                     batched_ms, 1, speedup});
  return equivalent && bit_identical && speedup >= 2.0;
}

/// Context residency at 10^4 cells: a same-topology enterprise128 sweep
/// through measure_scenarios with streaming aggregation. The engine
/// builds contexts lazily per scheduling round and shares the one
/// reachability index, so the sweep's peak-RSS delta — measured AFTER
/// plan construction, whose 10^4 Scenario copies are the caller's own
/// storage — must stay far below what 10^4 eager contexts would cost
/// (the pre-SoA path held every context for the whole call). Gates:
/// one reachability build, peak residency a small multiple of the round
/// width, RSS delta <= 64 MiB. The counters come from the obs::
/// registry (core.context.*, the successor of the bespoke ContextStats
/// struct); the registry is process-cumulative, so the phase reads a
/// delta by zeroing it first. A DIVSEC_OBS=0 build keeps the RSS gate
/// and skips the counter gate (the counters read as zero).
bool context_residency_phase(std::vector<util::BenchRecord>& records) {
  constexpr std::size_t kCells = 10000;
  constexpr std::uint64_t kSeed = 2013;
  const divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  const attack::ThreatProfile stuxnet = attack::ThreatProfile::stuxnet();
  const scenario::GeneratedScenario fleet = scenario::make_preset(
      "enterprise128", cat, kSeed, scenario::VariantPolicy::kMonoculture);

  bench::section("E5 SoA: context residency, 10^4-cell enterprise128 sweep");

  core::ScenarioSweepPlan plan;
  plan.cells.reserve(kCells);
  for (std::size_t c = 0; c < kCells; ++c)
    plan.cells.push_back({fleet.scenario, kSeed + c});

  core::MeasurementOptions mo;
  mo.engine = core::Engine::kCampaign;
  mo.replications = 4;
  mo.seed = kSeed;
  mo.keep_samples = false;
  mo.campaign.t_max_hours = 24.0;  // residency phase, not a throughput one
  const core::MeasurementEngine engine(cat, stuxnet, mo);

  obs::reset();
  const double rss_base = bench::peak_rss_mb();  // after plan construction
  const auto start = std::chrono::steady_clock::now();
  const auto summaries = engine.measure_scenarios(plan);
  const double wall_ms = wall_ms_since(start);
  const double rss_delta = bench::peak_rss_mb() - rss_base;

  const obs::Snapshot snap = obs::snapshot();
  const std::uint64_t built = snap.counter("core.context.built");
  const std::uint64_t reach_builds = snap.counter("core.context.reach_builds");
  const std::uint64_t peak_live = snap.gauge("core.context.peak_live");

  const std::size_t threads = engine.executor().thread_count();
  std::printf(
      "cells=%zu reps=%zu horizon=%.0fh threads=%zu: wall %.1f ms, contexts "
      "built=%llu peak_live=%llu reach_builds=%llu, peak-RSS delta %.1f MiB\n",
      plan.cell_count(), mo.replications, mo.campaign.t_max_hours, threads,
      wall_ms, static_cast<unsigned long long>(built),
      static_cast<unsigned long long>(peak_live),
      static_cast<unsigned long long>(reach_builds), rss_delta);

  records.push_back({"e5.soa_sweep10000_wall", wall_ms,
                     static_cast<int>(threads), 1.0});
  records.push_back({"e5.soa_sweep10000_peak_rss_delta", wall_ms,
                     static_cast<int>(threads), 1.0,
                     std::isfinite(rss_delta) ? rss_delta : 0.0});

  const bool residency_ok =
      !obs::enabled() || (built == kCells && reach_builds == 1 &&
                          peak_live <= 8 * threads + 8);
  const bool rss_ok = !std::isfinite(rss_delta) || rss_delta <= 64.0;
  return summaries.size() == kCells && residency_ok && rss_ok;
}

/// Telemetry-overhead phase: the identical enterprise256 in-process
/// sweep with the obs:: hot path recording vs runtime-disabled
/// (obs::set_enabled(false) — the same relaxed-load kill switch every
/// Counter::add checks). Arms are interleaved ABAB and each takes its
/// min-of-N wall, so machine drift hits both equally. Two gates:
///   * metrics-on wall <= 1.02x metrics-off (the ISSUE-9 acceptance
///     bar for the striped-atomic hot path), and
///   * the sweep CSV is byte-identical across every run of both arms —
///     the out-of-band invariant, checked at bench scale.
/// Records land in BENCH_e5_obs.json for the CI trajectory.
bool obs_overhead_phase() {
  constexpr int kTrials = 3;
  dist::SweepSpec spec;
  spec.preset = "enterprise256";
  spec.seed = 2013;
  // Big enough that the per-arm min wall is O(100 ms) single-threaded —
  // a 2% gate on a millisecond wall would measure scheduler noise, not
  // the recording hot path.
  spec.replications = 4096;
  spec.horizon_hours = 720.0;

  bench::section("E5 obs: telemetry overhead, " + spec.preset +
                 " metrics-on vs metrics-off");

  const sim::Executor executor(0);  // DIVSEC_THREADS default
  const dist::SweepMeta meta = dist::make_meta(spec);
  const bool was_enabled = obs::enabled();

  std::string reference_csv;
  bool csv_identical = true;
  const auto run_arm = [&](bool on) {
    obs::set_enabled(on);
    const auto start = std::chrono::steady_clock::now();
    const auto summaries = dist::run_in_process(spec, &executor);
    const double ms = wall_ms_since(start);
    const std::string csv = dist::sweep_csv(meta, summaries);
    if (reference_csv.empty()) reference_csv = csv;
    else if (csv != reference_csv) csv_identical = false;
    return ms;
  };

  double off_ms = 0.0, on_ms = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    const double off = run_arm(false);
    const double on = run_arm(true);
    off_ms = t == 0 ? off : std::min(off_ms, off);
    on_ms = t == 0 ? on : std::min(on_ms, on);
  }
  obs::set_enabled(was_enabled);

  const double overhead =
      off_ms > 0.0 ? (on_ms - off_ms) / off_ms * 100.0 : 0.0;
  const std::size_t threads = executor.thread_count();
  std::printf(
      "threads=%zu trials=%d (min wall): metrics-off %.1f ms, metrics-on "
      "%.1f ms, overhead %+.2f%% (gate <= +2%%), CSV identical: %s\n",
      threads, kTrials, off_ms, on_ms, overhead, csv_identical ? "yes" : "NO");

  std::vector<util::BenchRecord> records;
  records.push_back({"e5.obs_sweep_metrics_off", off_ms,
                     static_cast<int>(threads), 1.0});
  records.push_back({"e5.obs_sweep_metrics_on", on_ms,
                     static_cast<int>(threads),
                     on_ms > 0.0 ? off_ms / on_ms : 1.0});
  bench::write_bench_json("BENCH_e5_obs.json", records);

  return csv_identical && on_ms <= off_ms * 1.02;
}

/// State-codec phase at 10^4 cells: the v4 packed shard-state format
/// against its own fixed-width field walk (identical sections, 8-byte
/// scalars instead of varints/RLE — the honest "uncompressed
/// equivalent"). A 10^4-cell enterprise256 sweep with a small
/// fixed budget is encoded once as a single shard and once as a 4-shard
/// cut, every state pushed through encode -> decode -> re-encode (the
/// bytes a real shard file carries), and both cuts merged. Gates: the
/// re-encode is byte-identical (exact state round-trip), the merged CSVs
/// of the two cuts agree byte for byte (the codec moves no bits), and
/// the packed encoding is >= 4x smaller than the fixed-width equivalent.
/// Encoded size lands in BENCH_e5_codec.json as `state_bytes`, which CI
/// gates lower-is-better so the format cannot quietly bloat back.
bool codec_phase() {
  constexpr std::size_t kCells = 10000;
  constexpr std::size_t kShards = 4;
  dist::SweepSpec spec;
  spec.preset = "enterprise256";
  spec.seed = 2013;
  spec.replications = 8;
  spec.replication_block = 8;
  spec.superblock = 8;        // one superblock task per cell
  spec.horizon_hours = 24.0;  // codec phase, not a throughput one
  spec.policies.clear();
  spec.policies.reserve(kCells);
  constexpr scenario::VariantPolicy kCycle[3] = {
      scenario::VariantPolicy::kMonoculture,
      scenario::VariantPolicy::kZoneStratified,
      scenario::VariantPolicy::kRandomPerNode};
  for (std::size_t c = 0; c < kCells; ++c)
    spec.policies.push_back(kCycle[c % 3]);

  bench::section("E5 codec: v4 packed shard state, 10^4-cell " + spec.preset +
                 " sweep");

  const auto run_start = std::chrono::steady_clock::now();
  const dist::ShardState single = dist::run_shard(spec, 0, 1);
  const double sweep_ms = wall_ms_since(run_start);

  const auto encode_start = std::chrono::steady_clock::now();
  const std::string encoded = dist::encode_shard_state(single);
  const double encode_ms = wall_ms_since(encode_start);
  const auto decode_start = std::chrono::steady_clock::now();
  const dist::ShardState decoded = dist::decode_shard_state(encoded);
  const double decode_ms = wall_ms_since(decode_start);
  const bool roundtrip = dist::encode_shard_state(decoded) == encoded;

  const std::size_t equivalent = dist::uncompressed_equivalent_bytes(single);
  const double ratio =
      encoded.empty() ? 0.0
                      : static_cast<double>(equivalent) /
                            static_cast<double>(encoded.size());
  const dist::StateSectionSizes sizes = dist::state_section_sizes(encoded);
  bench::row({"section", "header", "meta", "tasks", "accums", "cost", "rounds"},
             12);
  bench::row({"bytes", bench::fmt_int(static_cast<long long>(sizes.header)),
              bench::fmt_int(static_cast<long long>(sizes.meta)),
              bench::fmt_int(static_cast<long long>(sizes.tasks)),
              bench::fmt_int(static_cast<long long>(sizes.accumulators)),
              bench::fmt_int(static_cast<long long>(sizes.cost)),
              bench::fmt_int(static_cast<long long>(sizes.rounds))},
             12);

  // The 4-shard cut, with every state pushed through the codec exactly
  // as the file-based flow would; merged CSVs of the two cuts must agree
  // byte for byte.
  std::vector<dist::ShardState> shard_states;
  for (std::size_t i = 0; i < kShards; ++i)
    shard_states.push_back(dist::decode_shard_state(
        dist::encode_shard_state(dist::run_shard(spec, i, kShards))));
  const dist::MergeResult merged_single = dist::merge_shards({decoded});
  const dist::MergeResult merged_cut = dist::merge_shards(shard_states);
  const bool identical =
      dist::sweep_csv(merged_single.meta, merged_single.summaries) ==
      dist::sweep_csv(merged_cut.meta, merged_cut.summaries);

  std::printf(
      "cells=%zu reps=%zu: packed %zu bytes vs %zu fixed-width (%.2fx), "
      "encode %.1f ms decode %.1f ms\n"
      "re-encode byte-identical: %s   1-vs-%zu-shard merged CSV identical: "
      "%s\n",
      kCells, spec.replications, encoded.size(), equivalent, ratio, encode_ms,
      decode_ms, roundtrip ? "yes" : "NO (BUG)", kShards,
      identical ? "yes" : "NO (BUG)");

  // `speedup` on the encode record is the compression ratio (>= 4x bar:
  // the -20% speedup tolerance keeps it above ~3.2 even on refresh);
  // `state_bytes` is the absolute ceiling CI gates lower-is-better.
  util::BenchRecord encode_rec{"e5.codec_encode_10000c", encode_ms, 1, ratio};
  encode_rec.wall_floor_ms = 0.5;
  encode_rec.state_bytes = static_cast<double>(encoded.size());
  util::BenchRecord decode_rec{"e5.codec_decode_10000c", decode_ms, 1, 1.0};
  decode_rec.wall_floor_ms = 0.5;
  bench::write_bench_json(
      "BENCH_e5_codec.json",
      {{"e5.codec_sweep10000_wall", sweep_ms,
        static_cast<int>(single.meta.threads), 1.0},
       encode_rec, decode_rec});

  return roundtrip && identical && ratio >= 4.0;
}

/// Wrapper run by --fleet-smoke: both SoA phases share one JSON.
bool soa_phases() {
  std::vector<util::BenchRecord> records;
  const bool kernel_ok = soa_kernel_phase(records);
  const bool residency_ok = context_residency_phase(records);
  bench::write_bench_json("BENCH_e5_soa.json", records);
  return kernel_ok && residency_ok;
}

struct Setup {
  divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  core::SystemDescription desc = core::make_scope_description(cat);
  attack::ThreatProfile stuxnet = attack::ThreatProfile::stuxnet();
  core::MeasurementOptions mo;
  Setup() {
    mo.engine = core::Engine::kCampaign;
    mo.replications = 200;
    mo.seed = 51;
  }
};

void print_curves() {
  Setup s;
  std::vector<double> grid;
  for (double t = 0.0; t <= 2160.0; t += 120.0) grid.push_back(t);

  const core::Configuration mono = s.desc.baseline_configuration();
  stats::Rng rng(1);
  const core::Configuration partial = core::place_resilient_components(
      s.desc, 2, core::PlacementStrategy::kStrategic, s.stuxnet, s.mo, rng);
  const core::Configuration full = core::place_resilient_components(
      s.desc, 7, core::PlacementStrategy::kStrategic, s.stuxnet, s.mo, rng);

  const auto c_mono =
      core::mean_compromised_ratio_curve(s.desc, mono, s.stuxnet, s.mo, grid);
  const auto c_part =
      core::mean_compromised_ratio_curve(s.desc, partial, s.stuxnet, s.mo, grid);
  const auto c_full =
      core::mean_compromised_ratio_curve(s.desc, full, s.stuxnet, s.mo, grid);

  // Mean-field SI baseline over the same reachability graph (no exploit
  // failure, no detection): the upper envelope a pure worm model gives.
  const attack::Scenario base = s.desc.instantiate(mono);
  net::MeanFieldEpidemic epidemic(
      base.topology, base.firewall,
      {net::Channel::kUsb, net::Channel::kSmbShare, net::Channel::kPrintSpooler},
      base.entry_nodes, {0.02, 0.5});
  const auto c_mf = epidemic.ratio_curve(grid);

  bench::section("E5: mean compromised ratio c(t), 200 campaigns each");
  bench::row({"t (h)", "monoculture", "2 diversified", "7 diversified",
              "mean-field SI"},
             16);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    bench::row({bench::fmt(grid[i], 0), bench::fmt(c_mono[i]),
                bench::fmt(c_part[i]), bench::fmt(c_full[i]),
                bench::fmt(c_mf[i])},
               16);
  }
  std::printf(
      "\nShape check: monoculture saturates high and early, tracking the\n"
      "mean-field SI envelope; each diversity step lowers both the growth\n"
      "rate and the plateau of c(t) far below what a topology-only worm\n"
      "model can explain — the reduction is the diversity effect.\n");
}

void BM_OneCampaign(benchmark::State& state) {
  Setup s;
  const attack::CampaignSimulator sim(
      s.desc.instantiate(s.desc.baseline_configuration()), s.stuxnet, s.cat);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    stats::Rng rng(9, seed++);
    auto r = sim.run(rng);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_OneCampaign)->Unit(benchmark::kMicrosecond);

void BM_MeanRatioCurve(benchmark::State& state) {
  Setup s;
  s.mo.replications = 50;
  std::vector<double> grid{0, 500, 1000, 1500, 2000};
  for (auto _ : state) {
    auto c = core::mean_compromised_ratio_curve(
        s.desc, s.desc.baseline_configuration(), s.stuxnet, s.mo, grid);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_MeanRatioCurve)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // The acceptance-scale streaming comparison: >= 1e5 replications per
  // enterprise256 cell.
  constexpr std::size_t kStreamingReps = 100000;
  // CI smoke mode: only the fleet and streaming phases (generated-preset
  // campaign + sweep + aggregation comparison, JSON emission), skipping
  // the slower paper-curve tables and google-benchmark timings. Exits
  // non-zero if the indexed engine diverges from the preserved legacy
  // implementation or the streaming backend regresses.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fleet-smoke") == 0) {
      const bool fleet_ok = fleet_speedup_phase();
      const bool soa_ok = soa_phases();
      const bool streaming_ok = streaming_aggregation_phase(kStreamingReps);
      const bool elastic_ok = elastic_scheduling_phase();
      const bool adaptive_ok = adaptive_sweep_phase();
      const bool codec_ok = codec_phase();
      const bool obs_ok = obs_overhead_phase();
      return fleet_ok && soa_ok && streaming_ok && elastic_ok && adaptive_ok &&
                     codec_ok && obs_ok
                 ? 0
                 : 1;
    }
  }
  print_curves();
  const bool fleet_ok = fleet_speedup_phase();
  const bool soa_ok = soa_phases();
  const bool streaming_ok = streaming_aggregation_phase(kStreamingReps);
  const bool elastic_ok = elastic_scheduling_phase();
  const bool adaptive_ok = adaptive_sweep_phase();
  const bool codec_ok = codec_phase();
  const bool obs_ok = obs_overhead_phase();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return fleet_ok && soa_ok && streaming_ok && elastic_ok && adaptive_ok &&
                 codec_ok && obs_ok
             ? 0
             : 1;
}
