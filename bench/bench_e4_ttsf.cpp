// E4 — indicator (ii), Time-To-Security-Failure (Madan et al., DSN'02):
// time from attack start to the perceived attack manifestation. Sweeps
// diversity degree and contrasts spoofing-capable Stuxnet against a
// spoof-less variant: monitoring-signal spoofing is what stretches the
// undetected window ("remain undetected for many months").
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/optimizer.h"
#include "stats/descriptive.h"

namespace {

using namespace divsec;

struct Setup {
  divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  core::SystemDescription desc = core::make_scope_description(cat);
  core::MeasurementOptions mo;
  Setup() {
    mo.engine = core::Engine::kStagedSan;
    mo.replications = 2000;
    mo.seed = 41;
  }
};

void print_diversity_sweep() {
  Setup s;
  const attack::ThreatProfile stuxnet = attack::ThreatProfile::stuxnet();
  bench::section("E4a: Time-To-Security-Failure vs diversity degree");
  bench::row({"k diversified", "E[TTSF] h", "median h", "undetected",
              "P[success]"},
             15);
  for (std::size_t k = 0; k <= 5; ++k) {
    stats::Rng rng(200 + k);
    const core::Configuration c = core::place_resilient_components(
        s.desc, k, core::PlacementStrategy::kStrategic, stuxnet, s.mo, rng);
    const auto summary = core::measure_indicators(s.desc, c, stuxnet, s.mo);
    std::vector<double> ttsf;
    for (const auto& smp : summary.samples) ttsf.push_back(smp.ttsf);
    bench::row({bench::fmt_int(static_cast<long long>(k)),
                bench::fmt(summary.ttsf.mean(), 1),
                bench::fmt(stats::quantile(ttsf, 0.5), 1),
                bench::fmt_int(static_cast<long long>(summary.ttsf_censored)),
                bench::fmt(summary.attack_success_probability())},
               15);
  }
  std::printf(
      "\nShape check: diversity makes the attacker burn failed attempts, so\n"
      "the system *perceives* the attack earlier (TTSF drops) while TTA\n"
      "rises — diversity helps on both indicators.\n");
}

void print_spoofing_sweep() {
  Setup s;
  bench::section("E4b: TTSF vs monitoring-spoofing effectiveness (monoculture)");
  bench::row({"spoof", "E[TTSF] h", "undetected", "P[success]"}, 15);
  for (double spoof : {0.0, 0.5, 0.9, 0.99}) {
    attack::ThreatProfile p = attack::ThreatProfile::stuxnet();
    p.spoof_effectiveness = spoof;
    const auto summary = core::measure_indicators(
        s.desc, s.desc.baseline_configuration(), p, s.mo);
    bench::row({bench::fmt(spoof, 2), bench::fmt(summary.ttsf.mean(), 1),
                bench::fmt_int(static_cast<long long>(summary.ttsf_censored)),
                bench::fmt(summary.attack_success_probability())},
               15);
  }
  std::printf(
      "\nShape check: better spoofing -> later detection -> higher success.\n");
}

void BM_MeasureTtsf(benchmark::State& state) {
  Setup s;
  s.mo.replications = 500;
  const attack::ThreatProfile stuxnet = attack::ThreatProfile::stuxnet();
  for (auto _ : state) {
    auto r = core::measure_indicators(s.desc, s.desc.baseline_configuration(),
                                      stuxnet, s.mo);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MeasureTtsf)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_diversity_sweep();
  print_spoofing_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
