// E2 — Fig. 1 of the paper as an executable artifact: the full three-step
// pipeline (Attack Modeling -> DoE & Measurements -> Diversity
// Assessment) on the SCoPE cooling system, printing each step's output
// and timing each step as a benchmark.
#include <benchmark/benchmark.h>

#include <chrono>

#include "attack/attack_tree.h"
#include "attack/bayes.h"
#include "bench/bench_util.h"
#include "core/measurement.h"
#include "core/pipeline.h"
#include "san/analysis.h"
#include "sim/executor.h"

namespace {

using namespace divsec;

const divers::VariantCatalog& catalog() {
  static const divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  return cat;
}

core::PipelineOptions options() {
  core::PipelineOptions po;
  po.measurement.engine = core::Engine::kStagedSan;
  po.measurement.replications = 300;
  po.measurement.seed = 2013;
  return po;
}

void print_pipeline_run() {
  const core::SystemDescription desc = core::make_scope_description(catalog());
  const core::Pipeline pipeline(desc, attack::ThreatProfile::stuxnet(), options());

  bench::section("E2 step 1: Attack Modeling (monoculture configuration)");
  const auto model = pipeline.attack_model(desc.baseline_configuration());
  bench::row({"stage", "attempt/h", "P[success]", "detect/h", "E[hours]"});
  for (std::size_t i = 0; i < attack::kStageCount; ++i) {
    const auto& t = model.transitions[i];
    bench::row({to_string(static_cast<attack::Stage>(i)),
                bench::fmt(t.attempt_rate), bench::fmt(t.success_probability),
                bench::fmt(t.detection_rate, 5),
                bench::fmt(model.expected_stage_time(i), 1)},
               18);
  }
  std::printf("expected E[TTA] ignoring detection: %.1f h\n",
              model.expected_total_time());

  bench::section("E2 step 2: DoE & Measurements (full factorial, 3 components)");
  const auto table =
      pipeline.measure_full_factorial({"os.control", "plc.firmware", "firewall"}, 0);
  std::printf("configurations measured: %zu  (replications each: %zu)\n",
              table.configuration_count(), options().measurement.replications);
  bench::row({"os.control", "plc.firmware", "firewall", "P[success]", "E[TTA] h"},
             20);
  for (std::size_t c = 0; c < table.configuration_count(); ++c) {
    const auto levels = table.space.decode(c);
    bench::row({table.space.factor(0).levels[levels[0]],
                table.space.factor(1).levels[levels[1]],
                table.space.factor(2).levels[levels[2]],
                bench::fmt(table.summaries[c].attack_success_probability()),
                bench::fmt(table.summaries[c].tta.mean(), 1)},
               20);
  }

  bench::section("E2 step 3: Diversity Assessment (ANOVA)");
  const auto assessment = pipeline.assess(table);
  std::printf("%s\n", assessment.report.c_str());
}

/// The paper lists three candidate formalisms for step 1 ("Bayesian
/// networks, Petri-nets, or attack trees"); all three are implemented.
/// Show that they agree on the monoculture-vs-diverse ordering even
/// though their abstractions (dynamic trajectory / static chain /
/// scenario algebra) differ.
void print_formalism_agreement() {
  const core::SystemDescription desc = core::make_scope_description(catalog());
  const core::Pipeline pipeline(desc, attack::ThreatProfile::stuxnet(), options());
  constexpr double kHorizon = 2160.0;

  core::Configuration diverse = desc.baseline_configuration();
  diverse.variant[1] = 2;  // control OS -> linux
  diverse.variant[2] = 3;  // PLC firmware -> abb

  bench::section("E2 extra: the three formalisms on monoculture vs diversified");
  bench::row({"formalism", "monoculture", "diversified", "ratio"}, 22);

  const auto for_config = [&](const core::Configuration& c) {
    return pipeline.attack_model(c);
  };
  const auto mono_model = for_config(desc.baseline_configuration());
  const auto div_model = for_config(diverse);

  // SAN (Petri-family): Monte-Carlo success within horizon.
  const auto san_p = [&](const attack::StagedAttackModel& m) {
    const attack::AttackSan a = attack::build_attack_san(m);
    return san::first_passage(a.model, a.success_predicate(), kHorizon, 4000, 3)
        .absorption_probability();
  };
  const double san_mono = san_p(mono_model);
  const double san_div = san_p(div_model);
  bench::row({"SAN (Monte-Carlo)", bench::fmt(san_mono), bench::fmt(san_div),
              bench::fmt(san_div > 0 ? san_mono / san_div : 0.0, 1)},
             22);

  // Bayesian network: static chain abstraction.
  const double bn_mono =
      attack::make_attack_bayesian_network(mono_model, kHorizon)
          .impairment_probability();
  const double bn_div = attack::make_attack_bayesian_network(div_model, kHorizon)
                            .impairment_probability();
  bench::row({"Bayesian network", bench::fmt(bn_mono), bench::fmt(bn_div),
              bench::fmt(bn_div > 0 ? bn_mono / bn_div : 0.0, 1)},
             22);

  // Attack tree: per-stage success probabilities as leaves.
  const auto tree_p = [](const attack::StagedAttackModel& m) {
    return attack::make_staged_attack_tree(0.9, m.transitions[0].success_probability,
                                           m.transitions[1].success_probability,
                                           m.transitions[2].success_probability,
                                           m.transitions[3].success_probability)
        .success_probability();
  };
  const double tree_mono = tree_p(mono_model);
  const double tree_div = tree_p(div_model);
  bench::row({"attack tree", bench::fmt(tree_mono), bench::fmt(tree_div),
              bench::fmt(tree_div > 0 ? tree_mono / tree_div : 0.0, 1)},
             22);

  std::printf(
      "\nShape check: absolute numbers differ by construction (trajectory vs\n"
      "static abstractions) but all three formalisms agree the diversified\n"
      "system is substantially harder to defeat.\n");
}

/// Serial vs parallel wall time of the step-2 measurement — the batched
/// (cell × replication) engine is the pipeline's hot path. The parallel
/// run must be bit-identical to the serial one (asserted here), so the
/// speedup is free of statistical caveats.
void print_parallel_speedup() {
  const core::SystemDescription desc = core::make_scope_description(catalog());
  const std::vector<std::string> factors{"os.control", "plc.firmware", "firewall"};

  const auto timed_run = [&desc](const sim::Executor& ex,
                                 const std::vector<std::string>& names) {
    core::PipelineOptions po = options();
    po.measurement.executor = &ex;
    const core::Pipeline pipeline(desc, attack::ThreatProfile::stuxnet(), po);
    const auto t0 = std::chrono::steady_clock::now();
    auto table = pipeline.measure_full_factorial(names, 0);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    return std::make_pair(std::move(table), ms);
  };

  const sim::Executor serial(1);
  const std::size_t default_threads = sim::Executor::default_thread_count();
  const sim::Executor threaded(default_threads > 1 ? default_threads : 4);

  bench::section("E2 extra: batched parallel measurement engine");
  const auto [serial_table, serial_ms] = timed_run(serial, factors);
  const auto [parallel_table, parallel_ms] = timed_run(threaded, factors);

  // Determinism check: thread count must not change a single bit.
  bool identical = serial_table.configuration_count() ==
                   parallel_table.configuration_count();
  for (std::size_t c = 0; identical && c < serial_table.configuration_count(); ++c)
    identical = serial_table.summaries[c].tta.mean() ==
                    parallel_table.summaries[c].tta.mean() &&
                serial_table.summaries[c].successes ==
                    parallel_table.summaries[c].successes;

  const double speedup = parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
  bench::row({"variant", "threads", "wall ms", "speedup"}, 16);
  bench::row({"serial", "1", bench::fmt(serial_ms, 1), bench::fmt(1.0, 2)}, 16);
  bench::row({"parallel", bench::fmt_int(static_cast<long long>(threaded.thread_count())),
              bench::fmt(parallel_ms, 1), bench::fmt(speedup, 2)},
             16);
  std::printf("parallel output bit-identical to serial: %s\n",
              identical ? "yes" : "NO (BUG)");

  bench::write_bench_json(
      "BENCH_e2_parallel.json",
      {{"e2.measure_full_factorial.serial", serial_ms, 1, 1.0},
       {"e2.measure_full_factorial.parallel", parallel_ms,
        static_cast<int>(threaded.thread_count()), speedup}});
}

/// Streaming vs buffered aggregation on the staged-SAN engine: the same
/// 4-cell × many-replication measurement once with keep_samples=false
/// (streaming backend, O(cells + threads × block) state) and once with
/// the retain-everything sample matrix. Summaries must match exactly —
/// both paths fold through the same blocked reduction — and the returned
/// verdict gates the process exit code.
bool print_streaming_vs_buffered() {
  const core::SystemDescription desc = core::make_scope_description(catalog());
  constexpr std::size_t kReps = 50000;

  core::MeasurementOptions mo = options().measurement;
  mo.replications = kReps;
  mo.keep_samples = false;

  core::MeasurementPlan plan;
  for (std::size_t c = 0; c < 4; ++c) {
    core::Configuration config = desc.baseline_configuration();
    config.variant[1] = c % 2;       // control OS
    config.variant[2] = (c / 2) % 2; // PLC firmware
    plan.cells.push_back({std::move(config), mo.seed + 7919 * c});
  }

  const attack::ThreatProfile profile = attack::ThreatProfile::stuxnet();
  bench::section("E2 extra: streaming vs buffered aggregation (staged SAN)");
  std::printf("cells=%zu replications=%zu\n", plan.cell_count(), kReps);

  const double rss_base = bench::peak_rss_mb();
  const core::MeasurementEngine streaming_engine(desc, profile, mo);
  auto t0 = std::chrono::steady_clock::now();
  const auto streamed = streaming_engine.measure(plan);
  const double stream_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
  const double rss_stream = bench::peak_rss_mb();

  mo.keep_samples = true;
  const core::MeasurementEngine buffered_engine(desc, profile, mo);
  t0 = std::chrono::steady_clock::now();
  const auto buffered = buffered_engine.measure(plan);
  const double buffered_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
  const double rss_buffered = bench::peak_rss_mb();

  bool identical = true;
  for (std::size_t c = 0; c < plan.cell_count(); ++c)
    identical = identical &&
                streamed[c].tta.mean() == buffered[c].tta.mean() &&
                streamed[c].successes == buffered[c].successes &&
                streamed[c].tta_event.restricted_mean ==
                    buffered[c].tta_event.restricted_mean;

  const double buffered_mb = static_cast<double>(plan.cell_count()) *
                             static_cast<double>(kReps) *
                             static_cast<double>(sizeof(core::IndicatorSample)) /
                             (1024.0 * 1024.0);
  bench::row({"path", "wall ms", "sample matrix MiB", "peak-RSS delta MiB"}, 20);
  bench::row({"streaming", bench::fmt(stream_ms, 1), "0.000",
              bench::fmt(rss_stream - rss_base, 1)},
             20);
  bench::row({"buffered", bench::fmt(buffered_ms, 1), bench::fmt(buffered_mb, 3),
              bench::fmt(rss_buffered - rss_stream, 1)},
             20);
  std::printf("summaries identical: %s\n", identical ? "yes" : "NO (BUG)");

  const int threads =
      static_cast<int>(streaming_engine.executor().thread_count());
  bench::write_bench_json(
      "BENCH_e2_streaming.json",
      {{"e2.streaming_4x" + std::to_string(kReps), stream_ms, threads, 1.0,
        rss_stream - rss_base},
       {"e2.buffered_4x" + std::to_string(kReps), buffered_ms, threads,
        stream_ms > 0.0 ? buffered_ms / stream_ms : 0.0,
        rss_buffered - rss_stream}});
  return identical;
}

void BM_Step1_AttackModeling(benchmark::State& state) {
  const core::SystemDescription desc = core::make_scope_description(catalog());
  const core::Pipeline pipeline(desc, attack::ThreatProfile::stuxnet(), options());
  for (auto _ : state) {
    auto m = pipeline.attack_model(desc.baseline_configuration());
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_Step1_AttackModeling);

void BM_Step2_MeasureOneConfiguration(benchmark::State& state) {
  const core::SystemDescription desc = core::make_scope_description(catalog());
  auto mo = options().measurement;
  mo.replications = 100;
  for (auto _ : state) {
    auto s = core::measure_indicators(desc, desc.baseline_configuration(),
                                      attack::ThreatProfile::stuxnet(), mo);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_Step2_MeasureOneConfiguration)->Unit(benchmark::kMillisecond);

void BM_Step3_Assess(benchmark::State& state) {
  const core::SystemDescription desc = core::make_scope_description(catalog());
  const core::Pipeline pipeline(desc, attack::ThreatProfile::stuxnet(), options());
  const auto table = pipeline.measure_full_factorial({"plc.firmware", "firewall"}, 2);
  for (auto _ : state) {
    auto a = pipeline.assess(table);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_Step3_Assess)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_pipeline_run();
  print_formalism_agreement();
  print_parallel_speedup();
  const bool streaming_ok = print_streaming_vs_buffered();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return streaming_ok ? 0 : 1;
}
