// E7 — the Diversity Assessment step: "ANOVA techniques ... make it
// possible to allocate the variability of the security indicators ... to
// the component(s) responsible for such variability." Prints the full
// variance-allocation tables for the three indicators and the resulting
// component ranking/recommendation.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/pipeline.h"

namespace {

using namespace divsec;

struct Setup {
  divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  core::SystemDescription desc = core::make_scope_description(cat);
  core::PipelineOptions po;
  Setup() {
    po.measurement.engine = core::Engine::kStagedSan;
    po.measurement.replications = 400;
    po.measurement.seed = 71;
  }
};

void print_assessment() {
  Setup s;
  const core::Pipeline pipeline(s.desc, attack::ThreatProfile::stuxnet(), s.po);
  // Four components spanning on-path (OS, PLC) and off-path (historian)
  // roles, ALL variant levels (truncating to 2 levels would hide the
  // attack-resilient variants and understate the on-path effects).
  const auto result = pipeline.run(
      {"os.control", "plc.firmware", "firewall", "historian.db"}, 0);

  bench::section("E7: Diversity Assessment report (Stuxnet, SCoPE cooling)");
  std::printf("%s\n", result.assessment.report.c_str());

  std::printf(
      "Shape check (paper): variance concentrates on components that sit on\n"
      "every attack path (control OS, PLC firmware); off-path components\n"
      "(historian) explain ~nothing and are not recommended.\n");
}

void BM_FactorialAnova(benchmark::State& state) {
  // ANOVA cost on a 3-factor, 2-level, r-replicate table.
  const std::size_t r = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<double>> cells(8);
  stats::Rng rng(3);
  for (auto& c : cells)
    for (std::size_t i = 0; i < r; ++i) c.push_back(rng.uniform());
  const std::vector<std::size_t> levels{2, 2, 2};
  const std::vector<std::string> names{"A", "B", "C"};
  for (auto _ : state) {
    auto t = stats::factorial_anova(levels, names, cells, 2);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_FactorialAnova)->Arg(100)->Arg(1000);

void BM_EndToEndAssessment(benchmark::State& state) {
  Setup s;
  s.po.measurement.replications = 150;
  const core::Pipeline pipeline(s.desc, attack::ThreatProfile::stuxnet(), s.po);
  for (auto _ : state) {
    auto result = pipeline.run({"plc.firmware", "firewall"}, 2);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EndToEndAssessment)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_assessment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
