// E3 — indicator (i), Time-To-Attack: distribution of TTA as the number
// of strategically diversified component kinds grows 0..5. The paper's
// expected shape: TTA grows (roughly multiplicatively) with diversity
// degree, i.e. diversity "raises the effort it takes to conduct a
// successful attack ... in terms of attack resources and time".
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/bench_util.h"
#include "core/optimizer.h"
#include "stats/descriptive.h"
#include "stats/survival.h"

namespace {

using namespace divsec;

struct Setup {
  divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  core::SystemDescription desc = core::make_scope_description(cat);
  attack::ThreatProfile stuxnet = attack::ThreatProfile::stuxnet();
  core::MeasurementOptions mo;
  Setup() {
    mo.engine = core::Engine::kStagedSan;
    mo.replications = 2000;
    mo.seed = 31;
  }
};

void print_table() {
  Setup s;
  bench::section("E3: Time-To-Attack vs diversity degree (strategic upgrades)");
  bench::row({"k diversified", "P[success]", "E[TTA] h", "median h", "p95 h",
              "censored", "E[TTA]/base"},
             15);
  double base_mean = 0.0;
  for (std::size_t k = 0; k <= 5; ++k) {
    stats::Rng rng(100 + k);
    const core::Configuration c = core::place_resilient_components(
        s.desc, k, core::PlacementStrategy::kStrategic, s.stuxnet, s.mo, rng);
    const auto summary = core::measure_indicators(s.desc, c, s.stuxnet, s.mo);
    std::vector<double> tta;
    for (const auto& smp : summary.samples) tta.push_back(smp.tta);
    const auto q = [&tta](double p) { return stats::quantile(tta, p); };
    if (k == 0) base_mean = summary.tta.mean();
    bench::row({bench::fmt_int(static_cast<long long>(k)),
                bench::fmt(summary.attack_success_probability()),
                bench::fmt(summary.tta.mean(), 1), bench::fmt(q(0.5), 1),
                bench::fmt(q(0.95), 1),
                bench::fmt_int(static_cast<long long>(summary.tta_censored)),
                bench::fmt(summary.tta.mean() / base_mean, 2)},
               15);
  }
  std::printf(
      "\nShape check: E[TTA] (censored at the 2160 h horizon) rises\n"
      "monotonically with diversity degree; success probability falls.\n");
}

/// Censoring-correct view of the same sweep: Kaplan-Meier survival of the
/// "system not yet impaired" state.
void print_km_table() {
  Setup s;
  bench::section("E3b: Kaplan-Meier view (censoring-correct TTA summary)");
  bench::row({"k diversified", "KM median h", "S(720 h)", "S(2160 h)",
              "RMST(2160) h"},
             16);
  for (std::size_t k = 0; k <= 3; ++k) {
    stats::Rng rng(100 + k);
    const core::Configuration c = core::place_resilient_components(
        s.desc, k, core::PlacementStrategy::kStrategic, s.stuxnet, s.mo, rng);
    const auto summary = core::measure_indicators(s.desc, c, s.stuxnet, s.mo);
    std::vector<stats::SurvivalObservation> obs;
    for (const auto& smp : summary.samples)
      obs.push_back({smp.tta, !smp.tta_censored});
    const stats::KaplanMeier km(std::move(obs));
    const auto median = km.median();
    bench::row({bench::fmt_int(static_cast<long long>(k)),
                median ? bench::fmt(*median, 1) : ">horizon",
                bench::fmt(km.survival_at(720.0)),
                bench::fmt(km.survival_at(2160.0)),
                bench::fmt(km.restricted_mean(2160.0), 1)},
               16);
  }
  std::printf(
      "\nReading: S(t) is the probability the plant is still unimpaired at\n"
      "time t; diversity pushes the whole survival curve up. The restricted\n"
      "mean survival time (RMST) is the unbiased horizon-limited E[TTA].\n");
}

void BM_MeasureTta(benchmark::State& state) {
  Setup s;
  s.mo.replications = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto r = core::measure_indicators(s.desc, s.desc.baseline_configuration(),
                                      s.stuxnet, s.mo);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MeasureTta)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  print_km_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
