// indexed_campaign.h — the PR-5 indexed campaign inner loop, preserved
// verbatim as the perf baseline for the SoA batched-RNG kernel.
//
// This is the engine attack::CampaignSimulator shipped between the PR-2
// indexed refactor and the PR-6 SoA kernel: flat per-node exploit tables
// and superposed-Poisson aggregate processes (both kept by the SoA
// engine), but single-stream RNG draws taken lazily in event order,
// log()-based exponential sampling on every aggregate redraw, a
// linear scan over the root pool per plant-alarm poll, and an
// order-preserving erase in the unowned-target pool. The SoA kernel
// samples the SAME indicator distributions through a different draw
// discipline (per-event-class substreams consumed from batched blocks,
// ziggurat exponentials), so per-replication results are NOT comparable
// seed by seed. bench_e5 --fleet-smoke asserts (a) statistical
// equivalence of the indicator means (5-sigma gate) and (b) the >= 2x
// per-replication speedup of the SoA kernel over this baseline.
//
// Bench-only code: nothing in src/ may include this header. The legacy
// (PR-1) per-node engine is preserved separately in legacy_campaign.h.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "attack/campaign.h"
#include "net/reachability_index.h"

namespace divsec::bench::indexed {

using attack::CampaignEventKind;
using attack::CampaignOptions;
using attack::CampaignResult;
using attack::DetectionModel;
using attack::NodeState;
using attack::Scenario;
using attack::ThreatProfile;
using divers::ComponentKind;
using net::NodeId;

/// Everything run() reads per event, precomputed once per scenario into
/// flat arrays indexed by NodeId (the PR-2 table layout).
struct CampaignTables {
  net::ReachabilityIndex reach;

  std::size_t node_count = 0;

  std::vector<std::uint8_t> is_plc;
  std::vector<std::uint8_t> host_target;
  std::vector<std::uint8_t> monitoring_view;
  std::vector<std::uint8_t> payload_source;

  std::vector<double> activation_p, activation_rate;
  std::vector<double> privesc_p, privesc_rate;
  std::vector<double> lateral_p;
  std::vector<double> plc_direct_p;
  std::vector<double> plc_modbus_p;
  double firewall_bypass_p = 0.0;
  double host_detection_rate = 0.0;

  CampaignTables(const Scenario& sc, const ThreatProfile& pr,
                 const divers::VariantCatalog& cat, const DetectionModel& det)
      : reach(sc.topology, sc.firewall), node_count(sc.topology.node_count()) {
    const std::size_t n = node_count;
    is_plc.assign(n, 0);
    host_target.assign(n, 0);
    monitoring_view.assign(n, 0);
    payload_source.assign(n, 0);
    activation_p.resize(n);
    activation_rate.resize(n);
    privesc_p.resize(n);
    privesc_rate.resize(n);
    lateral_p.resize(n);
    plc_direct_p.assign(n, 0.0);
    plc_modbus_p.assign(n, 0.0);
    for (NodeId i = 0; i < n; ++i) {
      const net::Role role = sc.topology.node(i).role;
      is_plc[i] = role == net::Role::kPlc;
      host_target[i] =
          role != net::Role::kPlc && role != net::Role::kSensorGateway;
      monitoring_view[i] = role == net::Role::kHmi ||
                           role == net::Role::kScadaServer ||
                           role == net::Role::kEngineering;
      payload_source[i] =
          pr.has_sabotage_payload && (role == net::Role::kEngineering ||
                                      role == net::Role::kScadaServer);
      const std::size_t os = sc.software[i].os;
      activation_p[i] = cat.exploit_success(pr.activation_exploit, os);
      activation_rate[i] =
          pr.activation_rate / cat.exploit_work_factor(pr.activation_exploit, os);
      privesc_p[i] = cat.exploit_success(pr.privesc_exploit, os);
      privesc_rate[i] =
          pr.privesc_rate / cat.exploit_work_factor(pr.privesc_exploit, os);
      lateral_p[i] = cat.exploit_success(pr.lateral_exploit, os);
    }
    for (NodeId plc : sc.target_plcs) {
      plc_direct_p[plc] =
          cat.exploit_success(pr.plc_exploit, *sc.software[plc].plc_firmware);
      plc_modbus_p[plc] =
          plc_direct_p[plc] *
          cat.exploit_success(pr.protocol_exploit, sc.software[plc].protocol);
    }
    firewall_bypass_p = cat.exploit_success(pr.firewall_exploit, sc.firewall_variant);
    host_detection_rate = det.host_detection_rate * (1.0 - pr.stealth);
  }
};

namespace detail {

struct QEvent {
  double at = 0.0;
  std::uint32_t seq = 0;
  std::uint32_t node = 0;
  std::uint8_t kind = 0;  // 0 = activation, 1 = privesc
};

struct QLater {
  [[nodiscard]] bool operator()(const QEvent& x, const QEvent& y) const noexcept {
    if (x.at != y.at) return x.at > y.at;
    return x.seq > y.seq;
  }
};

constexpr double kNever = std::numeric_limits<double>::infinity();

/// Mutable state of one run() over the read-only CampaignTables — the
/// PR-5 event loop, verbatim.
struct RunState {
  const Scenario& sc;
  const ThreatProfile& pr;
  const DetectionModel& det;
  const CampaignOptions& opt;
  const CampaignTables& tb;
  stats::Rng& rng;
  CampaignResult result;

  double now = 0.0;
  bool stopped = false;

  double t_entry = kNever;
  double t_prop = kNever;
  double t_payload = kNever;
  double t_host = kNever;
  double t_alarm = kNever;
  double t_sabotage = kNever;

  std::vector<QEvent> heap;
  std::uint32_t next_seq = 0;

  std::vector<NodeState> state;
  std::vector<std::uint8_t> plc_owned;
  std::vector<NodeId> roots;
  std::vector<NodeId> payload_sources;
  std::vector<NodeId> owned_plcs;
  std::vector<NodeId> unowned_targets;
  std::size_t hosts_owned = 0;
  std::size_t activated_count = 0;

  RunState(const Scenario& s, const ThreatProfile& p,
           const CampaignTables& t, const DetectionModel& d,
           const CampaignOptions& o, stats::Rng& r)
      : sc(s), pr(p), det(d), opt(o), tb(t), rng(r) {
    state.assign(tb.node_count, NodeState::kClean);
    plc_owned.assign(tb.node_count, 0);
    unowned_targets = sc.target_plcs;
    heap.reserve(64);
    result.compromised_ratio.emplace_back(0.0, 0.0);
  }

  void note(NodeId n, CampaignEventKind kind) {
    if (opt.record_events) result.events.push_back({now, n, kind});
  }

  [[nodiscard]] double exp_delay(double rate) {
    return -std::log(1.0 - rng.uniform()) / rate;
  }

  [[nodiscard]] double exp_in(double rate) {
    return rate > 0.0 ? now + exp_delay(rate) : kNever;
  }

  void push(std::uint8_t kind, NodeId node, double delay) {
    heap.push_back(QEvent{now + delay, next_seq++,
                          static_cast<std::uint32_t>(node), kind});
    std::push_heap(heap.begin(), heap.end(), QLater{});
  }

  void record_ratio() {
    const double r = static_cast<double>(hosts_owned + owned_plcs.size()) /
                     static_cast<double>(tb.node_count);
    result.compromised_ratio.emplace_back(now, r);
  }

  void record_detection(CampaignEventKind what) {
    if (result.time_to_detection) return;
    result.time_to_detection = now;
    note(0, what);
    t_host = kNever;
    t_alarm = kNever;
    maybe_finish();
  }

  void failed_attempt() {
    const double p = det.failed_attempt_detection;
    if (p > 0.0 && rng.bernoulli(p))
      record_detection(CampaignEventKind::kFailedExploitDetected);
  }

  void maybe_finish() {
    if (result.time_to_detection.has_value() &&
        (result.time_to_attack.has_value() || opt.detection_halts_attack))
      stopped = true;
  }

  [[nodiscard]] bool effective_reach(NodeId from, NodeId to, net::Channel ch) {
    if (tb.reach.can_reach(from, to, ch)) return true;
    if (ch == net::Channel::kUsb) return false;
    if (!tb.reach.linked(from, to)) return false;
    return rng.bernoulli(tb.firewall_bypass_p);
  }

  void deliver(NodeId n, CampaignEventKind kind) {
    state[n] = NodeState::kDelivered;
    note(n, kind);
    push(0, n, exp_delay(tb.activation_rate[n]));
  }

  void on_entry() {
    const NodeId n = sc.entry_nodes[rng.below(sc.entry_nodes.size())];
    if (state[n] == NodeState::kClean) {
      if (!result.time_of_entry) result.time_of_entry = now;
      deliver(n, CampaignEventKind::kDelivered);
    }
    t_entry = exp_in(pr.entry_rate);
  }

  void on_activation(NodeId n) {
    if (state[n] != NodeState::kDelivered) return;
    if (rng.bernoulli(tb.activation_p[n])) {
      state[n] = NodeState::kActivated;
      if (!tb.is_plc[n]) ++hosts_owned;
      ++activated_count;
      if (!result.time_to_detection && tb.host_detection_rate > 0.0)
        t_host = exp_in(tb.host_detection_rate *
                        static_cast<double>(activated_count));
      note(n, CampaignEventKind::kActivated);
      record_ratio();
      push(1, n, exp_delay(tb.privesc_rate[n]));
    } else {
      failed_attempt();
      push(0, n, exp_delay(tb.activation_rate[n]));
    }
  }

  void on_privesc(NodeId n) {
    if (state[n] != NodeState::kActivated) return;
    if (rng.bernoulli(tb.privesc_p[n])) {
      state[n] = NodeState::kRoot;
      if (!result.first_root) result.first_root = now;
      note(n, CampaignEventKind::kRoot);
      roots.push_back(n);
      t_prop = exp_in(pr.propagation_rate * static_cast<double>(roots.size()));
      if (tb.payload_source[n]) {
        payload_sources.push_back(n);
        if (!unowned_targets.empty())
          t_payload = exp_in(pr.payload_rate *
                             static_cast<double>(payload_sources.size()));
      }
    } else {
      failed_attempt();
      push(1, n, exp_delay(tb.privesc_rate[n]));
    }
  }

  void on_propagation() {
    const NodeId n = roots[rng.below(roots.size())];
    const NodeId v = static_cast<NodeId>(rng.below(tb.node_count));
    const net::Channel ch = pr.channels[rng.below(pr.channels.size())];
    if (v != n && tb.host_target[v] && state[v] == NodeState::kClean &&
        effective_reach(n, v, ch)) {
      if (rng.bernoulli(tb.lateral_p[v])) {
        deliver(v, CampaignEventKind::kDeliveredLateral);
      } else {
        failed_attempt();
      }
    }
    t_prop = exp_in(pr.propagation_rate * static_cast<double>(roots.size()));
  }

  void on_payload() {
    if (!unowned_targets.empty()) {
      const NodeId n = payload_sources[rng.below(payload_sources.size())];
      const std::size_t pick = rng.below(unowned_targets.size());
      const NodeId plc = unowned_targets[pick];
      const bool via_project = effective_reach(n, plc, net::Channel::kProjectFile);
      const bool via_modbus =
          !via_project && effective_reach(n, plc, net::Channel::kModbus);
      if (via_project || via_modbus) {
        const double p = via_modbus ? tb.plc_modbus_p[plc] : tb.plc_direct_p[plc];
        if (rng.bernoulli(p)) {
          plc_owned[plc] = 1;
          owned_plcs.push_back(plc);
          unowned_targets.erase(unowned_targets.begin() +
                                static_cast<std::ptrdiff_t>(pick));
          if (!result.first_plc_compromise) result.first_plc_compromise = now;
          note(plc, CampaignEventKind::kPlcCompromised);
          record_ratio();
          const double owned = static_cast<double>(owned_plcs.size());
          if (!result.time_to_attack)
            t_sabotage = exp_in(owned / pr.sabotage_mean_hours);
          if (!result.time_to_detection)
            t_alarm = exp_in(det.alarm_detection_rate * owned);
        } else {
          failed_attempt();
        }
      }
    }
    t_payload =
        unowned_targets.empty()
            ? kNever
            : exp_in(pr.payload_rate * static_cast<double>(payload_sources.size()));
  }

  void on_sabotage() {
    const NodeId plc = owned_plcs[rng.below(owned_plcs.size())];
    result.time_to_attack = now;
    note(plc, CampaignEventKind::kDeviceImpaired);
    t_sabotage = kNever;
    maybe_finish();
  }

  void on_host_detect() {
    record_detection(CampaignEventKind::kHostIdsDetection);
  }

  void on_alarm_detect() {
    bool view_owned = false;
    for (const NodeId n : roots)
      if (tb.monitoring_view[n]) {
        view_owned = true;
        break;
      }
    const double spoof = pr.spoof_effectiveness * (view_owned ? 1.0 : 0.5);
    if (rng.bernoulli(1.0 - spoof)) {
      record_detection(CampaignEventKind::kPlantAlarmDetection);
      return;
    }
    t_alarm =
        exp_in(det.alarm_detection_rate * static_cast<double>(owned_plcs.size()));
  }

  void run_until(double t_max) {
    t_entry = exp_in(pr.entry_rate);
    while (!stopped) {
      double at = t_entry;
      int which = 0;
      if (t_prop < at) { at = t_prop; which = 1; }
      if (t_payload < at) { at = t_payload; which = 2; }
      if (t_sabotage < at) { at = t_sabotage; which = 3; }
      if (t_host < at) { at = t_host; which = 4; }
      if (t_alarm < at) { at = t_alarm; which = 5; }
      if (!heap.empty() && heap.front().at < at) { at = heap.front().at; which = 6; }
      if (at > t_max) break;
      now = at;
      ++result.events_executed;
      switch (which) {
        case 0: on_entry(); break;
        case 1: on_propagation(); break;
        case 2: on_payload(); break;
        case 3: on_sabotage(); break;
        case 4: on_host_detect(); break;
        case 5: on_alarm_detect(); break;
        case 6: {
          const QEvent ev = heap.front();
          std::pop_heap(heap.begin(), heap.end(), QLater{});
          heap.pop_back();
          if (ev.kind == 0)
            on_activation(ev.node);
          else
            on_privesc(ev.node);
          break;
        }
      }
    }
  }
};

}  // namespace detail

class CampaignSimulator {
 public:
  CampaignSimulator(Scenario scenario, ThreatProfile profile,
                    const divers::VariantCatalog& catalog,
                    DetectionModel detection = {}, CampaignOptions options = {})
      : scenario_(std::move(scenario)),
        profile_(std::move(profile)),
        detection_(detection),
        options_(options),
        tables_(scenario_, profile_, catalog, detection_) {
    profile_.validate();
    detection_.validate();
  }

  [[nodiscard]] CampaignResult run(stats::Rng& rng) const {
    detail::RunState st(scenario_, profile_, tables_, detection_, options_, rng);
    st.run_until(options_.t_max_hours);
    st.result.hosts_compromised = st.hosts_owned;
    st.result.plcs_compromised = st.owned_plcs.size();
    return std::move(st.result);
  }

 private:
  Scenario scenario_;
  ThreatProfile profile_;
  DetectionModel detection_;
  CampaignOptions options_;
  CampaignTables tables_;
};

}  // namespace divsec::bench::indexed
