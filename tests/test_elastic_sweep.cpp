// Tests for elastic sweep scheduling: the work-queue schedule must be
// bit-identical to the static block schedule for any thread count, a
// cost-weighted LPT plan must cover the task space exactly once and
// merge bit-identically to the in-process run, the cost model must
// round-trip through the state codec byte-stably, and weights/tasks
// files from a different sweep must be rejected by fingerprint.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

#include "core/measurement.h"
#include "dist/cost_model.h"
#include "dist/state_codec.h"
#include "dist/sweep.h"
#include "sim/executor.h"
#include "sim/shard_plan.h"
#include "sim/streaming.h"

namespace divsec {
namespace {

// ---- schedule equivalence at the reduction primitive -----------------------

/// Order-sensitive accumulator: x' = x * 1.0000001 + v is not
/// associative, so any deviation in fold or merge order changes the bits.
struct OrderSensitive {
  double x = 0.0;
  std::uint64_t folds = 0;
  void fold(double v) {
    x = x * 1.0000001 + v;
    ++folds;
  }
  void merge(const OrderSensitive& o) {
    x = x * 1.0000001 + o.x;
    folds += o.folds;
  }
};

TEST(ElasticSchedule, QueuedReduceBitIdenticalToBlockedReduce) {
  constexpr std::size_t kGroups = 13;
  constexpr std::size_t kCount = 1000;
  constexpr std::size_t kBlock = 64;
  const auto make = [](std::size_t g) {
    OrderSensitive acc;
    acc.x = static_cast<double>(g) * 0.25;
    return acc;
  };
  const auto fold = [](OrderSensitive& acc, std::size_t g, std::size_t i) {
    acc.fold(static_cast<double>(g * 7919 + i) * 1e-3);
  };

  const sim::Executor serial(1);
  const std::vector<OrderSensitive> reference =
      sim::blocked_reduce_groups<OrderSensitive>(serial, kGroups, kCount,
                                                 kBlock, make, fold);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                    std::size_t{8}}) {
    const sim::Executor ex(threads);
    const std::vector<OrderSensitive> blocked =
        sim::blocked_reduce_groups<OrderSensitive>(ex, kGroups, kCount, kBlock,
                                                   make, fold);
    std::vector<double> seconds;
    const std::vector<OrderSensitive> queued =
        sim::queued_reduce_groups<OrderSensitive>(ex, kGroups, kCount, kBlock,
                                                  make, fold, &seconds);
    ASSERT_EQ(seconds.size(), kGroups);
    for (std::size_t g = 0; g < kGroups; ++g) {
      EXPECT_EQ(blocked[g].x, reference[g].x) << "threads=" << threads;
      EXPECT_EQ(queued[g].x, reference[g].x) << "threads=" << threads;
      EXPECT_EQ(queued[g].folds, reference[g].folds);
      EXPECT_GE(seconds[g], 0.0);
    }
  }
}

// ---- schedule equivalence at the measurement engine ------------------------

dist::SweepSpec small_spec() {
  dist::SweepSpec spec;
  spec.preset = "plant_small";
  spec.seed = 4242;
  spec.replications = 50;
  spec.replication_block = 8;
  spec.superblock = 16;  // 4 superblocks per cell -> 12 tasks
  return spec;
}

TEST(ElasticSchedule, WorkQueueRunBitIdenticalToStaticChunking) {
  // 12 tasks >= every tested thread count, so the elastic path really
  // takes the work queue (it falls back to static rounds only when the
  // queue could not feed the pool).
  const dist::SweepSpec spec = small_spec();
  std::vector<core::IndicatorSummary> reference;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                    std::size_t{8}}) {
    const sim::Executor ex(threads);
    for (const core::Scheduling schedule :
         {core::Scheduling::kElastic, core::Scheduling::kStatic}) {
      dist::SweepSpec s = spec;
      const divers::VariantCatalog catalog =
          divers::VariantCatalog::standard(s.seed);
      const attack::ThreatProfile profile = dist::threat_profile(s.threat);
      core::MeasurementOptions options = dist::sweep_options(s, &ex);
      options.schedule = schedule;
      const core::MeasurementEngine engine(catalog, profile, options);
      const auto summaries =
          engine.measure_scenarios(dist::expand_plan(s, catalog));
      if (reference.empty()) {
        reference = summaries;
        continue;
      }
      ASSERT_EQ(summaries.size(), reference.size());
      for (std::size_t c = 0; c < summaries.size(); ++c) {
        EXPECT_EQ(summaries[c].tta.mean(), reference[c].tta.mean())
            << "threads=" << threads;
        EXPECT_EQ(summaries[c].tta.variance(), reference[c].tta.variance());
        EXPECT_EQ(summaries[c].ttsf.mean(), reference[c].ttsf.mean());
        EXPECT_EQ(summaries[c].successes, reference[c].successes);
        EXPECT_EQ(summaries[c].tta_event.restricted_mean,
                  reference[c].tta_event.restricted_mean);
        EXPECT_EQ(summaries[c].ttsf_event.q90, reference[c].ttsf_event.q90);
      }
    }
  }
}

// ---- cost model ------------------------------------------------------------

TEST(CostModel, SecPerRepFallbacks) {
  dist::CostModel cost;
  EXPECT_FALSE(cost.measured());
  EXPECT_EQ(cost.sec_per_rep(0), 1.0);  // no data: uniform

  cost.cells = {{100, 2.0}, {0, 0.0}, {50, 0.5}};
  EXPECT_TRUE(cost.measured());
  EXPECT_DOUBLE_EQ(cost.sec_per_rep(0), 0.02);
  EXPECT_DOUBLE_EQ(cost.sec_per_rep(2), 0.01);
  // Unmeasured cell: mean measured rate (2.5 s over 150 reps).
  EXPECT_DOUBLE_EQ(cost.sec_per_rep(1), 2.5 / 150.0);

  dist::CostModel other;
  other.cells = {{100, 1.0}, {10, 0.1}, {0, 0.0}};
  cost.merge(other);
  EXPECT_EQ(cost.cells[0].replications, 200u);
  EXPECT_DOUBLE_EQ(cost.cells[0].seconds, 3.0);
  EXPECT_EQ(cost.cells[1].replications, 10u);

  dist::CostModel mismatched;
  mismatched.cells = {{1, 1.0}};
  EXPECT_THROW(cost.merge(mismatched), std::invalid_argument);
}

TEST(CostModel, FingerprintCoversDynamicsNotReplicationCounts) {
  const dist::SweepSpec spec = small_spec();
  const dist::SweepMeta meta = dist::make_meta(spec);

  // Cost transfers across replication/aggregation parameters...
  dist::SweepSpec calibration = spec;
  calibration.replications = 500;
  calibration.superblock = 32;
  EXPECT_EQ(dist::cost_fingerprint(dist::make_meta(calibration)),
            dist::cost_fingerprint(meta));
  // ...but not across anything that changes the cells or their dynamics.
  dist::SweepSpec other = spec;
  other.seed = 7;
  EXPECT_NE(dist::cost_fingerprint(dist::make_meta(other)),
            dist::cost_fingerprint(meta));
  other = spec;
  other.preset = "plant_medium";
  EXPECT_NE(dist::cost_fingerprint(dist::make_meta(other)),
            dist::cost_fingerprint(meta));

  // The full sweep fingerprint stays strict: a different replication
  // count is a different task space.
  EXPECT_NE(dist::sweep_fingerprint(dist::make_meta(calibration)),
            dist::sweep_fingerprint(meta));
}

TEST(CostModel, ShardRunsMeasureTheirCells) {
  const dist::SweepSpec spec = small_spec();
  const dist::ShardState state = dist::run_shard(spec, 0, 2);
  ASSERT_EQ(state.cost.cells.size(), 3u);
  // Shard 0 of 2 owns tasks [0, 6): all of cell 0, half of cell 1.
  EXPECT_EQ(state.cost.cells[0].replications, spec.replications);
  EXPECT_GT(state.cost.cells[1].replications, 0u);
  EXPECT_EQ(state.cost.cells[2].replications, 0u);
  EXPECT_TRUE(state.cost.measured());
}

TEST(CostModel, FewTasksThanThreadsStillMeasuresAndMergesExactly) {
  // A shard owning fewer tasks than executor threads takes the static
  // block rounds (sub-task parallelism) with per-replication timing —
  // costs must still land per cell and the payload must stay identical
  // to the single-threaded run.
  const dist::SweepSpec spec = small_spec();  // 12 tasks
  const sim::Executor eight(8);
  const sim::Executor one(1);
  std::vector<dist::ShardState> states;
  for (std::size_t i = 0; i < 6; ++i)  // 2 tasks per shard < 8 threads
    states.push_back(dist::run_shard(spec, i, 6, i == 0 ? &eight : &one));
  EXPECT_TRUE(states[0].cost.measured());
  EXPECT_GT(states[0].cost.cells[0].replications, 0u);
  const dist::MergeResult merged = dist::merge_shards(states);
  const auto reference = dist::run_in_process(spec);
  for (std::size_t c = 0; c < reference.size(); ++c) {
    EXPECT_EQ(merged.summaries[c].tta.mean(), reference[c].tta.mean());
    EXPECT_EQ(merged.summaries[c].successes, reference[c].successes);
  }
}

// ---- cost-weighted plans ---------------------------------------------------

TEST(CostWeightedPlan, ExactCoverageForAnyShardCount) {
  const sim::ShardPlan plan = sim::ShardPlan::make(3, 50, 8, 16);  // 12 tasks
  dist::CostModel cost;
  cost.cells = {{50, 5.0}, {50, 1.0}, {50, 1.0}};  // cell 0 is 5x heavier

  for (const std::size_t k : {std::size_t{2}, std::size_t{3}, std::size_t{5}}) {
    const auto assignment = dist::cost_weighted_assignment(plan, cost, k);
    ASSERT_EQ(assignment.size(), k);
    std::set<std::uint64_t> seen;
    for (const auto& list : assignment) {
      for (std::size_t i = 0; i < list.size(); ++i) {
        if (i > 0) {
          EXPECT_LT(list[i - 1], list[i]);  // strictly ascending
        }
        EXPECT_LT(list[i], plan.task_count());
        EXPECT_TRUE(seen.insert(list[i]).second) << "task assigned twice";
      }
    }
    EXPECT_EQ(seen.size(), plan.task_count()) << "K=" << k;

    // The LPT loads must beat the contiguous split's worst shard: the
    // contiguous front shard takes every cell-0 (5x) task.
    const auto loads = dist::assignment_cost(plan, cost, assignment);
    std::vector<std::vector<std::uint64_t>> contiguous(k);
    for (std::size_t s = 0; s < k; ++s) {
      const auto [lo, hi] = plan.shard_range(s, k);
      for (std::uint64_t t = lo; t < hi; ++t) contiguous[s].push_back(t);
    }
    const auto contiguous_loads = dist::assignment_cost(plan, cost, contiguous);
    const double lpt_worst = *std::max_element(loads.begin(), loads.end());
    const double contiguous_worst =
        *std::max_element(contiguous_loads.begin(), contiguous_loads.end());
    EXPECT_LT(lpt_worst, contiguous_worst) << "K=" << k;
  }
}

TEST(CostWeightedPlan, UniformCostsStillCoverExactly) {
  const sim::ShardPlan plan = sim::ShardPlan::make(2, 100, 8, 16);
  const auto assignment =
      dist::cost_weighted_assignment(plan, dist::CostModel{}, 3);
  std::size_t total = 0;
  for (const auto& list : assignment) total += list.size();
  EXPECT_EQ(total, plan.task_count());
  EXPECT_THROW(dist::cost_weighted_assignment(plan, dist::CostModel{}, 0),
               std::invalid_argument);
}

// ---- task-plan files -------------------------------------------------------

TEST(TaskPlanFile, RoundTripsAndValidates) {
  dist::TaskPlan plan;
  plan.fingerprint = 0xDEADBEEFCAFEF00DULL;
  plan.shards = {{0, 2, 5}, {1, 3}, {4}};
  const std::string text = dist::encode_task_plan(plan);
  const dist::TaskPlan back = dist::decode_task_plan(text);
  EXPECT_EQ(back.fingerprint, plan.fingerprint);
  EXPECT_EQ(back.shards, plan.shards);
  EXPECT_EQ(dist::encode_task_plan(back), text);

  // Structural rejections: bad header, incomplete coverage, duplicates,
  // descending lists, trailing garbage.
  EXPECT_THROW((void)dist::decode_task_plan("not a plan"), std::runtime_error);
  dist::TaskPlan hole = plan;
  hole.shards[2].clear();  // task 4 unassigned
  EXPECT_THROW((void)dist::decode_task_plan(dist::encode_task_plan(hole)),
               std::runtime_error);
  std::string dup = text;
  // "shard 2 1 4" -> claim task 1 twice instead.
  dup.replace(dup.rfind("1 4"), 3, "1 1");
  EXPECT_THROW((void)dist::decode_task_plan(dup), std::runtime_error);
  EXPECT_THROW((void)dist::decode_task_plan(text + "extra"),
               std::runtime_error);
}

TEST(TaskPlanFile, ForeignFingerprintIsRejectedLoudly) {
  const dist::SweepMeta meta = dist::make_meta(small_spec());
  dist::SweepSpec other = small_spec();
  other.seed = 9;
  const dist::SweepMeta foreign = dist::make_meta(other);
  try {
    dist::require_fingerprint(dist::sweep_fingerprint(meta),
                              dist::sweep_fingerprint(foreign),
                              "task plan test.tasks");
    FAIL() << "foreign fingerprint accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("task plan test.tasks"), std::string::npos);
    EXPECT_NE(what.find("different sweep"), std::string::npos);
  }
  // Matching fingerprints pass silently.
  dist::require_fingerprint(dist::sweep_fingerprint(meta),
                            dist::sweep_fingerprint(meta), "task plan");
}

// ---- elastic end to end ----------------------------------------------------

TEST(ElasticSweep, CostWeightedShardsMergeBitIdenticalToInProcess) {
  const dist::SweepSpec spec = small_spec();
  const std::vector<core::IndicatorSummary> reference =
      dist::run_in_process(spec);

  // Calibrate from a static 2-shard run, plan K=3 by measured cost, run
  // the explicit lists, merge — the full elastic workflow in-process.
  std::vector<dist::ShardState> calibration;
  for (std::size_t i = 0; i < 2; ++i)
    calibration.push_back(dist::run_shard(spec, i, 2));
  const dist::MergeResult calibrated = dist::merge_shards(calibration);
  EXPECT_TRUE(calibrated.cost.measured());

  const sim::ShardPlan plan = dist::sweep_shard_plan(calibrated.meta);
  const auto assignment =
      dist::cost_weighted_assignment(plan, calibrated.cost, 3);
  std::vector<dist::ShardState> elastic;
  for (std::size_t i = 0; i < 3; ++i)
    elastic.push_back(dist::run_shard_tasks(spec, assignment[i], i, 3));
  const dist::MergeResult merged = dist::merge_shards(elastic);

  ASSERT_EQ(merged.summaries.size(), reference.size());
  for (std::size_t c = 0; c < reference.size(); ++c) {
    EXPECT_EQ(merged.summaries[c].tta.mean(), reference[c].tta.mean());
    EXPECT_EQ(merged.summaries[c].tta.variance(),
              reference[c].tta.variance());
    EXPECT_EQ(merged.summaries[c].ttsf.mean(), reference[c].ttsf.mean());
    EXPECT_EQ(merged.summaries[c].successes, reference[c].successes);
    EXPECT_EQ(merged.summaries[c].tta_event.restricted_mean,
              reference[c].tta_event.restricted_mean);
    EXPECT_EQ(merged.summaries[c].ttsf_event.median,
              reference[c].ttsf_event.median);
  }
  EXPECT_EQ(dist::sweep_csv(merged.meta, merged.summaries),
            dist::sweep_csv(dist::make_meta(spec), reference));

  // A task list the sweep does not know is rejected before any work.
  const divers::VariantCatalog catalog =
      divers::VariantCatalog::standard(spec.seed);
  const attack::ThreatProfile profile = dist::threat_profile(spec.threat);
  const core::MeasurementOptions options = dist::sweep_options(spec);
  const core::MeasurementEngine engine(catalog, profile, options);
  const std::vector<std::uint64_t> outside{plan.task_count()};
  EXPECT_THROW((void)engine.measure_scenario_tasks(
                   dist::expand_plan(spec, catalog), plan, outside),
               std::out_of_range);
  const std::vector<std::uint64_t> unsorted{3, 1};
  EXPECT_THROW((void)engine.measure_scenario_tasks(
                   dist::expand_plan(spec, catalog), plan, unsorted),
               std::invalid_argument);
}

}  // namespace
}  // namespace divsec
