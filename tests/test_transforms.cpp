// Tests for divers/transforms.h — the key property: every diversifying
// transform preserves input/output semantics while changing the binary.
#include <gtest/gtest.h>

#include "divers/ir.h"
#include "divers/transforms.h"

namespace divsec::divers {
namespace {

std::vector<std::int64_t> run(const Program& p, std::uint64_t input_seed) {
  stats::Rng rng(input_seed);
  std::vector<std::int64_t> input(kMemoryWords);
  for (auto& w : input) w = static_cast<std::int64_t>(rng.below(1000)) - 500;
  const auto r = execute(p, input);
  EXPECT_FALSE(r.hit_step_limit);
  return r.memory;
}

/// Property harness: transform(program) must be I/O-equivalent to program
/// on several random memory images, across several random programs.
void expect_semantics_preserved(
    const std::function<Program(const Program&, stats::Rng&)>& transform,
    const char* label) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    stats::Rng gen(seed);
    const Program original = generate_program(gen);
    stats::Rng trng(seed ^ 0xABCDEF);
    const Program variant = transform(original, trng);
    for (std::uint64_t in = 0; in < 4; ++in) {
      EXPECT_EQ(run(original, in), run(variant, in))
          << label << " broke semantics (program seed " << seed << ", input "
          << in << ")";
    }
  }
}

TEST(Transforms, NopInsertionPreservesSemantics) {
  expect_semantics_preserved(
      [](const Program& p, stats::Rng& rng) { return nop_insertion(p, 0.5, rng); },
      "nop_insertion");
}

TEST(Transforms, SubstitutionPreservesSemantics) {
  expect_semantics_preserved(
      [](const Program& p, stats::Rng& rng) {
        return instruction_substitution(p, 1.0, rng);
      },
      "instruction_substitution");
}

TEST(Transforms, RegisterRenamingPreservesSemantics) {
  expect_semantics_preserved(
      [](const Program& p, stats::Rng& rng) { return register_renaming(p, rng); },
      "register_renaming");
}

TEST(Transforms, BlockReorderingPreservesSemantics) {
  expect_semantics_preserved(
      [](const Program& p, stats::Rng& rng) { return block_reordering(p, rng); },
      "block_reordering");
}

TEST(Transforms, FullPipelinePreservesSemantics) {
  expect_semantics_preserved(
      [](const Program& p, stats::Rng& rng) {
        return diversify(p, TransformConfig::all(), rng);
      },
      "diversify(all)");
}

TEST(Transforms, NopInsertionGrowsTheProgram) {
  stats::Rng gen(1);
  const Program p = generate_program(gen);
  stats::Rng rng(2);
  const Program q = nop_insertion(p, 0.5, rng);
  EXPECT_GT(q.instruction_count(), p.instruction_count());
  stats::Rng rng2(3);
  const Program zero = nop_insertion(p, 0.0, rng2);
  EXPECT_EQ(zero.instruction_count(), p.instruction_count());
}

TEST(Transforms, NopDensityValidated) {
  stats::Rng gen(1), rng(2);
  const Program p = generate_program(gen);
  EXPECT_THROW(nop_insertion(p, -0.1, rng), std::invalid_argument);
  EXPECT_THROW(nop_insertion(p, 1.1, rng), std::invalid_argument);
  EXPECT_THROW(instruction_substitution(p, 2.0, rng), std::invalid_argument);
}

TEST(Transforms, SubstitutionChangesEncodingButNotCount) {
  stats::Rng gen(4);
  const Program p = generate_program(gen);
  stats::Rng rng(5);
  const Program q = instruction_substitution(p, 1.0, rng);
  EXPECT_EQ(q.instruction_count(), p.instruction_count());
  EXPECT_NE(encode(p), encode(q));
}

TEST(Transforms, RenamingAppliesAPermutation) {
  stats::Rng gen(6);
  const Program p = generate_program(gen);
  stats::Rng rng(7);
  const Program q = register_renaming(p, rng);
  // Same opcode sequence, same block structure.
  ASSERT_EQ(q.blocks.size(), p.blocks.size());
  for (std::size_t b = 0; b < p.blocks.size(); ++b) {
    ASSERT_EQ(q.blocks[b].body.size(), p.blocks[b].body.size());
    for (std::size_t i = 0; i < p.blocks[b].body.size(); ++i)
      EXPECT_EQ(q.blocks[b].body[i].op, p.blocks[b].body[i].op);
  }
}

TEST(Transforms, ReorderingKeepsEntryBlockFirst) {
  stats::Rng gen(8);
  const Program p = generate_program(gen);
  stats::Rng rng(9);
  const Program q = block_reordering(p, rng);
  ASSERT_FALSE(q.blocks.empty());
  // Entry block content identical (it stays at position 0).
  ASSERT_EQ(q.blocks[0].body.size(), p.blocks[0].body.size());
  for (std::size_t i = 0; i < p.blocks[0].body.size(); ++i)
    EXPECT_EQ(q.blocks[0].body[i].op, p.blocks[0].body[i].op);
  q.validate();
}

TEST(Transforms, TinyProgramsReorderToThemselves) {
  Program p;
  p.blocks.resize(2);
  p.blocks[0].term = {TerminatorKind::kJump, 0, 1, 0};
  p.blocks[1].term = {TerminatorKind::kReturn, 0, 0, 0};
  stats::Rng rng(10);
  const Program q = block_reordering(p, rng);
  EXPECT_EQ(encode(p), encode(q));
}

TEST(Transforms, ConfigNoneIsIdentity) {
  stats::Rng gen(11), rng(12);
  const Program p = generate_program(gen);
  const Program q = diversify(p, TransformConfig::none(), rng);
  EXPECT_EQ(encode(p), encode(q));
}

TEST(Transforms, PopulationVariantsAreDistinctFromOriginal) {
  stats::Rng gen(13), rng(14);
  const Program p = generate_program(gen);
  const auto pop = build_population(p, TransformConfig::all(), 5, rng);
  ASSERT_EQ(pop.size(), 5u);
  const auto base = encode(p);
  for (const auto& v : pop) EXPECT_NE(encode(v), base);
  // And pairwise distinct (overwhelmingly likely).
  for (std::size_t i = 0; i < pop.size(); ++i)
    for (std::size_t j = i + 1; j < pop.size(); ++j)
      EXPECT_NE(encode(pop[i]), encode(pop[j]));
}

TEST(Transforms, PopulationIsDeterministicInRngState) {
  stats::Rng gen(15);
  const Program p = generate_program(gen);
  stats::Rng r1(16), r2(16);
  const auto a = build_population(p, TransformConfig::all(), 3, r1);
  const auto b = build_population(p, TransformConfig::all(), 3, r2);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(encode(a[i]), encode(b[i]));
}

}  // namespace
}  // namespace divsec::divers
