// Tests for scada/cooling_system.h — the SCoPE assembly and the E9
// stealth story: detection latency vs spoofing mode.
#include <gtest/gtest.h>

#include "scada/cooling_system.h"

namespace divsec::scada {
namespace {

CoolingSystem::Options fast_options() {
  CoolingSystem::Options o;
  o.plc_scan_s = 1.0;
  o.poll_interval_s = 5.0;
  o.anomaly_check_interval_s = 30.0;
  return o;
}

TEST(CoolingSystem, NormalOperationHoldsSetpointsWithoutAlarms) {
  CoolingSystem sys(fast_options(), 1);
  sys.advance(2.0 * 3600.0);
  EXPECT_NEAR(sys.room_temp_c(), 24.0, 2.0);
  EXPECT_FALSE(sys.impaired());
  EXPECT_FALSE(sys.first_detection_time_s().has_value());
  EXPECT_GT(sys.historian().sample_count("room_temp"), 1000u);
}

TEST(CoolingSystem, CracSabotageOverheatsTheRoom) {
  CoolingSystem sys(fast_options(), 2);
  sys.advance(600.0);  // reach steady state
  sys.compromise_crac_plc(SpoofMode::kNone);
  sys.advance(3600.0);
  EXPECT_TRUE(sys.impaired());
  ASSERT_TRUE(sys.impairment_time_s().has_value());
  EXPECT_GT(*sys.impairment_time_s(), 600.0);
}

TEST(CoolingSystem, ChillerSabotageAlsoImpairsButSlower) {
  // Killing the chiller leaves the CRAC moving heat into an increasingly
  // warm loop: slower degradation than stopping airflow outright.
  CoolingSystem crac_hit(fast_options(), 3);
  crac_hit.advance(600.0);
  crac_hit.compromise_crac_plc(SpoofMode::kNone);
  crac_hit.advance(8.0 * 3600.0);
  ASSERT_TRUE(crac_hit.impaired());

  CoolingSystem chiller_hit(fast_options(), 3);
  chiller_hit.advance(600.0);
  chiller_hit.compromise_chiller_plc(SpoofMode::kNone);
  chiller_hit.advance(8.0 * 3600.0);
  ASSERT_TRUE(chiller_hit.impaired());
  EXPECT_GT(*chiller_hit.impairment_time_s(), *crac_hit.impairment_time_s());
}

TEST(CoolingSystem, NoSpoofIsDetectedBeforeImpairment) {
  CoolingSystem sys(fast_options(), 4);
  sys.advance(600.0);
  sys.compromise_crac_plc(SpoofMode::kNone);
  sys.advance(3600.0);
  ASSERT_TRUE(sys.first_detection_time_s().has_value());
  ASSERT_TRUE(sys.impairment_time_s().has_value());
  EXPECT_LT(*sys.first_detection_time_s(), *sys.impairment_time_s());
}

TEST(CoolingSystem, ConstantSpoofCaughtByStuckDetectorEventually) {
  CoolingSystem sys(fast_options(), 5);
  sys.advance(600.0);
  sys.compromise_crac_plc(SpoofMode::kConstant);
  sys.advance(2.0 * 3600.0);
  ASSERT_TRUE(sys.first_detection_time_s().has_value());
  // ...but only after the anomaly window, i.e. later than a live alarm
  // would have fired (~170 s of heating to cross the 29 C threshold).
  EXPECT_GT(*sys.first_detection_time_s(), 600.0 + 500.0);
}

TEST(CoolingSystem, ReplaySpoofEvadesAllSingleChannelDetection) {
  // The Stuxnet mode: replayed live recordings keep variance and rate
  // plausible; without a diverse sensing path the operators see nothing
  // while the room cooks.
  CoolingSystem sys(fast_options(), 6);
  sys.advance(1800.0);  // record plenty of honest samples first
  sys.compromise_crac_plc(SpoofMode::kReplay);
  sys.advance(4.0 * 3600.0);
  EXPECT_TRUE(sys.impaired());
  EXPECT_FALSE(sys.first_detection_time_s().has_value());
}

TEST(CoolingSystem, RedundantSensorPathDefeatsReplaySpoofing) {
  // Diversity of the *monitoring* channel (independent gateway sensor)
  // catches what the spoofed PLC channel hides — the paper's thesis
  // applied to sensing.
  auto opts = fast_options();
  opts.redundant_sensor_path = true;
  CoolingSystem sys(opts, 7);
  sys.advance(1800.0);
  sys.compromise_crac_plc(SpoofMode::kReplay);
  sys.advance(4.0 * 3600.0);
  ASSERT_TRUE(sys.first_detection_time_s().has_value());
  ASSERT_TRUE(sys.impairment_time_s().has_value());
  EXPECT_LT(*sys.first_detection_time_s(), *sys.impairment_time_s());
}

TEST(CoolingSystem, DetectionLatencyOrderingAcrossSpoofModes) {
  // E9 core shape: t_detect(none) < t_detect(constant) < t_detect(replay)
  // (replay = never within the horizon).
  const double horizon = 6.0 * 3600.0;
  auto latency = [&](SpoofMode mode) {
    CoolingSystem sys(fast_options(), 8);
    sys.advance(1800.0);
    sys.compromise_crac_plc(mode);
    sys.advance(horizon);
    return sys.first_detection_time_s().value_or(1e18);
  };
  const double none = latency(SpoofMode::kNone);
  const double constant = latency(SpoofMode::kConstant);
  const double replay = latency(SpoofMode::kReplay);
  EXPECT_LT(none, constant);
  EXPECT_LT(constant, replay);
  EXPECT_EQ(replay, 1e18);  // censored: "undetected for many months"
}

TEST(CoolingSystem, DeterministicInSeed) {
  CoolingSystem a(fast_options(), 9), b(fast_options(), 9);
  a.advance(900.0);
  b.advance(900.0);
  EXPECT_DOUBLE_EQ(a.room_temp_c(), b.room_temp_c());
  EXPECT_DOUBLE_EQ(a.water_temp_c(), b.water_temp_c());
}

TEST(CoolingSystem, OptionValidation) {
  auto opts = fast_options();
  opts.plc_scan_s = 0.0;
  EXPECT_THROW(CoolingSystem(opts, 1), std::invalid_argument);
  CoolingSystem sys(fast_options(), 1);
  EXPECT_THROW(sys.advance(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace divsec::scada
