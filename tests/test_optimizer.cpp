// Tests for core/optimizer.h — greedy planning and placement strategies.
#include <gtest/gtest.h>

#include <set>

#include "core/optimizer.h"

namespace divsec::core {
namespace {

class OptimizerFixture : public ::testing::Test {
 protected:
  OptimizerFixture() : desc(make_scope_description(cat)) {
    mo.engine = Engine::kStagedSan;  // fast objective evaluations
    mo.replications = 150;
    mo.seed = 4242;
  }
  divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  SystemDescription desc;
  attack::ThreatProfile stuxnet = attack::ThreatProfile::stuxnet();
  MeasurementOptions mo;
};

TEST_F(OptimizerFixture, GreedyPlanImprovesSuccessProbabilityWithinBudget) {
  const double budget = 4.0;
  const UpgradePlan plan = greedy_diversification(desc, stuxnet, mo, budget);
  EXPECT_LE(plan.total_extra_cost, budget + 1e-9);
  EXPECT_LT(plan.planned_success_prob, plan.baseline_success_prob);
  EXPECT_FALSE(plan.steps.empty());
  // Steps record a strictly improving trajectory.
  double prev = plan.baseline_success_prob;
  for (const auto& s : plan.steps) {
    EXPECT_LT(s.success_prob_after, prev);
    prev = s.success_prob_after;
  }
  EXPECT_DOUBLE_EQ(prev, plan.planned_success_prob);
}

TEST_F(OptimizerFixture, ZeroBudgetMeansNoSteps) {
  const UpgradePlan plan = greedy_diversification(desc, stuxnet, mo, 0.0);
  EXPECT_TRUE(plan.steps.empty());
  EXPECT_EQ(plan.configuration.variant, desc.baseline_configuration().variant);
  EXPECT_THROW(greedy_diversification(desc, stuxnet, mo, -1.0),
               std::invalid_argument);
}

TEST_F(OptimizerFixture, FirstGreedyStepTargetsTheChokePoint) {
  // With Stuxnet's kill chain, the best benefit/cost upgrade is the PLC
  // firmware (or control OS); it must not be the historian.
  const UpgradePlan plan = greedy_diversification(desc, stuxnet, mo, 10.0);
  ASSERT_FALSE(plan.steps.empty());
  EXPECT_NE(plan.steps[0].component, "historian.db");
  EXPECT_NE(plan.steps[0].component, "hmi.software");
}

TEST_F(OptimizerFixture, PlacementUpgradesExactlyK) {
  stats::Rng rng(1);
  for (std::size_t k : {0u, 1u, 3u, 7u}) {
    const Configuration c = place_resilient_components(
        desc, k, PlacementStrategy::kRandom, stuxnet, mo, rng);
    EXPECT_EQ(desc.diversity_degree(c), k);
    // Upgraded components use the last (most resilient) variant.
    for (std::size_t i = 0; i < c.variant.size(); ++i) {
      if (c.variant[i] != 0) {
        EXPECT_EQ(c.variant[i],
                  cat.count(desc.components()[i].kind) - 1);
      }
    }
  }
  EXPECT_THROW(place_resilient_components(desc, 8, PlacementStrategy::kRandom,
                                          stuxnet, mo, rng),
               std::invalid_argument);
}

TEST_F(OptimizerFixture, StrategicPlacementIsDeterministic) {
  stats::Rng r1(1), r2(2);
  const Configuration a = place_resilient_components(
      desc, 2, PlacementStrategy::kStrategic, stuxnet, mo, r1);
  const Configuration b = place_resilient_components(
      desc, 2, PlacementStrategy::kStrategic, stuxnet, mo, r2);
  EXPECT_EQ(a.variant, b.variant);
}

TEST_F(OptimizerFixture, StrategicBeatsRandomPlacementOnAverage) {
  // The paper's sensitivity-analysis claim (E8): a small number of
  // well-placed resilient components beats the same number placed
  // randomly.
  constexpr std::size_t k = 2;
  stats::Rng rng(99);
  const Configuration strategic = place_resilient_components(
      desc, k, PlacementStrategy::kStrategic, stuxnet, mo, rng);
  const double p_strategic =
      attack_success_probability(desc, strategic, stuxnet, mo);

  double p_random_acc = 0.0;
  constexpr int kTrials = 12;
  for (int t = 0; t < kTrials; ++t) {
    stats::Rng trng(200 + t);
    const Configuration random = place_resilient_components(
        desc, k, PlacementStrategy::kRandom, stuxnet, mo, trng);
    p_random_acc += attack_success_probability(desc, random, stuxnet, mo);
  }
  EXPECT_LT(p_strategic, p_random_acc / kTrials);
}

TEST_F(OptimizerFixture, StrategicPicksDistinctComponents) {
  stats::Rng rng(5);
  const Configuration c = place_resilient_components(
      desc, 3, PlacementStrategy::kStrategic, stuxnet, mo, rng);
  std::set<std::size_t> upgraded;
  for (std::size_t i = 0; i < c.variant.size(); ++i)
    if (c.variant[i] != 0) upgraded.insert(i);
  EXPECT_EQ(upgraded.size(), 3u);
}

}  // namespace
}  // namespace divsec::core
