// Tests for stats/distributions.h — sampling ranges, moments, validation.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.h"
#include "stats/distributions.h"

namespace divsec::stats {
namespace {

// Property sweep: every distribution's Monte-Carlo mean and variance must
// match the analytic moments.
struct MomentCase {
  const char* name;
  Distribution dist;
};

class DistributionMoments : public ::testing::TestWithParam<MomentCase> {};

TEST_P(DistributionMoments, SampleMeanMatchesAnalyticMean) {
  Distribution d = GetParam().dist;
  Rng rng(1234);
  OnlineStats st;
  for (int i = 0; i < 200000; ++i) st.add(d.sample(rng));
  const double tol = 0.02 * std::max(1.0, std::fabs(d.mean())) +
                     4.0 * std::sqrt(d.variance() / 200000.0);
  EXPECT_NEAR(st.mean(), d.mean(), tol) << GetParam().name;
}

TEST_P(DistributionMoments, SampleVarianceMatchesAnalyticVariance) {
  Distribution d = GetParam().dist;
  Rng rng(99);
  OnlineStats st;
  for (int i = 0; i < 200000; ++i) st.add(d.sample(rng));
  EXPECT_NEAR(st.variance(), d.variance(),
              0.05 * std::max(0.01, d.variance()))
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, DistributionMoments,
    ::testing::Values(
        MomentCase{"deterministic", Distribution(Deterministic{3.5})},
        MomentCase{"uniform", Distribution(Uniform{-2.0, 5.0})},
        MomentCase{"exponential", Distribution(Exponential{2.5})},
        MomentCase{"weibull_shape_lt1", Distribution(Weibull{0.8, 2.0})},
        MomentCase{"weibull_shape_gt1", Distribution(Weibull{2.5, 1.5})},
        MomentCase{"lognormal", Distribution(Lognormal{0.3, 0.6})},
        MomentCase{"normal", Distribution(Normal{-1.0, 2.0})},
        MomentCase{"erlang", Distribution(Erlang{4, 2.0})},
        MomentCase{"triangular", Distribution(Triangular{1.0, 2.0, 6.0})}),
    [](const auto& info) { return info.param.name; });

TEST(Distributions, DeterministicAlwaysSameValue) {
  Distribution d(Deterministic{7.25});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d.sample(rng), 7.25);
}

TEST(Distributions, UniformStaysInRange) {
  Distribution d(Uniform{2.0, 3.0});
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const double x = d.sample(rng);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Distributions, ExponentialIsNonNegative) {
  Distribution d(Exponential{0.5});
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(d.sample(rng), 0.0);
}

TEST(Distributions, TriangularStaysInSupport) {
  Distribution d(Triangular{-1.0, 0.0, 2.0});
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double x = d.sample(rng);
    EXPECT_GE(x, -1.0);
    EXPECT_LE(x, 2.0);
  }
}

TEST(Distributions, ErlangIsSumOfExponentials) {
  // Erlang(1, rate) must be distributed like Exponential(rate).
  Distribution erl(Erlang{1, 3.0});
  Distribution exp(Exponential{3.0});
  EXPECT_DOUBLE_EQ(erl.mean(), exp.mean());
  EXPECT_DOUBLE_EQ(erl.variance(), exp.variance());
}

TEST(Distributions, LognormalIsPositive) {
  Distribution d(Lognormal{0.0, 1.5});
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(d.sample(rng), 0.0);
}

TEST(Distributions, ToStringNamesTheFamily) {
  EXPECT_NE(Distribution(Exponential{2.0}).to_string().find("Exponential"),
            std::string::npos);
  EXPECT_NE(Distribution(Weibull{1.0, 2.0}).to_string().find("Weibull"),
            std::string::npos);
  EXPECT_NE(Distribution(Triangular{0, 1, 2}).to_string().find("Triangular"),
            std::string::npos);
}

TEST(Distributions, DefaultConstructedIsPointMassAtZero) {
  Distribution d;
  Rng rng(6);
  EXPECT_EQ(d.sample(rng), 0.0);
  EXPECT_EQ(d.mean(), 0.0);
  EXPECT_EQ(d.variance(), 0.0);
}

TEST(DistributionsValidation, RejectsBadParameters) {
  EXPECT_THROW(Distribution(Uniform{3.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(Distribution(Exponential{0.0}), std::invalid_argument);
  EXPECT_THROW(Distribution(Exponential{-1.0}), std::invalid_argument);
  EXPECT_THROW(Distribution(Weibull{0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Distribution(Weibull{1.0, -2.0}), std::invalid_argument);
  EXPECT_THROW(Distribution(Lognormal{0.0, -0.1}), std::invalid_argument);
  EXPECT_THROW(Distribution(Normal{0.0, -1.0}), std::invalid_argument);
  EXPECT_THROW(Distribution(Erlang{0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Distribution(Erlang{2, 0.0}), std::invalid_argument);
  EXPECT_THROW(Distribution(Triangular{1.0, 0.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(Distribution(Triangular{0.0, 3.0, 2.0}), std::invalid_argument);
}

TEST(Distributions, SamplingIsDeterministicInSeed) {
  Distribution d(Weibull{1.7, 3.0});
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d.sample(a), d.sample(b));
}

TEST(Distributions, StandardNormalPolarMethodMoments) {
  Rng rng(7);
  OnlineStats st;
  for (int i = 0; i < 200000; ++i) st.add(sample_standard_normal(rng));
  EXPECT_NEAR(st.mean(), 0.0, 0.01);
  EXPECT_NEAR(st.variance(), 1.0, 0.02);
}

}  // namespace
}  // namespace divsec::stats
