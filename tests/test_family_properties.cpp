// Property-based tests for the procedural scenario families
// (scenario/family_spec.h): hundreds of random FamilySpecs, each checked
// against the invariants every family guarantees —
//
//   * node-count exactness: generate() hits spec.nodes exactly;
//   * connectivity: one component (malware reachability analysis and the
//     campaign kernel both assume it);
//   * liveness: >= 1 USB-exposed node (entry), >= 1 engineering station,
//     >= 1 PLC per site (targets);
//   * zone monotonicity: purdue-deep and hub-spoke wire only
//     zone-adjacent links; brownfield violates exactly when it has
//     legacy sites; mesh-flat is exempt by design (its point is the
//     absence of segmentation);
//   * canonical idempotence: parse(canonical()) round-trips;
//   * determinism: same (spec, seed) -> bit-identical topology, on one
//     thread and across 8 concurrent threads;
//   * fingerprint sensitivity: specs differing in exactly one field
//     produce different sweep fingerprints (the re-expansion contract's
//     collision guard), and golden digests pin the expansion bytes
//     across processes and compilers.
//
// The random-spec seed base rotates in CI (DIVSEC_FAMILY_SEED_BASE,
// derived from the run number and echoed below) so successive runs
// explore fresh corners of the spec space while any failure stays
// reproducible locally by exporting the echoed value.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "dist/sweep.h"
#include "scenario/family_spec.h"
#include "scenario/presets.h"
#include "scenario/scenario_builder.h"
#include "scenario/topology_generator.h"
#include "stats/rng.h"

namespace divsec::scenario {
namespace {

using net::NodeId;
using net::Role;
using net::Zone;

constexpr std::size_t kRandomSpecs = 220;

std::uint64_t seed_base() {
  static const std::uint64_t base = [] {
    std::uint64_t b = 20130808;  // fixed default outside CI
    if (const char* env = std::getenv("DIVSEC_FAMILY_SEED_BASE"))
      b = std::strtoull(env, nullptr, 10);
    std::printf("family-properties seed base = %llu "
                "(export DIVSEC_FAMILY_SEED_BASE=%llu to reproduce)\n",
                static_cast<unsigned long long>(b),
                static_cast<unsigned long long>(b));
    return b;
  }();
  return base;
}

/// FNV-1a over every observable field of the topology: the "bit for bit"
/// in the determinism contract, cheap enough to run hundreds of times.
std::uint64_t topology_digest(const net::Topology& t) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  const auto mix_str = [&](const std::string& s) {
    for (const char c : s) mix(static_cast<std::uint8_t>(c));
    mix(0xff);  // length delimiter
  };
  mix(t.node_count());
  for (NodeId i = 0; i < t.node_count(); ++i) {
    const net::Node& n = t.node(i);
    mix_str(n.name);
    mix(static_cast<std::uint64_t>(n.zone));
    mix(static_cast<std::uint64_t>(n.role));
    mix(n.usb_exposure ? 1 : 0);
  }
  mix(t.link_count());
  for (const net::Link& l : t.links()) {
    mix(l.a);
    mix(l.b);
  }
  return h;
}

/// A random spec drawn from the whole parameter space, rejection-sampled
/// to feasibility (validate() throwing means the node budget cannot fit
/// the requested sites/depth — skip, don't shrink).
FamilySpec random_spec(stats::Rng& rng) {
  for (;;) {
    FamilySpec spec;
    spec.family = static_cast<TopologyFamily>(rng.below(kTopologyFamilyCount));
    spec.nodes = kMinFamilyNodes + rng.below(600);
    spec.sites = rng.below(4) == 0 ? rng.below(12) : 0;  // mostly auto
    spec.depth = rng.below(5);
    spec.density = rng.uniform();
    spec.segmentation = rng.uniform();
    spec.usb_fraction = rng.uniform();
    try {
      spec.validate();
      return spec;
    } catch (const std::invalid_argument&) {
      // infeasible corner (e.g. 16 nodes, 11 sites): draw again
    }
  }
}

bool connected(const net::Topology& t) {
  if (t.node_count() == 0) return false;
  std::vector<char> seen(t.node_count(), 0);
  std::vector<NodeId> stack{0};
  seen[0] = 1;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    for (const NodeId m : t.neighbors(n)) {
      if (seen[m]) continue;
      seen[m] = 1;
      ++visited;
      stack.push_back(m);
    }
  }
  return visited == t.node_count();
}

/// Purdue level of a zone: corporate 0, DMZ 1, control 2, field 3.
int zone_level(Zone z) { return static_cast<int>(z); }

std::size_t zone_violations(const net::Topology& t) {
  std::size_t v = 0;
  for (const net::Link& l : t.links()) {
    const int da = zone_level(t.node(l.a).zone);
    const int db = zone_level(t.node(l.b).zone);
    if (da > db + 1 || db > da + 1) ++v;
  }
  return v;
}

std::size_t count_usb(const net::Topology& t) {
  std::size_t n = 0;
  for (NodeId i = 0; i < t.node_count(); ++i)
    if (t.node(i).usb_exposure) ++n;
  return n;
}

/// Whether a brownfield spec has any legacy (unsegmented) site — the
/// exact condition under which zone violations may exist.
bool has_legacy_sites(const FamilySpec& spec) {
  const std::size_t sites = spec.budget().sites;
  const auto segmented =
      static_cast<std::size_t>(spec.segmentation * static_cast<double>(sites));
  return segmented < sites;
}

TEST(FamilyProperties, RandomSpecsHoldEveryInvariant) {
  stats::Rng rng(seed_base());
  for (std::size_t i = 0; i < kRandomSpecs; ++i) {
    const FamilySpec spec = random_spec(rng);
    const std::uint64_t seed = rng();
    const std::string label =
        spec.canonical() + " seed=" + std::to_string(seed);

    const TopologyGenerator gen(spec);
    const net::Topology t = gen.generate(seed);

    // Node-count exactness.
    EXPECT_EQ(t.node_count(), spec.nodes) << label;

    // Connectivity.
    EXPECT_TRUE(connected(t)) << label;

    // Liveness: an entry point, an engineering station, PLC targets.
    EXPECT_GE(count_usb(t), 1u) << label;
    EXPECT_GE(t.nodes_with_role(Role::kEngineering).size(), 1u) << label;
    EXPECT_GE(t.nodes_with_role(Role::kPlc).size(), 1u) << label;

    // Zone monotonicity, per family contract.
    const std::size_t violations = zone_violations(t);
    switch (spec.family) {
      case TopologyFamily::kPurdueDeep:
      case TopologyFamily::kHubSpoke:
        EXPECT_EQ(violations, 0u) << label;
        break;
      case TopologyFamily::kBrownfield:
        if (has_legacy_sites(spec))
          EXPECT_GE(violations, 1u) << label;  // the legacy uplinks
        else
          EXPECT_EQ(violations, 0u) << label;
        break;
      case TopologyFamily::kMeshFlat:
        break;  // un-segmentation is the family's point
    }

    // Canonical idempotence: one spelling per spec, and it re-expands.
    const std::string canon = spec.canonical();
    const FamilySpec reparsed = FamilySpec::parse(canon);
    EXPECT_EQ(reparsed.canonical(), canon) << label;
    EXPECT_EQ(topology_digest(TopologyGenerator(reparsed).generate(seed)),
              topology_digest(t))
        << label;

    // Determinism: a second expansion is bit-identical.
    EXPECT_EQ(topology_digest(gen.generate(seed)), topology_digest(t)) << label;
  }
}

TEST(FamilyProperties, ConcurrentGenerationIsBitIdentical) {
  // 8 threads expanding the same (spec, seed) must agree bit for bit —
  // the generator shares no mutable state. One spec per family.
  stats::Rng rng(seed_base() ^ 0x74687265616473ull);
  for (std::size_t f = 0; f < kTopologyFamilyCount; ++f) {
    FamilySpec spec;
    for (;;) {  // random spec of THIS family
      spec = random_spec(rng);
      if (static_cast<std::size_t>(spec.family) == f) break;
    }
    const std::uint64_t seed = rng();
    const std::uint64_t reference =
        topology_digest(TopologyGenerator(spec).generate(seed));

    constexpr std::size_t kThreads = 8;
    std::vector<std::uint64_t> digests(kThreads, 0);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t i = 0; i < kThreads; ++i)
      threads.emplace_back([&, i] {
        digests[i] = topology_digest(TopologyGenerator(spec).generate(seed));
      });
    for (auto& th : threads) th.join();
    for (std::size_t i = 0; i < kThreads; ++i)
      EXPECT_EQ(digests[i], reference) << spec.canonical() << " thread " << i;
  }
}

TEST(FamilyProperties, SeedChangesTheWiring) {
  // Specs with enough randomized structure that two seeds cannot
  // collapse to the same fleet: seeded USB draws, seeded uplinks, chords.
  const char* specs[] = {
      "purdue-deep:nodes=256,usb=0.5",
      "mesh-flat:nodes=128,density=0.4",
      "hub-spoke:nodes=256,usb=0.5",
      "brownfield:nodes=256,segmentation=0.4,density=0.5",
  };
  for (const char* s : specs) {
    const TopologyGenerator gen(FamilySpec::parse(s));
    EXPECT_NE(topology_digest(gen.generate(1)), topology_digest(gen.generate(2)))
        << s;
  }
}

TEST(FamilyProperties, GoldenDigestsPinTheExpansionBytes) {
  // One fixed (spec, seed) per family with its expected digest: catches
  // any change to generation order, naming, wiring or RNG consumption —
  // exactly what would silently break cross-process shard re-expansion.
  // If a change is intentional, it must bump kFamilySpecVersion (the
  // canonical prefix) and these values together.
  struct Golden {
    const char* spec;
    std::uint64_t seed;
    std::uint64_t digest;
  };
  const Golden goldens[] = {
      {"purdue-deep:nodes=128,depth=3", 2013, 0x6e30154482c59436ull},
      {"mesh-flat:nodes=96,density=0.25", 2013, 0x876aad4d80b352fbull},
      {"hub-spoke:nodes=192,sites=6", 2013, 0xeac69e9228886c76ull},
      {"brownfield:nodes=160,segmentation=0.5", 2013, 0x83859ab0c304492full},
  };
  for (const Golden& g : goldens) {
    const net::Topology t =
        TopologyGenerator(FamilySpec::parse(g.spec)).generate(g.seed);
    EXPECT_EQ(topology_digest(t), g.digest) << g.spec;
  }
}

TEST(FamilySpecParsing, CanonicalFormAndSpellingVariants) {
  // Bare family name, parameterized, and full canonical prefix all land
  // on the same canonical string.
  const std::string canon = FamilySpec::parse("purdue-deep").canonical();
  EXPECT_EQ(canon,
            "familyv1:purdue-deep:nodes=256,sites=5,depth=2,density=0.15,"
            "segmentation=0.5,usb=0.35");
  EXPECT_EQ(FamilySpec::parse(canon).canonical(), canon);
  // Explicit defaults and auto-resolved sites spell identically.
  EXPECT_EQ(FamilySpec::parse("purdue-deep:nodes=256,sites=5").canonical(),
            canon);

  EXPECT_TRUE(FamilySpec::is_family_name("brownfield"));
  EXPECT_TRUE(FamilySpec::is_family_name("familyv1:mesh-flat:nodes=64"));
  EXPECT_TRUE(FamilySpec::is_family_name("familyv9:whatever"));  // parse()'s error
  EXPECT_FALSE(FamilySpec::is_family_name("enterprise256"));
  EXPECT_FALSE(FamilySpec::is_family_name("plant_small"));

  // Unknown version / family / key / value all throw with listings.
  EXPECT_THROW((void)FamilySpec::parse("familyv9:purdue-deep"), std::invalid_argument);
  EXPECT_THROW((void)FamilySpec::parse("campus-grid"), std::invalid_argument);
  EXPECT_THROW((void)FamilySpec::parse("mesh-flat:fanout=3"), std::invalid_argument);
  EXPECT_THROW((void)FamilySpec::parse("mesh-flat:density=lots"), std::invalid_argument);
  EXPECT_THROW((void)FamilySpec::parse("mesh-flat:density=1.5"), std::invalid_argument);
  try {
    (void)FamilySpec::parse("campus-grid");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("purdue-deep"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("brownfield"), std::string::npos);
  }

  // JSON intake: same spec, same canonical form.
  const FamilySpec js = FamilySpec::from_json(
      "{\"family\": \"purdue-deep\", \"nodes\": 256, \"sites\": 5}");
  EXPECT_EQ(js.canonical(), canon);
  EXPECT_THROW((void)FamilySpec::from_json("{\"nodes\": 64}"), std::invalid_argument);
  EXPECT_THROW((void)FamilySpec::from_json("not json"), std::invalid_argument);
}

TEST(FamilySpecParsing, PresetRegistryIntegration) {
  EXPECT_TRUE(has_preset("brownfield"));
  EXPECT_TRUE(has_preset("hub-spoke:nodes=128"));
  EXPECT_FALSE(has_preset("hub-spoke:nodes=7"));  // infeasible
  EXPECT_EQ(resolve_preset_name("enterprise64"), "enterprise64");
  EXPECT_EQ(resolve_preset_name("brownfield"),
            FamilySpec::parse("brownfield").canonical());
  // The unknown-preset error lists presets AND families.
  try {
    (void)resolve_preset_name("campus");
    FAIL() << "expected out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("scope_cooling"), std::string::npos);
    EXPECT_NE(what.find("enterprise{N}"), std::string::npos);
    EXPECT_NE(what.find("mesh-flat"), std::string::npos);
  }

  const divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  const GeneratedScenario sc = make_preset("hub-spoke:nodes=64", cat, 7);
  EXPECT_EQ(sc.scenario.topology.node_count(), 64u);
  EXPECT_EQ(sc.name, FamilySpec::parse("hub-spoke:nodes=64").canonical());
  EXPECT_NO_THROW(sc.scenario.validate(cat));
}

TEST(FingerprintSensitivity, OneFieldMutationsChangeTheFingerprint) {
  // The satellite regression: two specs differing in exactly one field
  // must fingerprint differently, or shard merges could silently mix
  // sweeps. Exercised through the real make_meta -> sweep_fingerprint
  // path a shard state records.
  const auto fingerprint_of = [](const std::string& preset,
                                 const std::string& threat) {
    dist::SweepSpec spec;
    spec.preset = preset;
    spec.threat = threat;
    spec.replications = 64;
    return dist::sweep_fingerprint(dist::make_meta(spec));
  };

  const std::string base = "brownfield:nodes=256,sites=4,depth=2,density=0.2,"
                           "segmentation=0.5,usb=0.4";
  const std::uint64_t fp = fingerprint_of(base, "stuxnet");
  const char* mutations[] = {
      "hub-spoke:nodes=256,sites=4,depth=2,density=0.2,segmentation=0.5,usb=0.4",
      "brownfield:nodes=255,sites=4,depth=2,density=0.2,segmentation=0.5,usb=0.4",
      "brownfield:nodes=256,sites=5,depth=2,density=0.2,segmentation=0.5,usb=0.4",
      "brownfield:nodes=256,sites=4,depth=3,density=0.2,segmentation=0.5,usb=0.4",
      "brownfield:nodes=256,sites=4,depth=2,density=0.21,segmentation=0.5,usb=0.4",
      "brownfield:nodes=256,sites=4,depth=2,density=0.2,segmentation=0.51,usb=0.4",
      "brownfield:nodes=256,sites=4,depth=2,density=0.2,segmentation=0.5,usb=0.41",
  };
  for (const char* m : mutations)
    EXPECT_NE(fingerprint_of(m, "stuxnet"), fp) << m;

  // The threat axis is fingerprint material too...
  EXPECT_NE(fingerprint_of(base, "stuxnet:scan=2"), fp);
  EXPECT_NE(fingerprint_of(base, "duqu"), fp);
  // ...but canonicalization folds spelling variants together: explicit
  // defaults, the familyv1 prefix, and identity tunings are the same
  // sweep.
  EXPECT_EQ(fingerprint_of(base, "stuxnet:scan=1"), fp);
  EXPECT_EQ(fingerprint_of(FamilySpec::parse(base).canonical(), "stuxnet"), fp);
}

TEST(ThreatTuning, SpecsParseCanonicalizeAndTuneTheProfile) {
  using attack::ThreatTuning;
  EXPECT_EQ(attack::canonical_threat_spec("stuxnet"), "stuxnet");
  EXPECT_EQ(attack::canonical_threat_spec("stuxnet:scan=1,entry=1"), "stuxnet");
  EXPECT_EQ(attack::canonical_threat_spec(
                "stuxnet:channels=usb+http,scan=2.0,dwell=0.5"),
            "stuxnet:scan=2,dwell=0.5,channels=usb+http");

  const attack::ThreatProfile base = attack::ThreatProfile::stuxnet();
  const attack::ThreatProfile tuned = attack::threat_profile_from_spec(
      "stuxnet:scan=2,entry=1.5,payload=2,dwell=0.5,stealth=0.8,"
      "channels=usb+modbus");
  EXPECT_DOUBLE_EQ(tuned.propagation_rate, base.propagation_rate * 2.0);
  EXPECT_DOUBLE_EQ(tuned.entry_rate, base.entry_rate * 1.5);
  EXPECT_DOUBLE_EQ(tuned.payload_rate, base.payload_rate * 2.0);
  EXPECT_DOUBLE_EQ(tuned.sabotage_mean_hours, base.sabotage_mean_hours * 0.5);
  EXPECT_DOUBLE_EQ(tuned.stealth, 0.8);
  ASSERT_EQ(tuned.channels.size(), 2u);
  EXPECT_EQ(tuned.channels[0], net::Channel::kUsb);
  EXPECT_EQ(tuned.channels[1], net::Channel::kModbus);
  EXPECT_EQ(tuned.name, attack::canonical_threat_spec(
                            "stuxnet:scan=2,entry=1.5,payload=2,dwell=0.5,"
                            "stealth=0.8,channels=usb+modbus"));

  EXPECT_THROW((void)attack::threat_profile_from_spec("mirai"), std::invalid_argument);
  EXPECT_THROW((void)attack::threat_profile_from_spec("stuxnet:scan=0"),
               std::invalid_argument);
  EXPECT_THROW((void)attack::threat_profile_from_spec("stuxnet:stealth=1"),
               std::invalid_argument);
  EXPECT_THROW((void)attack::threat_profile_from_spec("stuxnet:channels=carrier-pigeon"),
               std::invalid_argument);
  try {
    (void)attack::threat_profile_from_spec("mirai");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("stuxnet"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("flame"), std::string::npos);
  }
}

TEST(BalancedRotation, DealsEveryKindMaximallyEvenly) {
  const divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  const GeneratedScenario sc = make_preset(
      "purdue-deep:nodes=128", cat, 11, VariantPolicy::kBalancedRotation);
  // Every node draws an OS: per-variant counts differ by at most one.
  const std::size_t os_levels = cat.count(divers::ComponentKind::kOs);
  std::vector<std::size_t> counts(os_levels, 0);
  for (const auto& sw : sc.scenario.software) {
    ASSERT_LT(sw.os, os_levels);
    ++counts[sw.os];
  }
  std::size_t lo = counts[0], hi = counts[0];
  for (const std::size_t c : counts) {
    lo = c < lo ? c : lo;
    hi = c > hi ? c : hi;
  }
  EXPECT_LE(hi - lo, 1u);
  EXPECT_GE(lo, 1u);  // 128 nodes over a handful of variants: all used

  // Deterministic in the seed, and a policy the codec round-trips.
  const GeneratedScenario again = make_preset(
      "purdue-deep:nodes=128", cat, 11, VariantPolicy::kBalancedRotation);
  for (std::size_t i = 0; i < sc.scenario.software.size(); ++i)
    ASSERT_EQ(sc.scenario.software[i].os, again.scenario.software[i].os);
  EXPECT_EQ(std::string(to_string(VariantPolicy::kBalancedRotation)),
            "balanced-rotation");
}

TEST(FamilySweeps, TwoShardMergeMatchesInProcessByteForByte) {
  // The end-to-end re-expansion contract on a family spec: two shard
  // processes' worth of partials, merged, must equal the single-process
  // sweep — same CSV bytes, via the same code path divsec_sweep uses.
  dist::SweepSpec spec;
  spec.preset = "brownfield:nodes=48";
  spec.policies = {VariantPolicy::kMonoculture, VariantPolicy::kBalancedRotation};
  spec.threat = "stuxnet:scan=1.5";
  spec.replications = 96;

  const std::vector<core::IndicatorSummary> reference =
      dist::run_in_process(spec);
  const dist::ShardState s0 = dist::run_shard(spec, 0, 2);
  const dist::ShardState s1 = dist::run_shard(spec, 1, 2);
  const dist::MergeResult merged = dist::merge_shards({s0, s1});

  EXPECT_EQ(dist::sweep_csv(merged.meta, merged.summaries),
            dist::sweep_csv(merged.meta, reference));
  // The canonical preset and threat spellings are what the state records.
  EXPECT_EQ(merged.meta.preset, FamilySpec::parse("brownfield:nodes=48").canonical());
  EXPECT_EQ(merged.meta.threat, "stuxnet:scan=1.5");
}

}  // namespace
}  // namespace divsec::scenario
