// Tests for core/configuration.h — description, instantiation, metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "core/configuration.h"

namespace divsec::core {
namespace {

using divers::ComponentKind;

class ScopeDescription : public ::testing::Test {
 protected:
  divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  SystemDescription desc = make_scope_description(cat);
};

TEST_F(ScopeDescription, HasSevenComponents) {
  EXPECT_EQ(desc.component_count(), 7u);
  // One factor per component with the catalog's level names.
  const auto space = desc.factor_space();
  EXPECT_EQ(space.factor_count(), 7u);
  EXPECT_EQ(space.factor(0).name, "os.corporate");
  EXPECT_EQ(space.factor(0).levels.size(), cat.count(ComponentKind::kOs));
  EXPECT_EQ(space.factor(0).levels[0], "os.win_legacy");
}

TEST_F(ScopeDescription, BaselineConfigurationIsAllZeros) {
  const Configuration c = desc.baseline_configuration();
  EXPECT_EQ(c.variant.size(), 7u);
  for (std::size_t v : c.variant) EXPECT_EQ(v, 0u);
  EXPECT_EQ(desc.diversity_degree(c), 0u);
  EXPECT_DOUBLE_EQ(desc.extra_cost(c), 0.0);
  EXPECT_DOUBLE_EQ(desc.shannon_diversity(c), 0.0);
}

TEST_F(ScopeDescription, InstantiateAppliesVariantsToBoundNodes) {
  Configuration c = desc.baseline_configuration();
  c.variant[1] = 2;  // os.control -> linux
  c.variant[2] = 3;  // plc.firmware -> abb
  c.variant[4] = 1;  // firewall -> ngfw
  const attack::Scenario sc = desc.instantiate(c);
  const auto& t = sc.topology;
  EXPECT_EQ(sc.software[t.node_by_name("ctl.scada")].os, 2u);
  EXPECT_EQ(sc.software[t.node_by_name("ctl.eng")].os, 2u);
  // Corporate nodes keep the baseline OS.
  EXPECT_EQ(sc.software[t.node_by_name("corp.ws1")].os, 0u);
  EXPECT_EQ(*sc.software[t.node_by_name("fld.plc-chiller")].plc_firmware, 3u);
  EXPECT_EQ(sc.firewall_variant, 1u);
}

TEST_F(ScopeDescription, DiversityMetrics) {
  Configuration c = desc.baseline_configuration();
  c.variant[1] = 2;
  c.variant[2] = 1;
  EXPECT_EQ(desc.diversity_degree(c), 2u);
  // The two OS components now use different variants: entropy ln 2 for
  // the OS kind; plc kind has a single component so entropy stays 0.
  EXPECT_NEAR(desc.shannon_diversity(c), std::log(2.0), 1e-12);
}

TEST_F(ScopeDescription, ExtraCostScalesWithNodeCount) {
  Configuration c = desc.baseline_configuration();
  c.variant[2] = 3;  // plc.abb_ac800 on 2 PLC nodes, cost 2.2 vs 1.0
  EXPECT_NEAR(desc.extra_cost(c), 2.0 * (2.2 - 1.0), 1e-9);
}

TEST_F(ScopeDescription, ValidationErrors) {
  Configuration wrong_arity;
  wrong_arity.variant = {0, 0};
  EXPECT_THROW(desc.validate(wrong_arity), std::invalid_argument);
  Configuration out_of_range = desc.baseline_configuration();
  out_of_range.variant[0] = 99;
  EXPECT_THROW(desc.validate(out_of_range), std::out_of_range);
  EXPECT_THROW(desc.instantiate(out_of_range), std::out_of_range);
}

TEST(SystemDescription, ConstructionValidation) {
  divers::VariantCatalog cat = divers::VariantCatalog::standard(1);
  attack::Scenario sc = attack::make_scope_cooling_scenario();
  EXPECT_THROW(SystemDescription(sc, {}, cat), std::invalid_argument);
  EXPECT_THROW(SystemDescription(
                   sc, {{"", ComponentKind::kOs, {0}}}, cat),
               std::invalid_argument);
  EXPECT_THROW(SystemDescription(
                   sc, {{"os", ComponentKind::kOs, {999}}}, cat),
               std::out_of_range);
  // Node-bound kind with no nodes is rejected.
  EXPECT_THROW(SystemDescription(
                   sc, {{"os", ComponentKind::kOs, {}}}, cat),
               std::invalid_argument);
  // Firewall kind without nodes is fine.
  EXPECT_NO_THROW(SystemDescription(
      sc, {{"fw", ComponentKind::kFirewallFirmware, {}}}, cat));
}

}  // namespace
}  // namespace divsec::core
