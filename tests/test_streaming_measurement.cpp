// Tests for the streaming, block-sharded measurement backend
// (core/measurement.cpp on sim::blocked_reduce_groups): summaries must be
// bit-identical across DIVSEC_THREADS ∈ {1, 4, 8}, bit-identical between
// the streaming and retain-everything paths, and well-defined on the
// edge cases (one replication, fully censored cells, empty ranges).
#include <gtest/gtest.h>

#include <vector>

#include "core/indicator_accumulator.h"
#include "core/measurement.h"
#include "scenario/presets.h"
#include "sim/executor.h"
#include "sim/streaming.h"

namespace divsec::core {
namespace {

void expect_summary_bit_identical(const IndicatorSummary& a,
                                  const IndicatorSummary& b) {
  EXPECT_EQ(a.replications, b.replications);
  EXPECT_EQ(a.horizon_hours, b.horizon_hours);
  // EXPECT_EQ (not NEAR): the contract is exact reproduction.
  EXPECT_EQ(a.tta.mean(), b.tta.mean());
  EXPECT_EQ(a.tta.variance(), b.tta.variance());
  EXPECT_EQ(a.ttsf.mean(), b.ttsf.mean());
  EXPECT_EQ(a.ttsf.variance(), b.ttsf.variance());
  EXPECT_EQ(a.final_ratio.mean(), b.final_ratio.mean());
  EXPECT_EQ(a.tta_censored, b.tta_censored);
  EXPECT_EQ(a.ttsf_censored, b.ttsf_censored);
  EXPECT_EQ(a.successes, b.successes);
  // The censoring-aware estimates ride the same contract.
  EXPECT_EQ(a.tta_event.restricted_mean, b.tta_event.restricted_mean);
  EXPECT_EQ(a.tta_event.median, b.tta_event.median);
  EXPECT_EQ(a.tta_event.q50, b.tta_event.q50);
  EXPECT_EQ(a.tta_event.q90, b.tta_event.q90);
  EXPECT_EQ(a.ttsf_event.restricted_mean, b.ttsf_event.restricted_mean);
  EXPECT_EQ(a.ttsf_event.median, b.ttsf_event.median);
  EXPECT_EQ(a.ttsf_event.q50, b.ttsf_event.q50);
  EXPECT_EQ(a.ttsf_event.q90, b.ttsf_event.q90);
}

class StreamingMeasurementFixture : public ::testing::Test {
 protected:
  [[nodiscard]] MeasurementOptions options(const sim::Executor* ex,
                                           std::size_t reps,
                                           bool keep_samples) const {
    MeasurementOptions mo;
    mo.engine = Engine::kCampaign;
    mo.replications = reps;
    mo.seed = 2013;
    mo.executor = ex;
    mo.keep_samples = keep_samples;
    // A small block so even modest replication counts exercise multi-
    // block folds and ascending-order merges.
    mo.replication_block = 8;
    return mo;
  }

  [[nodiscard]] ScenarioSweepPlan plant_medium_plan() const {
    ScenarioSweepPlan plan;
    plan.cells.push_back(
        {scenario::make_preset("plant_medium", cat, 17,
                               scenario::VariantPolicy::kMonoculture)
             .scenario,
         101});
    plan.cells.push_back(
        {scenario::make_preset("plant_medium", cat, 17,
                               scenario::VariantPolicy::kZoneStratified)
             .scenario,
         202});
    return plan;
  }

  divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  attack::ThreatProfile stuxnet = attack::ThreatProfile::stuxnet();
  sim::Executor one{1};
  sim::Executor four{4};
  sim::Executor eight{8};
};

TEST_F(StreamingMeasurementFixture, BitIdenticalAcrossThreadCounts) {
  const ScenarioSweepPlan plan = plant_medium_plan();
  std::vector<std::vector<IndicatorSummary>> results;
  for (const sim::Executor* ex : {&one, &four, &eight}) {
    const MeasurementEngine engine(cat, stuxnet, options(ex, 30, false));
    results.push_back(engine.measure_scenarios(plan));
  }
  for (std::size_t v = 1; v < results.size(); ++v) {
    ASSERT_EQ(results[v].size(), results[0].size());
    for (std::size_t c = 0; c < results[0].size(); ++c)
      expect_summary_bit_identical(results[0][c], results[v][c]);
  }
}

TEST_F(StreamingMeasurementFixture, StreamingMatchesRetainedPathExactly) {
  const ScenarioSweepPlan plan = plant_medium_plan();
  const MeasurementEngine streaming(cat, stuxnet, options(&four, 30, false));
  const MeasurementEngine retained(cat, stuxnet, options(&four, 30, true));
  const auto a = streaming.measure_scenarios(plan);
  const auto b = retained.measure_scenarios(plan);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t c = 0; c < a.size(); ++c) {
    expect_summary_bit_identical(a[c], b[c]);
    EXPECT_TRUE(a[c].samples.empty());
    EXPECT_EQ(b[c].samples.size(), 30u);
    // Recompute the moments from the retained samples: the streaming
    // counts and Welford moments must agree with the raw data.
    stats::OnlineStats tta;
    std::size_t censored = 0;
    for (const auto& s : b[c].samples) {
      tta.add(s.tta);
      if (s.tta_censored) ++censored;
    }
    EXPECT_EQ(a[c].tta_censored, censored);
    EXPECT_NEAR(a[c].tta.mean(), tta.mean(), 1e-9);
    EXPECT_NEAR(a[c].tta.variance(), tta.variance(), 1e-6);
  }
}

TEST_F(StreamingMeasurementFixture, SingleReplicationCell) {
  const ScenarioSweepPlan plan = plant_medium_plan();
  const MeasurementEngine engine(cat, stuxnet, options(&four, 1, false));
  const auto out = engine.measure_scenarios(plan);
  ASSERT_EQ(out.size(), plan.cell_count());
  for (const auto& s : out) {
    EXPECT_EQ(s.replications, 1u);
    EXPECT_EQ(s.tta.count(), 1u);
    EXPECT_EQ(s.tta_event.observations, 1u);
  }
}

TEST(StreamingMeasurementEdge, AllCensoredCellReportsUnbiasedFields) {
  // A staged-SAN measurement with a microscopic horizon: nothing ever
  // succeeds or is detected, so every TTA/TTSF value is censored.
  divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  const SystemDescription desc = make_scope_description(cat);
  MeasurementOptions mo;
  mo.engine = Engine::kStagedSan;
  mo.replications = 40;
  mo.seed = 5;
  mo.keep_samples = false;
  mo.campaign.t_max_hours = 1e-6;
  const sim::Executor serial{1};
  mo.executor = &serial;
  const attack::ThreatProfile stuxnet = attack::ThreatProfile::stuxnet();
  const MeasurementEngine engine(desc, stuxnet, mo);
  const auto s = engine.measure_one(desc.baseline_configuration());
  EXPECT_EQ(s.tta_censored, 40u);
  EXPECT_DOUBLE_EQ(s.tta_censor_fraction(), 1.0);
  // No event observed: the product-limit median is undefined and the
  // restricted mean saturates at the horizon.
  EXPECT_FALSE(s.tta_event.median.has_value());
  // Bin-width summation: equal to the horizon up to accumulation error.
  EXPECT_NEAR(s.tta_event.restricted_mean, 1e-6, 1e-12);
  EXPECT_EQ(s.successes, 0u);
}

TEST(StreamingMeasurementEdge, EmptyRangesAreWellDefined) {
  const sim::Executor four{4};
  // parallel_for over an empty range is a no-op.
  std::size_t calls = 0;
  four.parallel_for(0, 0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
  // blocked_reduce_groups with zero items returns the empty accumulators;
  // with zero groups it returns an empty vector.
  const auto make = [](std::size_t) { return IndicatorAccumulator(1.0, 4); };
  const auto fold = [](IndicatorAccumulator&, std::size_t, std::size_t) {
    FAIL() << "fold must not run on an empty range";
  };
  const auto none = sim::blocked_reduce_groups<IndicatorAccumulator>(
      four, 3, 0, 8, make, fold);
  ASSERT_EQ(none.size(), 3u);
  for (const auto& acc : none) EXPECT_EQ(acc.count(), 0u);
  const auto empty = sim::blocked_reduce_groups<IndicatorAccumulator>(
      four, 0, 100, 8, make, fold);
  EXPECT_TRUE(empty.empty());
  // An empty measurement plan measures to an empty summary list.
  divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  const attack::ThreatProfile stuxnet = attack::ThreatProfile::stuxnet();
  MeasurementOptions mo;
  mo.executor = &four;
  const MeasurementEngine engine(cat, stuxnet, mo);
  EXPECT_TRUE(engine.measure_scenarios(ScenarioSweepPlan{}).empty());
}

TEST(StreamingMeasurementEdge, AccumulatorMergeMatchesSequentialFold) {
  // Folding blocks then merging in order must equal folding the whole
  // sequence through the identical block structure — the invariant the
  // engine's two paths rely on.
  std::vector<IndicatorSample> samples;
  for (int i = 0; i < 100; ++i) {
    IndicatorSample s;
    s.tta = 1.0 + 0.37 * i;
    s.tta_censored = i % 7 == 0;
    s.ttsf = 2.0 + 0.11 * i;
    s.ttsf_censored = i % 5 == 0;
    s.attack_succeeded = i % 3 == 0;
    s.final_ratio = (i % 10) / 10.0;
    samples.push_back(s);
  }
  const double horizon = 60.0;
  IndicatorAccumulator blocked(horizon, 16);
  for (std::size_t lo = 0; lo < samples.size(); lo += 16) {
    IndicatorAccumulator part(horizon, 16);
    for (std::size_t i = lo; i < std::min(samples.size(), lo + 16); ++i)
      part.add(samples[i]);
    blocked.merge(part);
  }
  IndicatorAccumulator replay(horizon, 16);
  for (std::size_t lo = 0; lo < samples.size(); lo += 16) {
    IndicatorAccumulator part(horizon, 16);
    for (std::size_t i = lo; i < std::min(samples.size(), lo + 16); ++i)
      part.add(samples[i]);
    replay.merge(part);
  }
  const IndicatorSummary a = blocked.summarize();
  const IndicatorSummary b = replay.summarize();
  EXPECT_EQ(a.tta.mean(), b.tta.mean());
  EXPECT_EQ(a.tta_event.q50, b.tta_event.q50);
  EXPECT_EQ(a.tta_event.restricted_mean, b.tta_event.restricted_mean);
  EXPECT_EQ(a.successes, 34u);
  EXPECT_EQ(a.replications, 100u);
}

}  // namespace
}  // namespace divsec::core
