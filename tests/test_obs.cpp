// Tests for the obs:: telemetry subsystem (PR 9). Four contracts:
//
//  1. Lock-free counters: concurrent increments through the Executor
//     lose nothing and merge deterministically (TSan runs this file),
//     and a snapshot taken while writers are running never tears — the
//     totals a reader sees are monotone non-decreasing.
//  2. The sidecar codec: metrics_json round-trips exactly through
//     parse_metrics_json, merge_into follows the sum/max rules, file
//     I/O errors throw, and malformed sidecars are rejected.
//  3. Trace spans nest, flush as balanced Chrome trace-event JSON, and
//     record nothing when no session is active.
//  4. The out-of-band invariant: sweep CSV bytes are identical with
//     recording enabled or disabled, for 1/4/8 threads. (The compiled-
//     out leg is CI's -DDIVSEC_OBS=0 build of this same test.)
//
// Assertions on recorded *values* are #if DIVSEC_OBS — in a compiled-
// out build recording is a no-op and everything reads zero, but the
// cold sidecar layer and the invariant tests still run.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "dist/state_codec.h"
#include "dist/sweep.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/executor.h"

namespace divsec {
namespace {

// --- 1. Lock-free counters under load ---------------------------------

TEST(ObsRegistry, HandlesAreStableAcrossLookups) {
  obs::Counter& a = obs::counter("test.obs.stable");
  obs::Counter& b = obs::counter("test.obs.stable");
  EXPECT_EQ(&a, &b);
  obs::Gauge& g1 = obs::gauge("test.obs.stable_gauge");
  obs::Gauge& g2 = obs::gauge("test.obs.stable_gauge");
  EXPECT_EQ(&g1, &g2);
}

TEST(ObsRegistry, CounterMergeIsDeterministicUnderExecutorLoad) {
  obs::reset();
  obs::set_enabled(true);
  constexpr std::size_t kJobs = 100000;
  obs::Counter& hits = obs::counter("test.obs.load_hits");
  obs::Histogram& sizes = obs::histogram("test.obs.load_sizes");
  const sim::Executor ex(8);
  ex.parallel_for(0, kJobs, [&](std::size_t i) {
    hits.add(1);
    sizes.observe(i % 17);
  });
#if DIVSEC_OBS
  EXPECT_EQ(hits.total(), kJobs);
  const obs::Snapshot snap = obs::snapshot();
  EXPECT_EQ(snap.counter("test.obs.load_hits"), kJobs);
  const obs::HistogramValue* h = snap.histogram("test.obs.load_sizes");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, kJobs);
  // Sum of i % 17 over [0, 100000) is exact and schedule-independent.
  std::uint64_t expected_sum = 0;
  for (std::size_t i = 0; i < kJobs; ++i) expected_sum += i % 17;
  EXPECT_EQ(h->sum, expected_sum);
#endif
}

TEST(ObsRegistry, SnapshotWhileIncrementingNeverTears) {
  obs::reset();
  obs::set_enabled(true);
  constexpr std::size_t kWriters = 4;
  constexpr std::uint64_t kPerWriter = 200000;
  obs::Counter& c = obs::counter("test.obs.tear");
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (std::size_t w = 0; w < kWriters; ++w)
    writers.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {}
      for (std::uint64_t i = 0; i < kPerWriter; ++i) c.add(1);
    });
  go.store(true, std::memory_order_release);
  // Each stripe is monotone and same-thread re-reads respect coherence
  // order, so this reader's successive totals must never decrease.
  std::uint64_t last = 0;
  for (int probe = 0; probe < 1000; ++probe) {
    const std::uint64_t now = c.total();
    EXPECT_GE(now, last);
    EXPECT_LE(now, kWriters * kPerWriter);
    last = now;
  }
  for (auto& t : writers) t.join();
#if DIVSEC_OBS
  EXPECT_EQ(c.total(), kWriters * kPerWriter);
#endif
}

TEST(ObsRegistry, GaugeRecordMaxIsTheMaxAcrossThreads) {
  obs::reset();
  obs::set_enabled(true);
  obs::Gauge& g = obs::gauge("test.obs.max");
  const sim::Executor ex(4);
  ex.parallel_for(0, 10000, [&](std::size_t i) { g.record_max(i); });
#if DIVSEC_OBS
  EXPECT_EQ(g.value(), 9999u);
#endif
}

TEST(ObsRegistry, DisableFreezesAndResetZeroes) {
  obs::reset();
  obs::set_enabled(true);
  obs::Counter& c = obs::counter("test.obs.freeze");
  c.add(5);
  obs::set_enabled(false);
  c.add(100);  // dropped: recording is off
  obs::set_enabled(true);
#if DIVSEC_OBS
  EXPECT_EQ(c.total(), 5u);
#endif
  obs::reset();
  EXPECT_EQ(c.total(), 0u);
}

TEST(ObsRegistry, HistogramBucketsAreLog2) {
#if DIVSEC_OBS
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(~std::uint64_t{0}),
            obs::kHistogramBuckets - 1);
#endif
  obs::reset();
  obs::set_enabled(true);
  obs::Histogram& h = obs::histogram("test.obs.log2");
  for (std::uint64_t v : {0ull, 1ull, 1ull, 1000ull}) h.observe(v);
#if DIVSEC_OBS
  obs::HistogramValue hv;
  h.fill(hv);
  EXPECT_EQ(hv.count, 4u);
  EXPECT_EQ(hv.sum, 1002u);
  EXPECT_DOUBLE_EQ(hv.mean(), 1002.0 / 4.0);
  // p25 lands in the ones, p100 in 1000's bucket: the log2 upper edge
  // bounds the true quantile within a factor of two.
  EXPECT_GE(hv.quantile(1.0), 1000.0);
  EXPECT_LE(hv.quantile(1.0), 2048.0);
#endif
}

// --- 2. The sidecar codec ---------------------------------------------

TEST(ObsSidecar, JsonRoundTripsExactly) {
  obs::Snapshot snap;
  snap.counters.push_back({"a.count", 42});
  snap.counters.push_back({"b.count", ~std::uint64_t{0}});  // max u64
  snap.gauges.push_back({"a.peak", 7});
  obs::HistogramValue h;
  h.name = "a.hist";
  h.count = 3;
  h.sum = 1002;
  h.buckets[0] = 1;
  h.buckets[1] = 1;
  h.buckets[10] = 1;
  snap.histograms.push_back(h);

  const std::string json = obs::metrics_json(snap);
  const obs::Snapshot back = obs::parse_metrics_json(json);
  ASSERT_EQ(back.counters.size(), 2u);
  EXPECT_EQ(back.counter("a.count"), 42u);
  EXPECT_EQ(back.counter("b.count"), ~std::uint64_t{0});
  EXPECT_EQ(back.gauge("a.peak"), 7u);
  const obs::HistogramValue* hb = back.histogram("a.hist");
  ASSERT_NE(hb, nullptr);
  EXPECT_EQ(hb->count, 3u);
  EXPECT_EQ(hb->sum, 1002u);
  EXPECT_EQ(hb->buckets, h.buckets);
  // Re-emission is byte-identical: the sidecar format is canonical.
  EXPECT_EQ(obs::metrics_json(back), json);
}

TEST(ObsSidecar, MergeSumsCountersAndMaxesGauges) {
  obs::Snapshot a;
  a.counters.push_back({"shared", 10});
  a.gauges.push_back({"peak", 5});
  obs::HistogramValue ha;
  ha.name = "lat";
  ha.count = 2;
  ha.sum = 6;
  ha.buckets[2] = 2;
  a.histograms.push_back(ha);

  obs::Snapshot b;
  b.counters.push_back({"only_b", 1});
  b.counters.push_back({"shared", 32});
  b.gauges.push_back({"peak", 3});
  obs::HistogramValue hb;
  hb.name = "lat";
  hb.count = 1;
  hb.sum = 100;
  hb.buckets[7] = 1;
  b.histograms.push_back(hb);

  obs::merge_into(a, b);
  EXPECT_EQ(a.counter("shared"), 42u);
  EXPECT_EQ(a.counter("only_b"), 1u);
  EXPECT_EQ(a.gauge("peak"), 5u);  // max, not sum
  const obs::HistogramValue* m = a.histogram("lat");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 3u);
  EXPECT_EQ(m->sum, 106u);
  EXPECT_EQ(m->buckets[2], 2u);
  EXPECT_EQ(m->buckets[7], 1u);
  // Sorted-name invariant survives the insertion of only_b.
  for (std::size_t i = 1; i < a.counters.size(); ++i)
    EXPECT_LT(a.counters[i - 1].name, a.counters[i].name);
}

TEST(ObsSidecar, RejectsMalformedInput) {
  EXPECT_THROW((void)obs::parse_metrics_json(""), std::runtime_error);
  EXPECT_THROW((void)obs::parse_metrics_json("{}"), std::runtime_error);
  EXPECT_THROW((void)obs::parse_metrics_json("{\"divsec_metrics\": 99}"),
               std::runtime_error);
  // Truncated mid-object.
  EXPECT_THROW((void)obs::parse_metrics_json(
                   "{\"divsec_metrics\": 1, \"counters\": {\"a\": "),
               std::runtime_error);
}

TEST(ObsSidecar, FileRoundTripAndMissingFileThrows) {
  obs::Snapshot snap;
  snap.counters.push_back({"io.test", 123});
  const std::string path = "test_obs_sidecar.metrics.json";
  obs::write_metrics_file(path, snap);
  const obs::Snapshot back = obs::read_metrics_file(path);
  EXPECT_EQ(back.counter("io.test"), 123u);
  std::remove(path.c_str());
  EXPECT_THROW((void)obs::read_metrics_file(path), std::runtime_error);
}

// --- 3. Trace spans ----------------------------------------------------

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size()))
    ++n;
  return n;
}

TEST(ObsTrace, SpansNestAndFlushBalancedJson) {
  obs::trace_start();
  {
    const obs::Span outer("test.outer");
    const obs::Span inner("test.inner");
    (void)outer;
    (void)inner;
  }
  {
    const obs::Span solo("test.solo");
    (void)solo;
  }
  const std::string path = "test_obs_trace.json";
  obs::trace_stop(path);

  std::string json;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[1 << 12];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) json.append(buf, n);
    std::fclose(f);
  }
  std::remove(path.c_str());

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
#if DIVSEC_OBS
  // Three complete events, each a "ph": "X" record with its name.
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"X\""), 3u);
  EXPECT_EQ(count_occurrences(json, "\"test.outer\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"test.inner\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"test.solo\""), 1u);
#endif
  // Balanced braces/brackets: the file is structurally sound JSON.
  EXPECT_EQ(count_occurrences(json, "{"), count_occurrences(json, "}"));
  EXPECT_EQ(count_occurrences(json, "["), count_occurrences(json, "]"));
}

TEST(ObsTrace, NoSessionRecordsNothing) {
#if DIVSEC_OBS
  ASSERT_FALSE(obs::trace_enabled());
  {
    const obs::Span ignored("test.ignored");
    (void)ignored;
  }
  obs::trace_start();
  const std::string json = obs::trace_json();  // ends the session
  EXPECT_EQ(count_occurrences(json, "\"ph\""), 0u);
  EXPECT_EQ(count_occurrences(json, "test.ignored"), 0u);
#endif
}

// --- 4. The out-of-band invariant --------------------------------------

TEST(ObsInvariant, SweepCsvBytesIdenticalWithRecordingOnOrOff) {
  dist::SweepSpec spec;
  spec.preset = "plant_small";
  spec.seed = 4242;
  spec.replications = 24;
  spec.replication_block = 8;
  spec.superblock = 8;
  const dist::SweepMeta meta = dist::make_meta(spec);

  std::string reference;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                    std::size_t{8}}) {
    const sim::Executor ex(threads);
    for (const bool recording : {true, false}) {
      obs::set_enabled(recording);
      const auto summaries = dist::run_in_process(spec, &ex);
      const std::string csv = dist::sweep_csv(meta, summaries);
      if (reference.empty()) reference = csv;
      EXPECT_EQ(csv, reference)
          << "CSV drifted: threads=" << threads
          << " recording=" << recording;
    }
  }
  obs::set_enabled(true);
  EXPECT_FALSE(reference.empty());
}

TEST(ObsInvariant, ShardStateBytesIdenticalWithRecordingOnOrOff) {
  dist::SweepSpec spec;
  spec.preset = "plant_small";
  spec.seed = 4242;
  spec.replications = 24;
  spec.replication_block = 8;
  spec.superblock = 8;

  obs::set_enabled(true);
  const dist::ShardState on = dist::run_shard(spec, 0, 2);
  obs::set_enabled(false);
  const dist::ShardState off = dist::run_shard(spec, 0, 2);
  obs::set_enabled(true);
  // Wall-clock meta fields differ run to run by design; the partials —
  // the bytes that decide every merged result — must not.
  ASSERT_EQ(on.tasks, off.tasks);
  ASSERT_EQ(on.partials.size(), off.partials.size());
  for (std::size_t t = 0; t < on.partials.size(); ++t)
    EXPECT_EQ(dist::accumulator_json(on.partials[t]),
              dist::accumulator_json(off.partials[t]));
}

}  // namespace
}  // namespace divsec
