// Tests for attack/bayes.h — BN semantics and the attack-BN compilation.
#include <gtest/gtest.h>

#include <cmath>

#include "attack/bayes.h"
#include "san/analysis.h"
#include "attack/san_model.h"

namespace divsec::attack {
namespace {

using Ev = BayesianNetwork::Evidence;

/// The textbook sprinkler network: Rain -> Sprinkler, {Rain, Sprinkler} ->
/// GrassWet, with well-known posteriors.
BayesianNetwork sprinkler() {
  BayesianNetwork bn;
  const auto rain = bn.add_node("rain", 2, {}, {0.8, 0.2});
  // P[sprinkler | rain]: rain=0 -> 0.4 on; rain=1 -> 0.01 on.
  const auto spr = bn.add_node("sprinkler", 2, {rain}, {0.6, 0.4, 0.99, 0.01});
  // P[wet | rain, sprinkler] with parent order (rain, sprinkler),
  // rain fastest: combos (r=0,s=0), (r=1,s=0), (r=0,s=1), (r=1,s=1).
  bn.add_node("wet", 2, {rain, spr},
              {1.0, 0.0,     // r0 s0
               0.2, 0.8,     // r1 s0
               0.1, 0.9,     // r0 s1
               0.01, 0.99}); // r1 s1
  return bn;
}

TEST(BayesianNetwork, JointFactorizes) {
  const BayesianNetwork bn = sprinkler();
  // P(r=1, s=0, w=1) = 0.2 * 0.99 * 0.8 = 0.1584.
  EXPECT_NEAR(bn.joint(std::vector<int>{1, 0, 1}), 0.2 * 0.99 * 0.8, 1e-12);
  EXPECT_NEAR(bn.joint(std::vector<int>{0, 0, 0}), 0.8 * 0.6 * 1.0, 1e-12);
}

TEST(BayesianNetwork, JointSumsToOne) {
  const BayesianNetwork bn = sprinkler();
  double total = 0.0;
  for (int r = 0; r < 2; ++r)
    for (int s = 0; s < 2; ++s)
      for (int w = 0; w < 2; ++w) total += bn.joint(std::vector<int>{r, s, w});
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(BayesianNetwork, MarginalsMatchHandComputation) {
  const BayesianNetwork bn = sprinkler();
  EXPECT_NEAR(bn.marginal(0, 1), 0.2, 1e-12);
  // P[wet] = sum over r,s.
  double wet = 0.0;
  for (int r = 0; r < 2; ++r)
    for (int s = 0; s < 2; ++s) wet += bn.joint(std::vector<int>{r, s, 1});
  EXPECT_NEAR(bn.marginal(2, 1), wet, 1e-12);
}

TEST(BayesianNetwork, PosteriorWithEvidence) {
  const BayesianNetwork bn = sprinkler();
  // Classic query: P[rain | wet]. Compute by hand from the joint.
  double rain_and_wet = 0.0, wet = 0.0;
  for (int r = 0; r < 2; ++r)
    for (int s = 0; s < 2; ++s) {
      const double p = bn.joint(std::vector<int>{r, s, 1});
      wet += p;
      if (r == 1) rain_and_wet += p;
    }
  const Ev e{2, 1};
  const auto post = bn.posterior(0, std::span(&e, 1));
  EXPECT_NEAR(post[1], rain_and_wet / wet, 1e-12);
  EXPECT_NEAR(post[0] + post[1], 1.0, 1e-12);
}

TEST(BayesianNetwork, ExplainingAway) {
  // Given wet grass, learning the sprinkler ran lowers P[rain].
  const BayesianNetwork bn = sprinkler();
  const Ev wet{2, 1};
  const std::vector<Ev> wet_and_sprinkler{{2, 1}, {1, 1}};
  const double p_rain_wet = bn.posterior(0, std::span(&wet, 1))[1];
  const double p_rain_wet_spr = bn.posterior(0, wet_and_sprinkler)[1];
  EXPECT_LT(p_rain_wet_spr, p_rain_wet);
}

TEST(BayesianNetwork, MostProbableExplanation) {
  const BayesianNetwork bn = sprinkler();
  const Ev wet{2, 1};
  const auto mpe = bn.most_probable_explanation(std::span(&wet, 1));
  ASSERT_EQ(mpe.size(), 3u);
  EXPECT_EQ(mpe[2], 1);  // respects the evidence
  // The MPE must have maximal joint probability among wet-consistent
  // assignments.
  const double p_mpe = bn.joint(mpe);
  for (int r = 0; r < 2; ++r)
    for (int s = 0; s < 2; ++s)
      EXPECT_GE(p_mpe, bn.joint(std::vector<int>{r, s, 1}) - 1e-15);
}

TEST(BayesianNetwork, ValidationErrors) {
  BayesianNetwork bn;
  EXPECT_THROW(bn.add_node("", 2, {}, {0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(bn.add_node("x", 1, {}, {1.0}), std::invalid_argument);
  EXPECT_THROW(bn.add_node("x", 2, {}, {0.6, 0.6}), std::invalid_argument);
  EXPECT_THROW(bn.add_node("x", 2, {}, {0.5}), std::invalid_argument);
  EXPECT_THROW(bn.add_node("x", 2, {5}, {0.5, 0.5}), std::out_of_range);
  const auto a = bn.add_node("a", 2, {}, {0.5, 0.5});
  EXPECT_THROW((void)bn.joint(std::vector<int>{2}), std::out_of_range);
  EXPECT_THROW(bn.posterior(9), std::out_of_range);
  const Ev impossible{a, 0};
  bn.add_node("b", 2, {a}, {1.0, 0.0, 1.0, 0.0});
  // Evidence with probability zero (b=1 never happens).
  const Ev b_one{1, 1};
  EXPECT_THROW(bn.posterior(a, std::span(&b_one, 1)), std::invalid_argument);
  (void)impossible;
}

StagedAttackModel uniform_model(double p, double det = 0.0) {
  StagedAttackModel m;
  for (auto& t : m.transitions) {
    t.attempt_rate = 1.0;
    t.success_probability = p;
    t.detection_rate = det;
  }
  return m;
}

TEST(AttackBn, ChainStructureAndMonotonicity) {
  const auto bn_hi = make_attack_bayesian_network(uniform_model(0.9), 500.0);
  const auto bn_lo = make_attack_bayesian_network(uniform_model(0.2), 500.0);
  EXPECT_GT(bn_hi.impairment_probability(), bn_lo.impairment_probability());
  // Stage marginals are non-increasing along the chain.
  double prev = 1.0;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const double p = bn_hi.network.marginal(bn_hi.stage_node[i], 1);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

TEST(AttackBn, LongHorizonCertainSuccessWithoutDetection) {
  const auto bn = make_attack_bayesian_network(uniform_model(1.0), 1e6);
  EXPECT_NEAR(bn.impairment_probability(), 1.0, 1e-6);
  EXPECT_NEAR(bn.detection_probability(), 0.0, 1e-12);
}

TEST(AttackBn, DetectionRespondsToRates) {
  const auto quiet = make_attack_bayesian_network(uniform_model(0.8, 0.0001), 500.0);
  const auto loud = make_attack_bayesian_network(uniform_model(0.8, 0.05), 500.0);
  EXPECT_GT(loud.detection_probability(), quiet.detection_probability());
  EXPECT_LT(loud.impairment_probability(), quiet.impairment_probability());
}

TEST(AttackBn, DetectionGivenImpairmentIsWellDefined) {
  const auto bn = make_attack_bayesian_network(uniform_model(0.8, 0.01), 500.0);
  const double d = bn.detection_given_impairment();
  EXPECT_GE(d, 0.0);
  EXPECT_LE(d, 1.0);
}

TEST(AttackBn, AgreesWithSanOnConfigurationOrdering) {
  // The static BN abstraction and the dynamic SAN must rank a hard
  // configuration below an easy one.
  const StagedAttackModel easy = uniform_model(0.8, 0.001);
  const StagedAttackModel hard = uniform_model(0.1, 0.001);
  const double horizon = 200.0;
  const auto bn_easy = make_attack_bayesian_network(easy, horizon);
  const auto bn_hard = make_attack_bayesian_network(hard, horizon);
  const auto san_p = [horizon](const StagedAttackModel& m) {
    const AttackSan a = build_attack_san(m);
    return san::first_passage(a.model, a.success_predicate(), horizon, 3000, 3)
        .absorption_probability();
  };
  EXPECT_GT(bn_easy.impairment_probability(), bn_hard.impairment_probability());
  EXPECT_GT(san_p(easy), san_p(hard));
}

TEST(AttackBn, InvalidHorizonRejected) {
  EXPECT_THROW(make_attack_bayesian_network(uniform_model(0.5), 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace divsec::attack
