// Tests for stats/rng.h — determinism, stream independence, uniformity.
#include <gtest/gtest.h>

#include <array>
#include <set>

#include "stats/rng.h"

namespace divsec::stats {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, DifferentStreamsDiffer) {
  Rng a(7, 0), b(7, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, StreamDerivationIsDeterministic) {
  Rng parent(99);
  Rng c1 = parent.stream(5);
  Rng c2 = parent.stream(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1(), c2());
}

TEST(Rng, StreamDerivationDoesNotConsumeState) {
  Rng a(13), b(13);
  (void)a.stream(1);
  (void)a.stream(2);
  EXPECT_EQ(a(), b());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(4);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, BelowIsBounded) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BelowIsApproximatelyUniform) {
  Rng rng(8);
  std::array<int, 10> counts{};
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[rng.below(10)];
  for (int c : counts) {
    EXPECT_GT(c, kN / 10 - 600);
    EXPECT_LT(c, kN / 10 + 600);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(10);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

TEST(Rng, SplitMix64KnownValues) {
  // Reference values from the splitmix64 reference implementation with
  // state 0: first output is 0xE220A8397B1DCDAF.
  std::uint64_t s = 0;
  EXPECT_EQ(splitmix64(s), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(splitmix64(s), 0x6E789E6AA1B965F4ULL);
}

}  // namespace
}  // namespace divsec::stats
