// Tests for divers/ir.h — the toy ISA: validation, encoding, execution.
#include <gtest/gtest.h>

#include "divers/ir.h"

namespace divsec::divers {
namespace {

Program tiny_store_program() {
  // mem[1] = mem[0] + 7.
  Program p;
  BasicBlock b;
  b.body.push_back({Opcode::kMovImm, 0, 0, 0, 0});   // r0 = 0 (address)
  b.body.push_back({Opcode::kLoad, 1, 0, 0, 0});     // r1 = mem[r0]
  b.body.push_back({Opcode::kMovImm, 2, 0, 0, 7});   // r2 = 7
  b.body.push_back({Opcode::kAdd, 3, 1, 2, 0});      // r3 = r1 + r2
  b.body.push_back({Opcode::kMovImm, 4, 0, 0, 1});   // r4 = 1 (address)
  b.body.push_back({Opcode::kStore, 0, 4, 3, 0});    // mem[r4] = r3
  b.term = {TerminatorKind::kReturn, 0, 0, 0};
  p.blocks.push_back(b);
  return p;
}

TEST(Ir, ExecuteComputesExpectedResult) {
  const Program p = tiny_store_program();
  const auto r = execute(p, {35});
  EXPECT_FALSE(r.hit_step_limit);
  EXPECT_EQ(r.memory[1], 42);
}

TEST(Ir, RegistersStartAtZero) {
  Program p;
  BasicBlock b;
  b.body.push_back({Opcode::kMovImm, 0, 0, 0, 3});  // r0 = 3 (address)
  b.body.push_back({Opcode::kStore, 0, 0, 5, 0});   // mem[3] = r5 (= 0)
  b.term = {TerminatorKind::kReturn, 0, 0, 0};
  p.blocks.push_back(b);
  const auto r = execute(p, {9, 9, 9, 9});
  EXPECT_EQ(r.memory[3], 0);
}

TEST(Ir, BranchTakesConditionPath) {
  // if mem[0] != 0 -> mem[1] = 100 else mem[1] = 200.
  Program p;
  p.blocks.resize(4);
  p.blocks[0].body.push_back({Opcode::kMovImm, 0, 0, 0, 0});
  p.blocks[0].body.push_back({Opcode::kLoad, 1, 0, 0, 0});
  p.blocks[0].term = {TerminatorKind::kBranch, 1, 1, 2};
  p.blocks[1].body.push_back({Opcode::kMovImm, 2, 0, 0, 100});
  p.blocks[1].term = {TerminatorKind::kJump, 0, 3, 0};
  p.blocks[2].body.push_back({Opcode::kMovImm, 2, 0, 0, 200});
  p.blocks[2].term = {TerminatorKind::kJump, 0, 3, 0};
  p.blocks[3].body.push_back({Opcode::kMovImm, 3, 0, 0, 1});
  p.blocks[3].body.push_back({Opcode::kStore, 0, 3, 2, 0});
  p.blocks[3].term = {TerminatorKind::kReturn, 0, 0, 0};
  EXPECT_EQ(execute(p, {1}).memory[1], 100);
  EXPECT_EQ(execute(p, {0}).memory[1], 200);
}

TEST(Ir, CmpLtIsSigned) {
  Program p;
  BasicBlock b;
  b.body.push_back({Opcode::kMovImm, 0, 0, 0, -5});
  b.body.push_back({Opcode::kMovImm, 1, 0, 0, 3});
  b.body.push_back({Opcode::kCmpLt, 2, 0, 1, 0});   // r2 = (-5 < 3) = 1
  b.body.push_back({Opcode::kMovImm, 3, 0, 0, 0});
  b.body.push_back({Opcode::kStore, 0, 3, 2, 0});   // mem[0] = r2
  b.term = {TerminatorKind::kReturn, 0, 0, 0};
  p.blocks.push_back(b);
  EXPECT_EQ(execute(p, {}).memory[0], 1);
}

TEST(Ir, InfiniteLoopHitsStepLimit) {
  Program p;
  BasicBlock b;
  b.term = {TerminatorKind::kJump, 0, 0, 0};  // jump to self
  p.blocks.push_back(b);
  const auto r = execute(p, {}, /*max_steps=*/1000);
  EXPECT_TRUE(r.hit_step_limit);
}

TEST(Ir, ValidationCatchesBadPrograms) {
  Program empty;
  EXPECT_THROW(empty.validate(), std::invalid_argument);

  Program bad_reg;
  bad_reg.blocks.resize(1);
  bad_reg.blocks[0].body.push_back({Opcode::kAdd, 9, 0, 0, 0});
  bad_reg.blocks[0].term = {TerminatorKind::kReturn, 0, 0, 0};
  EXPECT_THROW(bad_reg.validate(), std::invalid_argument);

  Program bad_jump;
  bad_jump.blocks.resize(1);
  bad_jump.blocks[0].term = {TerminatorKind::kJump, 0, 5, 0};
  EXPECT_THROW(bad_jump.validate(), std::invalid_argument);

  Program bad_branch;
  bad_branch.blocks.resize(2);
  bad_branch.blocks[0].term = {TerminatorKind::kBranch, 0, 1, 7};
  bad_branch.blocks[1].term = {TerminatorKind::kReturn, 0, 0, 0};
  EXPECT_THROW(bad_branch.validate(), std::invalid_argument);
}

TEST(Ir, EncodeIsFourBytesPerInstructionAndTerminator) {
  const Program p = tiny_store_program();
  const auto bytes = encode(p);
  EXPECT_EQ(bytes.size(), (p.instruction_count() + p.blocks.size()) * 4);
}

TEST(Ir, EncodeIsDeterministicAndContentSensitive) {
  const Program p = tiny_store_program();
  EXPECT_EQ(encode(p), encode(p));
  Program q = p;
  q.blocks[0].body[2].imm = 8;  // change the constant
  EXPECT_NE(encode(p), encode(q));
}

TEST(IrGenerator, GeneratedProgramsTerminate) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    stats::Rng rng(seed);
    const Program p = generate_program(rng);
    const auto r = execute(p, {1, 2, 3});
    EXPECT_FALSE(r.hit_step_limit) << "seed " << seed;
  }
}

TEST(IrGenerator, DeterministicInSeed) {
  stats::Rng a(5), b(5);
  const Program pa = generate_program(a);
  const Program pb = generate_program(b);
  EXPECT_EQ(encode(pa), encode(pb));
}

TEST(IrGenerator, RespectsOptions) {
  stats::Rng rng(6);
  GeneratorOptions opts;
  opts.blocks = 7;
  opts.instructions_per_block = 3;
  const Program p = generate_program(rng, opts);
  EXPECT_EQ(p.blocks.size(), 7u);
  EXPECT_EQ(p.instruction_count(), 21u);
  EXPECT_THROW(generate_program(rng, GeneratorOptions{0, 1, 0.0}),
               std::invalid_argument);
}

TEST(Ir, OpcodeNames) {
  EXPECT_STREQ(to_string(Opcode::kNop), "nop");
  EXPECT_STREQ(to_string(Opcode::kCmpLt), "cmplt");
}

}  // namespace
}  // namespace divsec::divers
