// Tests for divers/variants.h — the catalog and the mechanistic
// exploit-success model at the heart of the reproduction.
#include <gtest/gtest.h>

#include <cmath>

#include "divers/variants.h"

namespace divsec::divers {
namespace {

class StandardCatalog : public ::testing::Test {
 protected:
  VariantCatalog cat = VariantCatalog::standard(2013);
};

TEST_F(StandardCatalog, EveryKindHasAtLeastTwoVariants) {
  for (ComponentKind k : all_component_kinds()) {
    EXPECT_GE(cat.count(k), 2u) << to_string(k);
    for (const auto& v : cat.variants(k)) {
      EXPECT_EQ(v.kind, k);
      EXPECT_FALSE(v.name.empty());
      EXPECT_FALSE(v.binary.blocks.empty());
      EXPECT_GT(v.cost, 0.0);
    }
  }
}

TEST_F(StandardCatalog, IndexOfFindsByName) {
  EXPECT_EQ(cat.index_of(ComponentKind::kOs, "os.win_legacy"), 0u);
  EXPECT_THROW((void)cat.index_of(ComponentKind::kOs, "os.nope"), std::out_of_range);
}

TEST_F(StandardCatalog, PatchedLookupUsesSortedCves) {
  const Variant& win7 = cat.variant(ComponentKind::kOs,
                                    cat.index_of(ComponentKind::kOs, "os.win_patched"));
  EXPECT_TRUE(win7.patched(101));
  EXPECT_TRUE(win7.patched(102));
  EXPECT_FALSE(win7.patched(103));
}

TEST_F(StandardCatalog, SurvivalMatrixDiagonalIsOne) {
  for (ComponentKind k : all_component_kinds()) {
    for (std::size_t i = 0; i < cat.count(k); ++i)
      EXPECT_DOUBLE_EQ(cat.survival(k, i, i), 1.0) << to_string(k) << " " << i;
  }
}

TEST_F(StandardCatalog, PatchSiblingRetainsMoreGadgetsThanCrossFamily) {
  // windows legacy -> windows patched (same family, mild rebuild) must
  // leave more of the exploit intact than windows -> linux.
  const double same_family = cat.survival(ComponentKind::kOs, 0, 1);
  const double cross_family = cat.survival(ComponentKind::kOs, 0, 2);
  EXPECT_GT(same_family, 0.3);
  EXPECT_LT(cross_family, 0.05);
  EXPECT_GT(same_family, cross_family);
}

TEST_F(StandardCatalog, MulticompiledSiblingBreaksGadgets) {
  const std::size_t stock = cat.index_of(ComponentKind::kPlcFirmware, "plc.s7_stock");
  const std::size_t mc =
      cat.index_of(ComponentKind::kPlcFirmware, "plc.s7_multicompiled");
  EXPECT_LT(cat.survival(ComponentKind::kPlcFirmware, stock, mc), 0.05);
}

TEST_F(StandardCatalog, ExploitDiesOnPatchedVariantUnlessZeroDay) {
  Exploit e{"test", ComponentKind::kOs, /*cve=*/101, /*zero_day=*/false,
            /*dev_variant=*/0, /*base_success=*/0.9};
  // win_legacy (unpatched): full success path.
  EXPECT_GT(cat.exploit_success(e, 0), 0.5);
  // win_patched closed CVE 101.
  EXPECT_DOUBLE_EQ(cat.exploit_success(e, 1), 0.0);
  // Zero-day version ignores the patch but pays the diversity cost.
  e.zero_day = true;
  EXPECT_GT(cat.exploit_success(e, 1), 0.0);
  EXPECT_LT(cat.exploit_success(e, 1), cat.exploit_success(e, 0));
}

TEST_F(StandardCatalog, DiversityOrderingOfExploitSuccess) {
  // Success against: dev variant > patch sibling (zero-day) > cross family.
  Exploit e{"zd", ComponentKind::kOs, 150, /*zero_day=*/true, 0, 0.9};
  const double on_dev = cat.exploit_success(e, 0);
  const double on_sibling = cat.exploit_success(e, 1);
  const double on_linux = cat.exploit_success(e, 2);
  EXPECT_GT(on_dev, on_sibling);
  EXPECT_GT(on_sibling, on_linux);
  // Full-survival path on the dev variant (hardening 0): base * 1.
  EXPECT_NEAR(on_dev, 0.9, 1e-12);
}

TEST_F(StandardCatalog, HardeningScalesSuccess) {
  // rtos_micro has hardening 0.5.
  Exploit e{"zd", ComponentKind::kOs, 150, true, 0, 0.8};
  const std::size_t rtos = cat.index_of(ComponentKind::kOs, "os.rtos_micro");
  const double expected_structural =
      0.05 + 0.95 * cat.survival(ComponentKind::kOs, 0, rtos);
  EXPECT_NEAR(cat.exploit_success(e, rtos), 0.8 * expected_structural * 0.5, 1e-12);
}

TEST_F(StandardCatalog, WorkFactorGrowsWithAslr) {
  Exploit e{"zd", ComponentKind::kOs, 150, true, 0, 0.8};
  const double wf_legacy = cat.exploit_work_factor(e, 0);   // 0 bits
  const double wf_linux = cat.exploit_work_factor(e, 2);    // 16 bits
  EXPECT_DOUBLE_EQ(wf_legacy, 1.0);
  EXPECT_GT(wf_linux, wf_legacy);
}

TEST_F(StandardCatalog, DeterministicInSeed) {
  const VariantCatalog again = VariantCatalog::standard(2013);
  for (ComponentKind k : all_component_kinds()) {
    ASSERT_EQ(again.count(k), cat.count(k));
    for (std::size_t i = 0; i < cat.count(k); ++i) {
      EXPECT_EQ(encode(again.variant(k, i).binary), encode(cat.variant(k, i).binary));
    }
  }
}

TEST(VariantCatalog, CustomCatalogValidation) {
  VariantCatalog cat;
  Variant v;
  v.name = "x";
  v.kind = ComponentKind::kOs;
  v.binary.blocks.resize(1);
  v.binary.blocks[0].term = {TerminatorKind::kReturn, 0, 0, 0};
  v.hardening = 1.0;  // out of range
  EXPECT_THROW(cat.add_variant(v), std::invalid_argument);
  v.hardening = 0.0;
  v.cost = 0.0;
  EXPECT_THROW(cat.add_variant(v), std::invalid_argument);
  v.cost = 1.0;
  EXPECT_EQ(cat.add_variant(v), 0u);
  EXPECT_THROW((void)cat.survival(ComponentKind::kOs, 0, 3), std::out_of_range);
}

TEST(ShannonDiversity, MonocultureIsZeroUniformIsLogN) {
  EXPECT_DOUBLE_EQ(shannon_diversity({0, 0, 0, 0}), 0.0);
  EXPECT_NEAR(shannon_diversity({0, 1}), std::log(2.0), 1e-12);
  EXPECT_NEAR(shannon_diversity({0, 1, 2, 3}), std::log(4.0), 1e-12);
  EXPECT_DOUBLE_EQ(shannon_diversity({}), 0.0);
  // 3:1 split.
  const double p1 = 0.75, p2 = 0.25;
  EXPECT_NEAR(shannon_diversity({0, 0, 0, 1}),
              -(p1 * std::log(p1) + p2 * std::log(p2)), 1e-12);
}

TEST(ComponentKind, NamesAndEnumeration) {
  EXPECT_STREQ(to_string(ComponentKind::kPlcFirmware), "plc-firmware");
  EXPECT_EQ(all_component_kinds().size(), kComponentKindCount);
}

}  // namespace
}  // namespace divsec::divers
