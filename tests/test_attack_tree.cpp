// Tests for attack/attack_tree.h and attack/stages.h.
#include <gtest/gtest.h>

#include <cmath>

#include "attack/attack_tree.h"
#include "attack/stages.h"

namespace divsec::attack {
namespace {

TEST(Stages, Names) {
  EXPECT_STREQ(to_string(Stage::kInitial), "initial");
  EXPECT_STREQ(to_string(Stage::kDeviceImpairment), "device-impairment");
  EXPECT_EQ(kStageCount, 5u);
}

TEST(StagedModel, ExpectedTimesAndValidation) {
  StagedAttackModel m;
  for (auto& t : m.transitions) {
    t.attempt_rate = 2.0;
    t.success_probability = 0.5;
  }
  // Geometric attempts at exp(2) spacing with p=0.5: mean 1/(2*0.5) = 1.
  EXPECT_DOUBLE_EQ(m.expected_stage_time(0), 1.0);
  EXPECT_DOUBLE_EQ(m.expected_total_time(), 5.0);
  m.transitions[2].success_probability = 0.0;
  EXPECT_TRUE(std::isinf(m.expected_stage_time(2)));
  m.transitions[2].success_probability = 1.5;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m.transitions[2].success_probability = 0.5;
  m.transitions[0].attempt_rate = 0.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m.transitions[0].attempt_rate = 1.0;
  m.impairment_detection_rate = -1.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(AttackTree, LeafProbabilities) {
  AttackTree t;
  const auto leaf = t.add_leaf("x", 0.3, 2.0, 5.0);
  t.set_root(leaf);
  EXPECT_DOUBLE_EQ(t.success_probability(), 0.3);
  EXPECT_DOUBLE_EQ(t.min_cost(), 5.0);
  EXPECT_DOUBLE_EQ(t.min_time(), 2.0);
}

TEST(AttackTree, AndMultipliesOrComplements) {
  AttackTree t;
  const auto a = t.add_leaf("a", 0.5, 1.0, 1.0);
  const auto b = t.add_leaf("b", 0.4, 2.0, 3.0);
  const auto and_node = t.add_and("and", {a, b});
  t.set_root(and_node);
  EXPECT_DOUBLE_EQ(t.success_probability(), 0.2);
  EXPECT_DOUBLE_EQ(t.min_cost(), 4.0);
  EXPECT_DOUBLE_EQ(t.min_time(), 3.0);

  AttackTree u;
  const auto c = u.add_leaf("c", 0.5, 1.0, 1.0);
  const auto d = u.add_leaf("d", 0.4, 2.0, 3.0);
  const auto or_node = u.add_or("or", {c, d});
  u.set_root(or_node);
  EXPECT_DOUBLE_EQ(u.success_probability(), 1.0 - 0.5 * 0.6);
  EXPECT_DOUBLE_EQ(u.min_cost(), 1.0);
  EXPECT_DOUBLE_EQ(u.min_time(), 1.0);
}

TEST(AttackTree, NestedGateEvaluation) {
  // (a OR b) AND c.
  AttackTree t;
  const auto a = t.add_leaf("a", 0.5, 1, 1);
  const auto b = t.add_leaf("b", 0.5, 1, 1);
  const auto c = t.add_leaf("c", 0.8, 1, 1);
  const auto or_ab = t.add_or("or", {a, b});
  t.set_root(t.add_and("root", {or_ab, c}));
  EXPECT_DOUBLE_EQ(t.success_probability(), 0.75 * 0.8);
}

TEST(AttackTree, ScenariosEnumerateCutSets) {
  // (a OR b) AND c -> {a,c}, {b,c}.
  AttackTree t;
  const auto a = t.add_leaf("a", 0.5, 1, 1);
  const auto b = t.add_leaf("b", 0.5, 1, 1);
  const auto c = t.add_leaf("c", 0.8, 1, 1);
  t.set_root(t.add_and("root", {t.add_or("or", {a, b}), c}));
  const auto scenarios = t.attack_scenarios();
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_EQ(scenarios[0], (std::vector<AttackTree::NodeId>{a, c}));
  EXPECT_EQ(scenarios[1], (std::vector<AttackTree::NodeId>{b, c}));
}

TEST(AttackTree, ScenarioLimitEnforced) {
  AttackTree t;
  std::vector<AttackTree::NodeId> ors;
  for (int g = 0; g < 5; ++g) {
    std::vector<AttackTree::NodeId> leaves;
    for (int i = 0; i < 4; ++i)
      leaves.push_back(t.add_leaf("l", 0.5, 1, 1));
    ors.push_back(t.add_or("or", leaves));
  }
  t.set_root(t.add_and("root", ors));  // 4^5 = 1024 scenarios
  EXPECT_EQ(t.attack_scenarios(2000).size(), 1024u);
  EXPECT_THROW(t.attack_scenarios(100), std::length_error);
}

TEST(AttackTree, ScaleLeafProbabilities) {
  AttackTree t;
  const auto a = t.add_leaf("os.exploit", 0.8, 1, 1);
  const auto b = t.add_leaf("plc.payload", 0.5, 1, 1);
  t.set_root(t.add_and("root", {a, b}));
  t.scale_leaf_probabilities("plc", 0.1);
  EXPECT_NEAR(t.success_probability(), 0.8 * 0.05, 1e-12);
  t.scale_leaf_probabilities("os", 10.0);  // clamped to 1.0
  EXPECT_NEAR(t.success_probability(), 1.0 * 0.05, 1e-12);
  EXPECT_THROW(t.scale_leaf_probabilities("x", -1.0), std::invalid_argument);
}

TEST(AttackTree, Validation) {
  AttackTree t;
  EXPECT_THROW(t.add_leaf("bad", 1.5, 1, 1), std::invalid_argument);
  EXPECT_THROW(t.add_leaf("bad", 0.5, -1, 1), std::invalid_argument);
  EXPECT_THROW(t.add_and("empty", {}), std::invalid_argument);
  const auto a = t.add_leaf("a", 0.5, 1, 1);
  EXPECT_THROW(t.add_or("bad", {a, 99}), std::out_of_range);
  EXPECT_THROW((void)t.root(), std::logic_error);
  EXPECT_THROW(t.set_root(42), std::out_of_range);
}

TEST(AttackTree, StagedTreeMatchesPaperStructure) {
  const AttackTree t = make_staged_attack_tree(0.6, 0.9, 0.8, 0.5, 0.85);
  // 3 delivery alternatives x 2 propagation alternatives = 6 scenarios.
  EXPECT_EQ(t.attack_scenarios().size(), 6u);
  const double p = t.success_probability();
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
  // Lowering the PLC payload probability must lower overall success.
  AttackTree weaker = make_staged_attack_tree(0.6, 0.9, 0.8, 0.5, 0.2);
  EXPECT_LT(weaker.success_probability(), p);
}

}  // namespace
}  // namespace divsec::attack
