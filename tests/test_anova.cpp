// Tests for stats/anova.h — one-way and factorial variance decomposition.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/anova.h"
#include "stats/distributions.h"
#include "stats/rng.h"

namespace divsec::stats {
namespace {

TEST(OneWayAnova, HandComputedExample) {
  // Groups {1,2,3}, {2,3,4}, {6,7,8}: grand mean 4, SSB = 3*(2-4)^2 +
  // 3*(3-4)^2 + 3*(7-4)^2 = 42, SSW = 2+2+2 = 6, df = (2, 6).
  const std::vector<std::vector<double>> groups{
      {1, 2, 3}, {2, 3, 4}, {6, 7, 8}};
  const AnovaTable t = one_way_anova(groups, "G");
  const auto& g = t.effect("G");
  EXPECT_NEAR(g.ss, 42.0, 1e-12);
  EXPECT_EQ(g.df, 2u);
  EXPECT_NEAR(t.error.ss, 6.0, 1e-12);
  EXPECT_EQ(t.error.df, 6u);
  EXPECT_NEAR(g.f, (42.0 / 2.0) / (6.0 / 6.0), 1e-12);
  EXPECT_LT(g.p_value, 0.01);
  EXPECT_NEAR(g.eta_squared, 42.0 / 48.0, 1e-12);
}

TEST(OneWayAnova, NoDifferenceGivesSmallF) {
  Rng rng(3);
  std::vector<std::vector<double>> groups(4);
  for (auto& g : groups)
    for (int i = 0; i < 50; ++i) g.push_back(sample_standard_normal(rng));
  const AnovaTable t = one_way_anova(groups);
  EXPECT_GT(t.effect("Factor").p_value, 0.01);
}

TEST(OneWayAnova, Errors) {
  EXPECT_THROW(one_way_anova(std::vector<std::vector<double>>{{1.0}}),
               std::invalid_argument);
  EXPECT_THROW(one_way_anova(std::vector<std::vector<double>>{{1.0}, {}}),
               std::invalid_argument);
  EXPECT_THROW(one_way_anova(std::vector<std::vector<double>>{{1.0}, {2.0}}),
               std::invalid_argument);
}

TEST(FactorialAnova, TwoByTwoHandComputed) {
  // Cell means with no interaction: A effect 4, B effect 2.
  //   A0B0: {1,3} (mean 2)  A1B0: {5,7} (6)  A0B1: {3,5} (4)  A1B1: {7,9} (8)
  const std::vector<std::size_t> levels{2, 2};
  const std::vector<std::string> names{"A", "B"};
  const std::vector<std::vector<double>> cells{
      {1, 3}, {5, 7}, {3, 5}, {7, 9}};  // factor 0 fastest
  const AnovaTable t = factorial_anova(levels, names, cells);
  // SS_A = r * lB * sum over A-levels of (mean_A - grand)^2
  //      = 2 * 2 * ((3-5)^2 + (7-5)^2) = 32.
  EXPECT_NEAR(t.effect("A").ss, 32.0, 1e-9);
  EXPECT_NEAR(t.effect("B").ss, 8.0, 1e-9);
  EXPECT_NEAR(t.effect("A:B").ss, 0.0, 1e-9);
  // Each cell contributes (x - cellmean)^2 = 2 -> SSE = 8, df = 4.
  EXPECT_NEAR(t.error.ss, 8.0, 1e-9);
  EXPECT_EQ(t.error.df, 4u);
  EXPECT_EQ(t.total.df, 7u);
}

TEST(FactorialAnova, EffectsAndErrorPartitionTotal) {
  Rng rng(9);
  const std::vector<std::size_t> levels{3, 2, 2};
  const std::vector<std::string> names{"A", "B", "C"};
  std::vector<std::vector<double>> cells(12);
  for (auto& c : cells)
    for (int r = 0; r < 5; ++r) c.push_back(rng.uniform(0, 10));
  const AnovaTable t =
      factorial_anova(levels, names, cells, /*max_interaction_order=*/3);
  double ss_sum = t.error.ss;
  for (const auto& e : t.effects) ss_sum += e.ss;
  EXPECT_NEAR(ss_sum, t.total.ss, 1e-8 * (1.0 + t.total.ss));
  std::size_t df_sum = t.error.df;
  for (const auto& e : t.effects) df_sum += e.df;
  EXPECT_EQ(df_sum, t.total.df);
}

TEST(FactorialAnova, DetectsPlantedMainEffect) {
  // Response = 10 * A_level + noise; B is pure noise.
  Rng rng(21);
  const std::vector<std::size_t> levels{2, 2};
  const std::vector<std::string> names{"A", "B"};
  std::vector<std::vector<double>> cells(4);
  for (std::size_t cell = 0; cell < 4; ++cell) {
    const std::size_t a = cell % 2;
    for (int r = 0; r < 30; ++r)
      cells[cell].push_back(10.0 * static_cast<double>(a) +
                            sample_standard_normal(rng));
  }
  const AnovaTable t = factorial_anova(levels, names, cells);
  EXPECT_LT(t.effect("A").p_value, 1e-6);
  EXPECT_GT(t.effect("A").eta_squared, 0.8);
  EXPECT_GT(t.effect("B").p_value, 0.01);
  EXPECT_LT(t.effect("B").eta_squared, 0.05);
}

TEST(FactorialAnova, DetectsPlantedInteraction) {
  // Response = 5 * A * B (coded +-1) + noise: pure interaction.
  Rng rng(22);
  const std::vector<std::size_t> levels{2, 2};
  const std::vector<std::string> names{"A", "B"};
  std::vector<std::vector<double>> cells(4);
  for (std::size_t cell = 0; cell < 4; ++cell) {
    const int a = cell % 2 ? 1 : -1;
    const int b = cell / 2 ? 1 : -1;
    for (int r = 0; r < 30; ++r)
      cells[cell].push_back(5.0 * a * b + sample_standard_normal(rng));
  }
  const AnovaTable t = factorial_anova(levels, names, cells);
  EXPECT_LT(t.effect("A:B").p_value, 1e-6);
  EXPECT_GT(t.effect("A").p_value, 0.01);
  EXPECT_GT(t.effect("B").p_value, 0.01);
}

TEST(FactorialAnova, PoolsHighOrderInteractionsIntoError) {
  Rng rng(23);
  const std::vector<std::size_t> levels{2, 2, 2};
  const std::vector<std::string> names{"A", "B", "C"};
  std::vector<std::vector<double>> cells(8);
  for (auto& c : cells)
    for (int r = 0; r < 3; ++r) c.push_back(rng.uniform(0, 1));
  const AnovaTable order2 = factorial_anova(levels, names, cells, 2);
  for (const auto& e : order2.effects)
    EXPECT_EQ(std::count(e.name.begin(), e.name.end(), ':') <= 1, true);
  // The 3-way term's df (1) lands in the error df.
  const AnovaTable order3 = factorial_anova(levels, names, cells, 3);
  EXPECT_EQ(order2.error.df, order3.error.df + 1);
}

TEST(FactorialAnova, SingleReplicateNeedsPooling) {
  const std::vector<std::size_t> levels{2, 2};
  const std::vector<std::string> names{"A", "B"};
  const std::vector<std::vector<double>> cells{{1.0}, {2.0}, {3.0}, {5.0}};
  // With r = 1 and full interactions there is no error term.
  EXPECT_THROW(factorial_anova(levels, names, cells, 2), std::invalid_argument);
  // Pooling the interaction restores testability.
  const AnovaTable t = factorial_anova(levels, names, cells, 1);
  EXPECT_EQ(t.error.df, 1u);
}

TEST(FactorialAnova, ValidationErrors) {
  const std::vector<std::string> names{"A", "B"};
  const std::vector<std::size_t> levels{2, 2};
  EXPECT_THROW(factorial_anova(std::vector<std::size_t>{2}, names,
                               std::vector<std::vector<double>>{{1}, {2}}),
               std::invalid_argument);  // names mismatch
  EXPECT_THROW(factorial_anova(std::vector<std::size_t>{2, 1}, names,
                               std::vector<std::vector<double>>(2, {1.0})),
               std::invalid_argument);  // factor with 1 level
  EXPECT_THROW(
      factorial_anova(levels, names, std::vector<std::vector<double>>(3, {1.0})),
      std::invalid_argument);  // wrong cell count
  std::vector<std::vector<double>> unbalanced(4, {1.0, 2.0});
  unbalanced[2] = {1.0};
  EXPECT_THROW(factorial_anova(levels, names, unbalanced), std::invalid_argument);
}

TEST(AnovaTable, ToStringAndLookup) {
  const std::vector<std::vector<double>> groups{{1, 2}, {3, 4}};
  const AnovaTable t = one_way_anova(groups, "X");
  const std::string s = t.to_string();
  EXPECT_NE(s.find("X"), std::string::npos);
  EXPECT_NE(s.find("Error"), std::string::npos);
  EXPECT_NE(s.find("Total"), std::string::npos);
  EXPECT_THROW((void)t.effect("nope"), std::out_of_range);
  EXPECT_EQ(&t.effect("Error"), &t.error);
}

TEST(FactorialAnova, NullFactorsPValueRoughlyUniform) {
  // Property: with no real effects, p-values should not cluster at 0.
  int small_p = 0;
  for (int trial = 0; trial < 60; ++trial) {
    Rng rng(1000 + trial);
    std::vector<std::vector<double>> cells(4);
    for (auto& c : cells)
      for (int r = 0; r < 8; ++r) c.push_back(sample_standard_normal(rng));
    const AnovaTable t = factorial_anova(std::vector<std::size_t>{2, 2},
                                         std::vector<std::string>{"A", "B"}, cells);
    if (t.effect("A").p_value < 0.05) ++small_p;
  }
  EXPECT_LE(small_p, 10);  // ~3 expected at alpha = 0.05
}

}  // namespace
}  // namespace divsec::stats
