// Cross-module integration tests: the paper's headline claims exercised
// through the full public API, end to end.
#include <gtest/gtest.h>

#include <cmath>

#include "attack/san_model.h"
#include "core/optimizer.h"
#include "core/pipeline.h"
#include "san/analysis.h"

namespace divsec {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  EndToEnd() : desc(core::make_scope_description(cat)) {
    mo.engine = core::Engine::kStagedSan;
    mo.replications = 300;
    mo.seed = 2013;
  }
  divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  core::SystemDescription desc;
  core::MeasurementOptions mo;
};

// Section I of the paper: PSA ~ PM for identical machines versus
// PSA ~ PM1 x PM2 for diverse machines, at matched parameters.
TEST_F(EndToEnd, TwoMachineDiversityClaim) {
  const double rate = 1.0, p = 0.25;
  const double horizon = 4.0;  // a campaign of ~4 expected attempts/machine
  const attack::TwoMachineSan identical =
      attack::build_two_machine_san(rate, p, p, 1.0);
  const attack::TwoMachineSan diverse =
      attack::build_two_machine_san(rate, p, p, 0.0);
  const auto fi = san::first_passage(identical.model,
                                     identical.both_owned_predicate(), horizon,
                                     8000, 1);
  const auto fd = san::first_passage(diverse.model, diverse.both_owned_predicate(),
                                     horizon, 8000, 1);
  const double psa_identical = fi.absorption_probability();
  const double psa_diverse = fd.absorption_probability();
  // Identical ~ P[compromise one machine by T]: the replay costs only one
  // extra attempt, so PSA sits just below PM (the paper's "PSA ~ PM").
  const double pm = 1.0 - std::exp(-rate * p * horizon);
  EXPECT_LT(psa_identical, pm);
  EXPECT_NEAR(psa_identical, pm, 0.08);
  EXPECT_NEAR(psa_identical,
              attack::two_machine_success_probability(rate, p, p, 1.0, horizon),
              0.02);
  // Diverse is substantially below, and in the product-form ballpark.
  EXPECT_LT(psa_diverse, 0.75 * psa_identical);
  EXPECT_NEAR(psa_diverse,
              attack::two_machine_success_probability(rate, p, p, 0.0, horizon),
              0.02);
}

// The paper's case-study sentence: "a small, strategically distributed,
// number of highly attack-resilient components can significantly lower
// the chance of bringing a successful attack to the system."
TEST_F(EndToEnd, FewStrategicComponentsCollapseSuccessProbability) {
  const attack::ThreatProfile stuxnet = attack::ThreatProfile::stuxnet();
  const double p0 = core::attack_success_probability(
      desc, desc.baseline_configuration(), stuxnet, mo);
  stats::Rng rng(3);
  const core::Configuration two_strategic = core::place_resilient_components(
      desc, 2, core::PlacementStrategy::kStrategic, stuxnet, mo, rng);
  const double p2 =
      core::attack_success_probability(desc, two_strategic, stuxnet, mo);
  EXPECT_GT(p0, 0.25);         // the monoculture is genuinely at risk
  EXPECT_LT(p2, 0.65 * p0);    // two components already cut it substantially
  // Four strategic components push it down much further.
  const core::Configuration four_strategic = core::place_resilient_components(
      desc, 4, core::PlacementStrategy::kStrategic, stuxnet, mo, rng);
  const double p4 =
      core::attack_success_probability(desc, four_strategic, stuxnet, mo);
  EXPECT_LT(p4, 0.35 * p0);
}

// Diversity degree sweep: TTA grows monotonically-ish with the number of
// diversified components (E3's shape).
TEST_F(EndToEnd, TtaGrowsWithDiversityDegree) {
  const attack::ThreatProfile stuxnet = attack::ThreatProfile::stuxnet();
  std::vector<double> mean_tta;
  stats::Rng rng(17);
  for (std::size_t k : {0u, 2u, 4u}) {
    const core::Configuration c = core::place_resilient_components(
        desc, k, core::PlacementStrategy::kStrategic, stuxnet, mo, rng);
    mean_tta.push_back(core::measure_indicators(desc, c, stuxnet, mo).tta.mean());
  }
  EXPECT_LT(mean_tta[0], mean_tta[1]);
  EXPECT_LE(mean_tta[1], mean_tta[2] * 1.05);  // allow MC slack at the top
}

// Threat-model comparison (the paper's future-work list): espionage
// campaigns never impair devices; Stuxnet does.
TEST_F(EndToEnd, ThreatProfilesDifferInSabotageCapability) {
  for (const auto& profile :
       {attack::ThreatProfile::duqu(), attack::ThreatProfile::flame()}) {
    const auto s = core::measure_indicators(desc, desc.baseline_configuration(),
                                            profile, mo);
    EXPECT_EQ(s.successes, 0u) << profile.name;
  }
  const auto stux = core::measure_indicators(
      desc, desc.baseline_configuration(), attack::ThreatProfile::stuxnet(), mo);
  EXPECT_GT(stux.successes, 0u);
}

// Full pipeline determinism across runs (regression guard for the whole
// stack: catalog -> scenario -> SAN -> DoE -> ANOVA).
TEST_F(EndToEnd, PipelineIsBitStable) {
  core::PipelineOptions po;
  po.measurement = mo;
  po.measurement.replications = 100;
  const core::Pipeline p(desc, attack::ThreatProfile::stuxnet(), po);
  const auto a = p.run({"os.control", "plc.firmware"}, 2);
  const auto b = p.run({"os.control", "plc.firmware"}, 2);
  EXPECT_EQ(a.assessment.report, b.assessment.report);
  for (std::size_t c = 0; c < a.table.configuration_count(); ++c)
    EXPECT_EQ(a.table.success_cells[c], b.table.success_cells[c]);
}

// The campaign engine and SAN abstraction must agree on which
// configuration is safer even though their absolute numbers differ.
TEST_F(EndToEnd, EnginesAgreeOnConfigurationOrdering) {
  const attack::ThreatProfile stuxnet = attack::ThreatProfile::stuxnet();
  core::Configuration diverse = desc.baseline_configuration();
  diverse.variant[1] = 2;  // control OS
  diverse.variant[2] = 3;  // PLC firmware

  core::MeasurementOptions campaign = mo;
  campaign.engine = core::Engine::kCampaign;
  campaign.replications = 120;

  const double san_mono = core::attack_success_probability(
      desc, desc.baseline_configuration(), stuxnet, mo);
  const double san_div =
      core::attack_success_probability(desc, diverse, stuxnet, mo);
  const double camp_mono = core::attack_success_probability(
      desc, desc.baseline_configuration(), stuxnet, campaign);
  const double camp_div =
      core::attack_success_probability(desc, diverse, stuxnet, campaign);
  EXPECT_GT(san_mono, san_div);
  EXPECT_GT(camp_mono, camp_div);
}

}  // namespace
}  // namespace divsec
