// Tests for san/ — model construction, execution semantics, rewards, and
// Monte-Carlo agreement with closed-form results.
#include <gtest/gtest.h>

#include <cmath>

#include "san/analysis.h"
#include "san/model.h"
#include "san/simulator.h"
#include "stats/descriptive.h"

namespace divsec::san {
namespace {

TEST(SanModel, PlacesAndLookup) {
  SanModel m;
  const PlaceId a = m.add_place("alpha", 2);
  const PlaceId b = m.add_place("beta");
  EXPECT_EQ(m.place_count(), 2u);
  EXPECT_EQ(m.place(a).initial, 2);
  EXPECT_EQ(m.place_by_name("beta"), b);
  EXPECT_THROW((void)m.place_by_name("gamma"), std::out_of_range);
  EXPECT_THROW(m.add_place("neg", -1), std::invalid_argument);
  const Marking init = m.initial_marking();
  EXPECT_EQ(init[a], 2);
  EXPECT_EQ(init[b], 0);
}

TEST(SanModel, ValidationCatchesBadCaseProbabilities) {
  SanModel m;
  const PlaceId p = m.add_place("p", 1);
  const ActivityId a = m.add_timed_activity("t", stats::Exponential{1.0});
  m.add_input_arc(a, p);
  m.add_case(a, 0.5);
  m.add_case(a, 0.3);  // sums to 0.8
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(SanModel, AddCaseReplacesImplicitDefaultOnce) {
  SanModel m;
  const PlaceId p = m.add_place("p", 1);
  const ActivityId a = m.add_timed_activity("t", stats::Exponential{1.0});
  m.add_input_arc(a, p);
  EXPECT_EQ(m.add_case(a, 1.0), 0u);  // replaces the default
  EXPECT_EQ(m.add_case(a, 0.0), 1u);  // appends (regression: used to replace)
  m.add_output_arc(a, p, 1, 0);
  EXPECT_NO_THROW(m.validate());
}

TEST(SanModel, ArcsAfterImplicitDefaultThenCasesRejected) {
  SanModel m;
  const PlaceId p = m.add_place("p", 1);
  const ActivityId a = m.add_timed_activity("t", stats::Exponential{1.0});
  m.add_output_arc(a, p);  // attaches to the implicit default
  EXPECT_THROW(m.add_case(a, 0.5), std::logic_error);
}

TEST(SanModel, StructuralErrors) {
  SanModel m;
  const PlaceId p = m.add_place("p", 1);
  const ActivityId a = m.add_timed_activity("t", stats::Exponential{1.0});
  EXPECT_THROW(m.add_input_arc(a, 99), std::out_of_range);
  EXPECT_THROW(m.add_input_arc(99, p), std::out_of_range);
  EXPECT_THROW(m.add_input_arc(a, p, 0), std::invalid_argument);
  EXPECT_THROW(m.add_output_arc(a, p, 1, 5), std::out_of_range);
  EXPECT_THROW(m.add_input_gate(a, nullptr), std::invalid_argument);
  EXPECT_THROW(m.add_output_gate(a, nullptr), std::invalid_argument);
  EXPECT_THROW(m.add_instantaneous_activity("w", 0.0), std::invalid_argument);
}

/// One token, one exponential transition: first passage is Exp(rate).
TEST(SanSimulator, SingleExponentialFirstPassage) {
  SanModel m;
  const PlaceId src = m.add_place("src", 1);
  const PlaceId dst = m.add_place("dst", 0);
  const ActivityId a = m.add_timed_activity("fire", stats::Exponential{2.0});
  m.add_input_arc(a, src);
  m.add_output_arc(a, dst);

  const auto fp = first_passage(
      m, [dst](const Marking& mk) { return mk[dst] >= 1; }, 100.0, 20000, 7);
  EXPECT_EQ(fp.censored, 0u);
  EXPECT_NEAR(fp.conditional_mean(), 0.5, 0.02);
  EXPECT_NEAR(fp.absorption_probability(), 1.0, 1e-12);
}

/// Two competing exponentials: P[A wins] = ra / (ra + rb).
TEST(SanSimulator, ExponentialRaceProbability) {
  SanModel m;
  const PlaceId token = m.add_place("token", 1);
  const PlaceId wa = m.add_place("a_won", 0);
  const PlaceId wb = m.add_place("b_won", 0);
  const ActivityId a = m.add_timed_activity("a", stats::Exponential{3.0});
  const ActivityId b = m.add_timed_activity("b", stats::Exponential{1.0});
  m.add_input_arc(a, token);
  m.add_output_arc(a, wa);
  m.add_input_arc(b, token);
  m.add_output_arc(b, wb);

  const auto res = instant_of_time(
      m, [wa](const Marking& mk) { return static_cast<double>(mk[wa]); }, 50.0,
      20000, 13);
  EXPECT_NEAR(res.stats.mean(), 0.75, 0.01);
}

/// Case probabilities select outcomes at the specified frequencies.
TEST(SanSimulator, CaseSelectionFrequencies) {
  SanModel m;
  const PlaceId src = m.add_place("src", 1);
  const PlaceId heads = m.add_place("heads", 0);
  const PlaceId tails = m.add_place("tails", 0);
  const ActivityId flip = m.add_timed_activity("flip", stats::Deterministic{1.0});
  m.add_input_arc(flip, src);
  const auto ch = m.add_case(flip, 0.3);
  const auto ct = m.add_case(flip, 0.7);
  m.add_output_arc(flip, heads, 1, ch);
  m.add_output_arc(flip, tails, 1, ct);

  const auto res = instant_of_time(
      m, [heads](const Marking& mk) { return static_cast<double>(mk[heads]); }, 2.0,
      20000, 17);
  EXPECT_NEAR(res.stats.mean(), 0.3, 0.01);
}

/// Instantaneous activities complete before time advances.
TEST(SanSimulator, InstantaneousFiresBeforeTimedAtTimeZero) {
  SanModel m;
  const PlaceId p = m.add_place("p", 1);
  const PlaceId q = m.add_place("q", 0);
  const ActivityId inst = m.add_instantaneous_activity("now");
  m.add_input_arc(inst, p);
  m.add_output_arc(inst, q);
  stats::Rng rng(1);
  SanSimulator sim(m, rng);
  // Already resolved during reset, at time 0.
  EXPECT_EQ(sim.tokens(q), 1);
  EXPECT_EQ(sim.now(), 0.0);
}

TEST(SanSimulator, InstantaneousWeightsBiasSelection) {
  // Two instantaneous activities compete for one token; weight 3:1.
  int a_wins = 0;
  for (int rep = 0; rep < 4000; ++rep) {
    SanModel m;
    const PlaceId p = m.add_place("p", 1);
    const PlaceId qa = m.add_place("qa", 0);
    const PlaceId qb = m.add_place("qb", 0);
    const ActivityId a = m.add_instantaneous_activity("a", 3.0);
    const ActivityId b = m.add_instantaneous_activity("b", 1.0);
    m.add_input_arc(a, p);
    m.add_output_arc(a, qa);
    m.add_input_arc(b, p);
    m.add_output_arc(b, qb);
    stats::Rng rng(100, rep);
    SanSimulator sim(m, rng);
    if (sim.tokens(qa) == 1) ++a_wins;
  }
  EXPECT_NEAR(a_wins / 4000.0, 0.75, 0.03);
}

TEST(SanSimulator, InputGatePredicateControlsEnabling) {
  SanModel m;
  const PlaceId p = m.add_place("p", 1);
  const PlaceId gatep = m.add_place("gate", 0);
  const PlaceId out = m.add_place("out", 0);
  const ActivityId a = m.add_timed_activity("a", stats::Deterministic{1.0});
  m.add_input_arc(a, p);
  m.add_input_gate(a, [gatep](const Marking& mk) { return mk[gatep] >= 1; });
  m.add_output_arc(a, out);
  const ActivityId open = m.add_timed_activity("open", stats::Deterministic{5.0});
  const PlaceId trigger = m.add_place("trigger", 1);
  m.add_input_arc(open, trigger);
  m.add_output_arc(open, gatep);

  stats::Rng rng(2);
  SanSimulator sim(m, rng);
  sim.run_until(3.0);
  EXPECT_EQ(sim.tokens(out), 0);  // gate still closed
  sim.run_until(10.0);
  EXPECT_EQ(sim.tokens(out), 1);  // opened at 5, fired at 6
}

TEST(SanSimulator, OutputGateFunctionRuns) {
  SanModel m;
  const PlaceId p = m.add_place("p", 1);
  const PlaceId bucket = m.add_place("bucket", 0);
  const ActivityId a = m.add_timed_activity("a", stats::Deterministic{1.0});
  m.add_input_arc(a, p);
  m.add_output_gate(a, [bucket](Marking& mk) { mk[bucket] += 5; });
  stats::Rng rng(3);
  SanSimulator sim(m, rng);
  sim.run_until(2.0);
  EXPECT_EQ(sim.tokens(bucket), 5);
}

TEST(SanSimulator, GateDrivingTokensNegativeThrows) {
  SanModel m;
  const PlaceId p = m.add_place("p", 1);
  const PlaceId victim = m.add_place("victim", 0);
  const ActivityId a = m.add_timed_activity("a", stats::Deterministic{1.0});
  m.add_input_arc(a, p);
  m.add_output_gate(a, [victim](Marking& mk) { mk[victim] -= 1; });
  stats::Rng rng(4);
  SanSimulator sim(m, rng);
  EXPECT_THROW(sim.run_until(2.0), std::logic_error);
}

TEST(SanSimulator, InstantaneousLoopDetected) {
  SanModel m;
  const PlaceId p = m.add_place("p", 1);
  const ActivityId a = m.add_instantaneous_activity("loop");
  m.add_input_arc(a, p);
  m.add_output_arc(a, p);  // puts the token straight back: unstable
  stats::Rng rng(5);
  EXPECT_THROW(SanSimulator(m, rng), std::logic_error);
}

TEST(SanSimulator, DisabledActivityIsAborted) {
  // Two activities consume the same token; the loser must not fire later.
  SanModel m;
  const PlaceId p = m.add_place("p", 1);
  const PlaceId fastp = m.add_place("fast", 0);
  const PlaceId slowp = m.add_place("slow", 0);
  const ActivityId fast = m.add_timed_activity("fast", stats::Deterministic{1.0});
  const ActivityId slow = m.add_timed_activity("slow", stats::Deterministic{2.0});
  m.add_input_arc(fast, p);
  m.add_output_arc(fast, fastp);
  m.add_input_arc(slow, p);
  m.add_output_arc(slow, slowp);
  stats::Rng rng(6);
  SanSimulator sim(m, rng);
  sim.run_until(10.0);
  EXPECT_EQ(sim.tokens(fastp), 1);
  EXPECT_EQ(sim.tokens(slowp), 0);
  EXPECT_EQ(sim.firings_of(slow), 0u);
}

/// M/M/1 queue: arrival rate 1, service rate 2 -> steady-state mean queue
/// length (including in service) is rho/(1-rho) = 1.
TEST(SanSimulator, MM1MeanQueueLengthMatchesTheory) {
  SanModel m;
  const PlaceId queue = m.add_place("queue", 0);
  const ActivityId arrive = m.add_timed_activity("arrive", stats::Exponential{1.0});
  m.add_output_arc(arrive, queue);  // always enabled (no input arcs)
  const ActivityId serve = m.add_timed_activity("serve", stats::Exponential{2.0});
  m.add_input_arc(serve, queue);
  const auto res = interval_of_time_average(
      m, [queue](const Marking& mk) { return static_cast<double>(mk[queue]); },
      4000.0, 60, 23);
  EXPECT_NEAR(res.stats.mean(), 1.0, 0.08);
}

/// Two-state availability model: fail rate 0.1, repair rate 0.9 ->
/// steady-state availability 0.9.
TEST(SanSimulator, AvailabilityModelMatchesTheory) {
  SanModel m;
  const PlaceId up = m.add_place("up", 1);
  const PlaceId down = m.add_place("down", 0);
  const ActivityId fail = m.add_timed_activity("fail", stats::Exponential{0.1});
  m.add_input_arc(fail, up);
  m.add_output_arc(fail, down);
  const ActivityId repair = m.add_timed_activity("repair", stats::Exponential{0.9});
  m.add_input_arc(repair, down);
  m.add_output_arc(repair, up);
  const auto res = interval_of_time_average(
      m, [up](const Marking& mk) { return static_cast<double>(mk[up]); }, 5000.0,
      40, 29);
  EXPECT_NEAR(res.stats.mean(), 0.9, 0.01);
}

TEST(SanSimulator, ImpulseRewardCountsFirings) {
  SanModel m;
  const PlaceId clock = m.add_place("clock", 1);
  const ActivityId tick = m.add_timed_activity("tick", stats::Deterministic{1.0});
  m.add_input_arc(tick, clock);
  m.add_output_arc(tick, clock);
  stats::Rng rng(31);
  SanSimulator sim(m, rng);
  const auto reward = sim.add_impulse_reward(tick, 2.0);
  sim.run_until(10.5);
  EXPECT_EQ(sim.firings_of(tick), 10u);
  EXPECT_EQ(sim.impulse_reward(reward), 20.0);
}

TEST(SanSimulator, RateRewardIntegratesExactly) {
  // Token sits in p for exactly 3 time units then leaves.
  SanModel m;
  const PlaceId p = m.add_place("p", 1);
  const PlaceId q = m.add_place("q", 0);
  const ActivityId a = m.add_timed_activity("a", stats::Deterministic{3.0});
  m.add_input_arc(a, p);
  m.add_output_arc(a, q);
  stats::Rng rng(37);
  SanSimulator sim(m, rng);
  const auto r = sim.add_rate_reward(
      [p](const Marking& mk) { return static_cast<double>(mk[p]); });
  sim.run_until(10.0);
  EXPECT_NEAR(sim.rate_reward(r), 3.0, 1e-12);
  EXPECT_NEAR(sim.rate_reward_average(r), 0.3, 1e-12);
}

TEST(SanSimulator, DeterministicInSeed) {
  SanModel m;
  const PlaceId p = m.add_place("p", 5);
  const PlaceId q = m.add_place("q", 0);
  const ActivityId a = m.add_timed_activity("a", stats::Exponential{1.0});
  m.add_input_arc(a, p);
  m.add_output_arc(a, q);
  stats::Rng r1(99), r2(99);
  SanSimulator s1(m, r1), s2(m, r2);
  s1.run_until(3.0);
  s2.run_until(3.0);
  EXPECT_EQ(s1.tokens(q), s2.tokens(q));
  EXPECT_EQ(s1.total_firings(), s2.total_firings());
}

TEST(SanSimulator, ResetRestoresInitialState) {
  SanModel m;
  const PlaceId p = m.add_place("p", 1);
  const PlaceId q = m.add_place("q", 0);
  const ActivityId a = m.add_timed_activity("a", stats::Deterministic{1.0});
  m.add_input_arc(a, p);
  m.add_output_arc(a, q);
  stats::Rng rng(41);
  SanSimulator sim(m, rng);
  sim.run_until(5.0);
  EXPECT_EQ(sim.tokens(q), 1);
  sim.reset();
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.tokens(p), 1);
  EXPECT_EQ(sim.tokens(q), 0);
  EXPECT_EQ(sim.total_firings(), 0u);
}

TEST(FirstPassage, CensoringCounted) {
  SanModel m;
  const PlaceId src = m.add_place("src", 1);
  const PlaceId dst = m.add_place("dst", 0);
  const ActivityId a = m.add_timed_activity("slow", stats::Exponential{0.01});
  m.add_input_arc(a, src);
  m.add_output_arc(a, dst);
  // Horizon 10 with mean 100: most runs censor. P[absorb] = 1 - e^-0.1.
  const auto fp = first_passage(
      m, [dst](const Marking& mk) { return mk[dst] >= 1; }, 10.0, 5000, 43);
  EXPECT_NEAR(fp.absorption_probability(), 1.0 - std::exp(-0.1), 0.01);
  EXPECT_EQ(fp.censored + fp.times.size(), 5000u);
}

/// Marking-dependent rates: M/M/2 with lambda = mu = 1 (rho = 0.5) has
/// mean number in system L = 4/3.
TEST(SanSimulator, MM2MarkingDependentServiceRate) {
  SanModel m;
  const PlaceId queue = m.add_place("queue", 0);
  const ActivityId arrive = m.add_timed_activity("arrive", stats::Exponential{1.0});
  m.add_output_arc(arrive, queue);
  const ActivityId serve = m.add_timed_activity("serve", stats::Exponential{1.0});
  m.add_input_arc(serve, queue);
  m.set_rate_scale(serve, [queue](const Marking& mk) {
    return static_cast<double>(std::min<Tokens>(2, mk[queue]));
  });
  const auto res = interval_of_time_average(
      m, [queue](const Marking& mk) { return static_cast<double>(mk[queue]); },
      4000.0, 60, 51);
  EXPECT_NEAR(res.stats.mean(), 4.0 / 3.0, 0.08);
}

TEST(SanSimulator, RateScaleSpeedsUpProportionally) {
  // A transition at scale 4 completes (in distribution) 4x faster.
  SanModel m;
  const PlaceId src = m.add_place("src", 1);
  const PlaceId dst = m.add_place("dst", 0);
  const ActivityId a = m.add_timed_activity("a", stats::Exponential{1.0});
  m.add_input_arc(a, src);
  m.add_output_arc(a, dst);
  m.set_rate_scale(a, [](const Marking&) { return 4.0; });
  const auto fp = first_passage(
      m, [dst](const Marking& mk) { return mk[dst] >= 1; }, 100.0, 20000, 53);
  EXPECT_NEAR(fp.conditional_mean(), 0.25, 0.01);
}

TEST(SanSimulator, RateScaleValidation) {
  SanModel m;
  const PlaceId p = m.add_place("p", 1);
  const ActivityId timed = m.add_timed_activity("t", stats::Exponential{1.0});
  const ActivityId inst = m.add_instantaneous_activity("i");
  m.add_input_arc(timed, p);
  m.add_output_arc(timed, p);
  m.add_input_arc(inst, p, 2);  // never enabled (only 1 token)
  EXPECT_THROW(m.set_rate_scale(timed, nullptr), std::invalid_argument);
  EXPECT_THROW(m.set_rate_scale(inst, [](const Marking&) { return 1.0; }),
               std::invalid_argument);
  // Zero scale while enabled is a model bug caught at runtime.
  m.set_rate_scale(timed, [](const Marking&) { return 0.0; });
  stats::Rng rng(55);
  EXPECT_THROW(SanSimulator(m, rng), std::logic_error);
}

TEST(Analysis, Errors) {
  SanModel m;
  m.add_place("p", 1);
  const ActivityId a = m.add_timed_activity("a", stats::Exponential{1.0});
  m.add_input_arc(a, 0);
  EXPECT_THROW(first_passage(m, nullptr, 10.0, 10, 1), std::invalid_argument);
  EXPECT_THROW(
      first_passage(m, [](const Marking&) { return true; }, -1.0, 10, 1),
      std::invalid_argument);
  EXPECT_THROW(instant_of_time(m, nullptr, 1.0, 10, 1), std::invalid_argument);
  EXPECT_THROW(
      interval_of_time_average(m, [](const Marking&) { return 0.0; }, 0.0, 10, 1),
      std::invalid_argument);
}

}  // namespace
}  // namespace divsec::san
