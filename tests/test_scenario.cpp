// Tests for src/scenario/ — fleet topology generation, scenario building
// and the named preset registry. The load-bearing property is
// determinism: same preset + same seed must reproduce the topology and
// the software assignment bit for bit, because the measurement engine's
// reproducibility contract extends through scenario generation.
#include <gtest/gtest.h>

#include "scenario/presets.h"
#include "scenario/scenario_builder.h"
#include "scenario/topology_generator.h"

namespace divsec::scenario {
namespace {

using net::NodeId;
using net::Role;
using net::Zone;

void expect_identical_topology(const net::Topology& a, const net::Topology& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.link_count(), b.link_count());
  for (NodeId i = 0; i < a.node_count(); ++i) {
    EXPECT_EQ(a.node(i).name, b.node(i).name) << "node " << i;
    EXPECT_EQ(a.node(i).zone, b.node(i).zone) << "node " << i;
    EXPECT_EQ(a.node(i).role, b.node(i).role) << "node " << i;
    EXPECT_EQ(a.node(i).usb_exposure, b.node(i).usb_exposure) << "node " << i;
  }
  for (std::size_t l = 0; l < a.link_count(); ++l) {
    EXPECT_EQ(a.links()[l].a, b.links()[l].a) << "link " << l;
    EXPECT_EQ(a.links()[l].b, b.links()[l].b) << "link " << l;
  }
}

void expect_identical_software(const attack::Scenario& a, const attack::Scenario& b) {
  ASSERT_EQ(a.software.size(), b.software.size());
  for (std::size_t i = 0; i < a.software.size(); ++i) {
    EXPECT_EQ(a.software[i].os, b.software[i].os) << "node " << i;
    EXPECT_EQ(a.software[i].protocol, b.software[i].protocol) << "node " << i;
    EXPECT_EQ(a.software[i].plc_firmware, b.software[i].plc_firmware) << "node " << i;
    EXPECT_EQ(a.software[i].hmi, b.software[i].hmi) << "node " << i;
    EXPECT_EQ(a.software[i].historian, b.software[i].historian) << "node " << i;
  }
  EXPECT_EQ(a.firewall_variant, b.firewall_variant);
  EXPECT_EQ(a.entry_nodes, b.entry_nodes);
  EXPECT_EQ(a.target_plcs, b.target_plcs);
}

TEST(FleetSpec, NodeCountArithmetic) {
  FleetSpec spec;
  spec.corporate_workstations = 4;
  spec.corporate_servers = 1;
  spec.dmz_historians = 1;
  spec.control_sites = 2;
  spec.hmis_per_site = 1;
  spec.historians_per_site = 1;
  spec.plc_cells_per_site = 2;
  spec.plcs_per_cell = 3;
  spec.sensor_gateways_per_site = 1;
  EXPECT_EQ(spec.nodes_per_site(), 2u + 1u + 1u + 6u + 1u);
  EXPECT_EQ(spec.node_count(), 4u + 1u + 1u + 2u * 11u);
}

TEST(FleetSpec, ValidationCatchesBadFields) {
  FleetSpec spec;
  spec.control_sites = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = FleetSpec{};
  spec.workstation_usb_fraction = 1.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = FleetSpec{};
  spec.plcs_per_cell = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(TopologyGenerator, GeneratedFleetMatchesSpecAndIsDeterministic) {
  const FleetSpec spec = enterprise_spec(256);
  const TopologyGenerator gen(spec);
  const net::Topology a = gen.generate(11);
  const net::Topology b = gen.generate(11);
  EXPECT_EQ(a.node_count(), 256u);
  expect_identical_topology(a, b);

  // Role census matches the spec.
  EXPECT_EQ(a.nodes_with_role(Role::kScadaServer).size(), spec.control_sites);
  EXPECT_EQ(a.nodes_with_role(Role::kEngineering).size(), spec.control_sites);
  EXPECT_EQ(a.nodes_with_role(Role::kPlc).size(),
            spec.control_sites * spec.plc_cells_per_site * spec.plcs_per_cell);
  EXPECT_EQ(a.nodes_with_role(Role::kWorkstation).size(),
            spec.corporate_workstations);
  EXPECT_EQ(a.nodes_in_zone(Zone::kDmz).size(), spec.dmz_historians);

  // A different seed rewires the fleet (same census, different links).
  const net::Topology c = gen.generate(12);
  ASSERT_EQ(c.node_count(), a.node_count());
  bool differs = c.link_count() != a.link_count();
  for (std::size_t l = 0; !differs && l < a.link_count(); ++l)
    differs = a.links()[l].a != c.links()[l].a || a.links()[l].b != c.links()[l].b;
  EXPECT_TRUE(differs);
}

TEST(TopologyGenerator, DeliveryChannelAlwaysExists) {
  // Even with a zero USB fraction, one workstation and every engineering
  // station carry removable media: the paper's entry stage never dies.
  FleetSpec spec = enterprise_spec(64);
  spec.workstation_usb_fraction = 0.0;
  const net::Topology t = TopologyGenerator(spec).generate(3);
  std::size_t usb_nodes = 0;
  for (NodeId i = 0; i < t.node_count(); ++i)
    if (t.node(i).usb_exposure) ++usb_nodes;
  EXPECT_EQ(usb_nodes, 1u + spec.control_sites);
}

TEST(PresetRegistry, NamesAndLookup) {
  const auto names = preset_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "paper_two_machines"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "enterprise{N}"), names.end());
  EXPECT_TRUE(has_preset("scope_cooling"));
  EXPECT_TRUE(has_preset("plant_small"));
  EXPECT_TRUE(has_preset("enterprise64"));
  EXPECT_TRUE(has_preset("enterprise1024"));
  EXPECT_FALSE(has_preset("enterprise16"));  // below kMinEnterpriseNodes
  EXPECT_FALSE(has_preset("enterprise12x"));
  EXPECT_FALSE(has_preset("campus"));

  // Family specs are preset names too (family_spec.h).
  EXPECT_TRUE(has_preset("brownfield"));
  EXPECT_TRUE(has_preset("purdue-deep:nodes=128,depth=3"));
  EXPECT_FALSE(has_preset("purdue-deep:nodes=2"));  // below kMinFamilyNodes

  const divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  EXPECT_THROW(make_preset("campus", cat, 1), std::out_of_range);
  EXPECT_THROW(make_preset("enterprise16", cat, 1), std::invalid_argument);
  // The unknown-preset message lists presets and families by name.
  try {
    (void)make_preset("campus", cat, 1);
    FAIL() << "expected out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("paper_two_machines"), std::string::npos);
    EXPECT_NE(what.find("hub-spoke"), std::string::npos);
  }
}

TEST(PresetRegistry, FamilyPresetsExpandDeterministically) {
  const divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  const GeneratedScenario a = make_preset("mesh-flat:nodes=64", cat, 9);
  const GeneratedScenario b = make_preset("mesh-flat:nodes=64", cat, 9);
  expect_identical_topology(a.scenario.topology, b.scenario.topology);
  expect_identical_software(a.scenario, b.scenario);
  EXPECT_EQ(a.scenario.topology.node_count(), 64u);
  // The scenario label is the canonical spelling, so sweep states and
  // reports agree on one name per spec.
  EXPECT_EQ(a.name, FamilySpec::parse("mesh-flat:nodes=64").canonical());
}

TEST(PresetRegistry, EnterpriseSpecHitsExactNodeCounts) {
  for (const std::size_t n : {24u, 64u, 100u, 256u, 1024u}) {
    EXPECT_EQ(enterprise_spec(n).node_count(), n) << "enterprise" << n;
  }
}

TEST(PresetRegistry, PaperTwoMachinesIsTheMinimalRig) {
  const divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  const GeneratedScenario rig = make_preset("paper_two_machines", cat, 5);
  EXPECT_EQ(rig.scenario.topology.node_count(), 2u);
  EXPECT_EQ(rig.scenario.entry_nodes.size(), 1u);
  EXPECT_EQ(rig.scenario.target_plcs.size(), 1u);
  EXPECT_NO_THROW(rig.scenario.validate(cat));
  // No HMI / historian / corporate components on a two-machine rig.
  for (const auto& comp : rig.components) {
    EXPECT_NE(comp.name, "hmi.software");
    EXPECT_NE(comp.name, "historian.db");
    EXPECT_NE(comp.name, "os.corporate");
  }
  // It still runs a campaign end to end.
  const attack::CampaignSimulator sim(rig.scenario,
                                      attack::ThreatProfile::stuxnet(), cat);
  stats::Rng rng(1);
  const auto result = sim.run(rng);
  EXPECT_GE(result.compromised_ratio.size(), 1u);
}

TEST(PresetRegistry, ScopeCoolingPresetMatchesCuratedDescription) {
  const divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  const GeneratedScenario preset = make_preset("scope_cooling", cat, 9);
  const core::SystemDescription curated = core::make_scope_description(cat);
  expect_identical_topology(preset.scenario.topology, curated.baseline().topology);
  expect_identical_software(preset.scenario, curated.baseline());
  ASSERT_EQ(preset.components.size(), curated.components().size());
  for (std::size_t i = 0; i < preset.components.size(); ++i)
    EXPECT_EQ(preset.components[i].name, curated.components()[i].name);
}

TEST(PresetRegistry, GeneratedPresetIsDeterministicInSeed) {
  const divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  const GeneratedScenario a =
      make_preset("enterprise256", cat, 42, VariantPolicy::kRandomPerNode);
  const GeneratedScenario b =
      make_preset("enterprise256", cat, 42, VariantPolicy::kRandomPerNode);
  expect_identical_topology(a.scenario.topology, b.scenario.topology);
  expect_identical_software(a.scenario, b.scenario);

  // Another seed changes the variant assignment somewhere.
  const GeneratedScenario c =
      make_preset("enterprise256", cat, 43, VariantPolicy::kRandomPerNode);
  bool differs = false;
  for (std::size_t i = 0; !differs && i < a.scenario.software.size(); ++i)
    differs = a.scenario.software[i].os != c.scenario.software[i].os;
  EXPECT_TRUE(differs);
}

TEST(ScenarioBuilderPolicies, MonocultureStratifiedAndRandomDiffer) {
  const divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  const GeneratedScenario mono =
      make_preset("enterprise64", cat, 8, VariantPolicy::kMonoculture);
  const GeneratedScenario strat =
      make_preset("enterprise64", cat, 8, VariantPolicy::kZoneStratified);
  const GeneratedScenario rand =
      make_preset("enterprise64", cat, 8, VariantPolicy::kRandomPerNode);

  // Monoculture: baseline everywhere.
  for (const auto& sw : mono.scenario.software) {
    EXPECT_EQ(sw.os, 0u);
    EXPECT_EQ(sw.protocol, 0u);
  }
  EXPECT_EQ(mono.scenario.firewall_variant, 0u);

  // Zone-stratified: one OS variant per zone.
  const auto& topo = strat.scenario.topology;
  std::array<std::optional<std::size_t>, net::kZoneCount> zone_os;
  for (NodeId i = 0; i < topo.node_count(); ++i) {
    auto& expected = zone_os[static_cast<std::size_t>(topo.node(i).zone)];
    if (!expected) expected = strat.scenario.software[i].os;
    EXPECT_EQ(strat.scenario.software[i].os, *expected) << "node " << i;
  }

  // Random-per-node: some OS heterogeneity inside a single zone (the
  // corporate zone of enterprise64 has dozens of draws over >= 2 levels).
  const auto& rtopo = rand.scenario.topology;
  std::optional<std::size_t> first;
  bool hetero = false;
  for (NodeId i = 0; i < rtopo.node_count() && !hetero; ++i) {
    if (rtopo.node(i).zone != Zone::kCorporate) continue;
    if (!first)
      first = rand.scenario.software[i].os;
    else
      hetero = rand.scenario.software[i].os != *first;
  }
  EXPECT_TRUE(hetero);
}

TEST(ScenarioBuilderOptions, SabotageTargetCapAndDescription) {
  const divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  const FleetSpec spec = enterprise_spec(64);
  const net::Topology topo = TopologyGenerator(spec).generate(5);
  const std::size_t all_plcs = topo.nodes_with_role(Role::kPlc).size();
  ASSERT_GT(all_plcs, 3u);

  const GeneratedScenario capped = ScenarioBuilder(topo, cat)
                                       .max_sabotage_targets(3)
                                       .build("capped", 5);
  EXPECT_EQ(capped.scenario.target_plcs.size(), 3u);
  EXPECT_TRUE(std::is_sorted(capped.scenario.target_plcs.begin(),
                             capped.scenario.target_plcs.end()));
  for (NodeId plc : capped.scenario.target_plcs)
    EXPECT_EQ(topo.node(plc).role, Role::kPlc);

  // The DoE view still spans every PLC and builds a SystemDescription.
  const core::SystemDescription desc = capped.make_description(cat);
  for (const auto& comp : desc.components())
    if (comp.name == "plc.firmware") {
      EXPECT_EQ(comp.nodes.size(), all_plcs);
    }
  EXPECT_NO_THROW(desc.validate(desc.baseline_configuration()));
  EXPECT_EQ(desc.factor_space().factor_count(), desc.components().size());
}

}  // namespace
}  // namespace divsec::scenario
