// Tests for scada/protocol.h — framing, CRC, register service.
#include <gtest/gtest.h>

#include "scada/protocol.h"

namespace divsec::scada {
namespace {

/// Simple in-memory register bank for protocol tests.
class Bank final : public RegisterServer {
 public:
  explicit Bank(std::uint16_t n) : regs_(n, 0) {}
  [[nodiscard]] std::uint16_t register_count() const override {
    return static_cast<std::uint16_t>(regs_.size());
  }
  [[nodiscard]] std::uint16_t read_register(std::uint16_t addr) override {
    return regs_.at(addr);
  }
  void write_register(std::uint16_t addr, std::uint16_t value) override {
    regs_.at(addr) = value;
  }
  std::vector<std::uint16_t> regs_;
};

TEST(Crc16, KnownReferenceValue) {
  // Classic MODBUS reference: CRC16 of "123456789" is 0x4B37.
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc16_modbus(data, sizeof(data)), 0x4B37);
}

TEST(Crc16, EmptyInputIsInitValue) {
  EXPECT_EQ(crc16_modbus(nullptr, 0), 0xFFFF);
}

TEST(Framing, RequestRoundTrip) {
  const Request r{7, FunctionCode::kReadHoldingRegisters, 0x1234, 5};
  const auto frame = encode_request(r);
  EXPECT_EQ(frame.size(), 8u);
  const auto back = decode_request(frame);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->unit, 7);
  EXPECT_EQ(back->function, FunctionCode::kReadHoldingRegisters);
  EXPECT_EQ(back->address, 0x1234);
  EXPECT_EQ(back->count_or_value, 5);
}

TEST(Framing, CorruptedFrameRejected) {
  const Request r{1, FunctionCode::kWriteSingleRegister, 10, 99};
  auto frame = encode_request(r);
  frame[3] ^= 0x01;  // flip a bit: CRC must catch it
  EXPECT_FALSE(decode_request(frame).has_value());
  frame = encode_request(r);
  frame.pop_back();  // truncated
  EXPECT_FALSE(decode_request(frame).has_value());
}

TEST(Framing, UnknownFunctionCodeRejected) {
  auto frame = encode_request({1, FunctionCode::kReadHoldingRegisters, 0, 1});
  frame[1] = 0x2B;  // not a supported function
  // Recompute a valid CRC so only the function check can reject it.
  const std::uint16_t crc = crc16_modbus(frame.data(), frame.size() - 2);
  frame[6] = static_cast<std::uint8_t>(crc & 0xFF);
  frame[7] = static_cast<std::uint8_t>(crc >> 8);
  EXPECT_FALSE(decode_request(frame).has_value());
}

TEST(Framing, ResponseRoundTrip) {
  Response r;
  r.unit = 3;
  r.function = FunctionCode::kReadHoldingRegisters;
  r.values = {100, 200, 65535};
  const auto back = decode_response(encode_response(r));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->ok);
  EXPECT_EQ(back->values, r.values);
}

TEST(Framing, ExceptionResponseRoundTrip) {
  Response r;
  r.unit = 3;
  r.function = FunctionCode::kWriteSingleRegister;
  r.ok = false;
  r.exception = ExceptionCode::kIllegalAddress;
  const auto back = decode_response(encode_response(r));
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->ok);
  EXPECT_EQ(back->exception, ExceptionCode::kIllegalAddress);
  EXPECT_EQ(back->function, FunctionCode::kWriteSingleRegister);
}

TEST(Serve, ReadAndWriteRegisters) {
  Bank bank(16);
  bank.regs_[4] = 1111;
  bank.regs_[5] = 2222;
  const Response read =
      serve(bank, {1, FunctionCode::kReadHoldingRegisters, 4, 2});
  ASSERT_TRUE(read.ok);
  EXPECT_EQ(read.values, (std::vector<std::uint16_t>{1111, 2222}));

  const Response write =
      serve(bank, {1, FunctionCode::kWriteSingleRegister, 7, 1234});
  EXPECT_TRUE(write.ok);
  EXPECT_EQ(bank.regs_[7], 1234);
}

TEST(Serve, BoundsChecked) {
  Bank bank(8);
  const Response past_end =
      serve(bank, {1, FunctionCode::kReadHoldingRegisters, 6, 3});
  EXPECT_FALSE(past_end.ok);
  EXPECT_EQ(past_end.exception, ExceptionCode::kIllegalAddress);

  const Response zero_count =
      serve(bank, {1, FunctionCode::kReadHoldingRegisters, 0, 0});
  EXPECT_FALSE(zero_count.ok);
  EXPECT_EQ(zero_count.exception, ExceptionCode::kIllegalValue);

  const Response bad_write =
      serve(bank, {1, FunctionCode::kWriteSingleRegister, 8, 1});
  EXPECT_FALSE(bad_write.ok);
}

TEST(Transact, FullWireRoundTrip) {
  Bank bank(4);
  bank.regs_[0] = 42;
  const auto resp = transact(bank, {1, FunctionCode::kReadHoldingRegisters, 0, 1});
  ASSERT_TRUE(resp.has_value());
  ASSERT_TRUE(resp->ok);
  EXPECT_EQ(resp->values[0], 42);
}

TEST(AnalogPacking, RoundTripsWithinResolution) {
  for (double v : {-40.0, 0.0, 23.45, 99.99, 300.0}) {
    EXPECT_NEAR(unpack_analog(pack_analog(v)), v, 0.005) << v;
  }
}

TEST(AnalogPacking, SaturatesAtRegisterLimits) {
  EXPECT_EQ(pack_analog(-1000.0), 0);
  EXPECT_EQ(unpack_analog(pack_analog(-1000.0)), -100.0);
  EXPECT_EQ(pack_analog(100000.0), 65535);
}

}  // namespace
}  // namespace divsec::scada
