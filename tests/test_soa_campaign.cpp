// Tests for the SoA campaign kernel and its batched per-event-class RNG
// facade (attack/campaign_rng.h), plus the engine's shared lazy-context
// path. Three contracts are pinned here:
//
//  1. The draw-order contract: class ids are fixed, the facade's words
//     are exactly the base Rng::stream(id) words in per-class call
//     order, and the prefetch block size changes no draw (block size is
//     performance, never semantics).
//  2. Kernel equivalence: the batched SoA kernel and the scalar
//     reference kernel are bit-identical — per run and through the
//     engine for any thread count and either schedule — and the batched
//     kernel is statistically equivalent to the preserved PR-1 legacy
//     engine (bench/legacy_campaign.h).
//  3. Shared contexts: structurally identical topologies share one
//     ReachabilityIndex, contexts are built lazily per scheduling round
//     (peak residency far below the cell count), and none of it changes
//     a single bit of the summaries.
#include <gtest/gtest.h>

#include <cmath>

#include "attack/campaign.h"
#include "attack/campaign_rng.h"
#include "bench/legacy_campaign.h"
#include "core/measurement.h"
#include "net/reachability_index.h"
#include "obs/metrics.h"
#include "scenario/presets.h"
#include "sim/executor.h"
#include "stats/rng.h"

namespace divsec {
namespace {

using attack::CampaignKernel;
using attack::CampaignOptions;
using attack::CampaignRng;
using attack::CampaignResult;
using attack::CampaignSimulator;
using attack::DrawClass;

// --- 1. The draw-order contract ---------------------------------------

TEST(CampaignRngContract, ClassIdsArePinned) {
  // The numeric ids ARE the contract (they select Rng::stream(id));
  // renumbering them silently changes every campaign result.
  EXPECT_EQ(static_cast<int>(DrawClass::kEntry), 0);
  EXPECT_EQ(static_cast<int>(DrawClass::kActivation), 1);
  EXPECT_EQ(static_cast<int>(DrawClass::kPrivesc), 2);
  EXPECT_EQ(static_cast<int>(DrawClass::kPropagation), 3);
  EXPECT_EQ(static_cast<int>(DrawClass::kPayload), 4);
  EXPECT_EQ(static_cast<int>(DrawClass::kSabotage), 5);
  EXPECT_EQ(static_cast<int>(DrawClass::kHostIds), 6);
  EXPECT_EQ(static_cast<int>(DrawClass::kAlarm), 7);
  EXPECT_EQ(attack::kDrawClassCount, 8u);
}

TEST(CampaignRngContract, FacadeWordsAreTheBaseClassStreams) {
  const stats::Rng base(2013, 7);
  CampaignRng facade(base);  // default (batched) block
  for (std::size_t c = 0; c < attack::kDrawClassCount; ++c) {
    stats::Rng direct = base.stream(c);
    for (int i = 0; i < 200; ++i)
      ASSERT_EQ(facade.next(static_cast<DrawClass>(c)), direct())
          << "class " << c << " word " << i;
  }
}

TEST(CampaignRngContract, FacadeDerivationConsumesNoBaseState) {
  stats::Rng base(99, 3);
  stats::Rng untouched(99, 3);
  { CampaignRng facade(base); (void)facade.next(DrawClass::kEntry); }
  // The facade worked off derived streams only: base still yields the
  // same next word as a never-touched twin.
  EXPECT_EQ(base(), untouched());
}

TEST(CampaignRngContract, BlockSizeChangesNoDraw) {
  const stats::Rng base(42, 0);
  CampaignRng one(base, 1);
  CampaignRng odd(base, 7);
  CampaignRng batched(base, attack::kDefaultDrawBlock);
  // Interleave classes to exercise refills at different phases.
  for (int i = 0; i < 500; ++i) {
    const auto c = static_cast<DrawClass>(i % attack::kDrawClassCount);
    const std::uint64_t w = one.next(c);
    ASSERT_EQ(odd.next(c), w) << "draw " << i;
    ASSERT_EQ(batched.next(c), w) << "draw " << i;
  }
}

TEST(CampaignRngContract, ZigguratSamplesExpOne) {
  const stats::Rng base(7, 7);
  CampaignRng rng(base);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  int beyond_one = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exp_std(DrawClass::kEntry);
    ASSERT_GE(x, 0.0);
    sum += x;
    sum2 += x * x;
    if (x > 1.0) ++beyond_one;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  // Exp(1): mean 1, variance 1, P(X > 1) = 1/e. 5 sigma bands.
  EXPECT_NEAR(mean, 1.0, 5.0 / std::sqrt(static_cast<double>(n)));
  EXPECT_NEAR(var, 1.0, 0.05);
  EXPECT_NEAR(static_cast<double>(beyond_one) / n, std::exp(-1.0),
              5.0 * std::sqrt(std::exp(-1.0) * (1 - std::exp(-1.0)) / n));
}

// --- 2. Kernel equivalence --------------------------------------------

void expect_same_result(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.time_of_entry, b.time_of_entry);
  EXPECT_EQ(a.first_root, b.first_root);
  EXPECT_EQ(a.first_plc_compromise, b.first_plc_compromise);
  EXPECT_EQ(a.time_to_attack, b.time_to_attack);
  EXPECT_EQ(a.time_to_detection, b.time_to_detection);
  EXPECT_EQ(a.hosts_compromised, b.hosts_compromised);
  EXPECT_EQ(a.plcs_compromised, b.plcs_compromised);
  EXPECT_EQ(a.events_executed, b.events_executed);
  ASSERT_EQ(a.compromised_ratio.size(), b.compromised_ratio.size());
  for (std::size_t i = 0; i < a.compromised_ratio.size(); ++i) {
    EXPECT_EQ(a.compromised_ratio[i].first, b.compromised_ratio[i].first);
    EXPECT_EQ(a.compromised_ratio[i].second, b.compromised_ratio[i].second);
  }
}

class SoaKernelFixture : public ::testing::Test {
 protected:
  divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  attack::ThreatProfile stuxnet = attack::ThreatProfile::stuxnet();
};

TEST_F(SoaKernelFixture, KernelsBitIdenticalPerReplication) {
  for (const char* preset : {"plant_small", "enterprise128"}) {
    const auto made = scenario::make_preset(preset, cat, 17,
                                            scenario::VariantPolicy::kMonoculture);
    CampaignOptions batched;  // kernel defaults to kBatched
    CampaignOptions scalar;
    scalar.kernel = CampaignKernel::kScalarReference;
    const CampaignSimulator fast(made.scenario, stuxnet, cat, {}, batched);
    const CampaignSimulator ref(made.scenario, stuxnet, cat, {}, scalar);
    for (std::uint64_t rep = 0; rep < 24; ++rep) {
      stats::Rng ra(2013, rep), rb(2013, rep);
      expect_same_result(fast.run(ra), ref.run(rb));
    }
  }
}

void expect_bit_identical(const core::IndicatorSummary& a,
                          const core::IndicatorSummary& b) {
  EXPECT_EQ(a.tta.mean(), b.tta.mean());
  EXPECT_EQ(a.tta.variance(), b.tta.variance());
  EXPECT_EQ(a.ttsf.mean(), b.ttsf.mean());
  EXPECT_EQ(a.final_ratio.mean(), b.final_ratio.mean());
  EXPECT_EQ(a.tta_censored, b.tta_censored);
  EXPECT_EQ(a.ttsf_censored, b.ttsf_censored);
  EXPECT_EQ(a.successes, b.successes);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].tta, b.samples[i].tta) << "rep " << i;
    EXPECT_EQ(a.samples[i].ttsf, b.samples[i].ttsf) << "rep " << i;
    EXPECT_EQ(a.samples[i].final_ratio, b.samples[i].final_ratio) << "rep " << i;
  }
}

TEST_F(SoaKernelFixture, EngineBitIdenticalAcrossThreadsSchedulesAndKernels) {
  core::ScenarioSweepPlan plan;
  plan.cells.push_back(
      {scenario::make_preset("enterprise128", cat, 17,
                             scenario::VariantPolicy::kMonoculture)
           .scenario,
       101});
  plan.cells.push_back(
      {scenario::make_preset("enterprise128", cat, 17,
                             scenario::VariantPolicy::kZoneStratified)
           .scenario,
       202});

  // Reference bits: serial, static schedule, scalar reference kernel.
  std::vector<core::IndicatorSummary> reference;
  {
    sim::Executor serial{1};
    core::MeasurementOptions mo;
    mo.replications = 12;
    mo.executor = &serial;
    mo.schedule = core::Scheduling::kStatic;
    mo.campaign.kernel = CampaignKernel::kScalarReference;
    reference = core::MeasurementEngine(cat, stuxnet, mo).measure_scenarios(plan);
  }
  for (const std::size_t threads : {1u, 4u, 8u}) {
    for (const auto schedule :
         {core::Scheduling::kElastic, core::Scheduling::kStatic}) {
      for (const auto kernel :
           {CampaignKernel::kBatched, CampaignKernel::kScalarReference}) {
        sim::Executor ex{threads};
        core::MeasurementOptions mo;
        mo.replications = 12;
        mo.executor = &ex;
        mo.schedule = schedule;
        mo.campaign.kernel = kernel;
        const auto got =
            core::MeasurementEngine(cat, stuxnet, mo).measure_scenarios(plan);
        ASSERT_EQ(got.size(), reference.size());
        for (std::size_t c = 0; c < got.size(); ++c) {
          SCOPED_TRACE(::testing::Message()
                       << "threads=" << threads << " schedule="
                       << (schedule == core::Scheduling::kElastic ? "elastic"
                                                                  : "static")
                       << " kernel="
                       << (kernel == CampaignKernel::kBatched ? "batched"
                                                              : "scalar")
                       << " cell=" << c);
          expect_bit_identical(reference[c], got[c]);
        }
      }
    }
  }
}

TEST_F(SoaKernelFixture, BatchedKernelStatisticallyMatchesLegacyEngine) {
  // The PR-1 engine is preserved verbatim in bench/legacy_campaign.h:
  // same event LAW, different draw sequence, so equality holds in
  // distribution, not in bits. Compare success probability and the
  // final compromised ratio over a replication set, 5 sigma bands.
  const auto made = scenario::make_preset("plant_small", cat, 17,
                                          scenario::VariantPolicy::kMonoculture);
  CampaignOptions opt;
  opt.detection_halts_attack = false;
  const CampaignSimulator soa(made.scenario, stuxnet, cat, {}, opt);
  const bench::legacy::CampaignSimulator legacy(made.scenario, stuxnet, cat, {},
                                                opt);
  const int n = 400;
  double ratio_a = 0.0, ratio_b = 0.0, ratio2_a = 0.0, ratio2_b = 0.0;
  int succ_a = 0, succ_b = 0;
  for (std::uint64_t rep = 0; rep < n; ++rep) {
    stats::Rng ra(2013, rep), rb(4027, rep);
    const auto a = soa.run(ra);
    const auto b = legacy.run(rb);
    const double fa = a.compromised_ratio.back().second;
    const double fb = b.compromised_ratio.back().second;
    ratio_a += fa;
    ratio_b += fb;
    ratio2_a += fa * fa;
    ratio2_b += fb * fb;
    succ_a += a.attack_succeeded() ? 1 : 0;
    succ_b += b.attack_succeeded() ? 1 : 0;
  }
  const double ma = ratio_a / n, mb = ratio_b / n;
  const double va = ratio2_a / n - ma * ma, vb = ratio2_b / n - mb * mb;
  EXPECT_NEAR(ma, mb, 5.0 * std::sqrt((va + vb) / n) + 1e-3);
  const double pa = static_cast<double>(succ_a) / n;
  const double pb = static_cast<double>(succ_b) / n;
  EXPECT_NEAR(pa, pb,
              5.0 * std::sqrt((pa * (1 - pa) + pb * (1 - pb)) / n) + 1e-3);
}

// --- 3. Shared contexts ------------------------------------------------

TEST_F(SoaKernelFixture, SharedReachabilityIndexGivesIdenticalRuns) {
  const auto made = scenario::make_preset("plant_medium", cat, 17,
                                          scenario::VariantPolicy::kMonoculture);
  const CampaignSimulator own(made.scenario, stuxnet, cat);
  const CampaignSimulator shared(made.scenario, stuxnet, cat, {}, {},
                                 own.shared_reachability());
  EXPECT_EQ(&own.reachability(), &shared.reachability());
  for (std::uint64_t rep = 0; rep < 8; ++rep) {
    stats::Rng ra(1, rep), rb(1, rep);
    expect_same_result(own.run(ra), shared.run(rb));
  }
}

TEST_F(SoaKernelFixture, SharedIndexRejectsWrongTopologySize) {
  const auto small = scenario::make_preset("plant_small", cat, 17,
                                           scenario::VariantPolicy::kMonoculture);
  const auto medium = scenario::make_preset("plant_medium", cat, 17,
                                            scenario::VariantPolicy::kMonoculture);
  const CampaignSimulator donor(small.scenario, stuxnet, cat);
  EXPECT_THROW(CampaignSimulator(medium.scenario, stuxnet, cat, {}, {},
                                 donor.shared_reachability()),
               std::invalid_argument);
}

TEST(StructuralKey, EqualForStructurallyIdenticalInputsOnly) {
  const auto cat = divers::VariantCatalog::standard(2013);
  // Same preset + seed, different variant policy: identical structure
  // (policies only change software assignments, not topology/firewall).
  const auto a = scenario::make_preset("plant_medium", cat, 17,
                                       scenario::VariantPolicy::kMonoculture);
  const auto b = scenario::make_preset("plant_medium", cat, 17,
                                       scenario::VariantPolicy::kZoneStratified);
  const auto c = scenario::make_preset("plant_medium", cat, 18,
                                       scenario::VariantPolicy::kMonoculture);
  const auto ka = net::ReachabilityIndex::structural_key(a.scenario.topology,
                                                         a.scenario.firewall);
  const auto kb = net::ReachabilityIndex::structural_key(b.scenario.topology,
                                                         b.scenario.firewall);
  const auto kc = net::ReachabilityIndex::structural_key(c.scenario.topology,
                                                         c.scenario.firewall);
  EXPECT_TRUE(ka == kb);
  EXPECT_EQ(ka.fingerprint(), kb.fingerprint());
  // Different generator seed: different link structure.
  EXPECT_FALSE(ka == kc);
}

TEST_F(SoaKernelFixture, LazyContextsShareIndexesAndBoundResidency) {
  // 64 same-topology cells: the whole sweep must build exactly one
  // reachability index, one context per cell, and never hold more than
  // a few rounds' worth of contexts alive at once.
  core::ScenarioSweepPlan plan;
  for (std::uint64_t c = 0; c < 64; ++c)
    plan.cells.push_back(
        {scenario::make_preset("plant_small", cat, 17,
                               scenario::VariantPolicy::kMonoculture)
             .scenario,
         1000 + c});
  sim::Executor serial{1};
  core::MeasurementOptions mo;
  mo.replications = 4;
  mo.executor = &serial;
  mo.keep_samples = false;
  // The bespoke ContextStats struct became the core.context.* metrics;
  // the registry is process-cumulative, so read per-sweep deltas by
  // zeroing it before each measured call.
  obs::reset();
  const auto summaries =
      core::MeasurementEngine(cat, stuxnet, mo).measure_scenarios(plan);
  ASSERT_EQ(summaries.size(), 64u);
#if DIVSEC_OBS
  {
    const obs::Snapshot snap = obs::snapshot();
    EXPECT_EQ(snap.counter("core.context.built"), 64u);
    EXPECT_EQ(snap.counter("core.context.reach_builds"), 1u);
    EXPECT_EQ(snap.counter("core.context.reach_dedup_hits"), 63u);
    // Rounds are 4 x threads tasks; with one task per cell the live set
    // stays around a round's width — far below the 64-cell fleet.
    EXPECT_LE(snap.gauge("core.context.peak_live"), 16u);
  }
#endif

  // Two distinct topologies in one sweep: two indexes, no more.
  plan.cells.push_back(
      {scenario::make_preset("plant_medium", cat, 17,
                             scenario::VariantPolicy::kMonoculture)
           .scenario,
       9999});
  obs::reset();
  const auto with_medium =
      core::MeasurementEngine(cat, stuxnet, mo).measure_scenarios(plan);
  ASSERT_EQ(with_medium.size(), 65u);
#if DIVSEC_OBS
  {
    const obs::Snapshot snap = obs::snapshot();
    EXPECT_EQ(snap.counter("core.context.built"), 65u);
    EXPECT_EQ(snap.counter("core.context.reach_builds"), 2u);
  }
#endif
}

TEST_F(SoaKernelFixture, LazySharedPathChangesNoBits) {
  // The pre-refactor eager path is gone; its bits must not be. The
  // sweep's summaries must equal per-cell direct simulation — context
  // construction shares indexes and consumes no randomness, so
  // replication r of cell c is still exactly Rng(cell.seed, r).
  core::ScenarioSweepPlan plan;
  for (std::uint64_t c = 0; c < 6; ++c)
    plan.cells.push_back(
        {scenario::make_preset("plant_small", cat, 17,
                               scenario::VariantPolicy::kMonoculture)
             .scenario,
         500 + c});
  sim::Executor ex{4};
  core::MeasurementOptions mo;
  mo.replications = 10;
  mo.executor = &ex;
  const auto summaries =
      core::MeasurementEngine(cat, stuxnet, mo).measure_scenarios(plan);
  for (std::size_t c = 0; c < plan.cell_count(); ++c) {
    const CampaignSimulator direct(plan.cells[c].scenario, stuxnet, cat);
    for (std::uint64_t rep = 0; rep < 10; ++rep) {
      stats::Rng rng(plan.cells[c].seed, rep);
      const auto r = direct.run(rng);
      EXPECT_EQ(summaries[c].samples[rep].final_ratio,
                r.compromised_ratio.back().second)
          << "cell " << c << " rep " << rep;
    }
  }
}

TEST(UnionInCsr, InvertsUnionGraphExactly) {
  const auto cat = divers::VariantCatalog::standard(2013);
  const auto made = scenario::make_preset("plant_medium", cat, 17,
                                          scenario::VariantPolicy::kMonoculture);
  const net::ReachabilityIndex index(made.scenario.topology,
                                     made.scenario.firewall);
  const std::vector<net::Channel> channels = {net::Channel::kHttp,
                                              net::Channel::kSmbShare,
                                              net::Channel::kUsb};
  const auto out = index.union_graph(channels);
  const auto csr = index.union_in_csr(channels);
  ASSERT_EQ(csr.off.size(), index.node_count() + 1);
  // Rebuild the in-edge lists the old way and compare element-wise.
  std::vector<std::vector<net::NodeId>> expect(index.node_count());
  for (net::NodeId j = 0; j < out.size(); ++j)
    for (net::NodeId i : out[j]) expect[i].push_back(j);
  for (net::NodeId i = 0; i < index.node_count(); ++i) {
    const std::vector<net::NodeId> got(
        csr.edge.begin() + static_cast<std::ptrdiff_t>(csr.off[i]),
        csr.edge.begin() + static_cast<std::ptrdiff_t>(csr.off[i + 1]));
    EXPECT_EQ(got, expect[i]) << "node " << i;
  }
}

}  // namespace
}  // namespace divsec
