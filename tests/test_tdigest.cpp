// Tests for stats/tdigest.h (the mergeable quantile sketch behind
// CensoredTimeAccumulator's q50/q90) and core/ratio_curve.h (the binned
// compromised-ratio curve accumulator). Both are exact-merge citizens:
// deterministic merges, exact state round-trips, and validation that
// rejects structurally impossible restores.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/ratio_curve.h"
#include "stats/quantile_sketch.h"
#include "stats/rng.h"
#include "stats/tdigest.h"

namespace divsec::stats {
namespace {

std::vector<double> exponential_sample(std::uint64_t seed, std::size_t n,
                                       double scale) {
  Rng rng(seed);
  std::vector<double> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    v.push_back(-scale * std::log1p(-rng.uniform()));
  return v;
}

double exact_quantile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  const double rank = q * (static_cast<double>(v.size()) - 1.0);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  return v[lo] + (rank - static_cast<double>(lo)) * (v[hi] - v[lo]);
}

TEST(TDigest, ExactForFewObservations) {
  TDigest d(100.0);
  for (const double v : {3.0, 1.0, 2.0}) d.add(v);
  EXPECT_EQ(d.count(), 3u);
  EXPECT_EQ(d.quantile(0.0), 1.0);
  EXPECT_EQ(d.quantile(1.0), 3.0);
  EXPECT_EQ(d.min(), 1.0);
  EXPECT_EQ(d.max(), 3.0);
  EXPECT_NEAR(d.quantile(0.5), 2.0, 1e-12);
}

TEST(TDigest, TracksStreamQuantilesAcrossTheRange) {
  // Pure one-value-at-a-time insertion is the sketch's worst case (the
  // greedy compaction sees each observation alone); measured drift on
  // this stream is ~2-3% at the interior quantiles. The production path
  // never does this — block partials merge through the reduction tree,
  // and that shape is held to <= 1% by the SketchAccuracyAudit suite.
  const std::vector<double> values = exponential_sample(11, 50000, 10.0);
  TDigest d(100.0);
  for (const double v : values) d.add(v);
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double exact = exact_quantile(values, q);
    EXPECT_NEAR(d.quantile(q), exact, 0.03 * exact) << "q=" << q;
  }
  // Interior compression keeps centroid counts bounded by the scale
  // function budget, not the stream length.
  EXPECT_LT(d.centroid_count(), 2.0 * d.compression());
}

TEST(TDigest, MergeIsDeterministicAndOrderStable) {
  // Same merge tree twice -> bit-identical state. That is the contract
  // the distributed reducer's ascending (cell, superblock) fold relies
  // on: any fixed merge order reproduces bits, every time.
  const std::vector<double> values = exponential_sample(3, 8192, 5.0);
  const auto build = [&values]() {
    std::vector<TDigest> partials;
    for (std::size_t b = 0; b < values.size(); b += 256) {
      TDigest p(100.0);
      for (std::size_t i = b; i < std::min(values.size(), b + 256); ++i)
        p.add(values[i]);
      partials.push_back(p);
    }
    TDigest total(100.0);
    for (const TDigest& p : partials) total.merge(p);
    return total;
  };
  const TDigest a = build();
  const TDigest b = build();
  const TDigest::State sa = a.state();
  const TDigest::State sb = b.state();
  ASSERT_EQ(sa.centroids.size(), sb.centroids.size());
  for (std::size_t i = 0; i < sa.centroids.size(); ++i) {
    EXPECT_EQ(sa.centroids[i].mean, sb.centroids[i].mean);
    EXPECT_EQ(sa.centroids[i].weight, sb.centroids[i].weight);
  }
}

TEST(TDigest, StateRoundTripIsExactAndKeepsBehaving) {
  const std::vector<double> values = exponential_sample(17, 4096, 20.0);
  TDigest d(100.0);
  for (const double v : values) d.add(v);

  TDigest restored = TDigest::from_state(d.state());
  EXPECT_EQ(restored.count(), d.count());
  EXPECT_EQ(restored.quantile(0.5), d.quantile(0.5));
  EXPECT_EQ(restored.quantile(0.9), d.quantile(0.9));

  // No hidden buffer: the restored sketch must keep folding identically.
  TDigest more(100.0);
  for (const double v : exponential_sample(18, 1000, 20.0)) more.add(v);
  d.merge(more);
  restored.merge(more);
  EXPECT_EQ(restored.quantile(0.5), d.quantile(0.5));
  EXPECT_EQ(restored.quantile(0.9), d.quantile(0.9));
  const TDigest::State sa = d.state();
  const TDigest::State sb = restored.state();
  ASSERT_EQ(sa.centroids.size(), sb.centroids.size());
  for (std::size_t i = 0; i < sa.centroids.size(); ++i)
    EXPECT_EQ(sa.centroids[i].mean, sb.centroids[i].mean);
}

TEST(TDigest, CompressIsIdempotent) {
  // compress(compress(x)) == compress(x): a restored-from-state sketch
  // never re-compacts differently from the one that wrote the state.
  TDigest d(20.0);
  for (const double v : exponential_sample(5, 2000, 1.0)) d.add(v);
  d.compress();
  const TDigest::State once = d.state();
  d.compress();
  const TDigest::State twice = d.state();
  ASSERT_EQ(once.centroids.size(), twice.centroids.size());
  for (std::size_t i = 0; i < once.centroids.size(); ++i) {
    EXPECT_EQ(once.centroids[i].mean, twice.centroids[i].mean);
    EXPECT_EQ(once.centroids[i].weight, twice.centroids[i].weight);
  }
}

TEST(TDigest, EmptyAndMergeEdgeCases) {
  TDigest empty(100.0);
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.quantile(0.5), 0.0);

  TDigest one(100.0);
  one.add(7.0);
  TDigest target(100.0);
  target.merge(empty);  // no-op
  EXPECT_EQ(target.count(), 0u);
  target.merge(one);  // adopt
  EXPECT_EQ(target.count(), 1u);
  EXPECT_EQ(target.quantile(0.5), 7.0);
}

TEST(TDigest, Validation) {
  EXPECT_THROW(TDigest(1.0), std::invalid_argument);   // below minimum
  EXPECT_THROW(TDigest(0.0 / 0.0), std::invalid_argument);
  TDigest d(100.0);
  EXPECT_THROW(d.add(std::nan("")), std::invalid_argument);
  d.add(1.0);
  EXPECT_THROW((void)d.quantile(1.5), std::invalid_argument);
  TDigest other(50.0);
  other.add(2.0);
  EXPECT_THROW(d.merge(other), std::invalid_argument);  // compression mismatch

  TDigest::State bad = d.state();
  bad.centroids[0].weight = 0;
  EXPECT_THROW((void)TDigest::from_state(bad), std::invalid_argument);
  bad = d.state();
  bad.min = 5.0;  // min above the centroid means
  EXPECT_THROW((void)TDigest::from_state(bad), std::invalid_argument);
  bad = d.state();
  bad.compression = 2.0;
  EXPECT_THROW((void)TDigest::from_state(bad), std::invalid_argument);
}

// Both sketches satisfy the QuantileSketch surface; the concept is
// enforced at compile time in quantile_sketch.h, this just pins that the
// header stays included somewhere.
static_assert(QuantileSketch<TDigest>);
static_assert(QuantileSketch<P2Quantile>);

}  // namespace
}  // namespace divsec::stats

namespace divsec::core {
namespace {

TEST(RatioCurveAccumulator, MeanCurveAveragesTrajectories) {
  RatioCurveAccumulator acc(10.0, 5);
  // Two trajectories over 8 nodes: counts at bin upper edges.
  acc.add(std::vector<std::uint32_t>{0, 2, 4, 4, 8}, 8);
  acc.add(std::vector<std::uint32_t>{2, 2, 4, 8, 8}, 8);
  EXPECT_EQ(acc.count(), 2u);
  const std::vector<double> mean = acc.mean_curve();
  ASSERT_EQ(mean.size(), 5u);
  EXPECT_EQ(mean[0], (0.0 + 2.0) / (2.0 * 8.0));
  EXPECT_EQ(mean[1], (2.0 + 2.0) / (2.0 * 8.0));
  EXPECT_EQ(mean[4], 1.0);
}

TEST(RatioCurveAccumulator, MergeIsExactAndOrderIndependent) {
  stats::Rng rng(99);
  const auto fill = [&rng](RatioCurveAccumulator& acc, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<std::uint32_t> counts(16);
      std::uint32_t c = 0;
      for (auto& v : counts) {
        c = std::min<std::uint32_t>(
            64, c + static_cast<std::uint32_t>(rng.below(8)));
        v = c;
      }
      acc.add(counts, 64);
    }
  };
  RatioCurveAccumulator whole(100.0, 16), a(100.0, 16), b(100.0, 16);
  fill(whole, 30);
  rng = stats::Rng(99);
  fill(a, 18);
  fill(b, 12);
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_EQ(a.sums(), whole.sums());  // integer sums: merge is exact
  EXPECT_EQ(a.mean_curve(), whole.mean_curve());
}

TEST(RatioCurveAccumulator, EmptyMergeAdoptsAndStateRoundTrips) {
  RatioCurveAccumulator filled(10.0, 4);
  filled.add(std::vector<std::uint32_t>{1, 2, 3, 4}, 4);

  RatioCurveAccumulator mergeable;  // default: adopt-on-merge
  mergeable.merge(filled);
  EXPECT_EQ(mergeable.count(), 1u);
  EXPECT_EQ(mergeable.mean_curve(), filled.mean_curve());

  const RatioCurveAccumulator restored =
      RatioCurveAccumulator::from_state(filled.state());
  EXPECT_EQ(restored.sums(), filled.sums());
  EXPECT_EQ(restored.scale(), filled.scale());
  EXPECT_EQ(restored.mean_curve(), filled.mean_curve());
}

TEST(RatioCurveAccumulator, Validation) {
  RatioCurveAccumulator acc(10.0, 4);
  EXPECT_THROW(acc.add(std::vector<std::uint32_t>{1, 2}, 4),
               std::invalid_argument);  // bin mismatch
  EXPECT_THROW(acc.add(std::vector<std::uint32_t>{1, 2, 3, 4}, 0),
               std::invalid_argument);  // zero scale
  acc.add(std::vector<std::uint32_t>{1, 2, 3, 4}, 4);
  EXPECT_THROW(acc.add(std::vector<std::uint32_t>{1, 2, 3, 4}, 8),
               std::invalid_argument);  // scale change mid-stream

  RatioCurveAccumulator other(20.0, 4);
  other.add(std::vector<std::uint32_t>{1, 1, 1, 1}, 4);
  EXPECT_THROW(acc.merge(other), std::invalid_argument);  // grid mismatch

  RatioCurveAccumulator::State bad = acc.state();
  bad.sums[0] = bad.n * bad.scale + 1;  // ratio above 1 is impossible
  EXPECT_THROW((void)RatioCurveAccumulator::from_state(bad),
               std::invalid_argument);
}

TEST(RatioCurve, ValueAtInterpolatesFromImplicitZero) {
  // curve = mean c(t) at upper edges of 4 bins over t in (0, 8].
  const std::vector<double> curve = {0.1, 0.3, 0.3, 0.5};
  EXPECT_EQ(curve_value_at(curve, 8.0, 0.0), 0.0);
  EXPECT_NEAR(curve_value_at(curve, 8.0, 1.0), 0.05, 1e-15);
  EXPECT_EQ(curve_value_at(curve, 8.0, 2.0), 0.1);
  EXPECT_NEAR(curve_value_at(curve, 8.0, 3.0), 0.2, 1e-15);
  EXPECT_EQ(curve_value_at(curve, 8.0, 8.0), 0.5);
  EXPECT_EQ(curve_value_at(curve, 8.0, 100.0), 0.5);  // clamped past horizon
}

}  // namespace
}  // namespace divsec::core
