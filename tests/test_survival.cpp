// Tests for stats/survival.h — Kaplan-Meier under censoring.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/distributions.h"
#include "stats/survival.h"

namespace divsec::stats {
namespace {

TEST(KaplanMeier, NoCensoringMatchesEmpiricalSurvival) {
  // Events at 1, 2, 3, 4: S drops by 1/4 at each.
  KaplanMeier km({{1, true}, {2, true}, {3, true}, {4, true}});
  EXPECT_EQ(km.event_count(), 4u);
  EXPECT_EQ(km.censored_count(), 0u);
  EXPECT_DOUBLE_EQ(km.survival_at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(km.survival_at(1.0), 0.75);
  EXPECT_DOUBLE_EQ(km.survival_at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(km.survival_at(100.0), 0.0);
}

TEST(KaplanMeier, HandComputedCensoredExample) {
  // Classic small example: events at 1 and 3; censored at 2 and 4.
  // At t=1: 4 at risk, 1 event -> S = 3/4.
  // t=2: censored (no drop). At t=3: 2 at risk, 1 event -> S = 3/4 * 1/2.
  KaplanMeier km({{1, true}, {2, false}, {3, true}, {4, false}});
  EXPECT_DOUBLE_EQ(km.survival_at(1.0), 0.75);
  EXPECT_DOUBLE_EQ(km.survival_at(2.5), 0.75);
  EXPECT_DOUBLE_EQ(km.survival_at(3.0), 0.375);
  EXPECT_DOUBLE_EQ(km.survival_at(10.0), 0.375);  // never reaches 0
  EXPECT_EQ(km.censored_count(), 2u);
}

TEST(KaplanMeier, TiedTimesGrouped) {
  KaplanMeier km({{2, true}, {2, true}, {2, false}, {5, true}});
  // t=2: 4 at risk, 2 events -> S = 0.5; censored at 2 leaves 1 at risk.
  EXPECT_DOUBLE_EQ(km.survival_at(2.0), 0.5);
  // t=5: 1 at risk, 1 event -> S = 0.
  EXPECT_DOUBLE_EQ(km.survival_at(5.0), 0.0);
  ASSERT_EQ(km.steps().size(), 2u);
  EXPECT_EQ(km.steps()[0].at_risk, 4u);
  EXPECT_EQ(km.steps()[0].events, 2u);
}

TEST(KaplanMeier, MedianAndQuantiles) {
  KaplanMeier km({{1, true}, {2, true}, {3, true}, {4, true}});
  ASSERT_TRUE(km.median().has_value());
  EXPECT_DOUBLE_EQ(*km.median(), 2.0);  // S(2) = 0.5 <= 0.5
  ASSERT_TRUE(km.quantile(0.25).has_value());
  EXPECT_DOUBLE_EQ(*km.quantile(0.25), 1.0);
  // Heavy censoring: median undefined.
  KaplanMeier censored({{1, true}, {5, false}, {5, false}, {5, false}});
  EXPECT_FALSE(censored.median().has_value());
  EXPECT_THROW((void)km.quantile(0.0), std::invalid_argument);
}

TEST(KaplanMeier, RestrictedMeanIntegratesTheCurve) {
  // Single event at 2 among 2 observations (other censored at 5):
  // S = 1 on [0,2), 0.5 on [2, tau).
  KaplanMeier km({{2, true}, {5, false}});
  EXPECT_DOUBLE_EQ(km.restricted_mean(4.0), 2.0 + 0.5 * 2.0);
  EXPECT_DOUBLE_EQ(km.restricted_mean(1.0), 1.0);
  EXPECT_THROW((void)km.restricted_mean(0.0), std::invalid_argument);
}

TEST(KaplanMeier, RecoversExponentialSurvival) {
  // Property: KM on censored exponential data matches e^{-lambda t}.
  const double lambda = 0.5, horizon = 4.0;
  Rng rng(7);
  Distribution exp_dist(Exponential{lambda});
  std::vector<SurvivalObservation> obs;
  for (int i = 0; i < 20000; ++i) {
    const double t = exp_dist.sample(rng);
    if (t <= horizon)
      obs.push_back({t, true});
    else
      obs.push_back({horizon, false});  // right-censored at the horizon
  }
  const KaplanMeier km(std::move(obs));
  for (double t : {0.5, 1.0, 2.0, 3.5}) {
    EXPECT_NEAR(km.survival_at(t), std::exp(-lambda * t), 0.01) << t;
  }
  ASSERT_TRUE(km.median().has_value());
  EXPECT_NEAR(*km.median(), std::log(2.0) / lambda, 0.05);
  // Restricted mean ~ integral of e^{-lt} on [0, horizon].
  EXPECT_NEAR(km.restricted_mean(horizon),
              (1.0 - std::exp(-lambda * horizon)) / lambda, 0.02);
}

TEST(KaplanMeier, Validation) {
  EXPECT_THROW(KaplanMeier({}), std::invalid_argument);
  EXPECT_THROW(KaplanMeier({{-1.0, true}}), std::invalid_argument);
}

}  // namespace
}  // namespace divsec::stats
