// Tests for stats/doe.h — factorial spaces, screening designs, LHS, Morris.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "stats/doe.h"

namespace divsec::stats {
namespace {

FactorSpace small_space() {
  return FactorSpace({{"os", {"win", "linux", "rtos"}},
                      {"plc", {"s7", "abb"}},
                      {"fw", {"stock", "ngfw"}}});
}

TEST(FactorSpace, ConfigurationCount) {
  EXPECT_EQ(small_space().configuration_count(), 3u * 2u * 2u);
}

TEST(FactorSpace, EncodeDecodeRoundTrip) {
  const FactorSpace s = small_space();
  for (std::size_t i = 0; i < s.configuration_count(); ++i) {
    EXPECT_EQ(s.encode(s.decode(i)), i);
  }
}

TEST(FactorSpace, DecodeFactorZeroFastest) {
  const FactorSpace s = small_space();
  EXPECT_EQ(s.decode(0), (std::vector<int>{0, 0, 0}));
  EXPECT_EQ(s.decode(1), (std::vector<int>{1, 0, 0}));
  EXPECT_EQ(s.decode(3), (std::vector<int>{0, 1, 0}));
  EXPECT_EQ(s.decode(6), (std::vector<int>{0, 0, 1}));
}

TEST(FactorSpace, Errors) {
  EXPECT_THROW(FactorSpace(std::vector<Factor>{{"empty", {}}}),
               std::invalid_argument);
  const FactorSpace s = small_space();
  EXPECT_THROW(s.decode(12), std::out_of_range);
  EXPECT_THROW((void)s.encode(std::vector<int>{0, 0}), std::invalid_argument);
  EXPECT_THROW((void)s.encode(std::vector<int>{3, 0, 0}), std::out_of_range);
}

TEST(FullFactorial, EnumeratesAllDistinctConfigs) {
  const auto configs = full_factorial(small_space());
  EXPECT_EQ(configs.size(), 12u);
  std::set<std::vector<int>> unique(configs.begin(), configs.end());
  EXPECT_EQ(unique.size(), 12u);
}

TEST(TwoLevelFullFactorial, StandardOrderAndBalance) {
  const auto d = full_factorial_2k({"A", "B", "C"});
  EXPECT_EQ(d.run_count(), 8u);
  EXPECT_EQ(d.factor_count(), 3u);
  for (std::size_t f = 0; f < 3; ++f) {
    int sum = 0;
    for (const auto& run : d.runs) sum += run[f];
    EXPECT_EQ(sum, 0) << "column " << f << " unbalanced";
  }
  EXPECT_EQ(d.runs[0], (std::vector<int>{-1, -1, -1}));
  EXPECT_EQ(d.runs[7], (std::vector<int>{1, 1, 1}));
}

TEST(FractionalFactorial, GeneratorColumnIsProduct) {
  const Generator g{"D", "ABC"};
  const auto d = fractional_factorial({"A", "B", "C"}, std::span(&g, 1));
  EXPECT_EQ(d.run_count(), 8u);
  EXPECT_EQ(d.factor_count(), 4u);
  for (const auto& run : d.runs) EXPECT_EQ(run[3], run[0] * run[1] * run[2]);
}

TEST(FractionalFactorial, AliasStructureResolutionIV) {
  const Generator g{"D", "ABC"};
  const auto as = alias_structure(3, std::span(&g, 1));
  ASSERT_EQ(as.defining_relation.size(), 1u);
  EXPECT_EQ(as.defining_relation[0], "ABCD");
  EXPECT_EQ(as.resolution, 4);
  // A is aliased with BCD.
  const auto aliases = as.aliases_of("A");
  ASSERT_EQ(aliases.size(), 1u);
  EXPECT_EQ(aliases[0], "BCD");
}

TEST(FractionalFactorial, TwoGeneratorsSubgroup) {
  // 2^(5-2) with D=AB, E=AC: defining relation {ABD, ACE, BCDE}.
  const std::vector<Generator> gs{{"D", "AB"}, {"E", "AC"}};
  const auto as = alias_structure(3, gs);
  EXPECT_EQ(as.defining_relation.size(), 3u);
  EXPECT_EQ(as.resolution, 3);
  std::set<std::string> words(as.defining_relation.begin(),
                              as.defining_relation.end());
  EXPECT_TRUE(words.contains("ABD"));
  EXPECT_TRUE(words.contains("ACE"));
  EXPECT_TRUE(words.contains("BCDE"));
}

// Plackett-Burman orthogonality across the size ladder (Sylvester and
// Paley constructions both covered).
class PlackettBurman : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PlackettBurman, ColumnsAreOrthogonalAndBalanced) {
  const std::size_t k = GetParam();
  std::vector<std::string> names;
  for (std::size_t i = 0; i < k; ++i) names.push_back("F" + std::to_string(i));
  const auto d = plackett_burman(names);
  EXPECT_GT(d.run_count(), k);
  EXPECT_EQ(d.run_count() % 4, 0u);
  for (std::size_t a = 0; a < k; ++a) {
    int sum = 0;
    for (const auto& run : d.runs) sum += run[a];
    EXPECT_EQ(sum, 0) << "column " << a << " unbalanced (N=" << d.run_count() << ")";
    for (std::size_t b = a + 1; b < k; ++b) {
      int dot = 0;
      for (const auto& run : d.runs) dot += run[a] * run[b];
      EXPECT_EQ(dot, 0) << "columns " << a << "," << b << " not orthogonal";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PlackettBurman,
                         ::testing::Values(2, 3, 5, 7, 8, 11, 15, 19, 23, 31));

TEST(PlackettBurman, TooManyFactorsRejected) {
  std::vector<std::string> names(32, "x");
  for (std::size_t i = 0; i < names.size(); ++i) names[i] += std::to_string(i);
  EXPECT_THROW(plackett_burman(names), std::invalid_argument);
}

TEST(EffectEstimation, RecoversPlantedLinearModel) {
  // y = 10 + 3*A - 2*B + 0.5*A*B  (in coded units): the estimated effect
  // of A must be 2*3 = 6, of B -4, of AB 1.
  const auto d = full_factorial_2k({"A", "B"});
  std::vector<double> y;
  for (const auto& run : d.runs)
    y.push_back(10.0 + 3.0 * run[0] - 2.0 * run[1] + 0.5 * run[0] * run[1]);
  EXPECT_NEAR(estimate_effect(d, y, "A"), 6.0, 1e-12);
  EXPECT_NEAR(estimate_effect(d, y, "B"), -4.0, 1e-12);
  EXPECT_NEAR(estimate_effect(d, y, "AB"), 1.0, 1e-12);
  const auto effects = main_effects(d, y);
  EXPECT_NEAR(effects[0], 6.0, 1e-12);
  EXPECT_NEAR(effects[1], -4.0, 1e-12);
}

TEST(EffectEstimation, Errors) {
  const auto d = full_factorial_2k({"A", "B"});
  const std::vector<double> y(4, 0.0);
  EXPECT_THROW((void)estimate_effect(d, std::vector<double>(3, 0.0), "A"),
               std::invalid_argument);
  EXPECT_THROW((void)estimate_effect(d, y, ""), std::invalid_argument);
  EXPECT_THROW((void)estimate_effect(d, y, "C"), std::invalid_argument);
}

TEST(LatinHypercube, OnePointPerStratumInEveryDimension) {
  Rng rng(11);
  const std::size_t n = 16, dims = 3;
  const auto pts = latin_hypercube(dims, n, rng);
  ASSERT_EQ(pts.size(), n);
  for (std::size_t d = 0; d < dims; ++d) {
    std::set<std::size_t> strata;
    for (const auto& p : pts) {
      EXPECT_GE(p[d], 0.0);
      EXPECT_LT(p[d], 1.0);
      strata.insert(static_cast<std::size_t>(p[d] * static_cast<double>(n)));
    }
    EXPECT_EQ(strata.size(), n) << "dimension " << d << " not stratified";
  }
}

TEST(LatinHypercube, Errors) {
  Rng rng(1);
  EXPECT_THROW(latin_hypercube(0, 5, rng), std::invalid_argument);
  EXPECT_THROW(latin_hypercube(2, 0, rng), std::invalid_argument);
}

TEST(Morris, DesignShape) {
  Rng rng(5);
  const auto md = morris_design(4, 6, rng);
  EXPECT_EQ(md.trajectories.size(), 6u);
  EXPECT_EQ(md.evaluation_count(), 6u * 5u);
  for (const auto& t : md.trajectories) {
    EXPECT_EQ(t.points.size(), 5u);
    // Every dimension changed exactly once per trajectory.
    std::set<std::size_t> dims(t.dim_order.begin(), t.dim_order.end());
    EXPECT_EQ(dims.size(), 4u);
    for (const auto& p : t.points)
      for (double x : p) {
        EXPECT_GE(x, -1e-12);
        EXPECT_LE(x, 1.0 + 1e-12);
      }
  }
}

TEST(Morris, RecoversLinearCoefficients) {
  // f(x) = 5 x0 - 3 x1 + 0 x2: mu* must be {5, 3, 0} with sigma ~ 0.
  Rng rng(6);
  const auto md = morris_design(3, 8, rng);
  std::vector<double> evals;
  for (const auto& t : md.trajectories)
    for (const auto& p : t.points) evals.push_back(5.0 * p[0] - 3.0 * p[1]);
  const auto eff = morris_effects(md, evals);
  EXPECT_NEAR(eff.mu_star[0], 5.0, 1e-9);
  EXPECT_NEAR(eff.mu_star[1], 3.0, 1e-9);
  EXPECT_NEAR(eff.mu_star[2], 0.0, 1e-9);
  EXPECT_NEAR(eff.mu[0], 5.0, 1e-9);
  EXPECT_NEAR(eff.mu[1], -3.0, 1e-9);
  EXPECT_NEAR(eff.sigma[0], 0.0, 1e-9);
}

TEST(Morris, InteractionRaisesSigma) {
  // f(x) = x0 * x1: elementary effects of x0 depend on x1 -> sigma > 0.
  Rng rng(7);
  const auto md = morris_design(2, 20, rng);
  std::vector<double> evals;
  for (const auto& t : md.trajectories)
    for (const auto& p : t.points) evals.push_back(p[0] * p[1]);
  const auto eff = morris_effects(md, evals);
  EXPECT_GT(eff.sigma[0], 0.05);
  EXPECT_GT(eff.sigma[1], 0.05);
}

TEST(Morris, Errors) {
  Rng rng(8);
  EXPECT_THROW(morris_design(0, 5, rng), std::invalid_argument);
  EXPECT_THROW(morris_design(2, 5, rng, 3), std::invalid_argument);
  const auto md = morris_design(2, 3, rng);
  EXPECT_THROW(morris_effects(md, std::vector<double>(5, 0.0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace divsec::stats
