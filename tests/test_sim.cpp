// Tests for sim/simulator.h and sim/replication.h.
#include <gtest/gtest.h>

#include <vector>

#include "sim/replication.h"
#include "sim/simulator.h"

namespace divsec::sim {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
}

TEST(Simulator, EqualTimesOrderedByPriorityThenInsertion) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(1.0, [&] { order.push_back(10); }, /*priority=*/1);
  sim.schedule(1.0, [&] { order.push_back(20); }, /*priority=*/0);
  sim.schedule(1.0, [&] { order.push_back(11); }, /*priority=*/1);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{20, 10, 11}));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // already cancelled
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunUntilStopsAtHorizonAndAdvancesClock) {
  Simulator sim;
  int count = 0;
  sim.schedule(1.0, [&] { ++count; });
  sim.schedule(5.0, [&] { ++count; });
  const std::size_t n = sim.run_until(3.0);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now(), 3.0);  // clock advances to the horizon
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, EventsAtExactlyHorizonFire) {
  Simulator sim;
  bool fired = false;
  sim.schedule(2.0, [&] { fired = true; });
  sim.run_until(2.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, HandlersCanScheduleMoreEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> next = [&] {
    if (++chain < 5) sim.schedule_in(1.0, next);
  };
  sim.schedule_in(1.0, next);
  sim.run();
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(sim.now(), 5.0);
}

TEST(Simulator, StopHaltsTheLoop) {
  Simulator sim;
  int count = 0;
  sim.schedule(1.0, [&] {
    ++count;
    sim.stop();
  });
  sim.schedule(2.0, [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.stopped());
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, NullHandlerRejected) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(1.0, Simulator::EventFn{}), std::invalid_argument);
}

TEST(Simulator, ResetClearsEverything) {
  Simulator sim;
  sim.schedule(1.0, [] {});
  sim.run();
  sim.stop();
  sim.reset();
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_FALSE(sim.stopped());
  bool fired = false;
  sim.schedule(0.5, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Replication, DeterministicInSeed) {
  const Experiment e = [](stats::Rng& rng) { return rng.uniform(); };
  const auto a = run_replications(e, 50, 42);
  const auto b = run_replications(e, 50, 42);
  EXPECT_EQ(a.samples, b.samples);
}

TEST(Replication, StreamsAreIndependentOfReplicationCount) {
  // Running 10 then 20 replications: the first 10 samples must agree.
  const Experiment e = [](stats::Rng& rng) { return rng.uniform(); };
  const auto a = run_replications(e, 10, 7);
  const auto b = run_replications(e, 20, 7);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(a.samples[i], b.samples[i]);
}

TEST(Replication, ConfidenceIntervalNarrowsWithMoreReps) {
  const Experiment e = [](stats::Rng& rng) { return rng.uniform(); };
  const auto small = run_replications(e, 20, 3);
  const auto large = run_replications(e, 2000, 3);
  EXPECT_LT(large.confidence_interval().half_width(),
            small.confidence_interval().half_width());
  EXPECT_NEAR(large.stats.mean(), 0.5, 0.03);
}

TEST(Replication, SequentialStopsAtPrecision) {
  const Experiment e = [](stats::Rng& rng) { return 10.0 + rng.uniform(); };
  SequentialOptions opts;
  opts.min_replications = 10;
  opts.max_replications = 5000;
  opts.relative_precision = 0.01;
  const auto r = run_sequential(e, opts, 5);
  EXPECT_LT(r.samples.size(), 5000u);
  EXPECT_LE(r.confidence_interval().half_width(), 0.01 * r.stats.mean());
}

TEST(Replication, SequentialRespectsMaxCap) {
  // High-variance experiment with an unreachable precision target.
  const Experiment e = [](stats::Rng& rng) { return rng.uniform() < 0.5 ? 0.0 : 1e6; };
  SequentialOptions opts;
  opts.min_replications = 5;
  opts.max_replications = 50;
  opts.relative_precision = 1e-9;
  const auto r = run_sequential(e, opts, 6);
  EXPECT_EQ(r.samples.size(), 50u);
}

TEST(Replication, Errors) {
  EXPECT_THROW(run_replications(Experiment{}, 10, 1), std::invalid_argument);
  const Experiment e = [](stats::Rng&) { return 0.0; };
  EXPECT_THROW(run_replications(e, 0, 1), std::invalid_argument);
  SequentialOptions bad;
  bad.min_replications = 1;
  EXPECT_THROW(run_sequential(e, bad, 1), std::invalid_argument);
}

}  // namespace
}  // namespace divsec::sim
