// Tests for divers/gadgets.h and divers/aslr.h — exploit-reuse metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "divers/aslr.h"
#include "divers/gadgets.h"
#include "divers/transforms.h"

namespace divsec::divers {
namespace {

Program sample_program(std::uint64_t seed) {
  stats::Rng rng(seed);
  GeneratorOptions opts;
  opts.blocks = 16;
  opts.instructions_per_block = 10;
  return generate_program(rng, opts);
}

TEST(Gadgets, ExtractionFindsReturnSuffixes) {
  const Program p = sample_program(1);
  const auto gadgets = extract_gadgets(p);
  EXPECT_FALSE(gadgets.empty());
  for (const auto& g : gadgets) {
    EXPECT_FALSE(g.bytes.empty());
    EXPECT_EQ(g.bytes.size() % 4, 0u);
    // Last encoded unit is a return terminator: 0xF0 | kReturn.
    const std::uint8_t tag = g.bytes[g.bytes.size() - 4];
    EXPECT_EQ(tag, 0xF0 | static_cast<std::uint8_t>(TerminatorKind::kReturn));
  }
}

TEST(Gadgets, MaxLengthRespected) {
  const Program p = sample_program(2);
  GadgetOptions opts;
  opts.max_instructions = 2;
  for (const auto& g : extract_gadgets(p, opts))
    EXPECT_LE(g.bytes.size(), (2 + 1) * 4u);
}

TEST(Gadgets, SelfSurvivalIsOne) {
  const Program p = sample_program(3);
  EXPECT_DOUBLE_EQ(gadget_survival(p, p), 1.0);
}

TEST(Gadgets, CrossProgramSurvivalIsNearZero) {
  const Program a = sample_program(4);
  const Program b = sample_program(5);
  EXPECT_LT(gadget_survival(a, b), 0.05);
}

TEST(Gadgets, TransformsReduceSurvivalMonotonically) {
  // Averaged over programs: mild patch-style rebuilds must keep strictly
  // more gadgets usable than the full multicompiler pipeline.
  TransformConfig mild;
  mild.nop_insertion = true;
  mild.nop_density = 0.05;
  mild.instruction_substitution = false;
  mild.register_renaming = false;
  mild.block_reordering = false;

  double acc_mild = 0.0, acc_full = 0.0;
  constexpr int kPrograms = 10;
  for (int i = 0; i < kPrograms; ++i) {
    const Program base = sample_program(600 + i);
    stats::Rng r1(700 + i), r2(800 + i);
    acc_mild += gadget_survival(base, diversify(base, mild, r1));
    acc_full += gadget_survival(base, diversify(base, TransformConfig::all(), r2));
  }
  const double s_mild = acc_mild / kPrograms;
  const double s_full = acc_full / kPrograms;
  EXPECT_LT(s_mild, 1.0);
  EXPECT_GT(s_mild, 0.2);  // patch siblings keep a meaningful fraction
  EXPECT_GT(s_mild, s_full + 0.2);
  EXPECT_LT(s_full, 0.05);
}

TEST(Gadgets, NopInsertionAloneBreaksAddresses) {
  const Program base = sample_program(8);
  stats::Rng rng(9);
  const Program shifted = nop_insertion(base, 0.3, rng);
  EXPECT_LT(gadget_survival(base, shifted), 0.6);
}

TEST(Gadgets, BlockReorderingAloneBreaksLayoutSlots) {
  const Program base = sample_program(12);
  stats::Rng rng(13);
  const Program shuffled = block_reordering(base, rng);
  // Gadget bytes are intact but block slots moved: survival collapses.
  EXPECT_LT(gadget_survival(base, shuffled), 0.3);
}

TEST(Gadgets, EmptyReferenceSurvivesTrivially) {
  // A program whose blocks never return has no gadgets.
  Program p;
  p.blocks.resize(2);
  p.blocks[0].term = {TerminatorKind::kJump, 0, 1, 0};
  p.blocks[1].term = {TerminatorKind::kJump, 0, 0, 0};
  const Program q = sample_program(10);
  EXPECT_DOUBLE_EQ(gadget_survival(p, q), 1.0);
}

TEST(Gadgets, MeanPopulationSurvival) {
  const Program base = sample_program(11);
  stats::Rng rng(12);
  const auto pop = build_population(base, TransformConfig::all(), 6, rng);
  const double s = mean_population_survival(base, pop);
  EXPECT_GE(s, 0.0);
  EXPECT_LT(s, 0.05);
  EXPECT_DOUBLE_EQ(mean_population_survival(base, {}), 1.0);
}

TEST(Aslr, PerAttemptIsTwoToMinusBits) {
  EXPECT_DOUBLE_EQ(AslrModel(0).per_attempt_success(), 1.0);
  EXPECT_DOUBLE_EQ(AslrModel(8).per_attempt_success(), 1.0 / 256.0);
  EXPECT_DOUBLE_EQ(AslrModel(16).per_attempt_success(), 1.0 / 65536.0);
}

TEST(Aslr, SuccessWithinIsMonotoneAndBounded) {
  const AslrModel m(12);
  double prev = 0.0;
  for (std::uint64_t n : {1ull, 10ull, 100ull, 10000ull, 1000000ull}) {
    const double p = m.success_within(n);
    EXPECT_GE(p, prev);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
  EXPECT_NEAR(m.success_within(1), m.per_attempt_success(), 1e-15);
  EXPECT_NEAR(AslrModel(0).success_within(1), 1.0, 1e-15);
}

TEST(Aslr, ExpectedAttemptsMatchesEntropy) {
  EXPECT_DOUBLE_EQ(AslrModel(10).expected_attempts(), 1024.0);
}

TEST(Aslr, SampledAttemptsAreGeometric) {
  const AslrModel m(6);  // p = 1/64, mean 64
  stats::Rng rng(13);
  double acc = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i)
    acc += static_cast<double>(m.sample_attempts(rng));
  EXPECT_NEAR(acc / kN, 64.0, 2.5);
}

TEST(Aslr, ZeroEntropySamplesOneAttempt) {
  const AslrModel m(0);
  stats::Rng rng(14);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(m.sample_attempts(rng), 1u);
}

TEST(Aslr, RejectsBadEntropy) {
  EXPECT_THROW(AslrModel(-1), std::invalid_argument);
  EXPECT_THROW(AslrModel(49), std::invalid_argument);
}

}  // namespace
}  // namespace divsec::divers
