// Tests for stats/special.h — special functions against reference values.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/special.h"

namespace divsec::stats {
namespace {

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(normal_cdf(-1.0), 0.15865525393145705, 1e-10);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(normal_cdf(-3.0), 0.0013498980316300933, 1e-10);
}

TEST(NormalQuantile, RoundTripsWithCdf) {
  for (double p : {0.001, 0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-10) << "p=" << p;
  }
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-10);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-8);
  EXPECT_NEAR(normal_quantile(0.95), 1.6448536269514722, 1e-8);
}

TEST(NormalQuantile, RejectsOutOfRange) {
  EXPECT_THROW((void)normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW((void)normal_quantile(1.0), std::invalid_argument);
  EXPECT_THROW((void)normal_quantile(-0.5), std::invalid_argument);
}

TEST(RegGamma, ComplementaryPair) {
  for (double a : {0.5, 1.0, 2.5, 10.0}) {
    for (double x : {0.1, 1.0, 3.0, 20.0}) {
      EXPECT_NEAR(reg_gamma_p(a, x) + reg_gamma_q(a, x), 1.0, 1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(RegGamma, ExponentialSpecialCase) {
  // P(1, x) = 1 - e^{-x}.
  for (double x : {0.2, 1.0, 2.0, 5.0})
    EXPECT_NEAR(reg_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
}

TEST(RegGamma, BoundaryAndErrors) {
  EXPECT_EQ(reg_gamma_p(2.0, 0.0), 0.0);
  EXPECT_EQ(reg_gamma_q(2.0, 0.0), 1.0);
  EXPECT_THROW((void)reg_gamma_p(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)reg_gamma_p(1.0, -1.0), std::invalid_argument);
}

TEST(RegBeta, SymmetryIdentity) {
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  for (double a : {0.5, 2.0, 7.0}) {
    for (double b : {1.0, 3.5}) {
      for (double x : {0.1, 0.4, 0.8}) {
        EXPECT_NEAR(reg_beta(a, b, x), 1.0 - reg_beta(b, a, 1.0 - x), 1e-11);
      }
    }
  }
}

TEST(RegBeta, UniformSpecialCase) {
  // I_x(1,1) = x.
  for (double x : {0.0, 0.25, 0.5, 0.9, 1.0})
    EXPECT_NEAR(reg_beta(1.0, 1.0, x), x, 1e-12);
}

TEST(RegBeta, Errors) {
  EXPECT_THROW((void)reg_beta(0.0, 1.0, 0.5), std::invalid_argument);
  EXPECT_THROW((void)reg_beta(1.0, 1.0, 1.5), std::invalid_argument);
  EXPECT_THROW((void)reg_beta(1.0, 1.0, -0.1), std::invalid_argument);
}

TEST(StudentT, MatchesNormalForLargeNu) {
  for (double t : {-2.0, -0.5, 0.0, 1.0, 2.5})
    EXPECT_NEAR(student_t_cdf(t, 1e6), normal_cdf(t), 1e-5);
}

TEST(StudentT, KnownValues) {
  // t(nu=1) is Cauchy: CDF(1) = 3/4.
  EXPECT_NEAR(student_t_cdf(1.0, 1.0), 0.75, 1e-10);
  EXPECT_NEAR(student_t_cdf(0.0, 5.0), 0.5, 1e-12);
  // Classic table: t_{0.975, 10} = 2.228138852.
  EXPECT_NEAR(student_t_quantile(0.975, 10.0), 2.2281388519649385, 1e-6);
  EXPECT_NEAR(student_t_quantile(0.95, 5.0), 2.015048372669157, 1e-6);
}

TEST(StudentT, QuantileRoundTrip) {
  for (double nu : {1.0, 3.0, 12.0, 100.0}) {
    for (double p : {0.05, 0.3, 0.5, 0.9, 0.995}) {
      EXPECT_NEAR(student_t_cdf(student_t_quantile(p, nu), nu), p, 1e-7)
          << "nu=" << nu << " p=" << p;
    }
  }
}

TEST(FDistribution, CdfPlusSurvivalIsOne) {
  for (double x : {0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(f_cdf(x, 3.0, 12.0) + f_sf(x, 3.0, 12.0), 1.0, 1e-12);
  }
}

TEST(FDistribution, KnownCriticalValues) {
  // F_{0.95}(d1=5, d2=10) = 3.325835; the CDF there must be 0.95.
  EXPECT_NEAR(f_cdf(3.3258345231674354, 5.0, 10.0), 0.95, 1e-7);
  // F(1, n) is t^2: P[F(1,7) <= t^2] = 2*P[t(7) <= t] - 1 for t > 0.
  const double t = 1.7;
  EXPECT_NEAR(f_cdf(t * t, 1.0, 7.0), 2.0 * student_t_cdf(t, 7.0) - 1.0, 1e-10);
}

TEST(FDistribution, EdgesAndErrors) {
  EXPECT_EQ(f_cdf(0.0, 2.0, 3.0), 0.0);
  EXPECT_EQ(f_sf(0.0, 2.0, 3.0), 1.0);
  EXPECT_EQ(f_cdf(-1.0, 2.0, 3.0), 0.0);
  EXPECT_THROW((void)f_cdf(1.0, 0.0, 3.0), std::invalid_argument);
  EXPECT_THROW((void)f_sf(1.0, 2.0, -1.0), std::invalid_argument);
}

TEST(Chi2, MatchesGammaRelation) {
  // chi2(k=2) is Exponential(1/2): CDF(x) = 1 - e^{-x/2}.
  for (double x : {0.5, 2.0, 6.0})
    EXPECT_NEAR(chi2_cdf(x, 2.0), 1.0 - std::exp(-x / 2.0), 1e-12);
}

TEST(Chi2, KnownCriticalValue) {
  // chi2_{0.95, 3} = 7.814727903.
  EXPECT_NEAR(chi2_cdf(7.814727903251179, 3.0), 0.95, 1e-9);
  EXPECT_NEAR(chi2_sf(7.814727903251179, 3.0), 0.05, 1e-9);
}

}  // namespace
}  // namespace divsec::stats
