// Tests for scada/historian.h — archive, alarms, anomaly detection.
#include <gtest/gtest.h>

#include <cmath>

#include "scada/historian.h"

namespace divsec::scada {
namespace {

TEST(Historian, RecordAndQuery) {
  Historian h;
  h.record("t", 0.0, 1.0);
  h.record("t", 1.0, 2.0);
  h.record("t", 2.0, 3.0);
  EXPECT_EQ(h.sample_count("t"), 3u);
  EXPECT_EQ(h.sample_count("other"), 0u);
  const auto latest = h.latest("t");
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->value, 3.0);
  EXPECT_EQ(h.query("t", 1.0).size(), 2u);
  EXPECT_FALSE(h.latest("missing").has_value());
  EXPECT_EQ(h.tags(), (std::vector<std::string>{"t"}));
}

TEST(Historian, RejectsTimeTravel) {
  Historian h;
  h.record("t", 5.0, 1.0);
  EXPECT_THROW(h.record("t", 4.0, 1.0), std::invalid_argument);
  // Other tags are unaffected.
  EXPECT_NO_THROW(h.record("u", 0.0, 1.0));
}

TEST(Historian, RingCapacityEvictsOldest) {
  Historian h(/*capacity_per_tag=*/3);
  for (int i = 0; i < 5; ++i) h.record("t", i, i * 10.0);
  EXPECT_EQ(h.sample_count("t"), 3u);
  const auto samples = h.query("t", 0.0);
  EXPECT_EQ(samples.front().value, 20.0);  // 0 and 10 evicted
  EXPECT_THROW(Historian(0), std::invalid_argument);
}

TEST(Historian, WindowStats) {
  Historian h;
  for (int i = 0; i < 10; ++i) h.record("t", i, static_cast<double>(i));
  const auto w = h.window_stats("t", 5.0);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->n, 5u);  // samples at t = 5..9
  EXPECT_DOUBLE_EQ(w->mean, 7.0);
  EXPECT_DOUBLE_EQ(w->min, 5.0);
  EXPECT_DOUBLE_EQ(w->max, 9.0);
  EXPECT_NEAR(w->variance, 2.5, 1e-12);
  EXPECT_FALSE(h.window_stats("t", 100.0).has_value());
}

TEST(AlarmEngine, HighAlarmWithDeadbandRearm) {
  AlarmEngine e;
  e.add_rule({"temp", 30.0, 10.0, 1.0});
  EXPECT_TRUE(e.evaluate("temp", 0.0, 25.0).empty());
  const auto raised = e.evaluate("temp", 1.0, 31.0);
  ASSERT_EQ(raised.size(), 1u);
  EXPECT_EQ(raised[0].reason, "high");
  // Still above: no duplicate alarm.
  EXPECT_TRUE(e.evaluate("temp", 2.0, 32.0).empty());
  // Dips below limit but inside deadband: still armed-off.
  EXPECT_TRUE(e.evaluate("temp", 3.0, 29.5).empty());
  // Below limit - deadband: re-arms.
  EXPECT_TRUE(e.evaluate("temp", 4.0, 28.5).empty());
  EXPECT_EQ(e.evaluate("temp", 5.0, 30.5).size(), 1u);
  EXPECT_EQ(e.alarm_log().size(), 2u);
}

TEST(AlarmEngine, LowAlarm) {
  AlarmEngine e;
  e.add_rule({"temp", 30.0, 10.0, 0.5});
  const auto raised = e.evaluate("temp", 1.0, 9.0);
  ASSERT_EQ(raised.size(), 1u);
  EXPECT_EQ(raised[0].reason, "low");
}

TEST(AlarmEngine, RulesAreTagScoped) {
  AlarmEngine e;
  e.add_rule({"a", 10.0, 0.0, 0.1});
  EXPECT_TRUE(e.evaluate("b", 0.0, 100.0).empty());
}

TEST(AlarmEngine, FirstAlarmTime) {
  AlarmEngine e;
  e.add_rule({"a", 10.0, 0.0, 0.1});
  EXPECT_FALSE(e.first_alarm_time().has_value());
  e.evaluate("a", 7.0, 11.0);
  ASSERT_TRUE(e.first_alarm_time().has_value());
  EXPECT_EQ(*e.first_alarm_time(), 7.0);
}

TEST(AlarmEngine, RuleValidation) {
  AlarmEngine e;
  EXPECT_THROW(e.add_rule({"a", 1.0, 2.0, 0.1}), std::invalid_argument);
  EXPECT_THROW(e.add_rule({"a", 2.0, 1.0, -0.1}), std::invalid_argument);
}

TEST(AnomalyDetector, StuckValueFlagsReplays) {
  Historian h;
  // A frozen (spoofed-constant) signal for 10 minutes at 1 Hz.
  for (int i = 0; i < 600; ++i) h.record("t", i, 24.0);
  const AnomalyDetector d;
  const auto alarms = d.inspect(h, "t", 600.0);
  ASSERT_FALSE(alarms.empty());
  EXPECT_EQ(alarms[0].reason, "stuck");
}

TEST(AnomalyDetector, LiveNoisySignalPasses) {
  Historian h;
  for (int i = 0; i < 600; ++i)
    h.record("t", i, 24.0 + 0.1 * std::sin(i * 0.05));
  const AnomalyDetector d;
  EXPECT_TRUE(d.inspect(h, "t", 600.0).empty());
}

TEST(AnomalyDetector, RateOfChangeFlagsPhysicallyImpossibleJumps) {
  Historian h;
  for (int i = 0; i < 100; ++i)
    h.record("t", i, 24.0 + 0.02 * i);  // includes natural variation
  h.record("t", 100.0, 80.0);           // instant +54 C: tampering
  AnomalyDetector::Options opts;
  opts.window_s = 200.0;
  opts.min_samples = 10;
  const AnomalyDetector d(opts);
  const auto alarms = d.inspect(h, "t", 101.0);
  ASSERT_FALSE(alarms.empty());
  bool has_rate = false;
  for (const auto& a : alarms) has_rate |= (a.reason == "rate-of-change");
  EXPECT_TRUE(has_rate);
}

TEST(AnomalyDetector, NeedsMinimumSamples) {
  Historian h;
  for (int i = 0; i < 5; ++i) h.record("t", i, 24.0);
  const AnomalyDetector d;
  EXPECT_TRUE(d.inspect(h, "t", 5.0).empty());  // too few samples to judge
}

TEST(AnomalyDetector, OptionValidation) {
  AnomalyDetector::Options bad;
  bad.window_s = 0.0;
  EXPECT_THROW(AnomalyDetector{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace divsec::scada
