// Parameterized property suites spanning modules: protocol framing
// robustness, SAN first-passage laws across delay distributions,
// campaign invariants across threat profiles and firewall policies, and
// transform semantics across transform kinds and program seeds.
#include <gtest/gtest.h>

#include <cmath>

#include "attack/campaign.h"
#include "divers/transforms.h"
#include "san/analysis.h"
#include "scada/protocol.h"

namespace divsec {
namespace {

// ---------------------------------------------------------------------------
// Protocol: random byte strings never crash the decoder, and anything the
// decoder accepts must round-trip to identical bytes.
class ProtocolFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolFuzz, RandomFramesAreRejectedOrRoundTrip) {
  stats::Rng rng(GetParam());
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t len = rng.below(16);
    std::vector<std::uint8_t> frame(len);
    for (auto& b : frame) b = static_cast<std::uint8_t>(rng.below(256));
    const auto req = scada::decode_request(frame);
    if (req.has_value()) {
      // Anything accepted must re-encode to the exact same frame (the
      // format is canonical).
      EXPECT_EQ(scada::encode_request(*req), frame);
    }
    const auto resp = scada::decode_response(frame);
    if (resp.has_value()) {
      EXPECT_EQ(scada::encode_response(*resp), frame);
    }
  }
}

TEST_P(ProtocolFuzz, SingleBitFlipsAreAlwaysDetected) {
  stats::Rng rng(GetParam() ^ 0xF00D);
  const scada::Request r{
      static_cast<std::uint8_t>(rng.below(256)),
      rng.bernoulli(0.5) ? scada::FunctionCode::kReadHoldingRegisters
                         : scada::FunctionCode::kWriteSingleRegister,
      static_cast<std::uint16_t>(rng.below(65536)),
      static_cast<std::uint16_t>(1 + rng.below(100))};
  const auto frame = scada::encode_request(r);
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupted = frame;
      corrupted[byte] ^= static_cast<std::uint8_t>(1u << bit);
      const auto decoded = scada::decode_request(corrupted);
      // CRC-16 detects all single-bit errors.
      EXPECT_FALSE(decoded.has_value())
          << "byte " << byte << " bit " << bit << " slipped through";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzz, ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------------
// SAN: for a single enabled transition with delay distribution D, the
// first-passage time IS D: the Monte-Carlo mean must match D's mean.
struct DelayCase {
  const char* name;
  stats::Distribution dist;
};

class SanDelayLaw : public ::testing::TestWithParam<DelayCase> {};

TEST_P(SanDelayLaw, FirstPassageMeanMatchesDistributionMean) {
  san::SanModel m;
  const auto src = m.add_place("src", 1);
  const auto dst = m.add_place("dst", 0);
  const auto a = m.add_timed_activity("fire", GetParam().dist);
  m.add_input_arc(a, src);
  m.add_output_arc(a, dst);
  const auto fp = san::first_passage(
      m, [dst](const san::Marking& mk) { return mk[dst] >= 1; }, 1e6, 30000, 11);
  ASSERT_EQ(fp.censored, 0u);
  const double mean = GetParam().dist.mean();
  const double tol =
      0.01 * mean + 4.0 * std::sqrt(GetParam().dist.variance() / 30000.0);
  EXPECT_NEAR(fp.conditional_mean(), mean, tol) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, SanDelayLaw,
    ::testing::Values(DelayCase{"exponential", stats::Exponential{0.5}},
                      DelayCase{"weibull", stats::Weibull{1.8, 3.0}},
                      DelayCase{"lognormal", stats::Lognormal{0.5, 0.4}},
                      DelayCase{"erlang", stats::Erlang{3, 1.5}},
                      DelayCase{"uniform", stats::Uniform{1.0, 5.0}},
                      DelayCase{"triangular", stats::Triangular{2.0, 3.0, 7.0}}),
    [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Campaign invariants across (threat profile, firewall policy).
struct CampaignCase {
  const char* name;
  int profile;   // 0 stuxnet, 1 duqu, 2 flame
  bool permissive_firewall;
};

class CampaignInvariants : public ::testing::TestWithParam<CampaignCase> {
 protected:
  static attack::ThreatProfile profile_of(int id) {
    switch (id) {
      case 1: return attack::ThreatProfile::duqu();
      case 2: return attack::ThreatProfile::flame();
      default: return attack::ThreatProfile::stuxnet();
    }
  }
};

TEST_P(CampaignInvariants, TimelinesAreConsistent) {
  const divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  attack::Scenario sc = attack::make_scope_cooling_scenario();
  if (GetParam().permissive_firewall) sc.firewall = net::Firewall::permissive();
  attack::CampaignOptions opts;
  opts.record_events = true;
  const attack::CampaignSimulator sim(sc, profile_of(GetParam().profile), cat, {},
                                      opts);
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    stats::Rng rng(seed);
    const attack::CampaignResult r = sim.run(rng);
    // Ordering invariants among the milestone timestamps.
    if (r.first_root) {
      ASSERT_TRUE(r.time_of_entry.has_value());
      EXPECT_GE(*r.first_root, *r.time_of_entry);
    }
    if (r.first_plc_compromise) {
      ASSERT_TRUE(r.first_root.has_value());
      EXPECT_GE(*r.first_plc_compromise, *r.first_root);
    }
    if (r.time_to_attack) {
      ASSERT_TRUE(r.first_plc_compromise.has_value());
      EXPECT_GE(*r.time_to_attack, *r.first_plc_compromise);
    }
    // All timestamps within the horizon; ratio curve in [0,1], monotone.
    for (const auto& [t, ratio] : r.compromised_ratio) {
      EXPECT_GE(t, 0.0);
      EXPECT_LE(t, 2160.0);
      EXPECT_GE(ratio, 0.0);
      EXPECT_LE(ratio, 1.0);
    }
    // Success implies not detected earlier.
    if (r.attack_succeeded() && r.time_to_detection) {
      EXPECT_LE(*r.time_to_attack, *r.time_to_detection);
    }
    // Espionage profiles never impair.
    if (GetParam().profile != 0) {
      EXPECT_FALSE(r.time_to_attack.has_value());
    }
  }
}

TEST_P(CampaignInvariants, PermissiveFirewallNeverReducesSpread) {
  if (GetParam().permissive_firewall) GTEST_SKIP() << "baseline case";
  const divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  attack::Scenario segmented = attack::make_scope_cooling_scenario();
  attack::Scenario flat = segmented;
  flat.firewall = net::Firewall::permissive();
  const auto profile = profile_of(GetParam().profile);
  const attack::CampaignSimulator seg_sim(segmented, profile, cat);
  const attack::CampaignSimulator flat_sim(flat, profile, cat);
  double seg_ratio = 0.0, flat_ratio = 0.0;
  constexpr std::size_t kReps = 60;
  for (std::size_t i = 0; i < kReps; ++i) {
    stats::Rng r1(42, i), r2(42, i);
    seg_ratio += seg_sim.run(r1).compromised_ratio.back().second;
    flat_ratio += flat_sim.run(r2).compromised_ratio.back().second;
  }
  // Averaged over seeds, the flat network spreads at least as far.
  EXPECT_GE(flat_ratio, seg_ratio * 0.95);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CampaignInvariants,
    ::testing::Values(CampaignCase{"stuxnet_segmented", 0, false},
                      CampaignCase{"stuxnet_flat", 0, true},
                      CampaignCase{"duqu_segmented", 1, false},
                      CampaignCase{"flame_segmented", 2, false},
                      CampaignCase{"flame_flat", 2, true}),
    [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Transforms: semantics preservation as a (transform kind x seed) matrix.
struct TransformCase {
  const char* name;
  int kind;  // 0 nop, 1 subst, 2 rename, 3 reorder, 4 all
};

class TransformSemantics
    : public ::testing::TestWithParam<std::tuple<TransformCase, std::uint64_t>> {};

TEST_P(TransformSemantics, OutputEquivalentOnRandomInputs) {
  const auto& [tc, seed] = GetParam();
  stats::Rng gen(seed);
  const divers::Program original = divers::generate_program(gen);
  stats::Rng trng(seed ^ 0x5EED);
  divers::Program variant;
  switch (tc.kind) {
    case 0: variant = divers::nop_insertion(original, 0.4, trng); break;
    case 1: variant = divers::instruction_substitution(original, 1.0, trng); break;
    case 2: variant = divers::register_renaming(original, trng); break;
    case 3: variant = divers::block_reordering(original, trng); break;
    default:
      variant = divers::diversify(original, divers::TransformConfig::all(), trng);
  }
  for (std::uint64_t in = 0; in < 3; ++in) {
    stats::Rng irng(in);
    std::vector<std::int64_t> input(divers::kMemoryWords);
    for (auto& w : input) w = static_cast<std::int64_t>(irng.below(2000)) - 1000;
    const auto a = divers::execute(original, input);
    const auto b = divers::execute(variant, input);
    ASSERT_FALSE(a.hit_step_limit);
    ASSERT_FALSE(b.hit_step_limit);
    EXPECT_EQ(a.memory, b.memory) << tc.name << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, TransformSemantics,
    ::testing::Combine(::testing::Values(TransformCase{"nop", 0},
                                         TransformCase{"subst", 1},
                                         TransformCase{"rename", 2},
                                         TransformCase{"reorder", 3},
                                         TransformCase{"all", 4}),
                       ::testing::Values(11, 22, 33, 44, 55, 66)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace divsec
