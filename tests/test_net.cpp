// Tests for net/ — topology, firewall policy, reachability.
#include <gtest/gtest.h>

#include "net/firewall.h"
#include "net/reachability.h"
#include "net/topology.h"

namespace divsec::net {
namespace {

Topology two_zone() {
  Topology t;
  t.add_node("corp", Zone::kCorporate, Role::kWorkstation, true);
  t.add_node("ctl", Zone::kControl, Role::kScadaServer, false);
  t.add_node("plc", Zone::kField, Role::kPlc, false);
  t.connect(0, 1);
  t.connect(1, 2);
  return t;
}

TEST(Topology, AddAndLookup) {
  const Topology t = two_zone();
  EXPECT_EQ(t.node_count(), 3u);
  EXPECT_EQ(t.link_count(), 2u);
  EXPECT_EQ(t.node_by_name("ctl"), 1u);
  EXPECT_THROW((void)t.node_by_name("nope"), std::out_of_range);
  EXPECT_EQ(t.node(0).zone, Zone::kCorporate);
  EXPECT_TRUE(t.node(0).usb_exposure);
}

TEST(Topology, DuplicateNamesRejected) {
  Topology t;
  t.add_node("a", Zone::kCorporate, Role::kServer);
  EXPECT_THROW(t.add_node("a", Zone::kDmz, Role::kServer), std::invalid_argument);
  EXPECT_THROW(t.add_node("", Zone::kDmz, Role::kServer), std::invalid_argument);
}

TEST(Topology, LinksAreUndirectedAndIdempotent) {
  Topology t = two_zone();
  EXPECT_TRUE(t.linked(0, 1));
  EXPECT_TRUE(t.linked(1, 0));
  EXPECT_FALSE(t.linked(0, 2));
  t.connect(0, 1);  // idempotent
  EXPECT_EQ(t.link_count(), 2u);
  EXPECT_THROW(t.connect(0, 0), std::invalid_argument);
  EXPECT_THROW(t.connect(0, 9), std::out_of_range);
}

TEST(Topology, RoleAndZoneQueries) {
  const Topology t = two_zone();
  EXPECT_EQ(t.nodes_with_role(Role::kPlc), (std::vector<NodeId>{2}));
  EXPECT_EQ(t.nodes_in_zone(Zone::kControl), (std::vector<NodeId>{1}));
  EXPECT_EQ(t.neighbors(1).size(), 2u);
}

TEST(Topology, ToStringCoverage) {
  EXPECT_STREQ(to_string(Zone::kDmz), "dmz");
  EXPECT_STREQ(to_string(Role::kEngineering), "engineering");
  EXPECT_STREQ(to_string(Channel::kPrintSpooler), "spooler");
}

TEST(Firewall, DefaultActionApplies) {
  const Firewall deny(Action::kDeny);
  EXPECT_FALSE(deny.allows(Zone::kCorporate, Zone::kControl, Channel::kHttp));
  const Firewall allow = Firewall::permissive();
  EXPECT_TRUE(allow.allows(Zone::kCorporate, Zone::kControl, Channel::kHttp));
}

TEST(Firewall, SameZoneAlwaysAllowed) {
  const Firewall deny(Action::kDeny);
  EXPECT_TRUE(deny.allows(Zone::kControl, Zone::kControl, Channel::kSmbShare));
}

TEST(Firewall, FirstMatchWins) {
  Firewall fw(Action::kAllow);
  fw.add_rule({Zone::kCorporate, Zone::kControl, std::nullopt, Action::kDeny, ""});
  fw.add_rule({Zone::kCorporate, Zone::kControl, Channel::kHttp, Action::kAllow, ""});
  // The broad deny precedes the specific allow: deny wins.
  EXPECT_FALSE(fw.allows(Zone::kCorporate, Zone::kControl, Channel::kHttp));
}

TEST(Firewall, WildcardsMatchAnything) {
  Firewall fw(Action::kDeny);
  fw.add_rule({std::nullopt, std::nullopt, Channel::kModbus, Action::kAllow, ""});
  EXPECT_TRUE(fw.allows(Zone::kCorporate, Zone::kField, Channel::kModbus));
  EXPECT_FALSE(fw.allows(Zone::kCorporate, Zone::kField, Channel::kHttp));
}

TEST(Firewall, SegmentedIcsPolicyShape) {
  const Firewall fw = Firewall::segmented_ics();
  // Allowed paths.
  EXPECT_TRUE(fw.allows(Zone::kCorporate, Zone::kDmz, Channel::kHttp));
  EXPECT_TRUE(fw.allows(Zone::kControl, Zone::kField, Channel::kModbus));
  EXPECT_TRUE(fw.allows(Zone::kControl, Zone::kField, Channel::kProjectFile));
  // Blocked paths (the ones worms want).
  EXPECT_FALSE(fw.allows(Zone::kCorporate, Zone::kControl, Channel::kSmbShare));
  EXPECT_FALSE(fw.allows(Zone::kCorporate, Zone::kField, Channel::kModbus));
  EXPECT_FALSE(fw.allows(Zone::kDmz, Zone::kControl, Channel::kSmbShare));
  EXPECT_FALSE(fw.allows(Zone::kField, Zone::kCorporate, Channel::kHttp));
}

TEST(Reachability, LinkAndPolicyBothRequired) {
  const Topology t = two_zone();
  const Firewall fw = Firewall::segmented_ics();
  // corp -> ctl linked, but corporate->control smb is denied.
  EXPECT_FALSE(can_reach(t, fw, 0, 1, Channel::kSmbShare));
  // ctl -> plc linked and modbus allowed.
  EXPECT_TRUE(can_reach(t, fw, 1, 2, Channel::kModbus));
  // corp -> plc not linked at all.
  EXPECT_FALSE(can_reach(t, fw, 0, 2, Channel::kModbus));
}

TEST(Reachability, UsbCrossesAirGapsBetweenExposedNodes) {
  Topology t;
  t.add_node("laptop", Zone::kCorporate, Role::kWorkstation, true);
  t.add_node("eng", Zone::kControl, Role::kEngineering, true);
  t.add_node("locked", Zone::kControl, Role::kScadaServer, false);
  // No links at all: an air gap.
  const Firewall fw(Action::kDeny);
  EXPECT_TRUE(can_reach(t, fw, 0, 1, Channel::kUsb));
  EXPECT_FALSE(can_reach(t, fw, 0, 2, Channel::kUsb));  // no media exposure
}

TEST(Reachability, SelfReachIsFalse) {
  const Topology t = two_zone();
  EXPECT_FALSE(can_reach(t, Firewall::permissive(), 1, 1, Channel::kHttp));
}

TEST(ShortestAttackPath, FindsMultiHopRoute) {
  const Topology t = two_zone();
  const Firewall fw = Firewall::permissive();
  const auto path =
      shortest_attack_path(t, fw, 0, 2, {Channel::kSmbShare, Channel::kModbus});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<NodeId>{0, 1, 2}));
}

TEST(ShortestAttackPath, RespectsFirewall) {
  const Topology t = two_zone();
  Firewall fw(Action::kDeny);  // nothing crosses zones
  const auto path = shortest_attack_path(t, fw, 0, 2, {Channel::kSmbShare});
  EXPECT_FALSE(path.has_value());
}

TEST(ShortestAttackPath, TrivialAndInvalid) {
  const Topology t = two_zone();
  const auto self = shortest_attack_path(t, Firewall::permissive(), 1, 1, {});
  ASSERT_TRUE(self.has_value());
  EXPECT_EQ(self->size(), 1u);
  EXPECT_THROW(
      shortest_attack_path(t, Firewall::permissive(), 0, 9, {Channel::kHttp}),
      std::out_of_range);
}

TEST(ReachabilityGraph, EdgesMatchCanReach) {
  const Topology t = two_zone();
  const Firewall fw = Firewall::permissive();
  const auto g = reachability_graph(t, fw, {Channel::kHttp});
  ASSERT_EQ(g.size(), 3u);
  EXPECT_EQ(g[0], (std::vector<NodeId>{1}));
  EXPECT_EQ(g[1], (std::vector<NodeId>{0, 2}));
}

TEST(AttackSurface, UnionOfShortestPaths) {
  const Topology t = two_zone();
  const Firewall fw = Firewall::permissive();
  const std::size_t n =
      attack_surface_size(t, fw, 0, {2}, {Channel::kSmbShare, Channel::kModbus});
  EXPECT_EQ(n, 3u);  // 0 -> 1 -> 2
  EXPECT_EQ(attack_surface_size(t, Firewall(Action::kDeny), 0, {2},
                                {Channel::kSmbShare}),
            0u);
}

}  // namespace
}  // namespace divsec::net
