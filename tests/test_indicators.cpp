// Tests for core/indicators.h — staged-model derivation and measurement
// engines.
#include <gtest/gtest.h>

#include "core/indicators.h"

namespace divsec::core {
namespace {

class IndicatorsFixture : public ::testing::Test {
 protected:
  divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  SystemDescription desc = make_scope_description(cat);
  attack::ThreatProfile stuxnet = attack::ThreatProfile::stuxnet();
  attack::DetectionModel det{};
};

TEST_F(IndicatorsFixture, DerivedModelValidatesAndReflectsMonoculture) {
  const auto m = derive_staged_model(desc, desc.baseline_configuration(), stuxnet, det);
  EXPECT_NO_THROW(m.validate());
  // Monoculture: the zero-days land nearly at full strength.
  EXPECT_GT(m.transitions[0].success_probability, 0.7);
  EXPECT_GT(m.transitions[3].success_probability, 0.5);
  EXPECT_GT(m.impairment_detection_rate, 0.0);
}

TEST_F(IndicatorsFixture, ResilientPlcLowersPayloadStage) {
  Configuration c = desc.baseline_configuration();
  const auto base = derive_staged_model(desc, c, stuxnet, det);
  c.variant[2] = cat.count(divers::ComponentKind::kPlcFirmware) - 1;  // abb
  const auto hard = derive_staged_model(desc, c, stuxnet, det);
  EXPECT_LT(hard.transitions[3].success_probability,
            0.2 * base.transitions[3].success_probability);
  // Other stages unchanged.
  EXPECT_DOUBLE_EQ(hard.transitions[0].success_probability,
                   base.transitions[0].success_probability);
}

TEST_F(IndicatorsFixture, DiverseOsSlowsActivationAndRaisesFailureDetection) {
  Configuration c = desc.baseline_configuration();
  const auto base = derive_staged_model(desc, c, stuxnet, det);
  c.variant[0] = 2;  // corporate OS -> linux (entry nodes live there)
  c.variant[1] = 2;  // control OS -> linux
  const auto hard = derive_staged_model(desc, c, stuxnet, det);
  EXPECT_LT(hard.transitions[0].success_probability,
            base.transitions[0].success_probability);
  // More failures at the same attempt rate => more failure-triggered
  // detection.
  EXPECT_GT(hard.transitions[1].detection_rate, base.transitions[1].detection_rate);
}

TEST_F(IndicatorsFixture, SpoofingSuppressesImpairmentDetection) {
  attack::ThreatProfile naked = stuxnet;
  naked.spoof_effectiveness = 0.0;
  const auto with_spoof =
      derive_staged_model(desc, desc.baseline_configuration(), stuxnet, det);
  const auto without =
      derive_staged_model(desc, desc.baseline_configuration(), naked, det);
  EXPECT_LT(with_spoof.impairment_detection_rate,
            0.1 * without.impairment_detection_rate);
}

TEST_F(IndicatorsFixture, SanEngineMeasuresAllIndicators) {
  MeasurementOptions mo;
  mo.engine = Engine::kStagedSan;
  mo.replications = 300;
  mo.seed = 7;
  const IndicatorSummary s =
      measure_indicators(desc, desc.baseline_configuration(), stuxnet, mo);
  EXPECT_EQ(s.replications, 300u);
  EXPECT_EQ(s.samples.size(), 300u);
  EXPECT_EQ(s.tta.count(), 300u);
  EXPECT_GT(s.attack_success_probability(), 0.0);
  EXPECT_LE(s.attack_success_probability(), 1.0);
  // Censored counts match the per-sample flags.
  std::size_t censored = 0;
  for (const auto& smp : s.samples)
    if (smp.tta_censored) ++censored;
  EXPECT_EQ(censored, s.tta_censored);
  // Censored values sit exactly at the horizon.
  for (const auto& smp : s.samples) {
    if (smp.tta_censored) {
      EXPECT_DOUBLE_EQ(smp.tta, s.horizon_hours);
    }
    EXPECT_LE(smp.tta, s.horizon_hours);
  }
}

TEST_F(IndicatorsFixture, CampaignEngineMeasuresRatio) {
  MeasurementOptions mo;
  mo.engine = Engine::kCampaign;
  mo.replications = 60;
  mo.seed = 9;
  const IndicatorSummary s =
      measure_indicators(desc, desc.baseline_configuration(), stuxnet, mo);
  EXPECT_GT(s.final_ratio.mean(), 0.0);
  EXPECT_LE(s.final_ratio.max(), 1.0);
}

TEST_F(IndicatorsFixture, EnginesAgreeOnDiversityDirection) {
  // Both engines must rank monoculture as easier prey than the
  // diversified configuration.
  Configuration diverse = desc.baseline_configuration();
  diverse.variant[1] = 2;
  diverse.variant[2] = 3;
  for (Engine engine : {Engine::kStagedSan, Engine::kCampaign}) {
    MeasurementOptions mo;
    mo.engine = engine;
    mo.replications = engine == Engine::kCampaign ? 100 : 400;
    mo.seed = 11;
    const auto mono =
        measure_indicators(desc, desc.baseline_configuration(), stuxnet, mo);
    const auto div = measure_indicators(desc, diverse, stuxnet, mo);
    EXPECT_GT(mono.attack_success_probability(),
              div.attack_success_probability())
        << "engine " << static_cast<int>(engine);
    EXPECT_LT(mono.tta.mean(), div.tta.mean());
  }
}

TEST_F(IndicatorsFixture, MeasurementIsDeterministic) {
  MeasurementOptions mo;
  mo.engine = Engine::kStagedSan;
  mo.replications = 50;
  mo.seed = 13;
  const auto a = measure_indicators(desc, desc.baseline_configuration(), stuxnet, mo);
  const auto b = measure_indicators(desc, desc.baseline_configuration(), stuxnet, mo);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_DOUBLE_EQ(a.tta.mean(), b.tta.mean());
}

TEST_F(IndicatorsFixture, RatioCurveOnGrid) {
  MeasurementOptions mo;
  mo.engine = Engine::kCampaign;
  mo.replications = 30;
  mo.seed = 15;
  const std::vector<double> grid{0.0, 100.0, 500.0, 1000.0, 2000.0};
  const auto curve = mean_compromised_ratio_curve(
      desc, desc.baseline_configuration(), stuxnet, mo, grid);
  ASSERT_EQ(curve.size(), grid.size());
  EXPECT_DOUBLE_EQ(curve[0], 0.0);
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_GE(curve[i], curve[i - 1] - 1e-12);
  // SAN engine cannot produce curves.
  mo.engine = Engine::kStagedSan;
  EXPECT_THROW(mean_compromised_ratio_curve(desc, desc.baseline_configuration(),
                                            stuxnet, mo, grid),
               std::invalid_argument);
}

TEST_F(IndicatorsFixture, ZeroReplicationsRejected) {
  MeasurementOptions mo;
  mo.replications = 0;
  EXPECT_THROW(
      measure_indicators(desc, desc.baseline_configuration(), stuxnet, mo),
      std::invalid_argument);
}

}  // namespace
}  // namespace divsec::core
