// Tests for the hypothesis-testing additions: Welch t-test,
// two-proportion z-test, configuration comparison, and the IR
// disassembler.
#include <gtest/gtest.h>

#include "core/indicators.h"
#include "divers/ir.h"
#include "divers/transforms.h"
#include "stats/descriptive.h"
#include "stats/distributions.h"

namespace divsec {
namespace {

using stats::OnlineStats;

OnlineStats sample_normal(double mean, double sd, int n, std::uint64_t seed) {
  stats::Rng rng(seed);
  stats::Distribution d(stats::Normal{mean, sd});
  OnlineStats s;
  for (int i = 0; i < n; ++i) s.add(d.sample(rng));
  return s;
}

TEST(WelchTest, DetectsARealDifference) {
  const auto a = sample_normal(10.0, 2.0, 100, 1);
  const auto b = sample_normal(12.0, 3.0, 80, 2);
  const auto t = stats::welch_t_test(a, b);
  EXPECT_LT(t.p_value, 1e-4);
  EXPECT_LT(t.mean_difference, 0.0);
  EXPECT_GT(t.df, 50.0);
}

TEST(WelchTest, NullCaseHasLargePValueUsually) {
  int rejections = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const auto a = sample_normal(5.0, 1.0, 40, 100 + trial);
    const auto b = sample_normal(5.0, 1.0, 40, 900 + trial);
    if (stats::welch_t_test(a, b).p_value < 0.05) ++rejections;
  }
  EXPECT_LE(rejections, 9);  // ~3 expected at alpha = 0.05
}

TEST(WelchTest, SymmetricInSign) {
  const auto a = sample_normal(1.0, 1.0, 50, 3);
  const auto b = sample_normal(2.0, 1.0, 50, 4);
  const auto ab = stats::welch_t_test(a, b);
  const auto ba = stats::welch_t_test(b, a);
  EXPECT_NEAR(ab.p_value, ba.p_value, 1e-12);
  EXPECT_NEAR(ab.t, -ba.t, 1e-12);
}

TEST(WelchTest, DegenerateConstantSamples) {
  OnlineStats a, b, c;
  for (int i = 0; i < 5; ++i) {
    a.add(3.0);
    b.add(3.0);
    c.add(4.0);
  }
  EXPECT_EQ(stats::welch_t_test(a, b).p_value, 1.0);
  EXPECT_EQ(stats::welch_t_test(a, c).p_value, 0.0);
  OnlineStats tiny;
  tiny.add(1.0);
  EXPECT_THROW((void)stats::welch_t_test(a, tiny), std::invalid_argument);
}

TEST(ProportionTest, DetectsARealDifference) {
  // 60/100 vs 30/100: clearly different.
  const auto t = stats::two_proportion_z_test(60, 100, 30, 100);
  EXPECT_LT(t.p_value, 1e-3);
  EXPECT_NEAR(t.difference, 0.3, 1e-12);
  EXPECT_GT(t.z, 0.0);
}

TEST(ProportionTest, EqualProportionsNotSignificant) {
  const auto t = stats::two_proportion_z_test(50, 100, 52, 100);
  EXPECT_GT(t.p_value, 0.5);
}

TEST(ProportionTest, DegenerateAndErrors) {
  // All failures on both sides: pooled variance zero.
  const auto t = stats::two_proportion_z_test(0, 50, 0, 50);
  EXPECT_EQ(t.p_value, 1.0);
  EXPECT_THROW((void)stats::two_proportion_z_test(5, 0, 1, 10), std::invalid_argument);
  EXPECT_THROW((void)stats::two_proportion_z_test(11, 10, 1, 10), std::invalid_argument);
}

TEST(CompareIndicators, DiversifiedConfigurationIsSignificantlySafer) {
  const divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  const core::SystemDescription desc = core::make_scope_description(cat);
  const attack::ThreatProfile stuxnet = attack::ThreatProfile::stuxnet();
  core::MeasurementOptions mo;
  mo.engine = core::Engine::kStagedSan;
  mo.replications = 800;
  mo.seed = 99;
  const auto mono =
      core::measure_indicators(desc, desc.baseline_configuration(), stuxnet, mo);
  core::Configuration diverse = desc.baseline_configuration();
  diverse.variant[2] = 3;  // resilient PLC firmware
  mo.seed = 100;  // independent streams for the second configuration
  const auto div = core::measure_indicators(desc, diverse, stuxnet, mo);

  const auto cmp = core::compare_indicators(mono, div);
  EXPECT_TRUE(cmp.b_is_significantly_safer(0.01));
  EXPECT_LT(cmp.tta.p_value, 0.01);        // TTA genuinely longer
  EXPECT_LT(cmp.tta.mean_difference, 0.0);  // mono TTA < diverse TTA
}

TEST(CompareIndicators, SameConfigurationIsNotSignificant) {
  const divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  const core::SystemDescription desc = core::make_scope_description(cat);
  const attack::ThreatProfile stuxnet = attack::ThreatProfile::stuxnet();
  core::MeasurementOptions mo;
  mo.engine = core::Engine::kStagedSan;
  mo.replications = 400;
  mo.seed = 7;
  const auto a =
      core::measure_indicators(desc, desc.baseline_configuration(), stuxnet, mo);
  mo.seed = 8;
  const auto b =
      core::measure_indicators(desc, desc.baseline_configuration(), stuxnet, mo);
  const auto cmp = core::compare_indicators(a, b);
  EXPECT_GT(cmp.success.p_value, 0.01);
  EXPECT_FALSE(cmp.b_is_significantly_safer(0.01));
}

TEST(Disassembler, RendersInstructionsAndTerminators) {
  divers::Program p;
  p.blocks.resize(2);
  p.blocks[0].body.push_back({divers::Opcode::kMovImm, 1, 0, 0, 42});
  p.blocks[0].body.push_back({divers::Opcode::kAdd, 2, 1, 1, 0});
  p.blocks[0].body.push_back({divers::Opcode::kStore, 0, 3, 2, 0});
  p.blocks[0].term = {divers::TerminatorKind::kBranch, 2, 1, 1};
  p.blocks[1].term = {divers::TerminatorKind::kReturn, 0, 0, 0};
  const std::string asm_text = divers::disassemble(p);
  EXPECT_NE(asm_text.find("bb0:"), std::string::npos);
  EXPECT_NE(asm_text.find("movi r1, #42"), std::string::npos);
  EXPECT_NE(asm_text.find("add r2, r1, r1"), std::string::npos);
  EXPECT_NE(asm_text.find("[r3], r2"), std::string::npos);
  EXPECT_NE(asm_text.find("bnz r2, bb1, bb1"), std::string::npos);
  EXPECT_NE(asm_text.find("ret"), std::string::npos);
}

TEST(Disassembler, DifferentVariantsDisassembleDifferently) {
  stats::Rng gen(5);
  const divers::Program p = divers::generate_program(gen);
  stats::Rng trng(6);
  const divers::Program q =
      divers::diversify(p, divers::TransformConfig::all(), trng);
  EXPECT_NE(divers::disassemble(p), divers::disassemble(q));
}

}  // namespace
}  // namespace divsec
