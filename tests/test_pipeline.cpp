// Tests for core/pipeline.h — the paper's three-step approach end to end.
#include <gtest/gtest.h>

#include "core/pipeline.h"

namespace divsec::core {
namespace {

class PipelineFixture : public ::testing::Test {
 protected:
  PipelineFixture() : desc(make_scope_description(cat)) {
    opts.measurement.engine = Engine::kStagedSan;
    opts.measurement.replications = 150;
    opts.measurement.seed = 2013;
  }
  divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  SystemDescription desc;
  PipelineOptions opts;
};

TEST_F(PipelineFixture, FullFactorialTableShape) {
  const Pipeline p(desc, attack::ThreatProfile::stuxnet(), opts);
  const auto table = p.measure_full_factorial({"plc.firmware", "firewall"}, 2);
  EXPECT_EQ(table.space.factor_count(), 2u);
  EXPECT_EQ(table.configuration_count(), 4u);
  EXPECT_EQ(table.summaries.size(), 4u);
  EXPECT_EQ(table.tta_cells.size(), 4u);
  for (const auto& cell : table.tta_cells)
    EXPECT_EQ(cell.size(), opts.measurement.replications);
  // Cell order follows FactorSpace::decode: factor 0 (plc) fastest.
  EXPECT_EQ(table.configurations[0].variant, desc.baseline_configuration().variant);
  EXPECT_EQ(table.configurations[1].variant[2], 1u);  // plc level 1
  EXPECT_EQ(table.configurations[2].variant[4], 1u);  // firewall level 1
}

TEST_F(PipelineFixture, UnknownComponentRejected) {
  const Pipeline p(desc, attack::ThreatProfile::stuxnet(), opts);
  EXPECT_THROW(p.measure_full_factorial({"nope"}), std::invalid_argument);
  EXPECT_THROW(p.measure_full_factorial({}), std::invalid_argument);
}

TEST_F(PipelineFixture, AttackModelStepMatchesDerivation) {
  const Pipeline p(desc, attack::ThreatProfile::stuxnet(), opts);
  const auto m = p.attack_model(desc.baseline_configuration());
  const auto direct = derive_staged_model(desc, desc.baseline_configuration(),
                                          attack::ThreatProfile::stuxnet(),
                                          opts.measurement.detection);
  for (std::size_t i = 0; i < attack::kStageCount; ++i) {
    EXPECT_DOUBLE_EQ(m.transitions[i].success_probability,
                     direct.transitions[i].success_probability);
  }
}

TEST_F(PipelineFixture, AssessmentAllocatesVarianceToThePlcFirmware) {
  // Against Stuxnet, the PLC payload is the choke point: the ANOVA must
  // put the dominant variance share on plc.firmware — the paper's
  // "components valuable to diversify".
  // Sweep ALL variant levels (2-level truncation would hide the abb PLC,
  // the variant that actually blocks the payload).
  const Pipeline p(desc, attack::ThreatProfile::stuxnet(), opts);
  const auto result = p.run({"os.control", "plc.firmware", "historian.db"}, 0);
  const auto& ranking = result.assessment.ranking;
  ASSERT_FALSE(ranking.empty());
  // The attack-path components dominate; the historian is off-path noise.
  EXPECT_TRUE(ranking[0].name == "plc.firmware" || ranking[0].name == "os.control")
      << ranking[0].name;
  double plc_eta = 0.0, hist_eta = 0.0;
  for (const auto& e : ranking) {
    if (e.name == "plc.firmware") plc_eta = e.eta_squared;
    if (e.name == "historian.db") hist_eta = e.eta_squared;
  }
  EXPECT_GT(plc_eta, 5.0 * hist_eta);
  // And the PLC firmware must be recommended for diversification.
  const auto& rec = result.assessment.recommended;
  EXPECT_NE(std::find(rec.begin(), rec.end(), "plc.firmware"), rec.end());
  EXPECT_EQ(std::find(rec.begin(), rec.end(), "historian.db"), rec.end());
}

TEST_F(PipelineFixture, ReportIsPrintable) {
  const Pipeline p(desc, attack::ThreatProfile::stuxnet(), opts);
  const auto result = p.run({"plc.firmware", "firewall"}, 2);
  const std::string& r = result.assessment.report;
  EXPECT_NE(r.find("ANOVA"), std::string::npos);
  EXPECT_NE(r.find("plc.firmware"), std::string::npos);
  EXPECT_NE(r.find("Recommended"), std::string::npos);
}

TEST_F(PipelineFixture, AnovaTablesAreInternallyConsistent) {
  const Pipeline p(desc, attack::ThreatProfile::stuxnet(), opts);
  const auto result = p.run({"plc.firmware", "firewall"}, 2);
  for (const auto* t : {&result.assessment.tta_anova,
                        &result.assessment.ttsf_anova,
                        &result.assessment.success_anova}) {
    double ss = t->error.ss;
    for (const auto& e : t->effects) ss += e.ss;
    EXPECT_NEAR(ss, t->total.ss, 1e-6 * (1.0 + t->total.ss));
    for (const auto& e : t->effects) {
      EXPECT_GE(e.eta_squared, 0.0);
      EXPECT_LE(e.eta_squared, 1.0);
      EXPECT_GE(e.p_value, 0.0);
      EXPECT_LE(e.p_value, 1.0);
    }
  }
}

TEST_F(PipelineFixture, ScreeningRunsPlackettBurmanOverAllComponents) {
  PipelineOptions fast = opts;
  fast.measurement.replications = 60;
  const Pipeline p(desc, attack::ThreatProfile::stuxnet(), fast);
  const auto s = p.screen();
  EXPECT_EQ(s.design.factor_count(), desc.component_count());
  EXPECT_EQ(s.design.run_count(), 8u);  // 7 factors -> PB8
  EXPECT_EQ(s.mean_tta.size(), 8u);
  EXPECT_EQ(s.success_prob.size(), 8u);
  ASSERT_EQ(s.success_effects.size(), 7u);
  // Screening must agree on the headline: diversifying the PLC firmware
  // (factor index 2) reduces success probability (negative main effect)
  // and it should be the largest-magnitude effect.
  double max_abs = 0.0;
  std::size_t argmax = 0;
  for (std::size_t f = 0; f < s.success_effects.size(); ++f) {
    if (std::abs(s.success_effects[f]) > max_abs) {
      max_abs = std::abs(s.success_effects[f]);
      argmax = f;
    }
  }
  EXPECT_EQ(argmax, 2u);
  EXPECT_LT(s.success_effects[2], 0.0);
}

TEST_F(PipelineFixture, FractionalFactorialHalvesTheRunsAndKeepsTheSignal) {
  PipelineOptions fast = opts;
  fast.measurement.replications = 200;
  const Pipeline p(desc, attack::ThreatProfile::stuxnet(), fast);
  // 2^(4-1) resolution-IV design: plc.firmware = os.corporate * os.control
  // * firewall. 8 runs instead of 16.
  const auto frac = p.measure_fractional(
      {"os.corporate", "os.control", "firewall"},
      {{"plc.firmware", "ABC"}});
  EXPECT_EQ(frac.design.run_count(), 8u);
  EXPECT_EQ(frac.design.factor_count(), 4u);
  EXPECT_EQ(frac.aliases.resolution, 4);
  ASSERT_EQ(frac.success_effects.size(), 4u);
  // Upgrading any on-path component reduces success: negative effects for
  // the OS components and the PLC firmware.
  EXPECT_LT(frac.success_effects[0], 0.0);  // os.corporate
  EXPECT_LT(frac.success_effects[1], 0.0);  // os.control
  EXPECT_LT(frac.success_effects[3], 0.0);  // plc.firmware (generated)
  // plc.firmware (D) is aliased with ABC, nothing shorter.
  const auto aliases = frac.aliases.aliases_of("D");
  ASSERT_EQ(aliases.size(), 1u);
  EXPECT_EQ(aliases[0], "ABC");
}

TEST_F(PipelineFixture, FractionalRejectsUnknownComponents) {
  const Pipeline p(desc, attack::ThreatProfile::stuxnet(), opts);
  EXPECT_THROW(p.measure_fractional({"nope", "os.control", "firewall"},
                                    {{"plc.firmware", "ABC"}}),
               std::invalid_argument);
  EXPECT_THROW(p.measure_fractional({"os.corporate", "os.control", "firewall"},
                                    {{"nope", "ABC"}}),
               std::invalid_argument);
}

TEST_F(PipelineFixture, MeasurementTablesAreDeterministic) {
  const Pipeline p(desc, attack::ThreatProfile::stuxnet(), opts);
  const auto a = p.measure_full_factorial({"plc.firmware"}, 2);
  const auto b = p.measure_full_factorial({"plc.firmware"}, 2);
  for (std::size_t c = 0; c < a.configuration_count(); ++c)
    EXPECT_EQ(a.tta_cells[c], b.tta_cells[c]);
}

TEST_F(PipelineFixture, OptionsValidation) {
  PipelineOptions bad = opts;
  bad.measurement.replications = 1;
  EXPECT_THROW(Pipeline(desc, attack::ThreatProfile::stuxnet(), bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace divsec::core
