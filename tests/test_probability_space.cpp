// Tests for core/probability_space.h — direct probability injection and
// stage-level screening (the paper's sensitivity-analysis mode).
#include <gtest/gtest.h>

#include "core/probability_space.h"

namespace divsec::core {
namespace {

attack::StagedAttackModel base_model() {
  attack::StagedAttackModel m;
  for (auto& t : m.transitions) {
    t.attempt_rate = 0.5;
    t.success_probability = 0.5;
    t.detection_rate = 0.001;
  }
  m.impairment_detection_rate = 0.002;
  return m;
}

TEST(StageProbabilitySpace, MapsUnitCubeToRanges) {
  std::array<StageProbabilitySpace::Range, attack::kStageCount> ranges{};
  for (auto& r : ranges) r = {0.2, 0.8};
  const StageProbabilitySpace space(base_model(), ranges);
  const auto lo = space.at(std::vector<double>(5, 0.0));
  const auto mid = space.at(std::vector<double>(5, 0.5));
  const auto hi = space.at(std::vector<double>(5, 1.0));
  for (std::size_t i = 0; i < attack::kStageCount; ++i) {
    EXPECT_DOUBLE_EQ(lo.transitions[i].success_probability, 0.2);
    EXPECT_DOUBLE_EQ(mid.transitions[i].success_probability, 0.5);
    EXPECT_DOUBLE_EQ(hi.transitions[i].success_probability, 0.8);
    // Rates are inherited from the base model untouched.
    EXPECT_DOUBLE_EQ(lo.transitions[i].attempt_rate, 0.5);
  }
}

TEST(StageProbabilitySpace, DefaultRangesAreFullUnit) {
  const StageProbabilitySpace space(base_model());
  const auto m = space.at(std::vector<double>{0.0, 0.25, 0.5, 0.75, 1.0});
  EXPECT_DOUBLE_EQ(m.transitions[0].success_probability, 0.0);
  EXPECT_DOUBLE_EQ(m.transitions[4].success_probability, 1.0);
}

TEST(StageProbabilitySpace, Validation) {
  std::array<StageProbabilitySpace::Range, attack::kStageCount> bad{};
  for (auto& r : bad) r = {0.2, 0.8};
  bad[2] = {0.9, 0.1};
  EXPECT_THROW(StageProbabilitySpace(base_model(), bad), std::invalid_argument);
  const StageProbabilitySpace space(base_model());
  EXPECT_THROW(space.at(std::vector<double>{0.5, 0.5}), std::invalid_argument);
}

TEST(Indicators, ExpectedTtaIndicatorMatchesModel) {
  const auto ind = expected_tta_indicator();
  const auto m = base_model();
  EXPECT_DOUBLE_EQ(ind(m), m.expected_total_time());
}

TEST(Indicators, SuccessIndicatorMonotoneInProbabilities) {
  const auto ind = success_probability_indicator(500.0, 2000, 7);
  const StageProbabilitySpace space(base_model());
  const double lo = ind(space.at(std::vector<double>(5, 0.2)));
  const double hi = ind(space.at(std::vector<double>(5, 0.9)));
  EXPECT_GT(hi, lo);
  EXPECT_THROW(success_probability_indicator(0.0, 100, 1), std::invalid_argument);
  EXPECT_THROW(success_probability_indicator(10.0, 0, 1), std::invalid_argument);
}

TEST(MorrisStageScreening, FindsTheNarrowedStage) {
  // Stages 0..3 pinned to a tight range; stage 4 swept wide: the analytic
  // TTA indicator must attribute (much) more effect to stage 4.
  std::array<StageProbabilitySpace::Range, attack::kStageCount> ranges{};
  for (auto& r : ranges) r = {0.79, 0.81};
  ranges[4] = {0.05, 0.95};
  const StageProbabilitySpace space(base_model(), ranges);
  const auto screening =
      morris_stage_screening(space, expected_tta_indicator(), 12, 5);
  ASSERT_EQ(screening.effects.mu_star.size(), attack::kStageCount);
  EXPECT_EQ(screening.evaluations, 12u * (attack::kStageCount + 1));
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_GT(screening.effects.mu_star[4], 5.0 * screening.effects.mu_star[i])
        << "stage " << i;
}

TEST(MorrisStageScreening, NullIndicatorRejected) {
  const StageProbabilitySpace space(base_model());
  EXPECT_THROW(morris_stage_screening(space, nullptr, 4, 1), std::invalid_argument);
}

TEST(StageTornado, RanksWideStagesFirst) {
  std::array<StageProbabilitySpace::Range, attack::kStageCount> ranges{};
  for (auto& r : ranges) r = {0.5, 0.5};  // frozen
  ranges[1] = {0.1, 0.9};                 // only stage 1 varies
  const StageProbabilitySpace space(base_model(), ranges);
  const auto tornado = stage_tornado(space, expected_tta_indicator());
  ASSERT_EQ(tornado.size(), attack::kStageCount);
  EXPECT_EQ(tornado[0].stage, 1u);
  EXPECT_GT(tornado[0].swing(), 0.0);
  for (std::size_t i = 1; i < tornado.size(); ++i)
    EXPECT_NEAR(tornado[i].swing(), 0.0, 1e-12);
  // Lower success probability means longer expected TTA.
  EXPECT_GT(tornado[0].at_lo, tornado[0].at_hi);
}

}  // namespace
}  // namespace divsec::core
