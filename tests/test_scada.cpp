// Tests for scada/plant.h and scada/plc.h — physics and control runtime.
#include <gtest/gtest.h>

#include "scada/plant.h"
#include "scada/plc.h"

namespace divsec::scada {
namespace {

TEST(Plant, HeatsUpWithoutCooling) {
  CoolingPlant plant;
  const double t0 = plant.room_temp_c();
  plant.step(3600.0, /*fan=*/0.0, /*valve=*/0.0);
  EXPECT_GT(plant.room_temp_c(), t0 + 20.0);
  EXPECT_TRUE(plant.overheated(35.0));
}

TEST(Plant, FullCoolingHoldsTemperature) {
  CoolingPlant plant;
  plant.step(4.0 * 3600.0, 1.0, 1.0);
  EXPECT_LT(plant.room_temp_c(), 30.0);
  EXPECT_FALSE(plant.overheated(35.0));
}

TEST(Plant, CoolingRequiresColdWater) {
  PlantParameters pp;
  pp.initial_water_temp_c = pp.initial_room_temp_c;  // useless loop
  pp.chiller_capacity_kw = 0.0;                      // and no chiller
  CoolingPlant plant(pp);
  const double t0 = plant.room_temp_c();
  plant.step(1800.0, 1.0, 1.0);
  EXPECT_GT(plant.room_temp_c(), t0);  // fan alone cannot cool
}

TEST(Plant, CommandsAreClamped) {
  CoolingPlant a, b;
  a.step(600.0, 5.0, 5.0);   // clamped to 1.0
  b.step(600.0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(a.room_temp_c(), b.room_temp_c());
}

TEST(Plant, TimeAdvancesBySubsteps) {
  CoolingPlant plant;
  plant.step(10.5, 0.5, 0.5);
  EXPECT_DOUBLE_EQ(plant.time_s(), 10.5);
  EXPECT_THROW(plant.step(-1.0, 0, 0), std::invalid_argument);
}

TEST(Plant, ParameterValidation) {
  PlantParameters pp;
  pp.room_heat_capacity_kj_per_c = 0.0;
  EXPECT_THROW(CoolingPlant{pp}, std::invalid_argument);
  pp = PlantParameters{};
  pp.integration_substep_s = 0.0;
  EXPECT_THROW(CoolingPlant{pp}, std::invalid_argument);
  pp = PlantParameters{};
  pp.it_load_kw = -5.0;
  EXPECT_THROW(CoolingPlant{pp}, std::invalid_argument);
}

TEST(Plc, IlArithmetic) {
  Plc plc("test");
  using S = OperandSpace;
  plc.load_program({
      {IlOp::kLd, S::kInput, 0, 0.0},
      {IlOp::kAdd, S::kConstant, 0, 10.0},
      {IlOp::kMul, S::kConstant, 0, 2.0},
      {IlOp::kSub, S::kInput, 1, 0.0},
      {IlOp::kSt, S::kOutput, 0, 0.0},
  });
  plc.set_input(0, 5.0);
  plc.set_input(1, 3.0);
  plc.scan(0.1);
  EXPECT_DOUBLE_EQ(plc.output(0), (5.0 + 10.0) * 2.0 - 3.0);
  EXPECT_EQ(plc.scan_count(), 1u);
}

TEST(Plc, IlBooleanLogic) {
  Plc plc("bool");
  using S = OperandSpace;
  // Q0 = (I0 AND NOT I1) OR I2.
  plc.load_program({
      {IlOp::kLd, S::kInput, 0, 0.0},
      {IlOp::kAndn, S::kInput, 1, 0.0},
      {IlOp::kOr, S::kInput, 2, 0.0},
      {IlOp::kSt, S::kOutput, 0, 0.0},
  });
  const auto run = [&](double a, double b, double c) {
    plc.set_input(0, a);
    plc.set_input(1, b);
    plc.set_input(2, c);
    plc.scan(0.1);
    return plc.output(0);
  };
  EXPECT_EQ(run(1, 0, 0), 1.0);
  EXPECT_EQ(run(1, 1, 0), 0.0);
  EXPECT_EQ(run(0, 1, 1), 1.0);
  EXPECT_EQ(run(0, 0, 0), 0.0);
}

TEST(Plc, IlComparisonsAndDivision) {
  Plc plc("cmp");
  using S = OperandSpace;
  plc.load_program({
      {IlOp::kLd, S::kInput, 0, 0.0},
      {IlOp::kDiv, S::kConstant, 0, 4.0},
      {IlOp::kGt, S::kConstant, 0, 2.0},
      {IlOp::kSt, S::kOutput, 0, 0.0},
      // Division by zero yields 0, not a crash.
      {IlOp::kLd, S::kInput, 0, 0.0},
      {IlOp::kDiv, S::kConstant, 0, 0.0},
      {IlOp::kSt, S::kOutput, 1, 0.0},
  });
  plc.set_input(0, 12.0);
  plc.scan(0.1);
  EXPECT_EQ(plc.output(0), 1.0);  // 12/4 = 3 > 2
  EXPECT_EQ(plc.output(1), 0.0);
}

TEST(Plc, HysteresisProgramLatches) {
  Plc plc("thermo");
  plc.load_program(make_hysteresis_program(28.0, 24.0));
  const auto run = [&](double t) {
    plc.set_input(0, t);
    plc.scan(0.5);
    return plc.output(0);
  };
  EXPECT_EQ(run(25.0), 0.0);  // below on-threshold, off
  EXPECT_EQ(run(29.0), 1.0);  // crossed: on
  EXPECT_EQ(run(26.0), 1.0);  // inside band: stays on
  EXPECT_EQ(run(23.0), 0.0);  // below release: off
  EXPECT_EQ(run(26.0), 0.0);  // inside band: stays off
}

TEST(Plc, PidDrivesProcessVariableToSetpoint) {
  Plc plc("pid");
  plc.load_program({}, {PidBlock{0, 0, 24.0, 0.8, 0.02, 0.0, 0.0, 1.0, true}});
  CoolingPlant plant;
  // Closed loop: plc controls the fan from the room temperature, with the
  // chiller valve held open.
  for (int i = 0; i < 4 * 3600; ++i) {
    plc.set_input(0, plant.room_temp_c());
    plc.scan(1.0);
    plant.step(1.0, plc.output(0), 1.0);
  }
  EXPECT_NEAR(plant.room_temp_c(), 24.0, 1.5);
}

TEST(Plc, PidOutputClamped) {
  Plc plc("pid2");
  plc.load_program({}, {PidBlock{0, 0, 0.0, 100.0, 0.0, 0.0, 0.0, 1.0, false}});
  plc.set_input(0, -1000.0);  // enormous error
  plc.scan(1.0);
  EXPECT_EQ(plc.output(0), 1.0);
}

TEST(Plc, ProgramValidation) {
  Plc plc("v");
  using S = OperandSpace;
  EXPECT_THROW(plc.load_program({{IlOp::kLd, S::kInput, 99, 0.0}}),
               std::invalid_argument);
  EXPECT_THROW(plc.load_program({{IlOp::kSt, S::kConstant, 0, 0.0}}),
               std::invalid_argument);
  EXPECT_THROW(plc.load_program({}, {PidBlock{99, 0}}), std::invalid_argument);
  PidBlock bad{0, 0};
  bad.out_min = 1.0;
  bad.out_max = 0.0;
  EXPECT_THROW(plc.load_program({}, {bad}), std::invalid_argument);
  EXPECT_THROW(Plc(""), std::invalid_argument);
  EXPECT_THROW(plc.set_input(99, 0.0), std::out_of_range);
  EXPECT_THROW((void)plc.output(99), std::out_of_range);
  EXPECT_THROW(plc.scan(-1.0), std::invalid_argument);
}

TEST(Plc, ReprogrammingResetsPidState) {
  Plc plc("r");
  plc.load_program({}, {PidBlock{0, 0, 0.0, 0.0, 1.0, 0.0, -10.0, 10.0, false}});
  plc.set_input(0, 5.0);
  for (int i = 0; i < 10; ++i) plc.scan(1.0);
  const double integ = plc.output(0);
  EXPECT_NE(integ, 0.0);
  plc.load_program({}, {PidBlock{0, 0, 0.0, 0.0, 1.0, 0.0, -10.0, 10.0, false}});
  plc.set_input(0, 0.0);
  plc.scan(1.0);
  EXPECT_EQ(plc.output(0), 0.0);  // integral was cleared
}

}  // namespace
}  // namespace divsec::scada
