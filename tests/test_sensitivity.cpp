// Tests for stats/sensitivity.h — OAT sweeps, tornado ranking.
#include <gtest/gtest.h>

#include "stats/sensitivity.h"

namespace divsec::stats {
namespace {

FactorSpace space() {
  return FactorSpace({{"big", {"l0", "l1", "l2"}},
                      {"small", {"l0", "l1"}},
                      {"null", {"l0", "l1"}}});
}

double planted_response(std::span<const int> cfg) {
  // big contributes 10/level, small 1/level, null nothing.
  return 10.0 * cfg[0] + 1.0 * cfg[1];
}

TEST(OneAtATime, SweepsEachFactorHoldingOthersAtBaseline) {
  const auto results =
      one_at_a_time(space(), std::vector<int>{0, 0, 0}, planted_response);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].factor, "big");
  EXPECT_EQ(results[0].responses, (std::vector<double>{0.0, 10.0, 20.0}));
  EXPECT_EQ(results[0].swing(), 20.0);
  EXPECT_EQ(results[1].swing(), 1.0);
  EXPECT_EQ(results[2].swing(), 0.0);
}

TEST(OneAtATime, NonZeroBaselineIsRestored) {
  const auto results =
      one_at_a_time(space(), std::vector<int>{1, 1, 0}, planted_response);
  // Sweeping "small" keeps big at level 1: responses 10+{0,1}.
  EXPECT_EQ(results[1].responses, (std::vector<double>{10.0, 11.0}));
}

TEST(OneAtATime, Errors) {
  EXPECT_THROW(
      one_at_a_time(space(), std::vector<int>{0, 0}, planted_response),
      std::invalid_argument);
  EXPECT_THROW(
      one_at_a_time(space(), std::vector<int>{5, 0, 0}, planted_response),
      std::out_of_range);
}

TEST(Tornado, SortsByDescendingSwing) {
  auto results = one_at_a_time(space(), std::vector<int>{0, 0, 0}, planted_response);
  const auto sorted = tornado(std::move(results));
  EXPECT_EQ(sorted[0].factor, "big");
  EXPECT_EQ(sorted[1].factor, "small");
  EXPECT_EQ(sorted[2].factor, "null");
}

TEST(RankByVarianceShare, OrdersAnovaEffects) {
  AnovaTable t;
  t.effects.push_back({"low", 1.0, 1, 1.0, 0.0, 1.0, 0.1});
  t.effects.push_back({"high", 9.0, 1, 9.0, 0.0, 1.0, 0.9});
  const auto ranked = rank_by_variance_share(t);
  EXPECT_EQ(ranked[0].name, "high");
  EXPECT_EQ(ranked[1].name, "low");
}

}  // namespace
}  // namespace divsec::stats
