// Tests for the streaming aggregation stats: the P² quantile estimator
// (stats/p2_quantile.h), the binned product-limit StreamingSurvival and
// the CensoredTimeAccumulator (stats/survival.h). These are the building
// blocks of the measurement engine's streaming backend, so the properties
// under test are the backend's contracts: accuracy against the exact
// retained-sample estimators, exact merges for the binned state, and
// deterministic merges for the sketches.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/descriptive.h"
#include "stats/distributions.h"
#include "stats/p2_quantile.h"
#include "stats/rng.h"
#include "stats/survival.h"

namespace divsec::stats {
namespace {

std::vector<double> exponential_sample(std::size_t n, double lambda,
                                       std::uint64_t seed) {
  Rng rng(seed);
  Distribution d(Exponential{lambda});
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(d.sample(rng));
  return out;
}

TEST(P2Quantile, ExactForFewObservations) {
  P2Quantile q(0.5);
  EXPECT_EQ(q.value(), 0.0);
  q.add(3.0);
  EXPECT_DOUBLE_EQ(q.value(), 3.0);
  q.add(1.0);
  EXPECT_DOUBLE_EQ(q.value(), 2.0);  // type-7 median of {1,3}
  q.add(2.0);
  EXPECT_DOUBLE_EQ(q.value(), 2.0);
  EXPECT_EQ(q.count(), 3u);
}

TEST(P2Quantile, TracksStreamQuantiles) {
  const auto data = exponential_sample(50000, 1.0, 11);
  P2Quantile q50(0.5), q90(0.9);
  for (double x : data) {
    q50.add(x);
    q90.add(x);
  }
  // True quantiles of Exp(1): ln 2 and ln 10.
  EXPECT_NEAR(q50.value(), std::log(2.0), 0.05);
  EXPECT_NEAR(q90.value(), std::log(10.0), 0.15);
  // Cross-check against the exact retained-sample quantile.
  EXPECT_NEAR(q50.value(), quantile(data, 0.5), 0.05);
  EXPECT_NEAR(q90.value(), quantile(data, 0.9), 0.15);
}

TEST(P2Quantile, BlockedMergeApproximatesSingleStream) {
  // The backend's usage pattern: fold fixed-size blocks, merge ascending.
  const auto data = exponential_sample(40000, 0.5, 23);
  constexpr std::size_t kBlock = 256;
  P2Quantile merged(0.5);
  for (std::size_t lo = 0; lo < data.size(); lo += kBlock) {
    P2Quantile part(0.5);
    for (std::size_t i = lo; i < std::min(data.size(), lo + kBlock); ++i)
      part.add(data[i]);
    merged.merge(part);
  }
  EXPECT_EQ(merged.count(), data.size());
  EXPECT_NEAR(merged.value(), quantile(data, 0.5), 0.1);

  // Determinism: replaying the identical merge sequence reproduces the
  // estimate bit for bit.
  P2Quantile replay(0.5);
  for (std::size_t lo = 0; lo < data.size(); lo += kBlock) {
    P2Quantile part(0.5);
    for (std::size_t i = lo; i < std::min(data.size(), lo + kBlock); ++i)
      part.add(data[i]);
    replay.merge(part);
  }
  EXPECT_EQ(replay.value(), merged.value());
}

TEST(P2Quantile, MergeHandlesSmallSides) {
  P2Quantile a(0.5), b(0.5);
  for (double x : {1.0, 2.0, 3.0}) a.add(x);  // still raw
  for (double x : {4.0, 5.0, 6.0, 7.0, 8.0, 9.0}) b.add(x);
  a.merge(b);
  EXPECT_EQ(a.count(), 9u);
  EXPECT_NEAR(a.value(), 5.0, 1.0);
  P2Quantile mismatched(0.9);
  EXPECT_THROW(a.merge(mismatched), std::invalid_argument);
}

TEST(P2Quantile, Validation) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
}

TEST(StreamingSurvival, MatchesKaplanMeierWithinBinWidth) {
  const double lambda = 0.5, horizon = 8.0;
  const auto raw = exponential_sample(20000, lambda, 7);
  StreamingSurvival stream(horizon, 128);
  std::vector<SurvivalObservation> obs;
  for (double t : raw) {
    const bool event = t <= horizon;
    stream.add(event ? t : horizon, event);
    obs.push_back({event ? t : horizon, event});
  }
  const KaplanMeier km(std::move(obs));
  const double width = horizon / 128.0;
  for (double t : {0.5, 1.0, 2.0, 4.0, 7.0})
    EXPECT_NEAR(stream.survival_at(t), km.survival_at(t), 0.02) << t;
  EXPECT_NEAR(stream.restricted_mean(), km.restricted_mean(horizon), 0.05);
  ASSERT_TRUE(stream.median().has_value());
  EXPECT_NEAR(*stream.median(), std::log(2.0) / lambda, 2.0 * width + 0.05);
}

TEST(StreamingSurvival, AllCensoredKeepsCurveAtOne) {
  StreamingSurvival s(10.0, 16);
  for (int i = 0; i < 50; ++i) s.add(10.0, /*event=*/false);
  EXPECT_EQ(s.event_count(), 0u);
  EXPECT_EQ(s.censored_count(), 50u);
  EXPECT_DOUBLE_EQ(s.survival_at(9.9), 1.0);
  EXPECT_FALSE(s.median().has_value());
  // No event ever observed: the censoring-aware mean is the horizon.
  EXPECT_DOUBLE_EQ(s.restricted_mean(), 10.0);
}

TEST(StreamingSurvival, MergeIsExact) {
  const auto raw = exponential_sample(5000, 1.0, 99);
  const double horizon = 4.0;
  StreamingSurvival whole(horizon, 64), left(horizon, 64), right(horizon, 64);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const double t = raw[i];
    const bool event = t <= horizon;
    whole.add(event ? t : horizon, event);
    (i < raw.size() / 2 ? left : right).add(event ? t : horizon, event);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_EQ(left.event_count(), whole.event_count());
  // Bin counts add: the merged curve is bit-identical, not just close.
  for (double t : {0.1, 0.7, 1.3, 2.9, 3.9})
    EXPECT_EQ(left.survival_at(t), whole.survival_at(t)) << t;
  EXPECT_EQ(left.restricted_mean(), whole.restricted_mean());
}

TEST(StreamingSurvival, Validation) {
  EXPECT_THROW(StreamingSurvival(0.0, 8), std::invalid_argument);
  EXPECT_THROW(StreamingSurvival(1.0, 0), std::invalid_argument);
  StreamingSurvival s(1.0, 8);
  EXPECT_THROW(s.add(-0.5, true), std::invalid_argument);
  EXPECT_THROW((void)s.quantile(0.0), std::invalid_argument);
  StreamingSurvival other(2.0, 8);
  other.add(1.0, true);
  EXPECT_THROW(s.merge(other), std::invalid_argument);
  // Default-constructed state adopts the first non-empty partner.
  StreamingSurvival empty;
  empty.merge(other);
  EXPECT_EQ(empty.count(), 1u);
}

TEST(CensoredTimeAccumulator, SummarizesMomentsAndSurvival) {
  const double horizon = 6.0, lambda = 1.0;
  const auto raw = exponential_sample(20000, lambda, 3);
  CensoredTimeAccumulator acc(horizon, 128);
  OnlineStats expect_moments;
  std::size_t expect_censored = 0;
  for (double t : raw) {
    const bool censored = t > horizon;
    const double v = censored ? horizon : t;
    acc.add(v, censored);
    expect_moments.add(v);
    if (censored) ++expect_censored;
  }
  const CensoredTimeSummary s = acc.summarize();
  EXPECT_EQ(s.observations, raw.size());
  EXPECT_EQ(s.censored, expect_censored);
  EXPECT_EQ(acc.moments().mean(), expect_moments.mean());
  EXPECT_EQ(acc.moments().variance(), expect_moments.variance());
  // The censoring-aware restricted mean recovers E[min(T, horizon)]
  // integral-of-survival form; the biased moments mean matches it here
  // because censored values are clamped, not dropped — but the KM median
  // must track the true distribution median.
  ASSERT_TRUE(s.median.has_value());
  EXPECT_NEAR(*s.median, std::log(2.0) / lambda, 0.1);
  EXPECT_NEAR(s.restricted_mean, (1.0 - std::exp(-lambda * horizon)) / lambda,
              0.05);
  EXPECT_NEAR(s.q50, std::log(2.0) / lambda, 0.05);
  EXPECT_NEAR(s.censor_fraction(), std::exp(-lambda * horizon), 0.01);
}

TEST(CensoredTimeAccumulator, EmptySummary) {
  const CensoredTimeSummary s = CensoredTimeAccumulator(5.0, 8).summarize();
  EXPECT_EQ(s.observations, 0u);
  EXPECT_FALSE(s.median.has_value());
  EXPECT_DOUBLE_EQ(s.censor_fraction(), 0.0);
}

}  // namespace
}  // namespace divsec::stats
