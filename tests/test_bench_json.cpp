// Tests for bench/bench_util.h JSON emission: the BENCH_*.json artifacts
// must stay parseable even when a record carries non-finite numbers
// (a 0/0 speedup or an unmeasured memory datum) or a name containing
// JSON metacharacters.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "bench/bench_util.h"

namespace divsec::bench {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(BenchJson, EscapesNamesAndNullsNonFiniteValues) {
  const std::string path = ::testing::TempDir() + "divsec_bench_json_test.json";
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  write_bench_json(path, {
                             {"plain", 12.5, 4, 2.0, 64.0},
                             {"quote\"back\\slash\nnewline", nan, 1, inf},
                         });
  const std::string json = read_file(path);
  std::remove(path.c_str());

  // Strings are escaped...
  EXPECT_NE(json.find("\"quote\\\"back\\\\slash\\nnewline\""), std::string::npos);
  // ...non-finite numbers become null...
  EXPECT_NE(json.find("\"wall_ms\": null"), std::string::npos);
  EXPECT_NE(json.find("\"speedup\": null"), std::string::npos);
  // ...and the tokens no parser accepts never appear.
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  // Finite values serialize normally.
  EXPECT_NE(json.find("\"wall_ms\": 12.500"), std::string::npos);
  EXPECT_NE(json.find("\"peak_mb\": 64.000"), std::string::npos);
}

TEST(BenchJson, HelpersRoundTrip) {
  EXPECT_EQ(json_escape("a\tb\x01"), "a\\tb\\u0001");
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_number(1.23456, 2), "1.23");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()), "null");
}

TEST(BenchJson, MinimalStructuralValidity) {
  // A tiny structural check: balanced brackets/braces and an exact
  // object count — enough to catch a stray comma or truncated record.
  const std::string path = ::testing::TempDir() + "divsec_bench_json_shape.json";
  write_bench_json(path, {{"a", 1.0, 1, 1.0}, {"b", 2.0, 2, 2.0}});
  const std::string json = read_file(path);
  std::remove(path.c_str());
  std::size_t braces = 0;
  for (char c : json) braces += c == '{' ? 1 : 0;
  EXPECT_EQ(braces, 2u);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("},\n"), std::string::npos);
  EXPECT_EQ(json.find("},\n]"), std::string::npos);  // no trailing comma
  EXPECT_EQ(json.back(), '\n');
  EXPECT_EQ(json[json.size() - 2], ']');
}

}  // namespace
}  // namespace divsec::bench
