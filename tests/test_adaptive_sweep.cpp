// Tests for the adaptive sweep controller (PR 7): the shared stopping
// rule (sim/stopping.h), the in-process adaptive measurement driver
// (MeasurementEngine::measure_scenarios_adaptive), the cross-process
// coordinator (dist::run_adaptive), and the replay contract — the
// recorded per-cell achieved counts reproduce the adaptive results bit
// for bit through any thread count and any shard cut.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/measurement.h"
#include "dist/adaptive.h"
#include "dist/state_codec.h"
#include "dist/sweep.h"
#include "sim/executor.h"
#include "sim/replication.h"
#include "sim/stopping.h"
#include "stats/rng.h"

namespace divsec {
namespace {

// ---- the stopping predicate ------------------------------------------------

stats::OnlineStats filled_stats(double mean, double spread, std::size_t n) {
  stats::OnlineStats s;
  for (std::size_t i = 0; i < n; ++i)
    s.add(mean + (i % 2 == 0 ? spread : -spread));
  return s;
}

TEST(StoppingRule, NeverStopsBelowMinReplications) {
  sim::StoppingRule rule;
  rule.min_replications = 10;
  rule.max_replications = 100;
  // Zero variance: converged by any precision measure — but min wins.
  const stats::OnlineStats nine = filled_stats(5.0, 0.0, 9);
  EXPECT_FALSE(sim::should_stop(nine, rule));
  const stats::OnlineStats ten = filled_stats(5.0, 0.0, 10);
  EXPECT_TRUE(sim::should_stop(ten, rule));
}

TEST(StoppingRule, AlwaysStopsAtMaxReplications) {
  sim::StoppingRule rule;
  rule.min_replications = 2;
  rule.max_replications = 50;
  rule.relative_precision = 1e-12;  // unreachable
  const stats::OnlineStats noisy = filled_stats(1.0, 10.0, 50);
  EXPECT_FALSE(sim::precision_reached(noisy, rule));
  EXPECT_TRUE(sim::should_stop(noisy, rule));  // the cap, not convergence
}

TEST(StoppingRule, PrecisionNeedsTwoSamples) {
  sim::StoppingRule rule;
  rule.relative_precision = 1e9;  // any CI would pass
  stats::OnlineStats one;
  one.add(3.0);
  EXPECT_FALSE(sim::precision_reached(one, rule));
  one.add(3.0);
  EXPECT_TRUE(sim::precision_reached(one, rule));
}

TEST(StoppingRule, AbsoluteFloorCoversNearZeroMeans) {
  // The near-zero-mean failure of the pure relative rule: mean ~ 0 makes
  // rel * |mean| ~ 0, so the relative criterion can never be met even
  // when the half-width is tiny in absolute terms.
  const stats::OnlineStats near_zero = filled_stats(1e-9, 1e-3, 1000);
  sim::StoppingRule relative_only;
  relative_only.relative_precision = 0.05;
  relative_only.absolute_precision = 0.0;
  EXPECT_FALSE(sim::precision_reached(near_zero, relative_only));

  sim::StoppingRule with_floor = relative_only;
  with_floor.absolute_precision = 0.01;  // hw ~ 6e-5 passes the floor
  EXPECT_TRUE(sim::precision_reached(near_zero, with_floor));
}

TEST(StoppingRule, EitherCriterionStops) {
  const stats::OnlineStats tight = filled_stats(100.0, 0.1, 400);
  sim::StoppingRule rel;
  rel.relative_precision = 0.05;
  EXPECT_TRUE(sim::precision_reached(tight, rel));
  sim::StoppingRule abs;
  abs.relative_precision = 0.0;
  abs.absolute_precision = 0.05;
  EXPECT_TRUE(sim::precision_reached(tight, abs));
  sim::StoppingRule neither;
  neither.relative_precision = 0.0;
  neither.absolute_precision = 0.0;
  EXPECT_FALSE(sim::precision_reached(tight, neither));
}

TEST(RunSequential, AbsoluteFloorStopsNearZeroMeanExperiment) {
  // A near-zero-mean experiment: the relative-only rule burns the whole
  // budget, the absolute floor stops as soon as the half-width is small.
  const sim::Experiment near_zero = [](stats::Rng& rng) {
    return rng.uniform(-1e-3, 1e-3);
  };
  sim::SequentialOptions relative_only;
  relative_only.min_replications = 10;
  relative_only.max_replications = 400;
  relative_only.relative_precision = 0.05;
  const auto burned = sim::run_sequential(near_zero, relative_only, 99);
  EXPECT_EQ(burned.stats.count(), 400u);  // capped, never converged

  sim::SequentialOptions with_floor = relative_only;
  with_floor.absolute_precision = 1e-3;
  const auto stopped = sim::run_sequential(near_zero, with_floor, 99);
  EXPECT_LT(stopped.stats.count(), 400u);
  EXPECT_GE(stopped.stats.count(), 10u);
  const double hw = stopped.confidence_interval(0.95).half_width();
  EXPECT_LE(hw, 1e-3);
}

// ---- schedule resolution ---------------------------------------------------

TEST(AdaptiveSchedule, DefaultsAndClamping) {
  core::AdaptiveOptions opts;
  opts.enabled = true;
  // Defaults: min = one superblock, max = budget, round = one superblock.
  const auto def = core::resolve_adaptive_schedule(opts, 1000, 64);
  EXPECT_EQ(def.rule.min_replications, 64u);
  EXPECT_EQ(def.rule.max_replications, 1000u);
  EXPECT_EQ(def.first_superblocks, 1u);
  EXPECT_EQ(def.round_superblocks, 1u);

  // Explicit knobs clamp to the budget and round up to superblocks.
  opts.min_replications = 200;   // ceil(200/64) = 4 superblocks
  opts.max_replications = 5000;  // above budget -> clamped
  opts.round_replications = 100;
  const auto expl = core::resolve_adaptive_schedule(opts, 1000, 64);
  EXPECT_EQ(expl.rule.min_replications, 200u);
  EXPECT_EQ(expl.rule.max_replications, 1000u);
  EXPECT_EQ(expl.first_superblocks, 4u);
  EXPECT_EQ(expl.round_superblocks, 2u);

  // min above the budget collapses to the budget (max stays >= min).
  opts.min_replications = 4000;
  const auto clamped = core::resolve_adaptive_schedule(opts, 1000, 64);
  EXPECT_EQ(clamped.rule.min_replications, 1000u);
  EXPECT_GE(clamped.rule.max_replications, clamped.rule.min_replications);
}

// ---- the in-process adaptive engine ----------------------------------------

/// Small but multi-superblock sweep (plant_small, 3 policy arms).
dist::SweepSpec small_spec() {
  dist::SweepSpec spec;
  spec.preset = "plant_small";
  spec.seed = 4242;
  spec.replications = 256;
  spec.replication_block = 8;
  spec.superblock = 32;  // 8 superblocks per cell
  return spec;
}

void expect_bit_identical(const core::IndicatorSummary& a,
                          const core::IndicatorSummary& b) {
  EXPECT_EQ(a.replications, b.replications);
  EXPECT_EQ(a.tta.mean(), b.tta.mean());
  EXPECT_EQ(a.tta.variance(), b.tta.variance());
  EXPECT_EQ(a.ttsf.mean(), b.ttsf.mean());
  EXPECT_EQ(a.ttsf.variance(), b.ttsf.variance());
  EXPECT_EQ(a.final_ratio.mean(), b.final_ratio.mean());
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.tta_event.restricted_mean, b.tta_event.restricted_mean);
  EXPECT_EQ(a.ttsf_event.q90, b.ttsf_event.q90);
}

std::vector<core::IndicatorSummary> engine_adaptive(
    const dist::SweepSpec& spec, const core::AdaptiveOptions& adaptive,
    const sim::Executor* executor, core::AdaptiveReport* report = nullptr) {
  const divers::VariantCatalog catalog =
      divers::VariantCatalog::standard(spec.seed);
  const attack::ThreatProfile profile = dist::threat_profile(spec.threat);
  core::MeasurementOptions options = dist::sweep_options(spec, executor);
  options.adaptive = adaptive;
  const core::MeasurementEngine engine(catalog, profile, options);
  return engine.measure_scenarios_adaptive(dist::expand_plan(spec, catalog),
                                           report);
}

TEST(EngineAdaptive, LooseTargetStopsEveryCellAtMin) {
  core::AdaptiveOptions adaptive;
  adaptive.enabled = true;
  adaptive.relative_precision = 0.0;
  adaptive.absolute_precision = 1e6;  // any half-width passes
  core::AdaptiveReport report;
  const auto summaries =
      engine_adaptive(small_spec(), adaptive, nullptr, &report);
  ASSERT_EQ(summaries.size(), 3u);
  EXPECT_EQ(report.total_rounds, 1u);
  for (std::size_t c = 0; c < summaries.size(); ++c) {
    EXPECT_EQ(report.achieved[c], 32u);  // min = one superblock
    EXPECT_EQ(report.rounds[c], 1u);
    EXPECT_EQ(summaries[c].replications, 32u);
  }
  EXPECT_EQ(report.total_replications, 96u);
}

TEST(EngineAdaptive, UnreachableTargetCapsAtBudgetAndMatchesFixedRun) {
  const dist::SweepSpec spec = small_spec();
  core::AdaptiveOptions adaptive;
  adaptive.enabled = true;
  adaptive.relative_precision = 1e-12;  // unreachable
  core::AdaptiveReport report;
  const auto adaptive_sums = engine_adaptive(spec, adaptive, nullptr, &report);
  for (std::size_t c = 0; c < adaptive_sums.size(); ++c)
    EXPECT_EQ(report.achieved[c], spec.replications);

  // Exhausting the budget must land exactly on the fixed-budget result —
  // the adaptive fold visits the identical superblocks in the identical
  // order.
  const auto fixed_sums = dist::run_in_process(spec);
  ASSERT_EQ(adaptive_sums.size(), fixed_sums.size());
  for (std::size_t c = 0; c < fixed_sums.size(); ++c)
    expect_bit_identical(adaptive_sums[c], fixed_sums[c]);
}

TEST(EngineAdaptive, ResultIndependentOfThreadCount) {
  core::AdaptiveOptions adaptive;
  adaptive.enabled = true;
  adaptive.relative_precision = 0.10;
  adaptive.absolute_precision = 0.02;
  std::vector<core::IndicatorSummary> reference;
  core::AdaptiveReport ref_report;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                    std::size_t{8}}) {
    const sim::Executor executor(threads);
    core::AdaptiveReport report;
    const auto summaries =
        engine_adaptive(small_spec(), adaptive, &executor, &report);
    if (reference.empty()) {
      reference = summaries;
      ref_report = report;
      continue;
    }
    ASSERT_EQ(summaries.size(), reference.size());
    EXPECT_EQ(report.achieved, ref_report.achieved);
    EXPECT_EQ(report.rounds, ref_report.rounds);
    EXPECT_EQ(report.total_rounds, ref_report.total_rounds);
    for (std::size_t c = 0; c < reference.size(); ++c)
      expect_bit_identical(summaries[c], reference[c]);
  }
}

TEST(EngineAdaptive, MeasureScenariosDelegatesWhenEnabled) {
  const dist::SweepSpec spec = small_spec();
  const divers::VariantCatalog catalog =
      divers::VariantCatalog::standard(spec.seed);
  const attack::ThreatProfile profile = dist::threat_profile(spec.threat);
  core::MeasurementOptions options = dist::sweep_options(spec, nullptr);
  options.adaptive.enabled = true;
  options.adaptive.absolute_precision = 1e6;
  const core::MeasurementEngine engine(catalog, profile, options);
  const auto plan = dist::expand_plan(spec, catalog);
  const auto via_measure = engine.measure_scenarios(plan);
  const auto direct = engine.measure_scenarios_adaptive(plan);
  ASSERT_EQ(via_measure.size(), direct.size());
  for (std::size_t c = 0; c < direct.size(); ++c)
    expect_bit_identical(via_measure[c], direct[c]);
}

TEST(EngineAdaptive, RejectsInvalidOptions) {
  const dist::SweepSpec spec = small_spec();
  const divers::VariantCatalog catalog =
      divers::VariantCatalog::standard(spec.seed);
  const attack::ThreatProfile profile = dist::threat_profile(spec.threat);
  const auto plan = dist::expand_plan(spec, catalog);

  // Both precision criteria disabled: no cell could ever converge.
  core::MeasurementOptions no_target = dist::sweep_options(spec, nullptr);
  no_target.adaptive.enabled = true;
  no_target.adaptive.relative_precision = 0.0;
  no_target.adaptive.absolute_precision = 0.0;
  EXPECT_THROW(
      (void)core::MeasurementEngine(catalog, profile, no_target)
          .measure_scenarios_adaptive(plan),
      std::invalid_argument);

  // The adaptive driver is streaming-only.
  core::MeasurementOptions buffered = dist::sweep_options(spec, nullptr);
  buffered.adaptive.enabled = true;
  buffered.adaptive.relative_precision = 0.05;
  buffered.keep_samples = true;
  EXPECT_THROW(
      (void)core::MeasurementEngine(catalog, profile, buffered)
          .measure_scenarios_adaptive(plan),
      std::invalid_argument);
}

// ---- the cross-process coordinator -----------------------------------------

dist::AdaptiveSweepOptions coordinator_options(std::size_t shards) {
  dist::AdaptiveSweepOptions options;
  options.shards = shards;
  options.relative_precision = 0.10;
  options.absolute_precision = 0.02;
  return options;
}

TEST(RunAdaptive, ShardCountDoesNotChangeResults) {
  const dist::SweepSpec spec = small_spec();
  const dist::AdaptiveResult one =
      dist::run_adaptive(spec, coordinator_options(1));
  const dist::AdaptiveResult three =
      dist::run_adaptive(spec, coordinator_options(3));

  EXPECT_EQ(one.meta.achieved, three.meta.achieved);
  EXPECT_EQ(one.cell_rounds, three.cell_rounds);
  EXPECT_EQ(one.total_replications, three.total_replications);
  ASSERT_EQ(one.summaries.size(), three.summaries.size());
  for (std::size_t c = 0; c < one.summaries.size(); ++c)
    expect_bit_identical(one.summaries[c], three.summaries[c]);
  EXPECT_EQ(dist::sweep_csv(one.meta, one.summaries),
            dist::sweep_csv(three.meta, three.summaries));
}

TEST(RunAdaptive, MatchesTheInProcessAdaptiveEngine) {
  const dist::SweepSpec spec = small_spec();
  const dist::AdaptiveResult coordinated =
      dist::run_adaptive(spec, coordinator_options(2));

  core::AdaptiveOptions adaptive;
  adaptive.enabled = true;
  adaptive.relative_precision = 0.10;
  adaptive.absolute_precision = 0.02;
  core::AdaptiveReport report;
  const auto engine_sums = engine_adaptive(spec, adaptive, nullptr, &report);

  ASSERT_EQ(engine_sums.size(), coordinated.summaries.size());
  EXPECT_EQ(report.achieved, coordinated.meta.achieved);
  for (std::size_t c = 0; c < engine_sums.size(); ++c)
    expect_bit_identical(engine_sums[c], coordinated.summaries[c]);
}

TEST(RunAdaptive, RecordsProvenance) {
  const dist::AdaptiveResult result =
      dist::run_adaptive(small_spec(), coordinator_options(2));
  ASSERT_FALSE(result.rounds.empty());
  EXPECT_EQ(result.rounds.front().round, 1u);
  EXPECT_EQ(result.rounds.front().active_cells, 3u);
  std::uint64_t logged_reps = 0;
  for (const auto& r : result.rounds) logged_reps += r.replications;
  EXPECT_EQ(logged_reps, result.total_replications);
  for (std::size_t c = 0; c < result.cell_rounds.size(); ++c) {
    EXPECT_GE(result.cell_rounds[c], 1u);
    EXPECT_LE(result.cell_rounds[c], result.rounds.size());
  }
  EXPECT_EQ(result.budget_replications,
            result.meta.cells * result.meta.replications);
  EXPECT_TRUE(result.meta.merged);
}

TEST(RunAdaptive, RejectsInvalidInputs) {
  dist::SweepSpec replay_input = small_spec();
  replay_input.achieved = {32, 32, 32};
  EXPECT_THROW((void)dist::run_adaptive(replay_input, coordinator_options(1)),
               std::invalid_argument);

  dist::AdaptiveSweepOptions no_shards = coordinator_options(0);
  EXPECT_THROW((void)dist::run_adaptive(small_spec(), no_shards),
               std::invalid_argument);

  dist::AdaptiveSweepOptions no_target = coordinator_options(1);
  no_target.relative_precision = 0.0;
  no_target.absolute_precision = 0.0;
  EXPECT_THROW((void)dist::run_adaptive(small_spec(), no_target),
               std::invalid_argument);
}

// ---- the replay contract ---------------------------------------------------

/// Replay the recorded achieved counts over `shard_count` contiguous
/// slices of the achieved task list (the CLI's `run --replay --shard
/// i/K` cut) and merge.
dist::MergeResult replay(const dist::ShardState& recorded,
                         std::size_t shard_count,
                         const sim::Executor* executor = nullptr) {
  const dist::SweepSpec spec = dist::spec_from_meta(recorded.meta);
  const std::vector<std::uint64_t> tasks = dist::achieved_tasks(recorded.meta);
  std::vector<dist::ShardState> states;
  for (std::size_t i = 0; i < shard_count; ++i) {
    const std::size_t base = tasks.size() / shard_count;
    const std::size_t rem = tasks.size() % shard_count;
    const std::size_t begin = i * base + std::min(i, rem);
    const std::size_t end = begin + base + (i < rem ? 1 : 0);
    states.push_back(dist::run_shard_tasks(
        spec, {tasks.begin() + begin, tasks.begin() + end}, i, shard_count,
        executor));
  }
  return dist::merge_shards(states);
}

TEST(AdaptiveReplay, ReproducesTheAdaptiveRunForAnyShardCut) {
  const dist::AdaptiveResult result =
      dist::run_adaptive(small_spec(), coordinator_options(2));
  const dist::ShardState recorded = dist::adaptive_state(result);
  const std::string adaptive_csv =
      dist::sweep_csv(result.meta, result.summaries);

  for (const std::size_t cut : {std::size_t{1}, std::size_t{3}}) {
    const dist::MergeResult replayed = replay(recorded, cut);
    ASSERT_EQ(replayed.summaries.size(), result.summaries.size());
    for (std::size_t c = 0; c < result.summaries.size(); ++c)
      expect_bit_identical(replayed.summaries[c], result.summaries[c]);
    EXPECT_EQ(dist::sweep_csv(replayed.meta, replayed.summaries),
              adaptive_csv);
    EXPECT_EQ(replayed.meta.achieved, result.meta.achieved);
  }
}

TEST(AdaptiveReplay, ThreadCountDoesNotChangeTheReplay) {
  const dist::AdaptiveResult result =
      dist::run_adaptive(small_spec(), coordinator_options(1));
  const dist::ShardState recorded = dist::adaptive_state(result);
  const sim::Executor one(1), eight(8);
  const dist::MergeResult serial = replay(recorded, 2, &one);
  const dist::MergeResult parallel = replay(recorded, 2, &eight);
  for (std::size_t c = 0; c < serial.summaries.size(); ++c)
    expect_bit_identical(serial.summaries[c], parallel.summaries[c]);
  EXPECT_EQ(dist::sweep_csv(serial.meta, serial.summaries),
            dist::sweep_csv(parallel.meta, parallel.summaries));
}

TEST(AdaptiveReplay, MergeValidatesTheAchievedTaskSet) {
  const dist::AdaptiveResult result =
      dist::run_adaptive(small_spec(), coordinator_options(1));
  const dist::ShardState recorded = dist::adaptive_state(result);
  const dist::SweepSpec spec = dist::spec_from_meta(recorded.meta);
  const std::vector<std::uint64_t> tasks = dist::achieved_tasks(recorded.meta);
  ASSERT_LT(tasks.size(),
            static_cast<std::size_t>(
                dist::sweep_shard_plan(recorded.meta).task_count()))
      << "spec too loose: every cell hit the cap, nothing to validate";

  // Missing coverage: drop the last achieved task.
  {
    std::vector<std::uint64_t> short_list(tasks.begin(), tasks.end() - 1);
    const dist::ShardState partial =
        dist::run_shard_tasks(spec, short_list, 0, 1);
    EXPECT_THROW((void)dist::merge_shards({partial}), std::invalid_argument);
  }

  // A task outside the achieved prefix of its cell: swap in the first
  // task id the recorded counts do NOT cover.
  {
    std::uint64_t foreign = 0;
    std::vector<char> covered(
        static_cast<std::size_t>(
            dist::sweep_shard_plan(recorded.meta).task_count()),
        0);
    for (const auto t : tasks) covered[static_cast<std::size_t>(t)] = 1;
    while (covered[static_cast<std::size_t>(foreign)] != 0) ++foreign;
    std::vector<std::uint64_t> with_foreign(tasks.begin(), tasks.end() - 1);
    with_foreign.push_back(foreign);
    std::sort(with_foreign.begin(), with_foreign.end());
    const dist::ShardState wrong =
        dist::run_shard_tasks(spec, with_foreign, 0, 1);
    EXPECT_THROW((void)dist::merge_shards({wrong}), std::invalid_argument);
  }
}

// ---- state codec v3 --------------------------------------------------------

TEST(AdaptiveState, EncodeDecodeEncodeIsByteStable) {
  const dist::AdaptiveResult result =
      dist::run_adaptive(small_spec(), coordinator_options(2));
  const dist::ShardState state = dist::adaptive_state(result);
  ASSERT_FALSE(state.meta.achieved.empty());
  ASSERT_FALSE(state.rounds.empty());
  ASSERT_FALSE(state.cell_rounds.empty());

  const std::string bytes = dist::encode_shard_state(state);
  const dist::ShardState decoded = dist::decode_shard_state(bytes);
  EXPECT_EQ(dist::encode_shard_state(decoded), bytes);

  EXPECT_EQ(decoded.meta.achieved, state.meta.achieved);
  EXPECT_EQ(decoded.cell_rounds, state.cell_rounds);
  ASSERT_EQ(decoded.rounds.size(), state.rounds.size());
  for (std::size_t r = 0; r < state.rounds.size(); ++r) {
    EXPECT_EQ(decoded.rounds[r].round, state.rounds[r].round);
    EXPECT_EQ(decoded.rounds[r].active_cells, state.rounds[r].active_cells);
    EXPECT_EQ(decoded.rounds[r].tasks, state.rounds[r].tasks);
    EXPECT_EQ(decoded.rounds[r].replications, state.rounds[r].replications);
    EXPECT_EQ(decoded.rounds[r].wall_ms, state.rounds[r].wall_ms);
    EXPECT_EQ(decoded.rounds[r].merge_ms, state.rounds[r].merge_ms);
  }
}

TEST(AdaptiveState, AchievedCountsAreSweepIdentity) {
  // A fixed-budget meta and an adaptive meta of the same spec must not
  // cross-merge: the achieved counts are part of the fingerprint.
  const dist::SweepSpec spec = small_spec();
  const dist::SweepMeta fixed = dist::make_meta(spec);
  dist::SweepSpec adaptive_spec = spec;
  adaptive_spec.achieved = {32, 64, 32};
  const dist::SweepMeta adaptive = dist::make_meta(adaptive_spec);
  EXPECT_NE(dist::sweep_fingerprint(fixed), dist::sweep_fingerprint(adaptive));

  dist::SweepSpec other = spec;
  other.achieved = {32, 64, 64};  // one cell differs
  EXPECT_NE(dist::sweep_fingerprint(adaptive),
            dist::sweep_fingerprint(dist::make_meta(other)));
}

TEST(AdaptiveState, MakeMetaValidatesAchieved) {
  dist::SweepSpec wrong_size = small_spec();
  wrong_size.achieved = {32, 32};  // 3 cells
  EXPECT_THROW((void)dist::make_meta(wrong_size), std::invalid_argument);

  dist::SweepSpec zero = small_spec();
  zero.achieved = {32, 0, 32};
  EXPECT_THROW((void)dist::make_meta(zero), std::invalid_argument);

  dist::SweepSpec above_budget = small_spec();
  above_budget.achieved = {32, 32, 1000};  // budget is 256
  EXPECT_THROW((void)dist::make_meta(above_budget), std::invalid_argument);
}

TEST(AdaptiveState, AchievedTasksCoversEachCellPrefix) {
  dist::SweepSpec spec = small_spec();  // superblock 32, 8 per cell
  spec.achieved = {32, 33, 256};        // 1, 2, and 8 superblocks
  const dist::SweepMeta meta = dist::make_meta(spec);
  const std::vector<std::uint64_t> tasks = dist::achieved_tasks(meta);
  const std::vector<std::uint64_t> expected = {0,  8,  9,  16, 17, 18,
                                               19, 20, 21, 22, 23};
  EXPECT_EQ(tasks, expected);

  // A fixed-budget meta covers the full task space.
  const dist::SweepMeta fixed = dist::make_meta(small_spec());
  EXPECT_EQ(dist::achieved_tasks(fixed).size(), 24u);
}

}  // namespace
}  // namespace divsec
