// Tests for attack/san_model.h — staged-attack SANs and the two-machine
// diversity example from Section I of the paper.
#include <gtest/gtest.h>

#include <cmath>

#include "attack/san_model.h"
#include "san/analysis.h"
#include "san/simulator.h"

namespace divsec::attack {
namespace {

StagedAttackModel fast_model(double p) {
  StagedAttackModel m;
  for (auto& t : m.transitions) {
    t.attempt_rate = 10.0;
    t.success_probability = p;
    t.detection_rate = 0.0;
  }
  return m;
}

TEST(AttackSan, StructureHasStagesAndAbsorbers) {
  const AttackSan a = build_attack_san(fast_model(0.5));
  EXPECT_EQ(a.model.place_count(), kStageCount + 2);
  // Initial marking: one token in stage 0, absorbers empty.
  const auto init = a.model.initial_marking();
  EXPECT_EQ(init[a.stage_place[0]], 1);
  EXPECT_EQ(init[a.success_place], 0);
  EXPECT_EQ(init[a.detected_place], 0);
}

TEST(AttackSan, CertainTransitionsAbsorbIntoSuccess) {
  const AttackSan a = build_attack_san(fast_model(1.0));
  stats::Rng rng(1);
  san::SanSimulator sim(a.model, rng);
  const auto t = sim.run_until_predicate(a.success_predicate(), 1000.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(sim.tokens(a.success_place), 1);
}

TEST(AttackSan, MeanTtaMatchesClosedForm) {
  // 5 stages at rate 10, p 0.5: mean total = 5 / (10*0.5) = 1.0.
  const StagedAttackModel m = fast_model(0.5);
  const AttackSan a = build_attack_san(m);
  const auto fp = san::first_passage(a.model, a.success_predicate(), 1000.0,
                                     10000, 3);
  EXPECT_EQ(fp.censored, 0u);
  EXPECT_NEAR(fp.conditional_mean(), m.expected_total_time(), 0.02);
}

TEST(AttackSan, DetectionCompetesWithProgression) {
  StagedAttackModel m = fast_model(0.5);
  // Strong detection at the activated stage.
  m.transitions[1].detection_rate = 50.0;
  const AttackSan a = build_attack_san(m);
  const auto fp = san::first_passage(a.model, a.detected_predicate(), 1000.0,
                                     2000, 5);
  // Most runs should end detected rather than succeed.
  EXPECT_GT(fp.absorption_probability(), 0.8);
}

TEST(AttackSan, DetectedRunsStopProgressing) {
  StagedAttackModel m = fast_model(1.0);
  m.transitions[0].detection_rate = 1e6;  // detect essentially immediately
  const AttackSan a = build_attack_san(m);
  stats::Rng rng(7);
  san::SanSimulator sim(a.model, rng);
  sim.run_until(10.0);
  EXPECT_EQ(sim.tokens(a.detected_place), 1);
  EXPECT_EQ(sim.tokens(a.success_place), 0);
}

TEST(AttackSan, ImpairmentDetectionRateIsWired) {
  StagedAttackModel m = fast_model(1.0);
  m.transitions[4].attempt_rate = 0.001;  // long sabotage window
  m.impairment_detection_rate = 100.0;    // loud alarms
  const AttackSan a = build_attack_san(m);
  const auto fp = san::first_passage(a.model, a.detected_predicate(), 10000.0,
                                     500, 11);
  EXPECT_GT(fp.absorption_probability(), 0.95);
}

TEST(TwoMachineSan, IdenticalMachinesReplayInstantly) {
  // reuse = 1: once m1 falls, m2 falls at the next attempt w.p. 1.
  const TwoMachineSan ts = build_two_machine_san(1.0, 0.5, 0.5, 1.0);
  const auto fp = san::first_passage(ts.model, ts.both_owned_predicate(), 500.0,
                                     5000, 13);
  EXPECT_EQ(fp.censored, 0u);
  // Mean ~ E[m1] + E[one more attempt] but m2 may even fall first; just
  // check it beats the fully diverse case below by a wide margin.
  const TwoMachineSan div = build_two_machine_san(1.0, 0.5, 0.05, 0.0);
  const auto fpd = san::first_passage(div.model, div.both_owned_predicate(), 500.0,
                                      5000, 13);
  EXPECT_LT(fp.conditional_mean() * 2.0, fpd.conditional_mean());
}

TEST(TwoMachineSan, MonteCarloMatchesClosedForm) {
  struct Case {
    double p1, p2, reuse, t;
  };
  for (const Case c : {Case{0.4, 0.4, 1.0, 5.0}, Case{0.4, 0.4, 0.0, 5.0},
                       Case{0.7, 0.1, 0.5, 8.0}, Case{0.2, 0.9, 0.0, 2.0}}) {
    const TwoMachineSan ts = build_two_machine_san(1.0, c.p1, c.p2, c.reuse);
    const auto fp = san::first_passage(ts.model, ts.both_owned_predicate(), c.t,
                                       20000, 17);
    const double closed =
        two_machine_success_probability(1.0, c.p1, c.p2, c.reuse, c.t);
    EXPECT_NEAR(fp.absorption_probability(), closed, 0.012)
        << "p1=" << c.p1 << " p2=" << c.p2 << " reuse=" << c.reuse;
  }
}

TEST(TwoMachineSan, PaperClaimDiverseIsProductLike) {
  // Section I: identical machines PSA ~ PM; diverse machines PSA ~ PM1*PM2.
  // With small per-attempt probabilities and a short horizon (one attempt
  // each), the closed form must reproduce exactly that.
  const double r = 1.0, t = 1.0, p = 0.3;
  const double identical = two_machine_success_probability(r, p, p, 1.0, t);
  const double diverse = two_machine_success_probability(r, p, p, 0.0, t);
  EXPECT_GT(identical, diverse);
  // As t grows the identical system's PSA approaches P[compromise m1],
  // i.e. 1, while the diverse system needs both exploits to land.
  const double identical_long = two_machine_success_probability(r, p, p, 1.0, 20.0);
  const double diverse_long = two_machine_success_probability(r, p, p, 0.0, 20.0);
  EXPECT_GT(identical_long, 0.99);
  EXPECT_GT(identical_long, diverse_long);
}

TEST(TwoMachineSan, DegenerateDenominatorHandled) {
  // l1 + l2a == l2b triggers the analytic limit branch.
  // p1 + p2 = max(p2, reuse): e.g. p1=0.2, p2=0.3, reuse=0.5.
  const double v = two_machine_success_probability(1.0, 0.2, 0.3, 0.5, 3.0);
  EXPECT_GT(v, 0.0);
  EXPECT_LT(v, 1.0);
  // Cross-check against Monte Carlo.
  const TwoMachineSan ts = build_two_machine_san(1.0, 0.2, 0.3, 0.5);
  const auto fp =
      san::first_passage(ts.model, ts.both_owned_predicate(), 3.0, 20000, 19);
  EXPECT_NEAR(fp.absorption_probability(), v, 0.012);
}

TEST(TwoMachineSan, ZeroProbabilityEdges) {
  EXPECT_EQ(two_machine_success_probability(1.0, 0.0, 0.5, 1.0, 10.0), 0.0);
  EXPECT_EQ(two_machine_success_probability(1.0, 0.5, 0.0, 0.0, 10.0), 0.0);
  // p2 = 0 but reuse > 0: m2 falls only after m1 (strictly sequential).
  const double v = two_machine_success_probability(1.0, 0.5, 0.0, 1.0, 10.0);
  EXPECT_GT(v, 0.5);
}

TEST(TwoMachineSan, InvalidArguments) {
  EXPECT_THROW(build_two_machine_san(0.0, 0.5, 0.5, 0.5), std::invalid_argument);
  EXPECT_THROW(build_two_machine_san(1.0, 1.5, 0.5, 0.5), std::invalid_argument);
  EXPECT_THROW((void)two_machine_success_probability(-1.0, 0.5, 0.5, 0.5, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace divsec::attack
