// Tests for the distributed sweep subsystem: accumulator state
// serialization must round-trip exactly (serialize -> load -> serialize
// is byte-stable), and `run --shard i/K` + `merge` must reproduce the
// in-process streaming path bit for bit — for any shard count K,
// including 1, and regardless of the thread count each shard used.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dist/fnv.h"
#include "dist/state_codec.h"
#include "dist/sweep.h"
#include "sim/executor.h"
#include "sim/shard_plan.h"
#include "stats/rng.h"

namespace divsec::dist {
namespace {

/// A spec small enough for CI but spanning several superblocks per cell,
/// so the cross-process merge exercises the real multi-partial fold.
SweepSpec small_spec() {
  SweepSpec spec;
  spec.preset = "plant_small";
  spec.seed = 4242;
  spec.replications = 50;
  spec.replication_block = 8;
  spec.superblock = 16;  // ceil(50/16) = 4 superblocks per cell
  return spec;
}

void expect_bit_identical(const core::IndicatorSummary& a,
                          const core::IndicatorSummary& b) {
  EXPECT_EQ(a.replications, b.replications);
  // EXPECT_EQ (not NEAR): the distributed path must reproduce the
  // in-process floating-point results exactly.
  EXPECT_EQ(a.tta.mean(), b.tta.mean());
  EXPECT_EQ(a.tta.variance(), b.tta.variance());
  EXPECT_EQ(a.tta.min(), b.tta.min());
  EXPECT_EQ(a.tta.max(), b.tta.max());
  EXPECT_EQ(a.ttsf.mean(), b.ttsf.mean());
  EXPECT_EQ(a.ttsf.variance(), b.ttsf.variance());
  EXPECT_EQ(a.final_ratio.mean(), b.final_ratio.mean());
  EXPECT_EQ(a.tta_censored, b.tta_censored);
  EXPECT_EQ(a.ttsf_censored, b.ttsf_censored);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.tta_event.restricted_mean, b.tta_event.restricted_mean);
  EXPECT_EQ(a.tta_event.median, b.tta_event.median);
  EXPECT_EQ(a.tta_event.q50, b.tta_event.q50);
  EXPECT_EQ(a.tta_event.q90, b.tta_event.q90);
  EXPECT_EQ(a.ttsf_event.restricted_mean, b.ttsf_event.restricted_mean);
  EXPECT_EQ(a.ttsf_event.median, b.ttsf_event.median);
  EXPECT_EQ(a.ttsf_event.q50, b.ttsf_event.q50);
  EXPECT_EQ(a.ttsf_event.q90, b.ttsf_event.q90);
}

core::IndicatorAccumulator filled_accumulator(std::uint64_t seed,
                                              std::size_t n) {
  core::IndicatorAccumulator acc(100.0, 16);
  stats::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    core::IndicatorSample s;
    s.tta = rng.uniform(0.0, 120.0);
    s.tta_censored = s.tta >= 100.0;
    if (s.tta_censored) s.tta = 100.0;
    s.ttsf = rng.uniform(0.0, 100.0);
    s.ttsf_censored = rng.uniform() < 0.25;
    s.attack_succeeded = !s.tta_censored;
    s.final_ratio = rng.uniform();
    acc.add(s);
  }
  return acc;
}

// ---- serialization ---------------------------------------------------------

TEST(StateCodec, AccumulatorStateRoundTripsExactly) {
  const core::IndicatorAccumulator acc = filled_accumulator(7, 333);
  const auto restored = core::IndicatorAccumulator::from_state(acc.state());
  const core::IndicatorSummary a = acc.summarize();
  const core::IndicatorSummary b = restored.summarize();
  expect_bit_identical(a, b);

  // And the restored accumulator keeps folding identically: merge the
  // same partial into both and compare again.
  core::IndicatorAccumulator x = acc;
  core::IndicatorAccumulator y = restored;
  const core::IndicatorAccumulator more = filled_accumulator(8, 57);
  x.merge(more);
  y.merge(more);
  expect_bit_identical(x.summarize(), y.summarize());
}

TEST(StateCodec, EncodeDecodeEncodeIsByteStable) {
  ShardState state;
  state.meta = make_meta(small_spec());
  state.meta.shard = 1;
  state.meta.shard_count = 3;
  state.meta.wall_ms = 12.5;
  state.tasks = {4, 7, 11};  // non-contiguous, as a cost-weighted plan deals
  state.partials.push_back(filled_accumulator(1, 100).state());
  state.partials.push_back(filled_accumulator(2, 31).state());
  state.partials.push_back(filled_accumulator(3, 64).state());
  // Cost model with awkward doubles: round-trip must be exact per bit.
  state.cost.cells = {{100, 0.1 + 0.2}, {0, 0.0}, {31, 1.0 / 3.0}};

  const std::string bytes = encode_shard_state(state);
  const ShardState decoded = decode_shard_state(bytes);
  const std::string again = encode_shard_state(decoded);
  EXPECT_EQ(bytes, again);  // serialize -> load -> serialize, byte-stable

  EXPECT_EQ(decoded.meta.preset, state.meta.preset);
  EXPECT_EQ(decoded.meta.policies, state.meta.policies);
  EXPECT_EQ(decoded.tasks, state.tasks);
  ASSERT_EQ(decoded.cost.cells.size(), 3u);
  EXPECT_EQ(decoded.cost.cells[0].replications, 100u);
  EXPECT_EQ(decoded.cost.cells[0].seconds, 0.1 + 0.2);
  EXPECT_EQ(decoded.cost.cells[2].seconds, 1.0 / 3.0);
  EXPECT_EQ(sweep_fingerprint(decoded.meta), sweep_fingerprint(state.meta));
  EXPECT_EQ(cost_fingerprint(decoded.meta), cost_fingerprint(state.meta));
}

TEST(StateCodec, RejectsCorruptBytes) {
  ShardState state;
  state.meta = make_meta(small_spec());
  state.tasks = {0};
  state.partials.push_back(filled_accumulator(3, 64).state());
  std::string bytes = encode_shard_state(state);

  EXPECT_THROW((void)decode_shard_state("not a state file"),
               std::runtime_error);
  EXPECT_THROW((void)decode_shard_state(bytes.substr(0, bytes.size() / 2)),
               std::runtime_error);
  std::string flipped = bytes;
  flipped[bytes.size() / 2] ^= 0x5A;  // damage the payload
  EXPECT_THROW((void)decode_shard_state(flipped), std::runtime_error);
  std::string wrong_version = bytes;
  wrong_version[8] = 99;  // version field follows the 8-byte magic
  EXPECT_THROW((void)decode_shard_state(wrong_version), std::runtime_error);

  // Structurally inconsistent meta: a cell count that disagrees with the
  // policy list would drive downstream per-cell policy lookups out of
  // bounds, so decode must reject it.
  ShardState inconsistent = state;
  inconsistent.meta.cells = 5;  // policies.size() == 3
  EXPECT_THROW((void)decode_shard_state(encode_shard_state(inconsistent)),
               std::runtime_error);
}

/// A state exercising every v4 section: non-contiguous tasks, cost,
/// adaptive achieved counts, round log, termination rounds.
ShardState rich_state() {
  ShardState state;
  state.meta = make_meta(small_spec());
  state.meta.shard = 0;
  state.meta.shard_count = 1;
  state.meta.merged = true;
  state.meta.achieved = {50, 16, 50};
  state.tasks = {0, 1, 2};
  state.partials.push_back(filled_accumulator(1, 100).state());
  state.partials.push_back(filled_accumulator(2, 31).state());
  state.partials.push_back(filled_accumulator(3, 64).state());
  state.cost.cells = {{100, 0.1 + 0.2}, {16, 0.5}, {31, 1.0 / 3.0}};
  state.rounds = {{1, 3, 3, 48, 10.5, 0.25}, {2, 1, 1, 16, 4.0, 0.125}};
  state.cell_rounds = {2, 1, 2};
  return state;
}

/// Re-sign a (possibly tampered) prefix with a valid trailing checksum,
/// so decode gets past the integrity check and the structural validation
/// under test is what must reject the bytes.
std::string signed_bytes(std::string prefix) {
  prefix.resize(prefix.size() + 8);
  const std::uint64_t sum =
      fnv1a(std::string_view(prefix).substr(0, prefix.size() - 8));
  for (int i = 0; i < 8; ++i)
    prefix[prefix.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<char>((sum >> (8 * i)) & 0xFF);
  return prefix;
}

TEST(StateCodec, AdaptiveSectionsRoundTripByteStable) {
  const ShardState state = rich_state();
  const std::string bytes = encode_shard_state(state);
  const ShardState decoded = decode_shard_state(bytes);
  EXPECT_EQ(encode_shard_state(decoded), bytes);
  EXPECT_EQ(decoded.meta.achieved, state.meta.achieved);
  EXPECT_EQ(decoded.cell_rounds, state.cell_rounds);
  ASSERT_EQ(decoded.rounds.size(), 2u);
  EXPECT_EQ(decoded.rounds[1].replications, 16u);
  EXPECT_EQ(decoded.rounds[0].wall_ms, 10.5);
}

TEST(StateCodec, RejectsOldFormatVersionsWithRegenerateHint) {
  std::string bytes = encode_shard_state(rich_state());
  bytes[8] = 3;  // a pre-t-digest v3 file; version byte follows the magic
  bytes = signed_bytes(bytes.substr(0, bytes.size() - 8));
  try {
    (void)decode_shard_state(bytes);
    FAIL() << "v3 bytes must be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported format version 3"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("regenerate shards"),
              std::string::npos)
        << e.what();
  }
}

TEST(StateCodec, RejectsTruncationAtEverySectionBoundary) {
  const std::string bytes = encode_shard_state(rich_state());
  const StateSectionSizes sizes = state_section_sizes(bytes);
  EXPECT_EQ(sizes.total(), bytes.size());
  // Cut the file at the start of each section (and just past the framing
  // header), then re-sign the prefix: the checksum is valid, so only the
  // structural section walk can catch the missing tail.
  const std::size_t boundaries[] = {
      sizes.header,
      sizes.header + sizes.meta,
      sizes.header + sizes.meta + sizes.tasks,
      sizes.header + sizes.meta + sizes.tasks + sizes.accumulators,
      sizes.header + sizes.meta + sizes.tasks + sizes.accumulators +
          sizes.cost,
  };
  for (const std::size_t cut : boundaries) {
    EXPECT_THROW((void)decode_shard_state(signed_bytes(bytes.substr(0, cut))),
                 std::runtime_error)
        << "cut at byte " << cut;
    EXPECT_THROW((void)state_section_sizes(signed_bytes(bytes.substr(0, cut))),
                 std::runtime_error)
        << "cut at byte " << cut;
  }
  // Mid-section cuts too (inside the accumulator payload).
  const std::size_t mid = sizes.header + sizes.meta + sizes.tasks +
                          sizes.accumulators / 2;
  EXPECT_THROW((void)decode_shard_state(signed_bytes(bytes.substr(0, mid))),
               std::runtime_error);
}

TEST(StateCodec, DetectsSingleFlippedBitAnywhere) {
  const std::string bytes = encode_shard_state(rich_state());
  // A flip in the trailing checksum itself.
  std::string tail = bytes;
  tail.back() = static_cast<char>(tail.back() ^ 0x01);
  EXPECT_THROW((void)decode_shard_state(tail), std::runtime_error);
  // A sampling of payload positions: every one must fail the checksum.
  for (const std::size_t pos :
       {std::size_t{9}, bytes.size() / 4, bytes.size() / 2,
        bytes.size() - 9}) {
    std::string flipped = bytes;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x10);
    EXPECT_THROW((void)decode_shard_state(flipped), std::runtime_error)
        << "flip at byte " << pos;
  }
}

TEST(StateCodec, PackedEncodingBeatsFixedWidthEquivalent) {
  const ShardState state = rich_state();
  const std::string bytes = encode_shard_state(state);
  const std::size_t equivalent = uncompressed_equivalent_bytes(state);
  // Even this small CI-sized state packs well; the >= 4x contract at
  // fleet scale is gated by the bench_e5 codec phase.
  EXPECT_GT(equivalent, bytes.size());
  const StateSectionSizes sizes = state_section_sizes(bytes);
  EXPECT_GT(sizes.accumulators, 0u);
  EXPECT_GT(sizes.meta, 0u);
  EXPECT_GT(sizes.rounds, 0u);
  EXPECT_EQ(sizes.checksum, 8u);
}

TEST(StateCodec, VersionedHeaderLeadsTheFile) {
  ShardState state;
  state.meta = make_meta(small_spec());
  const std::string bytes = encode_shard_state(state);
  ASSERT_GE(bytes.size(), 12u);
  EXPECT_EQ(bytes.substr(0, 8), "DVSWEEPS");
  EXPECT_EQ(static_cast<unsigned char>(bytes[8]), kStateFormatVersion);
  // The embedded JSON header is plain text near the top of the file.
  EXPECT_NE(bytes.find("divsec-sweep-state"), std::string::npos);
}

// ---- shard planning --------------------------------------------------------

TEST(ShardPlanning, TasksTileTheSweepExactly) {
  const sim::ShardPlan plan = sim::ShardPlan::make(3, 50, 8, 16);
  EXPECT_EQ(plan.superblocks_per_group(), 4u);
  EXPECT_EQ(plan.task_count(), 12u);
  for (std::size_t g = 0; g < 3; ++g) {
    std::size_t covered = 0;
    for (std::size_t s = 0; s < 4; ++s) {
      const auto t = plan.task(g * 4 + s);
      EXPECT_EQ(t.group, g);
      EXPECT_EQ(t.superblock, s);
      EXPECT_EQ(t.begin, covered);
      covered = t.end;
    }
    EXPECT_EQ(covered, 50u);
  }
  // Contiguous balanced shards cover [0, task_count) exactly once.
  for (std::size_t k = 1; k <= 14; ++k) {
    std::size_t expected_lo = 0;
    for (std::size_t i = 0; i < k; ++i) {
      const auto [lo, hi] = plan.shard_range(i, k);
      EXPECT_EQ(lo, expected_lo);
      expected_lo = hi;
    }
    EXPECT_EQ(expected_lo, plan.task_count());
  }
}

TEST(ShardPlanning, RejectsMisalignedSuperblocks) {
  EXPECT_THROW((void)sim::ShardPlan::make(1, 100, 8, 12),
               std::invalid_argument);
  EXPECT_THROW((void)sim::ShardPlan::make(1, 100, 8, 4),
               std::invalid_argument);
  const sim::ShardPlan defaults = sim::ShardPlan::make(2, 100, 0, 0);
  EXPECT_EQ(defaults.block(), sim::kDefaultReductionBlock);
  EXPECT_EQ(defaults.superblock() % defaults.block(), 0u);
}

// ---- run + merge vs the in-process path ------------------------------------

TEST(DistributedSweep, AnyShardCountMergesBitIdenticalToInProcess) {
  const SweepSpec spec = small_spec();
  const std::vector<core::IndicatorSummary> reference = run_in_process(spec);
  ASSERT_EQ(reference.size(), spec.policies.size());

  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                              std::size_t{5}}) {
    std::vector<ShardState> states;
    for (std::size_t i = 0; i < k; ++i)
      states.push_back(run_shard(spec, i, k));
    const MergeResult merged = merge_shards(states);
    ASSERT_EQ(merged.summaries.size(), reference.size()) << "K=" << k;
    for (std::size_t c = 0; c < reference.size(); ++c)
      expect_bit_identical(merged.summaries[c], reference[c]);
    // The emitted CSV artifacts agree byte for byte, too.
    EXPECT_EQ(sweep_csv(merged.meta, merged.summaries),
              sweep_csv(make_meta(spec), reference))
        << "K=" << k;
  }
}

TEST(DistributedSweep, ShardBytesIndependentOfThreadCount) {
  const SweepSpec spec = small_spec();
  const sim::Executor one(1);
  const sim::Executor eight(8);
  ShardState a = run_shard(spec, 1, 3, &one);
  ShardState b = run_shard(spec, 1, 3, &eight);
  // Provenance fields (wall time, thread count, measured costs) differ
  // by design; the accumulator payload must not.
  b.meta.wall_ms = a.meta.wall_ms;
  b.meta.threads = a.meta.threads;
  b.cost = a.cost;
  EXPECT_EQ(encode_shard_state(a), encode_shard_state(b));
}

TEST(DistributedSweep, MoreShardsThanTasksLeavesEmptyShardsValid) {
  SweepSpec spec = small_spec();
  spec.replications = 10;  // one superblock per cell -> 3 tasks
  spec.superblock = 16;
  const std::size_t k = 7;
  std::vector<ShardState> states;
  for (std::size_t i = 0; i < k; ++i) states.push_back(run_shard(spec, i, k));
  const MergeResult merged = merge_shards(states);
  const auto reference = run_in_process(spec);
  for (std::size_t c = 0; c < reference.size(); ++c)
    expect_bit_identical(merged.summaries[c], reference[c]);
}

TEST(DistributedSweep, MergeValidatesCoverageAndIdentity) {
  const SweepSpec spec = small_spec();
  std::vector<ShardState> states;
  for (std::size_t i = 0; i < 3; ++i) states.push_back(run_shard(spec, i, 3));

  // Missing shard.
  EXPECT_THROW((void)merge_shards({states[0], states[2]}),
               std::invalid_argument);
  // Duplicate shard.
  EXPECT_THROW((void)merge_shards({states[0], states[0], states[1], states[2]}),
               std::invalid_argument);
  // Foreign shard (different seed -> different fingerprint).
  SweepSpec other = spec;
  other.seed = 9;
  EXPECT_THROW(
      (void)merge_shards({states[0], states[1], run_shard(other, 2, 3)}),
      std::invalid_argument);
  // Already-merged input.
  const MergeResult merged = merge_shards(states);
  EXPECT_THROW((void)merge_shards({merged_state(merged)}),
               std::invalid_argument);
  // Empty input.
  EXPECT_THROW((void)merge_shards({}), std::invalid_argument);
}

TEST(DistributedSweep, MixedShardCountsMergeWhenCoverageIsExact) {
  // Shards need not come from one K: half the tasks from a K=2 run plus
  // the complementary half from a K=4 run still cover every task once.
  const SweepSpec spec = small_spec();
  const ShardState half = run_shard(spec, 0, 2);
  const ShardState q3 = run_shard(spec, 2, 4);
  const ShardState q4 = run_shard(spec, 3, 4);
  const MergeResult merged = merge_shards({half, q3, q4});
  const auto reference = run_in_process(spec);
  for (std::size_t c = 0; c < reference.size(); ++c)
    expect_bit_identical(merged.summaries[c], reference[c]);
}

TEST(DistributedSweep, MergedStateSummarizesIdentically) {
  const SweepSpec spec = small_spec();
  std::vector<ShardState> states;
  for (std::size_t i = 0; i < 2; ++i) states.push_back(run_shard(spec, i, 2));
  const MergeResult merged = merge_shards(states);

  // Round-trip the merged state through the codec and re-summarize: what
  // divsec_report consumes must equal what merge computed.
  const ShardState out = merged_state(merged);
  const ShardState back = decode_shard_state(encode_shard_state(out));
  const auto summaries = summaries_from_merged(back);
  ASSERT_EQ(summaries.size(), merged.summaries.size());
  for (std::size_t c = 0; c < summaries.size(); ++c)
    expect_bit_identical(summaries[c], merged.summaries[c]);

  // Unmerged shard states are rejected by the report path.
  EXPECT_THROW((void)summaries_from_merged(states[0]), std::invalid_argument);
}

TEST(DistributedSweep, SpecValidation) {
  SweepSpec bad = small_spec();
  bad.preset = "no_such_preset";
  EXPECT_THROW((void)make_meta(bad), std::invalid_argument);
  bad = small_spec();
  bad.threat = "no_such_threat";
  EXPECT_THROW((void)make_meta(bad), std::invalid_argument);
  bad = small_spec();
  bad.policies.clear();
  EXPECT_THROW((void)make_meta(bad), std::invalid_argument);
  bad = small_spec();
  bad.superblock = 12;  // not a multiple of block 8
  EXPECT_THROW((void)make_meta(bad), std::invalid_argument);
}

}  // namespace
}  // namespace divsec::dist
