// Tests for stats/descriptive.h — accumulators, quantiles, intervals.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/descriptive.h"
#include "stats/distributions.h"
#include "stats/rng.h"

namespace divsec::stats {
namespace {

TEST(OnlineStats, MatchesDirectComputation) {
  const std::vector<double> xs{2.0, -1.0, 4.5, 0.0, 3.25, 7.0};
  OnlineStats st;
  for (double x : xs) st.add(x);
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  EXPECT_EQ(st.count(), xs.size());
  EXPECT_NEAR(st.mean(), mean, 1e-12);
  EXPECT_NEAR(st.variance(), ss / (static_cast<double>(xs.size()) - 1.0), 1e-12);
  EXPECT_EQ(st.min(), -1.0);
  EXPECT_EQ(st.max(), 7.0);
}

TEST(OnlineStats, EmptyAndSingle) {
  OnlineStats st;
  EXPECT_EQ(st.count(), 0u);
  EXPECT_EQ(st.variance(), 0.0);
  st.add(5.0);
  EXPECT_EQ(st.mean(), 5.0);
  EXPECT_EQ(st.variance(), 0.0);
  EXPECT_EQ(st.sem(), 0.0);
}

TEST(OnlineStats, MergeEqualsSequential) {
  Rng rng(10);
  OnlineStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5, 5);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmptyIsIdentity) {
  OnlineStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.mean(), mean);
}

TEST(ConfidenceInterval, ContainsMeanAndIsSymmetric) {
  OnlineStats st;
  for (int i = 1; i <= 30; ++i) st.add(static_cast<double>(i));
  const auto ci = mean_confidence_interval(st, 0.95);
  EXPECT_TRUE(ci.contains(st.mean()));
  EXPECT_NEAR(0.5 * (ci.lo + ci.hi), st.mean(), 1e-12);
  EXPECT_GT(ci.half_width(), 0.0);
}

TEST(ConfidenceInterval, CoverageIsApproximatelyNominal) {
  // Property: a 90% t-interval over N(0,1) samples covers 0 about 90% of
  // the time.
  int covered = 0;
  constexpr int kTrials = 2000;
  Rng master(77);
  for (int t = 0; t < kTrials; ++t) {
    Rng rng = master.stream(t);
    OnlineStats st;
    for (int i = 0; i < 15; ++i) st.add(sample_standard_normal(rng));
    if (mean_confidence_interval(st, 0.90).contains(0.0)) ++covered;
  }
  const double coverage = static_cast<double>(covered) / kTrials;
  EXPECT_NEAR(coverage, 0.90, 0.025);
}

TEST(ConfidenceInterval, Errors) {
  OnlineStats st;
  st.add(1.0);
  EXPECT_THROW((void)mean_confidence_interval(st, 0.95), std::invalid_argument);
  st.add(2.0);
  EXPECT_THROW((void)mean_confidence_interval(st, 0.0), std::invalid_argument);
  EXPECT_THROW((void)mean_confidence_interval(st, 1.0), std::invalid_argument);
}

TEST(Quantile, OrderStatisticsInterpolation) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(quantile(v, 0.0), 1.0);
  EXPECT_EQ(quantile(v, 1.0), 4.0);
  EXPECT_NEAR(quantile(v, 0.5), 2.5, 1e-12);
  EXPECT_NEAR(quantile(v, 1.0 / 3.0), 2.0, 1e-12);
}

TEST(Quantile, UnsortedInputIsHandled) {
  const std::vector<double> v{9.0, 1.0, 5.0};
  EXPECT_EQ(quantile(v, 0.5), 5.0);
}

TEST(Quantile, Errors) {
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
  const std::vector<double> v{1.0};
  EXPECT_THROW((void)quantile(v, 1.5), std::invalid_argument);
}

TEST(Summarize, FiveNumberSummary) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const Summary s = summarize(v);
  EXPECT_EQ(s.n, 100u);
  EXPECT_NEAR(s.mean, 50.5, 1e-12);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
  EXPECT_NEAR(s.median, 50.5, 1e-12);
  EXPECT_NEAR(s.p25, 25.75, 1e-12);
  EXPECT_NEAR(s.p75, 75.25, 1e-12);
  EXPECT_GT(s.p95, s.p75);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 9
  h.add(-5.0);  // clamped to bin 0
  h.add(42.0);  // clamped to bin 9
  h.add(5.0);   // bin 5
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_NEAR(h.density(0), 0.4, 1e-12);
  EXPECT_EQ(h.bin_low(5), 5.0);
  EXPECT_EQ(h.bin_high(5), 6.0);
}

TEST(Histogram, Errors) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(BatchMeans, ReducesToBatchAverages) {
  BatchMeans bm(10);
  for (int i = 0; i < 35; ++i) bm.add(static_cast<double>(i % 10));
  EXPECT_EQ(bm.completed_batches(), 3u);  // the partial 4th batch is pending
  // Each complete batch holds 0..9, mean 4.5.
  EXPECT_NEAR(bm.batch_stats().mean(), 4.5, 1e-12);
}

TEST(BatchMeans, ConfidenceIntervalNeedsTwoBatches) {
  BatchMeans bm(5);
  for (int i = 0; i < 5; ++i) bm.add(1.0);
  EXPECT_THROW((void)bm.confidence_interval(), std::invalid_argument);
  for (int i = 0; i < 5; ++i) bm.add(3.0);
  const auto ci = bm.confidence_interval(0.95);
  EXPECT_TRUE(ci.contains(2.0));
}

TEST(BatchMeans, RejectsZeroBatchSize) {
  EXPECT_THROW(BatchMeans(0), std::invalid_argument);
}

}  // namespace
}  // namespace divsec::stats
