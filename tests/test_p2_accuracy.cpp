// Sketch accuracy audit, both backends (closes the ROADMAP open item):
// the streaming engine reports TTA/TTSF q50/q90 from mergeable sketches
// folded per block and merged in ascending order — at fleet scale that
// is hundreds of merges, so merge drift is what decides whether the
// columns are load-bearing. This audit runs the SAME deep merge tree
// (256-blocks into 16384-superblocks, superblocks dealt round-robin to
// shards, shards merged in ascending order — the two-level reduction of
// sim::blocked_reduce_groups + sim::reduce_task_partials plus the
// cross-process merge) over both sketches on three event-time-like
// regimes, at 10^5 observations; the 10^6-rep variant is the gtest
// equivalent of a Catch2 [.][slow] tag — DISABLED_ by default, runnable
// with --gtest_also_run_disabled_tests (nightly does).
//
// Measured verdict (tolerances are regression guards around these
// numbers, not aspirations):
//   * a single un-merged P² sketch is excellent: <= 0.2% everywhere;
//   * the P² pooled-CDF merge carries a systematic UPWARD bias that does
//     not average out with n: ~+4% (q50) / ~+10% (q90) on an
//     exponential, ~+3-6% censored, +23% (q50) on a bimodal fast/slow
//     mixture. P² stays in the tree as the single-stream reference that
//     documents exactly this;
//   * the t-digest merge (the production backend since the
//     CensoredTimeAccumulator switch) holds <= 1% on every regime,
//     every quantile, through the full deep-merge tree — which is why
//     the merged q50/q90 columns are now load-bearing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/p2_quantile.h"
#include "stats/rng.h"
#include "stats/tdigest.h"

namespace divsec::stats {
namespace {

enum class Regime { kExponential, kBimodalMixture, kCensoredExponential };

double draw(Regime regime, Rng& rng) {
  switch (regime) {
    case Regime::kExponential:
      return -10.0 * std::log1p(-rng.uniform());
    case Regime::kBimodalMixture:
      // Mostly fast events with a detached heavy slow mode — the shape
      // the 5-marker sketch merge handles worst.
      return rng.bernoulli(0.7) ? -10.0 * std::log1p(-rng.uniform())
                                : 50.0 - 100.0 * std::log1p(-rng.uniform());
    case Regime::kCensoredExponential:
      // Event times clamped at a horizon, like censored TTA samples.
      return std::min(-30.0 * std::log1p(-rng.uniform()), 100.0);
  }
  return 0.0;
}

/// Exact type-7 quantile of a sample.
double exact_quantile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  const double rank = q * (static_cast<double>(v.size()) - 1.0);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double w = rank - static_cast<double>(lo);
  return v[lo] + w * (v[hi] - v[lo]);
}

/// Fold `values` through the measurement engine's reduction shape: P²
/// partials per `block` values merged in ascending order into superblock
/// sketches, superblocks merged in ascending order — the two-level
/// sequence of sim::blocked_reduce_groups + sim::reduce_task_partials.
double merged_estimate(const std::vector<double>& values, double q,
                       std::size_t block, std::size_t superblock) {
  P2Quantile total(q);
  for (std::size_t sb = 0; sb < values.size(); sb += superblock) {
    P2Quantile sb_sketch(q);
    const std::size_t sb_end = std::min(values.size(), sb + superblock);
    for (std::size_t b = sb; b < sb_end; b += block) {
      P2Quantile partial(q);
      const std::size_t b_end = std::min(sb_end, b + block);
      for (std::size_t i = b; i < b_end; ++i) partial.add(values[i]);
      sb_sketch.merge(partial);
    }
    total.merge(sb_sketch);
  }
  return total.value();
}

/// The t-digest through the full distributed tree: block partials merged
/// into superblock digests, superblock digests dealt round-robin across
/// `shards` shard digests (what each divsec_sweep process accumulates
/// over its rounds), shard digests merged in ascending shard order (the
/// coordinator's fold). Three merge levels — deeper than production,
/// never shallower.
TDigest deep_merged_digest(const std::vector<double>& values,
                           std::size_t block, std::size_t superblock,
                           std::size_t shards) {
  std::vector<TDigest> shard_digests(shards, TDigest(100.0));
  std::size_t sb_index = 0;
  for (std::size_t sb = 0; sb < values.size(); sb += superblock, ++sb_index) {
    TDigest sb_sketch(100.0);
    const std::size_t sb_end = std::min(values.size(), sb + superblock);
    for (std::size_t b = sb; b < sb_end; b += block) {
      TDigest partial(100.0);
      const std::size_t b_end = std::min(sb_end, b + block);
      for (std::size_t i = b; i < b_end; ++i) partial.add(values[i]);
      sb_sketch.merge(partial);
    }
    shard_digests[sb_index % shards].merge(sb_sketch);
  }
  TDigest total(100.0);
  for (const TDigest& s : shard_digests) total.merge(s);
  return total;
}

/// Relative drift of the estimate vs the exact quantile.
double rel(double estimate, double exact) {
  return (estimate - exact) / exact;
}

void audit(Regime regime, std::size_t n, double tol_single,
           double tol_merged_q50, double tol_merged_q90) {
  Rng rng(20130624);
  std::vector<double> values;
  values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) values.push_back(draw(regime, rng));

  const TDigest digest = deep_merged_digest(values, 256, 16384, 4);
  for (const double q : {0.5, 0.9}) {
    const double exact = exact_quantile(values, q);
    const double tol_merged = q == 0.5 ? tol_merged_q50 : tol_merged_q90;

    P2Quantile single(q);
    for (const double v : values) single.add(v);
    EXPECT_LE(std::abs(rel(single.value(), exact)), tol_single)
        << "single sketch, q=" << q << " n=" << n;

    const double merged = merged_estimate(values, q, 256, 16384);
    EXPECT_LE(std::abs(rel(merged, exact)), tol_merged)
        << "merged (default 256/16384 shape), q=" << q << " n=" << n
        << " exact=" << exact << " merged=" << merged;

    // The production backend: <= 1% through the deeper three-level tree,
    // on every regime — the reason the merged quantile columns are
    // load-bearing now.
    EXPECT_LE(std::abs(rel(digest.quantile(q), exact)), 0.01)
        << "t-digest deep merge, q=" << q << " n=" << n
        << " exact=" << exact << " merged=" << digest.quantile(q);
  }
}

TEST(SketchAccuracyAudit, SingleSketchIsTightAndMergeDriftIsBoundedAt1e5) {
  // P² tolerances are ~1.5x the measured drift: they fail if the merge
  // gets materially worse, without pretending the bias is smaller than
  // it is. The t-digest bound inside audit() is the hard 1% gate.
  audit(Regime::kExponential, 100000,
        /*tol_single=*/0.005, /*tol_merged_q50=*/0.06, /*tol_merged_q90=*/0.15);
  audit(Regime::kCensoredExponential, 100000,
        /*tol_single=*/0.005, /*tol_merged_q50=*/0.06, /*tol_merged_q90=*/0.10);
}

TEST(SketchAccuracyAudit, MergeBiasOnBimodalMixturesIsLargeAndDocumented) {
  // Measured: +23% q50 / +15% q90 at n = 1e5 for the P² merge. The audit
  // pins the magnitude (a regression guard and an honest record): if
  // this starts failing *low*, the merge improved — tighten the verdict.
  // The t-digest holds 1% on the same worst-case shape.
  Rng rng(20130624);
  std::vector<double> values;
  values.reserve(100000);
  for (std::size_t i = 0; i < 100000; ++i)
    values.push_back(draw(Regime::kBimodalMixture, rng));
  const double exact50 = exact_quantile(values, 0.5);
  const double drift50 = rel(merged_estimate(values, 0.5, 256, 16384), exact50);
  EXPECT_GT(drift50, 0.05) << "merge bias shrank: update the audit verdict";
  EXPECT_LT(drift50, 0.40) << "merge bias grew beyond the measured envelope";
  const double exact90 = exact_quantile(values, 0.9);
  const double drift90 = rel(merged_estimate(values, 0.9, 256, 16384), exact90);
  EXPECT_LT(std::abs(drift90), 0.25);

  const TDigest digest = deep_merged_digest(values, 256, 16384, 4);
  EXPECT_LE(std::abs(rel(digest.quantile(0.5), exact50)), 0.01)
      << "t-digest q50 on the bimodal mixture";
  EXPECT_LE(std::abs(rel(digest.quantile(0.9), exact90)), 0.01)
      << "t-digest q90 on the bimodal mixture";
}

TEST(SketchAccuracyAudit, DigestMergeOrderIsDeterministicAndShardInvariant) {
  // Identical merge trees give bit-identical digests (the determinism
  // contract the exact reducer relies on); the quantile estimate is also
  // stable (within the 1% gate) across shard-count choices.
  Rng rng(7);
  std::vector<double> values;
  for (std::size_t i = 0; i < 20000; ++i)
    values.push_back(draw(Regime::kCensoredExponential, rng));
  const TDigest a = deep_merged_digest(values, 256, 4096, 4);
  const TDigest b = deep_merged_digest(values, 256, 4096, 4);
  EXPECT_EQ(a.quantile(0.5), b.quantile(0.5));
  EXPECT_EQ(a.quantile(0.9), b.quantile(0.9));
  const double exact = exact_quantile(values, 0.9);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{3},
                                   std::size_t{8}}) {
    const TDigest d = deep_merged_digest(values, 256, 4096, shards);
    EXPECT_LE(std::abs(rel(d.quantile(0.9), exact)), 0.01)
        << "shards=" << shards;
  }
}

// The 10^6-observation audit: the gtest [.][slow] equivalent, DISABLED_
// by default (the exact-quantile sorts dominate CI time); nightly runs
// it with --gtest_also_run_disabled_tests. Measured drift matches 1e5 —
// the P² merge bias is per-merge and does not average out, and the
// t-digest keeps its 1% bound.
TEST(SketchAccuracyAudit, DISABLED_MergedSketchDriftAt1e6) {
  audit(Regime::kExponential, 1000000,
        /*tol_single=*/0.005, /*tol_merged_q50=*/0.06, /*tol_merged_q90=*/0.15);
  audit(Regime::kCensoredExponential, 1000000,
        /*tol_single=*/0.005, /*tol_merged_q50=*/0.06, /*tol_merged_q90=*/0.10);
}

}  // namespace
}  // namespace divsec::stats
