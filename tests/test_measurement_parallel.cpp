// Tests for core/measurement.h — the batched parallel measurement engine.
//
// The engine's contract: job (cell, rep) draws from Rng(cell.seed, rep),
// so multi-threaded measurement is bit-identical to the serial path for
// both measurement engines, and replication stream semantics
// (run_replications' (seed, i) derivation) are preserved.
#include <gtest/gtest.h>

#include <vector>

#include "core/measurement.h"
#include "core/pipeline.h"
#include "sim/executor.h"
#include "sim/replication.h"

namespace divsec::core {
namespace {

void expect_bit_identical(const IndicatorSummary& a, const IndicatorSummary& b) {
  EXPECT_EQ(a.replications, b.replications);
  EXPECT_EQ(a.horizon_hours, b.horizon_hours);
  // EXPECT_EQ (not NEAR): the parallel path must reproduce the serial
  // floating-point results exactly, not just approximately.
  EXPECT_EQ(a.tta.mean(), b.tta.mean());
  EXPECT_EQ(a.tta.variance(), b.tta.variance());
  EXPECT_EQ(a.ttsf.mean(), b.ttsf.mean());
  EXPECT_EQ(a.ttsf.variance(), b.ttsf.variance());
  EXPECT_EQ(a.final_ratio.mean(), b.final_ratio.mean());
  EXPECT_EQ(a.tta_censored, b.tta_censored);
  EXPECT_EQ(a.ttsf_censored, b.ttsf_censored);
  EXPECT_EQ(a.successes, b.successes);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].tta, b.samples[i].tta) << "rep " << i;
    EXPECT_EQ(a.samples[i].tta_censored, b.samples[i].tta_censored) << "rep " << i;
    EXPECT_EQ(a.samples[i].ttsf, b.samples[i].ttsf) << "rep " << i;
    EXPECT_EQ(a.samples[i].ttsf_censored, b.samples[i].ttsf_censored) << "rep " << i;
    EXPECT_EQ(a.samples[i].attack_succeeded, b.samples[i].attack_succeeded)
        << "rep " << i;
    EXPECT_EQ(a.samples[i].final_ratio, b.samples[i].final_ratio) << "rep " << i;
  }
}

class MeasurementParallelFixture : public ::testing::Test {
 protected:
  MeasurementParallelFixture() : desc(make_scope_description(cat)) {}

  [[nodiscard]] MeasurementOptions options(Engine engine, std::size_t reps,
                                           const sim::Executor* ex) const {
    MeasurementOptions mo;
    mo.engine = engine;
    mo.replications = reps;
    mo.seed = 2013;
    mo.executor = ex;
    return mo;
  }

  divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  SystemDescription desc;
  sim::Executor serial{1};
  sim::Executor threaded{4};  // the DIVSEC_THREADS=4 configuration
};

TEST_F(MeasurementParallelFixture, StagedSanFactorialBitIdenticalAcrossThreads) {
  const attack::ThreatProfile profile = attack::ThreatProfile::stuxnet();
  PipelineOptions serial_opts;
  serial_opts.measurement = options(Engine::kStagedSan, 120, &serial);
  PipelineOptions parallel_opts;
  parallel_opts.measurement = options(Engine::kStagedSan, 120, &threaded);

  const Pipeline serial_pipeline(desc, profile, serial_opts);
  const Pipeline parallel_pipeline(desc, profile, parallel_opts);
  const auto a = serial_pipeline.measure_full_factorial({"os.control", "plc.firmware"}, 2);
  const auto b =
      parallel_pipeline.measure_full_factorial({"os.control", "plc.firmware"}, 2);

  ASSERT_EQ(a.configuration_count(), b.configuration_count());
  for (std::size_t c = 0; c < a.configuration_count(); ++c) {
    EXPECT_EQ(a.configurations[c].variant, b.configurations[c].variant);
    expect_bit_identical(a.summaries[c], b.summaries[c]);
    EXPECT_EQ(a.tta_cells[c], b.tta_cells[c]);
    EXPECT_EQ(a.ttsf_cells[c], b.ttsf_cells[c]);
    EXPECT_EQ(a.success_cells[c], b.success_cells[c]);
  }
}

TEST_F(MeasurementParallelFixture, CampaignFactorialBitIdenticalAcrossThreads) {
  const attack::ThreatProfile profile = attack::ThreatProfile::stuxnet();
  PipelineOptions serial_opts;
  serial_opts.measurement = options(Engine::kCampaign, 40, &serial);
  PipelineOptions parallel_opts;
  parallel_opts.measurement = options(Engine::kCampaign, 40, &threaded);

  const Pipeline serial_pipeline(desc, profile, serial_opts);
  const Pipeline parallel_pipeline(desc, profile, parallel_opts);
  const auto a = serial_pipeline.measure_full_factorial({"plc.firmware", "firewall"}, 2);
  const auto b =
      parallel_pipeline.measure_full_factorial({"plc.firmware", "firewall"}, 2);

  ASSERT_EQ(a.configuration_count(), b.configuration_count());
  for (std::size_t c = 0; c < a.configuration_count(); ++c)
    expect_bit_identical(a.summaries[c], b.summaries[c]);
}

TEST_F(MeasurementParallelFixture, MeasureIndicatorsMatchesEngineForBothEngines) {
  const attack::ThreatProfile profile = attack::ThreatProfile::stuxnet();
  for (const Engine engine : {Engine::kCampaign, Engine::kStagedSan}) {
    const auto serial_summary = measure_indicators(
        desc, desc.baseline_configuration(), profile, options(engine, 50, &serial));
    const auto parallel_summary = measure_indicators(
        desc, desc.baseline_configuration(), profile, options(engine, 50, &threaded));
    expect_bit_identical(serial_summary, parallel_summary);
  }
}

TEST_F(MeasurementParallelFixture, RatioCurveBitIdenticalAcrossThreads) {
  const attack::ThreatProfile profile = attack::ThreatProfile::stuxnet();
  const std::vector<double> grid{0.0, 100.0, 500.0, 1000.0, 2160.0};
  const auto a = mean_compromised_ratio_curve(desc, desc.baseline_configuration(),
                                              profile,
                                              options(Engine::kCampaign, 40, &serial),
                                              grid);
  const auto b = mean_compromised_ratio_curve(desc, desc.baseline_configuration(),
                                              profile,
                                              options(Engine::kCampaign, 40, &threaded),
                                              grid);
  EXPECT_EQ(a, b);  // exact: the reduction folds in replication order
}

TEST_F(MeasurementParallelFixture, KeepSamplesOffDropsRawSamplesOnly) {
  const attack::ThreatProfile profile = attack::ThreatProfile::stuxnet();
  MeasurementOptions with = options(Engine::kStagedSan, 80, &serial);
  MeasurementOptions without = with;
  without.keep_samples = false;

  const auto a = measure_indicators(desc, desc.baseline_configuration(), profile, with);
  const auto b =
      measure_indicators(desc, desc.baseline_configuration(), profile, without);
  EXPECT_EQ(a.samples.size(), 80u);
  EXPECT_TRUE(b.samples.empty());
  EXPECT_EQ(a.tta.mean(), b.tta.mean());
  EXPECT_EQ(a.ttsf.variance(), b.ttsf.variance());
  EXPECT_EQ(a.successes, b.successes);

  // A MeasurementTable still gets its per-replicate response cells.
  PipelineOptions po;
  po.measurement = without;
  const Pipeline p(desc, profile, po);
  const auto table = p.measure_full_factorial({"plc.firmware", "firewall"}, 2);
  for (std::size_t c = 0; c < table.configuration_count(); ++c) {
    EXPECT_TRUE(table.summaries[c].samples.empty());
    EXPECT_EQ(table.tta_cells[c].size(), 80u);
    EXPECT_EQ(table.success_cells[c].size(), 80u);
  }
}

TEST(ReplicationStreams, RunReplicationsPreservesPerIndexStreams) {
  // Replication i must consume exactly the (seed, i) stream, executor or
  // not: this is the invariant all measurement determinism rests on.
  const sim::Experiment experiment = [](stats::Rng& rng) { return rng.uniform(); };
  constexpr std::uint64_t kSeed = 424242;

  const auto serial = sim::run_replications(experiment, 32, kSeed);
  ASSERT_EQ(serial.samples.size(), 32u);
  for (std::size_t i = 0; i < 32; ++i) {
    stats::Rng rng(kSeed, i);
    EXPECT_EQ(serial.samples[i], rng.uniform()) << "stream " << i;
  }

  const sim::Executor threaded(4);
  const auto parallel = sim::run_replications(experiment, 32, kSeed, &threaded);
  EXPECT_EQ(serial.samples, parallel.samples);
  EXPECT_EQ(serial.stats.mean(), parallel.stats.mean());
  EXPECT_EQ(serial.stats.variance(), parallel.stats.variance());

  // Prefix property: a shorter run is a prefix of a longer one.
  const auto shorter = sim::run_replications(experiment, 8, kSeed, &threaded);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(shorter.samples[i], serial.samples[i]);
}

TEST(ReplicationStreams, SequentialStoppingRuleMatchesSerialExactly) {
  const sim::Experiment experiment = [](stats::Rng& rng) {
    return 10.0 + rng.uniform();  // tight spread: stops quickly
  };
  sim::SequentialOptions opts;
  opts.min_replications = 10;
  opts.max_replications = 500;
  opts.relative_precision = 0.01;

  const auto serial = sim::run_sequential(experiment, opts, 7);
  const sim::Executor threaded(4);
  const auto parallel = sim::run_sequential(experiment, opts, 7, &threaded);

  // Same stopping point, same retained samples, same statistics: surplus
  // batch samples past the stopping index are discarded.
  EXPECT_EQ(serial.samples, parallel.samples);
  EXPECT_EQ(serial.stats.count(), parallel.stats.count());
  EXPECT_EQ(serial.stats.mean(), parallel.stats.mean());
  EXPECT_EQ(serial.stats.variance(), parallel.stats.variance());
}

}  // namespace
}  // namespace divsec::core
