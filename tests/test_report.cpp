// Tests for core/report.h — CSV/Markdown exports.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/report.h"

namespace divsec::core {
namespace {

class ReportFixture : public ::testing::Test {
 protected:
  ReportFixture() : desc(make_scope_description(cat)) {
    core::PipelineOptions po;
    po.measurement.engine = Engine::kStagedSan;
    po.measurement.replications = 60;
    po.measurement.seed = 3;
    const Pipeline pipeline(desc, attack::ThreatProfile::stuxnet(), po);
    result = pipeline.run({"plc.firmware", "firewall"}, 2);
  }
  divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  SystemDescription desc;
  Pipeline::Result result;
};

TEST_F(ReportFixture, MeasurementCsvShape) {
  const std::string csv = measurement_csv(result.table);
  std::istringstream is(csv);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line,
            "plc.firmware,firewall,success_prob,tta_mean,tta_censored,"
            "tta_rmean,tta_median,ttsf_mean,ttsf_censored,ttsf_rmean,"
            "ttsf_median,final_ratio_mean,ratio_t25,ratio_t50,ratio_t75,"
            "ratio_auc,censor_warning");
  std::size_t rows = 0;
  while (std::getline(is, line))
    if (!line.empty()) ++rows;
  EXPECT_EQ(rows, result.table.configuration_count());
  // First data row starts with the baseline variant names.
  EXPECT_NE(csv.find("plc.s7_stock,fw.stock,"), std::string::npos);
}

TEST_F(ReportFixture, MeasurementCsvFlagsHeavilyCensoredCells) {
  // With the warn threshold at 0, every cell with any censoring must be
  // flagged; with it at 1, none may be.
  const std::string strict = measurement_csv(result.table, 0.0);
  const std::string lax = measurement_csv(result.table, 1.0);
  EXPECT_EQ(lax.find(",tta\n"), std::string::npos);
  EXPECT_EQ(lax.find(",ttsf\n"), std::string::npos);
  EXPECT_EQ(lax.find(",tta;ttsf\n"), std::string::npos);
  bool any_censored = false;
  for (const auto& s : result.table.summaries)
    any_censored = any_censored || s.tta_censored > 0 || s.ttsf_censored > 0;
  if (any_censored) {
    EXPECT_TRUE(strict.find(",tta\n") != std::string::npos ||
                strict.find(",ttsf\n") != std::string::npos ||
                strict.find(",tta;ttsf\n") != std::string::npos);
  }
}

TEST_F(ReportFixture, AnovaCsvHasAllRows) {
  const std::string csv = anova_csv(result.assessment.success_anova);
  EXPECT_NE(csv.find("effect,ss,df,ms,f,p,eta2"), std::string::npos);
  EXPECT_NE(csv.find("plc.firmware,"), std::string::npos);
  EXPECT_NE(csv.find("Error,"), std::string::npos);
  EXPECT_NE(csv.find("Total,"), std::string::npos);
  // Interaction names contain ':' but no comma — unquoted is fine.
  EXPECT_NE(csv.find("plc.firmware:firewall"), std::string::npos);
}

TEST_F(ReportFixture, MarkdownContainsSectionsAndRanking) {
  const std::string md = assessment_markdown(result.assessment, "SCoPE report");
  EXPECT_NE(md.find("# SCoPE report"), std::string::npos);
  EXPECT_NE(md.find("## Attack success probability"), std::string::npos);
  EXPECT_NE(md.find("## Time-To-Attack"), std::string::npos);
  EXPECT_NE(md.find("## Component ranking"), std::string::npos);
  EXPECT_NE(md.find("## Recommended for diversification"), std::string::npos);
  EXPECT_NE(md.find("| Effect | SS | df |"), std::string::npos);
}

TEST_F(ReportFixture, SaveToFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "divsec_report_test.csv";
  const std::string content = measurement_csv(result.table);
  save_to_file(path, content);
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), content);
  std::remove(path.c_str());
}

TEST(Report, SaveToBadPathThrows) {
  EXPECT_THROW(save_to_file("/nonexistent-dir-xyz/file.csv", "x"),
               std::runtime_error);
}

TEST(Report, CsvEscaping) {
  // A factor level with a comma must be quoted.
  stats::FactorSpace space(
      std::vector<stats::Factor>{{"f,actor", {"a\"b", "plain"}}});
  MeasurementTable table;
  table.space = space;
  for (std::size_t c = 0; c < 2; ++c) {
    table.configurations.push_back({});
    IndicatorSummary s;
    s.replications = 1;
    table.summaries.push_back(s);
  }
  const std::string csv = measurement_csv(table);
  EXPECT_NE(csv.find("\"f,actor\""), std::string::npos);
  EXPECT_NE(csv.find("\"a\"\"b\""), std::string::npos);
}

}  // namespace
}  // namespace divsec::core
