// Tests for sim/executor.h — the thread pool under the measurement engine.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/executor.h"

namespace divsec::sim {
namespace {

TEST(Executor, CoversEveryIndexExactlyOnce) {
  const Executor ex(4);
  EXPECT_EQ(ex.thread_count(), 4u);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ex.parallel_for(0, kN, [&hits](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Executor, RespectsRangeOffsets) {
  const Executor ex(3);
  std::vector<std::atomic<int>> hits(10);
  ex.parallel_for(4, 8, [&hits](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_EQ(hits[i].load(), (i >= 4 && i < 8) ? 1 : 0) << i;
}

TEST(Executor, SingleThreadIsPureSerial) {
  const Executor ex(1);
  EXPECT_EQ(ex.thread_count(), 1u);
  // The serial path runs on the calling thread, so strict ordering holds.
  std::vector<std::size_t> order;
  ex.parallel_for(0, 16, [&order](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(Executor, EmptyRangeIsANoop) {
  const Executor ex(2);
  ex.parallel_for(5, 5, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(Executor, ParallelMapPreservesIndexOrder) {
  const Executor ex(4);
  const std::vector<double> out = ex.parallel_map<double>(
      64, [](std::size_t i) { return static_cast<double>(i) * 2.0; });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 2.0);
}

TEST(Executor, PropagatesExceptionsToCaller) {
  const Executor ex(4);
  EXPECT_THROW(ex.parallel_for(0, 100,
                               [](std::size_t i) {
                                 if (i == 37)
                                   throw std::runtime_error("job 37 failed");
                               }),
               std::runtime_error);
  // The pool must still be usable after a failed parallel_for.
  std::atomic<int> count{0};
  ex.parallel_for(0, 10, [&count](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(Executor, ConcurrentCallersSerializeInsteadOfDeadlocking) {
  // Two threads sharing one executor (the Executor::shared() pattern)
  // must take turns; neither call may lose chunks or hang.
  const Executor ex(4);
  constexpr std::size_t kN = 400;
  std::vector<std::atomic<int>> hits_a(kN), hits_b(kN);
  std::thread other([&ex, &hits_b] {
    ex.parallel_for(0, kN, [&hits_b](std::size_t i) { ++hits_b[i]; });
  });
  ex.parallel_for(0, kN, [&hits_a](std::size_t i) { ++hits_a[i]; });
  other.join();
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits_a[i].load(), 1) << i;
    EXPECT_EQ(hits_b[i].load(), 1) << i;
  }
}

TEST(Executor, ReentrantCallRunsInlineInsteadOfDeadlocking) {
  const Executor ex(4);
  std::vector<std::atomic<int>> inner_hits(64);
  std::atomic<int> outer_hits{0};
  ex.parallel_for(0, 8, [&ex, &inner_hits, &outer_hits](std::size_t) {
    ++outer_hits;
    // Calling back into the same executor degrades to an inline loop.
    ex.parallel_for(0, 64, [&inner_hits](std::size_t i) { ++inner_hits[i]; });
  });
  EXPECT_EQ(outer_hits.load(), 8);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(inner_hits[i].load(), 8) << i;
}

TEST(Executor, DefaultThreadCountHonoursEnvOverride) {
  ::setenv("DIVSEC_THREADS", "3", 1);
  EXPECT_EQ(Executor::default_thread_count(), 3u);
  ::setenv("DIVSEC_THREADS", "not-a-number", 1);
  EXPECT_GE(Executor::default_thread_count(), 1u);
  ::unsetenv("DIVSEC_THREADS");
  EXPECT_GE(Executor::default_thread_count(), 1u);
  const Executor ex(0);
  EXPECT_GE(ex.thread_count(), 1u);
}

}  // namespace
}  // namespace divsec::sim
