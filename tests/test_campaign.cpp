// Tests for attack/threat.h and attack/campaign.h — threat profiles and
// the node-level campaign simulator.
#include <gtest/gtest.h>

#include "attack/campaign.h"
#include "sim/replication.h"

namespace divsec::attack {
namespace {

class CampaignFixture : public ::testing::Test {
 protected:
  divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  Scenario scope = make_scope_cooling_scenario();
};

TEST(ThreatProfiles, CanonicalProfilesValidate) {
  for (const ThreatProfile& p :
       {ThreatProfile::stuxnet(), ThreatProfile::duqu(), ThreatProfile::flame()}) {
    EXPECT_NO_THROW(p.validate());
    EXPECT_FALSE(p.channels.empty());
  }
  EXPECT_TRUE(ThreatProfile::stuxnet().has_sabotage_payload);
  EXPECT_FALSE(ThreatProfile::duqu().has_sabotage_payload);
  EXPECT_FALSE(ThreatProfile::flame().has_sabotage_payload);
  EXPECT_GT(ThreatProfile::stuxnet().spoof_effectiveness, 0.9);
}

TEST(ThreatProfiles, ValidationCatchesBadFields) {
  ThreatProfile p = ThreatProfile::stuxnet();
  p.stealth = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ThreatProfile::stuxnet();
  p.channels.clear();
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ThreatProfile::stuxnet();
  p.entry_rate = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  DetectionModel d;
  d.host_detection_rate = -1.0;
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST_F(CampaignFixture, ScopeScenarioIsWellFormed) {
  EXPECT_NO_THROW(scope.validate(cat));
  EXPECT_EQ(scope.topology.node_count(), 11u);
  EXPECT_EQ(scope.target_plcs.size(), 2u);
  EXPECT_FALSE(scope.entry_nodes.empty());
  // Every PLC target really is a PLC with firmware assigned.
  for (auto plc : scope.target_plcs) {
    EXPECT_EQ(scope.topology.node(plc).role, net::Role::kPlc);
    EXPECT_TRUE(scope.software[plc].plc_firmware.has_value());
  }
}

TEST_F(CampaignFixture, ScenarioValidationCatchesErrors) {
  Scenario bad = scope;
  bad.software.pop_back();
  EXPECT_THROW(bad.validate(cat), std::invalid_argument);

  bad = scope;
  bad.software[0].os = 99;
  EXPECT_THROW(bad.validate(cat), std::out_of_range);

  bad = scope;
  bad.entry_nodes.clear();
  EXPECT_THROW(bad.validate(cat), std::invalid_argument);

  bad = scope;
  bad.target_plcs.push_back(0);  // a workstation, not a PLC
  EXPECT_THROW(bad.validate(cat), std::invalid_argument);

  bad = scope;
  bad.software[bad.target_plcs[0]].plc_firmware.reset();
  EXPECT_THROW(bad.validate(cat), std::invalid_argument);
}

TEST_F(CampaignFixture, RunIsDeterministicInSeed) {
  const CampaignSimulator sim(scope, ThreatProfile::stuxnet(), cat);
  stats::Rng r1(5), r2(5);
  const CampaignResult a = sim.run(r1);
  const CampaignResult b = sim.run(r2);
  EXPECT_EQ(a.time_to_attack, b.time_to_attack);
  EXPECT_EQ(a.time_to_detection, b.time_to_detection);
  EXPECT_EQ(a.compromised_ratio, b.compromised_ratio);
  EXPECT_EQ(a.hosts_compromised, b.hosts_compromised);
}

TEST_F(CampaignFixture, CompromisedRatioCurveIsMonotoneAndBounded) {
  const CampaignSimulator sim(scope, ThreatProfile::stuxnet(), cat);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    stats::Rng rng(seed);
    const CampaignResult r = sim.run(rng);
    double prev_t = -1.0, prev_ratio = 0.0;
    for (const auto& [t, ratio] : r.compromised_ratio) {
      EXPECT_GE(t, prev_t);
      EXPECT_GE(ratio, prev_ratio - 1e-12);  // no disinfection modelled
      EXPECT_GE(ratio, 0.0);
      EXPECT_LE(ratio, 1.0);
      prev_t = t;
      prev_ratio = ratio;
    }
  }
}

TEST_F(CampaignFixture, RatioAtInterpolatesSteps) {
  CampaignResult r;
  r.compromised_ratio = {{0.0, 0.0}, {10.0, 0.2}, {50.0, 0.5}};
  EXPECT_EQ(r.ratio_at(5.0), 0.0);
  EXPECT_EQ(r.ratio_at(10.0), 0.2);
  EXPECT_EQ(r.ratio_at(49.9), 0.2);
  EXPECT_EQ(r.ratio_at(1e9), 0.5);
}

TEST_F(CampaignFixture, EventsRecordedOnlyWhenRequested) {
  CampaignOptions opts;
  opts.record_events = false;
  const CampaignSimulator quiet(scope, ThreatProfile::stuxnet(), cat, {}, opts);
  stats::Rng r1(3);
  EXPECT_TRUE(quiet.run(r1).events.empty());

  opts.record_events = true;
  const CampaignSimulator loud(scope, ThreatProfile::stuxnet(), cat, {}, opts);
  stats::Rng r2(3);
  const auto events = loud.run(r2).events;
  EXPECT_FALSE(events.empty());
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_GE(events[i].time, events[i - 1].time);
  // A node's first recorded event is a delivery (the only way in).
  EXPECT_TRUE(events.front().kind == CampaignEventKind::kDelivered ||
              events.front().kind == CampaignEventKind::kDeliveredLateral);
}

TEST(CampaignEvents, KindLabelsAreStable) {
  // The enum replaced the old per-event std::string labels; keep the
  // printable names identical to what traces used to show.
  EXPECT_STREQ(to_string(CampaignEventKind::kDelivered), "delivered");
  EXPECT_STREQ(to_string(CampaignEventKind::kDeliveredLateral),
               "delivered-lateral");
  EXPECT_STREQ(to_string(CampaignEventKind::kActivated), "activated");
  EXPECT_STREQ(to_string(CampaignEventKind::kRoot), "root");
  EXPECT_STREQ(to_string(CampaignEventKind::kPlcCompromised), "plc-compromised");
  EXPECT_STREQ(to_string(CampaignEventKind::kDeviceImpaired), "device-impaired");
  EXPECT_STREQ(to_string(CampaignEventKind::kFailedExploitDetected),
               "failed-exploit-detected");
  EXPECT_STREQ(to_string(CampaignEventKind::kHostIdsDetection),
               "host-ids-detection");
  EXPECT_STREQ(to_string(CampaignEventKind::kPlantAlarmDetection),
               "plant-alarm-detection");
}

TEST_F(CampaignFixture, DuquNeverImpairsDevices) {
  const CampaignSimulator sim(scope, ThreatProfile::duqu(), cat);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    stats::Rng rng(seed);
    const CampaignResult r = sim.run(rng);
    EXPECT_FALSE(r.time_to_attack.has_value());
    EXPECT_EQ(r.plcs_compromised, 0u);
  }
}

TEST_F(CampaignFixture, MonocultureFallsMoreOftenThanDiverseDeployment) {
  const ThreatProfile stuxnet = ThreatProfile::stuxnet();
  Scenario diverse = scope;
  // Harden the lot: patched/diverse OS everywhere, resilient PLCs, NGFW.
  for (auto& sw : diverse.software) {
    sw.os = cat.index_of(divers::ComponentKind::kOs, "os.linux_lts");
    if (sw.plc_firmware)
      sw.plc_firmware = cat.index_of(divers::ComponentKind::kPlcFirmware,
                                     "plc.abb_ac800");
  }
  diverse.firewall_variant =
      cat.index_of(divers::ComponentKind::kFirewallFirmware, "fw.ngfw");

  const CampaignSimulator mono_sim(scope, stuxnet, cat);
  const CampaignSimulator div_sim(diverse, stuxnet, cat);
  std::size_t mono_wins = 0, div_wins = 0;
  constexpr std::size_t kReps = 150;
  for (std::size_t i = 0; i < kReps; ++i) {
    stats::Rng r1(1000, i), r2(1000, i);
    if (mono_sim.run(r1).attack_succeeded()) ++mono_wins;
    if (div_sim.run(r2).attack_succeeded()) ++div_wins;
  }
  EXPECT_GT(mono_wins, 30u);            // the monoculture is soft
  EXPECT_LT(div_wins * 3, mono_wins);   // diversity cuts success sharply
}

TEST_F(CampaignFixture, DetectionHaltsAttackWhenConfigured) {
  // With an extremely loud detection model, essentially every run is
  // detected, and with halting enabled the attack should almost never
  // finish sabotage afterwards.
  DetectionModel loud;
  loud.host_detection_rate = 10.0;
  loud.alarm_detection_rate = 10.0;
  ThreatProfile noisy = ThreatProfile::stuxnet();
  noisy.stealth = 0.0;
  noisy.spoof_effectiveness = 0.0;
  CampaignOptions opts;
  opts.detection_halts_attack = true;
  const CampaignSimulator sim(scope, noisy, cat, loud, opts);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    stats::Rng rng(seed);
    const CampaignResult r = sim.run(rng);
    if (r.time_of_entry.has_value()) {
      ASSERT_TRUE(r.time_to_detection.has_value());
      EXPECT_FALSE(r.attack_succeeded());
    }
  }
}

TEST_F(CampaignFixture, HorizonIsRespected) {
  CampaignOptions opts;
  opts.t_max_hours = 100.0;
  const CampaignSimulator sim(scope, ThreatProfile::stuxnet(), cat, {}, opts);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    stats::Rng rng(seed);
    const CampaignResult r = sim.run(rng);
    if (r.time_to_attack) {
      EXPECT_LE(*r.time_to_attack, 100.0);
    }
    if (r.time_to_detection) {
      EXPECT_LE(*r.time_to_detection, 100.0);
    }
    for (const auto& [t, ratio] : r.compromised_ratio) EXPECT_LE(t, 100.0);
  }
}

TEST_F(CampaignFixture, StealthDelaysDetection) {
  ThreatProfile quiet = ThreatProfile::stuxnet();
  quiet.stealth = 0.99;
  ThreatProfile noisy = ThreatProfile::stuxnet();
  noisy.stealth = 0.0;
  const CampaignSimulator qs(scope, quiet, cat);
  const CampaignSimulator ns(scope, noisy, cat);
  double q_sum = 0.0, n_sum = 0.0;
  constexpr std::size_t kReps = 100;
  constexpr double kHorizon = 2160.0;
  for (std::size_t i = 0; i < kReps; ++i) {
    stats::Rng r1(7, i), r2(7, i);
    q_sum += qs.run(r1).time_to_detection.value_or(kHorizon);
    n_sum += ns.run(r2).time_to_detection.value_or(kHorizon);
  }
  EXPECT_GT(q_sum, 1.5 * n_sum);
}

TEST_F(CampaignFixture, InvalidOptionsRejected) {
  CampaignOptions opts;
  opts.t_max_hours = 0.0;
  EXPECT_THROW(CampaignSimulator(scope, ThreatProfile::stuxnet(), cat, {}, opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace divsec::attack
