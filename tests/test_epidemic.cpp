// Tests for net/epidemic.h — the mean-field propagation baseline.
#include <gtest/gtest.h>

#include "attack/campaign.h"
#include "net/epidemic.h"
#include "net/reachability_index.h"

namespace divsec::net {
namespace {

Topology chain(std::size_t n) {
  Topology t;
  for (std::size_t i = 0; i < n; ++i)
    t.add_node("n" + std::to_string(i), Zone::kCorporate, Role::kWorkstation);
  for (std::size_t i = 0; i + 1 < n; ++i) t.connect(i, i + 1);
  return t;
}

TEST(MeanFieldEpidemic, SeedStartsInfectedOthersClean) {
  const Topology t = chain(4);
  MeanFieldEpidemic epi(t, Firewall::permissive(), {Channel::kSmbShare}, {0});
  EXPECT_DOUBLE_EQ(epi.infection_probability(0), 1.0);
  for (NodeId i = 1; i < 4; ++i) EXPECT_DOUBLE_EQ(epi.infection_probability(i), 0.0);
  EXPECT_DOUBLE_EQ(epi.compromised_ratio(), 0.25);
}

TEST(MeanFieldEpidemic, SpreadIsMonotoneAndSaturates) {
  const Topology t = chain(5);
  MeanFieldEpidemic epi(t, Firewall::permissive(), {Channel::kSmbShare}, {0},
                        {0.2, 0.1});
  double prev = epi.compromised_ratio();
  for (int step = 0; step < 20; ++step) {
    epi.advance(10.0);
    const double r = epi.compromised_ratio();
    EXPECT_GE(r, prev - 1e-12);
    EXPECT_LE(r, 1.0);
    prev = r;
  }
  EXPECT_NEAR(prev, 1.0, 1e-3);  // SI with connected graph saturates
}

TEST(MeanFieldEpidemic, InfectionTravelsAlongTheChain) {
  const Topology t = chain(4);
  MeanFieldEpidemic epi(t, Firewall::permissive(), {Channel::kSmbShare}, {0},
                        {0.1, 0.1});
  epi.advance(20.0);
  // Closer to the seed = more infected.
  EXPECT_GT(epi.infection_probability(1), epi.infection_probability(2));
  EXPECT_GT(epi.infection_probability(2), epi.infection_probability(3));
}

TEST(MeanFieldEpidemic, FirewallBlocksSpread) {
  Topology t;
  t.add_node("corp", Zone::kCorporate, Role::kWorkstation);
  t.add_node("ctl", Zone::kControl, Role::kScadaServer);
  t.connect(0, 1);
  // Deny-all firewall: the SMB edge never forms.
  MeanFieldEpidemic epi(t, Firewall(Action::kDeny), {Channel::kSmbShare}, {0},
                        {1.0, 0.1});
  epi.advance(100.0);
  EXPECT_DOUBLE_EQ(epi.infection_probability(1), 0.0);
}

TEST(MeanFieldEpidemic, RatioCurveOnGrid) {
  const Topology t = chain(4);
  MeanFieldEpidemic epi(t, Firewall::permissive(), {Channel::kSmbShare}, {0},
                        {0.2, 0.1});
  const auto curve = epi.ratio_curve({0.0, 5.0, 20.0, 100.0});
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_DOUBLE_EQ(curve[0], 0.25);
  for (std::size_t i = 1; i < curve.size(); ++i) EXPECT_GE(curve[i], curve[i - 1]);
  EXPECT_THROW(epi.ratio_curve({5.0, 1.0}), std::invalid_argument);
}

TEST(MeanFieldEpidemic, Validation) {
  const Topology t = chain(2);
  EXPECT_THROW(MeanFieldEpidemic(t, Firewall::permissive(), {Channel::kSmbShare},
                                 {}),
               std::invalid_argument);
  EXPECT_THROW(MeanFieldEpidemic(t, Firewall::permissive(), {Channel::kSmbShare},
                                 {9}),
               std::out_of_range);
  EXPECT_THROW(MeanFieldEpidemic(t, Firewall::permissive(), {Channel::kSmbShare},
                                 {0}, {-1.0, 0.1}),
               std::invalid_argument);
  MeanFieldEpidemic epi(t, Firewall::permissive(), {Channel::kSmbShare}, {0});
  EXPECT_THROW(epi.advance(-1.0), std::invalid_argument);
}

TEST(MeanFieldEpidemic, FinalEulerStepIsClampedToTheHorizon) {
  // advance() with a horizon that is not a multiple of dt must land on
  // the horizon exactly — no overshoot, no per-step rounding drift.
  const Topology t = chain(3);
  MeanFieldEpidemic epi(t, Firewall::permissive(), {Channel::kSmbShare}, {0},
                        {0.2, 0.1});
  // advance() must land on time + hours exactly, however ragged the
  // steps; expected values fold the same way the clock does.
  double expected = 0.0;
  for (const double step : {0.35, 0.07, 0.013, 1.9, 0.0001}) {
    epi.advance(step);
    expected += step;
    EXPECT_EQ(epi.now_hours(), expected) << "step " << step;
  }
  epi.advance(0.0);
  EXPECT_EQ(epi.now_hours(), expected);

  // A clamped partial step infects strictly less than a full dt step.
  MeanFieldEpidemic full(t, Firewall::permissive(), {Channel::kSmbShare}, {0},
                         {0.2, 0.1});
  MeanFieldEpidemic partial(t, Firewall::permissive(), {Channel::kSmbShare}, {0},
                            {0.2, 0.1});
  full.advance(0.1);
  partial.advance(0.05);
  EXPECT_LT(partial.infection_probability(1), full.infection_probability(1));
  EXPECT_GT(partial.infection_probability(1), 0.0);
}

TEST(MeanFieldEpidemic, SharedReachabilityIndexMatchesTopologyConstructor) {
  // The index overload (one reachability sweep shared with the campaign
  // layer) must integrate the exact same ODE.
  const attack::Scenario sc = attack::make_scope_cooling_scenario();
  const std::vector<Channel> channels{Channel::kUsb, Channel::kSmbShare,
                                      Channel::kPrintSpooler};
  const ReachabilityIndex index(sc.topology, sc.firewall);
  MeanFieldEpidemic via_topology(sc.topology, sc.firewall, channels,
                                 sc.entry_nodes, {0.02, 0.5});
  MeanFieldEpidemic via_index(index, channels, sc.entry_nodes, {0.02, 0.5});
  const std::vector<double> grid{0.0, 100.0, 500.0, 1234.5, 2160.0};
  EXPECT_EQ(via_topology.ratio_curve(grid), via_index.ratio_curve(grid));
  EXPECT_THROW(MeanFieldEpidemic(index, channels, {}, {0.02, 0.5}),
               std::invalid_argument);
}

TEST(MeanFieldEpidemic, TracksCampaignShapeOnScope) {
  // The mean-field curve with a fitted beta should bracket the campaign's
  // early growth: both saturate, mean-field from above (no detection or
  // exploit failure in the ODE).
  const divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  const attack::Scenario sc = attack::make_scope_cooling_scenario();
  MeanFieldEpidemic epi(sc.topology, sc.firewall,
                        {Channel::kUsb, Channel::kSmbShare, Channel::kPrintSpooler},
                        sc.entry_nodes, {0.02, 0.5});
  epi.advance(2160.0);
  const double mf_final = epi.compromised_ratio();
  const attack::CampaignSimulator sim(sc, attack::ThreatProfile::stuxnet(), cat);
  double mc_final = 0.0;
  constexpr std::size_t kReps = 60;
  for (std::size_t i = 0; i < kReps; ++i) {
    stats::Rng rng(5, i);
    mc_final += sim.run(rng).compromised_ratio.back().second;
  }
  mc_final /= kReps;
  // The ODE saturates at the host-reachable set; the campaign adds the
  // PLC payload path but loses runs to detection. They land close.
  EXPECT_NEAR(mf_final, mc_final, 0.15);
  EXPECT_GT(mc_final, 0.2);  // both show substantial spread
}

}  // namespace
}  // namespace divsec::net
