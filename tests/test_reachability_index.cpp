// Tests for net/reachability_index.h — the precomputed reachability
// index must agree with the per-call reference relation (net::can_reach,
// Topology::linked) on every (node, node, channel) triple, hand-built or
// generated.
#include <gtest/gtest.h>

#include "attack/campaign.h"
#include "net/reachability.h"
#include "net/reachability_index.h"
#include "scenario/presets.h"

namespace divsec::net {
namespace {

void expect_index_matches_reference(const Topology& topo, const Firewall& fw) {
  const ReachabilityIndex index(topo, fw);
  ASSERT_EQ(index.node_count(), topo.node_count());
  for (NodeId a = 0; a < topo.node_count(); ++a) {
    for (NodeId b = 0; b < topo.node_count(); ++b) {
      EXPECT_EQ(index.linked(a, b), a != b && topo.linked(a, b))
          << "linked(" << a << "," << b << ")";
      for (std::size_t ch = 0; ch < kChannelCount; ++ch) {
        const Channel channel = static_cast<Channel>(ch);
        EXPECT_EQ(index.can_reach(a, b, channel),
                  can_reach(topo, fw, a, b, channel))
            << "can_reach(" << a << "," << b << "," << to_string(channel) << ")";
      }
    }
  }
}

TEST(ReachabilityIndex, MatchesReferenceOnScopePlant) {
  const attack::Scenario sc = attack::make_scope_cooling_scenario();
  expect_index_matches_reference(sc.topology, sc.firewall);
}

TEST(ReachabilityIndex, MatchesReferenceOnPermissivePolicy) {
  const attack::Scenario sc = attack::make_scope_cooling_scenario();
  expect_index_matches_reference(sc.topology, Firewall::permissive());
}

TEST(ReachabilityIndex, MatchesReferenceOnGeneratedFleet) {
  const divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  const auto fleet = scenario::make_preset("plant_medium", cat, 7);
  expect_index_matches_reference(fleet.scenario.topology, fleet.scenario.firewall);
}

TEST(ReachabilityIndex, UnionGraphMatchesPerChannelUnion) {
  const attack::Scenario sc = attack::make_scope_cooling_scenario();
  const std::vector<Channel> channels{Channel::kUsb, Channel::kSmbShare,
                                      Channel::kHttp};
  const ReachabilityIndex index(sc.topology, sc.firewall);
  const auto graph = index.union_graph(channels);
  ASSERT_EQ(graph.size(), sc.topology.node_count());
  for (NodeId a = 0; a < sc.topology.node_count(); ++a) {
    std::vector<NodeId> expected;
    for (NodeId b = 0; b < sc.topology.node_count(); ++b)
      for (Channel c : channels)
        if (can_reach(sc.topology, sc.firewall, a, b, c)) {
          expected.push_back(b);
          break;
        }
    EXPECT_EQ(graph[a], expected) << "node " << a;
    // Ascending, as documented.
    EXPECT_TRUE(std::is_sorted(graph[a].begin(), graph[a].end()));
  }
}

TEST(ReachabilityIndex, ReachabilityGraphDelegatesToTheSameRelation) {
  // reachability_graph is now a thin wrapper; keep its public contract.
  const attack::Scenario sc = attack::make_scope_cooling_scenario();
  const std::vector<Channel> channels{Channel::kUsb, Channel::kSmbShare};
  const auto via_function = reachability_graph(sc.topology, sc.firewall, channels);
  const auto via_index =
      ReachabilityIndex(sc.topology, sc.firewall).union_graph(channels);
  EXPECT_EQ(via_function, via_index);
}

TEST(ReachabilityIndex, CampaignSimulatorExposesItsIndex) {
  const divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  const attack::Scenario sc = attack::make_scope_cooling_scenario();
  const attack::CampaignSimulator sim(sc, attack::ThreatProfile::stuxnet(), cat);
  const ReachabilityIndex& index = sim.reachability();
  EXPECT_EQ(index.node_count(), sc.topology.node_count());
  // USB between the two exposed workstations, no modbus corp -> field.
  const NodeId ws1 = sc.topology.node_by_name("corp.ws1");
  const NodeId ws2 = sc.topology.node_by_name("corp.ws2");
  const NodeId plc = sc.topology.node_by_name("fld.plc-chiller");
  EXPECT_TRUE(index.can_reach(ws1, ws2, Channel::kUsb));
  EXPECT_FALSE(index.can_reach(ws1, plc, Channel::kModbus));
}

}  // namespace
}  // namespace divsec::net
