// Tests for the scenario-sweep flavour of core::MeasurementEngine: a
// campaign replication set over generated enterprise fleets must be
// bit-identical for any executor thread count (the DIVSEC_THREADS
// contract), because job (cell, rep) draws only from Rng(cell.seed, rep).
#include <gtest/gtest.h>

#include "core/measurement.h"
#include "scenario/presets.h"
#include "sim/executor.h"

namespace divsec::core {
namespace {

void expect_bit_identical(const IndicatorSummary& a, const IndicatorSummary& b) {
  EXPECT_EQ(a.replications, b.replications);
  // EXPECT_EQ (not NEAR): the parallel path must reproduce the serial
  // floating-point results exactly, not just approximately.
  EXPECT_EQ(a.tta.mean(), b.tta.mean());
  EXPECT_EQ(a.tta.variance(), b.tta.variance());
  EXPECT_EQ(a.ttsf.mean(), b.ttsf.mean());
  EXPECT_EQ(a.ttsf.variance(), b.ttsf.variance());
  EXPECT_EQ(a.final_ratio.mean(), b.final_ratio.mean());
  EXPECT_EQ(a.tta_censored, b.tta_censored);
  EXPECT_EQ(a.ttsf_censored, b.ttsf_censored);
  EXPECT_EQ(a.successes, b.successes);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].tta, b.samples[i].tta) << "rep " << i;
    EXPECT_EQ(a.samples[i].ttsf, b.samples[i].ttsf) << "rep " << i;
    EXPECT_EQ(a.samples[i].final_ratio, b.samples[i].final_ratio) << "rep " << i;
    EXPECT_EQ(a.samples[i].attack_succeeded, b.samples[i].attack_succeeded)
        << "rep " << i;
  }
}

class FleetSweepFixture : public ::testing::Test {
 protected:
  [[nodiscard]] MeasurementOptions options(const sim::Executor* ex,
                                           std::size_t reps) const {
    MeasurementOptions mo;
    mo.engine = Engine::kCampaign;
    mo.replications = reps;
    mo.seed = 2013;
    mo.executor = ex;
    return mo;
  }

  [[nodiscard]] ScenarioSweepPlan enterprise_plan(const char* preset) const {
    // Two arms of the fleet experiment: monoculture vs zone-stratified
    // diversity, each its own sweep cell with its own seed block.
    ScenarioSweepPlan plan;
    plan.cells.push_back(
        {scenario::make_preset(preset, cat, 17, scenario::VariantPolicy::kMonoculture)
             .scenario,
         101});
    plan.cells.push_back(
        {scenario::make_preset(preset, cat, 17,
                               scenario::VariantPolicy::kZoneStratified)
             .scenario,
         202});
    return plan;
  }

  divers::VariantCatalog cat = divers::VariantCatalog::standard(2013);
  attack::ThreatProfile stuxnet = attack::ThreatProfile::stuxnet();
  sim::Executor serial{1};
  sim::Executor threaded{8};  // the DIVSEC_THREADS=8 configuration
};

TEST_F(FleetSweepFixture, Enterprise256SweepBitIdenticalAcrossThreadCounts) {
  const ScenarioSweepPlan plan = enterprise_plan("enterprise256");
  const MeasurementEngine one(cat, stuxnet, options(&serial, 10));
  const MeasurementEngine eight(cat, stuxnet, options(&threaded, 10));
  const auto a = one.measure_scenarios(plan);
  const auto b = eight.measure_scenarios(plan);
  ASSERT_EQ(a.size(), plan.cell_count());
  ASSERT_EQ(b.size(), plan.cell_count());
  for (std::size_t c = 0; c < a.size(); ++c) expect_bit_identical(a[c], b[c]);
  // The fleet actually falls: some compromise happened somewhere.
  EXPECT_GT(a[0].final_ratio.mean(), 0.0);
}

TEST_F(FleetSweepFixture, Enterprise1024SweepBitIdenticalAcrossThreadCounts) {
  // The acceptance-scale fleet: a full replication set through the
  // engine, DIVSEC_THREADS=1 vs DIVSEC_THREADS=8 equivalents.
  const ScenarioSweepPlan plan = enterprise_plan("enterprise1024");
  const MeasurementEngine one(cat, stuxnet, options(&serial, 8));
  const MeasurementEngine eight(cat, stuxnet, options(&threaded, 8));
  const auto a = one.measure_scenarios(plan);
  const auto b = eight.measure_scenarios(plan);
  for (std::size_t c = 0; c < a.size(); ++c) expect_bit_identical(a[c], b[c]);
}

TEST_F(FleetSweepFixture, SweepIsAlsoDeterministicAcrossEngineInstances) {
  const ScenarioSweepPlan plan = enterprise_plan("plant_medium");
  const MeasurementEngine first(cat, stuxnet, options(&threaded, 16));
  const MeasurementEngine second(cat, stuxnet, options(&threaded, 16));
  const auto a = first.measure_scenarios(plan);
  const auto b = second.measure_scenarios(plan);
  for (std::size_t c = 0; c < a.size(); ++c) expect_bit_identical(a[c], b[c]);
}

TEST_F(FleetSweepFixture, CellVisitorSeesReplicationOrderedSamples) {
  ScenarioSweepPlan plan = enterprise_plan("plant_small");
  MeasurementOptions mo = options(&serial, 12);
  mo.keep_samples = false;
  const MeasurementEngine engine(cat, stuxnet, mo);
  std::vector<std::size_t> visited;
  std::vector<std::vector<double>> ratios(plan.cell_count());
  const auto summaries = engine.measure_scenarios(
      plan, [&](std::size_t cell, std::span<const IndicatorSample> samples) {
        visited.push_back(cell);
        for (const auto& s : samples) ratios[cell].push_back(s.final_ratio);
      });
  EXPECT_EQ(visited, (std::vector<std::size_t>{0, 1}));
  for (std::size_t c = 0; c < plan.cell_count(); ++c) {
    EXPECT_TRUE(summaries[c].samples.empty());  // keep_samples off
    ASSERT_EQ(ratios[c].size(), 12u);
    // Replication r of cell c is the (seed, r) stream: recompute one.
    const attack::CampaignSimulator sim(plan.cells[c].scenario, stuxnet, cat);
    stats::Rng rng(plan.cells[c].seed, 5);
    const auto r = sim.run(rng);
    EXPECT_EQ(ratios[c][5], r.compromised_ratio.back().second);
  }
}

TEST_F(FleetSweepFixture, ScenarioOnlyEngineRejectsConfigurationPlans) {
  const MeasurementEngine engine(cat, stuxnet, options(&serial, 4));
  EXPECT_THROW((void)engine.measure_one(Configuration{}), std::logic_error);
  EXPECT_THROW((void)engine.mean_ratio_curve(Configuration{}, {0.0, 1.0}),
               std::logic_error);
}

TEST_F(FleetSweepFixture, SweepRequiresCampaignEngine) {
  MeasurementOptions mo = options(&serial, 4);
  mo.engine = Engine::kStagedSan;
  const MeasurementEngine engine(cat, stuxnet, mo);
  EXPECT_THROW((void)engine.measure_scenarios(enterprise_plan("plant_small")),
               std::invalid_argument);
}

}  // namespace
}  // namespace divsec::core
