file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_ttsf.dir/bench/bench_e4_ttsf.cpp.o"
  "CMakeFiles/bench_e4_ttsf.dir/bench/bench_e4_ttsf.cpp.o.d"
  "bench_e4_ttsf"
  "bench_e4_ttsf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_ttsf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
