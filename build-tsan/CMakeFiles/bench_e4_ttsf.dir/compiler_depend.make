# Empty compiler generated dependencies file for bench_e4_ttsf.
# This may be replaced when dependencies are built.
