# Empty compiler generated dependencies file for test_probability_space.
# This may be replaced when dependencies are built.
