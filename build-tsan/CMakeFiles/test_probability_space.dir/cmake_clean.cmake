file(REMOVE_RECURSE
  "CMakeFiles/test_probability_space.dir/tests/test_probability_space.cpp.o"
  "CMakeFiles/test_probability_space.dir/tests/test_probability_space.cpp.o.d"
  "test_probability_space"
  "test_probability_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_probability_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
