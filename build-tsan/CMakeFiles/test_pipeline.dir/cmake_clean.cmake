file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline.dir/tests/test_pipeline.cpp.o"
  "CMakeFiles/test_pipeline.dir/tests/test_pipeline.cpp.o.d"
  "test_pipeline"
  "test_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
