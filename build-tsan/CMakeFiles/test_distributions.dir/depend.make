# Empty dependencies file for test_distributions.
# This may be replaced when dependencies are built.
