file(REMOVE_RECURSE
  "CMakeFiles/test_distributions.dir/tests/test_distributions.cpp.o"
  "CMakeFiles/test_distributions.dir/tests/test_distributions.cpp.o.d"
  "test_distributions"
  "test_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
