file(REMOVE_RECURSE
  "CMakeFiles/test_protocol.dir/tests/test_protocol.cpp.o"
  "CMakeFiles/test_protocol.dir/tests/test_protocol.cpp.o.d"
  "test_protocol"
  "test_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
