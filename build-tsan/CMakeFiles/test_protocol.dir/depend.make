# Empty dependencies file for test_protocol.
# This may be replaced when dependencies are built.
