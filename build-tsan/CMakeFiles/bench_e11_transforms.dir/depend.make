# Empty dependencies file for bench_e11_transforms.
# This may be replaced when dependencies are built.
