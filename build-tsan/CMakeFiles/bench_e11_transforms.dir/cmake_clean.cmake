file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_transforms.dir/bench/bench_e11_transforms.cpp.o"
  "CMakeFiles/bench_e11_transforms.dir/bench/bench_e11_transforms.cpp.o.d"
  "bench_e11_transforms"
  "bench_e11_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
