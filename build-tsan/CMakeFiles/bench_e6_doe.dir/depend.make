# Empty dependencies file for bench_e6_doe.
# This may be replaced when dependencies are built.
