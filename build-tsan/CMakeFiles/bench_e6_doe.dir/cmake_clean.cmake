file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_doe.dir/bench/bench_e6_doe.cpp.o"
  "CMakeFiles/bench_e6_doe.dir/bench/bench_e6_doe.cpp.o.d"
  "bench_e6_doe"
  "bench_e6_doe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_doe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
