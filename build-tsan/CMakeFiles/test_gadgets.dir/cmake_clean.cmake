file(REMOVE_RECURSE
  "CMakeFiles/test_gadgets.dir/tests/test_gadgets.cpp.o"
  "CMakeFiles/test_gadgets.dir/tests/test_gadgets.cpp.o.d"
  "test_gadgets"
  "test_gadgets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gadgets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
