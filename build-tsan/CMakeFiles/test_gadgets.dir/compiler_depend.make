# Empty compiler generated dependencies file for test_gadgets.
# This may be replaced when dependencies are built.
