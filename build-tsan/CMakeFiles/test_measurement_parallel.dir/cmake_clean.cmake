file(REMOVE_RECURSE
  "CMakeFiles/test_measurement_parallel.dir/tests/test_measurement_parallel.cpp.o"
  "CMakeFiles/test_measurement_parallel.dir/tests/test_measurement_parallel.cpp.o.d"
  "test_measurement_parallel"
  "test_measurement_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_measurement_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
