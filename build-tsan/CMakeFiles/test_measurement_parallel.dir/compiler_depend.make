# Empty compiler generated dependencies file for test_measurement_parallel.
# This may be replaced when dependencies are built.
