file(REMOVE_RECURSE
  "CMakeFiles/test_survival.dir/tests/test_survival.cpp.o"
  "CMakeFiles/test_survival.dir/tests/test_survival.cpp.o.d"
  "test_survival"
  "test_survival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_survival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
