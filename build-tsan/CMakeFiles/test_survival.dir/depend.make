# Empty dependencies file for test_survival.
# This may be replaced when dependencies are built.
