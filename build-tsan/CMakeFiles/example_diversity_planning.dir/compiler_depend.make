# Empty compiler generated dependencies file for example_diversity_planning.
# This may be replaced when dependencies are built.
