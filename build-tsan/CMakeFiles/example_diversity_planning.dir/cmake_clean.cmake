file(REMOVE_RECURSE
  "CMakeFiles/example_diversity_planning.dir/examples/diversity_planning.cpp.o"
  "CMakeFiles/example_diversity_planning.dir/examples/diversity_planning.cpp.o.d"
  "example_diversity_planning"
  "example_diversity_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_diversity_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
