file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_tta.dir/bench/bench_e3_tta.cpp.o"
  "CMakeFiles/bench_e3_tta.dir/bench/bench_e3_tta.cpp.o.d"
  "bench_e3_tta"
  "bench_e3_tta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_tta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
