# Empty dependencies file for bench_e3_tta.
# This may be replaced when dependencies are built.
