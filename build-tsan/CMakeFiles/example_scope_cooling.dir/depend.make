# Empty dependencies file for example_scope_cooling.
# This may be replaced when dependencies are built.
