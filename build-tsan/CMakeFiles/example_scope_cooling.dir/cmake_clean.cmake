file(REMOVE_RECURSE
  "CMakeFiles/example_scope_cooling.dir/examples/scope_cooling.cpp.o"
  "CMakeFiles/example_scope_cooling.dir/examples/scope_cooling.cpp.o.d"
  "example_scope_cooling"
  "example_scope_cooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_scope_cooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
