# Empty dependencies file for bench_e10_threats.
# This may be replaced when dependencies are built.
