file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_threats.dir/bench/bench_e10_threats.cpp.o"
  "CMakeFiles/bench_e10_threats.dir/bench/bench_e10_threats.cpp.o.d"
  "bench_e10_threats"
  "bench_e10_threats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_threats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
