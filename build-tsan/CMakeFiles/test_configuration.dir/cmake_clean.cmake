file(REMOVE_RECURSE
  "CMakeFiles/test_configuration.dir/tests/test_configuration.cpp.o"
  "CMakeFiles/test_configuration.dir/tests/test_configuration.cpp.o.d"
  "test_configuration"
  "test_configuration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_configuration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
