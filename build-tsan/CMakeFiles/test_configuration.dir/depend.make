# Empty dependencies file for test_configuration.
# This may be replaced when dependencies are built.
