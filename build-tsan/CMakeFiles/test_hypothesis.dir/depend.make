# Empty dependencies file for test_hypothesis.
# This may be replaced when dependencies are built.
