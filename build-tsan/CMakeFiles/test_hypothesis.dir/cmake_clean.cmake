file(REMOVE_RECURSE
  "CMakeFiles/test_hypothesis.dir/tests/test_hypothesis.cpp.o"
  "CMakeFiles/test_hypothesis.dir/tests/test_hypothesis.cpp.o.d"
  "test_hypothesis"
  "test_hypothesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hypothesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
