file(REMOVE_RECURSE
  "CMakeFiles/test_bayes.dir/tests/test_bayes.cpp.o"
  "CMakeFiles/test_bayes.dir/tests/test_bayes.cpp.o.d"
  "test_bayes"
  "test_bayes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bayes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
