# Empty dependencies file for test_bayes.
# This may be replaced when dependencies are built.
