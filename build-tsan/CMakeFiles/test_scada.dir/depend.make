# Empty dependencies file for test_scada.
# This may be replaced when dependencies are built.
