file(REMOVE_RECURSE
  "CMakeFiles/test_scada.dir/tests/test_scada.cpp.o"
  "CMakeFiles/test_scada.dir/tests/test_scada.cpp.o.d"
  "test_scada"
  "test_scada.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scada.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
