# Empty compiler generated dependencies file for test_transforms.
# This may be replaced when dependencies are built.
