file(REMOVE_RECURSE
  "CMakeFiles/test_transforms.dir/tests/test_transforms.cpp.o"
  "CMakeFiles/test_transforms.dir/tests/test_transforms.cpp.o.d"
  "test_transforms"
  "test_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
