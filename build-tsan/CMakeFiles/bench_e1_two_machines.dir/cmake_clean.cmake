file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_two_machines.dir/bench/bench_e1_two_machines.cpp.o"
  "CMakeFiles/bench_e1_two_machines.dir/bench/bench_e1_two_machines.cpp.o.d"
  "bench_e1_two_machines"
  "bench_e1_two_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_two_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
