# Empty compiler generated dependencies file for bench_e1_two_machines.
# This may be replaced when dependencies are built.
