file(REMOVE_RECURSE
  "CMakeFiles/test_cooling_system.dir/tests/test_cooling_system.cpp.o"
  "CMakeFiles/test_cooling_system.dir/tests/test_cooling_system.cpp.o.d"
  "test_cooling_system"
  "test_cooling_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cooling_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
