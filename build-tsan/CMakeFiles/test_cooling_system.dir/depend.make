# Empty dependencies file for test_cooling_system.
# This may be replaced when dependencies are built.
