file(REMOVE_RECURSE
  "CMakeFiles/test_san.dir/tests/test_san.cpp.o"
  "CMakeFiles/test_san.dir/tests/test_san.cpp.o.d"
  "test_san"
  "test_san.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_san.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
