# Empty dependencies file for test_san.
# This may be replaced when dependencies are built.
