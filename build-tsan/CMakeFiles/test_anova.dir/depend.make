# Empty dependencies file for test_anova.
# This may be replaced when dependencies are built.
