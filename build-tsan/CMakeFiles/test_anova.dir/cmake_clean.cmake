file(REMOVE_RECURSE
  "CMakeFiles/test_anova.dir/tests/test_anova.cpp.o"
  "CMakeFiles/test_anova.dir/tests/test_anova.cpp.o.d"
  "test_anova"
  "test_anova.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_anova.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
