# Empty compiler generated dependencies file for test_net.
# This may be replaced when dependencies are built.
