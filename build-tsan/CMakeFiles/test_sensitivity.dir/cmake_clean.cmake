file(REMOVE_RECURSE
  "CMakeFiles/test_sensitivity.dir/tests/test_sensitivity.cpp.o"
  "CMakeFiles/test_sensitivity.dir/tests/test_sensitivity.cpp.o.d"
  "test_sensitivity"
  "test_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
