# Empty dependencies file for test_sensitivity.
# This may be replaced when dependencies are built.
