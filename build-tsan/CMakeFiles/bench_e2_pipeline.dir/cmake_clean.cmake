file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_pipeline.dir/bench/bench_e2_pipeline.cpp.o"
  "CMakeFiles/bench_e2_pipeline.dir/bench/bench_e2_pipeline.cpp.o.d"
  "bench_e2_pipeline"
  "bench_e2_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
