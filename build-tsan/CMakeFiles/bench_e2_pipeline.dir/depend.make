# Empty dependencies file for bench_e2_pipeline.
# This may be replaced when dependencies are built.
