file(REMOVE_RECURSE
  "CMakeFiles/example_stuxnet_campaign.dir/examples/stuxnet_campaign.cpp.o"
  "CMakeFiles/example_stuxnet_campaign.dir/examples/stuxnet_campaign.cpp.o.d"
  "example_stuxnet_campaign"
  "example_stuxnet_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_stuxnet_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
