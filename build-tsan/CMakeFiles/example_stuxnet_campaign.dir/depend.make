# Empty dependencies file for example_stuxnet_campaign.
# This may be replaced when dependencies are built.
