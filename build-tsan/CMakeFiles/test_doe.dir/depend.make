# Empty dependencies file for test_doe.
# This may be replaced when dependencies are built.
