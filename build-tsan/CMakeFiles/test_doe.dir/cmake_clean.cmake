file(REMOVE_RECURSE
  "CMakeFiles/test_doe.dir/tests/test_doe.cpp.o"
  "CMakeFiles/test_doe.dir/tests/test_doe.cpp.o.d"
  "test_doe"
  "test_doe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_doe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
