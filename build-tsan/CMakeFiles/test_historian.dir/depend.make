# Empty dependencies file for test_historian.
# This may be replaced when dependencies are built.
