file(REMOVE_RECURSE
  "CMakeFiles/test_historian.dir/tests/test_historian.cpp.o"
  "CMakeFiles/test_historian.dir/tests/test_historian.cpp.o.d"
  "test_historian"
  "test_historian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_historian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
