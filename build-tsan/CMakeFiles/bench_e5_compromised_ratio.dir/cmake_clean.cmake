file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_compromised_ratio.dir/bench/bench_e5_compromised_ratio.cpp.o"
  "CMakeFiles/bench_e5_compromised_ratio.dir/bench/bench_e5_compromised_ratio.cpp.o.d"
  "bench_e5_compromised_ratio"
  "bench_e5_compromised_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_compromised_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
