# Empty dependencies file for bench_e5_compromised_ratio.
# This may be replaced when dependencies are built.
