# Empty compiler generated dependencies file for bench_e8_sensitivity.
# This may be replaced when dependencies are built.
