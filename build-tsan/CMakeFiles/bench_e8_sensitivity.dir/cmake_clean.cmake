file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_sensitivity.dir/bench/bench_e8_sensitivity.cpp.o"
  "CMakeFiles/bench_e8_sensitivity.dir/bench/bench_e8_sensitivity.cpp.o.d"
  "bench_e8_sensitivity"
  "bench_e8_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
