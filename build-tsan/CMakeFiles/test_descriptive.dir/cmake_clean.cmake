file(REMOVE_RECURSE
  "CMakeFiles/test_descriptive.dir/tests/test_descriptive.cpp.o"
  "CMakeFiles/test_descriptive.dir/tests/test_descriptive.cpp.o.d"
  "test_descriptive"
  "test_descriptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_descriptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
