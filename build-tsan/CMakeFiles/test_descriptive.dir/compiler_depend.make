# Empty compiler generated dependencies file for test_descriptive.
# This may be replaced when dependencies are built.
