# Empty dependencies file for divsec.
# This may be replaced when dependencies are built.
