file(REMOVE_RECURSE
  "libdivsec.a"
)
