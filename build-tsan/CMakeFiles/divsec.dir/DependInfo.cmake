
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/attack_tree.cpp" "CMakeFiles/divsec.dir/src/attack/attack_tree.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/attack/attack_tree.cpp.o.d"
  "/root/repo/src/attack/bayes.cpp" "CMakeFiles/divsec.dir/src/attack/bayes.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/attack/bayes.cpp.o.d"
  "/root/repo/src/attack/campaign.cpp" "CMakeFiles/divsec.dir/src/attack/campaign.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/attack/campaign.cpp.o.d"
  "/root/repo/src/attack/san_model.cpp" "CMakeFiles/divsec.dir/src/attack/san_model.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/attack/san_model.cpp.o.d"
  "/root/repo/src/attack/stages.cpp" "CMakeFiles/divsec.dir/src/attack/stages.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/attack/stages.cpp.o.d"
  "/root/repo/src/attack/threat.cpp" "CMakeFiles/divsec.dir/src/attack/threat.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/attack/threat.cpp.o.d"
  "/root/repo/src/core/configuration.cpp" "CMakeFiles/divsec.dir/src/core/configuration.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/core/configuration.cpp.o.d"
  "/root/repo/src/core/indicators.cpp" "CMakeFiles/divsec.dir/src/core/indicators.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/core/indicators.cpp.o.d"
  "/root/repo/src/core/measurement.cpp" "CMakeFiles/divsec.dir/src/core/measurement.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/core/measurement.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "CMakeFiles/divsec.dir/src/core/optimizer.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/core/optimizer.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "CMakeFiles/divsec.dir/src/core/pipeline.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/core/pipeline.cpp.o.d"
  "/root/repo/src/core/probability_space.cpp" "CMakeFiles/divsec.dir/src/core/probability_space.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/core/probability_space.cpp.o.d"
  "/root/repo/src/core/report.cpp" "CMakeFiles/divsec.dir/src/core/report.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/core/report.cpp.o.d"
  "/root/repo/src/divers/aslr.cpp" "CMakeFiles/divsec.dir/src/divers/aslr.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/divers/aslr.cpp.o.d"
  "/root/repo/src/divers/gadgets.cpp" "CMakeFiles/divsec.dir/src/divers/gadgets.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/divers/gadgets.cpp.o.d"
  "/root/repo/src/divers/ir.cpp" "CMakeFiles/divsec.dir/src/divers/ir.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/divers/ir.cpp.o.d"
  "/root/repo/src/divers/transforms.cpp" "CMakeFiles/divsec.dir/src/divers/transforms.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/divers/transforms.cpp.o.d"
  "/root/repo/src/divers/variants.cpp" "CMakeFiles/divsec.dir/src/divers/variants.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/divers/variants.cpp.o.d"
  "/root/repo/src/net/epidemic.cpp" "CMakeFiles/divsec.dir/src/net/epidemic.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/net/epidemic.cpp.o.d"
  "/root/repo/src/net/firewall.cpp" "CMakeFiles/divsec.dir/src/net/firewall.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/net/firewall.cpp.o.d"
  "/root/repo/src/net/reachability.cpp" "CMakeFiles/divsec.dir/src/net/reachability.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/net/reachability.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "CMakeFiles/divsec.dir/src/net/topology.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/net/topology.cpp.o.d"
  "/root/repo/src/san/analysis.cpp" "CMakeFiles/divsec.dir/src/san/analysis.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/san/analysis.cpp.o.d"
  "/root/repo/src/san/model.cpp" "CMakeFiles/divsec.dir/src/san/model.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/san/model.cpp.o.d"
  "/root/repo/src/san/simulator.cpp" "CMakeFiles/divsec.dir/src/san/simulator.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/san/simulator.cpp.o.d"
  "/root/repo/src/scada/cooling_system.cpp" "CMakeFiles/divsec.dir/src/scada/cooling_system.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/scada/cooling_system.cpp.o.d"
  "/root/repo/src/scada/historian.cpp" "CMakeFiles/divsec.dir/src/scada/historian.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/scada/historian.cpp.o.d"
  "/root/repo/src/scada/plant.cpp" "CMakeFiles/divsec.dir/src/scada/plant.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/scada/plant.cpp.o.d"
  "/root/repo/src/scada/plc.cpp" "CMakeFiles/divsec.dir/src/scada/plc.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/scada/plc.cpp.o.d"
  "/root/repo/src/scada/protocol.cpp" "CMakeFiles/divsec.dir/src/scada/protocol.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/scada/protocol.cpp.o.d"
  "/root/repo/src/sim/executor.cpp" "CMakeFiles/divsec.dir/src/sim/executor.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/sim/executor.cpp.o.d"
  "/root/repo/src/sim/replication.cpp" "CMakeFiles/divsec.dir/src/sim/replication.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/sim/replication.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "CMakeFiles/divsec.dir/src/sim/simulator.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/sim/simulator.cpp.o.d"
  "/root/repo/src/stats/anova.cpp" "CMakeFiles/divsec.dir/src/stats/anova.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/stats/anova.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "CMakeFiles/divsec.dir/src/stats/descriptive.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/stats/descriptive.cpp.o.d"
  "/root/repo/src/stats/distributions.cpp" "CMakeFiles/divsec.dir/src/stats/distributions.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/stats/distributions.cpp.o.d"
  "/root/repo/src/stats/doe.cpp" "CMakeFiles/divsec.dir/src/stats/doe.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/stats/doe.cpp.o.d"
  "/root/repo/src/stats/rng.cpp" "CMakeFiles/divsec.dir/src/stats/rng.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/stats/rng.cpp.o.d"
  "/root/repo/src/stats/sensitivity.cpp" "CMakeFiles/divsec.dir/src/stats/sensitivity.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/stats/sensitivity.cpp.o.d"
  "/root/repo/src/stats/special.cpp" "CMakeFiles/divsec.dir/src/stats/special.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/stats/special.cpp.o.d"
  "/root/repo/src/stats/survival.cpp" "CMakeFiles/divsec.dir/src/stats/survival.cpp.o" "gcc" "CMakeFiles/divsec.dir/src/stats/survival.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
