# Empty dependencies file for test_attack_tree.
# This may be replaced when dependencies are built.
