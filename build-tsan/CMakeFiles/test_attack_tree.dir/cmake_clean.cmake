file(REMOVE_RECURSE
  "CMakeFiles/test_attack_tree.dir/tests/test_attack_tree.cpp.o"
  "CMakeFiles/test_attack_tree.dir/tests/test_attack_tree.cpp.o.d"
  "test_attack_tree"
  "test_attack_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attack_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
