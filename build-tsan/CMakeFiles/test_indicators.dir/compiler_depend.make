# Empty compiler generated dependencies file for test_indicators.
# This may be replaced when dependencies are built.
