file(REMOVE_RECURSE
  "CMakeFiles/test_indicators.dir/tests/test_indicators.cpp.o"
  "CMakeFiles/test_indicators.dir/tests/test_indicators.cpp.o.d"
  "test_indicators"
  "test_indicators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_indicators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
