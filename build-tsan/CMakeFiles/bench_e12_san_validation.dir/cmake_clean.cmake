file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_san_validation.dir/bench/bench_e12_san_validation.cpp.o"
  "CMakeFiles/bench_e12_san_validation.dir/bench/bench_e12_san_validation.cpp.o.d"
  "bench_e12_san_validation"
  "bench_e12_san_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_san_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
