# Empty dependencies file for bench_e12_san_validation.
# This may be replaced when dependencies are built.
