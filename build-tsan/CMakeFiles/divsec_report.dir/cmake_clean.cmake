file(REMOVE_RECURSE
  "CMakeFiles/divsec_report.dir/tools/divsec_report.cpp.o"
  "CMakeFiles/divsec_report.dir/tools/divsec_report.cpp.o.d"
  "divsec_report"
  "divsec_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/divsec_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
