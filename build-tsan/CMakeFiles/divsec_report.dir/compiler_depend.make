# Empty compiler generated dependencies file for divsec_report.
# This may be replaced when dependencies are built.
