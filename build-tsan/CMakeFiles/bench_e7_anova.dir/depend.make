# Empty dependencies file for bench_e7_anova.
# This may be replaced when dependencies are built.
