file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_anova.dir/bench/bench_e7_anova.cpp.o"
  "CMakeFiles/bench_e7_anova.dir/bench/bench_e7_anova.cpp.o.d"
  "bench_e7_anova"
  "bench_e7_anova.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_anova.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
