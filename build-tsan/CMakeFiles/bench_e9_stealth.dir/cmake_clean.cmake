file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_stealth.dir/bench/bench_e9_stealth.cpp.o"
  "CMakeFiles/bench_e9_stealth.dir/bench/bench_e9_stealth.cpp.o.d"
  "bench_e9_stealth"
  "bench_e9_stealth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_stealth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
