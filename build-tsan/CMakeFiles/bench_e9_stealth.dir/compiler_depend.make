# Empty compiler generated dependencies file for bench_e9_stealth.
# This may be replaced when dependencies are built.
