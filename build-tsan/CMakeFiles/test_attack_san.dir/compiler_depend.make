# Empty compiler generated dependencies file for test_attack_san.
# This may be replaced when dependencies are built.
