file(REMOVE_RECURSE
  "CMakeFiles/test_attack_san.dir/tests/test_attack_san.cpp.o"
  "CMakeFiles/test_attack_san.dir/tests/test_attack_san.cpp.o.d"
  "test_attack_san"
  "test_attack_san.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attack_san.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
