# Empty compiler generated dependencies file for test_epidemic.
# This may be replaced when dependencies are built.
