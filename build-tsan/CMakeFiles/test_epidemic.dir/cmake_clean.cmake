file(REMOVE_RECURSE
  "CMakeFiles/test_epidemic.dir/tests/test_epidemic.cpp.o"
  "CMakeFiles/test_epidemic.dir/tests/test_epidemic.cpp.o.d"
  "test_epidemic"
  "test_epidemic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_epidemic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
