# Empty compiler generated dependencies file for test_special.
# This may be replaced when dependencies are built.
