file(REMOVE_RECURSE
  "CMakeFiles/test_special.dir/tests/test_special.cpp.o"
  "CMakeFiles/test_special.dir/tests/test_special.cpp.o.d"
  "test_special"
  "test_special.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_special.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
