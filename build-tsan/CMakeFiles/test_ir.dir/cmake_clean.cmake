file(REMOVE_RECURSE
  "CMakeFiles/test_ir.dir/tests/test_ir.cpp.o"
  "CMakeFiles/test_ir.dir/tests/test_ir.cpp.o.d"
  "test_ir"
  "test_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
