# Empty dependencies file for test_ir.
# This may be replaced when dependencies are built.
