file(REMOVE_RECURSE
  "CMakeFiles/test_optimizer.dir/tests/test_optimizer.cpp.o"
  "CMakeFiles/test_optimizer.dir/tests/test_optimizer.cpp.o.d"
  "test_optimizer"
  "test_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
