#include "divers/gadgets.h"

#include <algorithm>

namespace divsec::divers {

std::vector<std::uint8_t> encode_block(const BasicBlock& b) {
  Program one;
  one.blocks.push_back(b);
  // encode() of a single-block program is exactly that block's layout;
  // terminator targets are encoded by value, which is what we want: a
  // retargeted jump is a changed byte.
  return encode(one);
}

std::vector<Gadget> extract_gadgets(const Program& p, const GadgetOptions& opts) {
  std::vector<Gadget> out;
  for (std::size_t bi = 0; bi < p.blocks.size(); ++bi) {
    const BasicBlock& block = p.blocks[bi];
    if (block.term.kind != TerminatorKind::kReturn) continue;
    const std::vector<std::uint8_t> bytes = encode_block(block);
    const std::size_t body_len = block.body.size();
    const std::size_t max_take = std::min(opts.max_instructions, body_len);
    for (std::size_t take = 1; take <= max_take; ++take) {
      const std::size_t start = (body_len - take) * 4;
      Gadget g;
      g.block = bi;
      g.offset = start;
      g.bytes.assign(bytes.begin() + static_cast<std::ptrdiff_t>(start), bytes.end());
      out.push_back(std::move(g));
    }
  }
  return out;
}

double gadget_survival(const Program& reference, const Program& target,
                       const GadgetOptions& opts) {
  const auto ref = extract_gadgets(reference, opts);
  if (ref.empty()) return 1.0;
  // Pre-encode the target's blocks once.
  std::vector<std::vector<std::uint8_t>> target_blocks;
  target_blocks.reserve(target.blocks.size());
  for (const auto& b : target.blocks) target_blocks.push_back(encode_block(b));

  std::size_t surviving = 0;
  for (const auto& g : ref) {
    if (g.block >= target_blocks.size()) continue;
    const auto& tb = target_blocks[g.block];
    if (g.offset + g.bytes.size() > tb.size()) continue;
    if (std::equal(g.bytes.begin(), g.bytes.end(),
                   tb.begin() + static_cast<std::ptrdiff_t>(g.offset)))
      ++surviving;
  }
  return static_cast<double>(surviving) / static_cast<double>(ref.size());
}

double mean_population_survival(const Program& reference,
                                const std::vector<Program>& variants,
                                const GadgetOptions& opts) {
  if (variants.empty()) return 1.0;
  double acc = 0.0;
  for (const auto& v : variants) acc += gadget_survival(reference, v, opts);
  return acc / static_cast<double>(variants.size());
}

}  // namespace divsec::divers
