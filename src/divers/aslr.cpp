#include "divers/aslr.h"

#include <cmath>
#include <stdexcept>

namespace divsec::divers {

AslrModel::AslrModel(int entropy_bits) : bits_(entropy_bits) {
  if (entropy_bits < 0 || entropy_bits > 48)
    throw std::invalid_argument("AslrModel: entropy_bits must be in [0, 48]");
}

double AslrModel::per_attempt_success() const noexcept {
  return std::pow(2.0, -bits_);
}

double AslrModel::success_within(std::uint64_t attempts) const noexcept {
  const double p = per_attempt_success();
  // 1 - (1-p)^n computed stably for tiny p.
  return -std::expm1(static_cast<double>(attempts) * std::log1p(-p));
}

double AslrModel::expected_attempts() const noexcept {
  return std::pow(2.0, bits_);
}

std::uint64_t AslrModel::sample_attempts(stats::Rng& rng) const noexcept {
  const double p = per_attempt_success();
  if (p >= 1.0) return 1;
  // Geometric via inversion: ceil(ln U / ln(1-p)).
  const double u = 1.0 - rng.uniform();  // in (0, 1]
  const double n = std::ceil(std::log(u) / std::log1p(-p));
  return n < 1.0 ? 1 : static_cast<std::uint64_t>(n);
}

}  // namespace divsec::divers
