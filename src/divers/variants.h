// variants.h — HW/SW component variants and mechanistic exploit success.
//
// The paper: "the root access stage might have a success probability P1
// when operating system OS1 is used, or P2 in case OS2 is used (P1 != P2).
// Probability values reflect the availability of tools and/or exploits."
//
// Instead of hand-setting P1/P2, this module derives them from code-level
// quantities: every variant carries a real (toy-ISA) binary; an exploit
// is developed against one variant; its per-session success on a deployed
// variant combines
//   * patch status of the targeted CVE (non-zero-days die on patched
//     variants),
//   * gadget survival between the development binary and the deployed
//     binary (diversity breaks payloads),
//   * the deployed variant's hardening factor,
// and its *work factor* (time multiplier) comes from the deployed
// variant's ASLR entropy. Direct probability injection is still possible
// (the DoE sensitivity mode) by constructing synthetic catalogs.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "divers/aslr.h"
#include "divers/gadgets.h"
#include "divers/ir.h"

namespace divsec::divers {

/// The component kinds the SCoPE case study diversifies.
enum class ComponentKind : std::uint8_t {
  kOs = 0,            // control/monitoring node operating system
  kPlcFirmware,       // PLC runtime
  kProtocolStack,     // fieldbus / telemetry stack
  kHmiSoftware,       // operator console software
  kFirewallFirmware,  // zone firewall implementation
  kHistorianDb,       // historian database engine
};

inline constexpr std::size_t kComponentKindCount = 6;

[[nodiscard]] const char* to_string(ComponentKind k) noexcept;
[[nodiscard]] std::array<ComponentKind, kComponentKindCount> all_component_kinds() noexcept;

struct Variant {
  std::string name;
  ComponentKind kind = ComponentKind::kOs;
  /// Variants in one family share a code base (an exploit ports partially
  /// within a family, almost never across families).
  std::string family;
  Program binary;
  std::vector<int> patched_cves;  // sorted CVE ids closed in this variant
  int aslr_bits = 0;
  /// Additional attack-resilience in [0,1): per-session failure factor
  /// from mitigations other than layout (CFI, signed firmware, ...).
  double hardening = 0.0;
  /// Relative procurement + integration cost (baseline variant = 1.0).
  double cost = 1.0;

  [[nodiscard]] bool patched(int cve) const noexcept;
};

/// A concrete exploit in the attack toolkit.
struct Exploit {
  std::string id;
  ComponentKind target = ComponentKind::kOs;
  int cve = 0;
  bool zero_day = false;
  /// Index (within the catalog's kind list) of the variant the exploit
  /// was developed against.
  std::size_t dev_variant = 0;
  /// Per-session success probability against the development variant
  /// itself (tooling quality).
  double base_success = 0.5;
};

class VariantCatalog {
 public:
  /// The standard catalog: 2-4 variants per kind spanning same-family
  /// patch-level diversity, cross-family diversity, a multicompiled
  /// variant and hardened variants. Deterministic in `seed`.
  [[nodiscard]] static VariantCatalog standard(std::uint64_t seed);

  /// An empty catalog for custom construction (tests, sensitivity mode).
  VariantCatalog() = default;

  /// Append a variant; returns its index within its kind.
  std::size_t add_variant(Variant v);

  [[nodiscard]] const std::vector<Variant>& variants(ComponentKind k) const;
  [[nodiscard]] const Variant& variant(ComponentKind k, std::size_t idx) const;
  [[nodiscard]] std::size_t count(ComponentKind k) const;

  /// Find a variant index by name; throws std::out_of_range if absent.
  [[nodiscard]] std::size_t index_of(ComponentKind k, const std::string& name) const;

  /// Gadget survival from variant `dev` to variant `deployed` (same
  /// kind). Precomputed when variants are added, so const lookups are
  /// race-free under concurrent measurement.
  [[nodiscard]] double survival(ComponentKind k, std::size_t dev,
                                std::size_t deployed) const;

  /// Per-session success probability of `e` against deployed variant
  /// `deployed_idx` of its target kind.
  [[nodiscard]] double exploit_success(const Exploit& e, std::size_t deployed_idx) const;

  /// Work factor >= 1: expected time multiplier from the deployed
  /// variant's ASLR (2^bits guesses, log-compressed to a session scale).
  [[nodiscard]] double exploit_work_factor(const Exploit& e,
                                           std::size_t deployed_idx) const;

 private:
  void rebuild_survival(std::size_t kind_index);

  std::array<std::vector<Variant>, kComponentKindCount> by_kind_;
  // survival matrix per kind: dev*count+deployed -> value. Rebuilt
  // eagerly by add_variant; a fully-constructed catalog is deeply
  // immutable and therefore safe to share across executor threads.
  std::array<std::vector<double>, kComponentKindCount> survival_cache_;
};

/// Shannon diversity index of a variant assignment (entropy in nats of
/// the empirical variant distribution across `assignment`); 0 for a
/// monoculture, ln(n) for n equally-used variants.
[[nodiscard]] double shannon_diversity(const std::vector<std::size_t>& assignment);

}  // namespace divsec::divers
