// transforms.h — multicompiler-style diversifying transformations.
//
// Each transform rewrites a Program into a semantically equivalent
// variant (property-tested against the interpreter): the point is to
// change the *byte image* so that hardcoded gadget addresses and byte
// signatures from an exploit developed against one variant stop matching
// another. The four classic families implemented here mirror the
// literature (Larsen et al., "SoK: Automated Software Diversity"):
//
//  * NOP insertion       — shifts addresses of everything downstream
//  * instruction substitution — rewrites idioms to equivalent encodings
//  * register renaming   — permutes register operands program-wide
//  * block reordering    — shuffles basic-block layout (entry stays first)
#pragma once

#include "divers/ir.h"
#include "stats/rng.h"

namespace divsec::divers {

struct TransformConfig {
  bool nop_insertion = true;
  /// Probability of inserting a NOP before each instruction.
  double nop_density = 0.15;
  bool instruction_substitution = true;
  /// Probability of applying an available substitution at a site.
  double substitution_probability = 0.8;
  bool register_renaming = true;
  bool block_reordering = true;

  /// No transforms enabled (identity pipeline).
  [[nodiscard]] static TransformConfig none() {
    return TransformConfig{false, 0.0, false, 0.0, false, false};
  }
  /// Everything on at full strength.
  [[nodiscard]] static TransformConfig all() {
    return TransformConfig{true, 0.3, true, 1.0, true, true};
  }
};

/// Insert NOPs with probability `density` before each instruction.
[[nodiscard]] Program nop_insertion(const Program& p, double density, stats::Rng& rng);

/// Apply semantics-preserving instruction rewrites:
///   mov d,s        <-> or  d,s,s   <-> and d,s,s
///   xor d,a,a       -> movi d,0
///   add/mul/xor/and/or d,a,b -> operand swap (commutativity)
///   add d,a,a       -> shl d,a,[r]=1 is NOT applied (needs a scratch reg).
[[nodiscard]] Program instruction_substitution(const Program& p, double probability,
                                               stats::Rng& rng);

/// Apply a uniformly random register permutation to every operand.
/// Semantics are preserved because registers are internal state that
/// starts zeroed (program I/O goes through memory).
[[nodiscard]] Program register_renaming(const Program& p, stats::Rng& rng);

/// Shuffle block layout (block 0 stays the entry); terminator targets are
/// remapped so control flow is unchanged.
[[nodiscard]] Program block_reordering(const Program& p, stats::Rng& rng);

/// Full pipeline in the order: substitution, renaming, NOP insertion,
/// reordering (the order used by multicompiler builds: semantic rewrites
/// first, layout last).
[[nodiscard]] Program diversify(const Program& p, const TransformConfig& cfg,
                                stats::Rng& rng);

/// Generate `count` diversified variants of `p` with independent streams
/// of `rng` (a "multicompiler build farm").
[[nodiscard]] std::vector<Program> build_population(const Program& p,
                                                    const TransformConfig& cfg,
                                                    std::size_t count, stats::Rng& rng);

}  // namespace divsec::divers
