#include "divers/variants.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "divers/transforms.h"

namespace divsec::divers {

const char* to_string(ComponentKind k) noexcept {
  switch (k) {
    case ComponentKind::kOs: return "os";
    case ComponentKind::kPlcFirmware: return "plc-firmware";
    case ComponentKind::kProtocolStack: return "protocol-stack";
    case ComponentKind::kHmiSoftware: return "hmi-software";
    case ComponentKind::kFirewallFirmware: return "firewall-firmware";
    case ComponentKind::kHistorianDb: return "historian-db";
  }
  return "?";
}

std::array<ComponentKind, kComponentKindCount> all_component_kinds() noexcept {
  return {ComponentKind::kOs,          ComponentKind::kPlcFirmware,
          ComponentKind::kProtocolStack, ComponentKind::kHmiSoftware,
          ComponentKind::kFirewallFirmware, ComponentKind::kHistorianDb};
}

bool Variant::patched(int cve) const noexcept {
  return std::binary_search(patched_cves.begin(), patched_cves.end(), cve);
}

std::size_t VariantCatalog::add_variant(Variant v) {
  std::sort(v.patched_cves.begin(), v.patched_cves.end());
  if (v.hardening < 0.0 || v.hardening >= 1.0)
    throw std::invalid_argument("add_variant: hardening must be in [0,1)");
  if (!(v.cost > 0.0)) throw std::invalid_argument("add_variant: cost must be > 0");
  const auto ki = static_cast<std::size_t>(v.kind);
  auto& vec = by_kind_[ki];
  vec.push_back(std::move(v));
  rebuild_survival(ki);
  return vec.size() - 1;
}

void VariantCatalog::rebuild_survival(std::size_t kind_index) {
  const auto& vec = by_kind_[kind_index];
  const std::size_t n = vec.size();
  auto& cache = survival_cache_[kind_index];
  std::vector<double> next(n * n, 1.0);
  for (std::size_t dev = 0; dev < n; ++dev) {
    for (std::size_t dep = 0; dep < n; ++dep) {
      // Only the last row/column are new; reuse previously computed pairs.
      if (dev + 1 < n && dep + 1 < n && cache.size() == (n - 1) * (n - 1)) {
        next[dev * n + dep] = cache[dev * (n - 1) + dep];
      } else {
        next[dev * n + dep] = gadget_survival(vec[dev].binary, vec[dep].binary);
      }
    }
  }
  cache = std::move(next);
}

const std::vector<Variant>& VariantCatalog::variants(ComponentKind k) const {
  return by_kind_[static_cast<std::size_t>(k)];
}

const Variant& VariantCatalog::variant(ComponentKind k, std::size_t idx) const {
  return by_kind_[static_cast<std::size_t>(k)].at(idx);
}

std::size_t VariantCatalog::count(ComponentKind k) const {
  return by_kind_[static_cast<std::size_t>(k)].size();
}

std::size_t VariantCatalog::index_of(ComponentKind k, const std::string& name) const {
  const auto& vec = by_kind_[static_cast<std::size_t>(k)];
  for (std::size_t i = 0; i < vec.size(); ++i)
    if (vec[i].name == name) return i;
  throw std::out_of_range("index_of: no variant named '" + name + "'");
}

double VariantCatalog::survival(ComponentKind k, std::size_t dev,
                                std::size_t deployed) const {
  const auto ki = static_cast<std::size_t>(k);
  const std::size_t n = by_kind_[ki].size();
  if (dev >= n || deployed >= n)
    throw std::out_of_range("survival: variant index out of range");
  return survival_cache_[ki][dev * n + deployed];
}

double VariantCatalog::exploit_success(const Exploit& e, std::size_t deployed_idx) const {
  const Variant& dep = variant(e.target, deployed_idx);
  if (!e.zero_day && dep.patched(e.cve)) return 0.0;
  const double s = survival(e.target, e.dev_variant, deployed_idx);
  // Even with every hardcoded gadget broken, a competent attacker retains
  // a small per-session chance of in-session adaptation (info leaks,
  // partial overwrite); with full survival the payload ports unmodified.
  const double structural = 0.05 + 0.95 * s;
  return e.base_success * structural * (1.0 - dep.hardening);
}

double VariantCatalog::exploit_work_factor(const Exploit& e,
                                           std::size_t deployed_idx) const {
  const Variant& dep = variant(e.target, deployed_idx);
  const AslrModel aslr(dep.aslr_bits);
  // An exploitation session internally brute-forces layout; sessions get
  // slower with entropy, but sub-exponentially (crash-tolerant spraying,
  // partial-pointer tricks): scale time by 1 + bits/4.
  return 1.0 + static_cast<double>(aslr.entropy_bits()) / 4.0;
}

namespace {

Program family_binary(std::uint64_t seed, ComponentKind k, std::uint32_t family_tag) {
  stats::Rng rng(seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(k) + 1)),
                 family_tag);
  GeneratorOptions opts;
  opts.blocks = 16;
  opts.instructions_per_block = 12;
  return generate_program(rng, opts);
}

/// Patch-level sibling: mild transforms leave a large fraction of gadgets
/// intact (service packs recompile little).
Program patch_sibling(const Program& base, std::uint64_t seed, std::uint64_t tag) {
  stats::Rng rng(seed, tag);
  TransformConfig cfg;
  cfg.nop_insertion = true;
  cfg.nop_density = 0.04;
  cfg.instruction_substitution = true;
  cfg.substitution_probability = 0.15;
  cfg.register_renaming = false;
  cfg.block_reordering = false;
  return diversify(base, cfg, rng);
}

/// Multicompiled sibling: the full pipeline, survival ~0.
Program multicompiled(const Program& base, std::uint64_t seed, std::uint64_t tag) {
  stats::Rng rng(seed, tag);
  return diversify(base, TransformConfig::all(), rng);
}

}  // namespace

VariantCatalog VariantCatalog::standard(std::uint64_t seed) {
  VariantCatalog cat;

  // --- Operating systems -------------------------------------------------
  // CVE ids 100..199. The legacy OS is the exploit development target.
  {
    const Program win = family_binary(seed, ComponentKind::kOs, 1);
    const Program lin = family_binary(seed, ComponentKind::kOs, 2);
    const Program rtos = family_binary(seed, ComponentKind::kOs, 3);
    cat.add_variant({"os.win_legacy", ComponentKind::kOs, "windows", win,
                     /*patched=*/{}, /*aslr=*/0, /*hardening=*/0.0, /*cost=*/1.0});
    cat.add_variant({"os.win_patched", ComponentKind::kOs, "windows",
                     patch_sibling(win, seed, 11), {101, 102}, 8, 0.1, 1.2});
    cat.add_variant({"os.linux_lts", ComponentKind::kOs, "linux", lin,
                     {101}, 16, 0.2, 1.5});
    cat.add_variant({"os.rtos_micro", ComponentKind::kOs, "rtos", rtos,
                     {101, 102, 103}, 12, 0.5, 2.5});
  }

  // --- PLC firmware -------------------------------------------------------
  // CVE ids 200..299.
  {
    const Program s7 = family_binary(seed, ComponentKind::kPlcFirmware, 1);
    const Program abb = family_binary(seed, ComponentKind::kPlcFirmware, 2);
    cat.add_variant({"plc.s7_stock", ComponentKind::kPlcFirmware, "s7", s7,
                     {}, 0, 0.0, 1.0});
    cat.add_variant({"plc.s7_updated", ComponentKind::kPlcFirmware, "s7",
                     patch_sibling(s7, seed, 21), {201}, 0, 0.1, 1.1});
    cat.add_variant({"plc.s7_multicompiled", ComponentKind::kPlcFirmware, "s7",
                     multicompiled(s7, seed, 22), {}, 6, 0.2, 1.8});
    cat.add_variant({"plc.abb_ac800", ComponentKind::kPlcFirmware, "abb", abb,
                     {201, 202}, 4, 0.4, 2.2});
  }

  // --- Protocol stacks ----------------------------------------------------
  // CVE ids 300..399.
  {
    const Program mb = family_binary(seed, ComponentKind::kProtocolStack, 1);
    const Program dnp = family_binary(seed, ComponentKind::kProtocolStack, 2);
    cat.add_variant({"proto.modbus_stock", ComponentKind::kProtocolStack, "modbus",
                     mb, {}, 0, 0.0, 1.0});
    cat.add_variant({"proto.modbus_hardened", ComponentKind::kProtocolStack, "modbus",
                     patch_sibling(mb, seed, 31), {301}, 8, 0.3, 1.4});
    cat.add_variant({"proto.dnp3_secure", ComponentKind::kProtocolStack, "dnp3",
                     dnp, {301, 302}, 8, 0.5, 2.0});
  }

  // --- HMI software ---------------------------------------------------------
  // CVE ids 400..499.
  {
    const Program hmi1 = family_binary(seed, ComponentKind::kHmiSoftware, 1);
    const Program hmi2 = family_binary(seed, ComponentKind::kHmiSoftware, 2);
    cat.add_variant({"hmi.wincc_like", ComponentKind::kHmiSoftware, "wincc", hmi1,
                     {}, 0, 0.0, 1.0});
    cat.add_variant({"hmi.open_scada", ComponentKind::kHmiSoftware, "openscada",
                     hmi2, {401}, 12, 0.3, 1.3});
  }

  // --- Firewall firmware ----------------------------------------------------
  // CVE ids 500..599.
  {
    const Program fw1 = family_binary(seed, ComponentKind::kFirewallFirmware, 1);
    const Program fw2 = family_binary(seed, ComponentKind::kFirewallFirmware, 2);
    cat.add_variant({"fw.stock", ComponentKind::kFirewallFirmware, "stock", fw1,
                     {}, 0, 0.0, 1.0});
    cat.add_variant({"fw.ngfw", ComponentKind::kFirewallFirmware, "ngfw", fw2,
                     {501}, 8, 0.4, 1.9});
  }

  // --- Historian database -----------------------------------------------------
  // CVE ids 600..699.
  {
    const Program h1 = family_binary(seed, ComponentKind::kHistorianDb, 1);
    const Program h2 = family_binary(seed, ComponentKind::kHistorianDb, 2);
    cat.add_variant({"hist.sql_classic", ComponentKind::kHistorianDb, "sql", h1,
                     {}, 0, 0.0, 1.0});
    cat.add_variant({"hist.tsdb_modern", ComponentKind::kHistorianDb, "tsdb", h2,
                     {601}, 12, 0.2, 1.4});
  }

  return cat;
}

double shannon_diversity(const std::vector<std::size_t>& assignment) {
  if (assignment.empty()) return 0.0;
  std::vector<std::size_t> sorted = assignment;
  std::sort(sorted.begin(), sorted.end());
  double h = 0.0;
  const auto n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    const double p = static_cast<double>(j - i) / n;
    h -= p * std::log(p);
    i = j;
  }
  return h;
}

}  // namespace divsec::divers
