#include "divers/ir.h"

#include <stdexcept>

namespace divsec::divers {

const char* to_string(Opcode op) noexcept {
  switch (op) {
    case Opcode::kNop: return "nop";
    case Opcode::kMovReg: return "mov";
    case Opcode::kMovImm: return "movi";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kXor: return "xor";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kCmpLt: return "cmplt";
  }
  return "?";
}

std::size_t Program::instruction_count() const noexcept {
  std::size_t n = 0;
  for (const auto& b : blocks) n += b.body.size();
  return n;
}

void Program::validate() const {
  if (blocks.empty()) throw std::invalid_argument("Program: no blocks");
  for (const auto& b : blocks) {
    for (const auto& i : b.body) {
      if (i.dst >= kRegisterCount || i.src1 >= kRegisterCount ||
          i.src2 >= kRegisterCount)
        throw std::invalid_argument("Program: register id out of range");
    }
    switch (b.term.kind) {
      case TerminatorKind::kJump:
        if (b.term.target >= blocks.size())
          throw std::invalid_argument("Program: jump target out of range");
        break;
      case TerminatorKind::kBranch:
        if (b.term.target >= blocks.size() || b.term.fallthrough >= blocks.size())
          throw std::invalid_argument("Program: branch target out of range");
        if (b.term.reg >= kRegisterCount)
          throw std::invalid_argument("Program: branch register out of range");
        break;
      case TerminatorKind::kReturn:
        break;
    }
  }
}

std::vector<std::uint8_t> encode(const Program& p) {
  std::vector<std::uint8_t> out;
  out.reserve(p.instruction_count() * 4 + p.blocks.size() * 4);
  for (const auto& b : p.blocks) {
    for (const auto& i : b.body) {
      out.push_back(static_cast<std::uint8_t>(i.op));
      if (i.op == Opcode::kMovImm) {
        out.push_back(i.dst);
        out.push_back(static_cast<std::uint8_t>(i.imm & 0xFF));
        out.push_back(static_cast<std::uint8_t>((i.imm >> 8) & 0xFF));
      } else {
        out.push_back(i.dst);
        out.push_back(i.src1);
        out.push_back(i.src2);
      }
    }
    // Terminator: 0xF0 | kind, then operands.
    out.push_back(static_cast<std::uint8_t>(0xF0 | static_cast<std::uint8_t>(b.term.kind)));
    out.push_back(b.term.reg);
    out.push_back(static_cast<std::uint8_t>(b.term.target & 0xFF));
    out.push_back(static_cast<std::uint8_t>(b.term.fallthrough & 0xFF));
  }
  return out;
}

ExecutionResult execute(const Program& p, const std::vector<std::int64_t>& input,
                        std::size_t max_steps) {
  p.validate();
  ExecutionResult r;
  r.memory.assign(kMemoryWords, 0);
  for (std::size_t i = 0; i < input.size() && i < kMemoryWords; ++i)
    r.memory[i] = input[i];
  std::int64_t regs[kRegisterCount] = {};
  std::size_t bb = 0;
  for (;;) {
    const BasicBlock& block = p.blocks[bb];
    for (const auto& ins : block.body) {
      if (++r.steps > max_steps) {
        r.hit_step_limit = true;
        return r;
      }
      // Unsigned arithmetic internally to keep overflow well-defined.
      const auto a = static_cast<std::uint64_t>(regs[ins.src1]);
      const auto b = static_cast<std::uint64_t>(regs[ins.src2]);
      switch (ins.op) {
        case Opcode::kNop: break;
        case Opcode::kMovReg: regs[ins.dst] = regs[ins.src1]; break;
        case Opcode::kMovImm: regs[ins.dst] = ins.imm; break;
        case Opcode::kAdd: regs[ins.dst] = static_cast<std::int64_t>(a + b); break;
        case Opcode::kSub: regs[ins.dst] = static_cast<std::int64_t>(a - b); break;
        case Opcode::kMul: regs[ins.dst] = static_cast<std::int64_t>(a * b); break;
        case Opcode::kXor: regs[ins.dst] = static_cast<std::int64_t>(a ^ b); break;
        case Opcode::kAnd: regs[ins.dst] = static_cast<std::int64_t>(a & b); break;
        case Opcode::kOr: regs[ins.dst] = static_cast<std::int64_t>(a | b); break;
        case Opcode::kShl: regs[ins.dst] = static_cast<std::int64_t>(a << (b & 63)); break;
        case Opcode::kShr: regs[ins.dst] = static_cast<std::int64_t>(a >> (b & 63)); break;
        case Opcode::kLoad:
          regs[ins.dst] = r.memory[static_cast<std::size_t>(a % kMemoryWords)];
          break;
        case Opcode::kStore:
          r.memory[static_cast<std::size_t>(a % kMemoryWords)] = regs[ins.src2];
          break;
        case Opcode::kCmpLt:
          regs[ins.dst] = regs[ins.src1] < regs[ins.src2] ? 1 : 0;
          break;
      }
    }
    if (++r.steps > max_steps) {
      r.hit_step_limit = true;
      return r;
    }
    switch (block.term.kind) {
      case TerminatorKind::kJump: bb = block.term.target; break;
      case TerminatorKind::kBranch:
        bb = regs[block.term.reg] != 0 ? block.term.target : block.term.fallthrough;
        break;
      case TerminatorKind::kReturn: return r;
    }
  }
}

std::string disassemble(const Program& p) {
  std::string out;
  for (std::size_t b = 0; b < p.blocks.size(); ++b) {
    out += "bb" + std::to_string(b) + ":\n";
    for (const auto& i : p.blocks[b].body) {
      out += "  ";
      out += to_string(i.op);
      if (i.op == Opcode::kMovImm) {
        out += " r" + std::to_string(i.dst) + ", #" + std::to_string(i.imm);
      } else if (i.op == Opcode::kNop) {
        // no operands
      } else if (i.op == Opcode::kMovReg) {
        out += " r" + std::to_string(i.dst) + ", r" + std::to_string(i.src1);
      } else if (i.op == Opcode::kLoad) {
        out += " r" + std::to_string(i.dst) + ", [r" + std::to_string(i.src1) + "]";
      } else if (i.op == Opcode::kStore) {
        out += " [r" + std::to_string(i.src1) + "], r" + std::to_string(i.src2);
      } else {
        out += " r" + std::to_string(i.dst) + ", r" + std::to_string(i.src1) +
               ", r" + std::to_string(i.src2);
      }
      out += "\n";
    }
    const Terminator& t = p.blocks[b].term;
    switch (t.kind) {
      case TerminatorKind::kJump:
        out += "  jmp bb" + std::to_string(t.target) + "\n";
        break;
      case TerminatorKind::kBranch:
        out += "  bnz r" + std::to_string(t.reg) + ", bb" +
               std::to_string(t.target) + ", bb" + std::to_string(t.fallthrough) +
               "\n";
        break;
      case TerminatorKind::kReturn:
        out += "  ret\n";
        break;
    }
  }
  return out;
}

Program generate_program(stats::Rng& rng, const GeneratorOptions& opts) {
  if (opts.blocks == 0) throw std::invalid_argument("generate_program: need >= 1 block");
  Program p;
  p.blocks.resize(opts.blocks);
  static constexpr Opcode kBodyOps[] = {
      Opcode::kMovReg, Opcode::kMovImm, Opcode::kAdd, Opcode::kSub, Opcode::kMul,
      Opcode::kXor,    Opcode::kAnd,    Opcode::kOr,  Opcode::kShl, Opcode::kShr,
      Opcode::kLoad,   Opcode::kStore,  Opcode::kCmpLt};
  for (std::size_t b = 0; b < opts.blocks; ++b) {
    auto& block = p.blocks[b];
    block.body.reserve(opts.instructions_per_block);
    for (std::size_t i = 0; i < opts.instructions_per_block; ++i) {
      Instruction ins;
      ins.op = kBodyOps[rng.below(std::size(kBodyOps))];
      ins.dst = static_cast<std::uint8_t>(rng.below(kRegisterCount));
      ins.src1 = static_cast<std::uint8_t>(rng.below(kRegisterCount));
      ins.src2 = static_cast<std::uint8_t>(rng.below(kRegisterCount));
      ins.imm = static_cast<std::int32_t>(rng.below(0x10000)) - 0x8000;
      block.body.push_back(ins);
    }
    if (b + 1 == opts.blocks || rng.uniform() < opts.return_probability) {
      block.term = Terminator{TerminatorKind::kReturn, 0, 0, 0};
    } else if (rng.uniform() < opts.branch_probability) {
      // Forward-only targets guarantee termination.
      const std::size_t t1 = b + 1 + rng.below(opts.blocks - b - 1);
      const std::size_t t2 = b + 1 + rng.below(opts.blocks - b - 1);
      block.term = Terminator{TerminatorKind::kBranch,
                              static_cast<std::uint8_t>(rng.below(kRegisterCount)), t1, t2};
    } else {
      const std::size_t t = b + 1 + rng.below(opts.blocks - b - 1);
      block.term = Terminator{TerminatorKind::kJump, 0, t, 0};
    }
  }
  p.validate();
  return p;
}

}  // namespace divsec::divers
