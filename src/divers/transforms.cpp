#include "divers/transforms.h"

#include <algorithm>
#include <array>
#include <numeric>
#include <stdexcept>

namespace divsec::divers {

Program nop_insertion(const Program& p, double density, stats::Rng& rng) {
  if (density < 0.0 || density > 1.0)
    throw std::invalid_argument("nop_insertion: density in [0,1]");
  Program out;
  out.blocks.reserve(p.blocks.size());
  for (const auto& b : p.blocks) {
    BasicBlock nb;
    nb.term = b.term;
    for (const auto& ins : b.body) {
      if (rng.uniform() < density) nb.body.push_back(Instruction{});  // NOP
      nb.body.push_back(ins);
    }
    out.blocks.push_back(std::move(nb));
  }
  return out;
}

Program instruction_substitution(const Program& p, double probability,
                                 stats::Rng& rng) {
  if (probability < 0.0 || probability > 1.0)
    throw std::invalid_argument("instruction_substitution: probability in [0,1]");
  Program out = p;
  for (auto& b : out.blocks) {
    for (auto& ins : b.body) {
      if (rng.uniform() >= probability) continue;
      switch (ins.op) {
        case Opcode::kMovReg:
          // mov d,s -> or d,s,s or and d,s,s
          ins.op = rng.bernoulli(0.5) ? Opcode::kOr : Opcode::kAnd;
          ins.src2 = ins.src1;
          break;
        case Opcode::kOr:
        case Opcode::kAnd:
          if (ins.src1 == ins.src2) {
            // or/and d,s,s -> mov d,s
            ins.op = Opcode::kMovReg;
          } else {
            std::swap(ins.src1, ins.src2);  // commutative
          }
          break;
        case Opcode::kXor:
          if (ins.src1 == ins.src2) {
            // xor d,a,a -> movi d,0
            ins.op = Opcode::kMovImm;
            ins.imm = 0;
          } else {
            std::swap(ins.src1, ins.src2);
          }
          break;
        case Opcode::kAdd:
        case Opcode::kMul:
          std::swap(ins.src1, ins.src2);
          break;
        default:
          break;  // no rewrite available
      }
    }
  }
  return out;
}

Program register_renaming(const Program& p, stats::Rng& rng) {
  std::array<std::uint8_t, kRegisterCount> perm{};
  std::iota(perm.begin(), perm.end(), std::uint8_t{0});
  for (std::size_t i = perm.size() - 1; i > 0; --i)
    std::swap(perm[i], perm[rng.below(i + 1)]);
  Program out = p;
  for (auto& b : out.blocks) {
    for (auto& ins : b.body) {
      ins.dst = perm[ins.dst];
      ins.src1 = perm[ins.src1];
      ins.src2 = perm[ins.src2];
    }
    if (b.term.kind == TerminatorKind::kBranch) b.term.reg = perm[b.term.reg];
  }
  return out;
}

Program block_reordering(const Program& p, stats::Rng& rng) {
  const std::size_t n = p.blocks.size();
  if (n <= 2) return p;
  // new_position[i] = where old block i lands. Entry stays at 0.
  std::vector<std::size_t> order(n);  // order[new_idx] = old_idx
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (std::size_t i = n - 1; i > 1; --i)
    std::swap(order[i], order[1 + rng.below(i)]);
  std::vector<std::size_t> new_position(n);
  for (std::size_t ni = 0; ni < n; ++ni) new_position[order[ni]] = ni;

  Program out;
  out.blocks.reserve(n);
  for (std::size_t ni = 0; ni < n; ++ni) {
    BasicBlock b = p.blocks[order[ni]];
    if (b.term.kind == TerminatorKind::kJump) {
      b.term.target = new_position[b.term.target];
    } else if (b.term.kind == TerminatorKind::kBranch) {
      b.term.target = new_position[b.term.target];
      b.term.fallthrough = new_position[b.term.fallthrough];
    }
    out.blocks.push_back(std::move(b));
  }
  return out;
}

Program diversify(const Program& p, const TransformConfig& cfg, stats::Rng& rng) {
  Program out = p;
  if (cfg.instruction_substitution)
    out = instruction_substitution(out, cfg.substitution_probability, rng);
  if (cfg.register_renaming) out = register_renaming(out, rng);
  if (cfg.nop_insertion) out = nop_insertion(out, cfg.nop_density, rng);
  if (cfg.block_reordering) out = block_reordering(out, rng);
  return out;
}

std::vector<Program> build_population(const Program& p, const TransformConfig& cfg,
                                      std::size_t count, stats::Rng& rng) {
  std::vector<Program> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    stats::Rng child = rng.stream(i);
    out.push_back(diversify(p, cfg, child));
  }
  return out;
}

}  // namespace divsec::divers
