// aslr.h — address-space layout randomization as a probabilistic defense.
//
// ASLR contributes "runtime diversity": even identical binaries load at
// different bases. We model the canonical abstraction: an exploit that
// must guess the load base succeeds per attempt with probability 2^-bits
// (bits = entropy). The model feeds the exploit-success computation in
// variants.h and the E11 ablation bench.
#pragma once

#include <cstdint>

#include "stats/rng.h"

namespace divsec::divers {

class AslrModel {
 public:
  /// entropy_bits = 0 disables ASLR (every guess succeeds).
  explicit AslrModel(int entropy_bits);

  [[nodiscard]] int entropy_bits() const noexcept { return bits_; }

  /// Probability a single hardcoded-address attempt lands correctly.
  [[nodiscard]] double per_attempt_success() const noexcept;

  /// Probability at least one of `attempts` independent guesses succeeds
  /// (fresh randomization per attempt, e.g. a forking service).
  [[nodiscard]] double success_within(std::uint64_t attempts) const noexcept;

  /// Expected number of attempts until success (geometric mean).
  [[nodiscard]] double expected_attempts() const noexcept;

  /// Sample the number of attempts until the guess lands (>= 1).
  [[nodiscard]] std::uint64_t sample_attempts(stats::Rng& rng) const noexcept;

 private:
  int bits_;
};

}  // namespace divsec::divers
