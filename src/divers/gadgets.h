// gadgets.h — ROP-gadget extraction and cross-variant survival.
//
// A gadget is a short instruction suffix ending at a block return: the
// location + byte content an exploit payload would chain. Addresses are
// function-relative, i.e. (block index, byte offset within the block) —
// the granularity real incremental builds preserve: a service pack that
// does not touch a function leaves its gadgets usable, while multi-
// compiler transforms (substitution, renaming, NOP insertion, block
// reordering) invalidate content, offsets, or block positions. Survival
// from variant A to variant B is the fraction of A's gadgets an exploit
// hardcoded against A can still use on B unchanged — the canonical
// diversity-effectiveness metric (Larsen et al., SoK 2014).
#pragma once

#include <cstdint>
#include <vector>

#include "divers/ir.h"

namespace divsec::divers {

struct Gadget {
  std::size_t block = 0;    // basic-block index (layout slot)
  std::size_t offset = 0;   // byte offset of the first instruction in-block
  std::vector<std::uint8_t> bytes;  // encoded instructions + return
  bool operator==(const Gadget&) const = default;
};

struct GadgetOptions {
  /// Maximum gadget length in instructions (excluding the return).
  std::size_t max_instructions = 4;
};

/// Encode one basic block exactly as encode() lays it out.
[[nodiscard]] std::vector<std::uint8_t> encode_block(const BasicBlock& b);

/// All gadgets of a program: for every return terminator, the suffixes of
/// up to max_instructions body instructions that end at it.
[[nodiscard]] std::vector<Gadget> extract_gadgets(const Program& p,
                                                  const GadgetOptions& opts = {});

/// Fraction of `reference` gadgets usable unchanged on `target` (same
/// block slot, same in-block offset, same bytes). 1.0 means an exploit
/// ports unmodified; 0.0 means every hardcoded gadget broke. Returns 1.0
/// when the reference has no gadgets (nothing to break).
[[nodiscard]] double gadget_survival(const Program& reference, const Program& target,
                                     const GadgetOptions& opts = {});

/// Survival computed over a population: mean pairwise survival from the
/// reference binary to each variant (the multicompiler evaluation metric).
[[nodiscard]] double mean_population_survival(const Program& reference,
                                              const std::vector<Program>& variants,
                                              const GadgetOptions& opts = {});

}  // namespace divsec::divers
