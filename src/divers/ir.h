// ir.h — a small register-machine IR standing in for component firmware.
//
// The diversity literature (multicompilers, binary randomization) is about
// real binaries; we reproduce the *mechanism* on a toy ISA so that
// diversification is a real code-level operation in this library rather
// than a hand-set probability: transforms rewrite programs
// (transforms.h), gadget analysis measures what an exploit developed
// against variant A can still reuse on variant B (gadgets.h), and the
// variant catalog turns that into attack-stage success probabilities
// (variants.h).
//
// The machine: 8 general registers (zero-initialized), a flat word memory
// used for program input/output, basic blocks with explicit terminators
// (jump / conditional branch / return). Programs always terminate under
// the interpreter's step budget; the generator only emits forward
// branches so well-formed generated programs terminate naturally.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "stats/rng.h"

namespace divsec::divers {

inline constexpr std::size_t kRegisterCount = 8;
inline constexpr std::size_t kMemoryWords = 64;

enum class Opcode : std::uint8_t {
  kNop = 0,
  kMovReg,   // dst = src1
  kMovImm,   // dst = imm
  kAdd,      // dst = src1 + src2
  kSub,      // dst = src1 - src2
  kMul,      // dst = src1 * src2
  kXor,      // dst = src1 ^ src2
  kAnd,      // dst = src1 & src2
  kOr,       // dst = src1 | src2
  kShl,      // dst = src1 << (src2 & 63)
  kShr,      // dst = src1 >> (src2 & 63)
  kLoad,     // dst = mem[src1 % kMemoryWords]
  kStore,    // mem[src1 % kMemoryWords] = src2
  kCmpLt,    // dst = (src1 < src2) ? 1 : 0   (signed)
};

[[nodiscard]] const char* to_string(Opcode op) noexcept;

struct Instruction {
  Opcode op = Opcode::kNop;
  std::uint8_t dst = 0;
  std::uint8_t src1 = 0;
  std::uint8_t src2 = 0;
  std::int32_t imm = 0;  // kMovImm only
};

enum class TerminatorKind : std::uint8_t {
  kJump,    // goto target
  kBranch,  // if reg != 0 goto target else goto fallthrough
  kReturn,
};

struct Terminator {
  TerminatorKind kind = TerminatorKind::kReturn;
  std::uint8_t reg = 0;          // kBranch condition register
  std::size_t target = 0;        // kJump / kBranch taken target (block index)
  std::size_t fallthrough = 0;   // kBranch not-taken target
};

struct BasicBlock {
  std::vector<Instruction> body;
  Terminator term;
};

/// A program is a list of basic blocks; execution starts at block 0.
struct Program {
  std::vector<BasicBlock> blocks;

  [[nodiscard]] std::size_t instruction_count() const noexcept;
  /// Structural checks: terminator targets in range, register ids valid.
  void validate() const;
};

/// Fixed 4-byte instruction encoding (opcode, dst, src1, src2) /
/// (opcode, dst, imm16); terminators encode too. The byte image is the
/// "binary" that gadget analysis scans, and byte offsets are the
/// addresses an exploit would hardcode.
[[nodiscard]] std::vector<std::uint8_t> encode(const Program& p);

struct ExecutionResult {
  std::vector<std::int64_t> memory;  // final memory image
  std::size_t steps = 0;
  bool hit_step_limit = false;
};

/// Run the program on the given input memory image (padded/truncated to
/// kMemoryWords). Registers start at zero.
[[nodiscard]] ExecutionResult execute(const Program& p,
                                      const std::vector<std::int64_t>& input,
                                      std::size_t max_steps = 100000);

struct GeneratorOptions {
  std::size_t blocks = 12;
  std::size_t instructions_per_block = 10;
  /// Probability a block ends in a conditional branch (vs jump).
  double branch_probability = 0.4;
  /// Probability a non-final block ends in a return (function epilogues;
  /// these are what gadget extraction anchors on). The final block always
  /// returns.
  double return_probability = 0.2;
};

/// Deterministically generate a random (terminating) program: branches
/// only go forward and the final block returns.
[[nodiscard]] Program generate_program(stats::Rng& rng, const GeneratorOptions& opts = {});

/// Human-readable disassembly (one instruction per line, block labels as
/// "bbN:"); used in debugging and variant diffing.
[[nodiscard]] std::string disassemble(const Program& p);

}  // namespace divsec::divers
