#include "dist/sweep.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "attack/threat.h"
#include "core/report.h"
#include "scenario/presets.h"
#include "sim/executor.h"
#include "stats/rng.h"
#include "util/json.h"

namespace divsec::dist {

namespace {

/// Wall-clock milliseconds of one call.
template <typename F>
double timed_ms(const F& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}


std::vector<core::IndicatorSummary> summarize_cells(
    const SweepMeta& meta, const std::vector<core::IndicatorAccumulator>& acc) {
  // Mirrors the engine's reassembly exactly so merged summaries are
  // field-for-field identical to the in-process path (run_cells for
  // fixed budgets, measure_scenarios_adaptive for recorded counts — the
  // achieved list feeds replications-derived columns like success_prob).
  std::vector<core::IndicatorSummary> out(acc.size());
  for (std::size_t c = 0; c < acc.size(); ++c) {
    out[c] = acc[c].summarize();
    out[c].replications = meta.achieved.empty()
                              ? meta.replications
                              : static_cast<std::size_t>(meta.achieved[c]);
    out[c].horizon_hours = meta.horizon_hours;
  }
  return out;
}

}  // namespace

sim::ShardPlan sweep_shard_plan(const SweepMeta& meta) {
  return sim::ShardPlan::make(meta.cells, meta.replications,
                              meta.replication_block, meta.superblock);
}

std::vector<std::uint64_t> achieved_tasks(const SweepMeta& meta) {
  const sim::ShardPlan plan = sweep_shard_plan(meta);
  const std::size_t per_group = plan.superblocks_per_group();
  std::vector<std::uint64_t> tasks;
  if (meta.achieved.empty()) {
    tasks.resize(plan.task_count());
    for (std::size_t t = 0; t < tasks.size(); ++t) tasks[t] = t;
    return tasks;
  }
  if (meta.achieved.size() != meta.cells)
    throw std::invalid_argument(
        "achieved_tasks: achieved-count list must have one entry per cell");
  for (std::size_t c = 0; c < meta.cells; ++c) {
    const std::uint64_t needed =
        (meta.achieved[c] + meta.superblock - 1) / meta.superblock;
    for (std::uint64_t s = 0; s < needed; ++s)
      tasks.push_back(c * per_group + s);
  }
  return tasks;
}

SweepMeta make_meta(const SweepSpec& spec) {
  if (spec.policies.empty())
    throw std::invalid_argument("sweep: need at least one policy arm");
  // Canonicalize the preset and threat spellings before they enter the
  // meta block: the fingerprint hashes these strings, so "brownfield"
  // and its expanded familyv1 form must land on identical bytes.
  std::string preset;
  try {
    preset = scenario::resolve_preset_name(spec.preset);
  } catch (const std::out_of_range& e) {
    throw std::invalid_argument("sweep: " + std::string(e.what()));
  }
  SweepMeta meta;
  meta.preset = std::move(preset);
  meta.policies = spec.policies;
  meta.threat = attack::canonical_threat_spec(spec.threat);
  meta.seed = spec.seed;
  meta.replications = spec.replications;
  const sim::ShardPlan plan =
      sim::ShardPlan::make(spec.policies.size(), spec.replications,
                           spec.replication_block, spec.superblock);
  meta.replication_block = plan.block();
  meta.superblock = plan.superblock();
  meta.survival_bins = spec.survival_bins;
  meta.horizon_hours = spec.horizon_hours > 0.0
                           ? spec.horizon_hours
                           : attack::CampaignOptions{}.t_max_hours;
  meta.cells = spec.policies.size();
  if (!spec.achieved.empty()) {
    if (spec.achieved.size() != spec.policies.size())
      throw std::invalid_argument(
          "sweep: achieved-count list must have one entry per cell");
    for (const std::uint64_t a : spec.achieved)
      if (a == 0 || a > spec.replications)
        throw std::invalid_argument(
            "sweep: achieved replications outside (0, budget]");
    meta.achieved = spec.achieved;
  }
  meta.threads = static_cast<std::uint32_t>(sim::Executor::default_thread_count());
  return meta;
}

SweepSpec spec_from_meta(const SweepMeta& meta) {
  SweepSpec spec;
  spec.preset = meta.preset;
  spec.policies = meta.policies;
  spec.threat = meta.threat;
  spec.seed = meta.seed;
  spec.replications = meta.replications;
  spec.replication_block = meta.replication_block;
  spec.superblock = meta.superblock;
  spec.survival_bins = meta.survival_bins;
  spec.horizon_hours = meta.horizon_hours;
  spec.achieved = meta.achieved;
  return spec;
}

attack::ThreatProfile threat_profile(const std::string& name) {
  return attack::threat_profile_from_spec(name);
}

core::ScenarioSweepPlan expand_plan(const SweepSpec& spec,
                                    const divers::VariantCatalog& catalog) {
  core::ScenarioSweepPlan plan;
  std::uint64_t sm = spec.seed;  // iterated SplitMix64 seed chain
  for (const auto policy : spec.policies) {
    core::ScenarioCell cell;
    cell.scenario =
        scenario::make_preset(spec.preset, catalog, spec.seed, policy).scenario;
    cell.seed = stats::splitmix64(sm);
    plan.cells.push_back(std::move(cell));
  }
  return plan;
}

std::vector<std::string> cell_names(const SweepSpec& spec) {
  std::vector<std::string> names;
  names.reserve(spec.policies.size());
  for (const auto policy : spec.policies)
    names.emplace_back(scenario::to_string(policy));
  return names;
}

core::MeasurementOptions sweep_options(const SweepSpec& spec,
                                       const sim::Executor* executor) {
  core::MeasurementOptions mo;
  mo.engine = core::Engine::kCampaign;
  mo.replications = spec.replications;
  mo.seed = spec.seed;
  mo.keep_samples = false;  // the streaming path, always
  mo.replication_block = spec.replication_block;
  mo.superblock = spec.superblock;
  mo.survival_bins = spec.survival_bins;
  if (spec.horizon_hours > 0.0) mo.campaign.t_max_hours = spec.horizon_hours;
  mo.executor = executor;
  return mo;
}

ShardState run_shard(const SweepSpec& spec, std::size_t shard,
                     std::size_t shard_count, const sim::Executor* executor) {
  const sim::ShardPlan plan = sweep_shard_plan(make_meta(spec));
  const auto [lo, hi] = plan.shard_range(shard, shard_count);
  std::vector<std::uint64_t> tasks(hi - lo);
  for (std::size_t t = 0; t < tasks.size(); ++t) tasks[t] = lo + t;
  return run_shard_tasks(spec, std::move(tasks), shard, shard_count, executor);
}

ShardState run_shard_tasks(const SweepSpec& spec,
                           std::vector<std::uint64_t> tasks, std::size_t shard,
                           std::size_t shard_count,
                           const sim::Executor* executor) {
  ShardState state;
  state.meta = make_meta(spec);
  state.meta.shard = shard;
  state.meta.shard_count = shard_count;
  if (executor)
    state.meta.threads = static_cast<std::uint32_t>(executor->thread_count());

  const sim::ShardPlan plan = sweep_shard_plan(state.meta);
  state.tasks = std::move(tasks);

  state.meta.wall_ms = timed_ms([&] {
    const divers::VariantCatalog catalog =
        divers::VariantCatalog::standard(spec.seed);
    const attack::ThreatProfile profile = threat_profile(spec.threat);
    const core::MeasurementOptions options = sweep_options(spec, executor);
    const core::MeasurementEngine engine(catalog, profile, options);
    const core::ScenarioSweepPlan sweep = expand_plan(spec, catalog);
    std::vector<double> task_seconds;
    const std::vector<core::IndicatorAccumulator> partials =
        engine.measure_scenario_tasks(sweep, plan, state.tasks, &task_seconds);
    state.partials.reserve(partials.size());
    for (const auto& p : partials) state.partials.push_back(p.state());
    // Fold the per-task timings into the per-cell cost model this state
    // ships: the measurement feed of `divsec_sweep plan --weights`.
    state.cost.cells.assign(state.meta.cells, CellCost{});
    for (std::size_t t = 0; t < state.tasks.size(); ++t) {
      const sim::ShardPlan::Task task = plan.task(state.tasks[t]);
      CellCost& cell = state.cost.cells[task.group];
      cell.replications += task.end - task.begin;
      cell.seconds += task_seconds[t];
    }
  });
  return state;
}

std::vector<core::IndicatorSummary> run_in_process(
    const SweepSpec& spec, const sim::Executor* executor) {
  const divers::VariantCatalog catalog =
      divers::VariantCatalog::standard(spec.seed);
  const attack::ThreatProfile profile = threat_profile(spec.threat);
  const core::MeasurementOptions options = sweep_options(spec, executor);
  const core::MeasurementEngine engine(catalog, profile, options);
  return engine.measure_scenarios(expand_plan(spec, catalog));
}

MergeResult merge_shards(const std::vector<ShardState>& states) {
  if (states.empty())
    throw std::invalid_argument("merge_shards: no shard states");
  const std::uint64_t fingerprint = sweep_fingerprint(states.front().meta);
  for (const auto& s : states) {
    if (s.meta.merged)
      throw std::invalid_argument(
          "merge_shards: input is already a merged state");
    if (sweep_fingerprint(s.meta) != fingerprint)
      throw std::invalid_argument(
          "merge_shards: shard states come from different sweeps "
          "(fingerprint mismatch)");
  }

  const SweepMeta& meta = states.front().meta;
  const sim::ShardPlan plan = sweep_shard_plan(meta);
  const std::size_t tasks = plan.task_count();

  // Exact coverage of the sweep's task set: every task of the full plan
  // for fixed budgets, each cell's achieved prefix for adaptive sweeps —
  // exactly once, none foreign. Task lists need not be contiguous
  // (cost-weighted plans are not); only the union matters.
  const std::vector<std::uint64_t> expect = achieved_tasks(meta);
  std::vector<char> expected(tasks, 0);
  for (const std::uint64_t t : expect) expected[t] = 1;
  std::vector<const core::IndicatorAccumulator::State*> slots(tasks, nullptr);
  for (const auto& s : states) {
    if (s.partials.size() != s.tasks.size())
      throw std::invalid_argument(
          "merge_shards: partial count != task list size");
    for (std::size_t i = 0; i < s.tasks.size(); ++i) {
      const std::uint64_t t = s.tasks[i];
      if (t >= tasks || !expected[t])
        throw std::invalid_argument(
            "merge_shards: task " + std::to_string(t) +
            " outside the sweep's task set");
      if (slots[t])
        throw std::invalid_argument(
            "merge_shards: task " + std::to_string(t) +
            " appears in more than one shard state");
      slots[t] = &s.partials[i];
    }
  }
  for (const std::uint64_t t : expect)
    if (!slots[t])
      throw std::invalid_argument("merge_shards: task " + std::to_string(t) +
                                  " is missing (incomplete shard set)");

  // Restore and fold each cell's covered prefix in ascending (cell,
  // superblock) order — the same left-fold the in-process reducer
  // performs (sim::reduce_task_partials: the first partial becomes the
  // accumulator, later ones merge into it).
  const std::size_t per_group = plan.superblocks_per_group();
  MergeResult out;
  out.accumulators.reserve(meta.cells);
  for (std::size_t c = 0; c < meta.cells; ++c) {
    const std::size_t needed =
        meta.achieved.empty()
            ? per_group
            : static_cast<std::size_t>((meta.achieved[c] + meta.superblock - 1) /
                                       meta.superblock);
    core::IndicatorAccumulator acc =
        core::IndicatorAccumulator::from_state(*slots[c * per_group]);
    for (std::size_t s = 1; s < needed; ++s)
      acc.merge(core::IndicatorAccumulator::from_state(*slots[c * per_group + s]));
    out.accumulators.push_back(std::move(acc));
  }
  out.summaries = summarize_cells(meta, out.accumulators);
  out.meta = meta;
  out.meta.shard = 0;
  out.meta.shard_count = states.size();  // provenance: shards reduced
  out.meta.merged = true;
  for (const auto& s : states) out.cost.merge(s.cost);
  return out;
}

ShardState merged_state(const MergeResult& merged) {
  ShardState state;
  state.meta = merged.meta;
  state.meta.merged = true;
  state.tasks.resize(merged.accumulators.size());
  for (std::size_t c = 0; c < state.tasks.size(); ++c) state.tasks[c] = c;
  state.partials.reserve(merged.accumulators.size());
  for (const auto& a : merged.accumulators) state.partials.push_back(a.state());
  state.cost = merged.cost;
  return state;
}

std::vector<core::IndicatorSummary> summaries_from_merged(
    const ShardState& merged) {
  if (!merged.meta.merged)
    throw std::invalid_argument(
        "summaries_from_merged: state file is an unmerged shard (run "
        "divsec_sweep merge first)");
  if (merged.partials.size() != merged.meta.cells)
    throw std::invalid_argument(
        "summaries_from_merged: cell count mismatch in merged state");
  std::vector<core::IndicatorAccumulator> acc;
  acc.reserve(merged.partials.size());
  for (const auto& p : merged.partials)
    acc.push_back(core::IndicatorAccumulator::from_state(p));
  return summarize_cells(merged.meta, acc);
}

std::string sweep_csv(const SweepMeta& meta,
                      const std::vector<core::IndicatorSummary>& cells) {
  core::MeasurementTable table;
  stats::Factor factor;
  factor.name = "policy";
  for (const auto policy : meta.policies)
    factor.levels.emplace_back(scenario::to_string(policy));
  table.space = stats::FactorSpace({std::move(factor)});
  table.configurations.resize(cells.size());
  table.summaries = cells;
  return core::measurement_csv(table);
}

std::string summary_json(const SweepMeta& meta,
                         const std::vector<core::IndicatorSummary>& cells) {
  using util::json_number_exact;
  using util::json_string;
  std::string out = "{\"sweep\": " + meta_json(meta) + ", \"cells\": [\n";
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const core::IndicatorSummary& s = cells[c];
    const auto median = [&](const std::optional<double>& m) {
      return m ? json_number_exact(*m) : std::string("null");
    };
    const std::string name =
        c < meta.policies.size()
            ? std::string(scenario::to_string(meta.policies[c]))
            : "cell" + std::to_string(c);
    out += "  {\"cell\": " + json_string(name) +
           ", \"replications\": " + std::to_string(s.replications) +
           ", \"success_prob\": " +
           json_number_exact(s.attack_success_probability()) +
           ", \"tta_mean\": " + json_number_exact(s.tta.mean()) +
           ", \"tta_censored\": " + std::to_string(s.tta_censored) +
           ", \"tta_rmean\": " + json_number_exact(s.tta_event.restricted_mean) +
           ", \"tta_median\": " + median(s.tta_event.median) +
           ", \"ttsf_mean\": " + json_number_exact(s.ttsf.mean()) +
           ", \"ttsf_censored\": " + std::to_string(s.ttsf_censored) +
           ", \"ttsf_rmean\": " +
           json_number_exact(s.ttsf_event.restricted_mean) +
           ", \"ttsf_median\": " + median(s.ttsf_event.median) +
           ", \"final_ratio_mean\": " + json_number_exact(s.final_ratio.mean()) +
           "}";
    out += c + 1 < cells.size() ? ",\n" : "\n";
  }
  out += "]}\n";
  return out;
}

}  // namespace divsec::dist
