// sweep.h — distributed scenario sweeps: plan-by-name expansion, shard
// execution, and the exact cross-process reducer.
//
// A sweep is named, not shipped: a SweepSpec carries only (preset,
// policies, threat, seed, replication/aggregation parameters), and every
// shard process re-expands the identical ScenarioSweepPlan from the
// scenario registry — deterministic in the spec, so N processes agree on
// every cell and every RNG stream without exchanging topology bytes.
// Each shard computes the superblock-task partials its index owns under
// the ShardPlan (sim/shard_plan.h) and serializes them (state_codec.h);
// merge_shards validates identity fingerprints and exact task coverage,
// then folds partials in ascending (cell, superblock) order — the same
// sequence the in-process engine uses, so merged summaries are
// bit-identical to run_in_process() on the same spec. K = 1 is not a
// special case, and shards may even come from runs with different K as
// long as they cover every task exactly once.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/measurement.h"
#include "dist/cost_model.h"
#include "dist/state_codec.h"
#include "divers/variants.h"
#include "sim/shard_plan.h"

namespace divsec::dist {

/// What the operator chooses; everything else is derived. Defaults give
/// the three-arm policy sweep (monoculture control vs zone-stratified vs
/// random-per-node) the fleet experiments use.
struct SweepSpec {
  /// A scenario registry name: a fixed preset, enterprise{N}, or any
  /// family spec FamilySpec::parse accepts ("brownfield:nodes=512").
  /// make_meta canonicalizes the spelling before it enters the
  /// fingerprint.
  std::string preset = "enterprise256";
  std::vector<scenario::VariantPolicy> policies = {
      scenario::VariantPolicy::kMonoculture,
      scenario::VariantPolicy::kZoneStratified,
      scenario::VariantPolicy::kRandomPerNode,
  };
  /// A threat spec: a base profile name or a tuned
  /// "stuxnet:scan=2,channels=usb+http" form (attack::ThreatTuning).
  /// make_meta canonicalizes it (default parameters drop out).
  std::string threat = "stuxnet";
  std::uint64_t seed = 2013;
  std::size_t replications = 1000;
  std::size_t replication_block = 0;  // 0 = sim::kDefaultReductionBlock
  std::size_t superblock = 0;         // 0 = sim::kDefaultSuperblockReps
  std::size_t survival_bins = 64;
  double horizon_hours = 0.0;  // 0 = attack::CampaignOptions default
  /// Per-cell achieved replication counts recorded by an adaptive run
  /// (SweepMeta::achieved): empty for fixed-budget sweeps. A non-empty
  /// list restricts the sweep's task space to each cell's prefix — the
  /// replay contract. Specs round-trip through make_meta/spec_from_meta.
  std::vector<std::uint64_t> achieved;
};

/// Resolve a spec into the authoritative meta block (defaults filled in,
/// cells = policies.size()). Throws std::invalid_argument for empty
/// policy lists, unknown threats, unknown presets, or misaligned
/// block/superblock sizes.
[[nodiscard]] SweepMeta make_meta(const SweepSpec& spec);

/// Inverse of make_meta (resolved values stay explicit).
[[nodiscard]] SweepSpec spec_from_meta(const SweepMeta& meta);

/// Threat spec expansion: a base name ("stuxnet", "duqu", "flame") or a
/// tuned "base:k=v,..." spec (attack::threat_profile_from_spec);
/// std::invalid_argument otherwise.
[[nodiscard]] attack::ThreatProfile threat_profile(const std::string& name);

/// Deterministic plan re-expansion: cell c is make_preset(spec.preset,
/// catalog, spec.seed, spec.policies[c]) with a seed block derived from
/// spec.seed by iterated SplitMix64 — the (c+1)-th output. The catalog
/// must itself be VariantCatalog::standard(spec.seed) for two processes
/// to agree; sharded entry points construct it that way internally.
[[nodiscard]] core::ScenarioSweepPlan expand_plan(
    const SweepSpec& spec, const divers::VariantCatalog& catalog);

/// One human-readable name per sweep cell (the policy names).
[[nodiscard]] std::vector<std::string> cell_names(const SweepSpec& spec);

/// The measurement options a spec induces (streaming path: keep_samples
/// off). Executor null = sim::Executor::shared().
[[nodiscard]] core::MeasurementOptions sweep_options(
    const SweepSpec& spec, const sim::Executor* executor = nullptr);

/// The superblock task plan a spec induces (what task ids in plan files
/// and shard states index into).
[[nodiscard]] sim::ShardPlan sweep_shard_plan(const SweepMeta& meta);

/// The superblock tasks the meta's recorded per-cell achieved counts
/// cover, in ascending order: cell c's first ceil(achieved[c] /
/// superblock) tasks. Fixed-budget metas (empty achieved) cover every
/// task of the plan. This is the exact-coverage set merge_shards
/// validates against and the task list an adaptive replay runs.
[[nodiscard]] std::vector<std::uint64_t> achieved_tasks(const SweepMeta& meta);

/// Compute shard `shard` of `shard_count` under the contiguous balanced
/// split: re-expand the plan, run the owned superblock tasks, and return
/// the serialized-ready state (meta provenance filled in, wall_ms and
/// the per-cell cost model measured). The accumulator payload is a pure
/// function of (spec, shard, shard_count) — thread count and host change
/// only the wall/cost provenance, never the partial bytes.
[[nodiscard]] ShardState run_shard(const SweepSpec& spec, std::size_t shard,
                                   std::size_t shard_count,
                                   const sim::Executor* executor = nullptr);

/// Elastic variant: run an explicit (strictly ascending) task list —
/// one shard's slice of a cost-weighted plan. shard/shard_count are
/// provenance only; the payload depends on (spec, tasks) alone. The
/// merge accepts any mix of shard states whose lists cover the task
/// space exactly once.
[[nodiscard]] ShardState run_shard_tasks(const SweepSpec& spec,
                                         std::vector<std::uint64_t> tasks,
                                         std::size_t shard,
                                         std::size_t shard_count,
                                         const sim::Executor* executor = nullptr);

/// The single-process reference: the engine's own streaming path end to
/// end (measure_scenarios). merge_shards output must match this bit for
/// bit — the distributed-correctness contract.
[[nodiscard]] std::vector<core::IndicatorSummary> run_in_process(
    const SweepSpec& spec, const sim::Executor* executor = nullptr);

/// The exact reducer's output: per-cell merged accumulators plus the
/// summaries they yield.
struct MergeResult {
  SweepMeta meta;  // merged = true
  std::vector<core::IndicatorAccumulator> accumulators;  // one per cell
  std::vector<core::IndicatorSummary> summaries;         // one per cell
  CostModel cost;  // fleet-wide per-cell cost (shard models merged)
};

/// Merge shard states into per-cell results. Validates that every state
/// shares one sweep fingerprint, none is already merged, and the task
/// lists cover the sweep's task set — [0, task_count) for fixed budgets,
/// achieved_tasks(meta) for adaptive sweeps — exactly once; throws
/// std::invalid_argument otherwise. Partials fold in ascending (cell,
/// superblock) order — bit-identical to run_in_process (fixed) or to the
/// adaptive driver that recorded the counts, no matter how the covering
/// lists were cut (contiguous ranges, cost-weighted LPT sets, or any
/// mix). Shard cost models merge into the result, so the merged state is
/// itself a weights source for the next `divsec_sweep plan`.
[[nodiscard]] MergeResult merge_shards(const std::vector<ShardState>& states);

/// The merged result as a writable state file (meta.merged = true, one
/// "task" per cell) — what divsec_report consumes downstream.
[[nodiscard]] ShardState merged_state(const MergeResult& merged);

/// Per-cell summaries of a merged state file (meta.merged required;
/// std::invalid_argument otherwise).
[[nodiscard]] std::vector<core::IndicatorSummary> summaries_from_merged(
    const ShardState& merged);

/// The sweep's measurement CSV: the policy arm as the single swept
/// factor, rendered through core::measurement_csv so columns match every
/// other measurement artifact in the project.
[[nodiscard]] std::string sweep_csv(
    const SweepMeta& meta, const std::vector<core::IndicatorSummary>& cells);

/// Machine-readable merged summary (exact doubles).
[[nodiscard]] std::string summary_json(
    const SweepMeta& meta, const std::vector<core::IndicatorSummary>& cells);

}  // namespace divsec::dist
