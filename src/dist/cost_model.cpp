#include "dist/cost_model.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <numeric>
#include <queue>
#include <sstream>
#include <stdexcept>

#include "dist/fnv.h"
#include "dist/state_codec.h"

namespace divsec::dist {

void CostModel::merge(const CostModel& other) {
  if (other.cells.empty()) return;
  if (cells.empty()) {
    cells = other.cells;
    return;
  }
  if (cells.size() != other.cells.size())
    throw std::invalid_argument(
        "CostModel::merge: cell counts disagree (models from different "
        "sweeps?)");
  for (std::size_t c = 0; c < cells.size(); ++c) {
    cells[c].replications += other.cells[c].replications;
    cells[c].seconds += other.cells[c].seconds;
  }
}

double CostModel::sec_per_rep(std::size_t cell) const {
  if (cell < cells.size() && cells[cell].replications > 0 &&
      cells[cell].seconds > 0.0)
    return cells[cell].seconds / static_cast<double>(cells[cell].replications);
  std::uint64_t reps = 0;
  double seconds = 0.0;
  for (const auto& c : cells) {
    if (c.replications == 0 || !(c.seconds > 0.0)) continue;
    reps += c.replications;
    seconds += c.seconds;
  }
  return reps > 0 ? seconds / static_cast<double>(reps) : 1.0;
}

std::uint64_t cost_fingerprint(const SweepMeta& meta) {
  std::uint64_t h = kFnvOffsetBasis;
  fnv1a_mix(h, meta.preset);
  fnv1a_mix(h, meta.threat);
  fnv1a_mix(h, static_cast<std::uint64_t>(meta.policies.size()));
  for (const auto p : meta.policies)
    fnv1a_mix(h, static_cast<std::uint64_t>(p));
  fnv1a_mix(h, meta.seed);
  fnv1a_mix(h, std::bit_cast<std::uint64_t>(meta.horizon_hours));
  fnv1a_mix(h, meta.cells);
  return h;
}

std::vector<std::vector<std::uint64_t>> cost_weighted_assignment(
    const sim::ShardPlan& plan, const CostModel& cost, std::size_t shards) {
  std::vector<std::uint64_t> all(plan.task_count());
  std::iota(all.begin(), all.end(), std::uint64_t{0});
  return cost_weighted_assignment(plan, cost, shards, all);
}

std::vector<std::vector<std::uint64_t>> cost_weighted_assignment(
    const sim::ShardPlan& plan, const CostModel& cost, std::size_t shards,
    const std::vector<std::uint64_t>& tasks) {
  if (shards == 0)
    throw std::invalid_argument("cost_weighted_assignment: need >= 1 shard");
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (tasks[i] >= plan.task_count())
      throw std::out_of_range("cost_weighted_assignment: task outside plan");
    if (i > 0 && tasks[i] <= tasks[i - 1])
      throw std::invalid_argument(
          "cost_weighted_assignment: task list must be strictly ascending");
  }
  std::vector<double> estimate(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const sim::ShardPlan::Task task = plan.task(tasks[i]);
    estimate[i] = cost.sec_per_rep(task.group) *
                  static_cast<double>(task.end - task.begin);
  }

  // LPT: place tasks in descending estimated cost (ties by ascending id
  // for determinism) onto the least-loaded shard so far.
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (estimate[a] != estimate[b]) return estimate[a] > estimate[b];
    return tasks[a] < tasks[b];
  });

  using Load = std::pair<double, std::size_t>;  // (seconds, shard)
  std::priority_queue<Load, std::vector<Load>, std::greater<Load>> heap;
  for (std::size_t s = 0; s < shards; ++s) heap.push({0.0, s});

  std::vector<std::vector<std::uint64_t>> out(shards);
  for (const std::size_t i : order) {
    auto [load, shard] = heap.top();
    heap.pop();
    out[shard].push_back(tasks[i]);
    heap.push({load + estimate[i], shard});
  }
  for (auto& list : out) std::sort(list.begin(), list.end());
  return out;
}

std::vector<double> assignment_cost(
    const sim::ShardPlan& plan, const CostModel& cost,
    const std::vector<std::vector<std::uint64_t>>& assignment) {
  std::vector<double> out(assignment.size(), 0.0);
  for (std::size_t s = 0; s < assignment.size(); ++s)
    for (const std::uint64_t t : assignment[s]) {
      const sim::ShardPlan::Task task = plan.task(t);
      out[s] += cost.sec_per_rep(task.group) *
                static_cast<double>(task.end - task.begin);
    }
  return out;
}

std::string fingerprint_hex(std::uint64_t fingerprint) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

void require_fingerprint(std::uint64_t expected, std::uint64_t actual,
                         const std::string& what) {
  if (expected == actual) return;
  throw std::invalid_argument(
      what + " references a different sweep (fingerprint " +
      fingerprint_hex(actual) + ", this sweep is " + fingerprint_hex(expected) +
      "): the preset/policies/threat/seed/horizon flags must match the run "
      "that produced it");
}

std::string encode_task_plan(const TaskPlan& plan) {
  std::string out = "divsec-tasks v1\n";
  out += "fingerprint " + fingerprint_hex(plan.fingerprint) + "\n";
  out += "shards " + std::to_string(plan.shards.size()) + "\n";
  out += "tasks " + std::to_string(plan.task_count()) + "\n";
  for (std::size_t s = 0; s < plan.shards.size(); ++s) {
    out += "shard " + std::to_string(s) + " " +
           std::to_string(plan.shards[s].size());
    for (const std::uint64_t t : plan.shards[s])
      out += " " + std::to_string(t);
    out += "\n";
  }
  return out;
}

TaskPlan decode_task_plan(std::string_view text) {
  std::istringstream in{std::string(text)};
  const auto fail = [](const std::string& why) -> void {
    throw std::runtime_error("task plan: " + why);
  };

  std::string line;
  if (!std::getline(in, line) || line != "divsec-tasks v1")
    fail("not a divsec task-plan file (missing 'divsec-tasks v1' header)");

  TaskPlan plan;
  std::string word, hex;
  if (!(in >> word >> hex) || word != "fingerprint" || hex.size() != 16)
    fail("malformed fingerprint line");
  std::size_t used = 0;
  try {
    plan.fingerprint = std::stoull(hex, &used, 16);
  } catch (const std::exception&) {
    fail("malformed fingerprint value");
  }
  if (used != hex.size()) fail("malformed fingerprint value");

  std::uint64_t shards = 0, tasks = 0;
  if (!(in >> word >> shards) || word != "shards" || shards == 0)
    fail("malformed shard count");
  // Plausibility bounds before any allocation: every shard contributes a
  // "shard i n" line (>= 8 bytes) and every assigned task >= 2 bytes of
  // text, so counts the file cannot possibly hold are corruption — fail
  // cleanly instead of letting a forged count drive resize()/reserve()
  // into bad_alloc.
  if (shards > text.size() / 8)
    fail("shard count exceeds the file size");
  if (!(in >> word >> tasks) || word != "tasks")
    fail("malformed task count");
  if (tasks > text.size())
    fail("task count exceeds the file size");

  std::vector<bool> seen(tasks, false);
  plan.shards.resize(shards);
  for (std::uint64_t s = 0; s < shards; ++s) {
    std::uint64_t index = 0, count = 0;
    if (!(in >> word >> index >> count) || word != "shard" || index != s)
      fail("malformed shard line " + std::to_string(s));
    if (count > tasks)
      fail("shard " + std::to_string(s) + " claims more tasks than the sweep");
    auto& list = plan.shards[s];
    list.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      std::uint64_t t = 0;
      if (!(in >> t)) fail("truncated task list of shard " + std::to_string(s));
      if (t >= tasks) fail("task " + std::to_string(t) + " outside the sweep");
      if (!list.empty() && t <= list.back())
        fail("task list of shard " + std::to_string(s) +
             " is not strictly ascending");
      if (seen[t])
        fail("task " + std::to_string(t) + " assigned to more than one shard");
      seen[t] = true;
      list.push_back(t);
    }
  }
  for (std::uint64_t t = 0; t < tasks; ++t)
    if (!seen[t])
      fail("task " + std::to_string(t) + " is not assigned to any shard");
  if (in >> word) fail("trailing content after the last shard line");
  return plan;
}

void write_task_plan(const std::string& path, const TaskPlan& plan) {
  const std::string text = encode_task_plan(plan);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int close_result = std::fclose(f);
  if (written != text.size() || close_result != 0)
    throw std::runtime_error("short write: " + path);
}

TaskPlan read_task_plan(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw std::runtime_error("cannot open: " + path);
  std::string text;
  char buf[1 << 14];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) throw std::runtime_error("read error: " + path);
  return decode_task_plan(text);
}

}  // namespace divsec::dist
