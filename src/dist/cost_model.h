// cost_model.h — measured per-cell cost and cost-weighted shard plans.
//
// Contiguous balanced task ranges (ShardPlan::shard_range) assume every
// superblock task costs the same. It does not: a monoculture arm lets
// the worm actually spread, so its replications simulate ~5x slower than
// a diversified arm's, and the fleet idles on whichever shard drew the
// expensive cells. The cost model closes that loop:
//
//  * while a shard runs, the engine measures each task's fold wall time
//    (sim::queued_reduce_groups group_seconds) and the shard aggregates
//    it per cell — (replications folded, seconds spent) — into the
//    CostModel embedded in its serialized state (dist/state_codec.h);
//  * `divsec_sweep plan --weights <prior-run>.state` merges those
//    measurements and assigns tasks to K shards by LPT (longest
//    processing time first) over the estimated task costs;
//  * `divsec_sweep run --tasks <plan> --shard i` executes shard i's
//    explicit task list. The exact reducer already accepts any
//    exact-coverage mix of task lists, so merged results stay
//    bit-identical to the in-process run no matter how tasks were dealt.
//
// Cost transfers across replication counts: seconds/rep of a cell does
// not depend on how many replications are run, on the block size, or on
// the superblock size, so weights may come from a cheap calibration run.
// cost_fingerprint() hashes exactly the meta fields cost DOES depend on
// (preset, policies, threat, seed, horizon) — the weights-compatibility
// check — while task plans carry the full sweep_fingerprint() of their
// target sweep, because a task *assignment* is only meaningful for one
// exact task space.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/shard_plan.h"

namespace divsec::dist {

struct SweepMeta;  // state_codec.h

/// Measured simulation cost of one sweep cell: how many replications
/// were folded and how many wall-clock seconds they took. Zero
/// replications means "unmeasured".
struct CellCost {
  std::uint64_t replications = 0;
  double seconds = 0.0;
};

/// Per-cell cost measurements of a sweep. Mergeable across shards and
/// runs (element-wise sums), serialized inside every shard-state file.
struct CostModel {
  std::vector<CellCost> cells;  // one per sweep cell; empty = no data

  [[nodiscard]] bool measured() const noexcept {
    for (const auto& c : cells)
      if (c.replications > 0 && c.seconds > 0.0) return true;
    return false;
  }

  /// Combine measurements (element-wise). Either side may be empty; two
  /// non-empty models must agree on the cell count
  /// (std::invalid_argument otherwise).
  void merge(const CostModel& other);

  /// Estimated seconds per replication of `cell`: its measured rate when
  /// available, else the mean measured rate (an unmeasured cell is
  /// assumed average), else 1.0 (no data at all — every cell costs the
  /// same and a weighted plan degenerates to a balanced one).
  [[nodiscard]] double sec_per_rep(std::size_t cell) const;
};

/// The meta fields per-replication cost actually depends on — identity
/// minus the replication/aggregation parameters — so weights from a
/// cheap calibration run (fewer replications, different superblock)
/// apply to the full-scale sweep. Two metas with equal
/// cost_fingerprint() describe the same cells with the same dynamics.
[[nodiscard]] std::uint64_t cost_fingerprint(const SweepMeta& meta);

/// Cost-weighted assignment of every task of `plan` to `shards` shards:
/// LPT over the estimated task costs (sec_per_rep(cell) × replications
/// in the task), ties broken by ascending task id, each task landing on
/// the currently least-loaded shard (ties by ascending shard). Returns
/// one strictly ascending task list per shard; together they cover
/// [0, task_count) exactly once, so the exact reducer accepts any mix of
/// the resulting shard states. Deterministic in (plan, cost, shards).
[[nodiscard]] std::vector<std::vector<std::uint64_t>>
cost_weighted_assignment(const sim::ShardPlan& plan, const CostModel& cost,
                         std::size_t shards);

/// Subset variant — deal only `tasks` (strictly ascending ids within the
/// plan) to `shards` shards by the same LPT rule; together the returned
/// lists cover exactly `tasks`. This is the adaptive coordinator's
/// per-round deal: each round re-balances the unconverged remainder over
/// the cost model measured so far.
[[nodiscard]] std::vector<std::vector<std::uint64_t>>
cost_weighted_assignment(const sim::ShardPlan& plan, const CostModel& cost,
                         std::size_t shards,
                         const std::vector<std::uint64_t>& tasks);

/// Estimated cost (seconds) of each shard's list under the model — the
/// planner's own prediction, printed by `divsec_sweep plan`.
[[nodiscard]] std::vector<double> assignment_cost(
    const sim::ShardPlan& plan, const CostModel& cost,
    const std::vector<std::vector<std::uint64_t>>& assignment);

/// A serialized task assignment: which sweep it belongs to (the full
/// sweep_fingerprint of the target spec — a plan is only valid for one
/// exact task space) and one ascending task list per shard.
struct TaskPlan {
  std::uint64_t fingerprint = 0;
  std::vector<std::vector<std::uint64_t>> shards;

  [[nodiscard]] std::size_t task_count() const noexcept {
    std::size_t n = 0;
    for (const auto& s : shards) n += s.size();
    return n;
  }
};

/// Plain-text task-plan codec ("divsec-tasks v1": header, fingerprint,
/// one line per shard). decode validates structure AND exact coverage —
/// every task in [0, task count) exactly once, each list strictly
/// ascending — and throws std::runtime_error otherwise; a plan that
/// would under- or over-run the sweep never reaches the engine.
[[nodiscard]] std::string encode_task_plan(const TaskPlan& plan);
[[nodiscard]] TaskPlan decode_task_plan(std::string_view text);

/// File shims; std::runtime_error on I/O failure.
void write_task_plan(const std::string& path, const TaskPlan& plan);
[[nodiscard]] TaskPlan read_task_plan(const std::string& path);

/// The 16-hex-digit rendering of a fingerprint used in plan files, state
/// headers, and error messages.
[[nodiscard]] std::string fingerprint_hex(std::uint64_t fingerprint);

/// Shared validation (the PR-4 fingerprint rule, reused by `plan
/// --weights` and `run --tasks`): throws std::invalid_argument naming
/// `what`, both fingerprints, and the remedy when they disagree.
void require_fingerprint(std::uint64_t expected, std::uint64_t actual,
                         const std::string& what);

}  // namespace divsec::dist
