// adaptive.h — the cross-process adaptive sweep coordinator.
//
// `divsec_sweep adapt` runs here: a multi-round loop that spends
// replications only where variance demands them. Each round the
// coordinator deals the still-active cells' next superblock tasks to K
// shards by LPT over the cost model measured so far (round 1 is
// uniform), each shard runs its list through the ordinary shard runner
// and flushes its partial state through the PR-4 codec (the bytes
// genuinely round-trip the serializer — the in-process shards of this
// loop and real OS processes exercise the identical transport), and the
// coordinator folds the round's partials into per-cell accumulators in
// ascending (cell, superblock) order, applies the shared stopping rule
// (sim/stopping.h via IndicatorAccumulator::precision_reached), and
// retires converged cells.
//
// Reproducibility contract: the recorded per-cell achieved counts
// (SweepMeta::achieved) — not the round schedule — are the contract.
// Every cell's folded superblocks form an ascending prefix of its task
// list, so replaying exactly those counts (divsec_sweep run --replay)
// through any thread count and any shard cut reproduces the merged CSV
// byte for byte. The round log and termination rounds are provenance for
// `inspect`, never identity.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/sweep.h"

namespace divsec::dist {

/// Coordinator knobs. Precision fields mirror core::AdaptiveOptions
/// (resolved through the same core::resolve_adaptive_schedule, so the
/// in-process and cross-process drivers retire cells identically).
struct AdaptiveSweepOptions {
  std::size_t shards = 1;
  double relative_precision = 0.05;
  double absolute_precision = 0.0;
  double confidence_level = 0.95;
  std::size_t min_replications = 0;    // 0 = one superblock
  std::size_t max_replications = 0;    // 0 = spec.replications (the cap)
  std::size_t round_replications = 0;  // 0 = one superblock
};

/// What the coordinator produced: the merged result (meta.achieved
/// records where every cell stopped) plus the round-by-round provenance.
struct AdaptiveResult {
  SweepMeta meta;  // merged = true, achieved filled
  std::vector<core::IndicatorAccumulator> accumulators;  // one per cell
  std::vector<core::IndicatorSummary> summaries;         // one per cell
  CostModel cost;               // merged measured cost of the whole run
  std::vector<RoundLog> rounds;               // one per coordinator round
  std::vector<std::uint64_t> cell_rounds;     // termination round per cell
  std::uint64_t total_replications = 0;       // sum of achieved
  std::uint64_t budget_replications = 0;      // cells × spec.replications
};

/// Run the adaptive coordinator loop. spec.achieved must be empty (the
/// run records it); spec.replications is the per-cell budget cap. Throws
/// std::invalid_argument for zero shards or when both precision criteria
/// are disabled. The executor threads each in-process shard's engine
/// (null = sim::Executor::shared()); results are bit-identical for any
/// thread count and any shard count.
[[nodiscard]] AdaptiveResult run_adaptive(
    const SweepSpec& spec, const AdaptiveSweepOptions& options,
    const sim::Executor* executor = nullptr);

/// The coordinator's result as a writable merged state (meta.achieved +
/// round log + termination rounds carried) — what `inspect` reads and
/// `run --replay` replays.
[[nodiscard]] ShardState adaptive_state(const AdaptiveResult& result);

}  // namespace divsec::dist
