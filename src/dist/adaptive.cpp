#include "dist/adaptive.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "sim/executor.h"

namespace divsec::dist {

namespace {

template <typename F>
double timed_ms(const F& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Coordinator telemetry: one add per round, nothing per replication.
struct AdaptCounters {
  obs::Counter& rounds = obs::counter("adapt.rounds");
  obs::Counter& cells_retired = obs::counter("adapt.cells_retired");
  obs::Counter& round_tasks = obs::counter("adapt.round_tasks");
  obs::Counter& round_replications = obs::counter("adapt.round_replications");
  obs::Counter& merge_ns = obs::counter("adapt.merge_ns");
  obs::Histogram& deal_tasks = obs::histogram("adapt.deal_tasks");

  static const AdaptCounters& instance() {
    static const AdaptCounters counters;
    return counters;
  }
};

}  // namespace

AdaptiveResult run_adaptive(const SweepSpec& spec,
                            const AdaptiveSweepOptions& options,
                            const sim::Executor* executor) {
  if (options.shards == 0)
    throw std::invalid_argument("run_adaptive: need >= 1 shard");
  if (!spec.achieved.empty())
    throw std::invalid_argument(
        "run_adaptive: spec already carries achieved counts (that is a "
        "replay input, not an adaptive-run input)");
  if (!(options.relative_precision > 0.0) &&
      !(options.absolute_precision > 0.0))
    throw std::invalid_argument(
        "run_adaptive: need relative_precision or absolute_precision > 0 "
        "(otherwise no cell can ever converge)");

  AdaptiveResult result;
  result.meta = make_meta(spec);
  SweepMeta& meta = result.meta;
  const sim::ShardPlan plan = sweep_shard_plan(meta);
  const std::size_t per_group = plan.superblocks_per_group();
  const std::size_t cells = meta.cells;

  // One schedule resolution shared with the in-process driver
  // (core::resolve_adaptive_schedule), so both retire cells identically.
  core::AdaptiveOptions adaptive;
  adaptive.enabled = true;
  adaptive.relative_precision = options.relative_precision;
  adaptive.absolute_precision = options.absolute_precision;
  adaptive.confidence_level = options.confidence_level;
  adaptive.min_replications = options.min_replications;
  adaptive.max_replications = options.max_replications;
  adaptive.round_replications = options.round_replications;
  const core::AdaptiveSchedule sched = core::resolve_adaptive_schedule(
      adaptive, static_cast<std::size_t>(meta.replications),
      static_cast<std::size_t>(meta.superblock));

  std::vector<core::IndicatorAccumulator> acc(cells);
  std::vector<bool> has(cells, false);
  std::vector<std::size_t> folded_sb(cells, 0);
  std::vector<std::uint64_t> achieved(cells, 0);
  result.cell_rounds.assign(cells, 0);
  std::vector<std::size_t> active(cells);
  for (std::size_t c = 0; c < cells; ++c) active[c] = c;

  std::uint64_t round = 0;
  std::vector<std::uint64_t> tasks;
  std::vector<std::size_t> still;
  const AdaptCounters& counters = AdaptCounters::instance();
  meta.wall_ms = timed_ms([&] {
    while (!active.empty()) {
      const obs::Span round_span("adapt.round");
      ++round;
      const std::size_t take =
          round == 1 ? sched.first_superblocks : sched.round_superblocks;
      tasks.clear();
      std::uint64_t round_reps = 0;
      for (const std::size_t c : active) {
        const std::size_t end = std::min(per_group, folded_sb[c] + take);
        for (std::size_t s = folded_sb[c]; s < end; ++s) {
          const std::uint64_t t = static_cast<std::uint64_t>(c * per_group + s);
          tasks.push_back(t);
          const sim::ShardPlan::Task span = plan.task(t);
          round_reps += span.end - span.begin;
        }
      }

      // Deal the round's tasks by LPT over the cost measured so far
      // (round 1 has no measurements yet — sec_per_rep falls back to
      // uniform, so the deal degenerates to a balanced one).
      const std::vector<std::vector<std::uint64_t>> deal =
          cost_weighted_assignment(plan, result.cost, options.shards, tasks);

      // Run every shard of the round, then push each one's state through
      // the codec — the coordinator consumes exactly the bytes an OS
      // process would have flushed, so the in-process loop and a real
      // fleet share one transport and one validation path.
      double shard_wall = 0.0;
      std::vector<std::string> flushed;
      flushed.reserve(deal.size());
      for (std::size_t i = 0; i < deal.size(); ++i) {
        if (deal[i].empty()) continue;
        const obs::Span shard_span("adapt.shard");
        counters.deal_tasks.observe(deal[i].size());
        const ShardState state = run_shard_tasks(
            spec, deal[i], i, options.shards, executor);
        shard_wall = std::max(shard_wall, state.meta.wall_ms);
        flushed.push_back(encode_shard_state(state));
      }

      // Fold the round's partials in ascending (cell, superblock) order —
      // the first partial of a cell becomes its accumulator, later ones
      // merge into it: the identical left-fold merge_shards performs on a
      // replay, hence bit-identical summaries.
      const double merge_ms = timed_ms([&] {
        const obs::Span merge_span("adapt.merge");
        std::vector<std::pair<std::uint64_t, core::IndicatorAccumulator>>
            parts;
        parts.reserve(tasks.size());
        for (const std::string& bytes : flushed) {
          ShardState state = decode_shard_state(bytes);
          if (sweep_fingerprint(state.meta) != sweep_fingerprint(meta))
            throw std::logic_error(
                "run_adaptive: shard state fingerprint drifted");
          for (std::size_t i = 0; i < state.tasks.size(); ++i)
            parts.emplace_back(state.tasks[i],
                               core::IndicatorAccumulator::from_state(
                                   state.partials[i]));
          result.cost.merge(state.cost);
        }
        std::sort(parts.begin(), parts.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        for (auto& [t, partial] : parts) {
          const std::size_t c = static_cast<std::size_t>(t) / per_group;
          if (!has[c]) {
            acc[c] = std::move(partial);
            has[c] = true;
          } else {
            acc[c].merge(partial);
          }
        }
      });

      still.clear();
      for (const std::size_t c : active) {
        folded_sb[c] = std::min(per_group, folded_sb[c] + take);
        achieved[c] = acc[c].count();
        const bool capped = folded_sb[c] >= per_group ||
                            achieved[c] >= sched.rule.max_replications;
        const bool converged = achieved[c] >= sched.rule.min_replications &&
                               acc[c].precision_reached(sched.rule);
        if (capped || converged)
          result.cell_rounds[c] = round;
        else
          still.push_back(c);
      }
      result.rounds.push_back(
          RoundLog{round, static_cast<std::uint64_t>(active.size()),
                   static_cast<std::uint64_t>(tasks.size()), round_reps,
                   shard_wall, merge_ms});

      const std::size_t retired = active.size() - still.size();
      counters.rounds.add(1);
      counters.cells_retired.add(retired);
      counters.round_tasks.add(tasks.size());
      counters.round_replications.add(round_reps);
      counters.merge_ns.add(
          static_cast<std::uint64_t>(std::llround(merge_ms * 1e6)));
      // The coordinator loop used to run to completion without a word;
      // one summary line per round is the operator's convergence view
      // (stderr only — never a byte of CSV/state output).
      obs::progress_line("adapt round %" PRIu64
                         ": retired %zu, active %zu, worst shard %.2fs, "
                         "merge %.1f ms",
                         round, retired, still.size(), shard_wall / 1000.0,
                         merge_ms);
      active.swap(still);
    }
  });

  meta.achieved = achieved;
  meta.merged = true;
  meta.shard = 0;
  meta.shard_count = options.shards;
  if (executor)
    meta.threads = static_cast<std::uint32_t>(executor->thread_count());

  result.summaries.resize(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    result.summaries[c] = acc[c].summarize();
    result.summaries[c].replications = static_cast<std::size_t>(achieved[c]);
    result.summaries[c].horizon_hours = meta.horizon_hours;
    result.total_replications += achieved[c];
  }
  result.budget_replications = meta.cells * meta.replications;
  result.accumulators = std::move(acc);
  return result;
}

ShardState adaptive_state(const AdaptiveResult& result) {
  ShardState state;
  state.meta = result.meta;
  state.tasks.resize(result.accumulators.size());
  for (std::size_t c = 0; c < state.tasks.size(); ++c) state.tasks[c] = c;
  state.partials.reserve(result.accumulators.size());
  for (const auto& a : result.accumulators)
    state.partials.push_back(a.state());
  state.cost = result.cost;
  state.rounds = result.rounds;
  state.cell_rounds = result.cell_rounds;
  return state;
}

}  // namespace divsec::dist
