#include "dist/state_codec.h"

#include <bit>
#include <cstdio>
#include <stdexcept>

#include "dist/fnv.h"
#include "util/json.h"

namespace divsec::dist {

namespace {

constexpr char kMagic[8] = {'D', 'V', 'S', 'W', 'E', 'E', 'P', 'S'};

// ---- primitive byte codec (little-endian, padding-free) --------------------

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::size_t offset() const noexcept { return off_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - off_;
  }

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes_[off_++]);
  }

  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes_[off_ + static_cast<std::size_t>(i)]))
           << (8 * i);
    off_ += 4;
    return v;
  }

  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes_[off_ + static_cast<std::size_t>(i)]))
           << (8 * i);
    off_ += 8;
    return v;
  }

  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

  [[nodiscard]] std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(bytes_.substr(off_, n));
    off_ += n;
    return s;
  }

  void skip(std::size_t n) {
    need(n);
    off_ += n;
  }

 private:
  void need(std::size_t n) const {
    if (remaining() < n)
      throw std::runtime_error("shard state: truncated input");
  }

  std::string_view bytes_;
  std::size_t off_ = 0;
};

// ---- state blobs -----------------------------------------------------------

void put_online(std::string& out, const stats::OnlineStats::State& s) {
  put_u64(out, s.n);
  put_f64(out, s.mean);
  put_f64(out, s.m2);
  put_f64(out, s.min);
  put_f64(out, s.max);
}

stats::OnlineStats::State get_online(Reader& r) {
  stats::OnlineStats::State s;
  s.n = r.u64();
  s.mean = r.f64();
  s.m2 = r.f64();
  s.min = r.f64();
  s.max = r.f64();
  return s;
}

void put_p2(std::string& out, const stats::P2Quantile::State& s) {
  put_f64(out, s.q);
  put_u64(out, s.count);
  for (const double h : s.heights) put_f64(out, h);
  for (const double p : s.pos) put_f64(out, p);
}

stats::P2Quantile::State get_p2(Reader& r) {
  stats::P2Quantile::State s;
  s.q = r.f64();
  s.count = r.u64();
  for (double& h : s.heights) h = r.f64();
  for (double& p : s.pos) p = r.f64();
  return s;
}

void put_survival(std::string& out, const stats::StreamingSurvival::State& s) {
  put_f64(out, s.horizon);
  put_u64(out, s.n);
  put_u64(out, s.events);
  put_u64(out, s.events_in.size());
  for (const auto v : s.events_in) put_u64(out, v);
  put_u64(out, s.censored_in.size());
  for (const auto v : s.censored_in) put_u64(out, v);
}

stats::StreamingSurvival::State get_survival(Reader& r) {
  stats::StreamingSurvival::State s;
  s.horizon = r.f64();
  s.n = r.u64();
  s.events = r.u64();
  const std::uint64_t nbins = r.u64();
  if (nbins > r.remaining() / 8)
    throw std::runtime_error("shard state: survival bin count exceeds input");
  s.events_in.reserve(nbins);
  for (std::uint64_t i = 0; i < nbins; ++i) s.events_in.push_back(r.u64());
  const std::uint64_t ncens = r.u64();
  if (ncens > r.remaining() / 8)
    throw std::runtime_error("shard state: censor bin count exceeds input");
  s.censored_in.reserve(ncens);
  for (std::uint64_t i = 0; i < ncens; ++i) s.censored_in.push_back(r.u64());
  return s;
}

void put_censored(std::string& out,
                  const stats::CensoredTimeAccumulator::State& s) {
  put_online(out, s.moments);
  put_u64(out, s.censored);
  put_p2(out, s.q50);
  put_p2(out, s.q90);
  put_survival(out, s.survival);
}

stats::CensoredTimeAccumulator::State get_censored(Reader& r) {
  stats::CensoredTimeAccumulator::State s;
  s.moments = get_online(r);
  s.censored = r.u64();
  s.q50 = get_p2(r);
  s.q90 = get_p2(r);
  s.survival = get_survival(r);
  return s;
}

void put_accumulator(std::string& out,
                     const core::IndicatorAccumulator::State& s) {
  put_f64(out, s.horizon);
  put_u64(out, s.n);
  put_u64(out, s.successes);
  put_censored(out, s.tta);
  put_censored(out, s.ttsf);
  put_online(out, s.final_ratio);
}

core::IndicatorAccumulator::State get_accumulator(Reader& r) {
  core::IndicatorAccumulator::State s;
  s.horizon = r.f64();
  s.n = r.u64();
  s.successes = r.u64();
  s.tta = get_censored(r);
  s.ttsf = get_censored(r);
  s.final_ratio = get_online(r);
  return s;
}

void put_meta(std::string& out, const SweepMeta& m) {
  put_str(out, m.preset);
  put_str(out, m.threat);
  put_u32(out, static_cast<std::uint32_t>(m.policies.size()));
  for (const auto p : m.policies)
    out.push_back(static_cast<char>(static_cast<std::uint8_t>(p)));
  put_u64(out, m.seed);
  put_u64(out, m.replications);
  put_u64(out, m.replication_block);
  put_u64(out, m.superblock);
  put_u64(out, m.survival_bins);
  put_f64(out, m.horizon_hours);
  put_u64(out, m.cells);
  put_u64(out, m.achieved.size());
  for (const std::uint64_t a : m.achieved) put_u64(out, a);
  put_u64(out, m.shard);
  put_u64(out, m.shard_count);
  put_u32(out, m.merged ? 1 : 0);
  put_f64(out, m.wall_ms);
  put_u32(out, m.threads);
}

}  // namespace

std::uint64_t sweep_fingerprint(const SweepMeta& meta) {
  std::uint64_t h = kFnvOffsetBasis;
  fnv1a_mix(h, kStateFormatVersion);
  fnv1a_mix(h, meta.preset);
  fnv1a_mix(h, meta.threat);
  fnv1a_mix(h, static_cast<std::uint64_t>(meta.policies.size()));
  for (const auto p : meta.policies)
    fnv1a_mix(h, static_cast<std::uint64_t>(p));
  fnv1a_mix(h, meta.seed);
  fnv1a_mix(h, meta.replications);
  fnv1a_mix(h, meta.replication_block);
  fnv1a_mix(h, meta.superblock);
  fnv1a_mix(h, meta.survival_bins);
  fnv1a_mix(h, std::bit_cast<std::uint64_t>(meta.horizon_hours));
  fnv1a_mix(h, meta.cells);
  // The achieved list is identity: an adaptive merge/replay must agree on
  // where every cell stopped, and a fixed-budget state (empty list) must
  // never merge with an adaptive one.
  fnv1a_mix(h, static_cast<std::uint64_t>(meta.achieved.size()));
  for (const std::uint64_t a : meta.achieved) fnv1a_mix(h, a);
  return h;
}

std::string meta_json(const SweepMeta& meta) {
  using util::json_number_exact;
  using util::json_string;
  std::string policies;
  for (std::size_t i = 0; i < meta.policies.size(); ++i) {
    if (i) policies += ", ";
    policies += json_string(scenario::to_string(meta.policies[i]));
  }
  std::string out = "{";
  out += "\"format\": \"divsec-sweep-state\"";
  out += ", \"version\": " + std::to_string(kStateFormatVersion);
  out += ", \"preset\": " + json_string(meta.preset);
  out += ", \"policies\": [" + policies + "]";
  out += ", \"threat\": " + json_string(meta.threat);
  out += ", \"seed\": " + std::to_string(meta.seed);
  out += ", \"replications\": " + std::to_string(meta.replications);
  out += ", \"replication_block\": " + std::to_string(meta.replication_block);
  out += ", \"superblock\": " + std::to_string(meta.superblock);
  out += ", \"survival_bins\": " + std::to_string(meta.survival_bins);
  out += ", \"horizon_hours\": " + json_number_exact(meta.horizon_hours);
  out += ", \"cells\": " + std::to_string(meta.cells);
  out += std::string(", \"adaptive\": ") +
         (meta.achieved.empty() ? "false" : "true");
  if (!meta.achieved.empty()) {
    out += ", \"achieved\": [";
    for (std::size_t i = 0; i < meta.achieved.size(); ++i) {
      if (i) out += ", ";
      out += std::to_string(meta.achieved[i]);
    }
    out += "]";
  }
  out += ", \"shard\": " + std::to_string(meta.shard);
  out += ", \"shard_count\": " + std::to_string(meta.shard_count);
  out += std::string(", \"merged\": ") + (meta.merged ? "true" : "false");
  out += ", \"wall_ms\": " + util::json_number(meta.wall_ms);
  out += ", \"threads\": " + std::to_string(meta.threads);
  out += ", \"fingerprint\": \"" + fingerprint_hex(sweep_fingerprint(meta));
  out += "\", \"cost_fingerprint\": \"" + fingerprint_hex(cost_fingerprint(meta));
  out += "\"}";
  return out;
}

std::string encode_shard_state(const ShardState& state) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, kStateFormatVersion);
  put_str(out, meta_json(state.meta));
  put_meta(out, state.meta);
  if (state.partials.size() != state.tasks.size())
    throw std::invalid_argument(
        "encode_shard_state: partial count != task list size");
  for (std::size_t t = 1; t < state.tasks.size(); ++t)
    if (state.tasks[t] <= state.tasks[t - 1])
      throw std::invalid_argument(
          "encode_shard_state: task list must be strictly ascending");
  if (!state.cost.cells.empty() && state.cost.cells.size() != state.meta.cells)
    throw std::invalid_argument(
        "encode_shard_state: cost model cell count != sweep cell count");
  if (!state.meta.achieved.empty()) {
    if (state.meta.achieved.size() != state.meta.cells)
      throw std::invalid_argument(
          "encode_shard_state: achieved count != sweep cell count");
    for (const std::uint64_t a : state.meta.achieved)
      if (a == 0 || a > state.meta.replications)
        throw std::invalid_argument(
            "encode_shard_state: achieved replications outside (0, budget]");
  }
  if (!state.cell_rounds.empty() &&
      state.cell_rounds.size() != state.meta.cells)
    throw std::invalid_argument(
        "encode_shard_state: termination-round count != sweep cell count");
  put_u64(out, state.tasks.size());
  for (const std::uint64_t t : state.tasks) put_u64(out, t);
  for (const auto& p : state.partials) put_accumulator(out, p);
  put_u64(out, state.cost.cells.size());
  for (const auto& c : state.cost.cells) {
    put_u64(out, c.replications);
    put_f64(out, c.seconds);
  }
  put_u64(out, state.rounds.size());
  for (const RoundLog& rl : state.rounds) {
    put_u64(out, rl.round);
    put_u64(out, rl.active_cells);
    put_u64(out, rl.tasks);
    put_u64(out, rl.replications);
    put_f64(out, rl.wall_ms);
    put_f64(out, rl.merge_ms);
  }
  put_u64(out, state.cell_rounds.size());
  for (const std::uint64_t cr : state.cell_rounds) put_u64(out, cr);
  put_u64(out, fnv1a(out));
  return out;
}

ShardState decode_shard_state(std::string_view bytes) {
  if (bytes.substr(0, 12) == "divsec-tasks")
    throw std::runtime_error(
        "shard state: this is a task-plan file (divsec_sweep plan output), "
        "not a shard state — pass it via --tasks instead");
  if (bytes.size() < sizeof(kMagic) + 4 + 8 ||
      bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("shard state: not a divsec sweep state file");
  const std::uint64_t stored =
      Reader(bytes.substr(bytes.size() - 8)).u64();
  if (fnv1a(bytes.substr(0, bytes.size() - 8)) != stored)
    throw std::runtime_error("shard state: checksum mismatch (file damaged)");

  Reader r(bytes.substr(0, bytes.size() - 8));
  r.skip(sizeof(kMagic));
  const std::uint32_t version = r.u32();
  if (version != kStateFormatVersion)
    throw std::runtime_error("shard state: unsupported format version " +
                             std::to_string(version));
  (void)r.str();  // the informational JSON header; binary meta is authoritative

  ShardState state;
  SweepMeta& m = state.meta;
  m.preset = r.str();
  m.threat = r.str();
  const std::uint32_t npol = r.u32();
  // One byte per policy: a count the remaining payload cannot hold is
  // corruption. (No arbitrary cap — sweeps with many replicate arms are
  // legitimate, and whatever encode writes must decode.)
  if (npol > r.remaining())
    throw std::runtime_error("shard state: policy list exceeds input size");
  m.policies.reserve(npol);
  for (std::uint32_t i = 0; i < npol; ++i) {
    const std::uint8_t raw = r.u8();
    if (raw > static_cast<std::uint8_t>(scenario::VariantPolicy::kRandomPerNode))
      throw std::runtime_error("shard state: unknown variant policy");
    m.policies.push_back(static_cast<scenario::VariantPolicy>(raw));
  }
  m.seed = r.u64();
  m.replications = r.u64();
  m.replication_block = r.u64();
  m.superblock = r.u64();
  m.survival_bins = r.u64();
  m.horizon_hours = r.f64();
  m.cells = r.u64();
  if (m.cells != m.policies.size())
    throw std::runtime_error(
        "shard state: cell count disagrees with the policy list");
  const std::uint64_t nachieved = r.u64();
  if (nachieved != 0 && nachieved != m.cells)
    throw std::runtime_error(
        "shard state: achieved-count list disagrees with the cell count");
  if (nachieved > r.remaining() / 8)
    throw std::runtime_error("shard state: achieved list exceeds input size");
  m.achieved.reserve(nachieved);
  for (std::uint64_t i = 0; i < nachieved; ++i) {
    const std::uint64_t a = r.u64();
    if (a == 0 || a > m.replications)
      throw std::runtime_error(
          "shard state: achieved replications outside (0, budget]");
    m.achieved.push_back(a);
  }
  m.shard = r.u64();
  m.shard_count = r.u64();
  m.merged = r.u32() != 0;
  m.wall_ms = r.f64();
  m.threads = r.u32();

  const std::uint64_t ntasks = r.u64();
  // Plausibility bound before reserving anything: every task costs an
  // 8-byte id plus an accumulator blob far larger than 64 bytes, so a
  // count the remaining payload cannot possibly hold is corruption —
  // reject it as such rather than letting a forged count drive reserve()
  // into bad_alloc.
  if (ntasks > r.remaining() / 72)
    throw std::runtime_error("shard state: task count exceeds input size");
  state.tasks.reserve(ntasks);
  for (std::uint64_t i = 0; i < ntasks; ++i) {
    const std::uint64_t t = r.u64();
    if (!state.tasks.empty() && t <= state.tasks.back())
      throw std::runtime_error(
          "shard state: task list is not strictly ascending");
    state.tasks.push_back(t);
  }
  state.partials.reserve(ntasks);
  for (std::uint64_t i = 0; i < ntasks; ++i)
    state.partials.push_back(get_accumulator(r));
  const std::uint64_t ncost = r.u64();
  if (ncost != 0 && ncost != m.cells)
    throw std::runtime_error(
        "shard state: cost model cell count disagrees with the sweep");
  if (ncost > r.remaining() / 16)
    throw std::runtime_error("shard state: cost section exceeds input size");
  state.cost.cells.reserve(ncost);
  for (std::uint64_t i = 0; i < ncost; ++i) {
    CellCost c;
    c.replications = r.u64();
    c.seconds = r.f64();
    state.cost.cells.push_back(c);
  }
  const std::uint64_t nrounds = r.u64();
  if (nrounds > r.remaining() / 48)
    throw std::runtime_error("shard state: round log exceeds input size");
  state.rounds.reserve(nrounds);
  for (std::uint64_t i = 0; i < nrounds; ++i) {
    RoundLog rl;
    rl.round = r.u64();
    rl.active_cells = r.u64();
    rl.tasks = r.u64();
    rl.replications = r.u64();
    rl.wall_ms = r.f64();
    rl.merge_ms = r.f64();
    state.rounds.push_back(rl);
  }
  const std::uint64_t ncr = r.u64();
  if (ncr != 0 && ncr != m.cells)
    throw std::runtime_error(
        "shard state: termination-round list disagrees with the cell count");
  if (ncr > r.remaining() / 8)
    throw std::runtime_error(
        "shard state: termination-round list exceeds input size");
  state.cell_rounds.reserve(ncr);
  for (std::uint64_t i = 0; i < ncr; ++i) state.cell_rounds.push_back(r.u64());
  if (r.remaining() != 0)
    throw std::runtime_error("shard state: trailing bytes after payload");
  return state;
}

std::string accumulator_json(const core::IndicatorAccumulator::State& state) {
  using util::json_number_exact;
  const auto online = [](const stats::OnlineStats::State& s) {
    return "{\"n\": " + std::to_string(s.n) +
           ", \"mean\": " + json_number_exact(s.mean) +
           ", \"m2\": " + json_number_exact(s.m2) +
           ", \"min\": " + json_number_exact(s.min) +
           ", \"max\": " + json_number_exact(s.max) + "}";
  };
  const auto p2 = [](const stats::P2Quantile::State& s) {
    std::string h, p;
    for (std::size_t i = 0; i < s.heights.size(); ++i) {
      if (i) {
        h += ", ";
        p += ", ";
      }
      h += json_number_exact(s.heights[i]);
      p += json_number_exact(s.pos[i]);
    }
    return "{\"q\": " + json_number_exact(s.q) +
           ", \"count\": " + std::to_string(s.count) + ", \"heights\": [" + h +
           "], \"pos\": [" + p + "]}";
  };
  const auto survival = [](const stats::StreamingSurvival::State& s) {
    std::string ev, ce;
    for (std::size_t i = 0; i < s.events_in.size(); ++i) {
      if (i) ev += ", ";
      ev += std::to_string(s.events_in[i]);
    }
    for (std::size_t i = 0; i < s.censored_in.size(); ++i) {
      if (i) ce += ", ";
      ce += std::to_string(s.censored_in[i]);
    }
    return "{\"horizon\": " + json_number_exact(s.horizon) +
           ", \"n\": " + std::to_string(s.n) +
           ", \"events\": " + std::to_string(s.events) + ", \"events_in\": [" +
           ev + "], \"censored_in\": [" + ce + "]}";
  };
  const auto censored = [&](const stats::CensoredTimeAccumulator::State& s) {
    return "{\"moments\": " + online(s.moments) +
           ", \"censored\": " + std::to_string(s.censored) +
           ", \"q50\": " + p2(s.q50) + ", \"q90\": " + p2(s.q90) +
           ", \"survival\": " + survival(s.survival) + "}";
  };
  return "{\"horizon\": " + json_number_exact(state.horizon) +
         ", \"n\": " + std::to_string(state.n) +
         ", \"successes\": " + std::to_string(state.successes) +
         ", \"tta\": " + censored(state.tta) +
         ", \"ttsf\": " + censored(state.ttsf) +
         ", \"final_ratio\": " + online(state.final_ratio) + "}";
}

void write_shard_state(const std::string& path, const ShardState& state) {
  const std::string bytes = encode_shard_state(state);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const int close_result = std::fclose(f);  // unconditionally: no fd leak
  if (written != bytes.size() || close_result != 0)
    throw std::runtime_error("short write: " + path);
}

ShardState read_shard_state(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw std::runtime_error("cannot open: " + path);
  std::string bytes;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) throw std::runtime_error("read error: " + path);
  return decode_shard_state(bytes);
}

}  // namespace divsec::dist
