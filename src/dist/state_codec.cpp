#include "dist/state_codec.h"

#include <array>
#include <bit>
#include <chrono>
#include <cstdio>
#include <span>
#include <stdexcept>
#include <string>

#include "dist/fnv.h"
#include "obs/metrics.h"
#include "util/json.h"

namespace divsec::dist {

namespace {

constexpr char kMagic[8] = {'D', 'V', 'S', 'W', 'E', 'E', 'P', 'S'};

/// Embedded-JSON-header cap: per-cell lists render inline only up to
/// this many cells, so the informational header stays O(1) on fleet
/// sweeps (the binary meta is authoritative either way).
constexpr std::size_t kJsonListCap = 64;

/// Sanity bound on any decoded array length. Run-length tokens can
/// expand far beyond the input size, so a forged count must be rejected
/// before it drives allocation — no legitimate sweep state comes close.
constexpr std::uint64_t kMaxArray = std::uint64_t{1} << 26;

// ---- primitive byte codec (little-endian, padding-free) --------------------

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

/// LEB128 varint: 7 bits per byte, low bits first, high bit = continue.
void put_var(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

[[nodiscard]] std::uint64_t byteswap64(std::uint64_t v) {
  std::uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r = (r << 8) | (v & 0xFF);
    v >>= 8;
  }
  return r;
}

/// "varf64": varint of the byte-swapped IEEE-754 bit pattern. A double's
/// low mantissa bytes are zero for "clean" values (integers, halves, a
/// zeroed accumulator); swapping moves those zeros to the high end,
/// where LEB128 drops them — 2160.0 costs 3 bytes, 0.0 costs 1, a noisy
/// full-mantissa double at most 10.
void put_varf(std::string& out, double v) {
  put_var(out, byteswap64(std::bit_cast<std::uint64_t>(v)));
}

[[nodiscard]] constexpr std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] constexpr std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::size_t offset() const noexcept { return off_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - off_;
  }

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes_[off_++]);
  }

  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes_[off_ + static_cast<std::size_t>(i)]))
           << (8 * i);
    off_ += 4;
    return v;
  }

  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes_[off_ + static_cast<std::size_t>(i)]))
           << (8 * i);
    off_ += 8;
    return v;
  }

  [[nodiscard]] std::uint64_t var() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      const std::uint8_t b = u8();
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if (!(b & 0x80)) {
        // The 10th byte may only carry the top bit of the 64 (64 = 9*7+1).
        if (shift == 63 && (b & 0x7E))
          throw std::runtime_error("shard state: varint overflows 64 bits");
        return v;
      }
    }
    throw std::runtime_error("shard state: varint overflows 64 bits");
  }

  [[nodiscard]] double varf() {
    return std::bit_cast<double>(byteswap64(var()));
  }

  [[nodiscard]] std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(bytes_.substr(off_, n));
    off_ += n;
    return s;
  }

  /// Varint-length-prefixed string (packed sections).
  [[nodiscard]] std::string vstr() {
    const std::uint64_t n = var();
    need(n);
    std::string s(bytes_.substr(off_, static_cast<std::size_t>(n)));
    off_ += static_cast<std::size_t>(n);
    return s;
  }

  [[nodiscard]] std::string_view take(std::size_t n) {
    need(n);
    const std::string_view v = bytes_.substr(off_, n);
    off_ += n;
    return v;
  }

  void skip(std::size_t n) {
    need(n);
    off_ += n;
  }

 private:
  void need(std::size_t n) const {
    if (remaining() < n)
      throw std::runtime_error("shard state: truncated input");
  }

  std::string_view bytes_;
  std::size_t off_ = 0;
};

// ---- dual-mode section writer ----------------------------------------------

/// Writes a section payload either packed (the v4 wire format) or
/// fixed-width (8 bytes per number — the "uncompressed equivalent" the
/// compression ratio is measured against). Both modes walk the identical
/// field sequence, so the equivalent is the same content, only wider.
struct Writer {
  std::string out;
  bool packed = true;

  void u32(std::uint32_t v) {
    if (packed)
      put_var(out, v);
    else
      put_u32(out, v);
  }
  void u64(std::uint64_t v) {
    if (packed)
      put_var(out, v);
    else
      put_u64(out, v);
  }
  void f64(double v) {
    if (packed)
      put_varf(out, v);
    else
      put_f64(out, v);
  }
  void byte(std::uint8_t v) { out.push_back(static_cast<char>(v)); }
  void str(const std::string& s) {
    u64(s.size());
    out += s;
  }

  /// Sparse count array: zero runs collapse to (0, run-length); nonzero
  /// values encode directly. Right for survival bins, where most bins
  /// hold nothing.
  void counts(std::span<const std::uint64_t> v) {
    if (!packed) {
      for (const std::uint64_t x : v) put_u64(out, x);
      return;
    }
    std::size_t i = 0;
    while (i < v.size()) {
      if (v[i] == 0) {
        std::size_t j = i;
        while (j < v.size() && v[j] == 0) ++j;
        put_var(out, 0);
        put_var(out, j - i);
        i = j;
      } else {
        put_var(out, v[i]);
        ++i;
      }
    }
  }

  /// Flat array: (value, run-length) pairs. Right for per-cell lists
  /// where long stretches of cells share one value (achieved counts,
  /// termination rounds).
  void runs(std::span<const std::uint64_t> v) {
    if (!packed) {
      for (const std::uint64_t x : v) put_u64(out, x);
      return;
    }
    std::size_t i = 0;
    while (i < v.size()) {
      std::size_t j = i;
      while (j < v.size() && v[j] == v[i]) ++j;
      put_var(out, v[i]);
      put_var(out, j - i);
      i = j;
    }
  }

  /// Strictly ascending id list: first value, then gaps.
  void ascending(std::span<const std::uint64_t> v) {
    if (!packed) {
      for (const std::uint64_t x : v) put_u64(out, x);
      return;
    }
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      put_var(out, i == 0 ? v[i] : v[i] - prev);
      prev = v[i];
    }
  }

  /// Monotone-ish array (curve sums): zigzag deltas, then the sparse
  /// count coding — a plateaued curve is runs of zero deltas.
  void zz_deltas(std::span<const std::uint64_t> v) {
    if (!packed) {
      for (const std::uint64_t x : v) put_u64(out, x);
      return;
    }
    std::vector<std::uint64_t> zz(v.size());
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      zz[i] = zigzag(static_cast<std::int64_t>(v[i] - prev));
      prev = v[i];
    }
    counts(zz);
  }
};

[[nodiscard]] std::vector<std::uint64_t> get_counts(Reader& r,
                                                    std::uint64_t n) {
  if (n > kMaxArray)
    throw std::runtime_error("shard state: array length exceeds sanity bound");
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(n));
  while (out.size() < n) {
    const std::uint64_t v = r.var();
    if (v == 0) {
      const std::uint64_t run = r.var();
      if (run == 0 || run > n - out.size())
        throw std::runtime_error("shard state: bad zero-run length");
      out.insert(out.end(), static_cast<std::size_t>(run), 0);
    } else {
      out.push_back(v);
    }
  }
  return out;
}

[[nodiscard]] std::vector<std::uint64_t> get_runs(Reader& r, std::uint64_t n) {
  if (n > kMaxArray)
    throw std::runtime_error("shard state: array length exceeds sanity bound");
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(n));
  while (out.size() < n) {
    const std::uint64_t v = r.var();
    const std::uint64_t run = r.var();
    if (run == 0 || run > n - out.size())
      throw std::runtime_error("shard state: bad run length");
    out.insert(out.end(), static_cast<std::size_t>(run), v);
  }
  return out;
}

[[nodiscard]] std::vector<std::uint64_t> get_zz_deltas(Reader& r,
                                                       std::uint64_t n) {
  std::vector<std::uint64_t> zz = get_counts(r, n);
  std::uint64_t prev = 0;
  for (std::uint64_t& v : zz) {
    prev += static_cast<std::uint64_t>(unzigzag(v));
    v = prev;
  }
  return zz;
}

// ---- state blobs -----------------------------------------------------------

void put_online(Writer& w, const stats::OnlineStats::State& s) {
  w.u64(s.n);
  w.f64(s.mean);
  w.f64(s.m2);
  w.f64(s.min);
  w.f64(s.max);
}

stats::OnlineStats::State get_online(Reader& r) {
  stats::OnlineStats::State s;
  s.n = r.var();
  s.mean = r.varf();
  s.m2 = r.varf();
  s.min = r.varf();
  s.max = r.varf();
  return s;
}

void put_digest(Writer& w, const stats::TDigest::State& s) {
  w.f64(s.compression);
  w.f64(s.min);
  w.f64(s.max);
  w.u64(s.centroids.size());
  for (const auto& c : s.centroids) {
    w.f64(c.mean);
    w.u64(c.weight);
  }
}

stats::TDigest::State get_digest(Reader& r) {
  stats::TDigest::State s;
  s.compression = r.varf();
  s.min = r.varf();
  s.max = r.varf();
  const std::uint64_t n = r.var();
  // Every centroid costs at least 2 bytes (varf mean + varint weight).
  if (n > r.remaining() / 2)
    throw std::runtime_error("shard state: centroid count exceeds input");
  s.centroids.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    stats::TDigest::Centroid c;
    c.mean = r.varf();
    c.weight = r.var();
    s.centroids.push_back(c);
  }
  return s;
}

void put_survival(Writer& w, const stats::StreamingSurvival::State& s) {
  w.f64(s.horizon);
  w.u64(s.n);
  w.u64(s.events);
  w.u64(s.events_in.size());
  w.counts(s.events_in);
  w.u64(s.censored_in.size());
  w.counts(s.censored_in);
}

stats::StreamingSurvival::State get_survival(Reader& r) {
  stats::StreamingSurvival::State s;
  s.horizon = r.varf();
  s.n = r.var();
  s.events = r.var();
  s.events_in = get_counts(r, r.var());
  s.censored_in = get_counts(r, r.var());
  return s;
}

void put_censored(Writer& w, const stats::CensoredTimeAccumulator::State& s) {
  put_online(w, s.moments);
  w.u64(s.censored);
  put_digest(w, s.times);
  put_survival(w, s.survival);
}

stats::CensoredTimeAccumulator::State get_censored(Reader& r) {
  stats::CensoredTimeAccumulator::State s;
  s.moments = get_online(r);
  s.censored = r.var();
  s.times = get_digest(r);
  s.survival = get_survival(r);
  return s;
}

void put_curve(Writer& w, const core::RatioCurveAccumulator::State& s) {
  w.f64(s.horizon);
  w.u64(s.scale);
  w.u64(s.n);
  w.u64(s.sums.size());
  w.zz_deltas(s.sums);
}

core::RatioCurveAccumulator::State get_curve(Reader& r) {
  core::RatioCurveAccumulator::State s;
  s.horizon = r.varf();
  s.scale = r.var();
  s.n = r.var();
  s.sums = get_zz_deltas(r, r.var());
  return s;
}

void put_accumulator(Writer& w, const core::IndicatorAccumulator::State& s) {
  w.f64(s.horizon);
  w.u64(s.n);
  w.u64(s.successes);
  put_censored(w, s.tta);
  put_censored(w, s.ttsf);
  put_online(w, s.final_ratio);
  put_curve(w, s.curve);
}

core::IndicatorAccumulator::State get_accumulator(Reader& r) {
  core::IndicatorAccumulator::State s;
  s.horizon = r.varf();
  s.n = r.var();
  s.successes = r.var();
  s.tta = get_censored(r);
  s.ttsf = get_censored(r);
  s.final_ratio = get_online(r);
  s.curve = get_curve(r);
  return s;
}

// ---- sections --------------------------------------------------------------

void put_meta(Writer& w, const SweepMeta& m) {
  w.str(m.preset);
  w.str(m.threat);
  w.u64(m.policies.size());
  for (const auto p : m.policies)
    w.byte(static_cast<std::uint8_t>(p));
  w.u64(m.seed);
  w.u64(m.replications);
  w.u64(m.replication_block);
  w.u64(m.superblock);
  w.u64(m.survival_bins);
  w.f64(m.horizon_hours);
  w.u64(m.cells);
  w.u64(m.achieved.size());
  w.runs(m.achieved);
  w.u64(m.shard);
  w.u64(m.shard_count);
  w.byte(m.merged ? 1 : 0);
  w.f64(m.wall_ms);
  w.u32(m.threads);
}

void get_meta(Reader& r, SweepMeta& m) {
  m.preset = r.vstr();
  m.threat = r.vstr();
  const std::uint64_t npol = r.var();
  // One byte per policy: a count the remaining payload cannot hold is
  // corruption. (No arbitrary cap — sweeps with many replicate arms are
  // legitimate, and whatever encode writes must decode.)
  if (npol > r.remaining())
    throw std::runtime_error("shard state: policy list exceeds input size");
  m.policies.reserve(static_cast<std::size_t>(npol));
  for (std::uint64_t i = 0; i < npol; ++i) {
    const std::uint8_t raw = r.u8();
    if (raw > static_cast<std::uint8_t>(scenario::VariantPolicy::kBalancedRotation))
      throw std::runtime_error("shard state: unknown variant policy");
    m.policies.push_back(static_cast<scenario::VariantPolicy>(raw));
  }
  m.seed = r.var();
  m.replications = r.var();
  m.replication_block = r.var();
  m.superblock = r.var();
  m.survival_bins = r.var();
  m.horizon_hours = r.varf();
  m.cells = r.var();
  if (m.cells != m.policies.size())
    throw std::runtime_error(
        "shard state: cell count disagrees with the policy list");
  const std::uint64_t nachieved = r.var();
  if (nachieved != 0 && nachieved != m.cells)
    throw std::runtime_error(
        "shard state: achieved-count list disagrees with the cell count");
  m.achieved = get_runs(r, nachieved);
  for (const std::uint64_t a : m.achieved)
    if (a == 0 || a > m.replications)
      throw std::runtime_error(
          "shard state: achieved replications outside (0, budget]");
  m.shard = r.var();
  m.shard_count = r.var();
  m.merged = r.u8() != 0;
  m.wall_ms = r.varf();
  m.threads = static_cast<std::uint32_t>(r.var());
}

void validate_state(const ShardState& state) {
  if (state.partials.size() != state.tasks.size())
    throw std::invalid_argument(
        "encode_shard_state: partial count != task list size");
  for (std::size_t t = 1; t < state.tasks.size(); ++t)
    if (state.tasks[t] <= state.tasks[t - 1])
      throw std::invalid_argument(
          "encode_shard_state: task list must be strictly ascending");
  if (!state.cost.cells.empty() && state.cost.cells.size() != state.meta.cells)
    throw std::invalid_argument(
        "encode_shard_state: cost model cell count != sweep cell count");
  if (!state.meta.achieved.empty()) {
    if (state.meta.achieved.size() != state.meta.cells)
      throw std::invalid_argument(
          "encode_shard_state: achieved count != sweep cell count");
    for (const std::uint64_t a : state.meta.achieved)
      if (a == 0 || a > state.meta.replications)
        throw std::invalid_argument(
            "encode_shard_state: achieved replications outside (0, budget]");
  }
  if (!state.cell_rounds.empty() &&
      state.cell_rounds.size() != state.meta.cells)
    throw std::invalid_argument(
        "encode_shard_state: termination-round count != sweep cell count");
}

void put_tasks_section(Writer& w, const ShardState& state) {
  w.u64(state.tasks.size());
  w.ascending(state.tasks);
}

void put_accumulators_section(Writer& w, const ShardState& state) {
  for (const auto& p : state.partials) put_accumulator(w, p);
}

void put_cost_section(Writer& w, const ShardState& state) {
  w.u64(state.cost.cells.size());
  for (const auto& c : state.cost.cells) {
    w.u64(c.replications);
    w.f64(c.seconds);
  }
}

void put_rounds_section(Writer& w, const ShardState& state) {
  w.u64(state.rounds.size());
  for (const RoundLog& rl : state.rounds) {
    w.u64(rl.round);
    w.u64(rl.active_cells);
    w.u64(rl.tasks);
    w.u64(rl.replications);
    w.f64(rl.wall_ms);
    w.f64(rl.merge_ms);
  }
  w.u64(state.cell_rounds.size());
  w.runs(state.cell_rounds);
}

using SectionFn = void (*)(Writer&, const ShardState&);

constexpr SectionFn kSections[] = {
    [](Writer& w, const ShardState& s) { put_meta(w, s.meta); },
    put_tasks_section, put_accumulators_section, put_cost_section,
    put_rounds_section};

constexpr std::size_t kSectionCount = std::size(kSections);
constexpr const char* kSectionNames[kSectionCount] = {
    "meta", "tasks", "accumulators", "cost", "rounds"};

/// Codec telemetry: per-call totals plus per-section byte/time
/// breakdowns — the live counterpart of state_section_sizes.
struct CodecCounters {
  obs::Counter& encode_calls = obs::counter("codec.encode.calls");
  obs::Counter& encode_bytes = obs::counter("codec.encode.bytes");
  obs::Counter& encode_ns = obs::counter("codec.encode.ns");
  obs::Counter& decode_calls = obs::counter("codec.decode.calls");
  obs::Counter& decode_bytes = obs::counter("codec.decode.bytes");
  obs::Counter& decode_ns = obs::counter("codec.decode.ns");
  std::array<obs::Counter*, kSectionCount> encode_section_bytes{};
  std::array<obs::Counter*, kSectionCount> encode_section_ns{};
  std::array<obs::Counter*, kSectionCount> decode_section_bytes{};
  std::array<obs::Counter*, kSectionCount> decode_section_ns{};

  CodecCounters() {
    for (std::size_t s = 0; s < kSectionCount; ++s) {
      const std::string name = kSectionNames[s];
      encode_section_bytes[s] =
          &obs::counter("codec.encode." + name + ".bytes");
      encode_section_ns[s] = &obs::counter("codec.encode." + name + ".ns");
      decode_section_bytes[s] =
          &obs::counter("codec.decode." + name + ".bytes");
      decode_section_ns[s] = &obs::counter("codec.decode." + name + ".ns");
    }
  }

  static const CodecCounters& instance() {
    static const CodecCounters counters;
    return counters;
  }
};

std::uint64_t codec_elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

std::uint64_t sweep_fingerprint(const SweepMeta& meta) {
  std::uint64_t h = kFnvOffsetBasis;
  fnv1a_mix(h, kStateFormatVersion);
  fnv1a_mix(h, meta.preset);
  fnv1a_mix(h, meta.threat);
  fnv1a_mix(h, static_cast<std::uint64_t>(meta.policies.size()));
  for (const auto p : meta.policies)
    fnv1a_mix(h, static_cast<std::uint64_t>(p));
  fnv1a_mix(h, meta.seed);
  fnv1a_mix(h, meta.replications);
  fnv1a_mix(h, meta.replication_block);
  fnv1a_mix(h, meta.superblock);
  fnv1a_mix(h, meta.survival_bins);
  fnv1a_mix(h, std::bit_cast<std::uint64_t>(meta.horizon_hours));
  fnv1a_mix(h, meta.cells);
  // The achieved list is identity: an adaptive merge/replay must agree on
  // where every cell stopped, and a fixed-budget state (empty list) must
  // never merge with an adaptive one.
  fnv1a_mix(h, static_cast<std::uint64_t>(meta.achieved.size()));
  for (const std::uint64_t a : meta.achieved) fnv1a_mix(h, a);
  return h;
}

std::string meta_json(const SweepMeta& meta) {
  using util::json_number_exact;
  using util::json_string;
  std::string out = "{";
  out += "\"format\": \"divsec-sweep-state\"";
  out += ", \"version\": " + std::to_string(kStateFormatVersion);
  out += ", \"preset\": " + json_string(meta.preset);
  if (meta.policies.size() <= kJsonListCap) {
    std::string policies;
    for (std::size_t i = 0; i < meta.policies.size(); ++i) {
      if (i) policies += ", ";
      policies += json_string(scenario::to_string(meta.policies[i]));
    }
    out += ", \"policies\": [" + policies + "]";
  } else {
    // Elided at fleet scale: the header identifies the file; the binary
    // meta carries the full list.
    out += ", \"policy_count\": " + std::to_string(meta.policies.size());
  }
  out += ", \"threat\": " + json_string(meta.threat);
  out += ", \"seed\": " + std::to_string(meta.seed);
  out += ", \"replications\": " + std::to_string(meta.replications);
  out += ", \"replication_block\": " + std::to_string(meta.replication_block);
  out += ", \"superblock\": " + std::to_string(meta.superblock);
  out += ", \"survival_bins\": " + std::to_string(meta.survival_bins);
  out += ", \"horizon_hours\": " + json_number_exact(meta.horizon_hours);
  out += ", \"cells\": " + std::to_string(meta.cells);
  out += std::string(", \"adaptive\": ") +
         (meta.achieved.empty() ? "false" : "true");
  if (!meta.achieved.empty()) {
    if (meta.achieved.size() <= kJsonListCap) {
      out += ", \"achieved\": [";
      for (std::size_t i = 0; i < meta.achieved.size(); ++i) {
        if (i) out += ", ";
        out += std::to_string(meta.achieved[i]);
      }
      out += "]";
    } else {
      std::uint64_t total = 0;
      for (const std::uint64_t a : meta.achieved) total += a;
      out += ", \"achieved_total\": " + std::to_string(total);
    }
  }
  out += ", \"shard\": " + std::to_string(meta.shard);
  out += ", \"shard_count\": " + std::to_string(meta.shard_count);
  out += std::string(", \"merged\": ") + (meta.merged ? "true" : "false");
  out += ", \"wall_ms\": " + util::json_number(meta.wall_ms);
  out += ", \"threads\": " + std::to_string(meta.threads);
  out += ", \"fingerprint\": \"" + fingerprint_hex(sweep_fingerprint(meta));
  out += "\", \"cost_fingerprint\": \"" + fingerprint_hex(cost_fingerprint(meta));
  out += "\"}";
  return out;
}

std::string encode_shard_state(const ShardState& state) {
  const CodecCounters& counters = CodecCounters::instance();
  const auto started = std::chrono::steady_clock::now();
  validate_state(state);
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, kStateFormatVersion);
  put_str(out, meta_json(state.meta));
  for (std::size_t s = 0; s < kSectionCount; ++s) {
    const auto section_started = std::chrono::steady_clock::now();
    Writer w{.out = {}, .packed = true};
    kSections[s](w, state);
    put_var(out, w.out.size());
    out += w.out;
    counters.encode_section_bytes[s]->add(w.out.size());
    counters.encode_section_ns[s]->add(codec_elapsed_ns(section_started));
  }
  put_u64(out, fnv1a(out));
  counters.encode_calls.add(1);
  counters.encode_bytes.add(out.size());
  counters.encode_ns.add(codec_elapsed_ns(started));
  return out;
}

std::size_t uncompressed_equivalent_bytes(const ShardState& state) {
  validate_state(state);
  // Same framing, same JSON header, same content and field sequence —
  // every number just costs its fixed 8 (or 4) bytes, the way versions
  // 1–3 encoded, with u32 section length prefixes.
  std::size_t total = sizeof(kMagic) + 4;
  total += 4 + meta_json(state.meta).size();
  for (const SectionFn section : kSections) {
    Writer w{.out = {}, .packed = false};
    section(w, state);
    total += 4 + w.out.size();
  }
  return total + 8;  // trailing checksum
}

namespace {

/// Shared framing validation of decode_shard_state and
/// state_section_sizes: magic, checksum-before-anything, version (with
/// the regenerate-shards hint — old formats are never migrated, shards
/// are cheap to reproduce by construction). Returns a reader positioned
/// after the magic/version/JSON header, covering everything but the
/// trailing checksum.
Reader open_state(std::string_view bytes) {
  if (bytes.substr(0, 12) == "divsec-tasks")
    throw std::runtime_error(
        "shard state: this is a task-plan file (divsec_sweep plan output), "
        "not a shard state — pass it via --tasks instead");
  if (bytes.size() < sizeof(kMagic) + 4 + 8 ||
      bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("shard state: not a divsec sweep state file");
  const std::uint64_t stored =
      Reader(bytes.substr(bytes.size() - 8)).u64();
  if (fnv1a(bytes.substr(0, bytes.size() - 8)) != stored)
    throw std::runtime_error("shard state: checksum mismatch (file damaged)");

  Reader r(bytes.substr(0, bytes.size() - 8));
  r.skip(sizeof(kMagic));
  const std::uint32_t version = r.u32();
  if (version != kStateFormatVersion)
    throw std::runtime_error(
        "shard state: unsupported format version " + std::to_string(version) +
        " (this build reads v" + std::to_string(kStateFormatVersion) +
        ") — regenerate shards with this build's divsec_sweep");
  (void)r.str();  // the informational JSON header; binary meta is authoritative
  return r;
}

/// Reads one varint-length-prefixed section and hands a bounded reader
/// to `parse`; a section that does not consume exactly its declared
/// length is corrupt.
template <typename Parse>
void read_section(Reader& r, Parse&& parse) {
  const std::uint64_t len = r.var();
  Reader sr(r.take(static_cast<std::size_t>(len)));
  parse(sr);
  if (sr.remaining() != 0)
    throw std::runtime_error("shard state: section length mismatch");
}

}  // namespace

ShardState decode_shard_state(std::string_view bytes) {
  const CodecCounters& counters = CodecCounters::instance();
  const auto started = std::chrono::steady_clock::now();
  Reader r = open_state(bytes);
  ShardState state;
  SweepMeta& m = state.meta;

  // Per-section accounting: sections decode in kSections order, so the
  // running index lines up with kSectionNames. Bytes include the varint
  // length prefix (the section's on-wire footprint).
  std::size_t section_index = 0;
  const auto timed_section = [&](auto&& parse) {
    const std::size_t before = r.remaining();
    const auto section_started = std::chrono::steady_clock::now();
    read_section(r, parse);
    counters.decode_section_bytes[section_index]->add(before - r.remaining());
    counters.decode_section_ns[section_index]->add(
        codec_elapsed_ns(section_started));
    ++section_index;
  };

  timed_section([&](Reader& sr) { get_meta(sr, m); });

  timed_section([&](Reader& sr) {
    const std::uint64_t ntasks = sr.var();
    // Plausibility bound before reserving anything: every id costs at
    // least one byte, so a count the section cannot hold is corruption —
    // reject it rather than letting a forged count drive reserve() into
    // bad_alloc.
    if (ntasks > sr.remaining())
      throw std::runtime_error("shard state: task count exceeds input size");
    state.tasks.reserve(static_cast<std::size_t>(ntasks));
    std::uint64_t prev = 0;
    for (std::uint64_t i = 0; i < ntasks; ++i) {
      const std::uint64_t gap = sr.var();
      const std::uint64_t t = i == 0 ? gap : prev + gap;
      if (i != 0 && gap == 0)
        throw std::runtime_error(
            "shard state: task list is not strictly ascending");
      state.tasks.push_back(t);
      prev = t;
    }
  });

  timed_section([&](Reader& sr) {
    state.partials.reserve(state.tasks.size());
    for (std::size_t i = 0; i < state.tasks.size(); ++i)
      state.partials.push_back(get_accumulator(sr));
  });

  timed_section([&](Reader& sr) {
    const std::uint64_t ncost = sr.var();
    if (ncost != 0 && ncost != m.cells)
      throw std::runtime_error(
          "shard state: cost model cell count disagrees with the sweep");
    if (ncost > sr.remaining())
      throw std::runtime_error("shard state: cost section exceeds input size");
    state.cost.cells.reserve(static_cast<std::size_t>(ncost));
    for (std::uint64_t i = 0; i < ncost; ++i) {
      CellCost c;
      c.replications = sr.var();
      c.seconds = sr.varf();
      state.cost.cells.push_back(c);
    }
  });

  timed_section([&](Reader& sr) {
    const std::uint64_t nrounds = sr.var();
    if (nrounds > sr.remaining())
      throw std::runtime_error("shard state: round log exceeds input size");
    state.rounds.reserve(static_cast<std::size_t>(nrounds));
    for (std::uint64_t i = 0; i < nrounds; ++i) {
      RoundLog rl;
      rl.round = sr.var();
      rl.active_cells = sr.var();
      rl.tasks = sr.var();
      rl.replications = sr.var();
      rl.wall_ms = sr.varf();
      rl.merge_ms = sr.varf();
      state.rounds.push_back(rl);
    }
    const std::uint64_t ncr = sr.var();
    if (ncr != 0 && ncr != m.cells)
      throw std::runtime_error(
          "shard state: termination-round list disagrees with the cell count");
    state.cell_rounds = get_runs(sr, ncr);
  });

  if (r.remaining() != 0)
    throw std::runtime_error("shard state: trailing bytes after payload");
  counters.decode_calls.add(1);
  counters.decode_bytes.add(bytes.size());
  counters.decode_ns.add(codec_elapsed_ns(started));
  return state;
}

StateSectionSizes state_section_sizes(std::string_view bytes) {
  Reader r = open_state(bytes);
  StateSectionSizes sizes;
  sizes.header = r.offset();
  std::size_t* const slots[] = {&sizes.meta, &sizes.tasks,
                                &sizes.accumulators, &sizes.cost,
                                &sizes.rounds};
  for (std::size_t* slot : slots) {
    const std::size_t start = r.offset();
    const std::uint64_t len = r.var();
    r.skip(static_cast<std::size_t>(len));
    *slot = r.offset() - start;
  }
  if (r.remaining() != 0)
    throw std::runtime_error("shard state: trailing bytes after payload");
  return sizes;
}

std::string accumulator_json(const core::IndicatorAccumulator::State& state) {
  using util::json_number_exact;
  const auto online = [](const stats::OnlineStats::State& s) {
    return "{\"n\": " + std::to_string(s.n) +
           ", \"mean\": " + json_number_exact(s.mean) +
           ", \"m2\": " + json_number_exact(s.m2) +
           ", \"min\": " + json_number_exact(s.min) +
           ", \"max\": " + json_number_exact(s.max) + "}";
  };
  const auto digest = [](const stats::TDigest::State& s) {
    std::string c;
    for (std::size_t i = 0; i < s.centroids.size(); ++i) {
      if (i) c += ", ";
      c += "[" + json_number_exact(s.centroids[i].mean) + ", " +
           std::to_string(s.centroids[i].weight) + "]";
    }
    return "{\"compression\": " + json_number_exact(s.compression) +
           ", \"min\": " + json_number_exact(s.min) +
           ", \"max\": " + json_number_exact(s.max) + ", \"centroids\": [" +
           c + "]}";
  };
  const auto survival = [](const stats::StreamingSurvival::State& s) {
    std::string ev, ce;
    for (std::size_t i = 0; i < s.events_in.size(); ++i) {
      if (i) ev += ", ";
      ev += std::to_string(s.events_in[i]);
    }
    for (std::size_t i = 0; i < s.censored_in.size(); ++i) {
      if (i) ce += ", ";
      ce += std::to_string(s.censored_in[i]);
    }
    return "{\"horizon\": " + json_number_exact(s.horizon) +
           ", \"n\": " + std::to_string(s.n) +
           ", \"events\": " + std::to_string(s.events) + ", \"events_in\": [" +
           ev + "], \"censored_in\": [" + ce + "]}";
  };
  const auto curve = [](const core::RatioCurveAccumulator::State& s) {
    std::string sums;
    for (std::size_t i = 0; i < s.sums.size(); ++i) {
      if (i) sums += ", ";
      sums += std::to_string(s.sums[i]);
    }
    return "{\"horizon\": " + json_number_exact(s.horizon) +
           ", \"scale\": " + std::to_string(s.scale) +
           ", \"n\": " + std::to_string(s.n) + ", \"sums\": [" + sums + "]}";
  };
  const auto censored = [&](const stats::CensoredTimeAccumulator::State& s) {
    return "{\"moments\": " + online(s.moments) +
           ", \"censored\": " + std::to_string(s.censored) +
           ", \"times\": " + digest(s.times) +
           ", \"survival\": " + survival(s.survival) + "}";
  };
  return "{\"horizon\": " + json_number_exact(state.horizon) +
         ", \"n\": " + std::to_string(state.n) +
         ", \"successes\": " + std::to_string(state.successes) +
         ", \"tta\": " + censored(state.tta) +
         ", \"ttsf\": " + censored(state.ttsf) +
         ", \"final_ratio\": " + online(state.final_ratio) +
         ", \"curve\": " + curve(state.curve) + "}";
}

void write_shard_state(const std::string& path, const ShardState& state) {
  const std::string bytes = encode_shard_state(state);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const int close_result = std::fclose(f);  // unconditionally: no fd leak
  if (written != bytes.size() || close_result != 0)
    throw std::runtime_error("short write: " + path);
}

ShardState read_shard_state(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw std::runtime_error("cannot open: " + path);
  std::string bytes;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) throw std::runtime_error("read error: " + path);
  return decode_shard_state(bytes);
}

}  // namespace divsec::dist
