// fnv.h — FNV-1a hashing shared by the dist:: codecs and fingerprints.
//
// sweep_fingerprint (state_codec) and cost_fingerprint (cost_model) must
// mix fields identically for their compatibility contracts to hold, so
// the mixing primitives live in exactly one place.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace divsec::dist {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xCBF29CE484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x00000100000001B3ULL;

/// FNV-1a over raw bytes (the whole-file checksum).
[[nodiscard]] inline std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = kFnvOffsetBasis;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// Mix a little-endian u64 into a running hash.
inline void fnv1a_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
}

/// Mix a length-prefixed string into a running hash.
inline void fnv1a_mix(std::uint64_t& h, const std::string& s) {
  fnv1a_mix(h, static_cast<std::uint64_t>(s.size()));
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
}

}  // namespace divsec::dist
