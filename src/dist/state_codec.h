// state_codec.h — versioned, portable serialization of sweep shard state.
//
// A distributed sweep runs as N independent OS processes, each reducing
// its assigned superblock tasks into core::IndicatorAccumulator partials
// (sim/shard_plan.h). This codec is how those partials cross the process
// boundary: a shard-state file carries the sweep's identity (everything
// the exact reducer must validate before merging), the task range, and
// the raw accumulator states.
//
// Format (version 3), all integers little-endian, doubles as IEEE-754
// bit patterns:
//   magic "DVSWEEPS" | u32 version
//   u32 json_len | meta rendered as JSON  (informational header: `head -2
//     file.state` and `divsec_sweep inspect` are enough to see what a
//     file is; the merge reducer never parses it)
//   binary meta (authoritative; includes the per-cell achieved-replication
//     list — empty for fixed-budget sweeps, part of the identity)
//   u64 ntasks | ntasks × u64 task id (strictly ascending)
//   one accumulator blob per task, in list order
//   u64 ncost | ncost × (u64 replications | f64 seconds)  — the per-cell
//     cost model measured while the shard ran (dist/cost_model.h);
//     ncost is 0 (no measurements) or the sweep's cell count
//   u64 nrounds | nrounds × RoundLog — the adaptive coordinator's round
//     log (empty for fixed-budget sweeps; provenance, not identity)
//   u64 ncellrounds | per-cell termination round (0 or cells entries)
//   u64 FNV-1a checksum of every preceding byte
// Version 2 replaced version 1's contiguous [task_begin, task_end) range
// with the explicit task-id list (cost-weighted LPT plans assign
// non-contiguous sets) and appended the cost section; version 3 added the
// adaptive sections (achieved counts, round log, termination rounds).
// Older versions are rejected — regenerate shards, they are cheap by
// construction.
//
// Guarantees:
//   * exact round-trip — decode(encode(s)) restores every accumulator
//     bit for bit, and encode(decode(bytes)) == bytes (byte-stable);
//   * portability — no struct dumps, no host endianness, no padding;
//   * integrity — truncation, magic/version mismatch, checksum damage,
//     and structurally corrupt accumulator state all throw.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/indicator_accumulator.h"
#include "dist/cost_model.h"
#include "scenario/scenario_builder.h"

namespace divsec::dist {

/// Codec version of the shard-state format. Bump on any layout change;
/// decode rejects versions it does not speak. v2: explicit task-id lists
/// (elastic shard plans) + embedded per-cell cost model. v3: adaptive
/// sweeps — per-cell achieved-replication counts in the meta (identity),
/// round log + termination rounds appended (provenance).
inline constexpr std::uint32_t kStateFormatVersion = 3;

/// Everything that identifies a sweep (what must match for partials to
/// be mergeable) plus per-shard provenance (which shard, how long it
/// took — carried for reporting, excluded from the identity).
struct SweepMeta {
  // -- sweep identity: covered by sweep_fingerprint() -----------------
  std::string preset;                             // scenario preset name
  std::vector<scenario::VariantPolicy> policies;  // one sweep cell each
  std::string threat;                             // threat profile name
  std::uint64_t seed = 0;
  std::uint64_t replications = 0;
  std::uint64_t replication_block = 0;  // resolved, > 0
  std::uint64_t superblock = 0;         // resolved, > 0
  std::uint64_t survival_bins = 0;
  double horizon_hours = 0.0;
  std::uint64_t cells = 0;
  /// Per-cell achieved replication counts of an adaptive sweep — the
  /// reproducibility record: cell c's accumulators cover exactly
  /// achieved[c] replications, i.e. its first ceil(achieved[c] /
  /// superblock) superblock tasks. Empty for fixed-budget sweeps (every
  /// cell covers `replications`). Non-empty lists are part of the
  /// identity: a merge/replay must agree on where every cell stopped, so
  /// the fingerprint covers them. Each entry is in (0, replications].
  std::vector<std::uint64_t> achieved;

  // -- per-file provenance: not part of the identity ------------------
  std::uint64_t shard = 0;
  std::uint64_t shard_count = 1;
  bool merged = false;  // true for the reducer's merged-state output
  double wall_ms = 0.0;
  std::uint32_t threads = 1;
};

/// FNV-1a hash of the identity fields (format version included): two
/// shard states merge only when their fingerprints agree.
[[nodiscard]] std::uint64_t sweep_fingerprint(const SweepMeta& meta);

/// One shard's serialized payload: the accumulator partial of every task
/// in `tasks` (strictly ascending task ids — contiguous for the balanced
/// `--shard i/K` split, arbitrary for a cost-weighted `--tasks` list),
/// plus the per-cell cost measured while the shard ran. For merged
/// states (meta.merged) the "tasks" are the per-cell merged accumulators
/// and the list is [0, cells).
/// One round of an adaptive coordinator run (dist::run_adaptive):
/// wall-clock bookkeeping carried on the merged state so `inspect` can
/// show where the budget went. Provenance only — never part of the
/// identity; the reproducibility contract is SweepMeta::achieved.
struct RoundLog {
  std::uint64_t round = 0;         // 1-based
  std::uint64_t active_cells = 0;  // cells still unconverged this round
  std::uint64_t tasks = 0;         // superblock tasks dealt this round
  std::uint64_t replications = 0;  // replications folded this round
  double wall_ms = 0.0;            // slowest shard's wall time
  double merge_ms = 0.0;           // coordinator decode+fold time
};

struct ShardState {
  SweepMeta meta;
  std::vector<std::uint64_t> tasks;
  std::vector<core::IndicatorAccumulator::State> partials;  // one per task
  CostModel cost;
  /// Adaptive provenance (both empty for fixed-budget sweeps):
  /// the coordinator's round log, and each cell's termination round
  /// (1-based; 0 or cells entries).
  std::vector<RoundLog> rounds;
  std::vector<std::uint64_t> cell_rounds;
};

/// Serialize to the versioned byte format. Deterministic: equal states
/// encode to equal bytes.
[[nodiscard]] std::string encode_shard_state(const ShardState& state);

/// Parse and validate (magic, version, checksum, structural bounds).
/// Throws std::runtime_error on corrupt or foreign bytes.
[[nodiscard]] ShardState decode_shard_state(std::string_view bytes);

/// The JSON rendering of a meta block (the embedded header).
[[nodiscard]] std::string meta_json(const SweepMeta& meta);

/// Exact JSON dump of one accumulator state (doubles at full %.17g
/// round-trip precision) — the human-readable side of the codec, used by
/// `divsec_sweep inspect`.
[[nodiscard]] std::string accumulator_json(
    const core::IndicatorAccumulator::State& state);

/// File I/O shims; throw std::runtime_error on I/O failure.
void write_shard_state(const std::string& path, const ShardState& state);
[[nodiscard]] ShardState read_shard_state(const std::string& path);

}  // namespace divsec::dist
