// state_codec.h — versioned, portable serialization of sweep shard state.
//
// A distributed sweep runs as N independent OS processes, each reducing
// its assigned superblock tasks into core::IndicatorAccumulator partials
// (sim/shard_plan.h). This codec is how those partials cross the process
// boundary: a shard-state file carries the sweep's identity (everything
// the exact reducer must validate before merging), the task range, and
// the raw accumulator states.
//
// Format (version 4), all integers little-endian:
//   magic "DVSWEEPS" | u32 version
//   u32 json_len | meta rendered as JSON  (informational header: `head -2
//     file.state` and `divsec_sweep inspect` are enough to see what a
//     file is; the merge reducer never parses it. Per-cell lists are
//     elided above 64 cells so the header stays O(1) at fleet scale.)
//   five length-prefixed sections (varint length, then payload):
//     meta          — authoritative binary meta, varint-packed; includes
//                     the per-cell achieved-replication list (run-length
//                     coded — empty for fixed-budget sweeps, identity)
//     tasks         — task-id list, delta + varint (strictly ascending)
//     accumulators  — one packed accumulator blob per task, in order
//     cost          — per-cell cost model (dist/cost_model.h); 0 or
//                     `cells` entries
//     rounds        — adaptive round log + per-cell termination rounds
//                     (provenance, not identity)
//   u64 FNV-1a checksum of every preceding byte (fixed-width)
//
// v4 packed primitives: LEB128 varints for integers; "varf64" for
// doubles (varint of the byte-swapped IEEE-754 bit pattern — clean
// values like a 2160-hour horizon or a zeroed moment cost 1–3 bytes,
// noisy ones at most 10); zero-run-length coding for sparse count
// arrays (survival bins); zigzag-delta coding for the monotone curve
// sums; value-run-length coding for the flat achieved/termination
// lists. Together these make shard files ≥ 4× smaller than the
// fixed-width equivalent at 10^4 cells (uncompressed_equivalent_bytes
// computes that baseline; `divsec_sweep inspect` and the bench_e5 codec
// phase gate on it), which is what keeps adaptive coordinator-round
// flushes cheap.
//
// Version 2 replaced version 1's contiguous [task_begin, task_end) range
// with the explicit task-id list; version 3 added the adaptive sections;
// version 4 replaced the P² sketch blobs with t-digest centroids, added
// the compromised-ratio curve section of each accumulator, and switched
// the payload to the packed encoding above. Older versions are rejected
// with a "regenerate shards" error — shards are cheap by construction.
//
// Guarantees:
//   * exact round-trip — decode(encode(s)) restores every accumulator
//     bit for bit, and encode(decode(bytes)) == bytes (byte-stable);
//   * portability — no struct dumps, no host endianness, no padding;
//   * integrity — truncation (at any section boundary or inside one),
//     magic/version mismatch, checksum damage, section-length
//     inconsistencies, and structurally corrupt accumulator state all
//     throw.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/indicator_accumulator.h"
#include "dist/cost_model.h"
#include "scenario/scenario_builder.h"

namespace divsec::dist {

/// Codec version of the shard-state format. Bump on any layout change;
/// decode rejects versions it does not speak. v2: explicit task-id lists
/// (elastic shard plans) + embedded per-cell cost model. v3: adaptive
/// sweeps — per-cell achieved-replication counts in the meta (identity),
/// round log + termination rounds appended (provenance). v4: t-digest
/// sketches + ratio-curve accumulators, varint/delta/run-length packed
/// sections behind the same framing.
inline constexpr std::uint32_t kStateFormatVersion = 4;

/// Everything that identifies a sweep (what must match for partials to
/// be mergeable) plus per-shard provenance (which shard, how long it
/// took — carried for reporting, excluded from the identity).
struct SweepMeta {
  // -- sweep identity: covered by sweep_fingerprint() -----------------
  std::string preset;                             // scenario preset name
  std::vector<scenario::VariantPolicy> policies;  // one sweep cell each
  std::string threat;                             // threat profile name
  std::uint64_t seed = 0;
  std::uint64_t replications = 0;
  std::uint64_t replication_block = 0;  // resolved, > 0
  std::uint64_t superblock = 0;         // resolved, > 0
  std::uint64_t survival_bins = 0;
  double horizon_hours = 0.0;
  std::uint64_t cells = 0;
  /// Per-cell achieved replication counts of an adaptive sweep — the
  /// reproducibility record: cell c's accumulators cover exactly
  /// achieved[c] replications, i.e. its first ceil(achieved[c] /
  /// superblock) superblock tasks. Empty for fixed-budget sweeps (every
  /// cell covers `replications`). Non-empty lists are part of the
  /// identity: a merge/replay must agree on where every cell stopped, so
  /// the fingerprint covers them. Each entry is in (0, replications].
  std::vector<std::uint64_t> achieved;

  // -- per-file provenance: not part of the identity ------------------
  std::uint64_t shard = 0;
  std::uint64_t shard_count = 1;
  bool merged = false;  // true for the reducer's merged-state output
  double wall_ms = 0.0;
  std::uint32_t threads = 1;
};

/// FNV-1a hash of the identity fields (format version included): two
/// shard states merge only when their fingerprints agree.
[[nodiscard]] std::uint64_t sweep_fingerprint(const SweepMeta& meta);

/// One shard's serialized payload: the accumulator partial of every task
/// in `tasks` (strictly ascending task ids — contiguous for the balanced
/// `--shard i/K` split, arbitrary for a cost-weighted `--tasks` list),
/// plus the per-cell cost measured while the shard ran. For merged
/// states (meta.merged) the "tasks" are the per-cell merged accumulators
/// and the list is [0, cells).
/// One round of an adaptive coordinator run (dist::run_adaptive):
/// wall-clock bookkeeping carried on the merged state so `inspect` can
/// show where the budget went. Provenance only — never part of the
/// identity; the reproducibility contract is SweepMeta::achieved.
struct RoundLog {
  std::uint64_t round = 0;         // 1-based
  std::uint64_t active_cells = 0;  // cells still unconverged this round
  std::uint64_t tasks = 0;         // superblock tasks dealt this round
  std::uint64_t replications = 0;  // replications folded this round
  double wall_ms = 0.0;            // slowest shard's wall time
  double merge_ms = 0.0;           // coordinator decode+fold time
};

struct ShardState {
  SweepMeta meta;
  std::vector<std::uint64_t> tasks;
  std::vector<core::IndicatorAccumulator::State> partials;  // one per task
  CostModel cost;
  /// Adaptive provenance (both empty for fixed-budget sweeps):
  /// the coordinator's round log, and each cell's termination round
  /// (1-based; 0 or cells entries).
  std::vector<RoundLog> rounds;
  std::vector<std::uint64_t> cell_rounds;
};

/// Serialize to the versioned byte format. Deterministic: equal states
/// encode to equal bytes.
[[nodiscard]] std::string encode_shard_state(const ShardState& state);

/// Parse and validate (magic, version, checksum, structural bounds).
/// Throws std::runtime_error on corrupt or foreign bytes.
[[nodiscard]] ShardState decode_shard_state(std::string_view bytes);

/// The JSON rendering of a meta block (the embedded header). Per-cell
/// lists (policies, achieved) are elided above 64 cells — the binary
/// meta stays authoritative; the header only has to identify the file.
[[nodiscard]] std::string meta_json(const SweepMeta& meta);

/// Byte sizes of a v4 file's framing and sections, read from the
/// length prefixes without decoding the payloads (the checksum, magic
/// and version are still validated). `divsec_sweep inspect` prints
/// these so codec-size regressions are visible from the CLI.
struct StateSectionSizes {
  std::size_t header = 0;  // magic + version + JSON info header
  std::size_t meta = 0;    // length prefix + payload, like every section
  std::size_t tasks = 0;
  std::size_t accumulators = 0;
  std::size_t cost = 0;
  std::size_t rounds = 0;  // round log + termination rounds
  std::size_t checksum = 8;

  [[nodiscard]] std::size_t total() const noexcept {
    return header + meta + tasks + accumulators + cost + rounds + checksum;
  }
};
[[nodiscard]] StateSectionSizes state_section_sizes(std::string_view bytes);

/// Size of the same state in the fixed-width (pre-v4, 8-bytes-per-number)
/// encoding — the "uncompressed equivalent" the v4 compression ratio is
/// measured against (inspect's breakdown, the bench_e5 codec gate).
[[nodiscard]] std::size_t uncompressed_equivalent_bytes(const ShardState& state);

/// Exact JSON dump of one accumulator state (doubles at full %.17g
/// round-trip precision) — the human-readable side of the codec, used by
/// `divsec_sweep inspect`.
[[nodiscard]] std::string accumulator_json(
    const core::IndicatorAccumulator::State& state);

/// File I/O shims; throw std::runtime_error on I/O failure.
void write_shard_state(const std::string& path, const ShardState& state);
[[nodiscard]] ShardState read_shard_state(const std::string& path);

}  // namespace divsec::dist
