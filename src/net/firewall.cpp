#include "net/firewall.h"

namespace divsec::net {

bool Firewall::allows(Zone from, Zone to, Channel channel) const noexcept {
  if (from == to) return true;
  for (const auto& r : rules_) {
    const bool from_ok = !r.from.has_value() || *r.from == from;
    const bool to_ok = !r.to.has_value() || *r.to == to;
    const bool ch_ok = !r.channel.has_value() || *r.channel == channel;
    if (from_ok && to_ok && ch_ok) return r.action == Action::kAllow;
  }
  return default_action_ == Action::kAllow;
}

Firewall Firewall::permissive() { return Firewall(Action::kAllow); }

Firewall Firewall::segmented_ics() {
  Firewall fw(Action::kDeny);
  fw.add_rule({Zone::kCorporate, Zone::kDmz, Channel::kHttp, Action::kAllow,
               "corporate web access to DMZ"});
  fw.add_rule({Zone::kDmz, Zone::kCorporate, Channel::kHttp, Action::kAllow,
               "DMZ replies / reporting"});
  fw.add_rule({Zone::kDmz, Zone::kControl, Channel::kHttp, Action::kAllow,
               "historian replication"});
  fw.add_rule({Zone::kControl, Zone::kDmz, Channel::kHttp, Action::kAllow,
               "historian push"});
  fw.add_rule({Zone::kControl, Zone::kField, Channel::kModbus, Action::kAllow,
               "SCADA polling of PLCs"});
  fw.add_rule({Zone::kField, Zone::kControl, Channel::kModbus, Action::kAllow,
               "PLC responses"});
  fw.add_rule({Zone::kControl, Zone::kField, Channel::kProjectFile, Action::kAllow,
               "engineering downloads"});
  return fw;
}

}  // namespace divsec::net
