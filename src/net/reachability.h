// reachability.h — attack-surface graph queries over Topology + Firewall.
//
// Computes which node pairs can exchange traffic on a channel (link +
// policy), and shortest attack paths (fewest hops) from an entry node to
// a target — the skeleton the campaign simulator and the attack-tree
// generator walk. USB is special-cased: it needs no link, only mutual
// removable-media exposure, which is how Stuxnet crossed the air gap.
#pragma once

#include <optional>
#include <vector>

#include "net/firewall.h"
#include "net/topology.h"

namespace divsec::net {

/// True if `channel` traffic from node a can reach node b directly.
[[nodiscard]] bool can_reach(const Topology& topo, const Firewall& fw, NodeId a,
                             NodeId b, Channel channel);

/// Directed adjacency per channel set: edges[i] lists nodes reachable from
/// node i over ANY of the given channels.
[[nodiscard]] std::vector<std::vector<NodeId>> reachability_graph(
    const Topology& topo, const Firewall& fw, const std::vector<Channel>& channels);

/// Shortest path (fewest hops) from `from` to `to` over the channels, or
/// nullopt when unreachable. The path includes both endpoints.
[[nodiscard]] std::optional<std::vector<NodeId>> shortest_attack_path(
    const Topology& topo, const Firewall& fw, NodeId from, NodeId to,
    const std::vector<Channel>& channels);

/// Minimum number of node compromises needed to reach every node in
/// `targets` starting from `entry` (size of the union of shortest paths;
/// a cheap upper-bound proxy used by placement heuristics).
[[nodiscard]] std::size_t attack_surface_size(const Topology& topo, const Firewall& fw,
                                              NodeId entry,
                                              const std::vector<NodeId>& targets,
                                              const std::vector<Channel>& channels);

}  // namespace divsec::net
