#include "net/topology.h"

#include <algorithm>
#include <stdexcept>

namespace divsec::net {

const char* to_string(Zone z) noexcept {
  switch (z) {
    case Zone::kCorporate: return "corporate";
    case Zone::kDmz: return "dmz";
    case Zone::kControl: return "control";
    case Zone::kField: return "field";
  }
  return "?";
}

const char* to_string(Role r) noexcept {
  switch (r) {
    case Role::kWorkstation: return "workstation";
    case Role::kServer: return "server";
    case Role::kScadaServer: return "scada-server";
    case Role::kEngineering: return "engineering";
    case Role::kHmi: return "hmi";
    case Role::kHistorian: return "historian";
    case Role::kPlc: return "plc";
    case Role::kSensorGateway: return "sensor-gateway";
  }
  return "?";
}

const char* to_string(Channel c) noexcept {
  switch (c) {
    case Channel::kUsb: return "usb";
    case Channel::kSmbShare: return "smb";
    case Channel::kPrintSpooler: return "spooler";
    case Channel::kProjectFile: return "project-file";
    case Channel::kModbus: return "modbus";
    case Channel::kHttp: return "http";
  }
  return "?";
}

NodeId Topology::add_node(std::string name, Zone zone, Role role, bool usb_exposure) {
  if (name.empty()) throw std::invalid_argument("add_node: empty name");
  const NodeId id = nodes_.size();
  if (!name_index_.emplace(name, id).second)
    throw std::invalid_argument("add_node: duplicate node name '" + name + "'");
  nodes_.push_back(Node{std::move(name), zone, role, usb_exposure});
  adjacency_.emplace_back();
  return id;
}

void Topology::reserve(std::size_t nodes) {
  nodes_.reserve(nodes);
  adjacency_.reserve(nodes);
  name_index_.reserve(nodes);
}

void Topology::connect(NodeId a, NodeId b) {
  if (a >= nodes_.size() || b >= nodes_.size())
    throw std::out_of_range("connect: invalid node id");
  if (a == b) throw std::invalid_argument("connect: self-link rejected");
  if (linked(a, b)) return;  // idempotent
  links_.push_back(Link{a, b});
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
}

bool Topology::linked(NodeId a, NodeId b) const {
  if (a >= nodes_.size() || b >= nodes_.size())
    throw std::out_of_range("linked: invalid node id");
  const auto& adj = adjacency_[a];
  return std::find(adj.begin(), adj.end(), b) != adj.end();
}

NodeId Topology::node_by_name(const std::string& name) const {
  const auto it = name_index_.find(name);
  if (it == name_index_.end())
    throw std::out_of_range("node_by_name: no node named '" + name + "'");
  return it->second;
}

std::vector<NodeId> Topology::nodes_with_role(Role r) const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].role == r) out.push_back(i);
  return out;
}

std::vector<NodeId> Topology::nodes_in_zone(Zone z) const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].zone == z) out.push_back(i);
  return out;
}

}  // namespace divsec::net
