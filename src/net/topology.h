// topology.h — ICS network model: nodes, security zones, links, channels.
//
// Models the classic Purdue-style segmentation of a monitoring & control
// network: corporate IT, DMZ, control (SCADA servers, engineering
// workstations, HMIs) and field (PLCs, RTUs). Malware propagation (the
// paper's "network propagation" stage) moves across links subject to the
// firewall policy (firewall.h) and per-channel constraints; USB is the
// air-gap-crossing channel Stuxnet is famous for and is modelled as a
// linkless channel between nodes flagged with removable-media exposure.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace divsec::net {

using NodeId = std::size_t;

/// Security zone (Purdue-ish level).
enum class Zone : std::uint8_t { kCorporate, kDmz, kControl, kField };

inline constexpr std::size_t kZoneCount = 4;
static_assert(static_cast<std::size_t>(Zone::kField) + 1 == kZoneCount,
              "update kZoneCount when adding Zone enumerators");

[[nodiscard]] const char* to_string(Zone z) noexcept;

/// Functional role of a node; used by attack targeting and the SCADA
/// binding (a PLC node hosts PLC firmware, an HMI node hosts HMI software).
enum class Role : std::uint8_t {
  kWorkstation,      // office PC
  kServer,           // generic IT server
  kScadaServer,      // SCADA master / data acquisition
  kEngineering,      // engineering workstation (PLC programming)
  kHmi,              // operator console
  kHistorian,        // time-series archive
  kPlc,              // programmable logic controller
  kSensorGateway,    // field I/O concentrator
};

[[nodiscard]] const char* to_string(Role r) noexcept;

/// Propagation / communication channel.
enum class Channel : std::uint8_t {
  kUsb,           // removable media (human-carried; crosses air gaps)
  kSmbShare,      // network shares
  kPrintSpooler,  // the MS10-061-style spooler path
  kProjectFile,   // infected PLC project files (engineering tools)
  kModbus,        // control protocol traffic
  kHttp,          // generic IT traffic / C2
};

inline constexpr std::size_t kChannelCount = 6;
static_assert(static_cast<std::size_t>(Channel::kHttp) + 1 == kChannelCount,
              "update kChannelCount when adding Channel enumerators");

[[nodiscard]] const char* to_string(Channel c) noexcept;

struct Node {
  std::string name;
  Zone zone = Zone::kCorporate;
  Role role = Role::kWorkstation;
  /// Whether operators plug removable media into this node.
  bool usb_exposure = false;
};

struct Link {
  NodeId a = 0;
  NodeId b = 0;
};

/// Undirected multigraph of nodes and links. Value type; cheap to copy.
class Topology {
 public:
  NodeId add_node(std::string name, Zone zone, Role role, bool usb_exposure = false);

  /// Pre-size internal storage for `nodes` nodes (fleet generation).
  void reserve(std::size_t nodes);

  /// Undirected link; both endpoints must exist; self-links are rejected.
  void connect(NodeId a, NodeId b);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const noexcept { return links_.size(); }
  [[nodiscard]] const Node& node(NodeId n) const { return nodes_.at(n); }
  [[nodiscard]] const std::vector<Link>& links() const noexcept { return links_; }

  [[nodiscard]] const std::vector<NodeId>& neighbors(NodeId n) const {
    return adjacency_.at(n);
  }

  [[nodiscard]] bool linked(NodeId a, NodeId b) const;

  /// Find a node by name; throws std::out_of_range if absent.
  [[nodiscard]] NodeId node_by_name(const std::string& name) const;

  /// All nodes with the given role.
  [[nodiscard]] std::vector<NodeId> nodes_with_role(Role r) const;

  /// All nodes in the given zone.
  [[nodiscard]] std::vector<NodeId> nodes_in_zone(Zone z) const;

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<NodeId>> adjacency_;
  std::unordered_map<std::string, NodeId> name_index_;  // O(1) name lookup
};

}  // namespace divsec::net
