#include "net/reachability_index.h"

#include <algorithm>
#include <bit>

namespace divsec::net {

namespace {

inline void set_row_bit(std::uint64_t* row, NodeId b) noexcept {
  row[b / 64] |= std::uint64_t{1} << (b % 64);
}

}  // namespace

ReachabilityIndex::ReachabilityIndex(const Topology& topo, const Firewall& fw)
    : n_(topo.node_count()), words_((topo.node_count() + 63) / 64) {
  linked_bits_.assign(n_ * words_, 0);
  for (const Link& l : topo.links()) {
    set_row_bit(linked_bits_.data() + l.a * words_, l.b);
    set_row_bit(linked_bits_.data() + l.b * words_, l.a);
  }

  // Policy is a pure (zone, zone, channel) relation: evaluate the rule
  // list once per triple instead of once per node pair.
  bool allow[kZoneCount][kZoneCount][kChannelCount];
  for (std::size_t za = 0; za < kZoneCount; ++za)
    for (std::size_t zb = 0; zb < kZoneCount; ++zb)
      for (std::size_t ch = 0; ch < kChannelCount; ++ch)
        allow[za][zb][ch] = fw.allows(static_cast<Zone>(za), static_cast<Zone>(zb),
                                      static_cast<Channel>(ch));

  // Per-channel destination masks: zone_ok[ch][za] marks every node b a
  // source in zone za may address on channel ch; usb_mask marks every
  // node with removable-media exposure.
  std::array<std::array<std::vector<std::uint64_t>, kZoneCount>, kChannelCount>
      zone_ok;
  for (auto& per_zone : zone_ok)
    for (auto& mask : per_zone) mask.assign(words_, 0);
  std::vector<std::uint64_t> usb_mask(words_, 0);
  for (NodeId b = 0; b < n_; ++b) {
    const Node& node = topo.node(b);
    if (node.usb_exposure) set_row_bit(usb_mask.data(), b);
    for (std::size_t ch = 0; ch < kChannelCount; ++ch)
      for (std::size_t za = 0; za < kZoneCount; ++za)
        if (allow[za][static_cast<std::size_t>(node.zone)][ch])
          set_row_bit(zone_ok[ch][za].data(), b);
  }

  for (std::size_t ch = 0; ch < kChannelCount; ++ch) {
    auto& rows = reach_[ch];
    rows.assign(n_ * words_, 0);
    const bool is_usb = static_cast<Channel>(ch) == Channel::kUsb;
    for (NodeId a = 0; a < n_; ++a) {
      std::uint64_t* row = rows.data() + a * words_;
      if (is_usb) {
        // Removable media travel with operators, not over links.
        if (!topo.node(a).usb_exposure) continue;
        for (std::size_t w = 0; w < words_; ++w) row[w] = usb_mask[w];
      } else {
        const auto& ok = zone_ok[ch][static_cast<std::size_t>(topo.node(a).zone)];
        const std::uint64_t* lnk = linked_bits_.data() + a * words_;
        for (std::size_t w = 0; w < words_; ++w) row[w] = lnk[w] & ok[w];
      }
      row[a / 64] &= ~(std::uint64_t{1} << (a % 64));  // never self-reach
    }
  }

  // Scan / tunnel target lists: the same relations as flat CSR lists,
  // the sampling substrate of the campaign kernel's thinned worm scan.
  // `word(a, w)` yields word w of source a's row of the relation.
  const auto build_csr = [this](TargetCsr& csr, auto&& word) {
    csr.off.assign(n_ + 1, 0);
    for (NodeId a = 0; a < n_; ++a) {
      std::uint32_t count = 0;
      for (std::size_t w = 0; w < words_; ++w)
        count += static_cast<std::uint32_t>(std::popcount(word(a, w)));
      csr.off[a + 1] = csr.off[a] + count;
    }
    csr.tgt.resize(csr.off[n_]);
    for (NodeId a = 0; a < n_; ++a) {
      std::uint32_t* out = csr.tgt.data() + csr.off[a];
      for (std::size_t w = 0; w < words_; ++w) {
        std::uint64_t bits = word(a, w);
        while (bits) {
          *out++ = static_cast<std::uint32_t>(
              w * 64 + static_cast<std::size_t>(std::countr_zero(bits)));
          bits &= bits - 1;
        }
      }
    }
  };
  for (std::size_t ch = 0; ch < kChannelCount; ++ch) {
    const std::vector<std::uint64_t>& rows = reach_[ch];
    build_csr(scan_[ch],
              [&](NodeId a, std::size_t w) { return rows[a * words_ + w]; });
    if (static_cast<Channel>(ch) == Channel::kUsb) {
      tunnel_[ch].off.assign(n_ + 1, 0);  // no tunnelling on removable media
    } else {
      build_csr(tunnel_[ch], [&](NodeId a, std::size_t w) {
        return linked_bits_[a * words_ + w] & ~rows[a * words_ + w];
      });
    }
  }
}

std::vector<std::vector<NodeId>> ReachabilityIndex::union_graph(
    const std::vector<Channel>& channels) const {
  std::vector<std::vector<NodeId>> out(n_);
  std::vector<std::uint64_t> row(words_);
  for (NodeId a = 0; a < n_; ++a) {
    row.assign(words_, 0);
    for (Channel c : channels) {
      const std::uint64_t* r = reach_[static_cast<std::size_t>(c)].data() + a * words_;
      for (std::size_t w = 0; w < words_; ++w) row[w] |= r[w];
    }
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t bits = row[w];
      while (bits) {
        out[a].push_back(w * 64 + static_cast<std::size_t>(std::countr_zero(bits)));
        bits &= bits - 1;
      }
    }
  }
  return out;
}

ReachabilityIndex::UnionInCsr ReachabilityIndex::union_in_csr(
    const std::vector<Channel>& channels) const {
  // Two passes over the union rows: count in-degrees, prefix-sum, fill.
  // Iterating sources in ascending order makes every destination's
  // source list ascending — the same lists union_graph inverts to.
  UnionInCsr csr;
  csr.off.assign(n_ + 1, 0);
  std::vector<std::uint64_t> row(words_);
  const auto union_row = [&](NodeId a) {
    std::fill(row.begin(), row.end(), 0);
    for (Channel c : channels) {
      const std::uint64_t* r =
          reach_[static_cast<std::size_t>(c)].data() + a * words_;
      for (std::size_t w = 0; w < words_; ++w) row[w] |= r[w];
    }
  };
  for (NodeId a = 0; a < n_; ++a) {
    union_row(a);
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t bits = row[w];
      while (bits) {
        ++csr.off[w * 64 + static_cast<std::size_t>(std::countr_zero(bits)) + 1];
        bits &= bits - 1;
      }
    }
  }
  for (std::size_t i = 0; i < n_; ++i) csr.off[i + 1] += csr.off[i];
  csr.edge.resize(csr.off[n_]);
  std::vector<std::size_t> cursor(csr.off.begin(), csr.off.end() - 1);
  for (NodeId a = 0; a < n_; ++a) {
    union_row(a);
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t bits = row[w];
      while (bits) {
        const std::size_t b =
            w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
        csr.edge[cursor[b]++] = a;
        bits &= bits - 1;
      }
    }
  }
  return csr;
}

ReachabilityIndex::StructuralKey ReachabilityIndex::structural_key(
    const Topology& topo, const Firewall& fw) {
  StructuralKey key;
  key.node_count = topo.node_count();
  key.nodes.reserve(key.node_count);
  for (NodeId i = 0; i < key.node_count; ++i) {
    const Node& node = topo.node(i);
    key.nodes.push_back(static_cast<std::uint8_t>(
        static_cast<std::uint8_t>(node.zone) |
        (node.usb_exposure ? 0x80u : 0u)));
  }
  key.links.reserve(topo.links().size());
  for (const Link& l : topo.links())
    key.links.emplace_back(std::min(l.a, l.b), std::max(l.a, l.b));
  std::sort(key.links.begin(), key.links.end());
  key.links.erase(std::unique(key.links.begin(), key.links.end()),
                  key.links.end());
  std::size_t i = 0;
  for (std::size_t za = 0; za < kZoneCount; ++za)
    for (std::size_t zb = 0; zb < kZoneCount; ++zb)
      for (std::size_t ch = 0; ch < kChannelCount; ++ch)
        key.allow[i++] = fw.allows(static_cast<Zone>(za), static_cast<Zone>(zb),
                                   static_cast<Channel>(ch));
  return key;
}

std::uint64_t ReachabilityIndex::StructuralKey::fingerprint() const noexcept {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(node_count);
  for (std::uint8_t b : nodes) mix(b);
  for (const auto& [a, b] : links) {
    mix(a);
    mix(b);
  }
  for (bool v : allow) mix(v ? 1 : 0);
  return h;
}

}  // namespace divsec::net
