#include "net/reachability_index.h"

#include <bit>

namespace divsec::net {

namespace {

inline void set_row_bit(std::uint64_t* row, NodeId b) noexcept {
  row[b / 64] |= std::uint64_t{1} << (b % 64);
}

}  // namespace

ReachabilityIndex::ReachabilityIndex(const Topology& topo, const Firewall& fw)
    : n_(topo.node_count()), words_((topo.node_count() + 63) / 64) {
  linked_bits_.assign(n_ * words_, 0);
  for (const Link& l : topo.links()) {
    set_row_bit(linked_bits_.data() + l.a * words_, l.b);
    set_row_bit(linked_bits_.data() + l.b * words_, l.a);
  }

  // Policy is a pure (zone, zone, channel) relation: evaluate the rule
  // list once per triple instead of once per node pair.
  bool allow[kZoneCount][kZoneCount][kChannelCount];
  for (std::size_t za = 0; za < kZoneCount; ++za)
    for (std::size_t zb = 0; zb < kZoneCount; ++zb)
      for (std::size_t ch = 0; ch < kChannelCount; ++ch)
        allow[za][zb][ch] = fw.allows(static_cast<Zone>(za), static_cast<Zone>(zb),
                                      static_cast<Channel>(ch));

  // Per-channel destination masks: zone_ok[ch][za] marks every node b a
  // source in zone za may address on channel ch; usb_mask marks every
  // node with removable-media exposure.
  std::array<std::array<std::vector<std::uint64_t>, kZoneCount>, kChannelCount>
      zone_ok;
  for (auto& per_zone : zone_ok)
    for (auto& mask : per_zone) mask.assign(words_, 0);
  std::vector<std::uint64_t> usb_mask(words_, 0);
  for (NodeId b = 0; b < n_; ++b) {
    const Node& node = topo.node(b);
    if (node.usb_exposure) set_row_bit(usb_mask.data(), b);
    for (std::size_t ch = 0; ch < kChannelCount; ++ch)
      for (std::size_t za = 0; za < kZoneCount; ++za)
        if (allow[za][static_cast<std::size_t>(node.zone)][ch])
          set_row_bit(zone_ok[ch][za].data(), b);
  }

  for (std::size_t ch = 0; ch < kChannelCount; ++ch) {
    auto& rows = reach_[ch];
    rows.assign(n_ * words_, 0);
    const bool is_usb = static_cast<Channel>(ch) == Channel::kUsb;
    for (NodeId a = 0; a < n_; ++a) {
      std::uint64_t* row = rows.data() + a * words_;
      if (is_usb) {
        // Removable media travel with operators, not over links.
        if (!topo.node(a).usb_exposure) continue;
        for (std::size_t w = 0; w < words_; ++w) row[w] = usb_mask[w];
      } else {
        const auto& ok = zone_ok[ch][static_cast<std::size_t>(topo.node(a).zone)];
        const std::uint64_t* lnk = linked_bits_.data() + a * words_;
        for (std::size_t w = 0; w < words_; ++w) row[w] = lnk[w] & ok[w];
      }
      row[a / 64] &= ~(std::uint64_t{1} << (a % 64));  // never self-reach
    }
  }
}

std::vector<std::vector<NodeId>> ReachabilityIndex::union_graph(
    const std::vector<Channel>& channels) const {
  std::vector<std::vector<NodeId>> out(n_);
  std::vector<std::uint64_t> row(words_);
  for (NodeId a = 0; a < n_; ++a) {
    row.assign(words_, 0);
    for (Channel c : channels) {
      const std::uint64_t* r = reach_[static_cast<std::size_t>(c)].data() + a * words_;
      for (std::size_t w = 0; w < words_; ++w) row[w] |= r[w];
    }
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t bits = row[w];
      while (bits) {
        out[a].push_back(w * 64 + static_cast<std::size_t>(std::countr_zero(bits)));
        bits &= bits - 1;
      }
    }
  }
  return out;
}

}  // namespace divsec::net
