// firewall.h — zone-based firewall policy.
//
// First-match-wins ordered rule list over (source zone, destination zone,
// channel), with a configurable default action. The paper lists the
// firewall among the components whose diversity matters; variant-specific
// behaviour (rule-bypass probability for a given exploit) is layered on
// top by the attack module — this class is the policy mechanism itself.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/topology.h"

namespace divsec::net {

enum class Action : std::uint8_t { kAllow, kDeny };

struct FirewallRule {
  /// nullopt matches any zone / any channel.
  std::optional<Zone> from;
  std::optional<Zone> to;
  std::optional<Channel> channel;
  Action action = Action::kDeny;
  std::string comment;
};

class Firewall {
 public:
  explicit Firewall(Action default_action = Action::kDeny)
      : default_action_(default_action) {}

  /// Append a rule (evaluated in insertion order; first match wins).
  void add_rule(FirewallRule rule) { rules_.push_back(std::move(rule)); }

  [[nodiscard]] bool allows(Zone from, Zone to, Channel channel) const noexcept;

  /// Traffic inside a zone is always allowed (switching, not routing).
  [[nodiscard]] bool allows_same_zone() const noexcept { return true; }

  [[nodiscard]] std::size_t rule_count() const noexcept { return rules_.size(); }
  [[nodiscard]] const FirewallRule& rule(std::size_t i) const { return rules_.at(i); }
  [[nodiscard]] Action default_action() const noexcept { return default_action_; }

  /// A permissive policy (flat network): everything allowed.
  [[nodiscard]] static Firewall permissive();

  /// A realistic segmented ICS policy:
  ///  - corporate <-> dmz: http only
  ///  - dmz -> control: http only (historian replication)
  ///  - control <-> field: modbus + project-file only
  ///  - everything else denied.
  [[nodiscard]] static Firewall segmented_ics();

 private:
  Action default_action_;
  std::vector<FirewallRule> rules_;
};

}  // namespace divsec::net
