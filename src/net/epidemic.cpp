#include "net/epidemic.h"

#include <algorithm>
#include <stdexcept>

#include "net/reachability_index.h"

namespace divsec::net {

MeanFieldEpidemic::MeanFieldEpidemic(const Topology& topology,
                                     const Firewall& firewall,
                                     const std::vector<Channel>& channels,
                                     const std::vector<NodeId>& seed_nodes,
                                     EpidemicOptions options)
    : MeanFieldEpidemic(ReachabilityIndex(topology, firewall), channels,
                        seed_nodes, options) {}

MeanFieldEpidemic::MeanFieldEpidemic(const ReachabilityIndex& index,
                                     const std::vector<Channel>& channels,
                                     const std::vector<NodeId>& seed_nodes,
                                     EpidemicOptions options)
    : seeds_(seed_nodes), opt_(options) {
  if (!(opt_.beta >= 0.0))
    throw std::invalid_argument("MeanFieldEpidemic: beta must be >= 0");
  if (!(opt_.dt_hours > 0.0))
    throw std::invalid_argument("MeanFieldEpidemic: dt must be > 0");
  if (seeds_.empty())
    throw std::invalid_argument("MeanFieldEpidemic: need at least one seed");
  for (NodeId s : seeds_)
    if (s >= index.node_count())
      throw std::out_of_range("MeanFieldEpidemic: seed out of range");
  // The index hands back the in-edge CSR directly from its bit rows; the
  // old path materialized out-edge vector-of-vectors and inverted them
  // here — two allocations per node for data the Euler loop reads flat.
  auto csr = index.union_in_csr(channels);
  in_off_ = std::move(csr.off);
  in_edge_ = std::move(csr.edge);
  reset();
}

void MeanFieldEpidemic::reset() {
  infected_.assign(in_off_.size() - 1, 0.0);
  next_.assign(infected_.size(), 0.0);
  for (NodeId s : seeds_) infected_[s] = 1.0;
  time_ = 0.0;
}

void MeanFieldEpidemic::advance(double hours) {
  if (hours < 0.0) throw std::invalid_argument("advance: negative duration");
  const double t_end = time_ + hours;
  while (time_ < t_end) {
    // Clamp the final step to the remaining interval: a horizon that is
    // not a multiple of dt must not be overshot, and the clock must land
    // on t_end exactly (no accumulated per-step rounding drift).
    const double h = std::min(opt_.dt_hours, t_end - time_);
    for (NodeId i = 0; i < infected_.size(); ++i) {
      double pressure = 0.0;
      for (std::size_t e = in_off_[i]; e < in_off_[i + 1]; ++e)
        pressure += infected_[in_edge_[e]];
      const double di = (1.0 - infected_[i]) * opt_.beta * pressure;
      next_[i] = std::clamp(infected_[i] + h * di, 0.0, 1.0);
    }
    infected_.swap(next_);
    time_ += h;
  }
  time_ = t_end;
}

double MeanFieldEpidemic::infection_probability(NodeId i) const {
  return infected_.at(i);
}

double MeanFieldEpidemic::compromised_ratio() const noexcept {
  double s = 0.0;
  for (double v : infected_) s += v;
  return infected_.empty() ? 0.0 : s / static_cast<double>(infected_.size());
}

std::vector<double> MeanFieldEpidemic::ratio_curve(
    const std::vector<double>& grid_hours) {
  for (std::size_t i = 1; i < grid_hours.size(); ++i)
    if (grid_hours[i] < grid_hours[i - 1])
      throw std::invalid_argument("ratio_curve: grid must be non-decreasing");
  reset();
  std::vector<double> out;
  out.reserve(grid_hours.size());
  for (double t : grid_hours) {
    advance(t - time_);
    out.push_back(compromised_ratio());
  }
  return out;
}

}  // namespace divsec::net
