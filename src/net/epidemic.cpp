#include "net/epidemic.h"

#include <algorithm>
#include <stdexcept>

#include "net/reachability.h"

namespace divsec::net {

MeanFieldEpidemic::MeanFieldEpidemic(const Topology& topology,
                                     const Firewall& firewall,
                                     const std::vector<Channel>& channels,
                                     const std::vector<NodeId>& seed_nodes,
                                     EpidemicOptions options)
    : seeds_(seed_nodes), opt_(options) {
  if (!(opt_.beta >= 0.0))
    throw std::invalid_argument("MeanFieldEpidemic: beta must be >= 0");
  if (!(opt_.dt_hours > 0.0))
    throw std::invalid_argument("MeanFieldEpidemic: dt must be > 0");
  if (seeds_.empty())
    throw std::invalid_argument("MeanFieldEpidemic: need at least one seed");
  for (NodeId s : seeds_)
    if (s >= topology.node_count())
      throw std::out_of_range("MeanFieldEpidemic: seed out of range");
  // Store incoming edges: out-edges j->i from reachability_graph.
  const auto out_edges = reachability_graph(topology, firewall, channels);
  in_edges_.resize(topology.node_count());
  for (NodeId j = 0; j < out_edges.size(); ++j)
    for (NodeId i : out_edges[j]) in_edges_[i].push_back(j);
  reset();
}

void MeanFieldEpidemic::reset() {
  infected_.assign(in_edges_.size(), 0.0);
  for (NodeId s : seeds_) infected_[s] = 1.0;
  time_ = 0.0;
}

void MeanFieldEpidemic::advance(double hours) {
  if (hours < 0.0) throw std::invalid_argument("advance: negative duration");
  double remaining = hours;
  std::vector<double> next(infected_.size());
  while (remaining > 0.0) {
    const double h = std::min(remaining, opt_.dt_hours);
    for (NodeId i = 0; i < infected_.size(); ++i) {
      double pressure = 0.0;
      for (NodeId j : in_edges_[i]) pressure += infected_[j];
      const double di = (1.0 - infected_[i]) * opt_.beta * pressure;
      next[i] = std::clamp(infected_[i] + h * di, 0.0, 1.0);
    }
    infected_.swap(next);
    time_ += h;
    remaining -= h;
  }
}

double MeanFieldEpidemic::infection_probability(NodeId i) const {
  return infected_.at(i);
}

double MeanFieldEpidemic::compromised_ratio() const noexcept {
  double s = 0.0;
  for (double v : infected_) s += v;
  return infected_.empty() ? 0.0 : s / static_cast<double>(infected_.size());
}

std::vector<double> MeanFieldEpidemic::ratio_curve(
    const std::vector<double>& grid_hours) {
  for (std::size_t i = 1; i < grid_hours.size(); ++i)
    if (grid_hours[i] < grid_hours[i - 1])
      throw std::invalid_argument("ratio_curve: grid must be non-decreasing");
  reset();
  std::vector<double> out;
  out.reserve(grid_hours.size());
  for (double t : grid_hours) {
    advance(t - time_);
    out.push_back(compromised_ratio());
  }
  return out;
}

}  // namespace divsec::net
