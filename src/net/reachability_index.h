// reachability_index.h — precomputed O(1) attack-surface queries.
//
// reachability.h answers "can a reach b on channel c" by walking the
// adjacency vector and the firewall rule list on every call. That is fine
// for one 11-node plant and hopeless for the campaign simulator's inner
// loop on a generated enterprise fleet, where every propagation event
// probes a random (node, node, channel) triple. ReachabilityIndex
// evaluates the whole (node x node x channel) relation once per scenario
// — bit-matrix rows per channel, plus the raw link matrix — so campaign
// and epidemic replications share one read-only index and every query is
// a single word load.
//
// Build cost is O(zones^2 * channels) firewall evaluations plus
// O(nodes^2 * channels / 64) word ops; ~1 MB for 1024 nodes. Instances
// are deeply immutable after construction and safe to share across
// executor threads.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "net/firewall.h"
#include "net/topology.h"

namespace divsec::net {

class ReachabilityIndex {
 public:
  /// Evaluates every (from, to, channel) triple of `topo` under `fw`.
  ReachabilityIndex(const Topology& topo, const Firewall& fw);

  [[nodiscard]] std::size_t node_count() const noexcept { return n_; }

  /// Same relation as net::can_reach (link + policy; USB needs mutual
  /// removable-media exposure, no link). Precondition: a, b < node_count().
  [[nodiscard]] bool can_reach(NodeId a, NodeId b, Channel c) const noexcept {
    return test(reach_[static_cast<std::size_t>(c)], a, b);
  }

  /// Same relation as Topology::linked. Precondition: a, b < node_count().
  [[nodiscard]] bool linked(NodeId a, NodeId b) const noexcept {
    return test(linked_bits_, a, b);
  }

  /// Directed union adjacency over `channels`: out[i] lists, ascending,
  /// the nodes reachable from i over ANY of the given channels — the
  /// reachability_graph contract, computed from the prebuilt rows.
  [[nodiscard]] std::vector<std::vector<NodeId>> union_graph(
      const std::vector<Channel>& channels) const;

  /// Flat in-edge CSR over the union relation: the sources j with
  /// j -> i over ANY of `channels` occupy edge[off[i] .. off[i + 1]),
  /// ascending. Same relation as union_graph inverted, built straight
  /// from the bit rows without the vector-of-vectors intermediary —
  /// this is the adjacency MeanFieldEpidemic's Euler loop runs on.
  struct UnionInCsr {
    std::vector<std::size_t> off;  // node_count + 1 offsets
    std::vector<NodeId> edge;      // concatenated source lists
  };
  [[nodiscard]] UnionInCsr union_in_csr(const std::vector<Channel>& channels) const;

  /// The statically reachable targets of `a` on channel `c` — the set
  /// bits of the can_reach row, ascending, never containing `a` itself.
  /// The campaign kernel's thinned worm-scan process samples victims
  /// from these lists at the thinned Poisson rate instead of rejection-
  /// testing uniform (victim, channel) picks, which is exact by Poisson
  /// thinning and skips the ~95% of scans that cannot land. Entries are
  /// uint32 to keep the lists compact.
  [[nodiscard]] std::span<const std::uint32_t> scan_targets(
      Channel c, NodeId a) const noexcept {
    return row_span(scan_[static_cast<std::size_t>(c)], a);
  }

  /// The linked-but-policy-blocked targets of `a` on channel `c`:
  /// reachable only by winning a firewall-bypass (tunnelling) exploit.
  /// Always empty for kUsb — removable media cannot tunnel a firewall.
  [[nodiscard]] std::span<const std::uint32_t> tunnel_targets(
      Channel c, NodeId a) const noexcept {
    return row_span(tunnel_[static_cast<std::size_t>(c)], a);
  }

  /// The exact structural input the constructor reads, in canonical form:
  /// two topologies/firewalls with equal keys produce identical indexes,
  /// so an index built for one may be shared with the other. This is the
  /// cache key of core::MeasurementEngine's shared-context path (compared
  /// in full on fingerprint hits — hashes alone never alias contexts).
  struct StructuralKey {
    std::size_t node_count = 0;
    /// Per node: zone in the low bits, usb_exposure in bit 7.
    std::vector<std::uint8_t> nodes;
    /// Undirected links as (min, max) pairs, sorted (link order and
    /// endpoint order in the Topology are not structural).
    std::vector<std::pair<NodeId, NodeId>> links;
    /// Firewall verdicts over (zone, zone, channel), flattened.
    std::array<bool, kZoneCount * kZoneCount * kChannelCount> allow{};

    bool operator==(const StructuralKey&) const = default;

    /// FNV-1a digest over the canonical form, for bucketing only.
    [[nodiscard]] std::uint64_t fingerprint() const noexcept;
  };
  [[nodiscard]] static StructuralKey structural_key(const Topology& topo,
                                                   const Firewall& fw);

 private:
  /// Per-source target lists of one channel, CSR over uint32 node ids.
  struct TargetCsr {
    std::vector<std::uint32_t> off;  // node_count + 1 offsets
    std::vector<std::uint32_t> tgt;  // concatenated ascending target lists
  };

  [[nodiscard]] bool test(const std::vector<std::uint64_t>& bits, NodeId a,
                          NodeId b) const noexcept {
    return (bits[a * words_ + b / 64] >> (b % 64)) & 1u;
  }

  [[nodiscard]] static std::span<const std::uint32_t> row_span(
      const TargetCsr& csr, NodeId a) noexcept {
    return {csr.tgt.data() + csr.off[a], csr.off[a + 1] - csr.off[a]};
  }

  std::size_t n_ = 0;
  std::size_t words_ = 0;  // 64-bit words per row
  std::vector<std::uint64_t> linked_bits_;  // n_ rows of words_ words
  std::array<std::vector<std::uint64_t>, kChannelCount> reach_;
  std::array<TargetCsr, kChannelCount> scan_;    // reach rows as lists
  std::array<TargetCsr, kChannelCount> tunnel_;  // linked & ~reach, no kUsb
};

}  // namespace divsec::net
