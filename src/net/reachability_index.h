// reachability_index.h — precomputed O(1) attack-surface queries.
//
// reachability.h answers "can a reach b on channel c" by walking the
// adjacency vector and the firewall rule list on every call. That is fine
// for one 11-node plant and hopeless for the campaign simulator's inner
// loop on a generated enterprise fleet, where every propagation event
// probes a random (node, node, channel) triple. ReachabilityIndex
// evaluates the whole (node x node x channel) relation once per scenario
// — bit-matrix rows per channel, plus the raw link matrix — so campaign
// and epidemic replications share one read-only index and every query is
// a single word load.
//
// Build cost is O(zones^2 * channels) firewall evaluations plus
// O(nodes^2 * channels / 64) word ops; ~1 MB for 1024 nodes. Instances
// are deeply immutable after construction and safe to share across
// executor threads.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "net/firewall.h"
#include "net/topology.h"

namespace divsec::net {

class ReachabilityIndex {
 public:
  /// Evaluates every (from, to, channel) triple of `topo` under `fw`.
  ReachabilityIndex(const Topology& topo, const Firewall& fw);

  [[nodiscard]] std::size_t node_count() const noexcept { return n_; }

  /// Same relation as net::can_reach (link + policy; USB needs mutual
  /// removable-media exposure, no link). Precondition: a, b < node_count().
  [[nodiscard]] bool can_reach(NodeId a, NodeId b, Channel c) const noexcept {
    return test(reach_[static_cast<std::size_t>(c)], a, b);
  }

  /// Same relation as Topology::linked. Precondition: a, b < node_count().
  [[nodiscard]] bool linked(NodeId a, NodeId b) const noexcept {
    return test(linked_bits_, a, b);
  }

  /// Directed union adjacency over `channels`: out[i] lists, ascending,
  /// the nodes reachable from i over ANY of the given channels — the
  /// reachability_graph contract, computed from the prebuilt rows.
  [[nodiscard]] std::vector<std::vector<NodeId>> union_graph(
      const std::vector<Channel>& channels) const;

 private:
  [[nodiscard]] bool test(const std::vector<std::uint64_t>& bits, NodeId a,
                          NodeId b) const noexcept {
    return (bits[a * words_ + b / 64] >> (b % 64)) & 1u;
  }

  std::size_t n_ = 0;
  std::size_t words_ = 0;  // 64-bit words per row
  std::vector<std::uint64_t> linked_bits_;  // n_ rows of words_ words
  std::array<std::vector<std::uint64_t>, kChannelCount> reach_;
};

}  // namespace divsec::net
