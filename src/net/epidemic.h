// epidemic.h — mean-field worm-propagation baseline.
//
// A deterministic SI (susceptible-infected) approximation of malware
// spread over the reachability graph: the classical comparison model for
// the campaign simulator's compromised-ratio curves. Where the campaign
// plays individual exploits, the mean-field model only sees an effective
// pairwise infection rate beta over the directed reachability edges —
// exactly the kind of baseline a reviewer would ask the paper's c(t)
// curves to be compared against.
//
//   dI_i/dt = (1 - I_i) * beta * sum_{j -> i} I_j
//
// integrated with forward Euler over a flat CSR adjacency, so the same
// loop serves the paper's 11-node plant and a generated enterprise fleet.
// The adjacency comes from a ReachabilityIndex — build it once per
// scenario and share it with the campaign simulator instead of paying
// the all-pairs reachability sweep again.
#pragma once

#include <vector>

#include "net/firewall.h"
#include "net/topology.h"

namespace divsec::net {

class ReachabilityIndex;

struct EpidemicOptions {
  /// Effective infections per (infected neighbor, hour).
  double beta = 0.05;
  double dt_hours = 0.1;
};

class MeanFieldEpidemic {
 public:
  /// `channels` defines the directed reachability edges (see
  /// reachability_graph); `seed_nodes` start at infection probability 1.
  /// Builds a throwaway ReachabilityIndex internally — prefer the index
  /// overload when the caller already has one for the scenario.
  MeanFieldEpidemic(const Topology& topology, const Firewall& firewall,
                    const std::vector<Channel>& channels,
                    const std::vector<NodeId>& seed_nodes,
                    EpidemicOptions options = {});

  /// Shares a precomputed per-scenario index with the campaign layer.
  MeanFieldEpidemic(const ReachabilityIndex& index,
                    const std::vector<Channel>& channels,
                    const std::vector<NodeId>& seed_nodes,
                    EpidemicOptions options = {});

  /// Advance the ODE by `hours`. The final Euler step is clamped to the
  /// remaining interval, so the model lands exactly on the requested
  /// horizon even when `hours` is not a multiple of dt.
  void advance(double hours);

  /// P[node i infected] at the current time.
  [[nodiscard]] double infection_probability(NodeId i) const;

  /// Mean compromised ratio: average infection probability.
  [[nodiscard]] double compromised_ratio() const noexcept;

  [[nodiscard]] double now_hours() const noexcept { return time_; }

  /// Convenience: the full ratio curve sampled on a time grid (resets and
  /// integrates from zero).
  [[nodiscard]] std::vector<double> ratio_curve(const std::vector<double>& grid_hours);

 private:
  void reset();
  // In-edges j -> i in CSR form: the sources of node i occupy
  // in_edge_[in_off_[i] .. in_off_[i + 1]).
  std::vector<std::size_t> in_off_;
  std::vector<NodeId> in_edge_;
  std::vector<NodeId> seeds_;
  std::vector<double> infected_;  // I_i in [0,1]
  std::vector<double> next_;      // Euler scratch row
  EpidemicOptions opt_;
  double time_ = 0.0;
};

}  // namespace divsec::net
