// epidemic.h — mean-field worm-propagation baseline.
//
// A deterministic SI (susceptible-infected) approximation of malware
// spread over the reachability graph: the classical comparison model for
// the campaign simulator's compromised-ratio curves. Where the campaign
// plays individual exploits, the mean-field model only sees an effective
// pairwise infection rate beta over the directed reachability edges —
// exactly the kind of baseline a reviewer would ask the paper's c(t)
// curves to be compared against.
//
//   dI_i/dt = (1 - I_i) * beta * sum_{j -> i} I_j
//
// integrated with forward Euler (the node count is tiny).
#pragma once

#include <vector>

#include "net/firewall.h"
#include "net/topology.h"

namespace divsec::net {

struct EpidemicOptions {
  /// Effective infections per (infected neighbor, hour).
  double beta = 0.05;
  double dt_hours = 0.1;
};

class MeanFieldEpidemic {
 public:
  /// `channels` defines the directed reachability edges (see
  /// reachability_graph); `seed_nodes` start at infection probability 1.
  MeanFieldEpidemic(const Topology& topology, const Firewall& firewall,
                    const std::vector<Channel>& channels,
                    const std::vector<NodeId>& seed_nodes,
                    EpidemicOptions options = {});

  /// Advance the ODE by `hours`.
  void advance(double hours);

  /// P[node i infected] at the current time.
  [[nodiscard]] double infection_probability(NodeId i) const;

  /// Mean compromised ratio: average infection probability.
  [[nodiscard]] double compromised_ratio() const noexcept;

  [[nodiscard]] double now_hours() const noexcept { return time_; }

  /// Convenience: the full ratio curve sampled on a time grid (resets and
  /// integrates from zero).
  [[nodiscard]] std::vector<double> ratio_curve(const std::vector<double>& grid_hours);

 private:
  void reset();
  std::vector<std::vector<NodeId>> in_edges_;  // j -> i stored per i
  std::vector<NodeId> seeds_;
  std::vector<double> infected_;  // I_i in [0,1]
  EpidemicOptions opt_;
  double time_ = 0.0;
};

}  // namespace divsec::net
