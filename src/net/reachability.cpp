#include "net/reachability.h"

#include <algorithm>
#include <deque>
#include <set>
#include <stdexcept>

#include "net/reachability_index.h"

namespace divsec::net {

bool can_reach(const Topology& topo, const Firewall& fw, NodeId a, NodeId b,
               Channel channel) {
  if (a == b) return false;
  const Node& na = topo.node(a);
  const Node& nb = topo.node(b);
  if (channel == Channel::kUsb) {
    // Removable media travel with operators, not over links.
    return na.usb_exposure && nb.usb_exposure;
  }
  if (!topo.linked(a, b)) return false;
  return fw.allows(na.zone, nb.zone, channel);
}

std::vector<std::vector<NodeId>> reachability_graph(
    const Topology& topo, const Firewall& fw, const std::vector<Channel>& channels) {
  return ReachabilityIndex(topo, fw).union_graph(channels);
}

std::optional<std::vector<NodeId>> shortest_attack_path(
    const Topology& topo, const Firewall& fw, NodeId from, NodeId to,
    const std::vector<Channel>& channels) {
  if (from >= topo.node_count() || to >= topo.node_count())
    throw std::out_of_range("shortest_attack_path: invalid node id");
  if (from == to) return std::vector<NodeId>{from};
  const auto edges = reachability_graph(topo, fw, channels);
  std::vector<NodeId> parent(topo.node_count(), topo.node_count());
  std::deque<NodeId> frontier{from};
  parent[from] = from;
  while (!frontier.empty()) {
    const NodeId cur = frontier.front();
    frontier.pop_front();
    for (NodeId next : edges[cur]) {
      if (parent[next] != topo.node_count()) continue;
      parent[next] = cur;
      if (next == to) {
        std::vector<NodeId> path{to};
        for (NodeId n = to; n != from; n = parent[n]) path.push_back(parent[n]);
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(next);
    }
  }
  return std::nullopt;
}

std::size_t attack_surface_size(const Topology& topo, const Firewall& fw, NodeId entry,
                                const std::vector<NodeId>& targets,
                                const std::vector<Channel>& channels) {
  std::set<NodeId> on_paths;
  for (NodeId t : targets) {
    const auto path = shortest_attack_path(topo, fw, entry, t, channels);
    if (path.has_value()) on_paths.insert(path->begin(), path->end());
  }
  return on_paths.size();
}

}  // namespace divsec::net
