// obs/metrics.h — process-wide telemetry registry: counters, gauges,
// and log2 histograms with a lock-free hot path.
//
// Recording model
//   Every metric is backed by a fixed array of cache-line-padded stripes
//   of plain relaxed std::atomic<uint64_t>. A thread picks its stripe
//   once (thread_local round-robin) and then increments with a single
//   relaxed fetch_add — no locks, no CAS loops, no false sharing on the
//   hot path. The registry mutex is touched only on first registration
//   of a name; call sites hold a `static Counter&` handle so steady
//   state never sees it.
//
// Determinism contract
//   Metrics are observational only: nothing in the measurement pipeline
//   reads them back, so CSV/state outputs are byte-identical whether
//   recording is enabled, disabled (set_enabled(false)), or compiled
//   out (-DDIVSEC_OBS=0). All durations are recorded as integer
//   nanoseconds so snapshot merges are exact integer sums with no
//   float-order sensitivity; snapshot/JSON ordering is sorted by name.
//
// Compile gate
//   With DIVSEC_OBS=0 the recording surface (Counter/Gauge/Histogram,
//   counter()/gauge()/histogram(), snapshot(), reset()) collapses to
//   inline no-ops, but the cold sidecar layer (metrics_json, parsing,
//   merge, file I/O) stays compiled so `divsec_sweep merge/inspect`
//   keep working against sidecars produced by instrumented builds.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#if !defined(DIVSEC_OBS)
#define DIVSEC_OBS 1
#endif

#if DIVSEC_OBS
#include <atomic>
#include <bit>
#endif

namespace divsec::obs {

/// Log2 histogram resolution: bucket b counts values whose bit width is
/// b (bucket 0 is exactly zero; bucket 63 absorbs everything >= 2^62).
inline constexpr std::size_t kHistogramBuckets = 64;

// ---------------------------------------------------------------------------
// Snapshot / sidecar types — always compiled (cold path).
// ---------------------------------------------------------------------------

struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeValue {
  std::string name;
  std::uint64_t value = 0;
};

struct HistogramValue {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Upper edge of the bucket containing quantile q (0 < q <= 1). The
  /// log2 buckets bound the true quantile within a factor of two, which
  /// is plenty for "is this microseconds or milliseconds" triage.
  [[nodiscard]] double quantile(double q) const;
};

/// A point-in-time copy of the registry, or a parsed/merged sidecar.
/// Vectors are sorted by name; lookups are binary searches.
struct Snapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  [[nodiscard]] std::uint64_t gauge(std::string_view name) const;
  [[nodiscard]] const HistogramValue* histogram(std::string_view name) const;
  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Deterministic JSON export (sorted names, exact integer values).
[[nodiscard]] std::string metrics_json(const Snapshot& snap);

/// Parse a sidecar produced by metrics_json. This is the one JSON the
/// project reads back, and the parser accepts exactly that shape (the
/// codec-owns-its-own-format rule from util/json.h). Throws
/// std::runtime_error on malformed input.
[[nodiscard]] Snapshot parse_metrics_json(std::string_view text);

/// Sidecar merge rule: counters and histogram buckets/count/sum are
/// integer sums; gauges take the max (they record high-water marks).
void merge_into(Snapshot& into, const Snapshot& from);

/// Write/read a sidecar file. Both throw std::runtime_error on I/O
/// failure — a sidecar the operator asked for must not vanish silently.
void write_metrics_file(const std::string& path, const Snapshot& snap);
[[nodiscard]] Snapshot read_metrics_file(const std::string& path);

// ---------------------------------------------------------------------------
// Recording surface — striped relaxed atomics, or no-op stubs.
// ---------------------------------------------------------------------------

#if DIVSEC_OBS

namespace detail {

inline constexpr std::size_t kStripes = 16;

/// Runtime kill switch (bench_e5's metrics-on vs metrics-off overhead
/// gate flips this); recording checks it with one relaxed load.
inline std::atomic<bool> g_recording{true};

/// Round-robin stripe assignment: stable per thread, spreads persistent
/// Executor workers across stripes.
inline std::size_t stripe() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return id;
}

struct alignas(64) Slot {
  std::atomic<std::uint64_t> v{0};
};

}  // namespace detail

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!detail::g_recording.load(std::memory_order_relaxed)) return;
    slots_[detail::stripe()].v.fetch_add(n, std::memory_order_relaxed);
  }
  /// Sum of all stripes. Relaxed per-stripe loads: each stripe is
  /// monotone, and same-thread re-reads respect coherence order, so
  /// successive totals read by one thread never decrease.
  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t t = 0;
    for (const auto& s : slots_) t += s.v.load(std::memory_order_relaxed);
    return t;
  }
  void clear() noexcept {
    for (auto& s : slots_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::Slot, detail::kStripes> slots_{};
};

class Gauge {
 public:
  void set(std::uint64_t v) noexcept {
    if (!detail::g_recording.load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void record_max(std::uint64_t v) noexcept {
    if (!detail::g_recording.load(std::memory_order_relaxed)) return;
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void clear() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Histogram {
 public:
  void observe(std::uint64_t v) noexcept {
    if (!detail::g_recording.load(std::memory_order_relaxed)) return;
    Stripe& s = stripes_[detail::stripe()];
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    s.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) noexcept {
    const std::size_t w = static_cast<std::size_t>(std::bit_width(v));
    return w < kHistogramBuckets ? w : kHistogramBuckets - 1;
  }
  void fill(HistogramValue& out) const noexcept {
    for (const Stripe& s : stripes_) {
      out.count += s.count.load(std::memory_order_relaxed);
      out.sum += s.sum.load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kHistogramBuckets; ++b)
        out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  void clear() noexcept {
    for (Stripe& s : stripes_) {
      s.count.store(0, std::memory_order_relaxed);
      s.sum.store(0, std::memory_order_relaxed);
      for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  };
  std::array<Stripe, detail::kStripes> stripes_{};
};

/// Look up (or register) a metric by name. The returned reference is
/// stable for the life of the process — call sites cache it in a
/// function-local static so the registry mutex is a one-time cost.
/// Names should be stable dotted-lowercase identifiers ("adapt.rounds").
[[nodiscard]] Counter& counter(std::string_view name);
[[nodiscard]] Gauge& gauge(std::string_view name);
[[nodiscard]] Histogram& histogram(std::string_view name);

/// Point-in-time copy of every registered metric, sorted by name.
[[nodiscard]] Snapshot snapshot();

/// Zero every registered metric (handles stay valid). Tests and benches
/// use this to read per-phase deltas from the process-cumulative registry.
void reset();

/// Runtime kill switch for the recording hot path. Disabling freezes
/// all values; it never unregisters metrics.
inline void set_enabled(bool on) noexcept {
  detail::g_recording.store(on, std::memory_order_relaxed);
}
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_recording.load(std::memory_order_relaxed);
}

#else  // !DIVSEC_OBS — recording surface compiles to nothing.

class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  [[nodiscard]] std::uint64_t total() const noexcept { return 0; }
  void clear() noexcept {}
};

class Gauge {
 public:
  void set(std::uint64_t) noexcept {}
  void record_max(std::uint64_t) noexcept {}
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
  void clear() noexcept {}
};

class Histogram {
 public:
  void observe(std::uint64_t) noexcept {}
  void fill(HistogramValue&) const noexcept {}
  void clear() noexcept {}
};

[[nodiscard]] inline Counter& counter(std::string_view) noexcept {
  static Counter c;
  return c;
}
[[nodiscard]] inline Gauge& gauge(std::string_view) noexcept {
  static Gauge g;
  return g;
}
[[nodiscard]] inline Histogram& histogram(std::string_view) noexcept {
  static Histogram h;
  return h;
}

[[nodiscard]] inline Snapshot snapshot() { return {}; }
inline void reset() {}
inline void set_enabled(bool) noexcept {}
[[nodiscard]] inline bool enabled() noexcept { return false; }

#endif  // DIVSEC_OBS

}  // namespace divsec::obs
