#include "obs/trace.h"

#include <cstdio>
#include <stdexcept>

#include "util/json.h"

#if DIVSEC_OBS

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

namespace divsec::obs {

namespace {

using Clock = std::chrono::steady_clock;

struct TraceEvent {
  const char* name;
  std::uint64_t begin_ns;
  std::uint64_t end_ns;
  std::uint32_t tid;
};

struct ThreadBuf {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

struct TraceState {
  std::atomic<bool> enabled{false};
  Clock::time_point epoch{};
  std::mutex mu;  // guards bufs registration and flush
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
};

/// Leaked for the same reason as the metrics registry: spans on
/// static-lifetime worker threads may close during shutdown.
TraceState& state() {
  static TraceState* s = new TraceState;
  return *s;
}

ThreadBuf& local_buf() {
  thread_local const std::shared_ptr<ThreadBuf> buf = [] {
    auto b = std::make_shared<ThreadBuf>();
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    b->tid = static_cast<std::uint32_t>(s.bufs.size() + 1);
    s.bufs.push_back(b);
    return b;
  }();
  return *buf;
}

}  // namespace

bool trace_enabled() noexcept {
  return state().enabled.load(std::memory_order_acquire);
}

std::uint64_t trace_now_ns() noexcept {
  const auto d = Clock::now() - state().epoch;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

void trace_start() {
  TraceState& s = state();
  if (s.enabled.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto& buf : s.bufs) {
      std::lock_guard<std::mutex> buf_lock(buf->mu);
      buf->events.clear();
    }
  }
  s.epoch = Clock::now();
  // Release pairs with the acquire in trace_enabled so recorders see
  // the fresh epoch.
  s.enabled.store(true, std::memory_order_release);
}

void trace_record(const char* name, std::uint64_t begin_ns,
                  std::uint64_t end_ns) noexcept {
  // Re-checked so spans closing after trace_stop drained the buffers
  // don't accumulate into a dead session.
  if (!trace_enabled()) return;
  ThreadBuf& buf = local_buf();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back({name, begin_ns, end_ns, buf.tid});
}

std::string trace_json() {
  TraceState& s = state();
  s.enabled.store(false, std::memory_order_release);
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto& buf : s.bufs) {
      std::lock_guard<std::mutex> buf_lock(buf->mu);
      events.insert(events.end(), buf->events.begin(), buf->events.end());
      buf->events.clear();
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.begin_ns < b.begin_ns;
                   });
  std::string out;
  out.reserve(64 + events.size() * 96);
  out += "{\"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"name\": " + util::json_string(e.name) +
           ", \"cat\": \"divsec\", \"ph\": \"X\", \"ts\": " +
           util::json_number(static_cast<double>(e.begin_ns) / 1000.0) +
           ", \"dur\": " +
           util::json_number(static_cast<double>(e.end_ns - e.begin_ns) /
                             1000.0) +
           ", \"pid\": 1, \"tid\": " + std::to_string(e.tid) + "}";
  }
  out += events.empty() ? "" : "\n";
  out += "], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

void trace_stop(const std::string& path) {
  const std::string body = trace_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw std::runtime_error("cannot write trace file: " + path);
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = n == body.size() && std::fclose(f) == 0;
  if (!ok) throw std::runtime_error("short write on trace file: " + path);
}

}  // namespace divsec::obs

#else  // !DIVSEC_OBS

namespace divsec::obs {

void trace_stop(const std::string& path) {
  const std::string body = trace_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw std::runtime_error("cannot write trace file: " + path);
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = n == body.size() && std::fclose(f) == 0;
  if (!ok) throw std::runtime_error("short write on trace file: " + path);
}

}  // namespace divsec::obs

#endif  // DIVSEC_OBS
