#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "util/json.h"

#if DIVSEC_OBS
#include <map>
#include <memory>
#include <mutex>
#endif

namespace divsec::obs {

namespace {

template <typename Vec>
auto find_by_name(const Vec& v, std::string_view name) {
  auto it = std::lower_bound(
      v.begin(), v.end(), name,
      [](const auto& entry, std::string_view key) { return entry.name < key; });
  return (it != v.end() && it->name == name) ? it : v.end();
}

}  // namespace

double HistogramValue::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    cum += buckets[b];
    if (static_cast<double>(cum) >= target && cum > 0) {
      // Upper edge of bucket b: bucket 0 holds exactly zero, bucket b
      // holds values with bit width b, i.e. < 2^b.
      return b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b));
    }
  }
  return std::ldexp(1.0, static_cast<int>(kHistogramBuckets));
}

std::uint64_t Snapshot::counter(std::string_view name) const {
  const auto it = find_by_name(counters, name);
  return it == counters.end() ? 0 : it->value;
}

std::uint64_t Snapshot::gauge(std::string_view name) const {
  const auto it = find_by_name(gauges, name);
  return it == gauges.end() ? 0 : it->value;
}

const HistogramValue* Snapshot::histogram(std::string_view name) const {
  const auto it = find_by_name(histograms, name);
  return it == histograms.end() ? nullptr : &*it;
}

// ---------------------------------------------------------------------------
// Registry (only in instrumented builds).
// ---------------------------------------------------------------------------

#if DIVSEC_OBS

namespace {

struct Registry {
  std::mutex mu;
  // std::map keeps iteration sorted, so snapshots are ordered by name
  // without a separate sort; unique_ptr keeps references stable.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

/// Intentionally leaked: Executor workers and other static-lifetime
/// threads may touch metrics during shutdown, so the registry must
/// outlive every other static destructor.
Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

template <typename Map>
auto& lookup(Map& map, std::mutex& mu, std::string_view name) {
  std::lock_guard<std::mutex> lock(mu);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name),
                     std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  }
  return *it->second;
}

}  // namespace

Counter& counter(std::string_view name) {
  Registry& r = registry();
  return lookup(r.counters, r.mu, name);
}

Gauge& gauge(std::string_view name) {
  Registry& r = registry();
  return lookup(r.gauges, r.mu, name);
}

Histogram& histogram(std::string_view name) {
  Registry& r = registry();
  return lookup(r.histograms, r.mu, name);
}

Snapshot snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  Snapshot snap;
  snap.counters.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters)
    snap.counters.push_back({name, c->total()});
  snap.gauges.reserve(r.gauges.size());
  for (const auto& [name, g] : r.gauges)
    snap.gauges.push_back({name, g->value()});
  snap.histograms.reserve(r.histograms.size());
  for (const auto& [name, h] : r.histograms) {
    HistogramValue hv;
    hv.name = name;
    h->fill(hv);
    snap.histograms.push_back(std::move(hv));
  }
  return snap;
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, c] : r.counters) c->clear();
  for (auto& [name, g] : r.gauges) g->clear();
  for (auto& [name, h] : r.histograms) h->clear();
}

#endif  // DIVSEC_OBS

// ---------------------------------------------------------------------------
// Sidecar JSON — emit, parse, merge, file I/O (always compiled).
// ---------------------------------------------------------------------------

std::string metrics_json(const Snapshot& snap) {
  std::string out;
  out += "{\n  \"divsec_metrics\": 1,\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    " + util::json_string(snap.counters[i].name) + ": " +
           std::to_string(snap.counters[i].value);
  }
  out += snap.counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    " + util::json_string(snap.gauges[i].name) + ": " +
           std::to_string(snap.gauges[i].value);
  }
  out += snap.gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramValue& h = snap.histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    " + util::json_string(h.name) +
           ": {\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + std::to_string(h.sum) + ", \"buckets\": [";
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (b) out += ",";
      out += std::to_string(h.buckets[b]);
    }
    out += "]}";
  }
  out += snap.histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

namespace {

/// Minimal strict parser for the sidecar shape emitted above. Metric
/// names are dotted-lowercase identifiers, so escape sequences inside
/// strings are rejected rather than decoded.
struct SidecarParser {
  std::string_view text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("metrics sidecar: " + what + " at byte " +
                             std::to_string(pos));
  }
  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\n' || text[pos] == '\r' ||
            text[pos] == '\t'))
      ++pos;
  }
  char peek() {
    skip_ws();
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }
  bool consume(char c) {
    if (pos < text.size() && peek() == c) {
      ++pos;
      return true;
    }
    return false;
  }
  std::string parse_string() {
    expect('"');
    std::string s;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\') fail("escape sequences not supported");
      s += text[pos++];
    }
    if (pos >= text.size()) fail("unterminated string");
    ++pos;
    return s;
  }
  std::uint64_t parse_u64() {
    skip_ws();
    if (pos >= text.size() || text[pos] < '0' || text[pos] > '9')
      fail("expected unsigned integer");
    std::uint64_t v = 0;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
      const std::uint64_t digit = static_cast<std::uint64_t>(text[pos] - '0');
      if (v > (UINT64_MAX - digit) / 10) fail("integer overflow");
      v = v * 10 + digit;
      ++pos;
    }
    return v;
  }
  void expect_key(const std::string& key) {
    if (parse_string() != key) fail("expected key \"" + key + "\"");
    expect(':');
  }
};

}  // namespace

Snapshot parse_metrics_json(std::string_view text) {
  SidecarParser p{text};
  Snapshot snap;
  p.expect('{');
  p.expect_key("divsec_metrics");
  if (p.parse_u64() != 1)
    throw std::runtime_error("metrics sidecar: unsupported version");
  p.expect(',');
  p.expect_key("counters");
  p.expect('{');
  if (!p.consume('}')) {
    do {
      CounterValue c;
      c.name = p.parse_string();
      p.expect(':');
      c.value = p.parse_u64();
      snap.counters.push_back(std::move(c));
    } while (p.consume(','));
    p.expect('}');
  }
  p.expect(',');
  p.expect_key("gauges");
  p.expect('{');
  if (!p.consume('}')) {
    do {
      GaugeValue g;
      g.name = p.parse_string();
      p.expect(':');
      g.value = p.parse_u64();
      snap.gauges.push_back(std::move(g));
    } while (p.consume(','));
    p.expect('}');
  }
  p.expect(',');
  p.expect_key("histograms");
  p.expect('{');
  if (!p.consume('}')) {
    do {
      HistogramValue h;
      h.name = p.parse_string();
      p.expect(':');
      p.expect('{');
      p.expect_key("count");
      h.count = p.parse_u64();
      p.expect(',');
      p.expect_key("sum");
      h.sum = p.parse_u64();
      p.expect(',');
      p.expect_key("buckets");
      p.expect('[');
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        if (b) p.expect(',');
        h.buckets[b] = p.parse_u64();
      }
      p.expect(']');
      p.expect('}');
      snap.histograms.push_back(std::move(h));
    } while (p.consume(','));
    p.expect('}');
  }
  p.expect('}');
  // Sorted order is part of the format, but a hand-edited sidecar
  // shouldn't break lookups — restore the invariant instead.
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void merge_into(Snapshot& into, const Snapshot& from) {
  for (const CounterValue& c : from.counters) {
    const auto it = find_by_name(into.counters, c.name);
    if (it == into.counters.end()) {
      into.counters.insert(
          std::lower_bound(into.counters.begin(), into.counters.end(), c.name,
                           [](const CounterValue& e, std::string_view key) {
                             return e.name < key;
                           }),
          c);
    } else {
      const auto idx = static_cast<std::size_t>(it - into.counters.cbegin());
      into.counters[idx].value += c.value;
    }
  }
  for (const GaugeValue& g : from.gauges) {
    const auto it = find_by_name(into.gauges, g.name);
    if (it == into.gauges.end()) {
      into.gauges.insert(
          std::lower_bound(into.gauges.begin(), into.gauges.end(), g.name,
                           [](const GaugeValue& e, std::string_view key) {
                             return e.name < key;
                           }),
          g);
    } else {
      const auto idx = static_cast<std::size_t>(it - into.gauges.cbegin());
      into.gauges[idx].value = std::max(into.gauges[idx].value, g.value);
    }
  }
  for (const HistogramValue& h : from.histograms) {
    const auto it = find_by_name(into.histograms, h.name);
    if (it == into.histograms.end()) {
      into.histograms.insert(
          std::lower_bound(into.histograms.begin(), into.histograms.end(),
                           h.name,
                           [](const HistogramValue& e, std::string_view key) {
                             return e.name < key;
                           }),
          h);
    } else {
      const auto idx = static_cast<std::size_t>(it - into.histograms.cbegin());
      HistogramValue& dst = into.histograms[idx];
      dst.count += h.count;
      dst.sum += h.sum;
      for (std::size_t b = 0; b < kHistogramBuckets; ++b)
        dst.buckets[b] += h.buckets[b];
    }
  }
}

void write_metrics_file(const std::string& path, const Snapshot& snap) {
  const std::string body = metrics_json(snap);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw std::runtime_error("cannot write metrics file: " + path);
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = n == body.size() && std::fclose(f) == 0;
  if (!ok) throw std::runtime_error("short write on metrics file: " + path);
}

Snapshot read_metrics_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw std::runtime_error("cannot read metrics file: " + path);
  std::string body;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) body.append(buf, n);
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) throw std::runtime_error("read error on metrics file: " + path);
  return parse_metrics_json(body);
}

}  // namespace divsec::obs
