// obs/progress.h — throttled stderr heartbeat for long-running sweeps.
//
// Deliberately independent of the DIVSEC_OBS compile gate: progress is
// an operator affordance, not telemetry, and a DIVSEC_OBS=0 build of
// `divsec_sweep adapt` should still say what round it is on. Output
// goes to stderr only, so it can never perturb CSV/state bytes; the
// DIVSEC_PROGRESS=0 environment variable silences everything (CI byte
// -diff legs and golden-output tests set it defensively, though stdout
// capture alone is already sufficient).
#pragma once

#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace divsec::obs {

/// False when DIVSEC_PROGRESS=0 is set in the environment.
inline bool progress_enabled() noexcept {
  static const bool on = [] {
    const char* env = std::getenv("DIVSEC_PROGRESS");
    return !(env != nullptr && env[0] == '0' && env[1] == '\0');
  }();
  return on;
}

/// One unconditional (modulo DIVSEC_PROGRESS=0) stderr line with the
/// "divsec: " prefix. Coordinator-level summaries (adaptive rounds) use
/// this; per-unit spam belongs in a Heartbeat.
inline void progress_line(const char* fmt, ...) {
  if (!progress_enabled()) return;
  std::fputs("divsec: ", stderr);
  std::va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}

/// Throttled progress meter over a known unit total (replications,
/// cells). The first line only appears after `min_interval_s`, so
/// short runs — unit tests, small shards — stay completely silent.
class Heartbeat {
 public:
  Heartbeat(const char* label, std::uint64_t total_units,
            double min_interval_s = 0.5)
      : label_(label),
        total_(total_units),
        interval_(min_interval_s),
        start_(Clock::now()),
        last_(start_) {}

  void tick(std::uint64_t done_units) {
    if (!progress_enabled()) return;
    const Clock::time_point now = Clock::now();
    if (seconds(now - last_) < interval_) return;
    const double elapsed = seconds(now - start_);
    const double rate =
        elapsed > 0.0 ? static_cast<double>(done_units) / elapsed : 0.0;
    const double pct =
        total_ > 0 ? 100.0 * static_cast<double>(done_units) /
                         static_cast<double>(total_)
                   : 0.0;
    if (rate > 0.0 && total_ > done_units) {
      const double eta = static_cast<double>(total_ - done_units) / rate;
      std::fprintf(stderr,
                   "divsec: [%s] %" PRIu64 "/%" PRIu64
                   " (%.0f%%)  %.0f/s  ETA %.0fs\n",
                   label_, done_units, total_, pct, rate, eta);
    } else {
      std::fprintf(stderr,
                   "divsec: [%s] %" PRIu64 "/%" PRIu64 " (%.0f%%)  %.0f/s\n",
                   label_, done_units, total_, pct, rate);
    }
    last_ = now;
    printed_ = true;
  }

  /// Completion line — only if at least one tick printed, so silent
  /// runs stay silent.
  void finish(std::uint64_t done_units) {
    if (!printed_) return;
    std::fprintf(stderr,
                 "divsec: [%s] done: %" PRIu64 " units in %.1fs\n", label_,
                 done_units, seconds(Clock::now() - start_));
  }

 private:
  using Clock = std::chrono::steady_clock;
  static double seconds(Clock::duration d) {
    return std::chrono::duration_cast<std::chrono::duration<double>>(d).count();
  }

  const char* label_;
  std::uint64_t total_;
  double interval_;
  Clock::time_point start_;
  Clock::time_point last_;
  bool printed_ = false;
};

}  // namespace divsec::obs
