// obs/trace.h — RAII scoped spans flushed as Chrome trace-event JSON.
//
// Usage
//   obs::trace_start();                     // begin a session
//   { obs::Span s("adapt.round"); ... }     // anywhere, any thread
//   obs::trace_stop("run.trace.json");      // flush, Perfetto-loadable
//
// Spans record into per-thread buffers (one uncontended mutex each, so
// the flusher can drain safely); when no session is active the Span
// constructor is a single relaxed atomic load and records nothing.
// Span names must be string literals (or otherwise outlive the trace
// session) — the buffer stores the pointer, not a copy.
//
// Like metrics, traces are observational only: enabling a session never
// changes any CSV/state byte. With DIVSEC_OBS=0 spans compile to empty
// objects and trace_stop still writes a valid empty envelope so a
// `--trace FILE` flag keeps producing a loadable file.
#pragma once

#include <cstdint>
#include <string>

#if !defined(DIVSEC_OBS)
#define DIVSEC_OBS 1
#endif

namespace divsec::obs {

#if DIVSEC_OBS

/// True while a trace session is collecting (one relaxed load).
[[nodiscard]] bool trace_enabled() noexcept;

/// Begin a session: clears any previously collected events and starts
/// the clock. Idempotent while already tracing.
void trace_start();

/// End the session and render every collected span as Chrome
/// trace-event JSON ({"traceEvents": [...]}), timestamps in
/// microseconds since trace_start. Safe to call when no session ran
/// (returns an empty envelope).
[[nodiscard]] std::string trace_json();

/// trace_json() written to `path`; throws std::runtime_error on I/O
/// failure.
void trace_stop(const std::string& path);

/// Nanoseconds since the session epoch (monotonic).
[[nodiscard]] std::uint64_t trace_now_ns() noexcept;

/// Append one complete span to the calling thread's buffer. `name`
/// must outlive the session (use string literals).
void trace_record(const char* name, std::uint64_t begin_ns,
                  std::uint64_t end_ns) noexcept;

/// RAII complete-event span. Cheap enough for per-round and per-shard
/// scopes; per-superblock scopes are fine for profiling runs (buffers
/// grow unbounded while a session is active — see README).
class Span {
 public:
  explicit Span(const char* name) noexcept {
    if (trace_enabled()) {
      name_ = name;
      begin_ = trace_now_ns();
    }
  }
  ~Span() {
    if (name_ != nullptr) trace_record(name_, begin_, trace_now_ns());
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t begin_ = 0;
};

#else  // !DIVSEC_OBS

[[nodiscard]] inline bool trace_enabled() noexcept { return false; }
inline void trace_start() {}
[[nodiscard]] inline std::string trace_json() {
  return "{\"traceEvents\": [], \"displayTimeUnit\": \"ms\"}\n";
}
void trace_stop(const std::string& path);  // still writes the empty envelope
[[nodiscard]] inline std::uint64_t trace_now_ns() noexcept { return 0; }
inline void trace_record(const char*, std::uint64_t, std::uint64_t) noexcept {}

class Span {
 public:
  explicit Span(const char*) noexcept {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

#endif  // DIVSEC_OBS

}  // namespace divsec::obs
