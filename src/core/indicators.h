// indicators.h — the paper's security indicators and their estimators.
//
// Section II of the paper defines three indicators:
//  (i)  Time-To-Attack (TTA): "the time between the beginning and
//       completion of an attack";
//  (ii) Time-To-Security-Failure (TTSF, after Madan et al. DSN'02): "the
//       time between the beginning of the attack and the perceived attack
//       manifestation";
//  (iii) compromised ratio: "the number of compromised components at time
//       t with respect to the total number of components".
//
// Two measurement engines estimate them for a (description,
// configuration, threat) triple:
//  * kCampaign — the node-level network campaign simulator (slower,
//    produces all three indicators including c(t) curves);
//  * kStagedSan — the staged-attack SAN abstraction (fast; TTA/TTSF as
//    first-passage times; ratio degenerates to success indicator).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "attack/san_model.h"
#include "attack/stages.h"
#include "core/configuration.h"
#include "sim/stopping.h"
#include "stats/descriptive.h"
#include "stats/survival.h"

namespace divsec::sim {
class Executor;
}

namespace divsec::core {

enum class Engine { kCampaign, kStagedSan };

/// How the streaming reduction schedules its superblock tasks on the
/// executor. Both schedules perform the identical fold/merge sequence per
/// task, so results are bit-identical; only wall time differs.
///  * kElastic — shared atomic work queue over superblock tasks: a thread
///    pulls the next task when free, so skewed per-cell costs (a
///    monoculture arm simulating ~5x slower than a diversified one) no
///    longer idle the pool behind one thread's static chunk. When the
///    task count cannot feed every thread, the engine transparently falls
///    back to the static block schedule (more parallelism, same bits).
///  * kStatic — the pre-elastic fixed round schedule of block jobs
///    (sim::blocked_reduce_groups), kept addressable for A/B tests and
///    benchmarks.
enum class Scheduling { kElastic, kStatic };

/// Per-replication raw indicator values. Censored times are recorded at
/// the horizon t_max (standard fixed-censoring convention; the censored
/// flags preserve the information).
struct IndicatorSample {
  double tta = 0.0;
  bool tta_censored = true;
  double ttsf = 0.0;
  bool ttsf_censored = true;
  bool attack_succeeded = false;
  double final_ratio = 0.0;  // campaign engine only
  /// Campaign engine: compromised-component counts sampled at the upper
  /// edges of the ratio-curve bin grid (survival_bins equal bins over
  /// [0, horizon]), in units of 1/ratio_scale where ratio_scale is the
  /// component count of the simulated system. Integer counts so the
  /// curve accumulator's merge stays exact. Empty for the SAN engine,
  /// which has no c(t) trajectory.
  std::vector<std::uint32_t> ratio_counts;
  std::uint64_t ratio_scale = 0;
};

/// Replication-aggregated indicator estimates for one configuration.
struct IndicatorSummary {
  std::size_t replications = 0;
  double horizon_hours = 0.0;

  stats::OnlineStats tta;   // censored values included at horizon
  std::size_t tta_censored = 0;
  stats::OnlineStats ttsf;
  std::size_t ttsf_censored = 0;
  stats::OnlineStats final_ratio;
  std::size_t successes = 0;

  /// Censoring-aware estimates of the event times (streaming
  /// product-limit restricted mean / median + P² quantile sketches).
  /// `tta.mean()` / `ttsf.mean()` silently average censored-at-horizon
  /// values — a downward-biased estimate under censoring; these are the
  /// unbiased companions to report next to them.
  stats::CensoredTimeSummary tta_event;
  stats::CensoredTimeSummary ttsf_event;

  /// Mean compromised-ratio curve c(t) at the upper edges of
  /// survival_bins equal bins over [0, horizon] (the anchor c(0) = 0 is
  /// implicit). Streamed by the per-cell curve accumulator — every sweep
  /// cell gets its curve for free, no re-simulation. Empty for the SAN
  /// engine. Query at arbitrary t with core::curve_value_at.
  std::vector<double> ratio_curve;

  [[nodiscard]] double attack_success_probability() const noexcept {
    return replications ? static_cast<double>(successes) /
                              static_cast<double>(replications)
                        : 0.0;
  }
  [[nodiscard]] double tta_censor_fraction() const noexcept {
    return replications ? static_cast<double>(tta_censored) /
                              static_cast<double>(replications)
                        : 0.0;
  }
  [[nodiscard]] double ttsf_censor_fraction() const noexcept {
    return replications ? static_cast<double>(ttsf_censored) /
                              static_cast<double>(replications)
                        : 0.0;
  }

  std::vector<IndicatorSample> samples;  // per replication, in order
};

/// Variance-driven adaptive replication allocation (the sweep-level
/// Law & Kelton procedure; see MeasurementEngine::measure_scenarios_adaptive
/// and dist::run_adaptive). The sweep runs in superblock rounds: after
/// each round every active cell's streaming accumulator is tested against
/// the CI half-width rule (sim/stopping.h) and converged cells retire
/// from the task queue. Decisions land on superblock boundaries — the
/// superblock stays the distributable, replayable unit — so the recorded
/// per-cell achieved counts are always whole numbers of superblocks (or
/// the cell's final short superblock).
struct AdaptiveOptions {
  bool enabled = false;
  /// Per-indicator CI half-width targets at confidence_level, applied to
  /// the censored-at-horizon TTA/TTSF moments and the final compromised
  /// ratio; a cell retires when all three indicators meet either
  /// criterion (0 disables a criterion). The absolute floor is in ratio
  /// units for the compromised ratio and is scaled by the horizon for
  /// the time indicators (absolute_precision * horizon hours) so one
  /// knob covers all-censored cells whose relative rule never fires.
  double relative_precision = 0.05;
  double absolute_precision = 0.0;
  double confidence_level = 0.95;
  /// Replications before the rule may fire. 0 resolves to one superblock.
  std::size_t min_replications = 0;
  /// Hard cap per cell; 0 resolves to options.replications (and is
  /// always clamped to it — the fixed budget provisions the task plan).
  std::size_t max_replications = 0;
  /// Replications added per round to each still-active cell; 0 resolves
  /// to one superblock, other values round up to superblock multiples.
  std::size_t round_replications = 0;
};

/// The whole-superblock schedule an AdaptiveOptions resolves to against a
/// concrete budget and superblock size. Shared by the in-process driver
/// (MeasurementEngine::measure_scenarios_adaptive) and the cross-process
/// coordinator (dist::run_adaptive) so both make identical retirement
/// decisions — the recorded per-cell counts, and therefore the replay,
/// cannot depend on which driver ran.
struct AdaptiveSchedule {
  sim::StoppingRule rule;          // min/max resolved against the budget
  std::size_t first_superblocks = 1;  // superblocks per cell in round 1
  std::size_t round_superblocks = 1;  // superblocks per later round
};

[[nodiscard]] inline AdaptiveSchedule resolve_adaptive_schedule(
    const AdaptiveOptions& adaptive, std::size_t replications,
    std::size_t superblock) {
  AdaptiveSchedule s;
  s.rule.confidence_level = adaptive.confidence_level;
  s.rule.relative_precision = adaptive.relative_precision;
  s.rule.absolute_precision = adaptive.absolute_precision;
  const std::size_t min_reps =
      adaptive.min_replications
          ? std::min(adaptive.min_replications, replications)
          : std::min(superblock, replications);
  const std::size_t max_reps =
      adaptive.max_replications
          ? std::min(adaptive.max_replications, replications)
          : replications;
  s.rule.min_replications = min_reps;
  s.rule.max_replications = std::max(max_reps, min_reps);
  const std::size_t round_reps =
      adaptive.round_replications ? adaptive.round_replications : superblock;
  s.first_superblocks =
      std::max<std::size_t>(1, (min_reps + superblock - 1) / superblock);
  s.round_superblocks =
      std::max<std::size_t>(1, (round_reps + superblock - 1) / superblock);
  return s;
}

struct MeasurementOptions {
  Engine engine = Engine::kCampaign;
  std::size_t replications = 100;
  std::uint64_t seed = 2013;  // DSN 2013
  attack::CampaignOptions campaign{};
  attack::DetectionModel detection{};
  /// Retain per-replication IndicatorSummary::samples. When off (and no
  /// cell visitor asks for samples), measurement runs on the streaming
  /// aggregation backend: per-cell accumulators fed by fixed-size
  /// replication blocks, O(cells + threads × block) memory instead of
  /// O(cells × replications). Summaries are bit-identical either way.
  bool keep_samples = true;
  /// Replications per aggregation block of the streaming backend. The
  /// block decomposition is part of the determinism contract (partial
  /// accumulators merge in ascending block order), so it is a fixed
  /// number — never derived from the thread count. 0 resolves to
  /// sim::kDefaultReductionBlock.
  std::size_t replication_block = 0;
  /// Replications per superblock — the distributable unit of the
  /// two-level streaming reduction (sim/shard_plan.h). Superblock
  /// partials merge in ascending order into each cell's result, so a
  /// sweep can be split across OS processes at superblock boundaries and
  /// merged back bit-identically. Like the block, it is part of the
  /// determinism contract: a fixed number, never derived from thread or
  /// shard counts; must be a multiple of the resolved block. 0 resolves
  /// to sim::kDefaultSuperblockReps (block-aligned).
  std::size_t superblock = 0;
  /// Task scheduling of the streaming reduction (see Scheduling). Not
  /// part of the determinism contract — summaries are bit-identical
  /// under either value — so it is free to default to the elastic queue.
  Scheduling schedule = Scheduling::kElastic;
  /// Bins of the streaming product-limit (survival) estimators over
  /// [0, horizon]; bounds the bias of the censor-aware restricted mean
  /// and median to one bin width.
  std::size_t survival_bins = 64;
  /// Executor for (cell × replication) jobs; null falls back to
  /// sim::Executor::shared() (DIVSEC_THREADS-sized). Non-owning.
  /// Note the deliberate asymmetry with the low-level controllers
  /// (sim::run_replications, san estimators), where a null executor
  /// means strictly serial: measurement is the top-level hot path and
  /// parallelizes by default; set DIVSEC_THREADS=1 or pass a 1-thread
  /// executor to force the serial path. Results are bit-identical either
  /// way, and a caller already running inside an executor job reuses its
  /// thread inline (no nested parallelism or deadlock).
  const sim::Executor* executor = nullptr;
  /// Adaptive replication allocation (campaign scenario sweeps only).
  /// When enabled, measure_scenarios() delegates to the adaptive driver;
  /// options.replications becomes the per-cell budget cap.
  AdaptiveOptions adaptive{};
};

/// Step-1 bridge: derive the staged attack model (per-stage success
/// probabilities and rates) for a concrete configuration. This is the
/// "Attack Modeling" output of the pipeline: the component variants
/// picked by `config` determine the probabilities, exactly as the paper
/// prescribes.
[[nodiscard]] attack::StagedAttackModel derive_staged_model(
    const SystemDescription& description, const Configuration& config,
    const attack::ThreatProfile& profile, const attack::DetectionModel& detection);

/// Measure all indicators for one configuration.
[[nodiscard]] IndicatorSummary measure_indicators(
    const SystemDescription& description, const Configuration& config,
    const attack::ThreatProfile& profile, const MeasurementOptions& options);

/// Statistical comparison of two configurations' indicator summaries:
/// is B actually safer than A, or is the difference noise?
struct IndicatorComparison {
  /// Two-proportion z-test on attack success counts (A vs B).
  stats::ProportionTest success;
  /// Welch t-tests on the (censored-at-horizon) indicator values.
  stats::WelchTest tta;
  stats::WelchTest ttsf;
  /// Convenience verdict at the given alpha: B has significantly lower
  /// attack success probability than A.
  [[nodiscard]] bool b_is_significantly_safer(double alpha = 0.05) const noexcept {
    return success.difference > 0.0 && success.p_value < alpha;
  }
};
[[nodiscard]] IndicatorComparison compare_indicators(const IndicatorSummary& a,
                                                     const IndicatorSummary& b);

/// Mean compromised-ratio curve over replications, sampled at the given
/// time grid (campaign engine only). Interpolated from the streamed
/// binned curve accumulator — no per-configuration re-simulation.
[[nodiscard]] std::vector<double> mean_compromised_ratio_curve(
    const SystemDescription& description, const Configuration& config,
    const attack::ThreatProfile& profile, const MeasurementOptions& options,
    const std::vector<double>& time_grid_hours);

}  // namespace divsec::core
