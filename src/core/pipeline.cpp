#include "core/pipeline.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/measurement.h"
#include "stats/sensitivity.h"

namespace divsec::core {

Pipeline::Pipeline(const SystemDescription& description, attack::ThreatProfile profile,
                   PipelineOptions options)
    : description_(&description), profile_(std::move(profile)), options_(options) {
  profile_.validate();
  if (options_.measurement.replications < 2)
    throw std::invalid_argument("Pipeline: need >= 2 replications for ANOVA");
}

attack::StagedAttackModel Pipeline::attack_model(const Configuration& c) const {
  return derive_staged_model(*description_, c, profile_, options_.measurement.detection);
}

MeasurementTable Pipeline::measure_full_factorial(
    const std::vector<std::string>& component_names,
    std::size_t max_levels_per_factor) const {
  if (component_names.empty())
    throw std::invalid_argument("measure_full_factorial: no components named");
  const auto& comps = description_->components();
  MeasurementTable out;

  // Resolve the swept components and build the (possibly truncated) space.
  std::vector<stats::Factor> factors;
  for (const auto& name : component_names) {
    auto it = std::find_if(comps.begin(), comps.end(),
                           [&name](const Component& c) { return c.name == name; });
    if (it == comps.end())
      throw std::invalid_argument("measure_full_factorial: unknown component '" +
                                  name + "'");
    const std::size_t idx = static_cast<std::size_t>(it - comps.begin());
    out.component_index.push_back(idx);
    stats::Factor f;
    f.name = name;
    const auto& variants = description_->catalog().variants(it->kind);
    std::size_t levels = variants.size();
    if (max_levels_per_factor != 0)
      levels = std::min(levels, max_levels_per_factor);
    if (levels < 2)
      throw std::invalid_argument("measure_full_factorial: component '" + name +
                                  "' has < 2 levels to sweep");
    for (std::size_t v = 0; v < levels; ++v) f.levels.push_back(variants[v].name);
    factors.push_back(std::move(f));
  }
  out.space = stats::FactorSpace(std::move(factors));

  // Enumerate configurations in FactorSpace order, then measure the whole
  // table as one batched (cell × replication) job list.
  const std::size_t n = out.space.configuration_count();
  MeasurementPlan plan;
  plan.cells.reserve(n);
  for (std::size_t flat = 0; flat < n; ++flat) {
    const std::vector<int> levels = out.space.decode(flat);
    Configuration config = description_->baseline_configuration();
    for (std::size_t f = 0; f < levels.size(); ++f)
      config.variant[out.component_index[f]] = static_cast<std::size_t>(levels[f]);
    // Independent seed block per cell so cells are statistically
    // independent but the whole table is reproducible.
    plan.cells.push_back({std::move(config), options_.measurement.seed + 7919 * flat});
  }

  // Extract the per-replicate response vectors through the engine's cell
  // visitor, so keep_samples=false genuinely avoids retaining raw
  // samples on large factorials.
  out.tta_cells.resize(n);
  out.ttsf_cells.resize(n);
  out.success_cells.resize(n);
  const MeasurementEngine engine(*description_, profile_, options_.measurement);
  std::vector<IndicatorSummary> summaries = engine.measure(
      plan, [&out](std::size_t cell, std::span<const IndicatorSample> samples) {
        auto& tta = out.tta_cells[cell];
        auto& ttsf = out.ttsf_cells[cell];
        auto& success = out.success_cells[cell];
        tta.reserve(samples.size());
        ttsf.reserve(samples.size());
        success.reserve(samples.size());
        for (const auto& s : samples) {
          tta.push_back(s.tta);
          ttsf.push_back(s.ttsf);
          success.push_back(s.attack_succeeded ? 1.0 : 0.0);
        }
      });

  out.summaries = std::move(summaries);
  out.configurations.reserve(n);
  for (auto& cell : plan.cells)
    out.configurations.push_back(std::move(cell.configuration));
  return out;
}

Pipeline::Screening Pipeline::screen() const {
  const auto& comps = description_->components();
  std::vector<std::string> names;
  names.reserve(comps.size());
  for (const auto& c : comps) names.push_back(c.name);
  Screening out;
  out.design = stats::plackett_burman(std::move(names));

  MeasurementPlan plan;
  plan.cells.reserve(out.design.runs.size());
  for (const auto& run : out.design.runs) {
    Configuration config = description_->baseline_configuration();
    for (std::size_t f = 0; f < comps.size(); ++f) {
      if (run[f] > 0)
        config.variant[f] = description_->catalog().count(comps[f].kind) - 1;
    }
    plan.cells.push_back({std::move(config), options_.measurement.seed});
  }
  const MeasurementEngine engine(*description_, profile_, options_.measurement);
  for (const IndicatorSummary& s : engine.measure(plan)) {
    out.mean_tta.push_back(s.tta.mean());
    out.success_prob.push_back(s.attack_success_probability());
  }
  out.tta_effects = stats::main_effects(out.design, out.mean_tta);
  out.success_effects = stats::main_effects(out.design, out.success_prob);
  return out;
}

Pipeline::Fractional Pipeline::measure_fractional(
    const std::vector<std::string>& base_components,
    const std::vector<std::pair<std::string, std::string>>& generators) const {
  const auto& comps = description_->components();
  const auto index_of = [&comps](const std::string& name) {
    auto it = std::find_if(comps.begin(), comps.end(),
                           [&name](const Component& c) { return c.name == name; });
    if (it == comps.end())
      throw std::invalid_argument("measure_fractional: unknown component '" + name +
                                  "'");
    return static_cast<std::size_t>(it - comps.begin());
  };

  std::vector<stats::Generator> gens;
  gens.reserve(generators.size());
  for (const auto& [factor, word] : generators) gens.push_back({factor, word});

  Fractional out;
  out.design = stats::fractional_factorial(base_components, gens);
  out.aliases = stats::alias_structure(base_components.size(), gens);

  // Map every design factor (base + generated) to a component index.
  std::vector<std::size_t> comp_index;
  for (const auto& name : out.design.factor_names) comp_index.push_back(index_of(name));

  MeasurementPlan plan;
  plan.cells.reserve(out.design.run_count());
  for (std::size_t r = 0; r < out.design.run_count(); ++r) {
    Configuration config = description_->baseline_configuration();
    for (std::size_t f = 0; f < comp_index.size(); ++f) {
      if (out.design.runs[r][f] > 0) {
        const std::size_t ci = comp_index[f];
        config.variant[ci] = description_->catalog().count(comps[ci].kind) - 1;
      }
    }
    plan.cells.push_back({std::move(config), options_.measurement.seed + 104729 * r});
  }
  const MeasurementEngine engine(*description_, profile_, options_.measurement);
  for (const IndicatorSummary& s : engine.measure(plan)) {
    out.success_prob.push_back(s.attack_success_probability());
    out.mean_tta.push_back(s.tta.mean());
  }
  out.success_effects = stats::main_effects(out.design, out.success_prob);
  out.tta_effects = stats::main_effects(out.design, out.mean_tta);
  return out;
}

Assessment Pipeline::assess(const MeasurementTable& table) const {
  if (table.configurations.empty())
    throw std::invalid_argument("assess: empty measurement table");
  std::vector<std::size_t> levels;
  std::vector<std::string> names;
  for (std::size_t f = 0; f < table.space.factor_count(); ++f) {
    levels.push_back(table.space.factor(f).levels.size());
    names.push_back(table.space.factor(f).name);
  }
  Assessment out;
  out.tta_anova = stats::factorial_anova(levels, names, table.tta_cells,
                                         options_.max_interaction_order);
  out.ttsf_anova = stats::factorial_anova(levels, names, table.ttsf_cells,
                                          options_.max_interaction_order);
  out.success_anova = stats::factorial_anova(levels, names, table.success_cells,
                                             options_.max_interaction_order);

  // Rank main effects on the success indicator.
  for (const auto& e : stats::rank_by_variance_share(out.success_anova)) {
    if (e.name.find(':') != std::string::npos) continue;  // interactions
    out.ranking.push_back(e);
  }
  for (const auto& e : out.ranking)
    if (e.eta_squared >= options_.recommend_eta_squared &&
        e.p_value < options_.recommend_alpha)
      out.recommended.push_back(e.name);

  std::ostringstream os;
  os << "=== Diversity Assessment (" << profile_.name << ") ===\n\n";
  os << "-- ANOVA: attack success probability --\n"
     << out.success_anova.to_string() << "\n";
  os << "-- ANOVA: Time-To-Attack (censored at horizon) --\n"
     << out.tta_anova.to_string() << "\n";
  os << "-- ANOVA: Time-To-Security-Failure (censored at horizon) --\n"
     << out.ttsf_anova.to_string() << "\n";
  os << "-- Components ranked by success-probability variance share --\n";
  for (const auto& e : out.ranking)
    os << "  " << e.name << "  eta^2=" << e.eta_squared << "  p=" << e.p_value << "\n";
  os << "\n-- Recommended to diversify --\n";
  if (out.recommended.empty())
    os << "  (none met the thresholds)\n";
  else
    for (const auto& r : out.recommended) os << "  " << r << "\n";
  out.report = os.str();
  return out;
}

Pipeline::Result Pipeline::run(const std::vector<std::string>& component_names,
                               std::size_t max_levels_per_factor) const {
  Result r;
  r.table = measure_full_factorial(component_names, max_levels_per_factor);
  r.assessment = assess(r.table);
  return r;
}

}  // namespace divsec::core
