#include "core/probability_space.h"

#include <algorithm>
#include <stdexcept>

#include "san/analysis.h"

namespace divsec::core {

StageProbabilitySpace::StageProbabilitySpace(attack::StagedAttackModel base)
    : StageProbabilitySpace(std::move(base), {}) {
  for (auto& r : ranges_) r = Range{0.0, 1.0};
}

StageProbabilitySpace::StageProbabilitySpace(
    attack::StagedAttackModel base, std::array<Range, attack::kStageCount> ranges)
    : base_(std::move(base)), ranges_(ranges) {
  base_.validate();
  for (const auto& r : ranges_) {
    if (r.lo < 0.0 || r.hi > 1.0 || r.lo > r.hi)
      throw std::invalid_argument(
          "StageProbabilitySpace: ranges must satisfy 0 <= lo <= hi <= 1");
  }
}

attack::StagedAttackModel StageProbabilitySpace::at(
    std::span<const double> unit_point) const {
  if (unit_point.size() != attack::kStageCount)
    throw std::invalid_argument("StageProbabilitySpace::at: need one value per stage");
  attack::StagedAttackModel m = base_;
  for (std::size_t i = 0; i < attack::kStageCount; ++i) {
    const double u = std::clamp(unit_point[i], 0.0, 1.0);
    m.transitions[i].success_probability =
        ranges_[i].lo + u * (ranges_[i].hi - ranges_[i].lo);
  }
  return m;
}

StageIndicator success_probability_indicator(double horizon_hours,
                                             std::size_t replications,
                                             std::uint64_t seed) {
  if (!(horizon_hours > 0.0) || replications == 0)
    throw std::invalid_argument("success_probability_indicator: bad arguments");
  return [horizon_hours, replications, seed](const attack::StagedAttackModel& m) {
    const attack::AttackSan asan = attack::build_attack_san(m);
    const auto fp = san::first_passage(asan.model, asan.success_predicate(),
                                       horizon_hours, replications, seed);
    return fp.absorption_probability();
  };
}

StageIndicator expected_tta_indicator() {
  return [](const attack::StagedAttackModel& m) { return m.expected_total_time(); };
}

StageScreening morris_stage_screening(const StageProbabilitySpace& space,
                                      const StageIndicator& indicator,
                                      std::size_t trajectories, std::uint64_t seed) {
  if (!indicator) throw std::invalid_argument("morris_stage_screening: null indicator");
  stats::Rng rng(seed);
  const stats::MorrisDesign design =
      stats::morris_design(attack::kStageCount, trajectories, rng);
  std::vector<double> evals;
  evals.reserve(design.evaluation_count());
  for (const auto& traj : design.trajectories)
    for (const auto& point : traj.points) evals.push_back(indicator(space.at(point)));
  StageScreening out;
  out.effects = stats::morris_effects(design, evals);
  out.evaluations = evals.size();
  return out;
}

std::vector<StageTornadoEntry> stage_tornado(const StageProbabilitySpace& space,
                                             const StageIndicator& indicator) {
  if (!indicator) throw std::invalid_argument("stage_tornado: null indicator");
  std::vector<StageTornadoEntry> out;
  std::vector<double> mid(attack::kStageCount, 0.5);
  for (std::size_t i = 0; i < attack::kStageCount; ++i) {
    StageTornadoEntry e;
    e.stage = i;
    std::vector<double> point = mid;
    point[i] = 0.0;
    e.at_lo = indicator(space.at(point));
    point[i] = 0.5;
    e.at_mid = indicator(space.at(point));
    point[i] = 1.0;
    e.at_hi = indicator(space.at(point));
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const StageTornadoEntry& a, const StageTornadoEntry& b) {
              return a.swing() > b.swing();
            });
  return out;
}

}  // namespace divsec::core
