// ratio_curve.h — streaming accumulator for the paper's compromised-ratio
// curve c(t).
//
// Indicator (iii) of the paper is "the number of compromised components
// at time t with respect to the total number of components". Each
// campaign replication yields a step curve; the mean curve over
// replications used to require re-simulating a configuration with
// retained trajectories. This accumulator streams it instead: every
// replication is sampled at the upper edges of a fixed bin grid over
// [0, horizon] as *integer* compromised-component counts (ratio ×
// component count), and per-bin count sums accumulate as uint64. The
// merge adds count sums — exact and order-independent, exactly like
// StreamingSurvival's bin merge — so the mean curve falls out of the
// standard blocked reduction bit-identically for any DIVSEC_THREADS or
// shard cut, with no retained samples and no re-simulation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace divsec::core {

/// Per-bin sums of compromised-component counts at bin upper edges.
/// `scale` is the component count the integer counts are measured
/// against (ratio = count / scale); it is adopted from the first add or
/// merge partner and must agree thereafter — one accumulator summarizes
/// one configuration, whose component count is fixed.
class RatioCurveAccumulator {
 public:
  /// The complete internal state, exposed for the distributed-sweep
  /// serialization layer. `sums` is empty for the default-constructed
  /// mergeable empty state; `scale` is 0 until the first observation.
  /// from_state(state()) restores the accumulator exactly.
  struct State {
    double horizon = 0.0;
    std::uint64_t scale = 0;
    std::uint64_t n = 0;
    std::vector<std::uint64_t> sums;
  };

  /// Mergeable empty state (adopts the first non-empty merge partner).
  RatioCurveAccumulator() = default;
  /// horizon > 0, bins >= 1 (std::invalid_argument otherwise).
  RatioCurveAccumulator(double horizon, std::size_t bins);

  [[nodiscard]] State state() const;
  /// Restores from exported state; validates shape (per-bin sums cannot
  /// exceed n × scale, counts require a scale) and throws
  /// std::invalid_argument on corrupt state.
  [[nodiscard]] static RatioCurveAccumulator from_state(const State& s);

  /// Record one replication's curve: compromised counts at each bin
  /// upper edge, in units of 1/scale. counts.size() must equal bins().
  void add(std::span<const std::uint32_t> counts, std::uint64_t scale);
  /// Requires identical (horizon, bins, scale) unless one side is empty.
  void merge(const RatioCurveAccumulator& other);

  [[nodiscard]] double horizon() const noexcept { return horizon_; }
  [[nodiscard]] std::size_t bins() const noexcept { return sums_.size(); }
  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t scale() const noexcept { return scale_; }
  [[nodiscard]] const std::vector<std::uint64_t>& sums() const noexcept {
    return sums_;
  }

  /// Mean ratio at each bin upper edge (size bins(); the implicit
  /// anchor c(0) = 0 is not stored). Empty when no curve was recorded.
  [[nodiscard]] std::vector<double> mean_curve() const;

 private:
  double horizon_ = 0.0;
  std::uint64_t scale_ = 0;
  std::uint64_t n_ = 0;
  std::vector<std::uint64_t> sums_;  // per bin upper edge
};

/// Evaluate a binned mean curve (values at the upper edges of
/// curve.size() equal bins over [0, horizon]) at time t: linear
/// interpolation anchored at (0, 0), clamped to the last value past the
/// horizon. Preserves monotonicity of the bin values.
[[nodiscard]] double curve_value_at(std::span<const double> curve,
                                    double horizon, double t);

}  // namespace divsec::core
