#include "core/measurement.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/indicator_accumulator.h"
#include "net/reachability_index.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "san/simulator.h"
#include "sim/executor.h"
#include "sim/shard_plan.h"
#include "sim/streaming.h"

namespace divsec::core {

namespace {

/// Shared-context telemetry (replaces the old MeasurementOptions::
/// context_stats plumbing). Process-cumulative: tests and benches read
/// per-call deltas via obs::reset().
obs::Counter& contexts_built_counter() {
  static obs::Counter& c = obs::counter("core.context.built");
  return c;
}
obs::Gauge& contexts_peak_live_gauge() {
  static obs::Gauge& g = obs::gauge("core.context.peak_live");
  return g;
}
obs::Counter& reach_builds_counter() {
  static obs::Counter& c = obs::counter("core.context.reach_builds");
  return c;
}
obs::Counter& reach_dedup_counter() {
  static obs::Counter& c = obs::counter("core.context.reach_dedup_hits");
  return c;
}

/// Read-only per-cell state shared by that cell's replication jobs.
/// Exactly one of `campaign` / `san` is engaged, per the options' engine.
struct CellContext {
  std::optional<attack::CampaignSimulator> campaign;

  struct StagedSan {
    attack::AttackSan asan;
    san::Predicate terminal;
  };
  std::optional<StagedSan> san;
};

/// One (cell, replication) job. All randomness comes from `rng`, so the
/// sample depends only on (cell seed, replication index).
IndicatorSample run_job(const CellContext& ctx, double horizon,
                        std::size_t curve_bins, stats::Rng rng) {
  IndicatorSample s;
  if (ctx.campaign) {
    const attack::CampaignResult r = ctx.campaign->run(rng);
    s.tta = r.time_to_attack.value_or(horizon);
    s.tta_censored = !r.time_to_attack.has_value();
    s.ttsf = r.time_to_detection.value_or(horizon);
    s.ttsf_censored = !r.time_to_detection.has_value();
    s.attack_succeeded = r.attack_succeeded();
    s.final_ratio =
        r.compromised_ratio.empty() ? 0.0 : r.compromised_ratio.back().second;
    // Sample the replication's step curve at the curve-grid bin upper
    // edges as integer compromised-component counts (the recorded ratio
    // is count / node_count, so the llround recovers the count exactly);
    // the curve accumulator sums these exactly across any merge order.
    const std::size_t nodes = ctx.campaign->scenario().topology.node_count();
    s.ratio_scale = static_cast<std::uint64_t>(nodes);
    s.ratio_counts.resize(curve_bins);
    for (std::size_t k = 0; k < curve_bins; ++k) {
      const double t = horizon * static_cast<double>(k + 1) /
                       static_cast<double>(curve_bins);
      s.ratio_counts[k] = static_cast<std::uint32_t>(
          std::llround(r.ratio_at(t) * static_cast<double>(nodes)));
    }
  } else {
    san::SanSimulator sim(ctx.san->asan.model, rng);
    const auto t = sim.run_until_predicate(ctx.san->terminal, horizon);
    const bool succeeded = t && sim.tokens(ctx.san->asan.success_place) >= 1;
    const bool detected = t && sim.tokens(ctx.san->asan.detected_place) >= 1;
    s.tta = succeeded ? *t : horizon;
    s.tta_censored = !succeeded;
    s.ttsf = detected ? *t : horizon;
    s.ttsf_censored = !detected;
    s.attack_succeeded = succeeded;
    s.final_ratio = succeeded ? 1.0 : 0.0;
  }
  return s;
}

}  // namespace

/// The one place cell contexts come from — every entry point (measure,
/// measure_scenarios, measure_scenario_tasks) used to carry its own
/// eager construction loop; they now all go through this factory, which
/// run_tasks drives lazily one scheduling round at a time.
///
/// Campaign contexts from structurally identical topologies share one
/// net::ReachabilityIndex: the cache is keyed on the FULL structural
/// input (ReachabilityIndex::StructuralKey, compared on fingerprint
/// hits — a hash collision can cost a lookup, never alias an index).
/// Concurrent builders of the same key deduplicate through a
/// shared_future, so a fleet of same-topology cells pays the all-pairs
/// sweep exactly once. Construction consumes no randomness, so sharing
/// and laziness leave results bit-identical.
///
/// Thread-safe; one instance per measurement call (the cache — and the
/// indexes it pins — lives exactly that long).
class MeasurementEngine::ContextFactory {
 public:
  /// Configuration-plan cells (instantiated through the description).
  ContextFactory(const SystemDescription& description,
                 const attack::ThreatProfile& profile,
                 const MeasurementOptions& options,
                 std::span<const MeasurementCell> cells)
      : description_(&description),
        catalog_(&description.catalog()),
        profile_(&profile),
        options_(&options),
        config_cells_(cells) {}

  /// Explicit-scenario cells (campaign engine; callers validate).
  ContextFactory(const divers::VariantCatalog& catalog,
                 const attack::ThreatProfile& profile,
                 const MeasurementOptions& options,
                 std::span<const ScenarioCell> cells)
      : catalog_(&catalog),
        profile_(&profile),
        options_(&options),
        scenario_cells_(cells) {}

  [[nodiscard]] std::size_t cell_count() const noexcept {
    return description_ ? config_cells_.size() : scenario_cells_.size();
  }

  /// Build cell c's context. Thread-safe (run_tasks builds a round's
  /// contexts in a parallel_for).
  [[nodiscard]] std::unique_ptr<CellContext> build(std::size_t c) {
    auto ctx = std::make_unique<CellContext>();
    if (options_->engine == Engine::kStagedSan) {
      auto& staged = ctx->san.emplace();
      staged.asan = attack::build_attack_san(
          derive_staged_model(*description_, config_cells_[c].configuration,
                              *profile_, options_->detection));
      staged.terminal = staged.asan.terminal_predicate();
    } else {
      attack::Scenario sc = description_
                                ? description_->instantiate(
                                      config_cells_[c].configuration)
                                : scenario_cells_[c].scenario;
      auto reach = shared_reach(sc.topology, sc.firewall);
      ctx->campaign.emplace(std::move(sc), *profile_, *catalog_,
                            options_->detection, options_->campaign,
                            std::move(reach));
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++live_;
      peak_live_ = std::max(peak_live_, live_);
      contexts_peak_live_gauge().record_max(peak_live_);
    }
    contexts_built_counter().add(1);
    return ctx;
  }

  /// run_tasks reports contexts it drops, so peak_live_ means what it says.
  void note_dropped(std::size_t count) {
    const std::lock_guard<std::mutex> lock(mu_);
    live_ -= count;
  }

 private:
  using IndexPtr = std::shared_ptr<const net::ReachabilityIndex>;

  [[nodiscard]] IndexPtr shared_reach(const net::Topology& topo,
                                      const net::Firewall& fw) {
    auto key = net::ReachabilityIndex::structural_key(topo, fw);
    const std::uint64_t fp = key.fingerprint();
    std::promise<IndexPtr> promise;
    std::shared_future<IndexPtr> future;
    bool builder = false;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      auto& bucket = reach_cache_[fp];
      for (const auto& entry : bucket)
        if (entry.key == key) {
          future = entry.future;
          break;
        }
      if (!future.valid()) {
        future = promise.get_future().share();
        bucket.push_back(Entry{std::move(key), future});
        builder = true;
      }
    }
    if (builder)
      reach_builds_counter().add(1);
    else
      reach_dedup_counter().add(1);
    if (builder) {
      try {
        promise.set_value(std::make_shared<const net::ReachabilityIndex>(topo, fw));
      } catch (...) {
        promise.set_exception(std::current_exception());
      }
    }
    return future.get();
  }

  const SystemDescription* description_ = nullptr;
  const divers::VariantCatalog* catalog_;
  const attack::ThreatProfile* profile_;
  const MeasurementOptions* options_;
  std::span<const MeasurementCell> config_cells_;
  std::span<const ScenarioCell> scenario_cells_;

  struct Entry {
    net::ReachabilityIndex::StructuralKey key;
    std::shared_future<IndexPtr> future;
  };
  std::mutex mu_;
  std::unordered_map<std::uint64_t, std::vector<Entry>> reach_cache_;
  std::size_t live_ = 0;
  std::size_t peak_live_ = 0;
};

namespace {

void validate_options(const MeasurementOptions& options) {
  if (options.replications == 0)
    throw std::invalid_argument("MeasurementEngine: need >= 1 replication");
  if (!(options.campaign.t_max_hours > 0.0))
    throw std::invalid_argument(
        "MeasurementEngine: campaign.t_max_hours (the measurement horizon) "
        "must be > 0");
  if (options.survival_bins == 0)
    throw std::invalid_argument("MeasurementEngine: need >= 1 survival bin");
}

}  // namespace

MeasurementEngine::MeasurementEngine(const SystemDescription& description,
                                     const attack::ThreatProfile& profile,
                                     const MeasurementOptions& options)
    : description_(&description),
      catalog_(&description.catalog()),
      profile_(&profile),
      options_(options),
      executor_(options.executor ? options.executor : &sim::Executor::shared()) {
  validate_options(options_);
}

MeasurementEngine::MeasurementEngine(const divers::VariantCatalog& catalog,
                                     const attack::ThreatProfile& profile,
                                     const MeasurementOptions& options)
    : description_(nullptr),
      catalog_(&catalog),
      profile_(&profile),
      options_(options),
      executor_(options.executor ? options.executor : &sim::Executor::shared()) {
  validate_options(options_);
}

sim::ShardPlan MeasurementEngine::shard_plan(std::size_t cells) const {
  return sim::ShardPlan::make(cells, options_.replications,
                              options_.replication_block, options_.superblock);
}

std::vector<IndicatorAccumulator> MeasurementEngine::run_tasks(
    ContextFactory& factory, std::span<const std::uint64_t> seeds,
    const sim::ShardPlan& shard, std::span<const std::uint64_t> tasks,
    std::vector<IndicatorSample>* samples,
    std::vector<double>* task_seconds) const {
  const double horizon = options_.campaign.t_max_hours;
  const std::size_t reps = options_.replications;
  const std::size_t total = tasks.size();
  const std::size_t threads = executor_->thread_count();
  const auto make = [&](std::size_t) {
    return IndicatorAccumulator(horizon, options_.survival_bins);
  };

  // The task list is consumed one scheduling round at a time — the same
  // 4 × threads sizing as the static block rounds — and cell contexts
  // are built only for the cells a round touches, then dropped once the
  // ascending task order has moved past them. Per-task partials depend
  // only on (cell, superblock, RNG contract), so chunking the schedule
  // changes no bits; it changes residency: a 10^4-cell sweep holds
  // O(threads) contexts instead of 10^4 (reachability indexes are
  // shared per topology through the factory and live for the whole
  // call, so round boundaries never rebuild one).
  const std::size_t round_tasks = std::max<std::size_t>(4 * threads, 1);
  std::vector<std::unique_ptr<CellContext>> slots(factory.cell_count());
  std::vector<std::size_t> live;   // engaged slots, ascending cell ids
  std::vector<std::size_t> fresh;  // scratch: cells this round must build

  // Heartbeat over replications actually scheduled (throttled; silent
  // for short calls). Stderr only — never a byte of output data.
  std::uint64_t total_reps = 0;
  for (const std::uint64_t t : tasks) {
    const sim::ShardPlan::Task task = shard.task(t);
    total_reps += task.end - task.begin;
  }
  obs::Heartbeat heartbeat("measure", total_reps);
  std::uint64_t done_reps = 0;

  std::vector<IndicatorAccumulator> out;
  out.reserve(total);
  if (task_seconds) {
    task_seconds->clear();
    task_seconds->reserve(total);
  }

  for (std::size_t begin = 0; begin < total; begin += round_tasks) {
    const obs::Span round_span("measure.round");
    const std::size_t end = std::min(begin + round_tasks, total);
    const std::size_t count = end - begin;

    // Contexts are independent, so a round's missing ones build in a
    // parallel_for of their own (same-topology duplicates dedupe on the
    // factory's index cache).
    fresh.clear();
    for (std::size_t t = begin; t < end; ++t) {
      const std::size_t cell = shard.task(tasks[t]).group;
      if (!slots[cell] && (fresh.empty() || fresh.back() != cell))
        fresh.push_back(cell);
    }
    executor_->parallel_for(0, fresh.size(), [&](std::size_t i) {
      const obs::Span build_span("context.build");
      slots[fresh[i]] = factory.build(fresh[i]);
    });
    live.insert(live.end(), fresh.begin(), fresh.end());

    // One blocked fold per superblock task: block partials merge in
    // ascending block order inside the task, so a task's partial depends
    // only on (cell, superblock, RNG contract) — not on the thread
    // count, the schedule, or which process runs it. Tasks past a cell's
    // replication count bound-check to no-ops (uniform task_span keeps
    // the schedule rectangular).
    const auto fold = [&](IndicatorAccumulator& a, std::size_t g,
                          std::size_t i) {
      const sim::ShardPlan::Task task = shard.task(tasks[begin + g]);
      const std::size_t rep = task.begin + i;
      if (rep >= task.end) return;
      const IndicatorSample s =
          run_job(*slots[task.group], horizon, options_.survival_bins,
                  stats::Rng(seeds[task.group], rep));
      if (samples) (*samples)[task.group * reps + rep] = s;
      a.add(s);
    };

    // Schedule selection, per round. The fold/merge sequence per task is
    // identical either way (bit-identical partials), so this is purely a
    // wall-time choice: the elastic work queue keeps threads busy under
    // skewed per-cell costs, while the static block rounds expose
    // sub-task parallelism when a round (e.g. the tail of the list)
    // cannot feed every thread.
    const bool queued =
        options_.schedule == Scheduling::kElastic && count >= threads;
    std::vector<IndicatorAccumulator> part;
    std::vector<double> part_seconds;
    if (queued) {
      part = sim::queued_reduce_groups<IndicatorAccumulator>(
          *executor_, count, shard.task_span(), shard.block(), make, fold,
          task_seconds ? &part_seconds : nullptr);
    } else if (!task_seconds) {
      part = sim::blocked_reduce_groups<IndicatorAccumulator>(
          *executor_, count, shard.task_span(), shard.block(), make, fold);
    } else {
      // Cost capture under the static rounds (a round with fewer tasks
      // than threads must not give up sub-task parallelism just to be
      // timed): one task's block jobs run on several threads, so
      // per-task seconds accumulate atomically from per-replication
      // timings — two clock reads per campaign replication, noise
      // against the simulation itself.
      std::unique_ptr<std::atomic<double>[]> seconds(
          new std::atomic<double>[count]());
      const auto timed_fold = [&](IndicatorAccumulator& a, std::size_t g,
                                  std::size_t i) {
        const auto start = std::chrono::steady_clock::now();
        fold(a, g, i);
        seconds[g].fetch_add(std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count(),
                             std::memory_order_relaxed);
      };
      part = sim::blocked_reduce_groups<IndicatorAccumulator>(
          *executor_, count, shard.task_span(), shard.block(), make,
          timed_fold);
      part_seconds.resize(count);
      for (std::size_t g = 0; g < count; ++g)
        part_seconds[g] = seconds[g].load(std::memory_order_relaxed);
    }
    for (auto& p : part) out.push_back(std::move(p));
    if (task_seconds)
      task_seconds->insert(task_seconds->end(), part_seconds.begin(),
                           part_seconds.end());

    // Drop what the ascending order has passed; keep cells the next
    // round still touches (a cell's tasks can straddle the boundary).
    const std::size_t keep_from =
        end < total ? shard.task(tasks[end]).group : factory.cell_count();
    std::size_t dropped = 0;
    while (dropped < live.size() && live[dropped] < keep_from)
      slots[live[dropped++]].reset();
    live.erase(live.begin(), live.begin() + static_cast<std::ptrdiff_t>(dropped));
    factory.note_dropped(dropped);

    for (std::size_t t = begin; t < end; ++t) {
      const sim::ShardPlan::Task task = shard.task(tasks[t]);
      done_reps += task.end - task.begin;
    }
    heartbeat.tick(done_reps);
  }
  factory.note_dropped(live.size());
  heartbeat.finish(done_reps);
  return out;
}

std::vector<IndicatorSummary> MeasurementEngine::run_cells(
    ContextFactory& factory, std::span<const std::uint64_t> seeds,
    const CellVisitor& visit) const {
  const std::size_t cells = factory.cell_count();
  const std::size_t reps = options_.replications;
  const double horizon = options_.campaign.t_max_hours;
  const auto make = [&](std::size_t) {
    return IndicatorAccumulator(horizon, options_.survival_bins);
  };

  // The in-process path is the K = 1 instance of the distributed plan:
  // every superblock task of every cell runs here, then the exact
  // reducer folds task partials in ascending (cell, superblock) order —
  // the identical code path and merge sequence divsec_sweep uses across
  // OS processes, and bit-identical for any DIVSEC_THREADS. Streaming
  // (the default with keep_samples off and no visitor) keeps memory at
  // O(cells + threads × block); the retain-everything path additionally
  // stores each sample into the (cell × replication) matrix the visitor
  // contract and keep_samples hand out, with the identical fold sequence.
  const bool retain = options_.keep_samples || static_cast<bool>(visit);
  std::vector<IndicatorSample> samples(retain ? cells * reps : 0);
  const sim::ShardPlan plan = shard_plan(cells);
  std::vector<std::uint64_t> all_tasks(plan.task_count());
  for (std::size_t t = 0; t < all_tasks.size(); ++t) all_tasks[t] = t;
  std::vector<IndicatorAccumulator> partials =
      run_tasks(factory, seeds, plan, all_tasks, retain ? &samples : nullptr,
                /*task_seconds=*/nullptr);
  std::vector<IndicatorAccumulator> acc =
      sim::reduce_task_partials(plan, std::move(partials), make);

  std::vector<IndicatorSummary> out(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    out[c] = acc[c].summarize();
    out[c].replications = reps;
    out[c].horizon_hours = horizon;
    if (!retain) continue;
    const auto first = samples.begin() + static_cast<std::ptrdiff_t>(c * reps);
    if (visit) visit(c, std::span<const IndicatorSample>(&*first, reps));
    if (options_.keep_samples)
      out[c].samples.assign(first, first + static_cast<std::ptrdiff_t>(reps));
  }
  return out;
}

std::vector<IndicatorSummary> MeasurementEngine::measure(
    const MeasurementPlan& plan, const CellVisitor& visit) const {
  if (!description_)
    throw std::logic_error(
        "MeasurementEngine::measure: engine was built without a "
        "SystemDescription (scenario-sweep-only)");
  const std::size_t cells = plan.cell_count();
  ContextFactory factory(*description_, *profile_, options_,
                         std::span<const MeasurementCell>(plan.cells));
  std::vector<std::uint64_t> seeds(cells);
  for (std::size_t c = 0; c < cells; ++c) seeds[c] = plan.cells[c].seed;
  return run_cells(factory, seeds, visit);
}

std::vector<IndicatorSummary> MeasurementEngine::measure_scenarios(
    const ScenarioSweepPlan& plan, const CellVisitor& visit) const {
  if (options_.engine != Engine::kCampaign)
    throw std::invalid_argument(
        "measure_scenarios: requires the campaign engine");
  if (options_.adaptive.enabled) {
    if (visit)
      throw std::invalid_argument(
          "measure_scenarios: adaptive mode is streaming-only (no cell "
          "visitor)");
    return measure_scenarios_adaptive(plan);
  }
  const std::size_t cells = plan.cell_count();
  ContextFactory factory(*catalog_, *profile_, options_,
                         std::span<const ScenarioCell>(plan.cells));
  std::vector<std::uint64_t> seeds(cells);
  for (std::size_t c = 0; c < cells; ++c) seeds[c] = plan.cells[c].seed;
  return run_cells(factory, seeds, visit);
}

std::vector<IndicatorSummary> MeasurementEngine::measure_scenarios_adaptive(
    const ScenarioSweepPlan& plan, AdaptiveReport* report) const {
  if (options_.engine != Engine::kCampaign)
    throw std::invalid_argument(
        "measure_scenarios_adaptive: requires the campaign engine");
  if (options_.keep_samples)
    throw std::invalid_argument(
        "measure_scenarios_adaptive: streaming only — keep_samples must be "
        "off (per-cell counts are not known up front, so there is no "
        "rectangular sample matrix to retain)");
  const AdaptiveOptions& adaptive = options_.adaptive;
  if (!(adaptive.relative_precision > 0.0) &&
      !(adaptive.absolute_precision > 0.0))
    throw std::invalid_argument(
        "measure_scenarios_adaptive: need relative_precision or "
        "absolute_precision > 0 (otherwise no cell can ever converge)");

  const std::size_t cells = plan.cell_count();
  const double horizon = options_.campaign.t_max_hours;
  const sim::ShardPlan shard = shard_plan(cells);
  const std::size_t per_group = shard.superblocks_per_group();
  const AdaptiveSchedule sched = resolve_adaptive_schedule(
      adaptive, options_.replications, shard.superblock());

  ContextFactory factory(*catalog_, *profile_, options_,
                         std::span<const ScenarioCell>(plan.cells));
  std::vector<std::uint64_t> seeds(cells);
  for (std::size_t c = 0; c < cells; ++c) seeds[c] = plan.cells[c].seed;

  // One accumulator per cell, fed round by round with exactly the fold
  // sequence the exact reducer uses: the cell's first superblock partial
  // becomes the accumulator, later partials merge in ascending superblock
  // order. Replaying the recorded per-cell prefix through
  // measure_scenario_tasks + reduce_task_partials therefore performs the
  // identical operation sequence — bit-identical summaries.
  std::vector<IndicatorAccumulator> acc(cells);
  std::vector<bool> has(cells, false);
  std::vector<std::size_t> folded_sb(cells, 0);  // superblocks folded so far
  std::vector<std::uint64_t> achieved(cells, 0);
  std::vector<std::uint64_t> done_round(cells, 0);
  std::vector<std::size_t> active(cells);
  for (std::size_t c = 0; c < cells; ++c) active[c] = c;

  std::size_t round = 0;
  std::vector<std::uint64_t> tasks;
  std::vector<std::size_t> still;
  while (!active.empty()) {
    ++round;
    const std::size_t take =
        round == 1 ? sched.first_superblocks : sched.round_superblocks;
    tasks.clear();
    for (const std::size_t c : active) {
      const std::size_t end = std::min(per_group, folded_sb[c] + take);
      for (std::size_t s = folded_sb[c]; s < end; ++s)
        tasks.push_back(static_cast<std::uint64_t>(c * per_group + s));
    }
    std::vector<IndicatorAccumulator> partials = run_tasks(
        factory, seeds, shard, tasks, /*samples=*/nullptr,
        /*task_seconds=*/nullptr);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const std::size_t c = static_cast<std::size_t>(tasks[i]) / per_group;
      if (!has[c]) {
        acc[c] = std::move(partials[i]);
        has[c] = true;
      } else {
        acc[c].merge(partials[i]);
      }
    }
    still.clear();
    for (const std::size_t c : active) {
      folded_sb[c] = std::min(per_group, folded_sb[c] + take);
      achieved[c] = acc[c].count();
      const bool capped = folded_sb[c] >= per_group ||
                          achieved[c] >= sched.rule.max_replications;
      const bool converged = achieved[c] >= sched.rule.min_replications &&
                             acc[c].precision_reached(sched.rule);
      if (capped || converged)
        done_round[c] = round;
      else
        still.push_back(c);
    }
    active.swap(still);
  }

  std::vector<IndicatorSummary> out(cells);
  std::uint64_t total = 0;
  for (std::size_t c = 0; c < cells; ++c) {
    out[c] = acc[c].summarize();
    out[c].replications = static_cast<std::size_t>(achieved[c]);
    out[c].horizon_hours = horizon;
    total += achieved[c];
  }
  if (report) {
    report->achieved = std::move(achieved);
    report->rounds = std::move(done_round);
    report->total_rounds = round;
    report->total_replications = total;
  }
  return out;
}

std::vector<IndicatorAccumulator> MeasurementEngine::measure_scenario_partials(
    const ScenarioSweepPlan& plan, const sim::ShardPlan& shard,
    std::size_t task_begin, std::size_t task_end) const {
  if (task_begin > task_end || task_end > shard.task_count())
    throw std::out_of_range("measure_scenario_partials: bad task range");
  std::vector<std::uint64_t> tasks(task_end - task_begin);
  for (std::size_t t = 0; t < tasks.size(); ++t) tasks[t] = task_begin + t;
  return measure_scenario_tasks(plan, shard, tasks);
}

std::vector<IndicatorAccumulator> MeasurementEngine::measure_scenario_tasks(
    const ScenarioSweepPlan& plan, const sim::ShardPlan& shard,
    std::span<const std::uint64_t> tasks,
    std::vector<double>* task_seconds) const {
  if (options_.engine != Engine::kCampaign)
    throw std::invalid_argument(
        "measure_scenario_tasks: requires the campaign engine");
  const sim::ShardPlan expected = shard_plan(plan.cell_count());
  if (shard.groups() != expected.groups() ||
      shard.count() != expected.count() ||
      shard.block() != expected.block() ||
      shard.superblock() != expected.superblock())
    throw std::invalid_argument(
        "measure_scenario_tasks: shard plan does not match the sweep "
        "plan/options (cells, replications, block, and superblock must all "
        "agree or partials will not merge bit-identically)");
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    if (tasks[t] >= shard.task_count())
      throw std::out_of_range("measure_scenario_tasks: task outside the plan");
    if (t > 0 && tasks[t] <= tasks[t - 1])
      throw std::invalid_argument(
          "measure_scenario_tasks: task list must be strictly ascending");
  }
  if (tasks.empty()) {
    if (task_seconds) task_seconds->clear();
    return {};
  }

  // Contexts are built lazily per scheduling round inside run_tasks, so
  // only the cells this task list touches — a handful at a time — ever
  // get a campaign context; shard processes of a huge sweep never pay
  // for the whole fleet's scenarios or reachability indexes.
  ContextFactory factory(*catalog_, *profile_, options_,
                         std::span<const ScenarioCell>(plan.cells));
  std::vector<std::uint64_t> seeds(plan.cell_count());
  for (std::size_t c = 0; c < plan.cell_count(); ++c)
    seeds[c] = plan.cells[c].seed;
  return run_tasks(factory, seeds, shard, tasks, /*samples=*/nullptr,
                   task_seconds);
}

IndicatorSummary MeasurementEngine::measure_one(const Configuration& config) const {
  MeasurementPlan plan;
  plan.cells.push_back({config, options_.seed});
  return std::move(measure(plan).front());
}

std::vector<double> MeasurementEngine::mean_ratio_curve(
    const Configuration& config, const std::vector<double>& time_grid_hours) const {
  if (!description_)
    throw std::logic_error(
        "MeasurementEngine::mean_ratio_curve: engine was built without a "
        "SystemDescription (scenario-sweep-only)");
  if (options_.engine != Engine::kCampaign)
    throw std::invalid_argument(
        "mean_ratio_curve: requires the campaign engine");
  // The per-cell curve accumulator already streams the binned mean curve
  // through the standard measurement reduction — run the cell once
  // (streaming, no retained samples) and interpolate the bin-edge means
  // onto the requested grid. This retired the per-configuration
  // re-simulation pass: the curve shares the measurement's replications,
  // its (cell seed, rep) RNG contract, and the reduction's determinism
  // (bit-identical for any DIVSEC_THREADS).
  MeasurementOptions opts = options_;
  opts.keep_samples = false;
  opts.executor = executor_;
  const MeasurementEngine streaming(*description_, *profile_, opts);
  const IndicatorSummary summary = streaming.measure_one(config);
  std::vector<double> out(time_grid_hours.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = curve_value_at(summary.ratio_curve, summary.horizon_hours,
                            time_grid_hours[i]);
  return out;
}

}  // namespace divsec::core
