#include "core/measurement.h"

#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "san/simulator.h"
#include "sim/executor.h"

namespace divsec::core {

namespace {

/// Read-only per-cell state shared by that cell's replication jobs.
/// Exactly one of `campaign` / `san` is engaged, per the options' engine.
struct CellContext {
  std::optional<attack::CampaignSimulator> campaign;

  struct StagedSan {
    attack::AttackSan asan;
    san::Predicate terminal;
  };
  std::optional<StagedSan> san;
};

CellContext make_context(const SystemDescription& description,
                         const attack::ThreatProfile& profile,
                         const MeasurementOptions& options,
                         const Configuration& config) {
  CellContext ctx;
  if (options.engine == Engine::kCampaign) {
    ctx.campaign.emplace(description.instantiate(config), profile,
                         description.catalog(), options.detection,
                         options.campaign);
  } else {
    auto& staged = ctx.san.emplace();
    staged.asan = attack::build_attack_san(
        derive_staged_model(description, config, profile, options.detection));
    staged.terminal = staged.asan.terminal_predicate();
  }
  return ctx;
}

/// One (cell, replication) job. All randomness comes from `rng`, so the
/// sample depends only on (cell seed, replication index).
IndicatorSample run_job(const CellContext& ctx, double horizon, stats::Rng rng) {
  IndicatorSample s;
  if (ctx.campaign) {
    const attack::CampaignResult r = ctx.campaign->run(rng);
    s.tta = r.time_to_attack.value_or(horizon);
    s.tta_censored = !r.time_to_attack.has_value();
    s.ttsf = r.time_to_detection.value_or(horizon);
    s.ttsf_censored = !r.time_to_detection.has_value();
    s.attack_succeeded = r.attack_succeeded();
    s.final_ratio =
        r.compromised_ratio.empty() ? 0.0 : r.compromised_ratio.back().second;
  } else {
    san::SanSimulator sim(ctx.san->asan.model, rng);
    const auto t = sim.run_until_predicate(ctx.san->terminal, horizon);
    const bool succeeded = t && sim.tokens(ctx.san->asan.success_place) >= 1;
    const bool detected = t && sim.tokens(ctx.san->asan.detected_place) >= 1;
    s.tta = succeeded ? *t : horizon;
    s.tta_censored = !succeeded;
    s.ttsf = detected ? *t : horizon;
    s.ttsf_censored = !detected;
    s.attack_succeeded = succeeded;
    s.final_ratio = succeeded ? 1.0 : 0.0;
  }
  return s;
}

}  // namespace

/// unique_ptr slots sidestep CellContext's non-assignable members while
/// still letting contexts be built by a parallel_for.
struct MeasurementEngine::CellContextList {
  std::vector<std::unique_ptr<CellContext>> slots;
};

MeasurementEngine::MeasurementEngine(const SystemDescription& description,
                                     const attack::ThreatProfile& profile,
                                     const MeasurementOptions& options)
    : description_(&description),
      catalog_(&description.catalog()),
      profile_(&profile),
      options_(options),
      executor_(options.executor ? options.executor : &sim::Executor::shared()) {
  if (options_.replications == 0)
    throw std::invalid_argument("MeasurementEngine: need >= 1 replication");
}

MeasurementEngine::MeasurementEngine(const divers::VariantCatalog& catalog,
                                     const attack::ThreatProfile& profile,
                                     const MeasurementOptions& options)
    : description_(nullptr),
      catalog_(&catalog),
      profile_(&profile),
      options_(options),
      executor_(options.executor ? options.executor : &sim::Executor::shared()) {
  if (options_.replications == 0)
    throw std::invalid_argument("MeasurementEngine: need >= 1 replication");
}

std::vector<IndicatorSummary> MeasurementEngine::run_cells(
    const CellContextList& contexts, std::span<const std::uint64_t> seeds,
    const CellVisitor& visit) const {
  const std::size_t cells = contexts.slots.size();
  const std::size_t reps = options_.replications;
  const double horizon = options_.campaign.t_max_hours;

  // The flattened (cell × replication) job list. Job j = cell (j / reps),
  // replication (j % reps), RNG stream (cell.seed, rep) — deterministic
  // for any thread count.
  std::vector<IndicatorSample> samples(cells * reps);
  executor_->parallel_for(0, cells * reps, [&](std::size_t j) {
    const std::size_t c = j / reps;
    const std::size_t rep = j % reps;
    samples[j] =
        run_job(*contexts.slots[c], horizon, stats::Rng(seeds[c], rep));
  });

  // Fold per-cell summaries serially in replication order, so the
  // Welford accumulators match a serial run bit for bit.
  std::vector<IndicatorSummary> out(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    IndicatorSummary& sum = out[c];
    sum.replications = reps;
    sum.horizon_hours = horizon;
    const auto first = samples.begin() + static_cast<std::ptrdiff_t>(c * reps);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const IndicatorSample& s = first[static_cast<std::ptrdiff_t>(rep)];
      sum.tta.add(s.tta);
      if (s.tta_censored) ++sum.tta_censored;
      sum.ttsf.add(s.ttsf);
      if (s.ttsf_censored) ++sum.ttsf_censored;
      sum.final_ratio.add(s.final_ratio);
      if (s.attack_succeeded) ++sum.successes;
    }
    if (visit) visit(c, std::span<const IndicatorSample>(&*first, reps));
    if (options_.keep_samples)
      sum.samples.assign(first, first + static_cast<std::ptrdiff_t>(reps));
  }
  return out;
}

std::vector<IndicatorSummary> MeasurementEngine::measure(
    const MeasurementPlan& plan, const CellVisitor& visit) const {
  if (!description_)
    throw std::logic_error(
        "MeasurementEngine::measure: engine was built without a "
        "SystemDescription (scenario-sweep-only)");
  const std::size_t cells = plan.cell_count();

  // Instantiate each cell's read-only context; contexts are independent,
  // so building them is itself a parallel_for.
  CellContextList contexts;
  contexts.slots.resize(cells);
  executor_->parallel_for(0, cells, [&](std::size_t c) {
    contexts.slots[c] = std::make_unique<CellContext>(make_context(
        *description_, *profile_, options_, plan.cells[c].configuration));
  });

  std::vector<std::uint64_t> seeds(cells);
  for (std::size_t c = 0; c < cells; ++c) seeds[c] = plan.cells[c].seed;
  return run_cells(contexts, seeds, visit);
}

std::vector<IndicatorSummary> MeasurementEngine::measure_scenarios(
    const ScenarioSweepPlan& plan, const CellVisitor& visit) const {
  if (options_.engine != Engine::kCampaign)
    throw std::invalid_argument(
        "measure_scenarios: requires the campaign engine");
  const std::size_t cells = plan.cell_count();

  // Campaign construction precomputes the per-scenario reachability index
  // and exploit tables — worth a parallel_for of its own on big fleets.
  CellContextList contexts;
  contexts.slots.resize(cells);
  executor_->parallel_for(0, cells, [&](std::size_t c) {
    auto ctx = std::make_unique<CellContext>();
    ctx->campaign.emplace(plan.cells[c].scenario, *profile_, *catalog_,
                          options_.detection, options_.campaign);
    contexts.slots[c] = std::move(ctx);
  });

  std::vector<std::uint64_t> seeds(cells);
  for (std::size_t c = 0; c < cells; ++c) seeds[c] = plan.cells[c].seed;
  return run_cells(contexts, seeds, visit);
}

IndicatorSummary MeasurementEngine::measure_one(const Configuration& config) const {
  MeasurementPlan plan;
  plan.cells.push_back({config, options_.seed});
  return std::move(measure(plan).front());
}

std::vector<double> MeasurementEngine::mean_ratio_curve(
    const Configuration& config, const std::vector<double>& time_grid_hours) const {
  if (!description_)
    throw std::logic_error(
        "MeasurementEngine::mean_ratio_curve: engine was built without a "
        "SystemDescription (scenario-sweep-only)");
  if (options_.engine != Engine::kCampaign)
    throw std::invalid_argument(
        "mean_ratio_curve: requires the campaign engine");
  const attack::CampaignSimulator sim(description_->instantiate(config), *profile_,
                                      description_->catalog(), options_.detection,
                                      options_.campaign);
  const std::size_t reps = options_.replications;
  const std::size_t grid = time_grid_hours.size();

  // Per-replication rows, then an ordered reduction: floating-point sums
  // stay bit-identical to the serial loop regardless of thread count.
  std::vector<double> rows(reps * grid, 0.0);
  executor_->parallel_for(0, reps, [&](std::size_t rep) {
    stats::Rng rng(options_.seed, rep);
    const attack::CampaignResult r = sim.run(rng);
    for (std::size_t i = 0; i < grid; ++i)
      rows[rep * grid + i] = r.ratio_at(time_grid_hours[i]);
  });

  std::vector<double> acc(grid, 0.0);
  for (std::size_t rep = 0; rep < reps; ++rep)
    for (std::size_t i = 0; i < grid; ++i) acc[i] += rows[rep * grid + i];
  for (double& v : acc) v /= static_cast<double>(reps);
  return acc;
}

}  // namespace divsec::core
