#include "core/measurement.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/indicator_accumulator.h"
#include "san/simulator.h"
#include "sim/executor.h"
#include "sim/shard_plan.h"
#include "sim/streaming.h"

namespace divsec::core {

namespace {

/// Read-only per-cell state shared by that cell's replication jobs.
/// Exactly one of `campaign` / `san` is engaged, per the options' engine.
struct CellContext {
  std::optional<attack::CampaignSimulator> campaign;

  struct StagedSan {
    attack::AttackSan asan;
    san::Predicate terminal;
  };
  std::optional<StagedSan> san;
};

CellContext make_context(const SystemDescription& description,
                         const attack::ThreatProfile& profile,
                         const MeasurementOptions& options,
                         const Configuration& config) {
  CellContext ctx;
  if (options.engine == Engine::kCampaign) {
    ctx.campaign.emplace(description.instantiate(config), profile,
                         description.catalog(), options.detection,
                         options.campaign);
  } else {
    auto& staged = ctx.san.emplace();
    staged.asan = attack::build_attack_san(
        derive_staged_model(description, config, profile, options.detection));
    staged.terminal = staged.asan.terminal_predicate();
  }
  return ctx;
}

/// One (cell, replication) job. All randomness comes from `rng`, so the
/// sample depends only on (cell seed, replication index).
IndicatorSample run_job(const CellContext& ctx, double horizon, stats::Rng rng) {
  IndicatorSample s;
  if (ctx.campaign) {
    const attack::CampaignResult r = ctx.campaign->run(rng);
    s.tta = r.time_to_attack.value_or(horizon);
    s.tta_censored = !r.time_to_attack.has_value();
    s.ttsf = r.time_to_detection.value_or(horizon);
    s.ttsf_censored = !r.time_to_detection.has_value();
    s.attack_succeeded = r.attack_succeeded();
    s.final_ratio =
        r.compromised_ratio.empty() ? 0.0 : r.compromised_ratio.back().second;
  } else {
    san::SanSimulator sim(ctx.san->asan.model, rng);
    const auto t = sim.run_until_predicate(ctx.san->terminal, horizon);
    const bool succeeded = t && sim.tokens(ctx.san->asan.success_place) >= 1;
    const bool detected = t && sim.tokens(ctx.san->asan.detected_place) >= 1;
    s.tta = succeeded ? *t : horizon;
    s.tta_censored = !succeeded;
    s.ttsf = detected ? *t : horizon;
    s.ttsf_censored = !detected;
    s.attack_succeeded = succeeded;
    s.final_ratio = succeeded ? 1.0 : 0.0;
  }
  return s;
}

}  // namespace

/// unique_ptr slots sidestep CellContext's non-assignable members while
/// still letting contexts be built by a parallel_for.
struct MeasurementEngine::CellContextList {
  std::vector<std::unique_ptr<CellContext>> slots;
};

namespace {

void validate_options(const MeasurementOptions& options) {
  if (options.replications == 0)
    throw std::invalid_argument("MeasurementEngine: need >= 1 replication");
  if (!(options.campaign.t_max_hours > 0.0))
    throw std::invalid_argument(
        "MeasurementEngine: campaign.t_max_hours (the measurement horizon) "
        "must be > 0");
  if (options.survival_bins == 0)
    throw std::invalid_argument("MeasurementEngine: need >= 1 survival bin");
}

}  // namespace

MeasurementEngine::MeasurementEngine(const SystemDescription& description,
                                     const attack::ThreatProfile& profile,
                                     const MeasurementOptions& options)
    : description_(&description),
      catalog_(&description.catalog()),
      profile_(&profile),
      options_(options),
      executor_(options.executor ? options.executor : &sim::Executor::shared()) {
  validate_options(options_);
}

MeasurementEngine::MeasurementEngine(const divers::VariantCatalog& catalog,
                                     const attack::ThreatProfile& profile,
                                     const MeasurementOptions& options)
    : description_(nullptr),
      catalog_(&catalog),
      profile_(&profile),
      options_(options),
      executor_(options.executor ? options.executor : &sim::Executor::shared()) {
  validate_options(options_);
}

sim::ShardPlan MeasurementEngine::shard_plan(std::size_t cells) const {
  return sim::ShardPlan::make(cells, options_.replications,
                              options_.replication_block, options_.superblock);
}

std::vector<IndicatorAccumulator> MeasurementEngine::run_tasks(
    const CellContextList& contexts, std::span<const std::uint64_t> seeds,
    const sim::ShardPlan& shard, std::span<const std::uint64_t> tasks,
    std::vector<IndicatorSample>* samples,
    std::vector<double>* task_seconds) const {
  const double horizon = options_.campaign.t_max_hours;
  const std::size_t reps = options_.replications;
  const auto make = [&](std::size_t) {
    return IndicatorAccumulator(horizon, options_.survival_bins);
  };
  // One blocked fold per superblock task: block partials merge in
  // ascending block order inside the task, so a task's partial depends
  // only on (cell, superblock, RNG contract) — not on the thread count,
  // the schedule, or which process runs it. Tasks past a cell's
  // replication count bound-check to no-ops (uniform task_span keeps the
  // schedule rectangular).
  const auto fold = [&](IndicatorAccumulator& a, std::size_t g, std::size_t i) {
    const sim::ShardPlan::Task task = shard.task(tasks[g]);
    const std::size_t rep = task.begin + i;
    if (rep >= task.end) return;
    const IndicatorSample s = run_job(*contexts.slots[task.group], horizon,
                                      stats::Rng(seeds[task.group], rep));
    if (samples) (*samples)[task.group * reps + rep] = s;
    a.add(s);
  };
  // Schedule selection. The fold/merge sequence per task is identical
  // either way (bit-identical partials), so this is purely a wall-time
  // choice: the elastic work queue keeps threads busy under skewed
  // per-cell costs, while the static block rounds expose sub-task
  // parallelism when there are too few tasks to feed every thread.
  const bool queued = options_.schedule == Scheduling::kElastic &&
                      tasks.size() >= executor_->thread_count();
  if (queued)
    return sim::queued_reduce_groups<IndicatorAccumulator>(
        *executor_, tasks.size(), shard.task_span(), shard.block(), make, fold,
        task_seconds);
  if (!task_seconds)
    return sim::blocked_reduce_groups<IndicatorAccumulator>(
        *executor_, tasks.size(), shard.task_span(), shard.block(), make, fold);

  // Cost capture under the static rounds (a shard with fewer tasks than
  // threads must not give up sub-task parallelism just to be timed): one
  // task's block jobs run on several threads, so per-task seconds
  // accumulate atomically from per-replication timings — two clock reads
  // per campaign replication, noise against the simulation itself.
  std::unique_ptr<std::atomic<double>[]> seconds(
      new std::atomic<double>[tasks.size()]());
  const auto timed_fold = [&](IndicatorAccumulator& a, std::size_t g,
                              std::size_t i) {
    const auto start = std::chrono::steady_clock::now();
    fold(a, g, i);
    seconds[g].fetch_add(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count(),
        std::memory_order_relaxed);
  };
  std::vector<IndicatorAccumulator> out =
      sim::blocked_reduce_groups<IndicatorAccumulator>(
          *executor_, tasks.size(), shard.task_span(), shard.block(), make,
          timed_fold);
  task_seconds->resize(tasks.size());
  for (std::size_t g = 0; g < tasks.size(); ++g)
    (*task_seconds)[g] = seconds[g].load(std::memory_order_relaxed);
  return out;
}

std::vector<IndicatorSummary> MeasurementEngine::run_cells(
    const CellContextList& contexts, std::span<const std::uint64_t> seeds,
    const CellVisitor& visit) const {
  const std::size_t cells = contexts.slots.size();
  const std::size_t reps = options_.replications;
  const double horizon = options_.campaign.t_max_hours;
  const auto make = [&](std::size_t) {
    return IndicatorAccumulator(horizon, options_.survival_bins);
  };

  // The in-process path is the K = 1 instance of the distributed plan:
  // every superblock task of every cell runs here, then the exact
  // reducer folds task partials in ascending (cell, superblock) order —
  // the identical code path and merge sequence divsec_sweep uses across
  // OS processes, and bit-identical for any DIVSEC_THREADS. Streaming
  // (the default with keep_samples off and no visitor) keeps memory at
  // O(cells + threads × block); the retain-everything path additionally
  // stores each sample into the (cell × replication) matrix the visitor
  // contract and keep_samples hand out, with the identical fold sequence.
  const bool retain = options_.keep_samples || static_cast<bool>(visit);
  std::vector<IndicatorSample> samples(retain ? cells * reps : 0);
  const sim::ShardPlan plan = shard_plan(cells);
  std::vector<std::uint64_t> all_tasks(plan.task_count());
  for (std::size_t t = 0; t < all_tasks.size(); ++t) all_tasks[t] = t;
  std::vector<IndicatorAccumulator> partials =
      run_tasks(contexts, seeds, plan, all_tasks, retain ? &samples : nullptr,
                /*task_seconds=*/nullptr);
  std::vector<IndicatorAccumulator> acc =
      sim::reduce_task_partials(plan, std::move(partials), make);

  std::vector<IndicatorSummary> out(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    out[c] = acc[c].summarize();
    out[c].replications = reps;
    out[c].horizon_hours = horizon;
    if (!retain) continue;
    const auto first = samples.begin() + static_cast<std::ptrdiff_t>(c * reps);
    if (visit) visit(c, std::span<const IndicatorSample>(&*first, reps));
    if (options_.keep_samples)
      out[c].samples.assign(first, first + static_cast<std::ptrdiff_t>(reps));
  }
  return out;
}

std::vector<IndicatorSummary> MeasurementEngine::measure(
    const MeasurementPlan& plan, const CellVisitor& visit) const {
  if (!description_)
    throw std::logic_error(
        "MeasurementEngine::measure: engine was built without a "
        "SystemDescription (scenario-sweep-only)");
  const std::size_t cells = plan.cell_count();

  // Instantiate each cell's read-only context; contexts are independent,
  // so building them is itself a parallel_for.
  CellContextList contexts;
  contexts.slots.resize(cells);
  executor_->parallel_for(0, cells, [&](std::size_t c) {
    contexts.slots[c] = std::make_unique<CellContext>(make_context(
        *description_, *profile_, options_, plan.cells[c].configuration));
  });

  std::vector<std::uint64_t> seeds(cells);
  for (std::size_t c = 0; c < cells; ++c) seeds[c] = plan.cells[c].seed;
  return run_cells(contexts, seeds, visit);
}

std::vector<IndicatorSummary> MeasurementEngine::measure_scenarios(
    const ScenarioSweepPlan& plan, const CellVisitor& visit) const {
  if (options_.engine != Engine::kCampaign)
    throw std::invalid_argument(
        "measure_scenarios: requires the campaign engine");
  const std::size_t cells = plan.cell_count();

  // Campaign construction precomputes the per-scenario reachability index
  // and exploit tables — worth a parallel_for of its own on big fleets.
  CellContextList contexts;
  contexts.slots.resize(cells);
  executor_->parallel_for(0, cells, [&](std::size_t c) {
    auto ctx = std::make_unique<CellContext>();
    ctx->campaign.emplace(plan.cells[c].scenario, *profile_, *catalog_,
                          options_.detection, options_.campaign);
    contexts.slots[c] = std::move(ctx);
  });

  std::vector<std::uint64_t> seeds(cells);
  for (std::size_t c = 0; c < cells; ++c) seeds[c] = plan.cells[c].seed;
  return run_cells(contexts, seeds, visit);
}

std::vector<IndicatorAccumulator> MeasurementEngine::measure_scenario_partials(
    const ScenarioSweepPlan& plan, const sim::ShardPlan& shard,
    std::size_t task_begin, std::size_t task_end) const {
  if (task_begin > task_end || task_end > shard.task_count())
    throw std::out_of_range("measure_scenario_partials: bad task range");
  std::vector<std::uint64_t> tasks(task_end - task_begin);
  for (std::size_t t = 0; t < tasks.size(); ++t) tasks[t] = task_begin + t;
  return measure_scenario_tasks(plan, shard, tasks);
}

std::vector<IndicatorAccumulator> MeasurementEngine::measure_scenario_tasks(
    const ScenarioSweepPlan& plan, const sim::ShardPlan& shard,
    std::span<const std::uint64_t> tasks,
    std::vector<double>* task_seconds) const {
  if (options_.engine != Engine::kCampaign)
    throw std::invalid_argument(
        "measure_scenario_tasks: requires the campaign engine");
  const sim::ShardPlan expected = shard_plan(plan.cell_count());
  if (shard.groups() != expected.groups() ||
      shard.count() != expected.count() ||
      shard.block() != expected.block() ||
      shard.superblock() != expected.superblock())
    throw std::invalid_argument(
        "measure_scenario_tasks: shard plan does not match the sweep "
        "plan/options (cells, replications, block, and superblock must all "
        "agree or partials will not merge bit-identically)");
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    if (tasks[t] >= shard.task_count())
      throw std::out_of_range("measure_scenario_tasks: task outside the plan");
    if (t > 0 && tasks[t] <= tasks[t - 1])
      throw std::invalid_argument(
          "measure_scenario_tasks: task list must be strictly ascending");
  }
  if (tasks.empty()) {
    if (task_seconds) task_seconds->clear();
    return {};
  }

  // Only the cells this task list touches get a campaign context — shard
  // processes of a huge sweep must not pay for the whole fleet's
  // reachability indexes. Cost-weighted lists may skip cells in the
  // middle of their range, so collect the distinct touched cells rather
  // than spanning [first, last]. The list is ascending, so so is the
  // touched-cell sequence.
  std::vector<std::size_t> touched;
  for (const std::uint64_t t : tasks) {
    const std::size_t cell = shard.task(t).group;
    if (touched.empty() || touched.back() != cell) touched.push_back(cell);
  }
  CellContextList contexts;
  contexts.slots.resize(plan.cell_count());
  executor_->parallel_for(0, touched.size(), [&](std::size_t i) {
    const std::size_t c = touched[i];
    auto ctx = std::make_unique<CellContext>();
    ctx->campaign.emplace(plan.cells[c].scenario, *profile_, *catalog_,
                          options_.detection, options_.campaign);
    contexts.slots[c] = std::move(ctx);
  });

  std::vector<std::uint64_t> seeds(plan.cell_count());
  for (std::size_t c = 0; c < plan.cell_count(); ++c)
    seeds[c] = plan.cells[c].seed;
  return run_tasks(contexts, seeds, shard, tasks, /*samples=*/nullptr,
                   task_seconds);
}

IndicatorSummary MeasurementEngine::measure_one(const Configuration& config) const {
  MeasurementPlan plan;
  plan.cells.push_back({config, options_.seed});
  return std::move(measure(plan).front());
}

std::vector<double> MeasurementEngine::mean_ratio_curve(
    const Configuration& config, const std::vector<double>& time_grid_hours) const {
  if (!description_)
    throw std::logic_error(
        "MeasurementEngine::mean_ratio_curve: engine was built without a "
        "SystemDescription (scenario-sweep-only)");
  if (options_.engine != Engine::kCampaign)
    throw std::invalid_argument(
        "mean_ratio_curve: requires the campaign engine");
  const attack::CampaignSimulator sim(description_->instantiate(config), *profile_,
                                      description_->catalog(), options_.detection,
                                      options_.campaign);
  const std::size_t reps = options_.replications;
  const std::size_t grid = time_grid_hours.size();
  const std::size_t block = options_.replication_block
                                ? options_.replication_block
                                : sim::kDefaultReductionBlock;

  // Blocked streaming reduction of the per-replication curve rows: each
  // block sums its replications' grid samples in replication order, block
  // partials merge in ascending block order — deterministic for any
  // thread count, O(threads × grid) memory instead of reps × grid rows.
  struct CurveSum {
    std::vector<double> sum;
    void merge(const CurveSum& o) {
      for (std::size_t i = 0; i < sum.size(); ++i) sum[i] += o.sum[i];
    }
  };
  CurveSum acc = sim::blocked_reduce<CurveSum>(
      executor_, reps, block,
      [grid] { return CurveSum{std::vector<double>(grid, 0.0)}; },
      [&](CurveSum& a, std::size_t rep) {
        stats::Rng rng(options_.seed, rep);
        const attack::CampaignResult r = sim.run(rng);
        for (std::size_t i = 0; i < grid; ++i)
          a.sum[i] += r.ratio_at(time_grid_hours[i]);
      });
  for (double& v : acc.sum) v /= static_cast<double>(reps);
  return std::move(acc.sum);
}

}  // namespace divsec::core
