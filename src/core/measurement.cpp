#include "core/measurement.h"

#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "san/simulator.h"
#include "sim/executor.h"

namespace divsec::core {

namespace {

/// Read-only per-cell state shared by that cell's replication jobs.
/// Exactly one of `campaign` / `san` is engaged, per the options' engine.
struct CellContext {
  std::optional<attack::CampaignSimulator> campaign;

  struct StagedSan {
    attack::AttackSan asan;
    san::Predicate terminal;
  };
  std::optional<StagedSan> san;
};

CellContext make_context(const SystemDescription& description,
                         const attack::ThreatProfile& profile,
                         const MeasurementOptions& options,
                         const Configuration& config) {
  CellContext ctx;
  if (options.engine == Engine::kCampaign) {
    ctx.campaign.emplace(description.instantiate(config), profile,
                         description.catalog(), options.detection,
                         options.campaign);
  } else {
    auto& staged = ctx.san.emplace();
    staged.asan = attack::build_attack_san(
        derive_staged_model(description, config, profile, options.detection));
    staged.terminal = staged.asan.terminal_predicate();
  }
  return ctx;
}

/// One (cell, replication) job. All randomness comes from `rng`, so the
/// sample depends only on (cell seed, replication index).
IndicatorSample run_job(const CellContext& ctx, double horizon, stats::Rng rng) {
  IndicatorSample s;
  if (ctx.campaign) {
    const attack::CampaignResult r = ctx.campaign->run(rng);
    s.tta = r.time_to_attack.value_or(horizon);
    s.tta_censored = !r.time_to_attack.has_value();
    s.ttsf = r.time_to_detection.value_or(horizon);
    s.ttsf_censored = !r.time_to_detection.has_value();
    s.attack_succeeded = r.attack_succeeded();
    s.final_ratio =
        r.compromised_ratio.empty() ? 0.0 : r.compromised_ratio.back().second;
  } else {
    san::SanSimulator sim(ctx.san->asan.model, rng);
    const auto t = sim.run_until_predicate(ctx.san->terminal, horizon);
    const bool succeeded = t && sim.tokens(ctx.san->asan.success_place) >= 1;
    const bool detected = t && sim.tokens(ctx.san->asan.detected_place) >= 1;
    s.tta = succeeded ? *t : horizon;
    s.tta_censored = !succeeded;
    s.ttsf = detected ? *t : horizon;
    s.ttsf_censored = !detected;
    s.attack_succeeded = succeeded;
    s.final_ratio = succeeded ? 1.0 : 0.0;
  }
  return s;
}

}  // namespace

MeasurementEngine::MeasurementEngine(const SystemDescription& description,
                                     const attack::ThreatProfile& profile,
                                     const MeasurementOptions& options)
    : description_(&description),
      profile_(&profile),
      options_(options),
      executor_(options.executor ? options.executor : &sim::Executor::shared()) {
  if (options_.replications == 0)
    throw std::invalid_argument("MeasurementEngine: need >= 1 replication");
}

std::vector<IndicatorSummary> MeasurementEngine::measure(
    const MeasurementPlan& plan, const CellVisitor& visit) const {
  const std::size_t cells = plan.cell_count();
  const std::size_t reps = options_.replications;
  const double horizon = options_.campaign.t_max_hours;

  // Phase 1 (parallel): instantiate each cell's read-only context.
  // Contexts are independent, so building them is itself a parallel_for;
  // unique_ptr slots sidestep CellContext's non-assignable members.
  std::vector<std::unique_ptr<CellContext>> contexts(cells);
  executor_->parallel_for(0, cells, [&](std::size_t c) {
    contexts[c] = std::make_unique<CellContext>(make_context(
        *description_, *profile_, options_, plan.cells[c].configuration));
  });

  // Phase 2 (parallel): the flattened (cell × replication) job list.
  // Job j = cell (j / reps), replication (j % reps), RNG stream
  // (cell.seed, rep) — deterministic for any thread count.
  std::vector<IndicatorSample> samples(cells * reps);
  executor_->parallel_for(0, cells * reps, [&](std::size_t j) {
    const std::size_t c = j / reps;
    const std::size_t rep = j % reps;
    samples[j] = run_job(*contexts[c], horizon,
                         stats::Rng(plan.cells[c].seed, rep));
  });

  // Phase 3 (serial): fold per-cell summaries in replication order, so
  // the Welford accumulators match a serial run bit for bit.
  std::vector<IndicatorSummary> out(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    IndicatorSummary& sum = out[c];
    sum.replications = reps;
    sum.horizon_hours = horizon;
    const auto first = samples.begin() + static_cast<std::ptrdiff_t>(c * reps);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const IndicatorSample& s = first[static_cast<std::ptrdiff_t>(rep)];
      sum.tta.add(s.tta);
      if (s.tta_censored) ++sum.tta_censored;
      sum.ttsf.add(s.ttsf);
      if (s.ttsf_censored) ++sum.ttsf_censored;
      sum.final_ratio.add(s.final_ratio);
      if (s.attack_succeeded) ++sum.successes;
    }
    if (visit) visit(c, std::span<const IndicatorSample>(&*first, reps));
    if (options_.keep_samples)
      sum.samples.assign(first, first + static_cast<std::ptrdiff_t>(reps));
  }
  return out;
}

IndicatorSummary MeasurementEngine::measure_one(const Configuration& config) const {
  MeasurementPlan plan;
  plan.cells.push_back({config, options_.seed});
  return std::move(measure(plan).front());
}

std::vector<double> MeasurementEngine::mean_ratio_curve(
    const Configuration& config, const std::vector<double>& time_grid_hours) const {
  if (options_.engine != Engine::kCampaign)
    throw std::invalid_argument(
        "mean_ratio_curve: requires the campaign engine");
  const attack::CampaignSimulator sim(description_->instantiate(config), *profile_,
                                      description_->catalog(), options_.detection,
                                      options_.campaign);
  const std::size_t reps = options_.replications;
  const std::size_t grid = time_grid_hours.size();

  // Per-replication rows, then an ordered reduction: floating-point sums
  // stay bit-identical to the serial loop regardless of thread count.
  std::vector<double> rows(reps * grid, 0.0);
  executor_->parallel_for(0, reps, [&](std::size_t rep) {
    stats::Rng rng(options_.seed, rep);
    const attack::CampaignResult r = sim.run(rng);
    for (std::size_t i = 0; i < grid; ++i)
      rows[rep * grid + i] = r.ratio_at(time_grid_hours[i]);
  });

  std::vector<double> acc(grid, 0.0);
  for (std::size_t rep = 0; rep < reps; ++rep)
    for (std::size_t i = 0; i < grid; ++i) acc[i] += rows[rep * grid + i];
  for (double& v : acc) v /= static_cast<double>(reps);
  return acc;
}

}  // namespace divsec::core
