#include "core/ratio_curve.h"

#include <algorithm>
#include <stdexcept>

namespace divsec::core {

RatioCurveAccumulator::RatioCurveAccumulator(double horizon, std::size_t bins)
    : horizon_(horizon) {
  if (!(horizon > 0.0))
    throw std::invalid_argument("RatioCurveAccumulator: horizon must be > 0");
  if (bins == 0)
    throw std::invalid_argument("RatioCurveAccumulator: need >= 1 bin");
  sums_.assign(bins, 0);
}

void RatioCurveAccumulator::add(std::span<const std::uint32_t> counts,
                                std::uint64_t scale) {
  if (sums_.empty())
    throw std::logic_error(
        "RatioCurveAccumulator::add: default-constructed state");
  if (counts.size() != sums_.size())
    throw std::invalid_argument("RatioCurveAccumulator::add: bin mismatch");
  if (scale == 0)
    throw std::invalid_argument("RatioCurveAccumulator::add: zero scale");
  if (scale_ == 0)
    scale_ = scale;
  else if (scale != scale_)
    throw std::invalid_argument("RatioCurveAccumulator::add: scale mismatch");
  ++n_;
  for (std::size_t k = 0; k < sums_.size(); ++k) sums_[k] += counts[k];
}

void RatioCurveAccumulator::merge(const RatioCurveAccumulator& other) {
  if (other.n_ == 0 && other.sums_.empty()) return;
  if (n_ == 0 && sums_.empty()) {
    *this = other;
    return;
  }
  if (other.horizon_ != horizon_ || other.sums_.size() != sums_.size())
    throw std::invalid_argument("RatioCurveAccumulator::merge: grid mismatch");
  if (other.n_ == 0) return;
  if (n_ == 0) {
    scale_ = other.scale_;
  } else if (other.scale_ != scale_) {
    throw std::invalid_argument("RatioCurveAccumulator::merge: scale mismatch");
  }
  n_ += other.n_;
  for (std::size_t k = 0; k < sums_.size(); ++k) sums_[k] += other.sums_[k];
}

std::vector<double> RatioCurveAccumulator::mean_curve() const {
  if (n_ == 0 || scale_ == 0) return {};
  std::vector<double> curve(sums_.size());
  const double denom = static_cast<double>(n_) * static_cast<double>(scale_);
  for (std::size_t k = 0; k < sums_.size(); ++k)
    curve[k] = static_cast<double>(sums_[k]) / denom;
  return curve;
}

RatioCurveAccumulator::State RatioCurveAccumulator::state() const {
  return {horizon_, scale_, n_, sums_};
}

RatioCurveAccumulator RatioCurveAccumulator::from_state(const State& s) {
  RatioCurveAccumulator out;
  if (s.sums.empty()) {
    if (s.n != 0 || s.scale != 0)
      throw std::invalid_argument(
          "RatioCurveAccumulator::from_state: counts without a bin grid");
    return out;
  }
  if (!(s.horizon > 0.0))
    throw std::invalid_argument(
        "RatioCurveAccumulator::from_state: horizon must be > 0");
  if (s.n > 0 && s.scale == 0)
    throw std::invalid_argument(
        "RatioCurveAccumulator::from_state: observations without a scale");
  for (const std::uint64_t sum : s.sums)
    if (sum > s.n * s.scale)
      throw std::invalid_argument(
          "RatioCurveAccumulator::from_state: bin sum exceeds n x scale");
  out.horizon_ = s.horizon;
  out.scale_ = s.scale;
  out.n_ = s.n;
  out.sums_ = s.sums;
  return out;
}

double curve_value_at(std::span<const double> curve, double horizon, double t) {
  if (curve.empty() || t <= 0.0) return 0.0;
  const std::size_t bins = curve.size();
  const double width = horizon / static_cast<double>(bins);
  if (t >= horizon) return curve.back();
  // Bin k's value sits at its upper edge (k + 1) * width; interpolate
  // between the surrounding edges (edge 0 anchors at c(0) = 0).
  const std::size_t k = static_cast<std::size_t>(t / width);
  const double lo = k == 0 ? 0.0 : curve[k - 1];
  const double hi = curve[std::min(k, bins - 1)];
  const double t_lo = static_cast<double>(k) * width;
  return lo + (hi - lo) * ((t - t_lo) / width);
}

}  // namespace divsec::core
