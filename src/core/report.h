// report.h — machine- and human-readable exports of pipeline results.
//
// The measurement and assessment artifacts need to leave the process:
// CSV for plotting (every bench table can be regenerated into a figure),
// Markdown for reports. Writers are pure string builders (no filesystem
// side effects) so they are trivially testable; save_to_file is the thin
// I/O shim.
#pragma once

#include <string>

#include "core/pipeline.h"

namespace divsec::core {

/// CSV of a measurement table: one row per configuration with the swept
/// factor levels and summary indicator estimates. The censored-at-horizon
/// means (tta_mean/ttsf_mean) are biased low under censoring, so every
/// row also carries the censoring-aware product-limit estimates
/// (restricted mean + median; the median cell is empty when censoring
/// keeps the survival curve above 0.5) and a `censor_warning` column
/// naming the indicators whose censor fraction exceeds
/// `censor_warn_fraction` — a flagged mean must not be read unannotated.
/// Columns: <factor names...>,success_prob,
///          tta_mean,tta_censored,tta_rmean,tta_median,
///          ttsf_mean,ttsf_censored,ttsf_rmean,ttsf_median,
///          final_ratio_mean,censor_warning
[[nodiscard]] std::string measurement_csv(const MeasurementTable& table,
                                          double censor_warn_fraction = 0.2);

/// CSV of one ANOVA table: effect,ss,df,ms,f,p,eta2 (+ Error/Total rows).
[[nodiscard]] std::string anova_csv(const stats::AnovaTable& table);

/// Markdown rendering of a full assessment (three ANOVA tables, ranking,
/// recommendations).
[[nodiscard]] std::string assessment_markdown(const Assessment& assessment,
                                              const std::string& title);

/// Write `content` to `path`; throws std::runtime_error on I/O failure.
void save_to_file(const std::string& path, const std::string& content);

}  // namespace divsec::core
