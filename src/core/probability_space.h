// probability_space.h — direct probability injection & screening.
//
// The paper's DoE step explicitly allows bypassing mechanistic derivation:
// "Impact of diversity is emulated by varying the success probabilities
// involved at each attack stage. ... Probability values are established
// either by means of previously documented attack history, or by emulating
// malware samples in a controlled environment (e.g., honeypots), or by
// performing a sensitivity analysis."
//
// StageProbabilitySpace is that mode: a StagedAttackModel whose per-stage
// success probabilities are swept directly over analyst-specified ranges,
// with Morris elementary-effects screening and OAT tornado helpers to rank
// which stage's probability the indicators are most sensitive to.
#pragma once

#include <array>
#include <functional>
#include <span>

#include "attack/san_model.h"
#include "attack/stages.h"
#include "stats/doe.h"

namespace divsec::core {

/// A box in probability space around a base staged model.
class StageProbabilitySpace {
 public:
  struct Range {
    double lo = 0.0;
    double hi = 1.0;
  };

  /// Ranges default to [0, 1] for every stage.
  explicit StageProbabilitySpace(attack::StagedAttackModel base);
  StageProbabilitySpace(attack::StagedAttackModel base,
                        std::array<Range, attack::kStageCount> ranges);

  /// Map a unit-cube point (one coordinate per stage) to a concrete
  /// model: stage i's success probability = lo_i + u_i * (hi_i - lo_i).
  [[nodiscard]] attack::StagedAttackModel at(std::span<const double> unit_point) const;

  [[nodiscard]] const attack::StagedAttackModel& base() const noexcept {
    return base_;
  }
  [[nodiscard]] const std::array<Range, attack::kStageCount>& ranges() const noexcept {
    return ranges_;
  }

 private:
  attack::StagedAttackModel base_;
  std::array<Range, attack::kStageCount> ranges_;
};

/// A scalar indicator computed from a staged model (e.g. Monte-Carlo
/// attack success probability, analytic E[TTA]).
using StageIndicator = std::function<double(const attack::StagedAttackModel&)>;

/// Ready-made indicators.
/// Monte-Carlo P[attack succeeds before detection and the horizon].
[[nodiscard]] StageIndicator success_probability_indicator(double horizon_hours,
                                                           std::size_t replications,
                                                           std::uint64_t seed);
/// Closed-form expected total traversal time (ignores detection).
[[nodiscard]] StageIndicator expected_tta_indicator();

/// Morris elementary-effects screening of the stage probabilities.
struct StageScreening {
  stats::MorrisEffects effects;  // per stage: mu, mu*, sigma
  std::size_t evaluations = 0;
};
[[nodiscard]] StageScreening morris_stage_screening(const StageProbabilitySpace& space,
                                                    const StageIndicator& indicator,
                                                    std::size_t trajectories,
                                                    std::uint64_t seed);

/// One-at-a-time tornado over the stage probabilities: evaluates the
/// indicator at lo/mid/hi of each stage's range with other stages at mid.
struct StageTornadoEntry {
  std::size_t stage = 0;
  double at_lo = 0.0;
  double at_mid = 0.0;
  double at_hi = 0.0;
  [[nodiscard]] double swing() const noexcept {
    return std::max(std::max(at_lo, at_hi), at_mid) -
           std::min(std::min(at_lo, at_hi), at_mid);
  }
};
[[nodiscard]] std::vector<StageTornadoEntry> stage_tornado(
    const StageProbabilitySpace& space, const StageIndicator& indicator);

}  // namespace divsec::core
