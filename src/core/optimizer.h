// optimizer.h — diversification planning.
//
// The paper's closing observation: "a small, strategically distributed,
// number of highly attack-resilient components can significantly lower
// the chance of bringing a successful attack to the system", and the
// framework should drive "a balanced approach between secure system
// design and diversification costs". This module implements both:
// a greedy cost-aware upgrade planner, and the strategic-vs-random
// placement comparison behind experiment E8.
#pragma once

#include <string>
#include <vector>

#include "core/configuration.h"
#include "core/indicators.h"

namespace divsec::core {

/// Estimated attack success probability for one configuration (the
/// objective every planner minimizes). Uses the engine in `options`.
[[nodiscard]] double attack_success_probability(const SystemDescription& description,
                                                const Configuration& config,
                                                const attack::ThreatProfile& profile,
                                                const MeasurementOptions& options);

struct UpgradeStep {
  std::string component;
  std::string from_variant;
  std::string to_variant;
  double extra_cost = 0.0;
  double success_prob_after = 0.0;
};

struct UpgradePlan {
  Configuration configuration;  // the planned final configuration
  double baseline_success_prob = 0.0;
  double planned_success_prob = 0.0;
  double total_extra_cost = 0.0;
  std::vector<UpgradeStep> steps;
};

/// Greedy marginal-benefit/cost diversification under a cost budget:
/// repeatedly applies the single (component -> variant) upgrade with the
/// best success-probability reduction per unit cost until the budget is
/// exhausted or no upgrade helps.
[[nodiscard]] UpgradePlan greedy_diversification(const SystemDescription& description,
                                                 const attack::ThreatProfile& profile,
                                                 const MeasurementOptions& options,
                                                 double cost_budget);

enum class PlacementStrategy {
  kRandom,     // upgrade k uniformly random components
  kStrategic,  // upgrade the k components with the largest single-upgrade
               // success-probability reduction
};

/// Upgrade exactly `k` components to the most resilient (last) variant of
/// their kind, selected by the given strategy. Random placement consumes
/// `rng`; strategic placement is deterministic.
[[nodiscard]] Configuration place_resilient_components(
    const SystemDescription& description, std::size_t k, PlacementStrategy strategy,
    const attack::ThreatProfile& profile, const MeasurementOptions& options,
    stats::Rng& rng);

}  // namespace divsec::core
