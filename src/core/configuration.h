// configuration.h — the diversifiable-system description and its
// configuration space.
//
// Step 1 of the paper identifies "the components that can be potentially
// diversified in a given SCADA system". A Component binds one
// VariantCatalog kind to the set of nodes it is deployed on; a
// Configuration picks one variant per component; SystemDescription turns
// a Configuration into a concrete attack::Scenario and exposes the space
// as a stats::FactorSpace so the DoE machinery can enumerate or screen it.
#pragma once

#include <string>
#include <vector>

#include "attack/campaign.h"
#include "divers/variants.h"
#include "stats/doe.h"

namespace divsec::core {

/// One diversifiable component: a catalog kind deployed on given nodes.
/// Scenario-level kinds (the zone firewall) leave `nodes` empty.
struct Component {
  std::string name;
  divers::ComponentKind kind = divers::ComponentKind::kOs;
  std::vector<net::NodeId> nodes;
};

/// A point in the configuration space: variant index per component.
struct Configuration {
  std::vector<std::size_t> variant;

  bool operator==(const Configuration&) const = default;
};

class SystemDescription {
 public:
  SystemDescription(attack::Scenario baseline, std::vector<Component> components,
                    const divers::VariantCatalog& catalog);

  [[nodiscard]] const attack::Scenario& baseline() const noexcept { return baseline_; }
  [[nodiscard]] const std::vector<Component>& components() const noexcept {
    return components_;
  }
  [[nodiscard]] std::size_t component_count() const noexcept {
    return components_.size();
  }
  [[nodiscard]] const divers::VariantCatalog& catalog() const noexcept {
    return *catalog_;
  }

  /// The all-baseline (variant 0 everywhere) configuration: the
  /// monoculture the paper argues against.
  [[nodiscard]] Configuration baseline_configuration() const;

  /// Apply a configuration to the baseline scenario.
  [[nodiscard]] attack::Scenario instantiate(const Configuration& config) const;

  /// The space as DoE factors (levels = variant names).
  [[nodiscard]] stats::FactorSpace factor_space() const;

  /// Number of components whose variant differs from baseline (the
  /// paper's "diversity degree" in its simplest form).
  [[nodiscard]] std::size_t diversity_degree(const Configuration& config) const;

  /// Shannon entropy of the variant assignment per kind, summed over
  /// kinds present (richer diversity metric for reporting).
  [[nodiscard]] double shannon_diversity(const Configuration& config) const;

  /// Extra cost of `config` relative to the baseline configuration
  /// (sum over components of variant cost - baseline variant cost).
  [[nodiscard]] double extra_cost(const Configuration& config) const;

  void validate(const Configuration& config) const;

 private:
  attack::Scenario baseline_;
  std::vector<Component> components_;
  const divers::VariantCatalog* catalog_;
};

/// The SCoPE cooling-system description used across examples and benches:
/// seven components (corporate OS, control-zone OS, PLC firmware,
/// protocol stack, zone firewall, HMI software, historian DB) over the
/// make_scope_cooling_scenario() topology.
[[nodiscard]] SystemDescription make_scope_description(
    const divers::VariantCatalog& catalog);

}  // namespace divsec::core
