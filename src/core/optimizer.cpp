#include "core/optimizer.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace divsec::core {

double attack_success_probability(const SystemDescription& description,
                                  const Configuration& config,
                                  const attack::ThreatProfile& profile,
                                  const MeasurementOptions& options) {
  return measure_indicators(description, config, profile, options)
      .attack_success_probability();
}

UpgradePlan greedy_diversification(const SystemDescription& description,
                                   const attack::ThreatProfile& profile,
                                   const MeasurementOptions& options,
                                   double cost_budget) {
  if (cost_budget < 0.0)
    throw std::invalid_argument("greedy_diversification: negative budget");
  const auto& comps = description.components();
  const auto& cat = description.catalog();

  UpgradePlan plan;
  plan.configuration = description.baseline_configuration();
  plan.baseline_success_prob =
      attack_success_probability(description, plan.configuration, profile, options);
  double current = plan.baseline_success_prob;
  double budget = cost_budget;

  for (;;) {
    double best_ratio = 0.0;
    std::size_t best_comp = comps.size();
    std::size_t best_variant = 0;
    double best_prob = current;
    double best_cost = 0.0;

    for (std::size_t ci = 0; ci < comps.size(); ++ci) {
      const auto n_variants = cat.count(comps[ci].kind);
      for (std::size_t v = 0; v < n_variants; ++v) {
        if (v == plan.configuration.variant[ci]) continue;
        Configuration candidate = plan.configuration;
        candidate.variant[ci] = v;
        const double delta_cost = description.extra_cost(candidate) -
                                  description.extra_cost(plan.configuration);
        if (delta_cost <= 0.0 || delta_cost > budget) {
          if (delta_cost > budget) continue;
        }
        const double cost = std::max(delta_cost, 1e-9);
        const double p =
            attack_success_probability(description, candidate, profile, options);
        const double gain = current - p;
        if (gain <= 0.0) continue;
        const double ratio = gain / cost;
        if (ratio > best_ratio) {
          best_ratio = ratio;
          best_comp = ci;
          best_variant = v;
          best_prob = p;
          best_cost = delta_cost;
        }
      }
    }
    if (best_comp == comps.size()) break;  // no improving upgrade fits

    UpgradeStep step;
    step.component = comps[best_comp].name;
    step.from_variant =
        cat.variant(comps[best_comp].kind, plan.configuration.variant[best_comp]).name;
    step.to_variant = cat.variant(comps[best_comp].kind, best_variant).name;
    step.extra_cost = best_cost;
    step.success_prob_after = best_prob;
    plan.steps.push_back(step);

    plan.configuration.variant[best_comp] = best_variant;
    budget -= best_cost;
    current = best_prob;
  }

  plan.planned_success_prob = current;
  plan.total_extra_cost = description.extra_cost(plan.configuration);
  return plan;
}

Configuration place_resilient_components(const SystemDescription& description,
                                         std::size_t k, PlacementStrategy strategy,
                                         const attack::ThreatProfile& profile,
                                         const MeasurementOptions& options,
                                         stats::Rng& rng) {
  const auto& comps = description.components();
  const auto& cat = description.catalog();
  if (k > comps.size())
    throw std::invalid_argument("place_resilient_components: k > component count");

  std::vector<std::size_t> order(comps.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  if (strategy == PlacementStrategy::kRandom) {
    for (std::size_t i = order.size() - 1; i > 0; --i)
      std::swap(order[i], order[rng.below(i + 1)]);
  } else {
    // Strategic: rank by single-upgrade benefit from the baseline.
    const Configuration base = description.baseline_configuration();
    const double p0 = attack_success_probability(description, base, profile, options);
    std::vector<double> benefit(comps.size());
    for (std::size_t ci = 0; ci < comps.size(); ++ci) {
      Configuration candidate = base;
      candidate.variant[ci] = cat.count(comps[ci].kind) - 1;
      benefit[ci] =
          p0 - attack_success_probability(description, candidate, profile, options);
    }
    std::stable_sort(order.begin(), order.end(), [&benefit](std::size_t a, std::size_t b) {
      return benefit[a] > benefit[b];
    });
  }

  Configuration config = description.baseline_configuration();
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t ci = order[i];
    config.variant[ci] = cat.count(comps[ci].kind) - 1;
  }
  return config;
}

}  // namespace divsec::core
