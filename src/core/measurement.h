// measurement.h — the batched parallel measurement engine.
//
// The paper's "DoE & Measurements" step is a grid of independent
// stochastic jobs: every (configuration cell, replication) pair can run
// on its own core. MeasurementEngine flattens a MeasurementPlan — a list
// of configuration cells, each with its own seed block — into that job
// list, evaluates it on a sim::Executor, and reassembles per-cell
// IndicatorSummary values in deterministic order.
//
// Determinism contract: job (cell c, replication r) draws every random
// number from stats::Rng(plan.cells[c].seed, r). Results are therefore
// bit-identical for any thread count (including the serial path) and
// independent of job scheduling; only wall-clock time changes. Cell
// contexts (instantiated scenarios, staged SAN models) are built once per
// cell up front and shared read-only by the jobs of that cell.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/indicators.h"

namespace divsec::core {

/// One configuration cell of a plan: a point in the configuration space
/// plus the master seed of its replication block (replication r uses RNG
/// stream (seed, r)).
struct MeasurementCell {
  Configuration configuration;
  std::uint64_t seed = 0;
};

/// The flattened unit of work handed to the executor: every cell runs
/// the same replication count with the options' engine.
struct MeasurementPlan {
  std::vector<MeasurementCell> cells;

  [[nodiscard]] std::size_t cell_count() const noexcept { return cells.size(); }
};

class MeasurementEngine {
 public:
  /// The description and profile must outlive the engine. The executor
  /// used is options.executor, falling back to sim::Executor::shared().
  MeasurementEngine(const SystemDescription& description,
                    const attack::ThreatProfile& profile,
                    const MeasurementOptions& options);

  /// Per-cell observer invoked during reassembly with the cell's raw
  /// samples in replication order — lets callers (e.g. MeasurementTable
  /// construction) extract response vectors without the summaries having
  /// to retain samples when options.keep_samples is off.
  using CellVisitor =
      std::function<void(std::size_t cell, std::span<const IndicatorSample>)>;

  /// Measure every cell of the plan: (cell × replication) jobs run on the
  /// executor; summaries come back in cell order with samples folded in
  /// replication order. Honours options.keep_samples.
  [[nodiscard]] std::vector<IndicatorSummary> measure(
      const MeasurementPlan& plan, const CellVisitor& visit = {}) const;

  /// Convenience: one cell seeded with options.seed.
  [[nodiscard]] IndicatorSummary measure_one(const Configuration& config) const;

  /// Mean compromised-ratio curve over replications on the given time
  /// grid (campaign engine only); replications run in parallel, the mean
  /// is reduced in replication order.
  [[nodiscard]] std::vector<double> mean_ratio_curve(
      const Configuration& config, const std::vector<double>& time_grid_hours) const;

  [[nodiscard]] const sim::Executor& executor() const noexcept { return *executor_; }

 private:
  const SystemDescription* description_;
  const attack::ThreatProfile* profile_;
  MeasurementOptions options_;
  const sim::Executor* executor_;
};

}  // namespace divsec::core
