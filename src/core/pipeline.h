// pipeline.h — the paper's three-step modeling and evaluation approach.
//
// Fig. 1 of the paper: Attack Modeling -> DoE & Measurements -> Diversity
// Assessment. Pipeline wires the three steps over a SystemDescription:
//
//  1. attack_model(config): formalizes the staged attack for a concrete
//     configuration (per-stage success probabilities from the deployed
//     variants) — the Attack Modeling box;
//  2. measure_full_factorial()/screen(): enumerate configurations with a
//     DoE design and measure the security indicators on each — the DoE &
//     Measurements box;
//  3. assess(): N-way ANOVA per indicator, allocating indicator variance
//     to components and ranking what is "valuable to diversify in the
//     real system implementation" — the Diversity Assessment box.
#pragma once

#include <string>
#include <vector>

#include "core/configuration.h"
#include "core/indicators.h"
#include "stats/anova.h"
#include "stats/doe.h"

namespace divsec::core {

struct PipelineOptions {
  MeasurementOptions measurement{};
  /// Highest interaction order reported by the ANOVA (higher orders are
  /// pooled into the error term).
  std::size_t max_interaction_order = 2;
  /// Effects with eta^2 above this and p below alpha are recommended for
  /// diversification.
  double recommend_eta_squared = 0.05;
  double recommend_alpha = 0.05;
};

/// Step-2 output: the swept design and the measured indicator cells.
struct MeasurementTable {
  stats::FactorSpace space;              // the swept (restricted) space
  std::vector<std::size_t> component_index;  // swept factor -> component
  std::vector<Configuration> configurations;  // cell order (factor 0 fastest)
  std::vector<IndicatorSummary> summaries;    // per configuration
  std::vector<std::vector<double>> tta_cells;     // per-cell replicate values
  std::vector<std::vector<double>> ttsf_cells;
  std::vector<std::vector<double>> success_cells;  // 0/1 per replicate

  [[nodiscard]] std::size_t configuration_count() const noexcept {
    return configurations.size();
  }
};

/// Step-3 output.
struct Assessment {
  stats::AnovaTable tta_anova;
  stats::AnovaTable ttsf_anova;
  stats::AnovaTable success_anova;
  /// Main effects sorted by descending eta^2 on the success indicator.
  std::vector<stats::AnovaEffect> ranking;
  /// Component names worth diversifying per the thresholds.
  std::vector<std::string> recommended;
  std::string report;  // printable summary
};

class Pipeline {
 public:
  Pipeline(const SystemDescription& description, attack::ThreatProfile profile,
           PipelineOptions options);

  /// Step 1 — Attack Modeling.
  [[nodiscard]] attack::StagedAttackModel attack_model(const Configuration& c) const;

  /// Step 2 — DoE & Measurements: full factorial over the named
  /// components (unnamed components stay at baseline). Each factor is
  /// truncated to at most `max_levels_per_factor` variants.
  [[nodiscard]] MeasurementTable measure_full_factorial(
      const std::vector<std::string>& component_names,
      std::size_t max_levels_per_factor = 0) const;  // 0 = all levels

  /// Step 2 (screening flavour) — Plackett-Burman over ALL components:
  /// level -1 is the baseline variant, level +1 the last (most diverse)
  /// variant of each component's kind.
  struct Screening {
    stats::TwoLevelDesign design;
    std::vector<double> mean_tta;          // response per run
    std::vector<double> success_prob;      // response per run
    std::vector<double> tta_effects;       // main effect per factor
    std::vector<double> success_effects;
  };
  [[nodiscard]] Screening screen() const;

  /// Step 2 (fractional flavour) — 2^(k-p) fractional factorial: the
  /// named base components span a full 2-level factorial; each generator
  /// adds one component whose level column is the product of base
  /// columns (stats::fractional_factorial). Returns the runs, responses,
  /// estimated main effects, and the alias structure so the analyst can
  /// see what is confounded with what — the paper's "DoE allows narrowing
  /// the number of configurations to assess" in its textbook form.
  struct Fractional {
    stats::TwoLevelDesign design;
    stats::AliasStructure aliases;
    std::vector<double> success_prob;  // response per run
    std::vector<double> mean_tta;
    std::vector<double> success_effects;  // main effect per factor
    std::vector<double> tta_effects;
  };
  [[nodiscard]] Fractional measure_fractional(
      const std::vector<std::string>& base_components,
      const std::vector<std::pair<std::string, std::string>>& generators) const;

  /// Step 3 — Diversity Assessment over a full-factorial table.
  [[nodiscard]] Assessment assess(const MeasurementTable& table) const;

  /// All three steps end-to-end.
  struct Result {
    MeasurementTable table;
    Assessment assessment;
  };
  [[nodiscard]] Result run(const std::vector<std::string>& component_names,
                           std::size_t max_levels_per_factor = 0) const;

  [[nodiscard]] const SystemDescription& description() const noexcept {
    return *description_;
  }

 private:
  const SystemDescription* description_;
  attack::ThreatProfile profile_;
  PipelineOptions options_;
};

}  // namespace divsec::core
