#include "core/indicator_accumulator.h"

#include <stdexcept>

namespace divsec::core {

IndicatorAccumulator::IndicatorAccumulator(double horizon_hours,
                                           std::size_t survival_bins)
    : horizon_(horizon_hours),
      tta_(horizon_hours, survival_bins),
      ttsf_(horizon_hours, survival_bins),
      curve_(horizon_hours, survival_bins) {}

IndicatorAccumulator::State IndicatorAccumulator::state() const {
  return {horizon_,      n_,            successes_,          tta_.state(),
          ttsf_.state(), final_ratio_.state(), curve_.state()};
}

IndicatorAccumulator IndicatorAccumulator::from_state(const State& s) {
  if (s.successes > s.n)
    throw std::invalid_argument(
        "IndicatorAccumulator::from_state: successes > replications");
  IndicatorAccumulator out;
  out.horizon_ = s.horizon;
  out.n_ = s.n;
  out.successes_ = s.successes;
  out.tta_ = stats::CensoredTimeAccumulator::from_state(s.tta);
  out.ttsf_ = stats::CensoredTimeAccumulator::from_state(s.ttsf);
  out.final_ratio_ = stats::OnlineStats::from_state(s.final_ratio);
  out.curve_ = RatioCurveAccumulator::from_state(s.curve);
  return out;
}

void IndicatorAccumulator::add(const IndicatorSample& sample) {
  ++n_;
  if (sample.attack_succeeded) ++successes_;
  tta_.add(sample.tta, sample.tta_censored);
  ttsf_.add(sample.ttsf, sample.ttsf_censored);
  final_ratio_.add(sample.final_ratio);
  // SAN samples carry no trajectory — the curve accumulator simply
  // stays empty for that engine.
  if (!sample.ratio_counts.empty())
    curve_.add(sample.ratio_counts, sample.ratio_scale);
}

void IndicatorAccumulator::merge(const IndicatorAccumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0 && horizon_ == 0.0) {
    *this = other;
    return;
  }
  n_ += other.n_;
  successes_ += other.successes_;
  tta_.merge(other.tta_);
  ttsf_.merge(other.ttsf_);
  final_ratio_.merge(other.final_ratio_);
  curve_.merge(other.curve_);
}

bool IndicatorAccumulator::precision_reached(const sim::StoppingRule& rule) const {
  sim::StoppingRule time_rule = rule;
  time_rule.absolute_precision = rule.absolute_precision * horizon_;
  return sim::precision_reached(tta_.moments(), time_rule) &&
         sim::precision_reached(ttsf_.moments(), time_rule) &&
         sim::precision_reached(final_ratio_, rule);
}

IndicatorSummary IndicatorAccumulator::summarize() const {
  IndicatorSummary s;
  s.replications = n_;
  s.horizon_hours = horizon_;
  s.tta = tta_.moments();
  s.tta_censored = tta_.censored();
  s.ttsf = ttsf_.moments();
  s.ttsf_censored = ttsf_.censored();
  s.final_ratio = final_ratio_;
  s.successes = successes_;
  s.tta_event = tta_.summarize();
  s.ttsf_event = ttsf_.summarize();
  s.ratio_curve = curve_.mean_curve();
  return s;
}

}  // namespace divsec::core
