#include "core/configuration.h"

#include <map>
#include <stdexcept>

namespace divsec::core {

using divers::ComponentKind;

SystemDescription::SystemDescription(attack::Scenario baseline,
                                     std::vector<Component> components,
                                     const divers::VariantCatalog& catalog)
    : baseline_(std::move(baseline)),
      components_(std::move(components)),
      catalog_(&catalog) {
  if (components_.empty())
    throw std::invalid_argument("SystemDescription: no components");
  for (const auto& c : components_) {
    if (c.name.empty()) throw std::invalid_argument("Component: empty name");
    if (catalog_->count(c.kind) == 0)
      throw std::invalid_argument("Component '" + c.name +
                                  "': catalog has no variants of its kind");
    for (net::NodeId n : c.nodes)
      if (n >= baseline_.topology.node_count())
        throw std::out_of_range("Component '" + c.name + "': node out of range");
    if (c.kind != ComponentKind::kFirewallFirmware && c.nodes.empty())
      throw std::invalid_argument("Component '" + c.name +
                                  "': node-bound kind with no nodes");
  }
  baseline_.validate(*catalog_);
}

Configuration SystemDescription::baseline_configuration() const {
  Configuration c;
  c.variant.assign(components_.size(), 0);
  return c;
}

void SystemDescription::validate(const Configuration& config) const {
  if (config.variant.size() != components_.size())
    throw std::invalid_argument("Configuration: arity mismatch");
  for (std::size_t i = 0; i < components_.size(); ++i)
    if (config.variant[i] >= catalog_->count(components_[i].kind))
      throw std::out_of_range("Configuration: variant index out of range for '" +
                              components_[i].name + "'");
}

attack::Scenario SystemDescription::instantiate(const Configuration& config) const {
  validate(config);
  attack::Scenario sc = baseline_;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    const Component& comp = components_[i];
    const std::size_t v = config.variant[i];
    switch (comp.kind) {
      case ComponentKind::kOs:
        for (net::NodeId n : comp.nodes) sc.software[n].os = v;
        break;
      case ComponentKind::kPlcFirmware:
        for (net::NodeId n : comp.nodes) sc.software[n].plc_firmware = v;
        break;
      case ComponentKind::kProtocolStack:
        for (net::NodeId n : comp.nodes) sc.software[n].protocol = v;
        break;
      case ComponentKind::kHmiSoftware:
        for (net::NodeId n : comp.nodes) sc.software[n].hmi = v;
        break;
      case ComponentKind::kFirewallFirmware:
        sc.firewall_variant = v;
        break;
      case ComponentKind::kHistorianDb:
        for (net::NodeId n : comp.nodes) sc.software[n].historian = v;
        break;
    }
  }
  sc.validate(*catalog_);
  return sc;
}

stats::FactorSpace SystemDescription::factor_space() const {
  std::vector<stats::Factor> factors;
  factors.reserve(components_.size());
  for (const auto& c : components_) {
    stats::Factor f;
    f.name = c.name;
    for (const auto& v : catalog_->variants(c.kind)) f.levels.push_back(v.name);
    factors.push_back(std::move(f));
  }
  return stats::FactorSpace(std::move(factors));
}

std::size_t SystemDescription::diversity_degree(const Configuration& config) const {
  validate(config);
  std::size_t d = 0;
  for (std::size_t v : config.variant)
    if (v != 0) ++d;
  return d;
}

double SystemDescription::shannon_diversity(const Configuration& config) const {
  validate(config);
  // Group components by kind; entropy of variant usage within each kind.
  std::map<ComponentKind, std::vector<std::size_t>> by_kind;
  for (std::size_t i = 0; i < components_.size(); ++i)
    by_kind[components_[i].kind].push_back(config.variant[i]);
  double h = 0.0;
  for (const auto& [kind, assignment] : by_kind)
    h += divers::shannon_diversity(assignment);
  return h;
}

double SystemDescription::extra_cost(const Configuration& config) const {
  validate(config);
  double cost = 0.0;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    const Component& comp = components_[i];
    const double scale =
        comp.nodes.empty() ? 1.0 : static_cast<double>(comp.nodes.size());
    cost += scale * (catalog_->variant(comp.kind, config.variant[i]).cost -
                     catalog_->variant(comp.kind, 0).cost);
  }
  return cost;
}

SystemDescription make_scope_description(const divers::VariantCatalog& catalog) {
  attack::Scenario sc = attack::make_scope_cooling_scenario();
  const auto& t = sc.topology;
  const auto id = [&t](const char* name) { return t.node_by_name(name); };

  std::vector<Component> comps;
  comps.push_back({"os.corporate", ComponentKind::kOs,
                   {id("corp.ws1"), id("corp.ws2"), id("corp.server"),
                    id("dmz.hist-mirror")}});
  comps.push_back({"os.control", ComponentKind::kOs,
                   {id("ctl.scada"), id("ctl.eng"), id("ctl.hmi"),
                    id("ctl.historian")}});
  comps.push_back({"plc.firmware", ComponentKind::kPlcFirmware,
                   {id("fld.plc-chiller"), id("fld.plc-crac")}});
  comps.push_back({"protocol.stack", ComponentKind::kProtocolStack,
                   {id("fld.plc-chiller"), id("fld.plc-crac"), id("fld.sensor-gw"),
                    id("ctl.scada")}});
  comps.push_back({"firewall", ComponentKind::kFirewallFirmware, {}});
  comps.push_back({"hmi.software", ComponentKind::kHmiSoftware, {id("ctl.hmi")}});
  comps.push_back({"historian.db", ComponentKind::kHistorianDb,
                   {id("dmz.hist-mirror"), id("ctl.historian")}});
  return SystemDescription(std::move(sc), std::move(comps), catalog);
}

}  // namespace divsec::core
