#include "core/report.h"

#include <fstream>
#include <span>
#include <sstream>

#include "core/ratio_curve.h"

namespace divsec::core {

namespace {

/// CSV-escape a field (quote when it contains a comma/quote/newline).
std::string escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

std::string measurement_csv(const MeasurementTable& table,
                            double censor_warn_fraction) {
  std::ostringstream os;
  for (std::size_t f = 0; f < table.space.factor_count(); ++f)
    os << escape(table.space.factor(f).name) << ",";
  os << "success_prob,tta_mean,tta_censored,tta_rmean,tta_median,"
        "ttsf_mean,ttsf_censored,ttsf_rmean,ttsf_median,"
        "final_ratio_mean,ratio_t25,ratio_t50,ratio_t75,ratio_auc,"
        "censor_warning\n";
  const auto median_cell = [](const std::optional<double>& m) {
    return m ? std::to_string(*m) : std::string{};
  };
  // Streamed mean compromised-ratio curve, surfaced as quartile-of-horizon
  // samples plus the normalized area under the curve (1/T ∫ c(t) dt,
  // trapezoidal over the bin grid anchored at c(0) = 0). Cells without a
  // curve (SAN engine) leave the fields empty.
  const auto curve_cells = [](const IndicatorSummary& s, std::ostream& o) {
    if (s.ratio_curve.empty()) {
      o << ",,,,";
      return;
    }
    const std::span<const double> curve(s.ratio_curve);
    const double T = s.horizon_hours;
    double area = 0.0;
    double prev = 0.0;
    for (const double v : curve) {
      area += 0.5 * (prev + v);
      prev = v;
    }
    area /= static_cast<double>(curve.size());
    o << curve_value_at(curve, T, 0.25 * T) << ","
      << curve_value_at(curve, T, 0.50 * T) << ","
      << curve_value_at(curve, T, 0.75 * T) << "," << area << ",";
  };
  for (std::size_t c = 0; c < table.configuration_count(); ++c) {
    const auto levels = table.space.decode(c);
    for (std::size_t f = 0; f < table.space.factor_count(); ++f)
      os << escape(table.space.factor(f).levels[static_cast<std::size_t>(levels[f])])
         << ",";
    const auto& s = table.summaries[c];
    os << s.attack_success_probability() << "," << s.tta.mean() << ","
       << s.tta_censored << "," << s.tta_event.restricted_mean << ","
       << median_cell(s.tta_event.median) << "," << s.ttsf.mean() << ","
       << s.ttsf_censored << "," << s.ttsf_event.restricted_mean << ","
       << median_cell(s.ttsf_event.median) << "," << s.final_ratio.mean() << ",";
    curve_cells(s, os);
    // Flag cells whose censored-at-horizon means are too biased to read
    // on their own: use the rmean/median columns instead.
    std::string warn;
    if (s.tta_censor_fraction() > censor_warn_fraction) warn = "tta";
    if (s.ttsf_censor_fraction() > censor_warn_fraction)
      warn += warn.empty() ? "ttsf" : ";ttsf";
    os << warn << "\n";
  }
  return os.str();
}

std::string anova_csv(const stats::AnovaTable& table) {
  std::ostringstream os;
  os << "effect,ss,df,ms,f,p,eta2\n";
  const auto row = [&os](const stats::AnovaEffect& e, bool with_f) {
    os << escape(e.name) << "," << e.ss << "," << e.df << "," << e.ms << ",";
    if (with_f)
      os << e.f << "," << e.p_value;
    else
      os << ",";
    os << "," << e.eta_squared << "\n";
  };
  for (const auto& e : table.effects) row(e, true);
  row(table.error, false);
  row(table.total, false);
  return os.str();
}

std::string assessment_markdown(const Assessment& assessment,
                                const std::string& title) {
  std::ostringstream os;
  os << "# " << title << "\n\n";
  const auto table_md = [&os](const stats::AnovaTable& t, const char* heading) {
    os << "## " << heading << "\n\n";
    os << "| Effect | SS | df | MS | F | p | eta^2 |\n";
    os << "|---|---|---|---|---|---|---|\n";
    for (const auto& e : t.effects) {
      os << "| " << e.name << " | " << e.ss << " | " << e.df << " | " << e.ms
         << " | " << e.f << " | " << e.p_value << " | " << e.eta_squared
         << " |\n";
    }
    os << "| Error | " << t.error.ss << " | " << t.error.df << " | " << t.error.ms
       << " | - | - | " << t.error.eta_squared << " |\n";
    os << "| Total | " << t.total.ss << " | " << t.total.df << " | - | - | - | 1 |\n\n";
  };
  table_md(assessment.success_anova, "Attack success probability");
  table_md(assessment.tta_anova, "Time-To-Attack");
  table_md(assessment.ttsf_anova, "Time-To-Security-Failure");

  os << "## Component ranking (success-probability variance share)\n\n";
  for (const auto& e : assessment.ranking)
    os << "1. **" << e.name << "** — eta^2 = " << e.eta_squared
       << ", p = " << e.p_value << "\n";
  os << "\n## Recommended for diversification\n\n";
  if (assessment.recommended.empty()) {
    os << "_None met the thresholds._\n";
  } else {
    for (const auto& r : assessment.recommended) os << "- " << r << "\n";
  }
  return os.str();
}

void save_to_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_to_file: cannot open " + path);
  out << content;
  if (!out) throw std::runtime_error("save_to_file: write failed for " + path);
}

}  // namespace divsec::core
