#include "core/indicators.h"

#include <stdexcept>

#include "core/measurement.h"

namespace divsec::core {

namespace {

using attack::Scenario;
using divers::ComponentKind;

/// Mean exploit success over the OS variants of the given nodes.
double mean_success_over_nodes(const divers::VariantCatalog& cat,
                               const divers::Exploit& e, const Scenario& sc,
                               const std::vector<net::NodeId>& nodes) {
  if (nodes.empty()) return 0.0;
  double acc = 0.0;
  for (net::NodeId n : nodes) acc += cat.exploit_success(e, sc.software[n].os);
  return acc / static_cast<double>(nodes.size());
}

std::vector<net::NodeId> host_nodes(const Scenario& sc) {
  std::vector<net::NodeId> out;
  for (net::NodeId n = 0; n < sc.topology.node_count(); ++n) {
    const net::Role r = sc.topology.node(n).role;
    if (r != net::Role::kPlc && r != net::Role::kSensorGateway) out.push_back(n);
  }
  return out;
}

}  // namespace

attack::StagedAttackModel derive_staged_model(const SystemDescription& description,
                                              const Configuration& config,
                                              const attack::ThreatProfile& profile,
                                              const attack::DetectionModel& detection) {
  profile.validate();
  detection.validate();
  const divers::VariantCatalog& cat = description.catalog();
  const Scenario sc = description.instantiate(config);
  const auto hosts = host_nodes(sc);

  attack::StagedAttackModel m;
  m.name = profile.name + "@" + "config";
  const double host_det = detection.host_detection_rate * (1.0 - profile.stealth);
  // Failed attempts trip defenses: while a stage retries, detections
  // arrive at rate = attempts/hour * P[attempt fails] * P[failure seen].
  // Not stealth-discounted (crashes are loud; see DetectionModel).
  const double fail_det = detection.failed_attempt_detection;
  const auto failure_detection = [fail_det](double rate, double p_success) {
    return rate * (1.0 - p_success) * fail_det;
  };

  // initial -> activated: dropper executes on an entry node.
  auto& t0 = m.transitions[0];
  t0.attempt_rate = profile.activation_rate /
                    cat.exploit_work_factor(profile.activation_exploit,
                                            sc.software[sc.entry_nodes.front()].os);
  t0.success_probability =
      mean_success_over_nodes(cat, profile.activation_exploit, sc, sc.entry_nodes);
  // Dormant malware is invisible, but failed activation attempts are not.
  t0.detection_rate = failure_detection(t0.attempt_rate, t0.success_probability);

  // activated -> root access: privilege escalation.
  auto& t1 = m.transitions[1];
  t1.attempt_rate = profile.privesc_rate;
  t1.success_probability =
      mean_success_over_nodes(cat, profile.privesc_exploit, sc, hosts);
  t1.detection_rate =
      host_det + failure_detection(t1.attempt_rate, t1.success_probability);

  // root -> propagation: lateral movement into the control network; a
  // fraction of paths must cross the zone firewall, where a deny verdict
  // can only be beaten by the firewall exploit.
  auto& t2 = m.transitions[2];
  t2.attempt_rate = profile.propagation_rate;
  const double lateral =
      mean_success_over_nodes(cat, profile.lateral_exploit, sc, hosts);
  const double fw_bypass =
      cat.exploit_success(profile.firewall_exploit, sc.firewall_variant);
  t2.success_probability = lateral * (0.6 + 0.4 * fw_bypass);
  t2.detection_rate =
      host_det + failure_detection(t2.attempt_rate, t2.success_probability);

  // propagation -> device impairment: PLC payload delivery; the fieldbus
  // route additionally abuses the protocol stack.
  auto& t3 = m.transitions[3];
  double plc_success = 0.0;
  double proto_success = 0.0;
  if (!sc.target_plcs.empty()) {
    for (net::NodeId plc : sc.target_plcs) {
      plc_success +=
          cat.exploit_success(profile.plc_exploit, *sc.software[plc].plc_firmware);
      proto_success +=
          cat.exploit_success(profile.protocol_exploit, sc.software[plc].protocol);
    }
    plc_success /= static_cast<double>(sc.target_plcs.size());
    proto_success /= static_cast<double>(sc.target_plcs.size());
  }
  t3.attempt_rate =
      profile.payload_rate /
      (sc.target_plcs.empty()
           ? 1.0
           : cat.exploit_work_factor(profile.plc_exploit,
                                     *sc.software[sc.target_plcs.front()].plc_firmware));
  t3.success_probability =
      profile.has_sabotage_payload ? plc_success * (0.7 + 0.3 * proto_success) : 0.0;
  t3.detection_rate =
      host_det + failure_detection(t3.attempt_rate, t3.success_probability);

  // device impairment -> mission complete: slow physical sabotage.
  auto& t4 = m.transitions[4];
  t4.attempt_rate = 1.0 / profile.sabotage_mean_hours;
  t4.success_probability = 1.0;
  t4.detection_rate = host_det;

  m.impairment_detection_rate =
      detection.alarm_detection_rate * (1.0 - profile.spoof_effectiveness);
  m.validate();
  return m;
}

IndicatorSummary measure_indicators(const SystemDescription& description,
                                    const Configuration& config,
                                    const attack::ThreatProfile& profile,
                                    const MeasurementOptions& options) {
  if (options.replications == 0)
    throw std::invalid_argument("measure_indicators: need >= 1 replication");
  const MeasurementEngine engine(description, profile, options);
  return engine.measure_one(config);
}

IndicatorComparison compare_indicators(const IndicatorSummary& a,
                                       const IndicatorSummary& b) {
  IndicatorComparison c;
  c.success = stats::two_proportion_z_test(a.successes, a.replications,
                                           b.successes, b.replications);
  c.tta = stats::welch_t_test(a.tta, b.tta);
  c.ttsf = stats::welch_t_test(a.ttsf, b.ttsf);
  return c;
}

std::vector<double> mean_compromised_ratio_curve(
    const SystemDescription& description, const Configuration& config,
    const attack::ThreatProfile& profile, const MeasurementOptions& options,
    const std::vector<double>& time_grid_hours) {
  if (options.engine != Engine::kCampaign)
    throw std::invalid_argument(
        "mean_compromised_ratio_curve: requires the campaign engine");
  const MeasurementEngine engine(description, profile, options);
  return engine.mean_ratio_curve(config, time_grid_hours);
}

}  // namespace divsec::core
