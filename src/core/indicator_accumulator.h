// indicator_accumulator.h — streaming per-cell aggregation of indicator
// samples.
//
// One accumulator holds everything an IndicatorSummary reports — Welford
// moments, censor counts, success count, the censoring-aware
// product-limit / t-digest state for TTA and TTSF, and the binned
// compromised-ratio curve — in O(survival bins + sketch) memory, so a
// measurement sweep can reduce its (cell × replication) jobs without
// ever materializing the sample matrix. merge() combines
// block partials; the engine merges them in ascending block order
// (sim::blocked_reduce_groups), which keeps every summary bit-identical
// for any DIVSEC_THREADS. The retain-everything path folds its samples
// through the same accumulator, so streaming and retained summaries are
// bit-identical too.
#pragma once

#include "core/indicators.h"
#include "core/ratio_curve.h"
#include "sim/stopping.h"
#include "stats/survival.h"

namespace divsec::core {

class IndicatorAccumulator {
 public:
  /// The complete aggregation state, exposed for the distributed-sweep
  /// serialization layer (dist/state_codec): a shard process exports its
  /// partials with state(), the merge process restores them with
  /// from_state() and merges exactly as the in-process reduction would
  /// have. from_state(state()) is an exact round-trip — every subsequent
  /// merge/summarize is bit-identical to the original's.
  struct State {
    double horizon = 0.0;
    std::size_t n = 0;
    std::size_t successes = 0;
    stats::CensoredTimeAccumulator::State tta;
    stats::CensoredTimeAccumulator::State ttsf;
    stats::OnlineStats::State final_ratio;
    RatioCurveAccumulator::State curve;
  };

  IndicatorAccumulator() = default;  // mergeable empty state
  IndicatorAccumulator(double horizon_hours, std::size_t survival_bins);

  [[nodiscard]] State state() const;
  /// Restores from exported state; constituent validation applies
  /// (std::invalid_argument on corrupt state).
  [[nodiscard]] static IndicatorAccumulator from_state(const State& s);

  void add(const IndicatorSample& sample);
  void merge(const IndicatorAccumulator& other);

  /// Aggregate view; `samples` is left empty (retention is the caller's
  /// concern, not the accumulator's).
  [[nodiscard]] IndicatorSummary summarize() const;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }

  /// The adaptive sweep's per-cell stopping test: true when every
  /// indicator's streaming moments meet the rule's precision criteria
  /// (sim::precision_reached) — the censored-at-horizon TTA and TTSF
  /// moments with the absolute floor scaled by the horizon
  /// (rule.absolute_precision * horizon hours), and the final compromised
  /// ratio with the floor applied as-is. The rule's min/max bounds are
  /// the round driver's concern, not this predicate's.
  [[nodiscard]] bool precision_reached(const sim::StoppingRule& rule) const;

 private:
  double horizon_ = 0.0;
  std::size_t n_ = 0;
  std::size_t successes_ = 0;
  stats::CensoredTimeAccumulator tta_;
  stats::CensoredTimeAccumulator ttsf_;
  stats::OnlineStats final_ratio_;
  RatioCurveAccumulator curve_;
};

}  // namespace divsec::core
