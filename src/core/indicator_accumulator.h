// indicator_accumulator.h — streaming per-cell aggregation of indicator
// samples.
//
// One accumulator holds everything an IndicatorSummary reports — Welford
// moments, censor counts, success count, and the censoring-aware
// product-limit / P² state for TTA and TTSF — in O(survival bins)
// memory, so a measurement sweep can reduce its (cell × replication)
// jobs without ever materializing the sample matrix. merge() combines
// block partials; the engine merges them in ascending block order
// (sim::blocked_reduce_groups), which keeps every summary bit-identical
// for any DIVSEC_THREADS. The retain-everything path folds its samples
// through the same accumulator, so streaming and retained summaries are
// bit-identical too.
#pragma once

#include "core/indicators.h"
#include "stats/survival.h"

namespace divsec::core {

class IndicatorAccumulator {
 public:
  IndicatorAccumulator() = default;  // mergeable empty state
  IndicatorAccumulator(double horizon_hours, std::size_t survival_bins);

  void add(const IndicatorSample& sample);
  void merge(const IndicatorAccumulator& other);

  /// Aggregate view; `samples` is left empty (retention is the caller's
  /// concern, not the accumulator's).
  [[nodiscard]] IndicatorSummary summarize() const;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }

 private:
  double horizon_ = 0.0;
  std::size_t n_ = 0;
  std::size_t successes_ = 0;
  stats::CensoredTimeAccumulator tta_;
  stats::CensoredTimeAccumulator ttsf_;
  stats::OnlineStats final_ratio_;
};

}  // namespace divsec::core
