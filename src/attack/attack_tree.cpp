#include "attack/attack_tree.h"

#include <algorithm>
#include <stdexcept>

namespace divsec::attack {

AttackTree::NodeId AttackTree::add_leaf(std::string name, double probability,
                                        double time_hours, double cost) {
  if (probability < 0.0 || probability > 1.0)
    throw std::invalid_argument("add_leaf: probability must be in [0,1]");
  if (time_hours < 0.0 || cost < 0.0)
    throw std::invalid_argument("add_leaf: time and cost must be >= 0");
  Node n;
  n.name = std::move(name);
  n.kind = GateKind::kLeaf;
  n.probability = probability;
  n.time_hours = time_hours;
  n.cost = cost;
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

AttackTree::NodeId AttackTree::add_and(std::string name, std::vector<NodeId> children) {
  if (children.empty()) throw std::invalid_argument("add_and: no children");
  for (NodeId c : children)
    if (c >= nodes_.size()) throw std::out_of_range("add_and: invalid child");
  Node n;
  n.name = std::move(name);
  n.kind = GateKind::kAnd;
  n.children = std::move(children);
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

AttackTree::NodeId AttackTree::add_or(std::string name, std::vector<NodeId> children) {
  if (children.empty()) throw std::invalid_argument("add_or: no children");
  for (NodeId c : children)
    if (c >= nodes_.size()) throw std::out_of_range("add_or: invalid child");
  Node n;
  n.name = std::move(name);
  n.kind = GateKind::kOr;
  n.children = std::move(children);
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

void AttackTree::set_root(NodeId id) {
  if (id >= nodes_.size()) throw std::out_of_range("set_root: invalid node");
  root_ = id;
  check_acyclic();
}

AttackTree::NodeId AttackTree::root() const {
  if (root_ == static_cast<NodeId>(-1))
    throw std::logic_error("AttackTree: root not set");
  return root_;
}

void AttackTree::check_acyclic() const {
  // Children must have smaller ids than their parent (construction order),
  // which makes cycles impossible; verify anyway for defense in depth.
  for (NodeId i = 0; i < nodes_.size(); ++i)
    for (NodeId c : nodes_[i].children)
      if (c >= i) throw std::logic_error("AttackTree: forward edge (cycle risk)");
}

double AttackTree::probability_of(NodeId id) const {
  const Node& n = nodes_[id];
  switch (n.kind) {
    case GateKind::kLeaf: return n.probability;
    case GateKind::kAnd: {
      double p = 1.0;
      for (NodeId c : n.children) p *= probability_of(c);
      return p;
    }
    case GateKind::kOr: {
      double q = 1.0;
      for (NodeId c : n.children) q *= 1.0 - probability_of(c);
      return 1.0 - q;
    }
  }
  return 0.0;
}

double AttackTree::cost_of(NodeId id) const {
  const Node& n = nodes_[id];
  switch (n.kind) {
    case GateKind::kLeaf: return n.cost;
    case GateKind::kAnd: {
      double s = 0.0;
      for (NodeId c : n.children) s += cost_of(c);
      return s;
    }
    case GateKind::kOr: {
      double best = cost_of(n.children.front());
      for (NodeId c : n.children) best = std::min(best, cost_of(c));
      return best;
    }
  }
  return 0.0;
}

double AttackTree::time_of(NodeId id) const {
  const Node& n = nodes_[id];
  switch (n.kind) {
    case GateKind::kLeaf: return n.time_hours;
    case GateKind::kAnd: {
      double s = 0.0;
      for (NodeId c : n.children) s += time_of(c);
      return s;
    }
    case GateKind::kOr: {
      double best = time_of(n.children.front());
      for (NodeId c : n.children) best = std::min(best, time_of(c));
      return best;
    }
  }
  return 0.0;
}

double AttackTree::success_probability() const { return probability_of(root()); }
double AttackTree::min_cost() const { return cost_of(root()); }
double AttackTree::min_time() const { return time_of(root()); }

void AttackTree::scenarios_of(NodeId id, std::vector<std::vector<NodeId>>& out,
                              std::size_t limit) const {
  const Node& n = nodes_[id];
  switch (n.kind) {
    case GateKind::kLeaf:
      out.push_back({id});
      return;
    case GateKind::kOr: {
      for (NodeId c : n.children) {
        std::vector<std::vector<NodeId>> child;
        scenarios_of(c, child, limit);
        for (auto& s : child) out.push_back(std::move(s));
        if (out.size() > limit)
          throw std::length_error("attack_scenarios: scenario count exceeds limit");
      }
      return;
    }
    case GateKind::kAnd: {
      std::vector<std::vector<NodeId>> acc{{}};
      for (NodeId c : n.children) {
        std::vector<std::vector<NodeId>> child;
        scenarios_of(c, child, limit);
        std::vector<std::vector<NodeId>> next;
        for (const auto& a : acc) {
          for (const auto& b : child) {
            auto merged = a;
            merged.insert(merged.end(), b.begin(), b.end());
            next.push_back(std::move(merged));
            if (next.size() > limit)
              throw std::length_error("attack_scenarios: scenario count exceeds limit");
          }
        }
        acc = std::move(next);
      }
      for (auto& s : acc) out.push_back(std::move(s));
      return;
    }
  }
}

std::vector<std::vector<AttackTree::NodeId>> AttackTree::attack_scenarios(
    std::size_t limit) const {
  std::vector<std::vector<NodeId>> out;
  scenarios_of(root(), out, limit);
  // Deduplicate leaves within each scenario.
  for (auto& s : out) {
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
  }
  return out;
}

void AttackTree::scale_leaf_probabilities(const std::string& name_substring,
                                          double factor) {
  if (factor < 0.0) throw std::invalid_argument("scale_leaf_probabilities: factor < 0");
  for (auto& n : nodes_) {
    if (n.kind != GateKind::kLeaf) continue;
    if (n.name.find(name_substring) == std::string::npos) continue;
    n.probability = std::clamp(n.probability * factor, 0.0, 1.0);
  }
}

AttackTree make_staged_attack_tree(double p_delivery, double p_activation,
                                   double p_privesc, double p_propagation,
                                   double p_plc_payload) {
  AttackTree t;
  // Delivery alternatives (Stuxnet's entry vectors).
  const auto usb = t.add_leaf("delivery.usb", p_delivery, 48.0, 3.0);
  const auto share = t.add_leaf("delivery.share", p_delivery * 0.6, 24.0, 2.0);
  const auto spooler = t.add_leaf("delivery.spooler", p_delivery * 0.4, 24.0, 2.0);
  const auto delivery = t.add_or("stage.initial", {usb, share, spooler});

  const auto act = t.add_leaf("stage.activated", p_activation, 4.0, 5.0);
  const auto root = t.add_leaf("stage.root-access", p_privesc, 8.0, 8.0);

  const auto hop_it = t.add_leaf("propagation.it-to-control", p_propagation, 72.0, 6.0);
  const auto hop_proj = t.add_leaf("propagation.project-file", p_propagation * 0.8,
                                   120.0, 4.0);
  const auto prop = t.add_or("stage.propagation", {hop_it, hop_proj});

  const auto payload = t.add_leaf("stage.device-impairment", p_plc_payload, 240.0, 10.0);

  const auto top = t.add_and("attack.sabotage", {delivery, act, root, prop, payload});
  t.set_root(top);
  return t;
}

}  // namespace divsec::attack
