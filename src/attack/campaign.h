// campaign.h — network-level attack campaign simulation.
//
// Where san_model.h abstracts the whole system into one staged token,
// the campaign simulator plays the attack out node by node over the real
// topology: delivery through entry channels, per-node activation and
// privilege escalation (success probabilities derived from each node's
// deployed variants), worm-style lateral movement constrained by the
// firewall policy, PLC payload delivery from engineering/SCADA footholds,
// slow physical sabotage, and two detection channels (host IDS vs plant
// alarms, the latter suppressed by Stuxnet-style monitoring spoofing).
//
// It produces the paper's three indicators directly:
//   * Time-To-Attack            — sabotage completed,
//   * Time-To-Security-Failure  — first perceived manifestation,
//   * compromised ratio c(t)    — step curve of owned nodes over time.
//
// The simulator is built to run on generated enterprise fleets, not just
// the paper's 11-node plant: construction precomputes a per-scenario
// ReachabilityIndex and flat per-node exploit tables (success
// probability, delay rate, role flags — all indexed by NodeId), and each
// run() schedules the model's recurring Poisson processes as exact
// superpositions (worm scanning at rate lambda*R(t) over R roots,
// host-IDS first passage over the activated pool, and so on) next to a
// small heap of per-node retry events. No string labels, no per-node
// scans, no per-event catalog or firewall walks, no queue that grows
// with fleet compromise. The precomputed state is read-only, so one
// simulator serves any number of concurrent replications.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "attack/threat.h"
#include "divers/variants.h"
#include "net/firewall.h"
#include "net/topology.h"
#include "stats/rng.h"

namespace divsec::net {
class ReachabilityIndex;
}

namespace divsec::attack {

/// Variant assignment for the software running on one node. Indices refer
/// to VariantCatalog entries of the respective kind.
struct NodeSoftware {
  std::size_t os = 0;
  std::size_t protocol = 0;
  std::optional<std::size_t> plc_firmware;  // PLC nodes
  std::optional<std::size_t> hmi;           // HMI nodes
  std::optional<std::size_t> historian;     // historian nodes
};

/// A concrete system under attack: topology + policy + deployed variants.
struct Scenario {
  net::Topology topology;
  net::Firewall firewall;
  std::size_t firewall_variant = 0;  // zone firewall's firmware variant
  std::vector<NodeSoftware> software;  // one entry per node
  std::vector<net::NodeId> entry_nodes;  // where initial delivery can land
  std::vector<net::NodeId> target_plcs;  // sabotage targets

  void validate(const divers::VariantCatalog& catalog) const;
};

enum class NodeState : std::uint8_t { kClean, kDelivered, kActivated, kRoot };

/// What happened at a campaign event (dense enum; the old std::string
/// labels did not survive fleet-scale event volumes).
enum class CampaignEventKind : std::uint8_t {
  kDelivered,
  kDeliveredLateral,
  kActivated,
  kRoot,
  kPlcCompromised,
  kDeviceImpaired,
  kFailedExploitDetected,
  kHostIdsDetection,
  kPlantAlarmDetection,
};

inline constexpr std::size_t kEventKindCount = 9;

[[nodiscard]] const char* to_string(CampaignEventKind k) noexcept;

struct CampaignEvent {
  double time = 0.0;
  net::NodeId node = 0;
  CampaignEventKind kind = CampaignEventKind::kDelivered;
};

struct CampaignResult {
  std::optional<double> time_of_entry;
  std::optional<double> first_root;
  std::optional<double> first_plc_compromise;
  std::optional<double> time_to_attack;     // TTA: sabotage completed
  std::optional<double> time_to_detection;  // TTSF: perceived manifestation
  /// Step curve (time, compromised ratio); starts at (0, 0).
  std::vector<std::pair<double, double>> compromised_ratio;
  std::vector<CampaignEvent> events;  // only when record_events
  std::size_t hosts_compromised = 0;  // final count (>= activated)
  std::size_t plcs_compromised = 0;
  /// Scheduler events executed by this run (throughput accounting).
  std::size_t events_executed = 0;

  /// The attack completed sabotage before being detected and within the
  /// horizon — the paper's "successful attack".
  [[nodiscard]] bool attack_succeeded() const noexcept {
    return time_to_attack.has_value() &&
           (!time_to_detection.has_value() ||
            *time_to_attack <= *time_to_detection);
  }
  [[nodiscard]] bool detected() const noexcept {
    return time_to_detection.has_value();
  }
  /// Compromised ratio at time t (step interpolation).
  [[nodiscard]] double ratio_at(double t) const noexcept;
};

/// Which inner loop run() executes. Both kernels implement the identical
/// event model over the identical per-event-class draw contract
/// (attack/campaign_rng.h), so their results are bit-identical; the
/// scalar reference exists to prove exactly that (tests compare them).
enum class CampaignKernel : std::uint8_t {
  /// Structure-of-arrays hot loop: batched per-class RNG blocks, fused
  /// scan-eligibility bytes, incremental membership counters,
  /// swap-remove pools. The default.
  kBatched,
  /// Straight port of the pre-SoA loop onto the class-stream facade:
  /// per-draw (block = 1) streams, separate flag arrays, linear
  /// monitoring-view scan. Same draws, same bits, slower.
  kScalarReference,
};

struct CampaignOptions {
  double t_max_hours = 2160.0;  // 90-day horizon
  bool record_events = false;
  /// Detection freezes attacker progress (incident response).
  bool detection_halts_attack = true;
  /// Inner-loop selection; results are bit-identical across kernels.
  CampaignKernel kernel = CampaignKernel::kBatched;
};

/// Precomputed flat per-node campaign state (defined in campaign.cpp).
struct CampaignTables;

class CampaignSimulator {
 public:
  CampaignSimulator(Scenario scenario, ThreatProfile profile,
                    const divers::VariantCatalog& catalog,
                    DetectionModel detection = {}, CampaignOptions options = {});

  /// Shared-topology construction: reuse a prebuilt ReachabilityIndex
  /// instead of evaluating the all-pairs relation again. The index must
  /// have been built from this scenario's topology and firewall (node
  /// counts are validated; the caller owns the stronger equivalence —
  /// core::MeasurementEngine keys its cache on the full structural
  /// input). Construction consumes no randomness either way, so results
  /// are identical to the self-building constructor.
  CampaignSimulator(Scenario scenario, ThreatProfile profile,
                    const divers::VariantCatalog& catalog,
                    DetectionModel detection, CampaignOptions options,
                    std::shared_ptr<const net::ReachabilityIndex> shared_reach);
  ~CampaignSimulator();
  CampaignSimulator(CampaignSimulator&&) noexcept;

  /// Run one stochastic campaign; deterministic in `rng`. Thread-safe for
  /// concurrent calls on one simulator (all shared state is read-only).
  [[nodiscard]] CampaignResult run(stats::Rng& rng) const;

  [[nodiscard]] const Scenario& scenario() const noexcept { return scenario_; }
  [[nodiscard]] const ThreatProfile& profile() const noexcept { return profile_; }

  /// The per-scenario reachability index built at construction; share it
  /// with net::MeanFieldEpidemic instead of recomputing all pairs.
  [[nodiscard]] const net::ReachabilityIndex& reachability() const noexcept;

  /// Owning handle on the same index, for sharing across simulators of
  /// the same topology (the MeasurementEngine context cache does this).
  [[nodiscard]] std::shared_ptr<const net::ReachabilityIndex>
  shared_reachability() const noexcept;

 private:
  Scenario scenario_;
  ThreatProfile profile_;
  const divers::VariantCatalog& catalog_;
  DetectionModel detection_;
  CampaignOptions options_;
  std::unique_ptr<const CampaignTables> tables_;
};

/// The SCoPE-like data-center cooling scenario used throughout the paper
/// reproduction: corporate zone (2 workstations), DMZ (historian mirror),
/// control zone (SCADA server, engineering workstation, HMI, historian),
/// field zone (2 cooling PLCs + sensor gateway); segmented firewall; USB
/// exposure on workstations and the engineering station. All components
/// start at the baseline (index 0) variants: the monoculture.
[[nodiscard]] Scenario make_scope_cooling_scenario();

}  // namespace divsec::attack
