#include "attack/san_model.h"

#include <cmath>
#include <stdexcept>

namespace divsec::attack {

namespace {

san::Predicate token_at(san::PlaceId p) {
  return [p](const san::Marking& m) { return m[p] >= 1; };
}

}  // namespace

san::Predicate AttackSan::success_predicate() const { return token_at(success_place); }
san::Predicate AttackSan::detected_predicate() const { return token_at(detected_place); }

san::Predicate AttackSan::terminal_predicate() const {
  const san::PlaceId s = success_place;
  const san::PlaceId d = detected_place;
  return [s, d](const san::Marking& m) { return m[s] >= 1 || m[d] >= 1; };
}

AttackSan build_attack_san(const StagedAttackModel& model) {
  model.validate();
  AttackSan out;
  auto& san = out.model;
  for (std::size_t i = 0; i < kStageCount; ++i)
    out.stage_place[i] =
        san.add_place(std::string("stage.") + to_string(static_cast<Stage>(i)),
                      i == 0 ? 1 : 0);
  out.success_place = san.add_place("attack.succeeded", 0);
  out.detected_place = san.add_place("attack.detected", 0);

  for (std::size_t i = 0; i < kStageCount; ++i) {
    const StageTransition& tr = model.transitions[i];
    const auto advance = san.add_timed_activity(
        std::string("advance.") + to_string(static_cast<Stage>(i)),
        stats::Exponential{tr.attempt_rate});
    san.add_input_arc(advance, out.stage_place[i]);
    const std::size_t ok = san.add_case(advance, tr.success_probability);
    const std::size_t fail = san.add_case(advance, 1.0 - tr.success_probability);
    const san::PlaceId next =
        (i + 1 < kStageCount) ? out.stage_place[i + 1] : out.success_place;
    san.add_output_arc(advance, next, 1, ok);
    san.add_output_arc(advance, out.stage_place[i], 1, fail);

    if (tr.detection_rate > 0.0) {
      const auto detect = san.add_timed_activity(
          std::string("detect.") + to_string(static_cast<Stage>(i)),
          stats::Exponential{tr.detection_rate});
      san.add_input_arc(detect, out.stage_place[i]);
      san.add_output_arc(detect, out.detected_place);
    }
  }
  if (model.impairment_detection_rate > 0.0) {
    const auto alarm = san.add_timed_activity(
        "detect.plant-alarms", stats::Exponential{model.impairment_detection_rate});
    san.add_input_arc(alarm, out.stage_place[kStageCount - 1]);
    san.add_output_arc(alarm, out.detected_place);
  }
  san.validate();
  return out;
}

san::Predicate TwoMachineSan::both_owned_predicate() const {
  const san::PlaceId a = m1_owned;
  const san::PlaceId b = m2_owned;
  return [a, b](const san::Marking& m) { return m[a] >= 1 && m[b] >= 1; };
}

TwoMachineSan build_two_machine_san(double attempt_rate, double p1, double p2,
                                    double reuse_probability) {
  if (!(attempt_rate > 0.0))
    throw std::invalid_argument("build_two_machine_san: attempt_rate must be > 0");
  for (double p : {p1, p2, reuse_probability})
    if (p < 0.0 || p > 1.0)
      throw std::invalid_argument("build_two_machine_san: probabilities in [0,1]");

  TwoMachineSan out;
  auto& san = out.model;
  const auto m1_clean = san.add_place("m1.clean", 1);
  out.m1_owned = san.add_place("m1.owned", 0);
  const auto m2_clean = san.add_place("m2.clean", 1);
  out.m2_owned = san.add_place("m2.owned", 0);

  const auto a1 = san.add_timed_activity("attack.m1", stats::Exponential{attempt_rate});
  san.add_input_arc(a1, m1_clean);
  {
    const auto ok = san.add_case(a1, p1);
    const auto fail = san.add_case(a1, 1.0 - p1);
    san.add_output_arc(a1, out.m1_owned, 1, ok);
    san.add_output_arc(a1, m1_clean, 1, fail);
  }

  const san::PlaceId m1_owned = out.m1_owned;
  // Machine 2 before machine 1 falls: independent exploitation.
  const auto a2_pre =
      san.add_timed_activity("attack.m2.fresh", stats::Exponential{attempt_rate});
  san.add_input_arc(a2_pre, m2_clean);
  san.add_input_gate(a2_pre,
                     [m1_owned](const san::Marking& m) { return m[m1_owned] == 0; });
  {
    const auto ok = san.add_case(a2_pre, p2);
    const auto fail = san.add_case(a2_pre, 1.0 - p2);
    san.add_output_arc(a2_pre, out.m2_owned, 1, ok);
    san.add_output_arc(a2_pre, m2_clean, 1, fail);
  }

  // Machine 2 after machine 1 falls: the attacker replays the working
  // exploit; on identical machines (reuse=1) it lands immediately.
  const double q = std::max(p2, reuse_probability);
  const auto a2_post =
      san.add_timed_activity("attack.m2.replay", stats::Exponential{attempt_rate});
  san.add_input_arc(a2_post, m2_clean);
  san.add_input_gate(a2_post,
                     [m1_owned](const san::Marking& m) { return m[m1_owned] >= 1; });
  {
    const auto ok = san.add_case(a2_post, q);
    const auto fail = san.add_case(a2_post, 1.0 - q);
    san.add_output_arc(a2_post, out.m2_owned, 1, ok);
    san.add_output_arc(a2_post, m2_clean, 1, fail);
  }

  san.validate();
  return out;
}

double two_machine_success_probability(double attempt_rate, double p1, double p2,
                                       double reuse_probability, double t) {
  if (!(attempt_rate > 0.0) || t < 0.0)
    throw std::invalid_argument("two_machine_success_probability: bad arguments");
  const double l1 = attempt_rate * p1;
  const double l2a = attempt_rate * p2;
  const double l2b = attempt_rate * std::max(p2, reuse_probability);
  if (l1 <= 0.0 || l2b <= 0.0) return 0.0;
  // P = (1 - e^{-l1 t}) - e^{-l2b t} * l1/(l1+l2a-l2b) * (1 - e^{-(l1+l2a-l2b) t})
  const double d = l1 + l2a - l2b;
  const double head = -std::expm1(-l1 * t);
  if (std::fabs(d) < 1e-12)
    return head - std::exp(-l2b * t) * l1 * t;
  return head - std::exp(-l2b * t) * (l1 / d) * (-std::expm1(-d * t));
}

}  // namespace divsec::attack
