// stages.h — the paper's attack progression stages.
//
// "Progression of an attack, in terms of the stages the attack undergoes
// before success (e.g., initial, activated, root access, network
// propagation, device impairment) is formalized by means of a model."
//
// StagedAttackModel is exactly that formalization: for each stage
// transition, an attempt rate (how often the attacker gets a shot) and a
// success probability (which depends on the deployed component variants —
// the diversity hook), plus per-stage detection rates competing with
// progression. san_model.h compiles it into a SAN; the campaign
// simulator (campaign.h) uses the same stage semantics per node.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace divsec::attack {

enum class Stage : std::uint8_t {
  kInitial = 0,       // malware delivered but dormant
  kActivated,         // executing with user privileges
  kRootAccess,        // privileged on the node
  kPropagation,       // spreading / reaching the control network
  kDeviceImpairment,  // PLC payload delivered, physical sabotage underway
};

inline constexpr std::size_t kStageCount = 5;

[[nodiscard]] const char* to_string(Stage s) noexcept;

/// Parameters of one stage transition (stage i -> i+1).
struct StageTransition {
  /// Attempts per hour the attacker makes at this stage.
  double attempt_rate = 0.1;
  /// Per-attempt success probability (variant-dependent; in [0,1]).
  double success_probability = 0.5;
  /// Detections per hour while the attack sits at this stage
  /// (host IDS, operator suspicion, plant alarms...).
  double detection_rate = 0.0;
};

/// The system-level staged model: 5 transitions (from kInitial through
/// completion of kDeviceImpairment) and a post-impairment detection rate
/// (plant alarms; spoofing suppresses it).
struct StagedAttackModel {
  std::string name = "staged-attack";
  /// transitions[i] moves from Stage(i) to Stage(i+1); the last entry is
  /// the sabotage-completion transition out of kDeviceImpairment into
  /// mission success (device destroyed).
  std::array<StageTransition, kStageCount> transitions{};
  /// Alarm-channel detection rate once impairment is underway.
  double impairment_detection_rate = 0.0;

  /// Validate rates/probabilities; throws std::invalid_argument.
  void validate() const;

  /// Closed-form mean time to traverse stage i (geometric number of
  /// exponential attempts): 1 / (rate * p). Infinite if p == 0.
  [[nodiscard]] double expected_stage_time(std::size_t i) const;

  /// Sum of expected stage times (ignores detection): the analytic
  /// approximation of mean Time-To-Attack used for cross-checks.
  [[nodiscard]] double expected_total_time() const;
};

}  // namespace divsec::attack
