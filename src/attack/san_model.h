// san_model.h — compile attack models into stochastic activity networks.
//
// Bridges the attack formalization (stages.h) to the SAN engine (san/):
// each stage transition becomes a timed activity with a success/fail case
// pair; detection becomes competing timed activities into an absorbing
// Detected place. Time-To-Attack and Time-To-Security-Failure are first
// passage times of the resulting SAN (san::first_passage).
#pragma once

#include "attack/stages.h"
#include "san/model.h"

namespace divsec::attack {

/// A staged-attack SAN plus the places its indicators are defined on.
struct AttackSan {
  san::SanModel model;
  std::array<san::PlaceId, kStageCount> stage_place{};
  san::PlaceId success_place = 0;   // device destroyed (attack complete)
  san::PlaceId detected_place = 0;  // operators perceived the attack

  /// Predicate: attack completed (TTA absorption).
  [[nodiscard]] san::Predicate success_predicate() const;
  /// Predicate: attack detected (TTSF absorption).
  [[nodiscard]] san::Predicate detected_predicate() const;
  /// Predicate: either absorbing state reached.
  [[nodiscard]] san::Predicate terminal_predicate() const;
};

/// Build the 5-stage SAN. Semantics:
///  * the attack token starts in stage_place[0] (kInitial);
///  * transition i fires at exp(attempt_rate) and moves the token forward
///    with probability success_probability, else returns it (retry);
///  * while at stage i a detection activity at exp(detection_rate)
///    competes and moves the token to Detected (absorbing);
///  * completing the final (sabotage) transition moves it to Succeeded
///    (absorbing); while sabotage is underway impairment_detection_rate
///    competes as well.
[[nodiscard]] AttackSan build_attack_san(const StagedAttackModel& model);

/// The paper's Section I two-machine example as a SAN.
///
/// Both machines are attacked in parallel at exp(attempt_rate) each. A
/// machine-1 attempt succeeds with probability p1. A machine-2 attempt
/// succeeds with probability p2 while machine 1 is uncompromised, and
/// with max(p2, reuse_probability) once machine 1 is owned (exploit
/// replay): reuse_probability = 1 models identical machines, 0 models
/// full diversity. The attack succeeds when both are owned.
struct TwoMachineSan {
  san::SanModel model;
  san::PlaceId m1_owned = 0;
  san::PlaceId m2_owned = 0;
  [[nodiscard]] san::Predicate both_owned_predicate() const;
};
[[nodiscard]] TwoMachineSan build_two_machine_san(double attempt_rate, double p1,
                                                  double p2, double reuse_probability);

/// Closed-form check for the two-machine model: probability both machines
/// are owned by time T (sequential integration of the parallel race).
[[nodiscard]] double two_machine_success_probability(double attempt_rate, double p1,
                                                     double p2,
                                                     double reuse_probability,
                                                     double t);

}  // namespace divsec::attack
