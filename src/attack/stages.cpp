#include "attack/stages.h"

#include <limits>
#include <stdexcept>

namespace divsec::attack {

const char* to_string(Stage s) noexcept {
  switch (s) {
    case Stage::kInitial: return "initial";
    case Stage::kActivated: return "activated";
    case Stage::kRootAccess: return "root-access";
    case Stage::kPropagation: return "propagation";
    case Stage::kDeviceImpairment: return "device-impairment";
  }
  return "?";
}

void StagedAttackModel::validate() const {
  for (const auto& t : transitions) {
    if (!(t.attempt_rate > 0.0))
      throw std::invalid_argument(name + ": attempt_rate must be > 0");
    if (t.success_probability < 0.0 || t.success_probability > 1.0)
      throw std::invalid_argument(name + ": success_probability must be in [0,1]");
    if (t.detection_rate < 0.0)
      throw std::invalid_argument(name + ": detection_rate must be >= 0");
  }
  if (impairment_detection_rate < 0.0)
    throw std::invalid_argument(name + ": impairment_detection_rate must be >= 0");
}

double StagedAttackModel::expected_stage_time(std::size_t i) const {
  const auto& t = transitions.at(i);
  if (t.success_probability <= 0.0) return std::numeric_limits<double>::infinity();
  return 1.0 / (t.attempt_rate * t.success_probability);
}

double StagedAttackModel::expected_total_time() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < transitions.size(); ++i) acc += expected_stage_time(i);
  return acc;
}

}  // namespace divsec::attack
